// Command fusecu-vet runs the repository's invariant analyzer suite
// (internal/analysis) over go package patterns — a multichecker in the
// spirit of golang.org/x/tools/go/analysis/multichecker, built on the
// stdlib-only framework in internal/analysis.
//
// Usage:
//
//	fusecu-vet [packages]
//
// With no arguments it checks ./.... The exit status is 0 when the tree is
// clean, 1 when any analyzer reported findings, and 2 on loader or analyzer
// failure. Test files are not checked (tests legitimately build invalid
// values to exercise validation); run `go vet` and the test suite alongside.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fusecu/internal/analysis"
	"fusecu/internal/analysis/analyzers"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := findModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	findings, err := analysis.Vet(root, patterns, analyzers.All(), os.Stdout)
	if err != nil {
		fatal(err)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fusecu-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "usage: fusecu-vet [packages]\n\nAnalyzers:\n")
	for _, a := range analyzers.All() {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-22s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fusecu-vet:", err)
	os.Exit(2)
}

// findModuleRoot walks up from dir to the directory containing go.mod, so
// the tool works from any subdirectory of the module.
func findModuleRoot(dir string) (string, error) {
	for d := dir; ; {
		if fi, err := os.Stat(filepath.Join(d, "go.mod")); err == nil && !fi.IsDir() {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
