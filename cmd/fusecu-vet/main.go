// Command fusecu-vet runs the repository's invariant analyzer suite
// (internal/analysis) over go package patterns — a multichecker in the
// spirit of golang.org/x/tools/go/analysis/multichecker, built on the
// stdlib-only framework in internal/analysis.
//
// Usage:
//
//	fusecu-vet [-tags tags] [-group] [packages]
//
// With no arguments it checks ./.... The exit status is 0 when the tree is
// clean, 1 when any analyzer reported findings, and 2 on loader or analyzer
// failure. -tags applies extra build tags (e.g. fusecuchecks) when
// enumerating package files. -group prints findings grouped by analyzer for
// triage and always exits 0 — it is a reporting mode, not a gate.
//
// Findings can be suppressed per line with a justified annotation:
//
//	//fusecu:allow <analyzer>: <justification>
//
// on the offending line or the line above it. Test files are not checked
// (tests legitimately build invalid values to exercise validation); run
// `go vet` and the test suite alongside.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fusecu/internal/analysis"
	"fusecu/internal/analysis/analyzers"
)

func main() {
	tags := flag.String("tags", "", "comma-separated build tags applied when loading packages")
	group := flag.Bool("group", false, "print findings grouped by analyzer for triage and exit 0")
	flag.Usage = usage
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := findModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}
	if *group {
		findings, err := analysis.VetTags(root, patterns, tagList, analyzers.All(), discard{})
		if err != nil {
			fatal(err)
		}
		printGrouped(root, findings)
		return
	}
	findings, err := analysis.VetTags(root, patterns, tagList, analyzers.All(), os.Stdout)
	if err != nil {
		fatal(err)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fusecu-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// discard swallows the per-finding stream in -group mode, which re-renders
// everything grouped instead.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// printGrouped renders findings bucketed by analyzer, most findings first,
// for triage sweeps (make vet-fix-list).
func printGrouped(root string, findings []analysis.Finding) {
	byAnalyzer := map[string][]analysis.Finding{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], f)
	}
	names := make([]string, 0, len(byAnalyzer))
	for name := range byAnalyzer {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if len(byAnalyzer[names[i]]) != len(byAnalyzer[names[j]]) {
			return len(byAnalyzer[names[i]]) > len(byAnalyzer[names[j]])
		}
		return names[i] < names[j]
	})
	if len(findings) == 0 {
		fmt.Println("fusecu-vet: clean (0 findings)")
		return
	}
	for _, name := range names {
		fs := byAnalyzer[name]
		fmt.Printf("%s: %d finding(s)\n", name, len(fs))
		for _, f := range fs {
			pos := f.Position
			if rel, err := filepath.Rel(root, pos.Filename); err == nil {
				pos.Filename = rel
			}
			fmt.Printf("  %s: %s\n", pos, f.Message)
		}
	}
	fmt.Printf("total: %d finding(s) across %d analyzer(s)\n", len(findings), len(names))
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "usage: fusecu-vet [-tags tags] [-group] [packages]\n\nAnalyzers:\n")
	for _, a := range analyzers.All() {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-22s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fusecu-vet:", err)
	os.Exit(2)
}

// findModuleRoot walks up from dir to the directory containing go.mod, so
// the tool works from any subdirectory of the module.
func findModuleRoot(dir string) (string, error) {
	for d := dir; ; {
		if fi, err := os.Stat(filepath.Join(d, "go.mod")); err == nil && !fi.IsDir() {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
