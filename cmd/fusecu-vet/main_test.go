package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fusecu/internal/analysis"
	"fusecu/internal/analysis/analyzers"
)

// TestRepoIsClean is the smoke test required by the CI contract: the
// analyzer suite must report zero findings on the repository itself, i.e.
// `fusecu-vet ./...` exits 0.
func TestRepoIsClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	findings, err := analysis.Vet(root, []string{"./..."}, analyzers.All(), &out)
	if err != nil {
		t.Fatalf("fusecu-vet failed to run: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("fusecu-vet ./... reported %d finding(s) on a tree that must be clean:\n%s",
			len(findings), out.String())
	}
}

func TestFindModuleRoot(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(root, "go.mod")); err != nil || fi.IsDir() {
		t.Errorf("findModuleRoot(%s) = %s, which has no go.mod", wd, root)
	}
	if _, err := findModuleRoot(string(filepath.Separator)); err == nil {
		t.Error("findModuleRoot(/) should fail outside any module")
	}
}
