// Command fusecu-serve runs the FuseCU optimization service: an HTTP/JSON
// daemon exposing principle-based optimization (/v1/optimize), chain fusion
// planning (/v1/plan), the DAT-style search baseline (/v1/search), and
// cross-platform workload evaluation (/v1/evaluate), plus /metrics, the
// /healthz liveness probe and the /readyz readiness probe.
//
//	fusecu-serve -addr :8080 -max-inflight 64 -timeout 30s
//
// With -pprof ADDR the daemon additionally serves net/http/pprof on a
// separate listener (never on the public address), e.g.:
//
//	fusecu-serve -addr :8080 -pprof 127.0.0.1:6060
//
// With -table-dir DIR the candidate-table registry first resolves each
// shape from the directory's pregenerated artifacts (fusecu-tablegen
// output) before building at request time; -admin enables the table
// introspection and eviction endpoints.
//
// On SIGINT/SIGTERM the server first flips /readyz to 503 and answers new
// requests with a fast 503 (Connection: close) while the listener stays open
// — so load balancers stop routing without seeing connection resets — waits
// up to -drain-grace for in-flight requests to finish, then closes the
// listener and drains the remainder within -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fusecu/internal/search"
	"fusecu/internal/service"
	"fusecu/internal/tablestore"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable entry point: it parses args, serves until a signal
// (or until ready receives the bound address and the returned shutdown is
// triggered in tests), and returns the process exit code.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("fusecu-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		maxInflight = fs.Int("max-inflight", 64, "maximum concurrently admitted requests")
		timeout     = fs.Duration("timeout", 30*time.Second, "default per-request deadline")
		workers     = fs.Int("workers", 0, "search workers per request (0 = GOMAXPROCS)")
		drain       = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		drainGrace  = fs.Duration("drain-grace", 500*time.Millisecond,
			"after a signal, keep the listener open this long (rejecting new requests with fast 503s) while in-flight requests finish")
		pprofAddr = fs.String("pprof", "",
			"serve net/http/pprof on this separate listener (e.g. 127.0.0.1:6060; empty = disabled)")
		tableDir = fs.String("table-dir", "",
			"directory of pregenerated candidate-table artifacts (fusecu-tablegen output); resolved before building at request time")
		admin = fs.Bool("admin", false,
			"enable the admin endpoints (GET /v1/tables, DELETE /v1/tables/{shapeHash})")
		polish = fs.String("polish", "analytic",
			"auto-engine polish stage: analytic (closed-form) or ga (genetic escape hatch)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pol, err := search.ParsePolishMode(*polish)
	if err != nil {
		fmt.Fprintln(stderr, "fusecu-serve:", err)
		fs.Usage()
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "fusecu-serve: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *maxInflight <= 0 || *timeout <= 0 || *drain <= 0 || *drainGrace < 0 {
		fmt.Fprintln(stderr, "fusecu-serve: -max-inflight, -timeout and -drain must be positive and -drain-grace non-negative")
		fs.Usage()
		return 2
	}

	var store *tablestore.Store
	if *tableDir != "" {
		var err error
		if store, err = tablestore.Open(*tableDir); err != nil {
			fmt.Fprintln(stderr, "fusecu-serve:", err)
			return 1
		}
		fmt.Fprintf(stdout, "fusecu-serve: serving candidate tables from %s\n", store.Dir())
	}
	logger := log.New(stderr, "fusecu-serve: ", log.LstdFlags)
	svc := service.New(service.Config{
		MaxInFlight:    *maxInflight,
		DefaultTimeout: *timeout,
		SearchWorkers:  *workers,
		Polish:         pol,
		TableStore:     store,
		EnableAdmin:    *admin,
		Logf:           logger.Printf,
	})
	srv := &http.Server{Handler: svc.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "fusecu-serve:", err)
		return 1
	}

	// Profiling stays off the service listener: pprof handlers are mounted
	// only on their own mux behind -pprof, so the public surface never
	// exposes /debug/pprof/ and the profiler survives service drain.
	var pprofSrv *http.Server
	var pprofBound string
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, "fusecu-serve: pprof:", err)
			if cerr := ln.Close(); cerr != nil {
				fmt.Fprintln(stderr, "fusecu-serve:", cerr)
			}
			return 1
		}
		pprofSrv = &http.Server{Handler: pprofMux()}
		go func() {
			if err := pprofSrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(stderr, "fusecu-serve: pprof:", err)
			}
		}()
		defer func() {
			if err := pprofSrv.Close(); err != nil {
				fmt.Fprintln(stderr, "fusecu-serve: pprof close:", err)
			}
		}()
		fmt.Fprintf(stdout, "fusecu-serve: pprof on %s\n", pln.Addr())
		pprofBound = pln.Addr().String()
	}

	svc.SetReady(true)
	fmt.Fprintf(stdout, "fusecu-serve: listening on %s\n", ln.Addr())
	if ready != nil {
		// Main address first, then the pprof address when enabled.
		ready <- ln.Addr().String()
		if pprofBound != "" {
			ready <- pprofBound
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// Listener failed before any signal.
		fmt.Fprintln(stderr, "fusecu-serve:", err)
		return 1
	case <-ctx.Done():
	}

	// Phase 1: stop admitting work but keep the listener open, so late
	// arrivals get a clean fast 503 (Connection: close) instead of a reset,
	// and /readyz tells load balancers to route elsewhere. The grace window
	// ends early once nothing is in flight.
	svc.BeginDrain()
	fmt.Fprintln(stdout, "fusecu-serve: draining in-flight requests")
	inflight := svc.Registry().Gauge("http_inflight")
	graceDeadline := time.Now().Add(*drainGrace)
	for inflight.Value() > 0 && time.Now().Before(graceDeadline) {
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 2: close the listener and drain whatever is left.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(stderr, "fusecu-serve: shutdown:", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "fusecu-serve:", err)
		return 1
	}
	fmt.Fprintln(stdout, "fusecu-serve: drained, exiting")
	return 0
}

// pprofMux mounts the net/http/pprof handlers on a fresh mux, so the
// profiling endpoints exist only on the -pprof listener and never leak onto
// the public service listener (which does not use http.DefaultServeMux).
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", recovered(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", recovered(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", recovered(pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", recovered(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", recovered(pprof.Trace))
	return mux
}

// recovered keeps the panic-isolation contract on the profiling mux: a
// panicking pprof handler answers 500 and the daemon keeps serving.
func recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				http.Error(w, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
			}
		}()
		h(w, r)
	}
}
