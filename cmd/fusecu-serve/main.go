// Command fusecu-serve runs the FuseCU optimization service: an HTTP/JSON
// daemon exposing principle-based optimization (/v1/optimize), chain fusion
// planning (/v1/plan), the DAT-style search baseline (/v1/search), and
// cross-platform workload evaluation (/v1/evaluate), plus /metrics, the
// /healthz liveness probe and the /readyz readiness probe.
//
//	fusecu-serve -addr :8080 -max-inflight 64 -timeout 30s
//
// On SIGINT/SIGTERM the server first flips /readyz to 503 and answers new
// requests with a fast 503 (Connection: close) while the listener stays open
// — so load balancers stop routing without seeing connection resets — waits
// up to -drain-grace for in-flight requests to finish, then closes the
// listener and drains the remainder within -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fusecu/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable entry point: it parses args, serves until a signal
// (or until ready receives the bound address and the returned shutdown is
// triggered in tests), and returns the process exit code.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("fusecu-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		maxInflight = fs.Int("max-inflight", 64, "maximum concurrently admitted requests")
		timeout     = fs.Duration("timeout", 30*time.Second, "default per-request deadline")
		workers     = fs.Int("workers", 0, "search workers per request (0 = GOMAXPROCS)")
		drain       = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		drainGrace  = fs.Duration("drain-grace", 500*time.Millisecond,
			"after a signal, keep the listener open this long (rejecting new requests with fast 503s) while in-flight requests finish")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "fusecu-serve: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *maxInflight <= 0 || *timeout <= 0 || *drain <= 0 || *drainGrace < 0 {
		fmt.Fprintln(stderr, "fusecu-serve: -max-inflight, -timeout and -drain must be positive and -drain-grace non-negative")
		fs.Usage()
		return 2
	}

	svc := service.New(service.Config{
		MaxInFlight:    *maxInflight,
		DefaultTimeout: *timeout,
		SearchWorkers:  *workers,
	})
	srv := &http.Server{Handler: svc.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "fusecu-serve:", err)
		return 1
	}
	svc.SetReady(true)
	fmt.Fprintf(stdout, "fusecu-serve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// Listener failed before any signal.
		fmt.Fprintln(stderr, "fusecu-serve:", err)
		return 1
	case <-ctx.Done():
	}

	// Phase 1: stop admitting work but keep the listener open, so late
	// arrivals get a clean fast 503 (Connection: close) instead of a reset,
	// and /readyz tells load balancers to route elsewhere. The grace window
	// ends early once nothing is in flight.
	svc.BeginDrain()
	fmt.Fprintln(stdout, "fusecu-serve: draining in-flight requests")
	inflight := svc.Registry().Gauge("http_inflight")
	graceDeadline := time.Now().Add(*drainGrace)
	for inflight.Value() > 0 && time.Now().Before(graceDeadline) {
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 2: close the listener and drain whatever is left.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(stderr, "fusecu-serve: shutdown:", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "fusecu-serve:", err)
		return 1
	}
	fmt.Fprintln(stdout, "fusecu-serve: drained, exiting")
	return 0
}
