package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"positional args", []string{"extra"}},
		{"bad max-inflight", []string{"-max-inflight", "0"}},
		{"bad timeout", []string{"-timeout", "-1s"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr, nil); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if stdout.Len() != 0 {
				t.Fatalf("usage error wrote to stdout: %q", stdout.String())
			}
			if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "flag") {
				t.Fatalf("stderr missing usage text: %q", stderr.String())
			}
		})
	}
}

func TestRunBadListenAddr(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", "127.0.0.1:99999"}, &stdout, &stderr, nil); code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
}

// TestGracefulShutdownDrainsInFlight boots the real daemon, puts a wave of
// search requests in flight, delivers SIGTERM mid-wave, and requires every
// already-admitted request to complete with 200 — zero dropped requests —
// before the process exits cleanly.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0"}, &stdout, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	// Liveness first.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	const wave = 8
	body := `{"op":{"name":"drain","m":48,"k":32,"l":40},"buffer":4096,"engine":"exhaustive"}`
	var wg sync.WaitGroup
	codes := make([]int, wave)
	errs := make([]error, wave)
	for i := 0; i < wave; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/search", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer func() {
				if cerr := resp.Body.Close(); cerr != nil && errs[i] == nil {
					errs[i] = cerr
				}
			}()
			if _, err := io.ReadAll(resp.Body); err != nil {
				errs[i] = err
				return
			}
			codes[i] = resp.StatusCode
		}(i)
	}
	// Wait until the whole wave is admitted — the in-flight gauge on
	// /metrics reports it — so the signal provably lands mid-request.
	waitDeadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(waitDeadline) {
			t.Fatalf("wave never fully in flight; last metrics:\n%s", scrape(t, base))
		}
		if strings.Contains(scrape(t, base), fmt.Sprintf("http_inflight %d", wave)) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	wg.Wait()

	for i := 0; i < wave; i++ {
		if errs[i] != nil {
			t.Errorf("request %d dropped during drain: %v", i, errs[i])
		} else if codes[i] != http.StatusOK {
			t.Errorf("request %d status %d during drain", i, codes[i])
		}
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never exited after SIGTERM")
	}
	out := stdout.String()
	for _, want := range []string{"listening on", "draining in-flight requests", "drained, exiting"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	// The listener is really gone.
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// scrape fetches the /metrics text exposition.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Errorf("close: %v", cerr)
		}
	}()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	return string(raw)
}
