package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"fusecu/internal/experiments"
	"fusecu/internal/search"
	"fusecu/internal/tablestore"
)

func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"positional args", []string{"extra"}},
		{"bad max-inflight", []string{"-max-inflight", "0"}},
		{"bad timeout", []string{"-timeout", "-1s"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr, nil); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if stdout.Len() != 0 {
				t.Fatalf("usage error wrote to stdout: %q", stdout.String())
			}
			if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "flag") {
				t.Fatalf("stderr missing usage text: %q", stderr.String())
			}
		})
	}
}

func TestRunBadListenAddr(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", "127.0.0.1:99999"}, &stdout, &stderr, nil); code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
}

// TestGracefulShutdownDrainsInFlight boots the real daemon, puts a wave of
// search requests in flight, delivers SIGTERM mid-wave, and requires every
// already-admitted request to complete with 200 — zero dropped requests —
// before the process exits cleanly.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0"}, &stdout, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	// Liveness first.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	const wave = 8
	body := `{"op":{"name":"drain","m":48,"k":32,"l":40},"buffer":4096,"engine":"exhaustive"}`
	var wg sync.WaitGroup
	codes := make([]int, wave)
	errs := make([]error, wave)
	for i := 0; i < wave; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/search", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer func() {
				if cerr := resp.Body.Close(); cerr != nil && errs[i] == nil {
					errs[i] = cerr
				}
			}()
			if _, err := io.ReadAll(resp.Body); err != nil {
				errs[i] = err
				return
			}
			codes[i] = resp.StatusCode
		}(i)
	}
	// Wait until the whole wave is admitted — the in-flight gauge on
	// /metrics reports it — so the signal provably lands mid-request.
	waitDeadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(waitDeadline) {
			t.Fatalf("wave never fully in flight; last metrics:\n%s", scrape(t, base))
		}
		if strings.Contains(scrape(t, base), fmt.Sprintf("http_inflight %d", wave)) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	wg.Wait()

	for i := 0; i < wave; i++ {
		if errs[i] != nil {
			t.Errorf("request %d dropped during drain: %v", i, errs[i])
		} else if codes[i] != http.StatusOK {
			t.Errorf("request %d status %d during drain", i, codes[i])
		}
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never exited after SIGTERM")
	}
	out := stdout.String()
	for _, want := range []string{"listening on", "draining in-flight requests", "drained, exiting"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	// The listener is really gone.
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestDrainRejectsNewRequestsWith503 is the regression test for the drain
// race: a request arriving after SIGTERM but before the listener closes must
// get a fast 503 draining envelope with Connection: close — not hang, not a
// connection reset. A long in-flight search pins the grace window open while
// the probe runs; cancelling it lets the window end early so the test exits
// fast.
func TestDrainRejectsNewRequestsWith503(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-timeout", "60s", "-drain-grace", "30s"},
			&stdout, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	// Readiness is up once the listener is announced.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", resp.StatusCode)
	}

	// Pin the grace window open with a search too big to finish.
	slowCtx, cancelSlow := context.WithCancel(context.Background())
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		req, err := http.NewRequestWithContext(slowCtx, http.MethodPost, base+"/v1/search",
			strings.NewReader(`{"op":{"m":224,"k":224,"l":224},"buffer":1048576,"engine":"exhaustive"}`))
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			if cerr := resp.Body.Close(); cerr != nil {
				t.Error(cerr)
			}
		}
	}()
	waitDeadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(scrape(t, base), "http_inflight 1") {
		if time.Now().After(waitDeadline) {
			t.Fatal("pinning search never became in-flight")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	// The readiness flip is the deterministic signal that the drain began.
	flipDeadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatalf("readyz during drain: %v", err)
		}
		code := resp.StatusCode
		if cerr := resp.Body.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(flipDeadline) {
			t.Fatal("readyz never flipped to 503 after SIGTERM")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The race under test: a new request during the grace window.
	resp, err = http.Post(base+"/v1/optimize", "application/json",
		strings.NewReader(`{"op":{"m":8,"k":8,"l":8},"buffer":64}`))
	if err != nil {
		t.Fatalf("request during drain was dropped: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatalf("read drain response: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status during drain = %d, want 503 (%s)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), `"draining"`) {
		t.Fatalf("drain rejection missing draining code: %s", raw)
	}
	if !resp.Close && !strings.EqualFold(resp.Header.Get("Connection"), "close") {
		t.Fatalf("drain rejection did not close the connection (headers %v)", resp.Header)
	}
	// Liveness stays up through the drain.
	if hz, err := http.Get(base + "/healthz"); err != nil || hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %v %v", hz, err)
	} else if cerr := hz.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}

	// Release the pin; in-flight hits zero, the grace window ends early and
	// the process exits cleanly well before the 30s grace budget.
	cancelSlow()
	<-slowDone
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never exited after the drain pin was released")
	}
}

// TestPprofListener boots the daemon with -pprof, verifies the profiling
// endpoints answer on the dedicated listener (including a short CPU
// profile), and — the isolation half of the contract — that the public
// service listener does NOT serve /debug/pprof/.
func TestPprofListener(t *testing.T) {
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 2)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-pprof", "127.0.0.1:0"}, &stdout, &stderr, ready)
	}()
	var addr, paddr string
	for _, dst := range []*string{&addr, &paddr} {
		select {
		case *dst = <-ready:
		case <-time.After(10 * time.Second):
			t.Fatalf("server never became ready (stderr: %s)", stderr.String())
		}
	}

	get := func(url string) int {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		if _, rerr := io.ReadAll(resp.Body); rerr != nil {
			t.Fatalf("GET %s: read: %v", url, rerr)
		}
		if cerr := resp.Body.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		return resp.StatusCode
	}

	// The pprof listener answers the index, cmdline, and a 1-second CPU
	// profile (seconds must be ≥ 1: net/http/pprof treats seconds<=0 as the
	// 30-second default, which would stall the test).
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/profile?seconds=1"} {
		if code := get("http://" + paddr + path); code != http.StatusOK {
			t.Errorf("pprof listener %s = %d, want 200", path, code)
		}
	}
	// Isolation: the public listener serves the API but not pprof.
	if code := get("http://" + addr + "/healthz"); code != http.StatusOK {
		t.Errorf("main listener /healthz = %d, want 200", code)
	}
	if code := get("http://" + addr + "/debug/pprof/"); code == http.StatusOK {
		t.Error("main listener serves /debug/pprof/ — profiling leaked onto the public surface")
	}
	// And the pprof listener does not expose the service API.
	if code := get("http://" + paddr + "/healthz"); code == http.StatusOK {
		t.Error("pprof listener serves /healthz — service leaked onto the profiling surface")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never exited after SIGTERM")
	}
	// The pprof listener is torn down with the daemon.
	if _, err := http.Get("http://" + paddr + "/debug/pprof/"); err == nil {
		t.Error("pprof listener still accepting after shutdown")
	}
	if !strings.Contains(stdout.String(), "pprof on") {
		t.Errorf("stdout missing pprof announcement:\n%s", stdout.String())
	}
}

// scrape fetches the /metrics text exposition.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Errorf("close: %v", cerr)
		}
	}()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	return string(raw)
}

// TestTableDirAndAdminFlags boots the daemon over a pregenerated table
// directory with the admin surface enabled: a search for a pregenerated
// shape must be answered from the disk artifact (table_loads 1, zero
// runtime builds) and the admin listing must attribute the table to "disk".
func TestTableDirAndAdminFlags(t *testing.T) {
	dir := t.TempDir()
	mm := experiments.ServeLoadOps()[0]
	store, err := tablestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := search.NewCandTable(mm, search.GridFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put(tab); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-table-dir", dir, "-admin"},
			&stdout, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("server never became ready (stderr: %s)", stderr.String())
	}
	base := "http://" + addr

	body := fmt.Sprintf(`{"op":{"name":%q,"m":%d,"k":%d,"l":%d},"buffer":4096,"engine":"exhaustive"}`,
		mm.Name, mm.M, mm.K, mm.L)
	resp, err := http.Post(base+"/v1/search", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d: %s", resp.StatusCode, raw)
	}
	metrics := scrape(t, base)
	if !strings.Contains(metrics, "table_loads 1") {
		t.Errorf("metrics missing table_loads 1:\n%s", metrics)
	}
	if !strings.Contains(metrics, "table_builds 0") {
		t.Errorf("search built at request time despite -table-dir:\n%s", metrics)
	}

	tresp, err := http.Get(base + "/v1/tables")
	if err != nil {
		t.Fatal(err)
	}
	traw, err := io.ReadAll(tresp.Body)
	if cerr := tresp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/tables status %d (admin should be enabled): %s", tresp.StatusCode, traw)
	}
	if !strings.Contains(string(traw), `"source":"disk"`) {
		t.Errorf("table not attributed to disk: %s", traw)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never exited after SIGTERM")
	}
	if !strings.Contains(stdout.String(), "serving candidate tables from") {
		t.Errorf("stdout missing table-dir announcement:\n%s", stdout.String())
	}
}

// TestBadTableDirFailsLoudly: an unusable -table-dir must abort startup,
// not silently serve without pregenerated tables.
func TestBadTableDirFailsLoudly(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", "127.0.0.1:0", "-table-dir", file}, &stdout, &stderr, nil); code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
}
