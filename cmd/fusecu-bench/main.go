// Command fusecu-bench times the Fig. 9 search-validation sweep under three
// engine configurations and writes a machine-readable report:
//
//   - reference-sequential: the frozen pre-optimization engines (unpruned
//     coarse scan, no memoization) — the honest baseline.
//   - pruned-cached: footprint-pruned scans with a per-operator evaluation
//     cache shared across the buffer sweep (experiments.Fig9).
//   - parallel: the same, with (operator, buffer) points fanned across a
//     worker pool (experiments.Fig9Parallel).
//   - search-sweep-table: one footprint-indexed candidate table per operator,
//     answering every buffer point by binary search over the table
//     (experiments.Fig9Sweep).
//   - search-sweep-analytic: the closed-form analytic optimizer alone — no
//     lattice, no cache; tens of exact evaluations per point
//     (experiments.Fig9Analytic). Compared on MA values only, since its
//     visit counts are intentionally tiny rather than conserved.
//
// The report (default BENCH_search.json) records wall time, cost-model
// invocations, and cache hits per engine, whether every engine produced
// bit-identical memory-access results — which they must — and the polish
// evaluation drop: the uncached GA polish's evaluation count over the
// analytic polish's across the same sweep points, gated ≥ 10×.
//
//	fusecu-bench -out BENCH_search.json        # reduced sweep (CI smoke)
//	fusecu-bench -full -out BENCH_search.json  # the paper's 32KiB–32MiB sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"fusecu/internal/core"
	"fusecu/internal/experiments"
	"fusecu/internal/op"
	"fusecu/internal/search"
)

type engineReport struct {
	Name   string  `json:"name"`
	WallMs float64 `json:"wall_ms"`
	// Workers is the worker count the engine effectively ran with: the pool
	// size clamped to schedulable cores for the parallel engine, 1 for the
	// sequential ones.
	Workers     int   `json:"workers"`
	Evaluations int64 `json:"evaluations"`
	CacheHits   int64 `json:"cache_hits"`
}

type report struct {
	Benchmark    string         `json:"benchmark"`
	FullSweep    bool           `json:"full_sweep"`
	Ops          []string       `json:"ops"`
	BufferPoints int            `json:"buffer_points"`
	Cores        int            `json:"cores"`
	Workers      int            `json:"workers"`
	Engines      []engineReport `json:"engines"`
	// Speedups are reference-sequential wall time divided by each optimized
	// engine's wall time. A speedup is null — never Inf or NaN — when either
	// wall time is too close to zero for the ratio to mean anything, and
	// speedup_parallel is additionally null when the parallel engine could
	// not actually parallelize (single_core below): a 1-worker "parallel"
	// ratio would quietly report scheduling noise as scaling.
	SpeedupPrunedCached *float64 `json:"speedup_pruned_cached"`
	SpeedupParallel     *float64 `json:"speedup_parallel"`
	SpeedupTable        *float64 `json:"speedup_table"`
	SpeedupAnalytic     *float64 `json:"speedup_analytic"`
	// SingleCore is true when the parallel engine effectively ran one
	// worker (single-core container or -workers=1), so no parallel-scaling
	// conclusion can be drawn from this report.
	SingleCore bool `json:"single_core,omitempty"`
	// IdenticalResults is true iff every (operator, buffer) point's
	// principle MA, search MA, and total candidate-visit count agree across
	// the lattice-backed engines, and the analytic engine matches them on
	// every MA value (its visit counts are intentionally smaller).
	IdenticalResults bool `json:"identical_results"`
	// PolishEvalsGA / PolishEvalsAnalytic sum, over the same sweep points,
	// the uncached evaluation counts of the two polish engines; their ratio
	// PolishEvalDrop is the per-request polish cost reduction and is gated
	// ≥ minPolishDrop by run().
	PolishEvalsGA       int64   `json:"polish_evals_ga"`
	PolishEvalsAnalytic int64   `json:"polish_evals_analytic"`
	PolishEvalDrop      float64 `json:"polish_eval_drop"`
}

// minPolishDrop is the acceptance floor for the analytic polish: its
// uncached evaluation count must be at least this factor below the GA
// polish's over the sweep, or the bench fails loudly.
const minPolishDrop = 10

func main() {
	var (
		out     = flag.String("out", "BENCH_search.json", "output report path (search sweep mode)")
		full    = flag.Bool("full", false, "run the paper's full 32KiB-32MiB sweep instead of the reduced smoke sweep")
		workers = flag.Int("workers", 0, "workers for the parallel engine (0 = GOMAXPROCS)")
		load    = flag.Bool("serve-load", false, "benchmark the fusecu-serve HTTP service under concurrent /v1/search load instead")
		loadOut = flag.String("serve-out", "BENCH_serve.json", "output report path (-serve-load mode)")
		clients = flag.Int("clients", 96, "concurrent clients for -serve-load")
		maxInFl = flag.Int("max-inflight", 64, "service admission ceiling for -serve-load (per replica)")
		repl    = flag.Int("replicas", 1, "fusecu-serve replicas behind the shape-affinity router for -serve-load")
		tdir    = flag.String("table-dir", "", "pregenerated candidate-table directory for -serve-load (fusecu-tablegen -set bench output); the wave then asserts zero runtime table builds")
		pprofAt = flag.String("pprof", "", "expose net/http/pprof on this separate listener during -serve-load (empty = disabled)")
		chaos   = flag.Bool("chaos", false, "with -serve-load: run the seeded chaos schedule — replicas hard-killed and restarted mid-wave, one table artifact corrupted — and assert the failover/ejection/recovery contract")
		cseed   = flag.Int64("chaos-seed", 1, "seed for the chaos schedule's victim order and injected-fault RNG")
		ckills  = flag.Int("chaos-kills", 2, "kill/restart cycles in the chaos schedule")
		hedge   = flag.Duration("hedge-after", 0, "router hedge delay for affinity-keyed requests in chaos mode (0 = hedging off)")
		proxyAt = flag.Int("proxy-attempts", 3, "router per-request upstream attempt budget in chaos mode")
	)
	flag.Parse()
	if *chaos && !*load {
		fmt.Fprintln(os.Stderr, "fusecu-bench: -chaos requires -serve-load")
		os.Exit(2)
	}
	if *load {
		var err error
		if *chaos {
			err = chaosLoad(*loadOut, *clients, *maxInFl, *workers, *repl, *tdir, *cseed, *ckills, *hedge, *proxyAt)
		} else {
			err = serveLoad(*loadOut, *clients, *maxInFl, *workers, *repl, *tdir, *pprofAt)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fusecu-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out, *full, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "fusecu-bench:", err)
		os.Exit(1)
	}
}

func run(out string, full bool, workers int) error {
	ops, buffers := sweep(full)

	// Cores is the schedulable parallelism (GOMAXPROCS may be capped below
	// NumCPU in containers); Workers is the count the parallel engine
	// effectively ran with — the resolved pool size clamped to cores, since
	// goroutines beyond GOMAXPROCS cannot add parallelism to a CPU-bound
	// scan.
	cores := runtime.GOMAXPROCS(0)
	effectiveWorkers := workers
	if effectiveWorkers <= 0 || effectiveWorkers > cores {
		effectiveWorkers = cores
	}
	rep := report{
		Benchmark:    "fig9-search-sweep",
		FullSweep:    full,
		BufferPoints: len(buffers),
		Cores:        cores,
		Workers:      effectiveWorkers,
		SingleCore:   effectiveWorkers == 1,
	}
	for _, mm := range ops {
		rep.Ops = append(rep.Ops, mm.String())
	}

	refStart := time.Now()
	ref, err := referenceFig9(ops, buffers, 1)
	if err != nil {
		return fmt.Errorf("reference engine: %w", err)
	}
	refWall := time.Since(refStart)

	prunedStart := time.Now()
	pruned, err := experiments.Fig9(ops, buffers, 1)
	if err != nil {
		return fmt.Errorf("pruned-cached engine: %w", err)
	}
	prunedWall := time.Since(prunedStart)

	parStart := time.Now()
	par, err := experiments.Fig9Parallel(ops, buffers, 1, workers)
	if err != nil {
		return fmt.Errorf("parallel engine: %w", err)
	}
	parWall := time.Since(parStart)

	tabStart := time.Now()
	tab, err := experiments.Fig9Sweep(ops, buffers, 1)
	if err != nil {
		return fmt.Errorf("table-sweep engine: %w", err)
	}
	tabWall := time.Since(tabStart)

	anaStart := time.Now()
	ana, err := experiments.Fig9Analytic(ops, buffers)
	if err != nil {
		return fmt.Errorf("analytic engine: %w", err)
	}
	anaWall := time.Since(anaStart)

	rep.Engines = []engineReport{
		tally("reference-sequential", refWall, 1, ref),
		tally("pruned-cached", prunedWall, 1, pruned),
		tally("parallel", parWall, effectiveWorkers, par),
		tally("search-sweep-table", tabWall, 1, tab),
		tally("search-sweep-analytic", anaWall, 1, ana),
	}
	rep.SpeedupPrunedCached = ratio(refWall, prunedWall)
	rep.SpeedupTable = ratio(refWall, tabWall)
	rep.SpeedupAnalytic = ratio(refWall, anaWall)
	if !rep.SingleCore {
		rep.SpeedupParallel = ratio(refWall, parWall)
	}
	rep.IdenticalResults = identical(ref, pruned) && identical(ref, par) && identical(ref, tab) &&
		identicalMA(ref, ana)

	// The analytic sweep's evaluations ARE its polish cost (it has no other
	// stage); price the GA polish once over the same points for the drop.
	rep.PolishEvalsAnalytic = tally("", 0, 1, ana).Evaluations
	rep.PolishEvalsGA, err = gaPolishEvals(ops, buffers, 1)
	if err != nil {
		return fmt.Errorf("ga polish baseline: %w", err)
	}
	if rep.PolishEvalsAnalytic > 0 {
		rep.PolishEvalDrop = float64(rep.PolishEvalsGA) / float64(rep.PolishEvalsAnalytic)
	}

	if !rep.IdenticalResults {
		// Still write the report, but fail loudly: equivalence is the whole
		// contract of the optimized engines.
		if werr := write(out, rep); werr != nil {
			return werr
		}
		return fmt.Errorf("engines disagree on the sweep results (see %s)", out)
	}
	if rep.PolishEvalDrop < minPolishDrop {
		if werr := write(out, rep); werr != nil {
			return werr
		}
		return fmt.Errorf("analytic polish eval drop %.1fx below the %dx floor: GA %d vs analytic %d (see %s)",
			rep.PolishEvalDrop, minPolishDrop, rep.PolishEvalsGA, rep.PolishEvalsAnalytic, out)
	}
	if err := write(out, rep); err != nil {
		return err
	}
	parNote := fmtSpeedup(rep.SpeedupParallel)
	if rep.SingleCore {
		parNote = "single-core"
	}
	fmt.Printf("wrote %s: reference %.1fms, pruned+cached %.1fms (%s), parallel %.1fms (%s), table %.1fms (%s), analytic %.1fms (%s), polish-drop %.1fx, identical=%v\n",
		out, ms(refWall), ms(prunedWall), fmtSpeedup(rep.SpeedupPrunedCached),
		ms(parWall), parNote, ms(tabWall), fmtSpeedup(rep.SpeedupTable),
		ms(anaWall), fmtSpeedup(rep.SpeedupAnalytic), rep.PolishEvalDrop, rep.IdenticalResults)
	return nil
}

// gaPolishEvals prices the frozen GA polish — uncached, default options —
// over every sweep point and returns its summed evaluation count: the
// denominatorless "before" column of the polish-drop gate.
func gaPolishEvals(ops []op.MatMul, buffers []int64, seed int64) (int64, error) {
	var total int64
	for _, mm := range ops {
		for _, bs := range buffers {
			r, err := search.Genetic(mm, bs, search.GeneticOptions{Seed: seed})
			if err != nil {
				return 0, fmt.Errorf("ga polish %v BS=%d: %w", mm, bs, err)
			}
			total += r.Evaluations
		}
	}
	return total, nil
}

// fmtSpeedup renders a guarded speedup for the one-line summary.
func fmtSpeedup(s *float64) string {
	if s == nil {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", *s)
}

// sweep selects the workload: the paper's full sweep under -full, otherwise
// a reduced two-operator, five-buffer smoke sweep sized for CI.
func sweep(full bool) ([]op.MatMul, []int64) {
	if full {
		return experiments.Fig9Ops(), experiments.Fig9Buffers()
	}
	ops := []op.MatMul{
		{Name: "proj", M: 256, K: 192, L: 192},
		{Name: "QKt", M: 256, K: 32, L: 256},
	}
	var buffers []int64
	for b := int64(4 << 10); b <= 64<<10; b *= 2 {
		buffers = append(buffers, b)
	}
	return ops, buffers
}

// referenceFig9 reproduces experiments.Fig9 exactly, but drives the frozen
// reference engines: unpruned coarse enumeration, no evaluation cache, and
// the same engine-selection threshold and polish stage as search.Optimize.
func referenceFig9(ops []op.MatMul, buffers []int64, seed int64) ([]experiments.Fig9Result, error) {
	var results []experiments.Fig9Result
	for _, mm := range ops {
		r := experiments.Fig9Result{Op: mm}
		for _, bs := range buffers {
			pr, err := core.Optimize(mm, bs)
			if err != nil {
				return nil, fmt.Errorf("fig9 %v BS=%d: %w", mm, bs, err)
			}
			sr, err := referenceOptimize(mm, bs, seed)
			if err != nil {
				return nil, fmt.Errorf("fig9 search %v BS=%d: %w", mm, bs, err)
			}
			r.Points = append(r.Points, experiments.Fig9Point{
				BufferElems: bs,
				PrincipleMA: pr.Access.Total,
				SearchMA:    sr.Access.Total,
				Ideal:       mm.IdealMA(),
				SearchEvals: sr.Evaluations,
			})
		}
		results = append(results, r)
	}
	return results, nil
}

// referenceOptimize mirrors search.Optimize's engine selection — exact
// coarse enumeration when the lattice is small, the analytic polish kept
// when it wins — using the frozen ReferenceCoarse scan and the same
// closed-form polish the optimized engines run (seed only matters under
// the GA escape hatch, which the reference path does not take).
func referenceOptimize(mm op.MatMul, bufferSize, _ int64) (search.Result, error) {
	if search.CoarseLattice(mm) > search.CoarseLatticeLimit {
		return search.OptimizeAnalytic(mm, bufferSize)
	}
	r, err := search.ReferenceCoarse(mm, bufferSize)
	if err != nil {
		return search.Result{}, err
	}
	g, gerr := search.OptimizeAnalytic(mm, bufferSize)
	if gerr == nil && g.Access.Total < r.Access.Total {
		g.Evaluations += r.Evaluations
		g.Method = "coarse+analytic"
		return g, nil
	}
	r.Evaluations += g.Evaluations
	return r, nil
}

// tally sums an engine's evaluation and cache-hit counters over the sweep.
func tally(name string, wall time.Duration, workers int, results []experiments.Fig9Result) engineReport {
	rep := engineReport{Name: name, WallMs: ms(wall), Workers: workers}
	for _, r := range results {
		for _, p := range r.Points {
			rep.Evaluations += p.SearchEvals
			rep.CacheHits += p.SearchCacheHits
		}
	}
	return rep
}

// identical reports whether two sweeps agree on every paper-facing value:
// buffer point, principle MA, search MA, ideal bound, and the total
// candidate-visit count (evaluations + cache hits, which caching must
// conserve).
func identical(a, b []experiments.Fig9Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Op != b[i].Op || len(a[i].Points) != len(b[i].Points) {
			return false
		}
		for j := range a[i].Points {
			pa, pb := a[i].Points[j], b[i].Points[j]
			if pa.BufferElems != pb.BufferElems || pa.PrincipleMA != pb.PrincipleMA ||
				pa.SearchMA != pb.SearchMA || pa.Ideal != pb.Ideal ||
				pa.SearchEvals+pa.SearchCacheHits != pb.SearchEvals+pb.SearchCacheHits {
				return false
			}
		}
	}
	return true
}

// identicalMA is identical() without the visit-count clause: the analytic
// engine's evaluation counts are its whole point of difference (tens
// versus the lattice engines' thousands), so it is held to the MA values
// only — which must still match bit for bit.
func identicalMA(a, b []experiments.Fig9Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Op != b[i].Op || len(a[i].Points) != len(b[i].Points) {
			return false
		}
		for j := range a[i].Points {
			pa, pb := a[i].Points[j], b[i].Points[j]
			if pa.BufferElems != pb.BufferElems || pa.PrincipleMA != pb.PrincipleMA ||
				pa.SearchMA != pb.SearchMA || pa.Ideal != pb.Ideal {
				return false
			}
		}
	}
	return true
}

// minRatioWall is the wall-time floor below which a speedup ratio is noise:
// a sub-100µs measurement is dominated by scheduler and timer granularity,
// and a zero denominator would put Inf into the JSON (which encoding/json
// rejects at marshal time anyway).
const minRatioWall = 100 * time.Microsecond

// ratio returns base/opt as a guarded speedup: nil — rendered as JSON null —
// when either wall time is degenerate, so the report never carries an Inf,
// NaN, or noise-amplified ratio.
func ratio(base, opt time.Duration) *float64 {
	if base < minRatioWall || opt < minRatioWall {
		return nil
	}
	r := float64(base) / float64(opt)
	if math.IsInf(r, 0) || math.IsNaN(r) {
		return nil
	}
	return &r
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func write(path string, rep report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
