package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesConsistentReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(out, false, 2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.IdenticalResults {
		t.Fatal("engines disagreed on the sweep")
	}
	if len(rep.Engines) != 4 {
		t.Fatalf("engines = %d", len(rep.Engines))
	}
	if rep.Engines[3].Name != "search-sweep-table" {
		t.Fatalf("fourth engine = %q, want search-sweep-table", rep.Engines[3].Name)
	}
	if rep.Cores <= 0 || rep.Workers <= 0 {
		t.Fatalf("cores/workers not resolved: %d/%d", rep.Cores, rep.Workers)
	}
	refEvals := rep.Engines[0].Evaluations + rep.Engines[0].CacheHits
	for _, e := range rep.Engines {
		if e.WallMs <= 0 {
			t.Errorf("%s: wall %.3fms", e.Name, e.WallMs)
		}
		// Caching reassigns visits between the counters but must conserve
		// their sum across engines.
		if e.Evaluations+e.CacheHits != refEvals {
			t.Errorf("%s: visits %d, reference %d", e.Name, e.Evaluations+e.CacheHits, refEvals)
		}
	}
	if rep.Engines[0].CacheHits != 0 {
		t.Error("reference engine reported cache hits")
	}
	if rep.Engines[1].CacheHits == 0 {
		t.Error("cached engine reported no cache hits")
	}
	if rep.SpeedupPrunedCached <= 0 || rep.SpeedupParallel <= 0 || rep.SpeedupTable <= 0 {
		t.Errorf("degenerate speedups: %+v", rep)
	}
}

func TestSweepSelection(t *testing.T) {
	ops, buffers := sweep(false)
	fullOps, fullBuffers := sweep(true)
	if len(fullOps) <= 0 || len(fullBuffers) <= len(buffers) {
		t.Fatalf("full sweep (%d ops, %d buffers) not larger than smoke sweep (%d, %d)",
			len(fullOps), len(fullBuffers), len(ops), len(buffers))
	}
	if fullBuffers[0] != 32<<10 || fullBuffers[len(fullBuffers)-1] != 32<<20 {
		t.Fatalf("full sweep buffers = %v", fullBuffers)
	}
}

func TestServeLoadWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "serve.json")
	if err := serveLoad(out, 24, 16, 1, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep serveReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.IdenticalResults {
		t.Fatal("served results diverged from the reference engine")
	}
	if rep.OK == 0 || rep.Failed != 0 || rep.OK+rep.Shed != rep.Clients {
		t.Fatalf("wave accounting wrong: %+v", rep)
	}
	if rep.InflightHighWater <= 0 || rep.InflightHighWater > int64(rep.MaxInFlight) {
		t.Fatalf("in-flight high water %d outside (0, %d]", rep.InflightHighWater, rep.MaxInFlight)
	}
	// The wave's single shape builds one candidate table; every later request
	// answers from it (the eval cache now only sees the build's misses).
	if rep.TableBuilds != 1 || rep.TableHits != int64(rep.OK)-1 {
		t.Errorf("table builds/hits = %d/%d, want 1/%d", rep.TableBuilds, rep.TableHits, rep.OK-1)
	}
	if rep.CacheMisses == 0 {
		t.Error("table build did not populate the shared eval cache")
	}
	if rep.WallMs <= 0 || rep.LatencyP50Ms <= 0 {
		t.Errorf("degenerate timing: %+v", rep)
	}
}
