package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fusecu/internal/experiments"
	"fusecu/internal/search"
	"fusecu/internal/tablestore"
)

func TestRunWritesConsistentReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(out, false, 2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.IdenticalResults {
		t.Fatal("engines disagreed on the sweep")
	}
	if len(rep.Engines) != 5 {
		t.Fatalf("engines = %d", len(rep.Engines))
	}
	if rep.Engines[3].Name != "search-sweep-table" {
		t.Fatalf("fourth engine = %q, want search-sweep-table", rep.Engines[3].Name)
	}
	if rep.Engines[4].Name != "search-sweep-analytic" {
		t.Fatalf("fifth engine = %q, want search-sweep-analytic", rep.Engines[4].Name)
	}
	if rep.Cores <= 0 || rep.Workers <= 0 {
		t.Fatalf("cores/workers not resolved: %d/%d", rep.Cores, rep.Workers)
	}
	refEvals := rep.Engines[0].Evaluations + rep.Engines[0].CacheHits
	for _, e := range rep.Engines {
		if e.WallMs <= 0 {
			t.Errorf("%s: wall %.3fms", e.Name, e.WallMs)
		}
		if e.Name == "search-sweep-analytic" {
			// The analytic engine runs no lattice stage at all: its visit
			// count is its whole advantage, so it sits far below the
			// conserved lattice sum and never touches the cache.
			if e.Evaluations <= 0 || e.Evaluations >= refEvals || e.CacheHits != 0 {
				t.Errorf("analytic engine visits %d/%d hits (lattice sum %d)",
					e.Evaluations, e.CacheHits, refEvals)
			}
			continue
		}
		// Caching reassigns visits between the counters but must conserve
		// their sum across the lattice-backed engines.
		if e.Evaluations+e.CacheHits != refEvals {
			t.Errorf("%s: visits %d, reference %d", e.Name, e.Evaluations+e.CacheHits, refEvals)
		}
	}
	if rep.Engines[0].CacheHits != 0 {
		t.Error("reference engine reported cache hits")
	}
	if rep.Engines[1].CacheHits == 0 {
		t.Error("cached engine reported no cache hits")
	}
	// The polish-drop gate is the new path's acceptance criterion: the
	// analytic polish must price at least 10× fewer candidates than the GA
	// it replaced, over the same sweep points.
	if rep.PolishEvalsGA <= 0 || rep.PolishEvalsAnalytic <= 0 {
		t.Fatalf("polish eval counts not reported: GA %d, analytic %d",
			rep.PolishEvalsGA, rep.PolishEvalsAnalytic)
	}
	if rep.PolishEvalDrop < minPolishDrop {
		t.Errorf("polish eval drop %.1fx below the %dx floor", rep.PolishEvalDrop, minPolishDrop)
	}
	if rep.Engines[4].Evaluations != rep.PolishEvalsAnalytic {
		t.Errorf("analytic polish evals %d != analytic engine evals %d",
			rep.PolishEvalsAnalytic, rep.Engines[4].Evaluations)
	}
	for i, e := range rep.Engines {
		want := 1
		if e.Name == "parallel" {
			want = rep.Workers
		}
		if e.Workers != want {
			t.Errorf("engine %d (%s): workers %d, want %d", i, e.Name, e.Workers, want)
		}
	}
	if rep.SpeedupPrunedCached == nil || *rep.SpeedupPrunedCached <= 0 ||
		rep.SpeedupTable == nil || *rep.SpeedupTable <= 0 {
		t.Errorf("degenerate sequential speedups: %+v", rep)
	}
	// The parallel ratio only means something when the engine could actually
	// parallelize; on a single schedulable core it must be suppressed rather
	// than reported as scaling.
	if rep.SingleCore {
		if rep.SpeedupParallel != nil {
			t.Errorf("single-core run reported speedup_parallel %v, want null", *rep.SpeedupParallel)
		}
	} else if rep.SpeedupParallel == nil || *rep.SpeedupParallel <= 0 {
		t.Errorf("multi-core run suppressed speedup_parallel: %+v", rep)
	}
}

// TestRunSingleWorkerNullsParallelSpeedup pins the misleading-report fix: a
// run whose parallel engine cannot parallelize (-workers=1) must flag
// single_core and write speedup_parallel as JSON null, not a ~1.0 "speedup".
func TestRunSingleWorkerNullsParallelSpeedup(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(out, false, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if got := string(raw["speedup_parallel"]); got != "null" {
		t.Errorf("speedup_parallel = %s, want null", got)
	}
	if got := string(raw["single_core"]); got != "true" {
		t.Errorf("single_core = %s, want true", got)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 1 {
		t.Errorf("effective workers = %d, want 1", rep.Workers)
	}
	for _, e := range rep.Engines {
		if e.Workers != 1 {
			t.Errorf("%s: workers %d, want 1", e.Name, e.Workers)
		}
	}
}

// TestRatioGuards pins the speedup guard: degenerate wall times must yield
// nil (JSON null), never Inf or NaN, and sane inputs the plain quotient.
func TestRatioGuards(t *testing.T) {
	if r := ratio(0, time.Second); r != nil {
		t.Errorf("ratio(0, 1s) = %v, want nil", *r)
	}
	if r := ratio(time.Second, 0); r != nil {
		t.Errorf("ratio(1s, 0) = %v, want nil", *r)
	}
	if r := ratio(time.Second, minRatioWall-1); r != nil {
		t.Errorf("ratio(1s, sub-floor) = %v, want nil", *r)
	}
	if r := ratio(minRatioWall-1, time.Second); r != nil {
		t.Errorf("ratio(sub-floor, 1s) = %v, want nil", *r)
	}
	r := ratio(2*time.Second, time.Second)
	if r == nil || *r != 2 {
		t.Errorf("ratio(2s, 1s) = %v, want 2", r)
	}
	// Whatever the guard returns must always survive JSON marshalling.
	for _, d := range []time.Duration{0, 1, minRatioWall, time.Second} {
		if _, err := json.Marshal(report{SpeedupParallel: ratio(time.Second, d)}); err != nil {
			t.Errorf("marshal with opt=%v: %v", d, err)
		}
	}
}

func TestSweepSelection(t *testing.T) {
	ops, buffers := sweep(false)
	fullOps, fullBuffers := sweep(true)
	if len(fullOps) <= 0 || len(fullBuffers) <= len(buffers) {
		t.Fatalf("full sweep (%d ops, %d buffers) not larger than smoke sweep (%d, %d)",
			len(fullOps), len(fullBuffers), len(ops), len(buffers))
	}
	if fullBuffers[0] != 32<<10 || fullBuffers[len(fullBuffers)-1] != 32<<20 {
		t.Fatalf("full sweep buffers = %v", fullBuffers)
	}
}

func TestServeLoadWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "serve.json")
	if err := serveLoad(out, 24, 16, 1, 1, "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep serveReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.IdenticalResults {
		t.Fatal("served results diverged from the reference engine")
	}
	if rep.OK == 0 || rep.Failed != 0 || rep.OK+rep.Shed != rep.Clients {
		t.Fatalf("wave accounting wrong: %+v", rep)
	}
	if rep.InflightHighWater <= 0 || rep.InflightHighWater > int64(rep.MaxInFlight) {
		t.Fatalf("in-flight high water %d outside (0, %d]", rep.InflightHighWater, rep.MaxInFlight)
	}
	// Without a table directory, each of the wave's shapes builds its
	// candidate table at request time; every later request answers from it
	// (the eval cache now only sees the builds' misses).
	shapes := int64(rep.Shapes)
	if rep.TableBuilds != shapes || rep.TableHits != int64(rep.OK)-shapes {
		t.Errorf("table builds/hits = %d/%d, want %d/%d",
			rep.TableBuilds, rep.TableHits, shapes, int64(rep.OK)-shapes)
	}
	if rep.ZeroRuntimeBuilds {
		t.Error("zero_runtime_builds reported true without pregenerated tables")
	}
	if rep.CacheMisses == 0 {
		t.Error("table build did not populate the shared eval cache")
	}
	if rep.WallMs <= 0 || rep.LatencyP50Ms <= 0 {
		t.Errorf("degenerate timing: %+v", rep)
	}
	if len(rep.PerReplica) != 1 || rep.PerReplica[0].Requests == 0 {
		t.Errorf("per-replica breakdown wrong: %+v", rep.PerReplica)
	}
}

// TestServeLoadRoutedFleetZeroBuilds is the acceptance run in miniature: a
// 3-replica fleet behind the shape-affinity router, every table pregenerated
// on disk, and a wave that must finish with zero runtime table builds, every
// artifact load attributed to the replica owning its shape.
func TestServeLoadRoutedFleetZeroBuilds(t *testing.T) {
	dir := t.TempDir()
	store, err := tablestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var entries []tablestore.ManifestEntry
	for _, mm := range experiments.ServeLoadOps() {
		tab, err := search.NewCandTable(mm, search.GridFull, nil)
		if err != nil {
			t.Fatal(err)
		}
		name, err := store.Put(tab)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, tablestore.ManifestEntry{File: name})
	}
	if err := store.WriteManifest(entries); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(t.TempDir(), "serve.json")
	if err := serveLoad(out, 48, 16, 1, 3, dir, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep serveReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.IdenticalResults || rep.Failed != 0 {
		t.Fatalf("routed wave failed: %+v", rep)
	}
	if rep.Replicas != 3 || len(rep.PerReplica) != 3 {
		t.Fatalf("replicas = %d/%d, want 3", rep.Replicas, len(rep.PerReplica))
	}
	if !rep.ZeroRuntimeBuilds || rep.TableBuilds != 0 {
		t.Fatalf("wave built tables at request time: %+v", rep)
	}
	if rep.TableLoads != int64(rep.Shapes) {
		t.Errorf("table loads = %d, want one per shape (%d)", rep.TableLoads, rep.Shapes)
	}
	var busy int
	for _, rr := range rep.PerReplica {
		if rr.TableBuilds != 0 {
			t.Errorf("replica %s built %d tables", rr.Addr, rr.TableBuilds)
		}
		if rr.Requests > 0 {
			busy++
			if rr.TableHitRate <= 0 {
				t.Errorf("replica %s served %d requests with hit rate %.2f",
					rr.Addr, rr.Requests, rr.TableHitRate)
			}
		}
	}
	if busy < 2 {
		t.Errorf("affinity routing pinned the whole wave to %d replica(s)", busy)
	}
}
