package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"fusecu/api"
	"fusecu/client"
	"fusecu/internal/experiments"
	"fusecu/internal/faultinject"
	"fusecu/internal/op"
	"fusecu/internal/route"
	"fusecu/internal/search"
	"fusecu/internal/service"
	"fusecu/internal/tablestore"
)

// Chaos-schedule tuning. The schedule is gated on completion counts, not
// wall-clock sleeps, so the same seed produces the same event ordering on a
// loaded CI box and a fast laptop alike.
const (
	// chaosHealthInterval / chaosProbeTimeout compress the router's health
	// loop so a restarted replica is re-admitted quickly; the recovery
	// assertion is stated in terms of these.
	chaosHealthInterval = 100 * time.Millisecond
	chaosProbeTimeout   = 500 * time.Millisecond
	// chaosEjectThreshold ejects a dead replica after two straight failed
	// proxy attempts (the health loop force-ejects independently).
	chaosEjectThreshold = 2
	chaosEjectWindow    = 400 * time.Millisecond
	// chaosPreKill is how many wave completions must land before each kill
	// (the fleet is demonstrably serving); chaosPostKill how many must land
	// while the victim is down (its shapes are demonstrably failing over);
	// chaosSettle how many after the last recovery (the fleet is whole
	// again, and the corrupted artifact's shape has been re-requested).
	chaosPreKill  = 32
	chaosPostKill = 48
	chaosSettle   = 32
	// chaosRecoveryMargin absorbs scheduler noise on top of the structural
	// recovery bound (one health interval + one probe timeout).
	chaosRecoveryMargin = 2 * time.Second
	// chaosStall bounds every completion-count gate; hitting it means the
	// wave wedged, which is itself a failure worth reporting.
	chaosStall = 2 * time.Minute
	// Hedge-forcing latency plan at route.proxy (armed only when hedging is
	// on): every 41st attempt after the 13th stalls 3x the hedge delay, 8
	// times — enough firings that at least one lands on a request's opening
	// attempt and loses its race to the hedge.
	chaosHedgeEvery  = 41
	chaosHedgeOffset = 13
	chaosHedgeTimes  = 8
)

// chaosReport is the machine-readable result of the chaos wave (-serve-load
// -chaos): the routed serve-load fleet under a seeded kill/restart schedule
// with one corrupted table artifact, asserting that in-request failover,
// ejection, half-open recovery, and (optionally) hedging keep every request
// whole — zero non-enveloped failures, every 200 bit-identical to the
// sequential reference engine.
type chaosReport struct {
	Benchmark     string  `json:"benchmark"`
	Seed          int64   `json:"seed"`
	Clients       int     `json:"clients"`
	Replicas      int     `json:"replicas"`
	Shapes        int     `json:"shapes"`
	MaxInFlight   int     `json:"max_inflight"`
	Kills         int     `json:"kills"`
	ProxyAttempts int     `json:"proxy_attempts"`
	HedgeAfterMs  float64 `json:"hedge_after_ms"`
	// The recovery assertion's structural inputs.
	HealthIntervalMs float64 `json:"health_interval_ms"`
	ProbeTimeoutMs   float64 `json:"probe_timeout_ms"`
	TableDir         string  `json:"table_dir"`
	// Wave outcome: requests completed, and the failure partition. OK are
	// 200s (every one reference-checked); Shed are 429s that survived the
	// client's retry budget; Enveloped are any other API-error envelopes;
	// NonEnveloped are raw transport-level failures, which the failover
	// contract says must not exist.
	Requests     int64 `json:"requests"`
	OK           int64 `json:"ok"`
	Shed         int64 `json:"shed"`
	Enveloped    int64 `json:"enveloped"`
	NonEnveloped int64 `json:"non_enveloped"`
	// IdenticalResults is true iff every 200 — wave and settle pass both —
	// carried the reference engine's exact optimum for its shape.
	IdenticalResults bool    `json:"identical_results"`
	WallMs           float64 `json:"wall_ms"`
	// Router resilience counters over the whole run.
	Failovers       int64 `json:"failovers"`
	Hedges          int64 `json:"hedges"`
	HedgeWins       int64 `json:"hedge_wins"`
	Ejections       int64 `json:"ejections"`
	UpstreamErrors  int64 `json:"upstream_errors"`
	RetryableStatus int64 `json:"retryable_status"`
	CopyErrors      int64 `json:"copy_errors"`
	CloseErrors     int64 `json:"close_errors"`
	// Client-side resilience counters.
	ClientRetries         int64 `json:"client_retries"`
	ClientTransportErrors int64 `json:"client_transport_errors"`
	ClientServerErrors    int64 `json:"client_server_errors"`
	// Fleet table-registry activity, accumulated across replica
	// incarnations. The corrupted artifact must show up as at least one
	// load error and one compensating runtime build.
	TableLoads        int64  `json:"table_loads"`
	TableBuilds       int64  `json:"table_builds"`
	TableHits         int64  `json:"table_hits"`
	TableLoadErrors   int64  `json:"table_load_errors"`
	CorruptedArtifact string `json:"corrupted_artifact,omitempty"`
	// Events is the realized schedule, in order.
	Events []chaosEvent `json:"events"`
	// PerReplica breaks counters down by replica slot (all incarnations).
	PerReplica []chaosReplica `json:"per_replica"`
	// Violations lists every failed assertion; empty means the run passed.
	Violations []string `json:"violations,omitempty"`
}

// chaosEvent is one realized kill/restart cycle.
type chaosEvent struct {
	Victim string `json:"victim"`
	// KilledAt / RestartedAt are wave completion counts — the deterministic
	// clock the schedule runs on.
	KilledAt    int64 `json:"killed_at_requests"`
	RestartedAt int64 `json:"restarted_at_requests"`
	// Corrupted names the artifact flipped while this victim was down.
	Corrupted string `json:"corrupted_artifact,omitempty"`
	// RecoveryMs is restart-to-readmission as observed via the router's
	// breaker state.
	RecoveryMs float64 `json:"recovery_ms"`
}

// chaosReplica is one replica slot's totals across all its incarnations.
type chaosReplica struct {
	Addr            string `json:"addr"`
	Requests        int64  `json:"requests"`
	Attempts        int64  `json:"attempts"`
	TableLoads      int64  `json:"table_loads"`
	TableBuilds     int64  `json:"table_builds"`
	TableHits       int64  `json:"table_hits"`
	TableLoadErrors int64  `json:"table_load_errors"`
}

// chaosSlot is one replica slot: a fixed address the router knows, plus the
// live incarnation and the counter totals of the dead ones.
type chaosSlot struct {
	addr string
	url  string
	cfg  service.Config
	rep  *serveReplica
	// Counters accumulated from dead incarnations (a kill discards the
	// incarnation's registry, so totals are snapshotted at kill time).
	loads, builds, hits, loadErrs int64
}

// accumulate folds the live incarnation's table counters into the slot's
// running totals; call before kill() and once more at teardown.
func (s *chaosSlot) accumulate() {
	reg := s.rep.svc.Registry()
	s.loads += reg.Counter("table_loads").Value()
	s.builds += reg.Counter("table_builds").Value()
	s.hits += reg.Counter("table_hits").Value()
	s.loadErrs += reg.Counter("table_load_errors").Value()
}

// chaosLoad runs the seeded chaos schedule: the serve-load wave at full
// concurrency over a replicas-wide routed fleet, with kills replicas
// hard-killed and restarted in sequence (one table artifact corrupted during
// the first outage), then a settle pass over every shape. The report —
// realized schedule, resilience counters, and assertion verdicts — is
// written to out; a non-nil error means at least one assertion failed.
func chaosLoad(out string, clients, maxInFlight, workers, replicas int, tableDir string, seed int64, kills int, hedgeAfter time.Duration, proxyAttempts int) error {
	if replicas < 2 {
		return fmt.Errorf("chaos needs at least 2 replicas to fail over between, got %d", replicas)
	}
	if kills < 1 {
		return fmt.Errorf("chaos needs at least 1 kill, got %d", kills)
	}
	ops := experiments.ServeLoadOps()
	want := make(map[[3]int]search.Result, len(ops))
	for _, mm := range ops {
		ref, err := search.ReferenceExhaustive(mm, serveLoadBuffer)
		if err != nil {
			return fmt.Errorf("reference engine %v: %w", mm, err)
		}
		want[[3]int{mm.M, mm.K, mm.L}] = ref
	}

	// Pregenerate the bench tables when no directory was supplied: the
	// corruption leg of the schedule needs artifacts on disk to corrupt.
	if tableDir == "" {
		dir, err := os.MkdirTemp("", "fusecu-chaos-tables-")
		if err != nil {
			return err
		}
		defer func() {
			if rerr := os.RemoveAll(dir); rerr != nil {
				fmt.Fprintln(os.Stderr, "fusecu-bench: chaos cleanup:", rerr)
			}
		}()
		if err := generateBenchTables(dir, ops); err != nil {
			return err
		}
		tableDir = dir
	}
	store, err := tablestore.Open(tableDir)
	if err != nil {
		return err
	}

	// Boot the fleet on fixed addresses so a restarted incarnation rebinds
	// the URL the router was configured with.
	slots := make([]*chaosSlot, 0, replicas)
	defer func() {
		for _, s := range slots {
			if s.rep == nil {
				continue
			}
			if serr := s.rep.shutdown(); serr != nil {
				fmt.Fprintln(os.Stderr, "fusecu-bench: chaos shutdown:", serr)
			}
		}
	}()
	backends := make([]string, 0, replicas)
	for i := 0; i < replicas; i++ {
		cfg := service.Config{
			MaxInFlight:   maxInFlight,
			SearchWorkers: workers,
			TableStore:    store,
		}
		rep, err := startServeReplica("127.0.0.1:0", cfg)
		if err != nil {
			return err
		}
		s := &chaosSlot{addr: rep.addr, url: "http://" + rep.addr, cfg: cfg, rep: rep}
		slots = append(slots, s)
		backends = append(backends, s.url)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "fusecu-bench: "+format+"\n", args...)
	}
	router, err := route.New(route.Config{
		Backends:       backends,
		HealthInterval: chaosHealthInterval,
		ProbeTimeout:   chaosProbeTimeout,
		EjectThreshold: chaosEjectThreshold,
		EjectWindow:    chaosEjectWindow,
		ProxyAttempts:  proxyAttempts,
		HedgeAfter:     hedgeAfter,
		Logf:           logf,
	})
	if err != nil {
		return err
	}
	if err := router.CheckBackends(context.Background()); err != nil {
		return err
	}
	hctx, hcancel := context.WithCancel(context.Background())
	defer hcancel()
	router.Start(hctx)

	rsrv := &http.Server{Handler: router.Handler()}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	routeErr := make(chan error, 1)
	go func() { routeErr <- rsrv.Serve(rln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if serr := rsrv.Shutdown(ctx); serr != nil {
			fmt.Fprintln(os.Stderr, "fusecu-bench: router shutdown:", serr)
		}
		<-routeErr
	}()

	// When hedging is on, force it deterministically: a latency plan at the
	// router's per-attempt injection site stalls scheduled attempts for 3x
	// the hedge delay, so the hedge fires and wins the race. route.probe is
	// deliberately left unarmed — unit tests own that site; here a flaky
	// probe would smear the recovery-time assertion.
	if hedgeAfter > 0 {
		faultinject.Activate(faultinject.New(seed, faultinject.Plan{
			Site:   route.SiteProxy,
			Mode:   faultinject.ModeLatency,
			Every:  chaosHedgeEvery,
			Offset: chaosHedgeOffset,
			Times:  chaosHedgeTimes,
			Delay:  3 * hedgeAfter,
		}))
		defer faultinject.Deactivate()
	}

	// The wave rides the public retrying client with its breaker disabled:
	// the router's failover is under test, and an open client breaker would
	// hide it. Backoffs are compressed so 429 retries don't slow the
	// completion-count clock.
	cl, err := client.New(client.Config{
		BaseURL:          "http://" + rln.Addr().String(),
		MaxAttempts:      6,
		BaseBackoff:      5 * time.Millisecond,
		MaxBackoff:       80 * time.Millisecond,
		BreakerThreshold: -1,
		Seed:             seed,
	})
	if err != nil {
		return err
	}

	rep := chaosReport{
		Benchmark:        "serve-chaos-load",
		Seed:             seed,
		Clients:          clients,
		Replicas:         replicas,
		Shapes:           len(ops),
		MaxInFlight:      maxInFlight,
		Kills:            kills,
		ProxyAttempts:    proxyAttempts,
		HedgeAfterMs:     ms(hedgeAfter),
		HealthIntervalMs: ms(chaosHealthInterval),
		ProbeTimeoutMs:   ms(chaosProbeTimeout),
		TableDir:         tableDir,
		IdenticalResults: true,
	}
	fail := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	// The wave: every client loops the shape set until told to stop,
	// classifying each completion. The completion counter is the schedule's
	// clock.
	var (
		completions, okN, shedN, envN, nonEnvN, mismatches atomic.Int64
		wg                                                 sync.WaitGroup
	)
	stop := make(chan struct{})
	var stopOnce sync.Once
	stopWave := func() {
		stopOnce.Do(func() { close(stop) })
		wg.Wait()
	}
	defer stopWave()

	check := func(mm op.MatMul) bool {
		sr, err := cl.Search(context.Background(), client.SearchRequest{
			Op:      client.OpSpec{Name: mm.Name, M: mm.M, K: mm.K, L: mm.L},
			Buffer:  serveLoadBuffer,
			Engine:  "exhaustive",
			Workers: 1,
		})
		var apiErr *client.APIError
		switch {
		case err == nil:
			okN.Add(1)
			ref := want[[3]int{mm.M, mm.K, mm.L}]
			if sr.Dataflow.MemoryAccess != ref.Access.Total ||
				sr.Dataflow.TM != ref.Dataflow.Tiling.TM ||
				sr.Dataflow.TK != ref.Dataflow.Tiling.TK ||
				sr.Dataflow.TL != ref.Dataflow.Tiling.TL {
				mismatches.Add(1)
				return false
			}
			return true
		case errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests:
			shedN.Add(1)
		case errors.As(err, &apiErr):
			envN.Add(1)
		default:
			nonEnvN.Add(1)
		}
		return false
	}

	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := i; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				check(ops[j%len(ops)])
				completions.Add(1)
			}
		}(i)
	}

	// waitUntil blocks until the wave has landed target completions; the
	// stall deadline converts a wedged wave into a reported failure instead
	// of a hung bench.
	waitUntil := func(target int64, what string) error {
		deadline := time.Now().Add(chaosStall)
		for completions.Load() < target {
			if time.Now().After(deadline) {
				return fmt.Errorf("wave stalled waiting for %s (%d of %d completions)",
					what, completions.Load(), target)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}

	// Victim order: a seeded permutation of the slots that own at least one
	// serve-load shape — killing a replica no shape routes to would test
	// nothing.
	owned := make(map[string][]op.MatMul, replicas)
	for _, mm := range ops {
		u := router.OwnerURL(api.ShapeHash(mm.M, mm.K, mm.L, ""))
		owned[u] = append(owned[u], mm)
	}
	rng := rand.New(rand.NewSource(seed))
	var eligible []*chaosSlot
	for _, idx := range rng.Perm(len(slots)) {
		if len(owned[slots[idx].url]) > 0 {
			eligible = append(eligible, slots[idx])
		}
	}
	if len(eligible) == 0 {
		stopWave()
		return errors.New("chaos: no replica owns a serve-load shape (ring degenerate?)")
	}

	schedule := func() error {
		for ki := 0; ki < kills; ki++ {
			v := eligible[ki%len(eligible)]
			if err := waitUntil(completions.Load()+chaosPreKill, fmt.Sprintf("pre-kill traffic before kill %d", ki+1)); err != nil {
				return err
			}
			ev := chaosEvent{Victim: v.url, KilledAt: completions.Load()}
			logf("chaos: killing %s at %d completions", v.url, ev.KilledAt)
			v.accumulate()
			v.rep.kill()
			v.rep = nil
			// Keep the wave running against the hole: the victim's shapes
			// must demonstrably fail over while it is down.
			if err := waitUntil(ev.KilledAt+chaosPostKill, fmt.Sprintf("failover traffic during outage %d", ki+1)); err != nil {
				return err
			}
			if ki == 0 {
				// Corrupt one of the victim's own artifacts while it is
				// down: its next incarnation must reject the file (checksum)
				// and rebuild the table at request time.
				mm := owned[v.url][0]
				path := store.Path(mm, search.GridFull)
				if err := corruptArtifact(path); err != nil {
					return fmt.Errorf("corrupting %s: %w", path, err)
				}
				ev.Corrupted = filepath.Base(path)
				rep.CorruptedArtifact = ev.Corrupted
				logf("chaos: corrupted %s (shape %v)", ev.Corrupted, mm)
			}
			restartAt := time.Now()
			nr, err := startServeReplica(v.addr, v.cfg)
			if err != nil {
				return fmt.Errorf("restarting %s: %w", v.addr, err)
			}
			v.rep = nr
			ev.RestartedAt = completions.Load()
			// Recovery: the health loop must re-admit the replica within one
			// probe period (an interval to notice + a probe to pass), plus
			// scheduler margin.
			b := backendFor(router, v.url)
			bound := chaosHealthInterval + chaosProbeTimeout + chaosRecoveryMargin
			for !b.Healthy() {
				if time.Since(restartAt) > bound {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			ev.RecoveryMs = ms(time.Since(restartAt))
			if !b.Healthy() {
				fail("replica %s not re-admitted %v after restart (want one probe period: %v interval + %v probe)",
					v.url, bound, chaosHealthInterval, chaosProbeTimeout)
			}
			logf("chaos: %s re-admitted %.0fms after restart", v.url, ev.RecoveryMs)
			rep.Events = append(rep.Events, ev)
		}
		// Whole fleet again: let the wave settle so every shape — the
		// corrupted artifact's included — is served post-recovery.
		return waitUntil(completions.Load()+chaosSettle, "settle traffic after last recovery")
	}
	if err := schedule(); err != nil {
		fail("%v", err)
	}
	stopWave()
	rep.WallMs = ms(time.Since(start))

	// Settle pass: one sequential request per shape against the healed
	// fleet. Every one must be a 200 carrying the reference optimum.
	for _, mm := range ops {
		if !check(mm) {
			fail("settle pass: shape %v did not return the reference optimum", mm)
		}
		completions.Add(1)
	}
	rep.Requests = completions.Load()

	rep.OK = okN.Load()
	rep.Shed = shedN.Load()
	rep.Enveloped = envN.Load()
	rep.NonEnveloped = nonEnvN.Load()
	rep.IdenticalResults = mismatches.Load() == 0

	reg := router.Registry()
	rep.Failovers = reg.Counter("route_failovers_total").Value()
	rep.Hedges = reg.Counter("route_hedges_total").Value()
	rep.HedgeWins = reg.Counter("route_hedge_wins_total").Value()
	rep.Ejections = reg.Counter("route_ejections_total").Value()
	rep.UpstreamErrors = reg.Counter("route_upstream_errors_total").Value()
	rep.RetryableStatus = reg.Counter("route_retryable_status_total").Value()
	rep.CopyErrors = reg.Counter("route_copy_errors_total").Value()
	rep.CloseErrors = reg.Counter("route_close_errors_total").Value()

	stats := cl.Stats()
	rep.ClientRetries = stats.Retries
	rep.ClientTransportErrors = stats.TransportErrors
	rep.ClientServerErrors = stats.ServerErrors

	for _, s := range slots {
		s.accumulate()
		var requests, attempts int64
		if b := backendFor(router, s.url); b != nil {
			requests, attempts = b.Requests(), b.Attempts()
		}
		rep.PerReplica = append(rep.PerReplica, chaosReplica{
			Addr:            s.addr,
			Requests:        requests,
			Attempts:        attempts,
			TableLoads:      s.loads,
			TableBuilds:     s.builds,
			TableHits:       s.hits,
			TableLoadErrors: s.loadErrs,
		})
		rep.TableLoads += s.loads
		rep.TableBuilds += s.builds
		rep.TableHits += s.hits
		rep.TableLoadErrors += s.loadErrs
	}

	// The acceptance assertions.
	if rep.NonEnveloped > 0 {
		fail("%d non-enveloped failures (want 0: every failure must be an API envelope)", rep.NonEnveloped)
	}
	if rep.Enveloped > 0 {
		fail("%d enveloped non-429 failures survived the client's retries (want 0)", rep.Enveloped)
	}
	if !rep.IdenticalResults {
		fail("%d responses disagreed with the reference engine (want bit-identical)", mismatches.Load())
	}
	if rep.OK == 0 {
		fail("no successful requests at all")
	}
	// A request caught by a kill is rescued either by the outer failover
	// loop (route_failovers_total) or inside a hedge race that was already
	// pending (route_hedge_wins_total) — both are in-request recovery, and
	// with hedging on a fast hedge can absorb every casualty before the
	// failover loop sees one. Requests arriving after the health loop ejects
	// the victim skip it silently and count as neither.
	if rep.Failovers+rep.HedgeWins < int64(kills) {
		fail("route_failovers_total + route_hedge_wins_total = %d + %d, want >= %d (one in-request recovery per kill at minimum)",
			rep.Failovers, rep.HedgeWins, kills)
	}
	if rep.Ejections < 1 {
		fail("route_ejections_total = %d, want >= 1 (a killed replica must be ejected)", rep.Ejections)
	}
	if hedgeAfter > 0 {
		if rep.Hedges < 1 {
			fail("route_hedges_total = %d, want >= 1 (latency plan fired %d times)",
				rep.Hedges, faultinject.Active().Fires(route.SiteProxy))
		}
		if rep.HedgeWins < 1 {
			fail("route_hedge_wins_total = %d, want >= 1 (a 3x-delayed primary must lose its race)", rep.HedgeWins)
		}
	}
	if rep.TableLoadErrors < 1 {
		fail("table_load_errors = %d, want >= 1 (the corrupted artifact must be rejected on load)", rep.TableLoadErrors)
	}
	if rep.TableBuilds < 1 {
		fail("table_builds = %d, want >= 1 (the rejected table must be rebuilt at request time)", rep.TableBuilds)
	}

	if err := writeChaos(out, rep); err != nil {
		return err
	}
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "fusecu-bench: chaos violation:", v)
		}
		return fmt.Errorf("chaos run failed %d assertions (see %s)", len(rep.Violations), out)
	}
	fmt.Printf("wrote %s: %d requests (%d ok / %d shed) over %d replicas, %d kills in %.0fms; %d failovers, %d hedges (%d wins), %d ejections, table %d loaded / %d built (%d load errors), identical=%v\n",
		out, rep.Requests, rep.OK, rep.Shed, rep.Replicas, rep.Kills, rep.WallMs,
		rep.Failovers, rep.Hedges, rep.HedgeWins, rep.Ejections,
		rep.TableLoads, rep.TableBuilds, rep.TableLoadErrors, rep.IdenticalResults)
	for _, ev := range rep.Events {
		note := ""
		if ev.Corrupted != "" {
			note = ", corrupted " + ev.Corrupted
		}
		fmt.Printf("  killed %s at %d completions, restarted at %d, re-admitted in %.0fms%s\n",
			ev.Victim, ev.KilledAt, ev.RestartedAt, ev.RecoveryMs, note)
	}
	return nil
}

// generateBenchTables builds the serve-load candidate-table artifacts into
// dir — the same set fusecu-tablegen -set bench produces — so a chaos run
// needs no pregenerated directory.
func generateBenchTables(dir string, ops []op.MatMul) error {
	store, err := tablestore.Open(dir)
	if err != nil {
		return err
	}
	entries := make([]tablestore.ManifestEntry, 0, len(ops))
	for _, mm := range ops {
		tab, err := search.NewCandTable(mm, search.GridFull, nil)
		if err != nil {
			return fmt.Errorf("building table %v: %w", mm, err)
		}
		name, err := store.Put(tab)
		if err != nil {
			return err
		}
		info, err := os.Stat(store.Path(mm, search.GridFull))
		if err != nil {
			return err
		}
		entries = append(entries, tablestore.ManifestEntry{
			File:       name,
			ShapeHash:  api.ShapeHash(mm.M, mm.K, mm.L, search.GridFull.String()),
			Op:         api.OpSpec{Name: mm.Name, M: mm.M, K: mm.K, L: mm.L},
			Grid:       search.GridFull.String(),
			Candidates: tab.Candidates(),
			Bytes:      info.Size(),
		})
	}
	return store.WriteManifest(entries)
}

// corruptArtifact flips one byte in the middle of the file: the length and
// framing stay plausible, so the corruption must be caught by the store's
// section checksums, not by a short read.
func corruptArtifact(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("artifact %s is empty", path)
	}
	data[len(data)/2] ^= 0xFF
	return os.WriteFile(path, data, 0o644)
}

// backendFor finds the router's Backend for a base URL.
func backendFor(r *route.Router, url string) *route.Backend {
	for _, b := range r.Backends() {
		if b.URL() == url {
			return b
		}
	}
	return nil
}

func writeChaos(path string, rep chaosReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
