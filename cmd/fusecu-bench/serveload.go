package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"

	"fusecu/client"
	"fusecu/internal/experiments"
	"fusecu/internal/op"
	"fusecu/internal/route"
	"fusecu/internal/search"
	"fusecu/internal/service"
	"fusecu/internal/tablestore"
)

// serveReport is the machine-readable result of the service load benchmark
// (BENCH_serve.json): a wave of concurrent /v1/search requests over the
// serve-load shape set, fired through the shape-affinity router at a fleet
// of in-process fusecu-serve replicas, driven through the public retrying
// client, every accepted answer checked against the frozen sequential
// reference engine.
type serveReport struct {
	Benchmark   string `json:"benchmark"`
	Clients     int    `json:"clients"`
	Replicas    int    `json:"replicas"`
	Shapes      int    `json:"shapes"`
	MaxInFlight int    `json:"max_inflight"`
	// TableDir is the pregenerated artifact directory ("" = tables were
	// built at request time).
	TableDir string `json:"table_dir,omitempty"`
	// OK / Shed / Failed partition the wave after retries: 200s, calls
	// still shed (429) when the retry budget ran out, anything else.
	OK     int `json:"ok"`
	Shed   int `json:"shed"`
	Failed int `json:"failed"`
	// Resilience-layer counters from the client: attempts beyond the first
	// (mostly Retry-After-honoring retries of shed requests), responses
	// served by the server's principle-based degraded fallback, and calls
	// rejected client-side by the open circuit breaker.
	Retried     int64 `json:"retried"`
	Degraded    int64 `json:"degraded"`
	BreakerOpen int64 `json:"breaker_open"`
	// ShedResponses is the fleet-wide count of 429s issued during the wave
	// (each may have been retried into an eventual 200).
	ShedResponses int64 `json:"shed_responses"`
	// InflightHighWater is the worst replica's peak of simultaneously
	// admitted requests.
	InflightHighWater int64   `json:"inflight_high_water"`
	WallMs            float64 `json:"wall_ms"`
	ThroughputRPS     float64 `json:"throughput_rps"`
	// Latency percentiles are the worst replica's (percentiles cannot be
	// merged across registries; the slowest replica bounds the fleet).
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	// Fleet-wide candidate-table registry activity: artifacts loaded from
	// the pregenerated -table-dir, tables built at request time, and O(log n)
	// answers served from resident tables. With a pregenerated directory the
	// wave must report TableBuilds == 0 — every table comes from disk.
	TableLoads  int64 `json:"table_loads"`
	TableBuilds int64 `json:"table_builds"`
	TableHits   int64 `json:"table_hits"`
	// ZeroRuntimeBuilds is true iff no replica built a table during the wave.
	ZeroRuntimeBuilds bool `json:"zero_runtime_builds"`
	// PerReplica breaks the wave down by replica: consistent hashing should
	// give every replica its own shape subset, each answered from its own
	// tables.
	PerReplica []replicaReport `json:"per_replica"`
	// IdenticalResults is true iff every 200 response carried the reference
	// engine's exact optimum (tiling and memory access) for its shape.
	IdenticalResults bool `json:"identical_results"`
}

// replicaReport is one replica's share of the wave.
type replicaReport struct {
	Addr string `json:"addr"`
	// Requests counts what the router proxied here (including retries).
	Requests    int64 `json:"requests"`
	TableLoads  int64 `json:"table_loads"`
	TableBuilds int64 `json:"table_builds"`
	TableHits   int64 `json:"table_hits"`
	// TableHitRate is TableHits / Requests: the fraction of this replica's
	// proxied requests answered from a resident candidate table.
	TableHitRate float64 `json:"table_hit_rate"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
}

const serveLoadBuffer = 4096

// serveReplica is one in-process fusecu-serve instance behind the router.
type serveReplica struct {
	svc  *service.Server
	srv  *http.Server
	addr string
	errc chan error
}

// startServeReplica boots one in-process fusecu-serve replica on addr and
// marks it ready once the listener is accepting. "127.0.0.1:0" picks a free
// port; the chaos harness instead passes a dead incarnation's fixed addr so
// the restarted replica rebinds the same URL the router was configured with.
func startServeReplica(addr string, cfg service.Config) (*serveReplica, error) {
	svc := service.New(cfg)
	srv := &http.Server{Handler: svc.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r := &serveReplica{svc: svc, srv: srv, addr: ln.Addr().String(), errc: make(chan error, 1)}
	svc.SetReady(true)
	go func() { r.errc <- srv.Serve(ln) }()
	return r, nil
}

// shutdown drains the replica gracefully (bench teardown).
func (r *serveReplica) shutdown() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := r.srv.Shutdown(ctx)
	<-r.errc
	return err
}

// kill aborts the replica: the listener and every open connection close
// immediately, which is what a process crash looks like from the router's
// side — in-flight proxy attempts see a transport error, not a drain.
func (r *serveReplica) kill() {
	// Close's error is the listener's close result; the interesting signal
	// (aborted connections) reaches the router as transport errors.
	_ = r.srv.Close()
	<-r.errc
}

// serveLoad boots a fleet of in-process fusecu-serve replicas behind the
// shape-affinity router, fires clients concurrent /v1/search calls over the
// serve-load shape set through the public retrying client, verifies every
// accepted answer against the sequential reference engine, and writes the
// report to out. With a non-empty tableDir each replica resolves its tables
// from the pregenerated artifacts and the wave is required to finish with
// zero runtime table builds. A non-empty pprofAddr additionally serves
// net/http/pprof on its own listener for the duration of the wave.
func serveLoad(out string, clients, maxInFlight, workers, replicas int, tableDir, pprofAddr string) error {
	if replicas <= 0 {
		return fmt.Errorf("replicas must be positive, got %d", replicas)
	}
	ops := experiments.ServeLoadOps()
	want := make(map[[3]int]search.Result, len(ops))
	for _, mm := range ops {
		ref, err := search.ReferenceExhaustive(mm, serveLoadBuffer)
		if err != nil {
			return fmt.Errorf("reference engine %v: %w", mm, err)
		}
		want[[3]int{mm.M, mm.K, mm.L}] = ref
	}

	if pprofAddr != "" {
		pln, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		psrv := &http.Server{Handler: pprofMux()}
		go func() {
			if serr := psrv.Serve(pln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "fusecu-bench: pprof:", serr)
			}
		}()
		defer func() {
			if cerr := psrv.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "fusecu-bench: pprof close:", cerr)
			}
		}()
		fmt.Printf("pprof on %s\n", pln.Addr())
	}

	var store *tablestore.Store
	if tableDir != "" {
		var err error
		if store, err = tablestore.Open(tableDir); err != nil {
			return err
		}
	}

	// Boot the fleet.
	fleet := make([]*serveReplica, 0, replicas)
	defer func() {
		for _, r := range fleet {
			if err := r.shutdown(); err != nil {
				fmt.Fprintln(os.Stderr, "fusecu-bench: shutdown:", err)
			}
		}
	}()
	backends := make([]string, 0, replicas)
	for i := 0; i < replicas; i++ {
		r, err := startServeReplica("127.0.0.1:0", service.Config{
			MaxInFlight:   maxInFlight,
			SearchWorkers: workers,
			TableStore:    store,
		})
		if err != nil {
			return err
		}
		fleet = append(fleet, r)
		backends = append(backends, "http://"+r.addr)
	}

	// Front the fleet with the shape-affinity router: identical shapes
	// always land on the replica already holding their table.
	router, err := route.New(route.Config{Backends: backends})
	if err != nil {
		return err
	}
	if err := router.CheckBackends(context.Background()); err != nil {
		return err
	}
	rsrv := &http.Server{Handler: router.Handler()}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	routeErr := make(chan error, 1)
	go func() { routeErr <- rsrv.Serve(rln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := rsrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "fusecu-bench: router shutdown:", err)
		}
		<-routeErr
	}()

	cl, err := client.New(client.Config{
		BaseURL:     "http://" + rln.Addr().String(),
		MaxAttempts: 4,
		// The wave intentionally sheds ~(clients - maxInFlight) requests, and
		// consecutive 429s don't trip the breaker; keep the threshold high so
		// a transient flurry of transport hiccups doesn't abort the bench.
		BreakerThreshold: 64,
	})
	if err != nil {
		return err
	}

	rep := serveReport{
		Benchmark:        "serve-search-load",
		Clients:          clients,
		Replicas:         replicas,
		Shapes:           len(ops),
		MaxInFlight:      maxInFlight,
		TableDir:         tableDir,
		IdenticalResults: true,
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(mm op.MatMul) {
			defer wg.Done()
			req := client.SearchRequest{
				Op:      client.OpSpec{Name: mm.Name, M: mm.M, K: mm.K, L: mm.L},
				Buffer:  serveLoadBuffer,
				Engine:  "exhaustive",
				Workers: 1,
			}
			sr, err := cl.Search(context.Background(), req)
			mu.Lock()
			defer mu.Unlock()
			var apiErr *client.APIError
			switch {
			case err == nil:
				rep.OK++
				ref := want[[3]int{mm.M, mm.K, mm.L}]
				if sr.Dataflow.MemoryAccess != ref.Access.Total ||
					sr.Dataflow.TM != ref.Dataflow.Tiling.TM ||
					sr.Dataflow.TK != ref.Dataflow.Tiling.TK ||
					sr.Dataflow.TL != ref.Dataflow.Tiling.TL {
					rep.IdenticalResults = false
				}
			case errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests:
				rep.Shed++
			default:
				rep.Failed++
			}
		}(ops[i%len(ops)])
	}
	wg.Wait()
	wall := time.Since(start)

	rep.WallMs = ms(wall)
	if wall > 0 {
		rep.ThroughputRPS = float64(rep.OK) / wall.Seconds()
	}
	stats := cl.Stats()
	rep.Retried = stats.Retries
	rep.Degraded = stats.Degraded
	rep.BreakerOpen = stats.BreakerOpen

	for i, r := range fleet {
		reg := r.svc.Registry()
		rr := replicaReport{
			Addr:         r.addr,
			Requests:     router.Backends()[i].Requests(),
			TableLoads:   reg.Counter("table_loads").Value(),
			TableBuilds:  reg.Counter("table_builds").Value(),
			TableHits:    reg.Counter("table_hits").Value(),
			LatencyP95Ms: reg.Snapshot()["http_latency_ms:search_p95"],
		}
		if rr.Requests > 0 {
			rr.TableHitRate = float64(rr.TableHits) / float64(rr.Requests)
		}
		rep.PerReplica = append(rep.PerReplica, rr)
		rep.TableLoads += rr.TableLoads
		rep.TableBuilds += rr.TableBuilds
		rep.TableHits += rr.TableHits
		rep.ShedResponses += reg.Counter("http_responses_total:429").Value()
		if hw := reg.Gauge("http_inflight").High(); hw > rep.InflightHighWater {
			rep.InflightHighWater = hw
		}
		snap := reg.Snapshot()
		if p := snap["http_latency_ms:search_p50"]; p > rep.LatencyP50Ms {
			rep.LatencyP50Ms = p
		}
		if p := snap["http_latency_ms:search_p95"]; p > rep.LatencyP95Ms {
			rep.LatencyP95Ms = p
		}
		if p := snap["http_latency_ms:search_p99"]; p > rep.LatencyP99Ms {
			rep.LatencyP99Ms = p
		}
		st := r.svc.Cache().Stats()
		rep.CacheHits += st.Hits
		rep.CacheMisses += st.Misses
	}
	rep.ZeroRuntimeBuilds = rep.TableBuilds == 0

	if rep.OK == 0 || rep.Failed > 0 || !rep.IdenticalResults {
		if werr := writeServe(out, rep); werr != nil {
			return werr
		}
		return fmt.Errorf("load wave failed: %d ok, %d shed, %d failed, identical=%v (see %s)",
			rep.OK, rep.Shed, rep.Failed, rep.IdenticalResults, out)
	}
	// With pregenerated tables the wave must never pay a build at request
	// time — that is the whole contract of -table-dir.
	if tableDir != "" && !rep.ZeroRuntimeBuilds {
		if werr := writeServe(out, rep); werr != nil {
			return werr
		}
		return fmt.Errorf("wave built %d tables at request time despite -table-dir %s (see %s)",
			rep.TableBuilds, tableDir, out)
	}
	if err := writeServe(out, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d ok / %d shed over %d replicas x %d shapes in %.1fms (%.0f rps), %d retried (%d server 429s), %d degraded, peak in-flight %d, p95 %.2fms, table %d loaded / %d built / %d hits, zero-builds=%v, identical=%v\n",
		out, rep.OK, rep.Shed, rep.Replicas, rep.Shapes, rep.WallMs, rep.ThroughputRPS,
		rep.Retried, rep.ShedResponses, rep.Degraded,
		rep.InflightHighWater, rep.LatencyP95Ms,
		rep.TableLoads, rep.TableBuilds, rep.TableHits, rep.ZeroRuntimeBuilds, rep.IdenticalResults)
	for _, rr := range rep.PerReplica {
		fmt.Printf("  replica %s: %d requests, table %d loaded / %d built / %d hits (hit rate %.2f)\n",
			rr.Addr, rr.Requests, rr.TableLoads, rr.TableBuilds, rr.TableHits, rr.TableHitRate)
	}
	return nil
}

// pprofMux mounts the net/http/pprof handlers on a fresh mux so profiling
// stays off the benchmarked service listener.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", recovered(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", recovered(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", recovered(pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", recovered(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", recovered(pprof.Trace))
	return mux
}

// recovered keeps the panic-isolation contract on the profiling mux: a
// panicking pprof handler answers 500 and the bench keeps running.
func recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				http.Error(w, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
			}
		}()
		h(w, r)
	}
}

func writeServe(path string, rep serveReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
