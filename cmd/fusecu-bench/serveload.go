package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"

	"fusecu/client"
	"fusecu/internal/op"
	"fusecu/internal/search"
	"fusecu/internal/service"
)

// serveReport is the machine-readable result of the service load benchmark
// (BENCH_serve.json): a wave of concurrent /v1/search requests against an
// in-process fusecu-serve instance, driven through the public retrying
// client, every accepted answer checked against the frozen sequential
// reference engine.
type serveReport struct {
	Benchmark   string `json:"benchmark"`
	Clients     int    `json:"clients"`
	MaxInFlight int    `json:"max_inflight"`
	// OK / Shed / Failed partition the wave after retries: 200s, calls
	// still shed (429) when the retry budget ran out, anything else.
	OK     int `json:"ok"`
	Shed   int `json:"shed"`
	Failed int `json:"failed"`
	// Resilience-layer counters from the client: attempts beyond the first
	// (mostly Retry-After-honoring retries of shed requests), responses
	// served by the server's principle-based degraded fallback, and calls
	// rejected client-side by the open circuit breaker.
	Retried     int64 `json:"retried"`
	Degraded    int64 `json:"degraded"`
	BreakerOpen int64 `json:"breaker_open"`
	// ShedResponses is the server-side count of 429s issued during the
	// wave (each may have been retried into an eventual 200).
	ShedResponses int64 `json:"shed_responses"`
	// InflightHighWater is the service's own gauge of the peak number of
	// simultaneously admitted requests.
	InflightHighWater int64   `json:"inflight_high_water"`
	WallMs            float64 `json:"wall_ms"`
	ThroughputRPS     float64 `json:"throughput_rps"`
	LatencyP50Ms      float64 `json:"latency_p50_ms"`
	LatencyP95Ms      float64 `json:"latency_p95_ms"`
	LatencyP99Ms      float64 `json:"latency_p99_ms"`
	CacheHits         int64   `json:"cache_hits"`
	CacheMisses       int64   `json:"cache_misses"`
	// TableBuilds / TableHits count the candidate-table registry's activity:
	// the wave's single shape builds one footprint-indexed table, and every
	// subsequent request answers from it without touching the eval cache.
	TableBuilds int64 `json:"table_builds"`
	TableHits   int64 `json:"table_hits"`
	// IdenticalResults is true iff every 200 response carried the reference
	// engine's exact optimum (tiling and memory access).
	IdenticalResults bool `json:"identical_results"`
}

// serveLoadOp is the per-request operator: small enough that a wave of ~100
// requests finishes quickly on one core, large enough that requests overlap.
var serveLoadOp = op.MatMul{Name: "bench", M: 32, K: 24, L: 28}

const serveLoadBuffer = 4096

// serveLoad boots an in-process fusecu-serve, fires clients concurrent
// /v1/search calls at it through the public retrying client (so shed
// requests honor Retry-After instead of being dropped), verifies every
// accepted answer against the sequential reference engine, and writes the
// report to out. A non-empty pprofAddr additionally serves net/http/pprof
// on its own listener for the duration of the wave, so the hot path can be
// profiled under real load without exposing pprof on the service address.
func serveLoad(out string, clients, maxInFlight, workers int, pprofAddr string) error {
	want, err := search.ReferenceExhaustive(serveLoadOp, serveLoadBuffer)
	if err != nil {
		return fmt.Errorf("reference engine: %w", err)
	}

	if pprofAddr != "" {
		pln, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		psrv := &http.Server{Handler: pprofMux()}
		go func() {
			if serr := psrv.Serve(pln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "fusecu-bench: pprof:", serr)
			}
		}()
		defer func() {
			if cerr := psrv.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "fusecu-bench: pprof close:", cerr)
			}
		}()
		fmt.Printf("pprof on %s\n", pln.Addr())
	}

	svc := service.New(service.Config{MaxInFlight: maxInFlight, SearchWorkers: workers})
	srv := &http.Server{Handler: svc.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "fusecu-bench: shutdown:", err)
		}
		<-serveErr
	}()

	cl, err := client.New(client.Config{
		BaseURL:     "http://" + ln.Addr().String(),
		MaxAttempts: 4,
		// The wave intentionally sheds ~(clients - maxInFlight) requests, and
		// consecutive 429s don't trip the breaker; keep the threshold high so
		// a transient flurry of transport hiccups doesn't abort the bench.
		BreakerThreshold: 64,
	})
	if err != nil {
		return err
	}
	req := client.SearchRequest{
		Op:      client.OpSpec{Name: serveLoadOp.Name, M: serveLoadOp.M, K: serveLoadOp.K, L: serveLoadOp.L},
		Buffer:  serveLoadBuffer,
		Engine:  "exhaustive",
		Workers: 1,
	}

	rep := serveReport{
		Benchmark:        "serve-search-load",
		Clients:          clients,
		MaxInFlight:      maxInFlight,
		IdenticalResults: true,
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sr, err := cl.Search(context.Background(), req)
			mu.Lock()
			defer mu.Unlock()
			var apiErr *client.APIError
			switch {
			case err == nil:
				rep.OK++
				if sr.Dataflow.MemoryAccess != want.Access.Total ||
					sr.Dataflow.TM != want.Dataflow.Tiling.TM ||
					sr.Dataflow.TK != want.Dataflow.Tiling.TK ||
					sr.Dataflow.TL != want.Dataflow.Tiling.TL {
					rep.IdenticalResults = false
				}
			case errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests:
				rep.Shed++
			default:
				rep.Failed++
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	rep.WallMs = ms(wall)
	if wall > 0 {
		rep.ThroughputRPS = float64(rep.OK) / wall.Seconds()
	}
	stats := cl.Stats()
	rep.Retried = stats.Retries
	rep.Degraded = stats.Degraded
	rep.BreakerOpen = stats.BreakerOpen
	rep.InflightHighWater = svc.Registry().Gauge("http_inflight").High()
	rep.ShedResponses = svc.Registry().Counter("http_responses_total:429").Value()
	snap := svc.Registry().Snapshot()
	rep.LatencyP50Ms = snap["http_latency_ms:search_p50"]
	rep.LatencyP95Ms = snap["http_latency_ms:search_p95"]
	rep.LatencyP99Ms = snap["http_latency_ms:search_p99"]
	st := svc.Cache().Stats()
	rep.CacheHits, rep.CacheMisses = st.Hits, st.Misses
	rep.TableBuilds = svc.Registry().Counter("table_builds").Value()
	rep.TableHits = svc.Registry().Counter("table_hits").Value()

	if rep.OK == 0 || rep.Failed > 0 || !rep.IdenticalResults {
		if werr := writeServe(out, rep); werr != nil {
			return werr
		}
		return fmt.Errorf("load wave failed: %d ok, %d shed, %d failed, identical=%v (see %s)",
			rep.OK, rep.Shed, rep.Failed, rep.IdenticalResults, out)
	}
	if err := writeServe(out, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d ok / %d shed in %.1fms (%.0f rps), %d retried (%d server 429s), %d degraded, peak in-flight %d, p95 %.2fms, cache %d/%d hits, table %d built / %d hits, identical=%v\n",
		out, rep.OK, rep.Shed, rep.WallMs, rep.ThroughputRPS,
		rep.Retried, rep.ShedResponses, rep.Degraded,
		rep.InflightHighWater, rep.LatencyP95Ms, rep.CacheHits, rep.CacheHits+rep.CacheMisses,
		rep.TableBuilds, rep.TableHits, rep.IdenticalResults)
	return nil
}

// pprofMux mounts the net/http/pprof handlers on a fresh mux so profiling
// stays off the benchmarked service listener.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", recovered(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", recovered(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", recovered(pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", recovered(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", recovered(pprof.Trace))
	return mux
}

// recovered keeps the panic-isolation contract on the profiling mux: a
// panicking pprof handler answers 500 and the bench keeps running.
func recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				http.Error(w, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
			}
		}()
		h(w, r)
	}
}

func writeServe(path string, rep serveReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
