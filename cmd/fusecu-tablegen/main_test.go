package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fusecu/api"
	"fusecu/internal/cost"
	"fusecu/internal/experiments"
	"fusecu/internal/op"
	"fusecu/internal/search"
	"fusecu/internal/tablestore"
)

func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"positional args", []string{"-out", t.TempDir(), "extra"}},
		{"missing out", []string{"-set", "bench"}},
		{"unknown set", []string{"-out", t.TempDir(), "-set", "everything"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
		})
	}
}

// TestGenerateBenchSet generates the serve-load artifacts and checks the
// directory contents, the manifest, and that each artifact loads back as a
// table answering like a fresh build.
func TestGenerateBenchSet(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-out", dir, "-set", "bench", "-verify"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d (stderr: %s)", code, stderr.String())
	}
	ops := experiments.ServeLoadOps()
	for _, want := range []string{"verified", "generated"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}

	store, err := tablestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := store.ReadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.CostModelVersion != cost.ModelVersion || m.TableFormatVersion != search.TableFormatVersion {
		t.Fatalf("manifest stamps %s/%d, want %s/%d",
			m.CostModelVersion, m.TableFormatVersion, cost.ModelVersion, search.TableFormatVersion)
	}
	if len(m.Tables) != len(ops) {
		t.Fatalf("manifest lists %d tables, want %d", len(m.Tables), len(ops))
	}
	for _, e := range m.Tables {
		if e.Grid != "full" {
			t.Errorf("bench artifact %s on %s grid, want full", e.File, e.Grid)
		}
		if want := api.ShapeHash(e.Op.M, e.Op.K, e.Op.L, e.Grid); e.ShapeHash != want {
			t.Errorf("manifest hash %s, want %s", e.ShapeHash, want)
		}
		info, err := os.Stat(filepath.Join(dir, e.File))
		if err != nil {
			t.Fatalf("manifest names missing artifact: %v", err)
		}
		if info.Size() != e.Bytes {
			t.Errorf("%s is %d bytes, manifest says %d", e.File, info.Size(), e.Bytes)
		}
	}

	// Disk-loaded tables are interchangeable with fresh builds.
	mm := ops[0]
	loaded, err := store.Load(mm, search.GridFull)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := search.NewCandTable(mm, search.GridFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, buffer := range []int64{256, 4096, 1 << 20} {
		want, werr := fresh.Best(buffer)
		got, gerr := loaded.Best(buffer)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("buffer %d: fresh err %v, loaded err %v", buffer, werr, gerr)
		}
		if werr == nil && (got.Dataflow != want.Dataflow || got.Access != want.Access) {
			t.Fatalf("buffer %d: loaded answer differs from fresh build", buffer)
		}
	}
}

// TestGenerateIsIdempotentAndDeterministic: a second run over the same
// directory republishes byte-identical artifacts (content addressing would
// be meaningless otherwise).
func TestGenerateIsIdempotentAndDeterministic(t *testing.T) {
	dir := t.TempDir()
	var out1, out2, stderr bytes.Buffer
	if code := run([]string{"-out", dir, "-set", "bench"}, &out1, &stderr); code != 0 {
		t.Fatalf("first run: %d (stderr: %s)", code, stderr.String())
	}
	before := artifactBytes(t, dir)
	if code := run([]string{"-out", dir, "-set", "bench"}, &out2, &stderr); code != 0 {
		t.Fatalf("second run: %d (stderr: %s)", code, stderr.String())
	}
	after := artifactBytes(t, dir)
	if len(before) != len(after) {
		t.Fatalf("artifact count changed: %d -> %d", len(before), len(after))
	}
	for name, data := range before {
		if !bytes.Equal(data, after[name]) {
			t.Fatalf("artifact %s changed between identical runs", name)
		}
	}
}

// TestVerifyCatchesCorruption: flipping one byte of a published artifact
// makes a subsequent -verify-only regeneration fail loudly rather than
// silently republish over it... so corrupt it after generation and verify
// via the store path tablegen uses.
func TestVerifyCatchesCorruption(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-out", dir, "-set", "bench"}, &stdout, &stderr); code != 0 {
		t.Fatalf("generate: %d (stderr: %s)", code, stderr.String())
	}
	// Corrupt one artifact's tail (a step-section byte, past the header).
	m := readManifest(t, dir)
	path := filepath.Join(dir, m.Tables[0].File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	store, err := tablestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := m.Tables[0]
	task := genTask{
		mm:   op.MatMul{Name: e.Op.Name, M: e.Op.M, K: e.Op.K, L: e.Op.L},
		grid: search.GridFull,
	}
	if err := verifyArtifact(store, task); err == nil {
		t.Fatal("verify accepted a corrupted artifact")
	}
}

func readManifest(t *testing.T, dir string) *tablestore.Manifest {
	t.Helper()
	store, err := tablestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := store.ReadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tables) == 0 {
		t.Fatal("empty manifest")
	}
	return m
}

func artifactBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*"+tablestore.Ext))
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, n := range names {
		data, err := os.ReadFile(n)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(n)] = data
	}
	if len(out) == 0 {
		t.Fatal("no artifacts generated")
	}
	return out
}
