// Command fusecu-tablegen builds candidate-table artifacts offline, so a
// serving fleet started with -table-dir answers every known shape from disk
// instead of paying the table build at request time.
//
//	fusecu-tablegen -out tables/ -set table2 -verify
//
// The -set flag picks the shape family:
//
//   - table2: the deduplicated operator shapes of the Table II evaluation
//     models plus the Fig. 11 LLaMA2 sequence sweep, on the coarse lattice
//     (what /v1/search engine=auto and engine=coarse consult).
//   - bench: the serve-load benchmark shapes on the full lattice (what
//     engine=exhaustive consults), for the routed-fleet load bench.
//   - all: both.
//
// Artifacts are content-addressed (<shapehash>-<costmodel>.fct) and
// published atomically; a manifest.json indexes the directory for tooling
// and CI. With -verify every artifact is loaded back through the store
// (checksums plus live cost-model cross-check) and its re-encoding is
// required to be bit-identical to the file on disk — the restart-load
// property the serving path depends on.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"fusecu/api"
	"fusecu/internal/experiments"
	"fusecu/internal/op"
	"fusecu/internal/search"
	"fusecu/internal/tablestore"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// genTask is one artifact to build: a shape and the lattice to tabulate.
type genTask struct {
	mm   op.MatMul
	grid search.Grid
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fusecu-tablegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out    = fs.String("out", "", "output directory for artifacts (required)")
		set    = fs.String("set", "table2", "shape family to generate: table2, bench, or all")
		verify = fs.Bool("verify", false,
			"after generating, load every artifact back from disk and require its re-encoding to be bit-identical")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "fusecu-tablegen: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "fusecu-tablegen: -out is required")
		fs.Usage()
		return 2
	}

	var tasks []genTask
	if *set == "table2" || *set == "all" {
		shapes, err := experiments.TableIIShapes()
		if err != nil {
			fmt.Fprintln(stderr, "fusecu-tablegen:", err)
			return 1
		}
		for _, mm := range shapes {
			tasks = append(tasks, genTask{mm: mm, grid: search.GridCoarse})
		}
	}
	if *set == "bench" || *set == "all" {
		for _, mm := range experiments.ServeLoadOps() {
			tasks = append(tasks, genTask{mm: mm, grid: search.GridFull})
		}
	}
	if len(tasks) == 0 {
		fmt.Fprintf(stderr, "fusecu-tablegen: unknown -set %q (want table2, bench, or all)\n", *set)
		fs.Usage()
		return 2
	}

	store, err := tablestore.Open(*out)
	if err != nil {
		fmt.Fprintln(stderr, "fusecu-tablegen:", err)
		return 1
	}
	entries := make([]tablestore.ManifestEntry, 0, len(tasks))
	for _, task := range tasks {
		tab, err := search.NewCandTable(task.mm, task.grid, nil)
		if err != nil {
			fmt.Fprintf(stderr, "fusecu-tablegen: build %v over %s: %v\n", task.mm, task.grid, err)
			return 1
		}
		name, err := store.Put(tab)
		if err != nil {
			fmt.Fprintln(stderr, "fusecu-tablegen:", err)
			return 1
		}
		info, err := os.Stat(store.Path(task.mm, task.grid))
		if err != nil {
			fmt.Fprintln(stderr, "fusecu-tablegen:", err)
			return 1
		}
		entries = append(entries, tablestore.ManifestEntry{
			File:       name,
			ShapeHash:  api.ShapeHash(task.mm.M, task.mm.K, task.mm.L, task.grid.String()),
			Op:         api.OpSpec{Name: task.mm.Name, M: task.mm.M, K: task.mm.K, L: task.mm.L},
			Grid:       task.grid.String(),
			Candidates: tab.Candidates(),
			Bytes:      info.Size(),
		})
		fmt.Fprintf(stdout, "wrote %s: %dx%dx%d %s grid, %d candidates, %d bytes\n",
			name, task.mm.M, task.mm.K, task.mm.L, task.grid, tab.Candidates(), info.Size())
	}
	if err := store.WriteManifest(entries); err != nil {
		fmt.Fprintln(stderr, "fusecu-tablegen:", err)
		return 1
	}

	if *verify {
		for _, task := range tasks {
			if err := verifyArtifact(store, task); err != nil {
				fmt.Fprintln(stderr, "fusecu-tablegen: verify:", err)
				return 1
			}
		}
		fmt.Fprintf(stdout, "verified %d artifacts: restart-load bit-identical\n", len(tasks))
	}
	fmt.Fprintf(stdout, "generated %d tables in %s (%s)\n", len(tasks), store.Dir(), tablestore.ManifestName)
	return 0
}

// verifyArtifact simulates a server restart: the artifact is loaded back
// through the store's full validation path (section checksums plus the
// decoder's live cost-model cross-check of every step), and its re-encoding
// must be bit-identical to the bytes on disk.
func verifyArtifact(store *tablestore.Store, task genTask) error {
	loaded, err := store.Load(task.mm, task.grid)
	if err != nil {
		return err
	}
	disk, err := os.ReadFile(store.Path(task.mm, task.grid))
	if err != nil {
		return err
	}
	if !bytes.Equal(search.EncodeTable(loaded), disk) {
		return fmt.Errorf("%v over %s: re-encoded table differs from artifact on disk",
			task.mm, task.grid)
	}
	return nil
}
