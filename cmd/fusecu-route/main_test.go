package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"fusecu/api"
	"fusecu/internal/cost"
	"fusecu/internal/search"
)

func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"positional args", []string{"-backends", "http://x", "extra"}},
		{"missing backends", nil},
		{"blank backends", []string{"-backends", " , "}},
		{"bad vnodes", []string{"-backends", "http://x", "-vnodes", "0"}},
		{"bad health interval", []string{"-backends", "http://x", "-health-interval", "-1s"}},
		{"bad proxy attempts", []string{"-backends", "http://x", "-proxy-attempts", "0"}},
		{"bad eject threshold", []string{"-backends", "http://x", "-eject-threshold", "-1"}},
		{"bad eject window", []string{"-backends", "http://x", "-eject-window", "0s"}},
		{"negative hedge delay", []string{"-backends", "http://x", "-hedge-after", "-5ms"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr, nil); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if stdout.Len() != 0 {
				t.Fatalf("usage error wrote to stdout: %q", stdout.String())
			}
		})
	}
}

// fakeReplica answers probes, version, and proxied API calls with its name.
func fakeReplica(t *testing.T, name string, v api.VersionResponse) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, `{"status":"ready"}`)
	})
	mux.HandleFunc("/v1/version", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(v)
	})
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]string{"replica": name})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func fleetTriple() api.VersionResponse {
	return api.VersionResponse{
		APIVersion:         api.Version,
		CostModelVersion:   cost.ModelVersion,
		TableFormatVersion: search.TableFormatVersion,
	}
}

// TestRunRefusesMixedFleet: a fleet disagreeing on the cost-model version
// must be refused before the listener opens, with a nonzero exit.
func TestRunRefusesMixedFleet(t *testing.T) {
	good := fakeReplica(t, "good", fleetTriple())
	drifted := fleetTriple()
	drifted.CostModelVersion = "cm0-legacy"
	bad := fakeReplica(t, "bad", drifted)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-addr", "127.0.0.1:0", "-backends", good.URL + "," + bad.URL},
		&stdout, &stderr, nil)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "version mismatch") {
		t.Fatalf("stderr missing mismatch reason: %q", stderr.String())
	}
	if strings.Contains(stdout.String(), "listening on") {
		t.Fatal("router opened its listener despite a mixed fleet")
	}
}

// TestRunProxiesAndExitsCleanly boots the router over two fake replicas,
// proxies a request through, and shuts down cleanly on SIGTERM.
func TestRunProxiesAndExitsCleanly(t *testing.T) {
	r1 := fakeReplica(t, "r1", fleetTriple())
	r2 := fakeReplica(t, "r2", fleetTriple())

	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-backends", r1.URL + "," + r2.URL},
			&stdout, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("router never became ready (stderr: %s)", stderr.String())
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/search", "application/json",
		strings.NewReader(`{"op":{"name":"t","m":16,"k":12,"l":8},"buffer":1024}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"replica"`) {
		t.Fatalf("proxied answer %d %s", resp.StatusCode, raw)
	}

	// The router reports the fleet's agreed triple on its own surface.
	vresp, err := http.Get(base + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	var v api.VersionResponse
	err = json.NewDecoder(vresp.Body).Decode(&v)
	if cerr := vresp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if v != fleetTriple() {
		t.Fatalf("router version %+v, want fleet triple", v)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("router never exited after SIGTERM")
	}
	out := stdout.String()
	for _, want := range []string{"agreed on", "listening on", "drained, exiting"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}
