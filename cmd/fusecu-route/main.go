// Command fusecu-route runs the shape-affinity router in front of a fleet of
// fusecu-serve replicas.
//
//	fusecu-route -addr :8090 -backends http://127.0.0.1:8081,http://127.0.0.1:8082
//
// Requests are routed by consistent hashing on the request's shape hash (the
// same content address that names candidate-table artifacts), so identically
// shaped operators always reach the replica whose table registry already
// holds their candidate table. At startup every backend's /v1/version is
// checked: a fleet that disagrees on the cost-model, table-format, or API
// version is refused with a nonzero exit, because mixed generations behind
// one router would let identical requests return different optima. At
// runtime /readyz and /v1/version are re-polled every -health-interval and
// unhealthy or drifted replicas are routed around.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fusecu/internal/route"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable entry point: it parses args, verifies the fleet,
// serves until a signal, and returns the process exit code. When ready is
// non-nil the bound address is sent on it once the listener is up.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("fusecu-route", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8090", "listen address")
		backends = fs.String("backends", "",
			"comma-separated fusecu-serve replica base URLs (required)")
		vnodes         = fs.Int("vnodes", 64, "virtual ring points per replica")
		healthInterval = fs.Duration("health-interval", 2*time.Second,
			"period between /readyz + /v1/version probes of each replica")
		probeTimeout = fs.Duration("probe-timeout", 2*time.Second, "per-probe deadline")
		drain        = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		attempts     = fs.Int("proxy-attempts", 3,
			"per-request upstream attempt budget (first try, failovers and hedges included)")
		ejectAfter = fs.Int("eject-threshold", 3,
			"consecutive failed attempts that eject a replica from rotation")
		ejectFor = fs.Duration("eject-window", 5*time.Second,
			"how long an ejected replica sits out before one half-open probe request may test it")
		hedgeAfter = fs.Duration("hedge-after", 0,
			"duplicate an affinity-keyed request to the next ring owner if the primary has not answered within this delay; first response wins (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "fusecu-route: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(stderr, "fusecu-route: -backends is required (comma-separated replica URLs)")
		fs.Usage()
		return 2
	}
	if *vnodes <= 0 || *healthInterval <= 0 || *probeTimeout <= 0 || *drain <= 0 {
		fmt.Fprintln(stderr, "fusecu-route: -vnodes, -health-interval, -probe-timeout and -drain must be positive")
		fs.Usage()
		return 2
	}
	if *attempts <= 0 || *ejectAfter <= 0 || *ejectFor <= 0 {
		fmt.Fprintln(stderr, "fusecu-route: -proxy-attempts, -eject-threshold and -eject-window must be positive")
		fs.Usage()
		return 2
	}
	if *hedgeAfter < 0 {
		fmt.Fprintln(stderr, "fusecu-route: -hedge-after must be zero (off) or positive")
		fs.Usage()
		return 2
	}

	logger := log.New(stderr, "fusecu-route: ", log.LstdFlags)
	router, err := route.New(route.Config{
		Backends:       urls,
		VNodes:         *vnodes,
		HealthInterval: *healthInterval,
		ProbeTimeout:   *probeTimeout,
		ProxyAttempts:  *attempts,
		EjectThreshold: *ejectAfter,
		EjectWindow:    *ejectFor,
		HedgeAfter:     *hedgeAfter,
		Logf:           logger.Printf,
	})
	if err != nil {
		fmt.Fprintln(stderr, "fusecu-route:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Refuse to front a fleet that disagrees on versions: better a loud
	// startup failure than silently mixing cost-model generations.
	if err := router.CheckBackends(ctx); err != nil {
		fmt.Fprintln(stderr, "fusecu-route:", err)
		return 1
	}
	v := router.Version()
	fmt.Fprintf(stdout, "fusecu-route: fleet of %d agreed on api=%s cost-model=%s table-format=%d\n",
		len(urls), v.APIVersion, v.CostModelVersion, v.TableFormatVersion)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "fusecu-route:", err)
		return 1
	}
	router.Start(ctx)
	srv := &http.Server{Handler: router.Handler()}

	fmt.Fprintf(stdout, "fusecu-route: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "fusecu-route:", err)
		return 1
	case <-ctx.Done():
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(stderr, "fusecu-route: shutdown:", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "fusecu-route:", err)
		return 1
	}
	fmt.Fprintln(stdout, "fusecu-route: drained, exiting")
	return 0
}
