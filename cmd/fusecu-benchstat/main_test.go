package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldBench = `goos: linux
goarch: amd64
pkg: fusecu/internal/search
cpu: whatever
BenchmarkEvalHotPath-8     	15990022	        73.86 ns/op	       0 B/op	       0 allocs/op
BenchmarkEvalHotPath-8     	15990022	        75.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkEvalHotPath-8     	15990022	        74.10 ns/op	       0 B/op	       0 allocs/op
BenchmarkTableSweep-8      	     340	   3440000 ns/op	  120000 B/op	      40 allocs/op
BenchmarkGoneInNew-8       	     100	     10000 ns/op
PASS
ok  	fusecu/internal/search	12.3s
`

const newBench = `BenchmarkEvalHotPath-16    	20000000	        70.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkEvalHotPath-16    	20000000	        71.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkEvalHotPath-16    	20000000	        69.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkTableSweep-16     	     400	   3000000 ns/op	  118000 B/op	      38 allocs/op
BenchmarkBrandNew-16       	    1000	      5000 ns/op
`

func TestParseAggregatesAndStripsProcs(t *testing.T) {
	rs, err := parse(strings.NewReader(oldBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(rs))
	}
	if rs[0].name != "BenchmarkEvalHotPath" {
		t.Fatalf("name = %q (GOMAXPROCS suffix not stripped?)", rs[0].name)
	}
	if len(rs[0].samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(rs[0].samples))
	}
	if got := medianNs(rs[0]); got != 74.10 {
		t.Fatalf("median ns/op = %v, want 74.10", got)
	}
	if a, ok := medianAllocs(rs[1]); !ok || a != 40 {
		t.Fatalf("TableSweep allocs median = %v/%v, want 40/true", a, ok)
	}
	if _, ok := medianAllocs(rs[2]); ok {
		t.Fatal("benchmark without -benchmem reported allocs")
	}
}

func TestMedianEvenCount(t *testing.T) {
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("median = %v, want 2.5", got)
	}
}

func TestRunComparesFiles(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.txt")
	newPath := filepath.Join(dir, "new.txt")
	if err := os.WriteFile(oldPath, []byte(oldBench), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{oldPath, newPath}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"BenchmarkEvalHotPath", // present in both → compared
		"-5.53%",               // (70.00-74.10)/74.10
		"BenchmarkTableSweep",
		"-12.79%", // (3.0e6-3.44e6)/3.44e6
		"40 → 38", // allocs/op delta
		"geomean time ratio",
		"only in old: BenchmarkGoneInNew",
		"only in new: BenchmarkBrandNew",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunGate pins the -gate semantics that promoted bench-compare from
// advisory to blocking: ratios within the bound pass, a single benchmark
// over the bound fails naming it, and a vanished baseline benchmark fails
// rather than silently shrinking coverage.
func TestRunGate(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := writeFile("base.txt", `BenchmarkA-8  100  100.0 ns/op
BenchmarkB-8  100  200.0 ns/op
`)
	fast := writeFile("fast.txt", `BenchmarkA-8  100  110.0 ns/op
BenchmarkB-8  100  190.0 ns/op
`)
	slow := writeFile("slow.txt", `BenchmarkA-8  100  400.0 ns/op
BenchmarkB-8  100  190.0 ns/op
`)
	gone := writeFile("gone.txt", `BenchmarkA-8  100  100.0 ns/op
`)

	var out bytes.Buffer
	if err := run([]string{"-gate", "1.5", base, fast}, &out); err != nil {
		t.Errorf("in-bound comparison failed the gate: %v", err)
	}
	// Advisory mode never fails on slowdowns, matching historical behaviour.
	if err := run([]string{base, slow}, &out); err != nil {
		t.Errorf("advisory comparison failed: %v", err)
	}
	err := run([]string{"-gate", "1.5", base, slow}, &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkA") || !strings.Contains(err.Error(), "4.00x") {
		t.Errorf("4x regression passed gate 1.5 or lost the culprit: %v", err)
	}
	err = run([]string{"-gate", "1.5", base, gone}, &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkB") {
		t.Errorf("vanished benchmark passed the gate: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"one-arg"}, &out); err == nil {
		t.Fatal("single argument accepted")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("no benchmarks here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty, empty}, &out); err == nil || !strings.Contains(err.Error(), "no benchmark lines") {
		t.Fatalf("empty input error = %v", err)
	}
}
