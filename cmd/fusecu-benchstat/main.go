// Command fusecu-benchstat compares two `go test -bench` outputs without
// any dependency outside the standard library (CI has no network access to
// fetch golang.org/x/perf/cmd/benchstat).
//
//	go test -run='^$' -bench=. -benchmem -count=5 ./internal/search > new.txt
//	fusecu-benchstat -gate 1.5 bench/baseline_search.txt new.txt
//
// For every benchmark present in both files it prints the median ns/op of
// each side and the relative delta (negative = the new side is faster),
// plus allocs/op when -benchmem was on, and a closing geomean over the
// per-benchmark time ratios. Benchmarks present on only one side are listed
// separately so a vanished benchmark can't silently hide a regression.
//
// Without -gate the exit code is 0 even when things got slower: the tool
// measures, the reviewer judges. With -gate R the comparison becomes a CI
// gate: it exits non-zero when any benchmark's median new/old time ratio
// exceeds R, or when a baseline benchmark vanished from the new output
// (deleting a benchmark must not silently pass the gate). Unreadable or
// unparseable inputs always exit non-zero.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// sample is one benchmark line's measurements.
type sample struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

// runs collects every sample for one benchmark name, in file order.
type runs struct {
	name    string
	samples []sample
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fusecu-benchstat:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fusecu-benchstat", flag.ContinueOnError)
	fs.SetOutput(w)
	gate := fs.Float64("gate", 0, "fail when any median new/old time ratio exceeds this bound, or a baseline benchmark vanished (0 = advisory, never fail)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: fusecu-benchstat [-gate R] OLD NEW (two `go test -bench` output files)")
	}
	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	old, err := parseFile(oldPath)
	if err != nil {
		return err
	}
	cur, err := parseFile(newPath)
	if err != nil {
		return err
	}
	cmp, err := compare(w, oldPath, newPath, old, cur)
	if err != nil {
		return err
	}
	return cmp.checkGate(*gate)
}

func parseFile(path string) ([]runs, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "fusecu-benchstat:", cerr)
		}
	}()
	rs, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return rs, nil
}

// parse reads `go test -bench` output, returning one runs per benchmark
// name in first-seen order. The per-GOMAXPROCS suffix (Benchmark...-8) is
// stripped so baselines recorded on a different core count still align.
func parse(r io.Reader) ([]runs, error) {
	var order []runs
	index := map[string]int{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		s := sample{}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q on line %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp, seen = v, true
			case "allocs/op":
				s.allocsPerOp, s.hasAllocs = v, true
			}
		}
		if !seen {
			continue
		}
		name := stripProcs(fields[0])
		i, ok := index[name]
		if !ok {
			i = len(order)
			index[name] = i
			order = append(order, runs{name: name})
		}
		order[i].samples = append(order[i].samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return order, nil
}

// stripProcs removes the trailing -GOMAXPROCS suffix go test appends.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func medianNs(r runs) float64 {
	vals := make([]float64, len(r.samples))
	for i, s := range r.samples {
		vals[i] = s.nsPerOp
	}
	return median(vals)
}

func medianAllocs(r runs) (float64, bool) {
	var vals []float64
	for _, s := range r.samples {
		if s.hasAllocs {
			vals = append(vals, s.allocsPerOp)
		}
	}
	if len(vals) == 0 {
		return 0, false
	}
	return median(vals), true
}

// comparison carries the per-benchmark outcome compare printed, for gating.
type comparison struct {
	// ratios holds each shared benchmark's median new/old time ratio, in
	// baseline order.
	ratios []struct {
		name  string
		ratio float64
	}
	// vanished lists baseline benchmarks absent from the new output.
	vanished []string
}

// checkGate applies the -gate bound: any shared benchmark slower than
// bound×baseline, or any vanished baseline benchmark, fails the comparison.
// A bound of 0 (the default) keeps the tool advisory.
func (c comparison) checkGate(bound float64) error {
	if bound <= 0 {
		return nil
	}
	var bad []string
	for _, r := range c.ratios {
		if r.ratio > bound {
			bad = append(bad, fmt.Sprintf("%s %.2fx", r.name, r.ratio))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("gate %.2fx exceeded: %s", bound, strings.Join(bad, ", "))
	}
	if len(c.vanished) > 0 {
		return fmt.Errorf("gate: baseline benchmarks missing from new output: %s (refresh the baseline if they were removed on purpose)", strings.Join(c.vanished, ", "))
	}
	return nil
}

func compare(w io.Writer, oldPath, newPath string, old, cur []runs) (comparison, error) {
	oldIdx := map[string]runs{}
	for _, r := range old {
		oldIdx[r.name] = r
	}
	curIdx := map[string]runs{}
	for _, r := range cur {
		curIdx[r.name] = r
	}

	fmt.Fprintf(w, "old: %s\nnew: %s\n\n", oldPath, newPath)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\tallocs/op\t")

	var cmp comparison
	var logRatios []float64
	for _, o := range old {
		n, ok := curIdx[o.name]
		if !ok {
			continue
		}
		om, nm := medianNs(o), medianNs(n)
		delta := "n/a"
		if om > 0 {
			delta = fmt.Sprintf("%+.2f%%", (nm-om)/om*100)
			if nm > 0 {
				logRatios = append(logRatios, math.Log(nm/om))
				cmp.ratios = append(cmp.ratios, struct {
					name  string
					ratio float64
				}{o.name, nm / om})
			}
		}
		allocs := ""
		if oa, ook := medianAllocs(o); ook {
			if na, nok := medianAllocs(n); nok {
				allocs = fmt.Sprintf("%.0f → %.0f", oa, na)
			}
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%s\t%s\t\n", o.name, om, nm, delta, allocs)
	}
	if err := tw.Flush(); err != nil {
		return cmp, err
	}

	if len(logRatios) > 0 {
		var sum float64
		for _, lr := range logRatios {
			sum += lr
		}
		geo := math.Exp(sum / float64(len(logRatios)))
		fmt.Fprintf(w, "\ngeomean time ratio (new/old): %.3f over %d benchmarks\n", geo, len(logRatios))
	}

	var onlyNew []string
	for _, o := range old {
		if _, ok := curIdx[o.name]; !ok {
			cmp.vanished = append(cmp.vanished, o.name)
		}
	}
	for _, n := range cur {
		if _, ok := oldIdx[n.name]; !ok {
			onlyNew = append(onlyNew, n.name)
		}
	}
	if len(cmp.vanished) > 0 {
		fmt.Fprintf(w, "only in old: %s\n", strings.Join(cmp.vanished, ", "))
	}
	if len(onlyNew) > 0 {
		fmt.Fprintf(w, "only in new: %s\n", strings.Join(onlyNew, ", "))
	}
	return cmp, nil
}
