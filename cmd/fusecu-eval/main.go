// Command fusecu-eval regenerates the paper's tables and figures.
//
//	fusecu-eval -all          # everything
//	fusecu-eval -fig10 -csv   # one experiment, CSV output
//
// Experiments: -table1 -table2 -table3 -fig9 -fig10 -fig11 -fig12 -headline.
package main

import (
	"flag"
	"fmt"
	"os"

	"fusecu/internal/experiments"
	"fusecu/internal/model"
	"fusecu/internal/report"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		table1   = flag.Bool("table1", false, "Table I: optimizer features")
		table2   = flag.Bool("table2", false, "Table II: model parameters")
		table3   = flag.Bool("table3", false, "Table III: platform attributes")
		fig9     = flag.Bool("fig9", false, "Fig. 9: principle vs search validation")
		fig10    = flag.Bool("fig10", false, "Fig. 10: cross-platform MA and utilization")
		fig11    = flag.Bool("fig11", false, "Fig. 11: LLaMA2 sequence-length sweep")
		fig12    = flag.Bool("fig12", false, "Fig. 12: area breakdown")
		headline = flag.Bool("headline", false, "headline averages (abstract numbers)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		seed     = flag.Int64("seed", 1, "genetic search seed for Fig. 9")
		models   = flag.String("models", "", "JSON file of model configs replacing Table II for -fig10/-headline")
	)
	flag.Parse()

	workloads := model.TableII()
	if *models != "" {
		data, err := os.ReadFile(*models)
		fail(err)
		workloads, err = model.UnmarshalConfigs(data)
		fail(err)
	}

	if *all {
		*table1, *table2, *table3 = true, true, true
		*fig9, *fig10, *fig11, *fig12, *headline = true, true, true, true, true
	}
	if !(*table1 || *table2 || *table3 || *fig9 || *fig10 || *fig11 || *fig12 || *headline) {
		flag.Usage()
		os.Exit(2)
	}

	emit := func(t *report.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t)
		}
	}

	if *table1 {
		emit(experiments.Table1())
	}
	if *table2 {
		emit(experiments.Table2())
	}
	if *table3 {
		emit(experiments.Table3())
	}
	if *fig9 {
		results, err := experiments.Fig9(experiments.Fig9Ops(), experiments.Fig9Buffers(), *seed)
		fail(err)
		for _, f := range experiments.RenderFig9(results) {
			fmt.Println(f)
		}
	}

	var rows []experiments.Fig10Row
	if *fig10 || *headline {
		var err error
		rows, err = experiments.Fig10(workloads)
		fail(err)
	}
	if *fig10 {
		ma, util := experiments.RenderFig10(rows)
		emit(ma)
		emit(util)
	}
	if *fig11 {
		sweep, err := experiments.Fig11(model.Fig11SeqLengths())
		fail(err)
		fmt.Println(experiments.RenderFig11(sweep))
	}
	if *fig12 {
		bd, ov := experiments.RenderFig12()
		emit(bd)
		emit(ov)
	}
	if *headline {
		emit(experiments.RenderHeadline(experiments.ComputeHeadline(rows)))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fusecu-eval:", err)
		os.Exit(1)
	}
}
