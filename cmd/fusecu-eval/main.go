// Command fusecu-eval regenerates the paper's tables and figures.
//
//	fusecu-eval -all          # everything
//	fusecu-eval -fig10 -csv   # one experiment, CSV output
//
// Experiments: -table1 -table2 -table3 -fig9 -fig10 -fig11 -fig12 -headline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fusecu/internal/experiments"
	"fusecu/internal/model"
	"fusecu/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: usage errors go to stderr with exit code
// 2, runtime failures to stderr with exit code 1, and nothing is written to
// stdout unless the input validated.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fusecu-eval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		all      = fs.Bool("all", false, "run every experiment")
		table1   = fs.Bool("table1", false, "Table I: optimizer features")
		table2   = fs.Bool("table2", false, "Table II: model parameters")
		table3   = fs.Bool("table3", false, "Table III: platform attributes")
		fig9     = fs.Bool("fig9", false, "Fig. 9: principle vs search validation")
		fig10    = fs.Bool("fig10", false, "Fig. 10: cross-platform MA and utilization")
		fig11    = fs.Bool("fig11", false, "Fig. 11: LLaMA2 sequence-length sweep")
		fig12    = fs.Bool("fig12", false, "Fig. 12: area breakdown")
		headline = fs.Bool("headline", false, "headline averages (abstract numbers)")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		seed     = fs.Int64("seed", 1, "genetic search seed for Fig. 9")
		models   = fs.String("models", "", "JSON file of model configs replacing Table II for -fig10/-headline")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "fusecu-eval: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}

	if *all {
		*table1, *table2, *table3 = true, true, true
		*fig9, *fig10, *fig11, *fig12, *headline = true, true, true, true, true
	}
	if !(*table1 || *table2 || *table3 || *fig9 || *fig10 || *fig11 || *fig12 || *headline) {
		fmt.Fprintln(stderr, "fusecu-eval: no experiment selected")
		fs.Usage()
		return 2
	}

	workloads := model.TableII()
	if *models != "" {
		data, err := os.ReadFile(*models)
		if err != nil {
			fmt.Fprintln(stderr, "fusecu-eval:", err)
			return 1
		}
		workloads, err = model.UnmarshalConfigs(data)
		if err != nil {
			fmt.Fprintln(stderr, "fusecu-eval:", err)
			return 1
		}
	}

	if err := runExperiments(stdout, evalSelection{
		table1: *table1, table2: *table2, table3: *table3,
		fig9: *fig9, fig10: *fig10, fig11: *fig11, fig12: *fig12,
		headline: *headline, csv: *csv, seed: *seed,
	}, workloads); err != nil {
		fmt.Fprintln(stderr, "fusecu-eval:", err)
		return 1
	}
	return 0
}

// evalSelection is the validated experiment selection.
type evalSelection struct {
	table1, table2, table3    bool
	fig9, fig10, fig11, fig12 bool
	headline, csv             bool
	seed                      int64
}

func runExperiments(w io.Writer, sel evalSelection, workloads []model.Config) error {
	emit := func(t *report.Table) {
		if sel.csv {
			fmt.Fprint(w, t.CSV())
		} else {
			fmt.Fprintln(w, t)
		}
	}

	if sel.table1 {
		emit(experiments.Table1())
	}
	if sel.table2 {
		emit(experiments.Table2())
	}
	if sel.table3 {
		emit(experiments.Table3())
	}
	if sel.fig9 {
		results, err := experiments.Fig9(experiments.Fig9Ops(), experiments.Fig9Buffers(), sel.seed)
		if err != nil {
			return err
		}
		for _, f := range experiments.RenderFig9(results) {
			fmt.Fprintln(w, f)
		}
	}

	var rows []experiments.Fig10Row
	if sel.fig10 || sel.headline {
		var err error
		rows, err = experiments.Fig10(workloads)
		if err != nil {
			return err
		}
	}
	if sel.fig10 {
		ma, util := experiments.RenderFig10(rows)
		emit(ma)
		emit(util)
	}
	if sel.fig11 {
		sweep, err := experiments.Fig11(model.Fig11SeqLengths())
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.RenderFig11(sweep))
	}
	if sel.fig12 {
		bd, ov := experiments.RenderFig12()
		emit(bd)
		emit(ov)
	}
	if sel.headline {
		emit(experiments.RenderHeadline(experiments.ComputeHeadline(rows)))
	}
	return nil
}
