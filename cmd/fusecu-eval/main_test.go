package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunBadInput drives the CLI with invalid input and requires the shared
// contract: diagnostics on stderr, non-zero exit, no partial stdout.
func TestRunBadInput(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"positional args", []string{"table1"}, 2},
		{"no experiment selected", []string{}, 2},
		{"no experiment with csv", []string{"-csv"}, 2},
		{"missing models file", []string{"-table2", "-models", "/nonexistent/models.json"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.code {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if stdout.Len() != 0 {
				t.Fatalf("bad input produced stdout: %q", stdout.String())
			}
			if stderr.Len() == 0 {
				t.Fatal("bad input produced no stderr diagnostic")
			}
		})
	}
}

func TestRunBadModelsJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.json")
	if err := os.WriteFile(path, []byte(`{"not":"a list"`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-table2", "-models", path}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("bad models file produced stdout: %q", stdout.String())
	}
}

func TestRunTables(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-table1", "-table2", "-table3"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d (stderr: %s)", code, stderr.String())
	}
	for _, want := range []string{"Table I", "Table II", "principle-based", "heads", "FuseCU"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q", want)
		}
	}
	if stderr.Len() != 0 {
		t.Errorf("stderr not empty: %q", stderr.String())
	}
}

func TestRunTablesCSV(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-table2", "-csv"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), ",") {
		t.Fatalf("CSV output has no commas:\n%s", stdout.String())
	}
}
