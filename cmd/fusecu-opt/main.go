// Command fusecu-opt runs principle-based dataflow optimization on a matrix
// multiplication or a chain of them.
//
// Single operator:
//
//	fusecu-opt -m 1024 -k 768 -l 768 -buffer 524288
//
// Chain (comma-separated MxKxL operators; consecutive shapes must chain):
//
//	fusecu-opt -chain 512x64x512,512x512x64 -buffer 65536
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"fusecu/internal/core"
	"fusecu/internal/op"
	"fusecu/internal/search"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: usage errors go to stderr with exit code
// 2, runtime failures to stderr with exit code 1, and nothing is written to
// stdout unless the input validated.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fusecu-opt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		m       = fs.Int("m", 1024, "M dimension (rows of A and C)")
		k       = fs.Int("k", 768, "K dimension (reduction)")
		l       = fs.Int("l", 768, "L dimension (columns of B and C)")
		buffer  = fs.Int64("buffer", 512*1024, "buffer size in elements")
		chain   = fs.String("chain", "", "comma-separated MxKxL chain, e.g. 512x64x512,512x512x64")
		check   = fs.Bool("check", false, "cross-check against the DAT-style search baseline")
		workers = fs.Int("workers", 0, "search workers for -check (0 = GOMAXPROCS, 1 = sequential)")
		polish  = fs.String("polish", "analytic", "search polish engine for -check: analytic (closed-form) or ga (genetic escape hatch)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pol, err := search.ParsePolishMode(*polish)
	if err != nil {
		fmt.Fprintln(stderr, "fusecu-opt:", err)
		fs.Usage()
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "fusecu-opt: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}

	if *chain != "" {
		if err := runChain(stdout, *chain, *buffer); err != nil {
			fmt.Fprintln(stderr, "fusecu-opt:", err)
			return 1
		}
		return 0
	}
	if err := runSingle(stdout, op.MatMul{Name: "op", M: *m, K: *k, L: *l}, *buffer, *check, *workers, pol); err != nil {
		fmt.Fprintln(stderr, "fusecu-opt:", err)
		return 1
	}
	return 0
}

func runSingle(w io.Writer, mm op.MatMul, buffer int64, check bool, workers int, polish search.PolishMode) error {
	res, err := core.Optimize(mm, buffer)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "operator:   %v\n", mm)
	fmt.Fprintf(w, "buffer:     %d elements (%s regime)\n", buffer, res.Regime)
	fmt.Fprintf(w, "dataflow:   %v\n", res.Dataflow)
	fmt.Fprintf(w, "principle:  P%d — %s\n", res.Principle, res.Note)
	fmt.Fprintf(w, "NRA class:  %s\n", res.Access.NRA)
	fmt.Fprintf(w, "memory:     %d elements (ideal lower bound %d, overhead %.2f%%)\n",
		res.Access.Total, mm.IdealMA(),
		100*(float64(res.Access.Total)/float64(mm.IdealMA())-1))
	fmt.Fprintf(w, "per tensor: A=%d B=%d C=%d (spill read-back %d)\n",
		res.Access.PerTensor[0], res.Access.PerTensor[1], res.Access.PerTensor[2], res.Access.OutputReads)
	fmt.Fprintf(w, "footprint:  %d / %d elements\n", res.Access.Footprint, buffer)
	if check {
		sr, err := search.OptimizeParallel(mm, buffer, search.GeneticOptions{Seed: 1, Polish: polish}, workers, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "search:     %d elements after %d cost evaluations (%s)\n",
			sr.Access.Total, sr.Evaluations, sr.Method)
	}
	return nil
}

func runChain(w io.Writer, spec string, buffer int64) error {
	ops, err := parseChain(spec)
	if err != nil {
		return err
	}
	c, err := op.NewChain("chain", ops...)
	if err != nil {
		return err
	}
	plan, err := core.PlanChain(c, buffer)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%v\n", c)
	fmt.Fprintf(w, "buffer: %d elements\n\n", buffer)
	for i, d := range plan.Decisions {
		verdict := "do not fuse"
		if d.Fuse {
			verdict = fmt.Sprintf("fuse (%s, gain %d)", d.Fused.Dataflow.Pattern, d.Gain)
		}
		fmt.Fprintf(w, "link %d: NRA %s ⨝ %s, same=%v → %s\n", i, d.FirstNRA, d.SecondNRA, d.SameNRA, verdict)
	}
	fmt.Fprintln(w)
	for _, g := range plan.Groups {
		fmt.Fprintf(w, "  %v\n", g)
	}
	fmt.Fprintf(w, "\ntotal MA: %d (unfused %d, saving %.1f%%)\n",
		plan.TotalMA, plan.UnfusedMA, 100*plan.Saving())
	return nil
}

func parseChain(spec string) ([]op.MatMul, error) {
	var ops []op.MatMul
	for i, part := range strings.Split(spec, ",") {
		dims := strings.Split(strings.TrimSpace(part), "x")
		if len(dims) != 3 {
			return nil, fmt.Errorf("operator %d: want MxKxL, got %q", i, part)
		}
		var v [3]int
		for j, d := range dims {
			n, err := strconv.Atoi(d)
			if err != nil {
				return nil, fmt.Errorf("operator %d: %w", i, err)
			}
			v[j] = n
		}
		ops = append(ops, op.MatMul{Name: fmt.Sprintf("op%d", i), M: v[0], K: v[1], L: v[2]})
	}
	return ops, nil
}
