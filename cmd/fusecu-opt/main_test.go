package main

import (
	"testing"

	"fusecu/internal/op"
)

func opFor(m, k, l int) op.MatMul {
	return op.MatMul{Name: "test", M: m, K: k, L: l}
}

func TestParseChain(t *testing.T) {
	ops, err := parseChain("512x64x512, 512x512x64")
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 {
		t.Fatalf("ops = %d", len(ops))
	}
	if ops[0].M != 512 || ops[0].K != 64 || ops[0].L != 512 {
		t.Fatalf("op0 = %v", ops[0])
	}
	if ops[1].M != 512 || ops[1].K != 512 || ops[1].L != 64 {
		t.Fatalf("op1 = %v", ops[1])
	}
}

func TestParseChainErrors(t *testing.T) {
	for _, bad := range []string{"", "1x2", "1x2x3x4", "ax2x3", "1x2x3,4x5"} {
		if _, err := parseChain(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestRunSingleAndChain(t *testing.T) {
	// Exercise the command paths end to end (output goes to stdout).
	if err := runSingle(opFor(64, 32, 48), 4096, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := runSingle(opFor(64, 32, 48), 4096, true, 2); err != nil {
		t.Fatal(err)
	}
	if err := runChain("64x16x64,64x64x16", 4096); err != nil {
		t.Fatal(err)
	}
	if err := runChain("64x16x64,63x64x16", 4096); err == nil {
		t.Fatal("mismatched chain accepted")
	}
}
