package main

import (
	"bytes"
	"strings"
	"testing"

	"fusecu/internal/op"
	"fusecu/internal/search"
)

func opFor(m, k, l int) op.MatMul {
	return op.MatMul{Name: "test", M: m, K: k, L: l}
}

func TestParseChain(t *testing.T) {
	ops, err := parseChain("512x64x512, 512x512x64")
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 {
		t.Fatalf("ops = %d", len(ops))
	}
	if ops[0].M != 512 || ops[0].K != 64 || ops[0].L != 512 {
		t.Fatalf("op0 = %v", ops[0])
	}
	if ops[1].M != 512 || ops[1].K != 512 || ops[1].L != 64 {
		t.Fatalf("op1 = %v", ops[1])
	}
}

func TestParseChainErrors(t *testing.T) {
	for _, bad := range []string{"", "1x2", "1x2x3x4", "ax2x3", "1x2x3,4x5"} {
		if _, err := parseChain(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestRunSingleAndChain(t *testing.T) {
	var out bytes.Buffer
	if err := runSingle(&out, opFor(64, 32, 48), 4096, true, 0, search.PolishAnalytic); err != nil {
		t.Fatal(err)
	}
	if err := runSingle(&out, opFor(64, 32, 48), 4096, true, 2, search.PolishGA); err != nil {
		t.Fatal(err)
	}
	if err := runChain(&out, "64x16x64,64x64x16", 4096); err != nil {
		t.Fatal(err)
	}
	if err := runChain(&out, "64x16x64,63x64x16", 4096); err == nil {
		t.Fatal("mismatched chain accepted")
	}
}

// TestRunBadInput drives the full CLI with invalid input and requires the
// shared contract: usage/diagnostics on stderr, a non-zero exit code, and
// no partial report on stdout.
func TestRunBadInput(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"positional args", []string{"12x3x4"}, 2},
		{"non-numeric dim", []string{"-m", "abc"}, 2},
		{"invalid operator", []string{"-m", "0"}, 1},
		{"buffer too small", []string{"-m", "8", "-k", "8", "-l", "8", "-buffer", "1"}, 1},
		{"malformed chain", []string{"-chain", "1x2"}, 1},
		{"mismatched chain", []string{"-chain", "8x8x8,9x9x9"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.code {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if stdout.Len() != 0 {
				t.Fatalf("bad input produced stdout: %q", stdout.String())
			}
			if stderr.Len() == 0 {
				t.Fatal("bad input produced no stderr diagnostic")
			}
		})
	}
}

func TestRunGoodInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-m", "64", "-k", "32", "-l", "48", "-buffer", "4096"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d (stderr: %s)", code, stderr.String())
	}
	for _, want := range []string{"operator:", "dataflow:", "NRA class:"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
	if stderr.Len() != 0 {
		t.Errorf("good input produced stderr: %q", stderr.String())
	}
}
