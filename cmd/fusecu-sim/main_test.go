package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunBadInput drives the CLI with invalid input and requires the shared
// contract: diagnostics on stderr, non-zero exit, no partial stdout.
func TestRunBadInput(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"positional args", []string{"tile"}, 2},
		{"unknown mode", []string{"-mode", "warp"}, 2},
		{"non-numeric dim", []string{"-m", "abc"}, 2},
		{"bad fabric size", []string{"-n", "0"}, 1},
		{"bad matrix dims", []string{"-mode", "ws", "-m", "0"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.code {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if stdout.Len() != 0 {
				t.Fatalf("bad input produced stdout: %q", stdout.String())
			}
			if stderr.Len() == 0 {
				t.Fatal("bad input produced no stderr diagnostic")
			}
		})
	}
}

func TestRunModes(t *testing.T) {
	for _, mode := range []string{"ws", "is", "os", "tile", "column", "attention"} {
		t.Run(mode, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			args := []string{"-n", "4", "-mode", mode, "-m", "8", "-k", "4", "-l", "8", "-nn", "4"}
			if code := run(args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit code = %d (stderr: %s)", code, stderr.String())
			}
			if stdout.Len() == 0 {
				t.Fatal("no report on stdout")
			}
			if stderr.Len() != 0 {
				t.Errorf("stderr not empty: %q", stderr.String())
			}
		})
	}
}

func TestRunEmitRTL(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-emit-rtl", "-n", "4"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "module") {
		t.Fatalf("RTL output looks wrong:\n%.200s", stdout.String())
	}
}
