// Command fusecu-sim executes matrix multiplications on the cycle-stepped
// FuseCU fabric simulator and verifies them against the reference math.
//
//	fusecu-sim -n 16 -mode tile -m 48 -k 16 -l 48 -nn 16
//
// Modes: ws, is, os (single operator with that stationary), tile and column
// (fused E = (A×B)×D executions).
package main

import (
	"flag"
	"fmt"
	"os"

	"fusecu/internal/dataflow"
	"fusecu/internal/rtl"
	"fusecu/internal/sim"
	"fusecu/internal/tensor"
)

func main() {
	var (
		n       = flag.Int("n", 16, "CU dimension (N×N PEs per CU)")
		emitRTL = flag.Bool("emit-rtl", false, "emit the FuseCU Verilog design for -n and exit")
		mode    = flag.String("mode", "tile", "ws | is | os | tile | column | attention")
		m       = flag.Int("m", 48, "M dimension")
		k       = flag.Int("k", 16, "K dimension")
		l       = flag.Int("l", 48, "L dimension")
		nn      = flag.Int("nn", 16, "N dimension (fused modes)")
	)
	flag.Parse()

	if *emitRTL {
		src, err := rtl.Emit(rtl.Config{N: *n, DataWidth: 8, AccWidth: 32})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fusecu-sim:", err)
			os.Exit(1)
		}
		fmt.Print(src)
		return
	}

	if err := run(*n, *mode, *m, *k, *l, *nn); err != nil {
		fmt.Fprintln(os.Stderr, "fusecu-sim:", err)
		os.Exit(1)
	}
}

func run(n int, mode string, m, k, l, nn int) error {
	fabric, err := sim.NewFabric(n)
	if err != nil {
		return err
	}
	a := tensor.New(m, k).Seq(1)
	b := tensor.New(k, l).Seq(2)

	switch mode {
	case "ws", "is", "os":
		kinds := map[string]dataflow.StationaryKind{"ws": dataflow.WS, "is": dataflow.IS, "os": dataflow.OS}
		got, err := fabric.MatMul(a, b, kinds[mode])
		if err != nil {
			return err
		}
		want, err := tensor.MatMul(a, b)
		if err != nil {
			return err
		}
		return reportRun(fabric, fmt.Sprintf("%s matmul %dx%dx%d", mode, m, k, l), got, want)
	case "attention":
		kT := tensor.New(k, l).Seq(2)
		v := tensor.New(l, k).Seq(3)
		q := tensor.New(m, k).Seq(1)
		got, err := fabric.FusedAttention(q, kT, v, 1.0/float64(k))
		if err != nil {
			return err
		}
		s, err := tensor.MatMul(q, kT)
		if err != nil {
			return err
		}
		for i := range s.Data {
			s.Data[i] /= float64(k)
		}
		want, err := tensor.MatMul(tensor.Softmax(s), v)
		if err != nil {
			return err
		}
		if !tensor.Equal(got, want, 1e-6) {
			return fmt.Errorf("attention: simulator diverges from reference by %v", tensor.MaxAbsDiff(got, want))
		}
		fmt.Printf("fused attention (online softmax), %dx%d heads over %d keys\n", m, k, l)
		fmt.Printf("  result matches full-softmax reference exactly\n")
		fmt.Printf("  pipelined: %d cycles, traffic %+v\n", fabric.Cycles(), fabric.Traffic())
		return nil
	case "tile", "column":
		d := tensor.New(l, nn).Seq(3)
		var got *tensor.Matrix
		if mode == "tile" {
			got, err = fabric.TileFused(a, b, d, nil)
		} else {
			got, err = fabric.ColumnFused(a, b, d, nil)
		}
		if err != nil {
			return err
		}
		c, err := tensor.MatMul(a, b)
		if err != nil {
			return err
		}
		want, err := tensor.MatMul(c, d)
		if err != nil {
			return err
		}
		return reportRun(fabric, fmt.Sprintf("%s fusion (%dx%dx%d)(%dx%d)", mode, m, k, l, l, nn), got, want)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

func reportRun(fabric *sim.Fabric, what string, got, want *tensor.Matrix) error {
	if !tensor.Equal(got, want, 1e-6) {
		return fmt.Errorf("%s: simulator diverges from reference by %v", what, tensor.MaxAbsDiff(got, want))
	}
	fmt.Printf("%s\n", what)
	fmt.Printf("  result:       %d×%d, matches reference exactly\n", got.Rows, got.Cols)
	fmt.Printf("  pipelined:    %d cycles\n", fabric.Cycles())
	fmt.Printf("  CU busy time: %d cycles\n", fabric.BusyCycles())
	return nil
}
