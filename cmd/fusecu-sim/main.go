// Command fusecu-sim executes matrix multiplications on the cycle-stepped
// FuseCU fabric simulator and verifies them against the reference math.
//
//	fusecu-sim -n 16 -mode tile -m 48 -k 16 -l 48 -nn 16
//
// Modes: ws, is, os (single operator with that stationary), tile and column
// (fused E = (A×B)×D executions).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fusecu/internal/dataflow"
	"fusecu/internal/rtl"
	"fusecu/internal/sim"
	"fusecu/internal/tensor"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: usage errors go to stderr with exit code
// 2, runtime failures to stderr with exit code 1, and nothing is written to
// stdout unless the input validated.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fusecu-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n       = fs.Int("n", 16, "CU dimension (N×N PEs per CU)")
		emitRTL = fs.Bool("emit-rtl", false, "emit the FuseCU Verilog design for -n and exit")
		mode    = fs.String("mode", "tile", "ws | is | os | tile | column | attention")
		m       = fs.Int("m", 48, "M dimension")
		k       = fs.Int("k", 16, "K dimension")
		l       = fs.Int("l", 48, "L dimension")
		nn      = fs.Int("nn", 16, "N dimension (fused modes)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "fusecu-sim: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if !validMode(*mode) {
		fmt.Fprintf(stderr, "fusecu-sim: unknown mode %q\n", *mode)
		fs.Usage()
		return 2
	}
	if *m <= 0 || *k <= 0 || *l <= 0 || *nn <= 0 {
		fmt.Fprintf(stderr, "fusecu-sim: dimensions must be positive (m=%d k=%d l=%d nn=%d)\n", *m, *k, *l, *nn)
		fs.Usage()
		return 2
	}

	if *emitRTL {
		src, err := rtl.Emit(rtl.Config{N: *n, DataWidth: 8, AccWidth: 32})
		if err != nil {
			fmt.Fprintln(stderr, "fusecu-sim:", err)
			return 1
		}
		fmt.Fprint(stdout, src)
		return 0
	}

	if err := simulate(stdout, *n, *mode, *m, *k, *l, *nn); err != nil {
		fmt.Fprintln(stderr, "fusecu-sim:", err)
		return 1
	}
	return 0
}

func validMode(mode string) bool {
	switch mode {
	case "ws", "is", "os", "tile", "column", "attention":
		return true
	}
	return false
}

func simulate(w io.Writer, n int, mode string, m, k, l, nn int) error {
	fabric, err := sim.NewFabric(n)
	if err != nil {
		return err
	}
	a := tensor.New(m, k).Seq(1)
	b := tensor.New(k, l).Seq(2)

	switch mode {
	case "ws", "is", "os":
		kinds := map[string]dataflow.StationaryKind{"ws": dataflow.WS, "is": dataflow.IS, "os": dataflow.OS}
		got, err := fabric.MatMul(a, b, kinds[mode])
		if err != nil {
			return err
		}
		want, err := tensor.MatMul(a, b)
		if err != nil {
			return err
		}
		return reportRun(w, fabric, fmt.Sprintf("%s matmul %dx%dx%d", mode, m, k, l), got, want)
	case "attention":
		kT := tensor.New(k, l).Seq(2)
		v := tensor.New(l, k).Seq(3)
		q := tensor.New(m, k).Seq(1)
		got, err := fabric.FusedAttention(q, kT, v, 1.0/float64(k))
		if err != nil {
			return err
		}
		s, err := tensor.MatMul(q, kT)
		if err != nil {
			return err
		}
		for i := range s.Data {
			s.Data[i] /= float64(k)
		}
		want, err := tensor.MatMul(tensor.Softmax(s), v)
		if err != nil {
			return err
		}
		if !tensor.Equal(got, want, 1e-6) {
			return fmt.Errorf("attention: simulator diverges from reference by %v", tensor.MaxAbsDiff(got, want))
		}
		fmt.Fprintf(w, "fused attention (online softmax), %dx%d heads over %d keys\n", m, k, l)
		fmt.Fprintf(w, "  result matches full-softmax reference exactly\n")
		fmt.Fprintf(w, "  pipelined: %d cycles, traffic %+v\n", fabric.Cycles(), fabric.Traffic())
		return nil
	default: // "tile", "column"; validMode already rejected the rest
		d := tensor.New(l, nn).Seq(3)
		var got *tensor.Matrix
		if mode == "tile" {
			got, err = fabric.TileFused(a, b, d, nil)
		} else {
			got, err = fabric.ColumnFused(a, b, d, nil)
		}
		if err != nil {
			return err
		}
		c, err := tensor.MatMul(a, b)
		if err != nil {
			return err
		}
		want, err := tensor.MatMul(c, d)
		if err != nil {
			return err
		}
		return reportRun(w, fabric, fmt.Sprintf("%s fusion (%dx%dx%d)(%dx%d)", mode, m, k, l, l, nn), got, want)
	}
}

func reportRun(w io.Writer, fabric *sim.Fabric, what string, got, want *tensor.Matrix) error {
	if !tensor.Equal(got, want, 1e-6) {
		return fmt.Errorf("%s: simulator diverges from reference by %v", what, tensor.MaxAbsDiff(got, want))
	}
	fmt.Fprintf(w, "%s\n", what)
	fmt.Fprintf(w, "  result:       %d×%d, matches reference exactly\n", got.Rows, got.Cols)
	fmt.Fprintf(w, "  pipelined:    %d cycles\n", fabric.Cycles())
	fmt.Fprintf(w, "  CU busy time: %d cycles\n", fabric.BusyCycles())
	return nil
}
