module fusecu

go 1.22
