package fusecu_test

import (
	"fmt"

	"fusecu"
)

// The paper's worked example (§III-A4): BERT's projection under a 512 Ki
// element buffer lands in the medium regime, where Principle 2 untiles the
// smallest dimension.
func ExampleOptimize() {
	mm := fusecu.MatMul{Name: "bert-proj", M: 1024, K: 768, L: 768}
	res, err := fusecu.Optimize(mm, 512*1024)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Regime)
	fmt.Println(res.Access.NRA)
	fmt.Println(res.Dataflow.Tiling)
	// Output:
	// medium
	// Two-NRA
	// T_M=680 T_K=768 T_L=1
}

// Principle 4 on an attention pair: both operators share an NRA class, so
// the seq×seq intermediate fuses away.
func ExampleDecideFusion() {
	pair, err := fusecu.NewFusedPair(
		fusecu.MatMul{Name: "QKt", M: 512, K: 64, L: 512},
		fusecu.MatMul{Name: "SV", M: 512, K: 512, L: 64},
	)
	if err != nil {
		panic(err)
	}
	d, err := fusecu.DecideFusion(pair, 64*1024)
	if err != nil {
		panic(err)
	}
	fmt.Println(d.SameNRA, d.Fuse)
	fmt.Println(d.Fused.Dataflow.Pattern)
	// Output:
	// true true
	// column
}

// Buffer regimes classify how much of the operator fits on chip.
func ExampleClassify() {
	mm := fusecu.MatMul{M: 1024, K: 768, L: 768}
	for _, bs := range []int64{64 * 1024, 200 * 1024, 512 * 1024, 2 * 1024 * 1024} {
		fmt.Println(fusecu.Classify(mm, bs))
	}
	// Output:
	// tiny
	// small
	// medium
	// large
}

// The cycle-stepped fabric executes a fused pair and matches the reference
// math exactly.
func ExampleFabric_TileFused() {
	fabric, err := fusecu.NewFabric(8)
	if err != nil {
		panic(err)
	}
	a := fusecu.NewMatrix(16, 8).Seq(1)
	b := fusecu.NewMatrix(8, 16).Seq(2)
	d := fusecu.NewMatrix(16, 8).Seq(3)
	got, err := fabric.TileFused(a, b, d, nil)
	if err != nil {
		panic(err)
	}
	c, _ := fusecu.MatMulReference(a, b)
	want, _ := fusecu.MatMulReference(c, d)
	diff := 0.0
	for i := range want.Data {
		if v := got.Data[i] - want.Data[i]; v > diff {
			diff = v
		}
	}
	fmt.Println(got.Rows, got.Cols, diff == 0)
	// Output:
	// 16 8 true
}
