// Package api is the single source of truth for the fusecu-serve wire
// contract: the v1 request/response schemas, the uniform error envelope and
// its machine-readable codes, the version-introspection and table-admin
// schemas, and the shape-hash helper that content-addresses candidate-table
// artifacts and drives shape-affinity routing.
//
// internal/service marshals these exact structs, the client package
// consumes them (its exported wire names are aliases), cmd/fusecu-route
// hashes and passes them through, and internal/tablestore derives artifact
// file names from ShapeHash — so a field rename here is a deliberate,
// visible wire-format change instead of a silent drift between the server's
// private mirror and the client's copy. The JSON layout is pinned by golden
// tests in wire_test.go; changing it requires bumping Version.
package api

// OpSpec is the wire form of one matrix multiplication A(M×K) · B(K×L).
type OpSpec struct {
	Name string `json:"name,omitempty"`
	M    int    `json:"m"`
	K    int    `json:"k"`
	L    int    `json:"l"`
}

// Dataflow is the wire form of a tiling + scheduling decision returned by
// the optimizer and search endpoints.
type Dataflow struct {
	Order        string   `json:"order"`
	TM           int      `json:"tm"`
	TK           int      `json:"tk"`
	TL           int      `json:"tl"`
	NRA          string   `json:"nra"`
	MemoryAccess int64    `json:"memory_access"`
	PerTensor    [3]int64 `json:"per_tensor"`
}

// OptimizeRequest asks /v1/optimize for the principle-based one-shot optimum.
type OptimizeRequest struct {
	Op        OpSpec `json:"op"`
	Buffer    int64  `json:"buffer"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// OptimizeResponse is /v1/optimize's answer.
type OptimizeResponse struct {
	Regime     string   `json:"regime"`
	Principle  int      `json:"principle"`
	Note       string   `json:"note"`
	Dataflow   Dataflow `json:"dataflow"`
	Considered int      `json:"considered"`
}

// PlanRequest asks /v1/plan for a fusion plan over an operator chain.
type PlanRequest struct {
	Name      string   `json:"name"`
	Ops       []OpSpec `json:"ops"`
	Buffer    int64    `json:"buffer"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
}

// PlanGroup is one fused (or standalone) segment of the planned chain.
type PlanGroup struct {
	Start        int    `json:"start"`
	Len          int    `json:"len"`
	Fused        bool   `json:"fused"`
	MemoryAccess int64  `json:"memory_access"`
	Pattern      string `json:"pattern,omitempty"`
}

// PlanDecision is the per-pair Principle 4 fuse/no-fuse verdict.
type PlanDecision struct {
	Pair      int   `json:"pair"`
	SameNRA   bool  `json:"same_nra"`
	Fuse      bool  `json:"fuse"`
	UnfusedMA int64 `json:"unfused_ma"`
	FusedMA   int64 `json:"fused_ma"`
	Gain      int64 `json:"gain"`
}

// PlanResponse is /v1/plan's answer.
type PlanResponse struct {
	Chain     string         `json:"chain"`
	Groups    []PlanGroup    `json:"groups"`
	Decisions []PlanDecision `json:"decisions"`
	TotalMA   int64          `json:"total_ma"`
	UnfusedMA int64          `json:"unfused_ma"`
	Saving    float64        `json:"saving"`
}

// SearchRequest asks /v1/search for a DAT-style search-baseline answer.
type SearchRequest struct {
	Op     OpSpec `json:"op"`
	Buffer int64  `json:"buffer"`
	Seed   int64  `json:"seed,omitempty"`
	// Workers sizes this request's scan pool; 0 inherits the server's
	// configured pool size (which itself defaults to GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Engine selects the search strategy: "auto" (default — coarse
	// enumeration plus the server's configured polish on small lattices,
	// reported as "coarse+analytic"/"table+analytic" or the "+genetic"
	// variants under -polish=ga, polish alone otherwise), "exhaustive",
	// "coarse", or "genetic".
	Engine    string `json:"engine,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// SearchResponse is /v1/search's answer.
type SearchResponse struct {
	Method      string   `json:"method"`
	Dataflow    Dataflow `json:"dataflow"`
	Evaluations int64    `json:"evaluations"`
	CacheHits   int64    `json:"cache_hits"`
	// Degraded marks a principle-based fallback answer produced when the
	// scan could not finish inside its deadline budget (or failed
	// internally); it is still feasible and never worse than the principle
	// optimum, but carries no baseline-scan statistics. DegradedReason says
	// which ("deadline" or "engine_failure").
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// EvaluateRequest asks /v1/evaluate to run a named workload across platforms.
type EvaluateRequest struct {
	// Model names a Table II configuration; Seq (optional, LLaMA2 only)
	// overrides the sequence length as in the Fig. 11 sweep.
	Model string `json:"model"`
	Seq   int    `json:"seq,omitempty"`
	// Platforms restricts evaluation; empty means all five.
	Platforms []string `json:"platforms,omitempty"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
}

// PlatformResult is one platform's row in an EvaluateResponse.
type PlatformResult struct {
	Platform     string  `json:"platform"`
	MemoryAccess int64   `json:"memory_access"`
	Cycles       int64   `json:"cycles"`
	MACs         int64   `json:"macs"`
	Utilization  float64 `json:"utilization"`
}

// EvaluateResponse is /v1/evaluate's answer.
type EvaluateResponse struct {
	Workload string           `json:"workload"`
	Results  []PlatformResult `json:"results"`
}

// ErrorBody is the machine-readable payload of the uniform error envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the uniform JSON error body every non-2xx response
// carries, on every endpoint, from both fusecu-serve and fusecu-route.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// Error codes carried in ErrorBody.Code. The service's HTTP status decides
// retry semantics; the code names the cause for logs and dashboards.
const (
	CodeInvalidRequest      = "invalid_request"
	CodeBufferTooSmall      = "buffer_too_small"
	CodeInfeasible          = "infeasible"
	CodeNotFound            = "not_found"
	CodeMethodNotAllowed    = "method_not_allowed"
	CodeOverloaded          = "overloaded"
	CodeDraining            = "draining"
	CodeInternalError       = "internal_error"
	CodeInternal            = "internal"
	CodeDeadlineExceeded    = "deadline_exceeded"
	CodeClientClosedRequest = "client_closed_request"
	// CodeAdminDisabled answers table-admin calls on a server started
	// without the -admin flag.
	CodeAdminDisabled = "admin_disabled"
	// CodeNoBackend is fusecu-route's answer when no healthy replica is
	// available for the affinity key.
	CodeNoBackend = "no_backend"
	// CodeVersionMismatch marks a router refusing a fleet whose replicas
	// disagree on the cost-model version.
	CodeVersionMismatch = "version_mismatch"
)
