package api

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// ShapeHash returns the 16-hex-digit content address of one operator shape
// on one candidate lattice: the key candidate-table artifacts are stored
// under, the identity GET /v1/tables reports and DELETE /v1/tables/{hash}
// evicts, and (with grid == "") the affinity key fusecu-route consistent-
// hashes over.
//
// Only the dimensions and the grid participate — operator names are
// presentation, and cost depends on shape alone. The grid is part of the
// table identity ("full" and "coarse" tables over one shape are distinct
// artifacts) but deliberately absent from the routing key, so both grids of
// a shape land on the same replica and share its LRU slot budget. The hash
// is the first 8 bytes of a SHA-256 over a canonical string: stable across
// processes, architectures, and releases, which is what lets offline
// tablegen, the serving store, and remote routers agree on addresses
// without coordination.
func ShapeHash(m, k, l int, grid string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("fusecu/%s|%d|%d|%d|%s", Version, m, k, l, grid)))
	return hex.EncodeToString(sum[:8])
}
