package api

import (
	"regexp"
	"testing"
)

// TestShapeHashGolden pins the hash's exact value: artifacts on disk are
// addressed by it, so a silent change would orphan every published table.
func TestShapeHashGolden(t *testing.T) {
	cases := []struct {
		m, k, l int
		grid    string
		want    string
	}{
		{1024, 768, 768, "coarse", ShapeHash(1024, 768, 768, "coarse")},
		{32, 24, 28, "full", ShapeHash(32, 24, 28, "full")},
	}
	// Self-referential rows above only pin shape; the literal goldens below
	// pin the value across releases.
	golden := map[string]string{
		"1024/768/768/coarse": "ebf02c9ac93f8251",
		"32/24/28/full":       "f02a7a19c87eca1c",
		"32/24/28/":           "7cbeebebede0eea4",
	}
	if got := ShapeHash(1024, 768, 768, "coarse"); got != golden["1024/768/768/coarse"] {
		t.Errorf("ShapeHash(1024,768,768,coarse) = %s, want %s", got, golden["1024/768/768/coarse"])
	}
	if got := ShapeHash(32, 24, 28, "full"); got != golden["32/24/28/full"] {
		t.Errorf("ShapeHash(32,24,28,full) = %s, want %s", got, golden["32/24/28/full"])
	}
	if got := ShapeHash(32, 24, 28, ""); got != golden["32/24/28/"] {
		t.Errorf("ShapeHash(32,24,28,\"\") = %s, want %s", got, golden["32/24/28/"])
	}
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for _, tc := range cases {
		if !hex16.MatchString(tc.want) {
			t.Errorf("ShapeHash(%d,%d,%d,%s) = %q, want 16 lowercase hex digits", tc.m, tc.k, tc.l, tc.grid, tc.want)
		}
	}
}

// TestShapeHashDistinguishes checks the identity boundaries: dimensions and
// grid are part of the key, permuted dimensions collide with nothing, and
// the empty-grid routing key unifies the two grids of one shape.
func TestShapeHashDistinguishes(t *testing.T) {
	base := ShapeHash(8, 16, 32, "coarse")
	for _, other := range []string{
		ShapeHash(16, 8, 32, "coarse"),
		ShapeHash(8, 32, 16, "coarse"),
		ShapeHash(8, 16, 32, "full"),
		ShapeHash(8, 16, 33, "coarse"),
	} {
		if other == base {
			t.Fatalf("distinct shapes share hash %s", base)
		}
	}
	if ShapeHash(8, 16, 32, "") == ShapeHash(8, 16, 32, "coarse") {
		t.Fatal("routing key unexpectedly equals coarse-grid identity")
	}
	if ShapeHash(8, 16, 32, "") != ShapeHash(8, 16, 32, "") {
		t.Fatal("hash is not deterministic")
	}
}
