package api

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestWireGoldenJSON pins the v1 JSON layout of every wire schema: these
// strings are the compatibility contract with deployed clients and must not
// change without bumping Version. Each case is marshaled and compared
// byte-for-byte, then unmarshaled back and compared structurally, so both
// field names and value round-tripping are pinned at once.
func TestWireGoldenJSON(t *testing.T) {
	df := Dataflow{Order: "M→L→K", TM: 8, TK: 4, TL: 2, NRA: "Two-NRA",
		MemoryAccess: 1234, PerTensor: [3]int64{100, 1000, 134}}
	cases := []struct {
		name string
		v    any
		want string
	}{
		{"op_spec", OpSpec{Name: "proj", M: 256, K: 192, L: 192},
			`{"name":"proj","m":256,"k":192,"l":192}`},
		{"op_spec_unnamed", OpSpec{M: 1, K: 2, L: 3},
			`{"m":1,"k":2,"l":3}`},
		{"dataflow", df,
			`{"order":"M→L→K","tm":8,"tk":4,"tl":2,"nra":"Two-NRA","memory_access":1234,"per_tensor":[100,1000,134]}`},
		{"optimize_request", OptimizeRequest{Op: OpSpec{M: 4, K: 5, L: 6}, Buffer: 4096, TimeoutMS: 250},
			`{"op":{"m":4,"k":5,"l":6},"buffer":4096,"timeout_ms":250}`},
		{"optimize_response", OptimizeResponse{Regime: "medium", Principle: 2, Note: "n", Dataflow: df, Considered: 3},
			`{"regime":"medium","principle":2,"note":"n","dataflow":{"order":"M→L→K","tm":8,"tk":4,"tl":2,"nra":"Two-NRA","memory_access":1234,"per_tensor":[100,1000,134]},"considered":3}`},
		{"plan_request", PlanRequest{Name: "ffn", Ops: []OpSpec{{M: 1, K: 2, L: 3}}, Buffer: 64},
			`{"name":"ffn","ops":[{"m":1,"k":2,"l":3}],"buffer":64}`},
		{"plan_response", PlanResponse{
			Chain:     "ffn",
			Groups:    []PlanGroup{{Start: 0, Len: 2, Fused: true, MemoryAccess: 77, Pattern: "LOS"}},
			Decisions: []PlanDecision{{Pair: 0, SameNRA: true, Fuse: true, UnfusedMA: 100, FusedMA: 77, Gain: 23}},
			TotalMA:   77, UnfusedMA: 100, Saving: 0.23},
			`{"chain":"ffn","groups":[{"start":0,"len":2,"fused":true,"memory_access":77,"pattern":"LOS"}],"decisions":[{"pair":0,"same_nra":true,"fuse":true,"unfused_ma":100,"fused_ma":77,"gain":23}],"total_ma":77,"unfused_ma":100,"saving":0.23}`},
		{"search_request", SearchRequest{Op: OpSpec{M: 7, K: 8, L: 9}, Buffer: 512, Seed: 1, Workers: 2, Engine: "exhaustive", TimeoutMS: 100},
			`{"op":{"m":7,"k":8,"l":9},"buffer":512,"seed":1,"workers":2,"engine":"exhaustive","timeout_ms":100}`},
		{"search_response", SearchResponse{Method: "table", Dataflow: df, Evaluations: 10, CacheHits: 20},
			`{"method":"table","dataflow":{"order":"M→L→K","tm":8,"tk":4,"tl":2,"nra":"Two-NRA","memory_access":1234,"per_tensor":[100,1000,134]},"evaluations":10,"cache_hits":20}`},
		{"search_response_degraded", SearchResponse{Method: "principle", Dataflow: df, Degraded: true, DegradedReason: "deadline"},
			`{"method":"principle","dataflow":{"order":"M→L→K","tm":8,"tk":4,"tl":2,"nra":"Two-NRA","memory_access":1234,"per_tensor":[100,1000,134]},"evaluations":0,"cache_hits":0,"degraded":true,"degraded_reason":"deadline"}`},
		{"evaluate_request", EvaluateRequest{Model: "LLaMA2", Seq: 1024, Platforms: []string{"FuseCU"}},
			`{"model":"LLaMA2","seq":1024,"platforms":["FuseCU"]}`},
		{"evaluate_response", EvaluateResponse{Workload: "LLaMA2", Results: []PlatformResult{
			{Platform: "FuseCU", MemoryAccess: 9, Cycles: 8, MACs: 7, Utilization: 0.5}}},
			`{"workload":"LLaMA2","results":[{"platform":"FuseCU","memory_access":9,"cycles":8,"macs":7,"utilization":0.5}]}`},
		{"error_envelope", ErrorEnvelope{Error: ErrorBody{Code: CodeInfeasible, Message: "no feasible dataflow"}},
			`{"error":{"code":"infeasible","message":"no feasible dataflow"}}`},
		{"version_response", VersionResponse{APIVersion: "v1", CostModelVersion: "cm1", TableFormatVersion: 1},
			`{"api_version":"v1","cost_model_version":"cm1","table_format_version":1}`},
		{"tables_response", TablesResponse{Tables: []TableInfo{{
			ShapeHash: "00112233aabbccdd", Op: OpSpec{M: 3, K: 4, L: 5}, Grid: "coarse",
			Source: "disk", Candidates: 42, Hits: 7, AgeMS: 1500}}},
			`{"tables":[{"shape_hash":"00112233aabbccdd","op":{"m":3,"k":4,"l":5},"grid":"coarse","source":"disk","candidates":42,"hits":7,"age_ms":1500}]}`},
		{"evict_table_response", EvictTableResponse{ShapeHash: "00112233aabbccdd", Evicted: true},
			`{"shape_hash":"00112233aabbccdd","evicted":true}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := json.Marshal(tc.v)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != tc.want {
				t.Fatalf("wire format drifted:\n got  %s\n want %s", got, tc.want)
			}
			back := reflect.New(reflect.TypeOf(tc.v))
			if err := json.Unmarshal([]byte(tc.want), back.Interface()); err != nil {
				t.Fatalf("unmarshal golden: %v", err)
			}
			if !reflect.DeepEqual(back.Elem().Interface(), tc.v) {
				t.Fatalf("golden round-trip drifted:\n got  %+v\n want %+v", back.Elem().Interface(), tc.v)
			}
		})
	}
}
