package api

// Version is the wire-API version every schema in this package belongs to.
// It changes only on a breaking change to the JSON layout pinned by
// wire_test.go; the /v1/ URL prefix tracks it.
const Version = "v1"

// VersionResponse is GET /v1/version: the three coordinates that decide
// whether two processes may share artifacts and traffic. Replicas behind one
// router must agree on CostModelVersion (the router refuses mixed fleets —
// tables built under different cost semantics are not bit-identical), and a
// table artifact is loadable only when both its cost-model and table-format
// versions match the server's.
type VersionResponse struct {
	APIVersion         string `json:"api_version"`
	CostModelVersion   string `json:"cost_model_version"`
	TableFormatVersion int    `json:"table_format_version"`
}

// TableInfo is one resident candidate table in GET /v1/tables.
type TableInfo struct {
	// ShapeHash is the table's content address: ShapeHash(M, K, L, Grid).
	ShapeHash string `json:"shape_hash"`
	Op        OpSpec `json:"op"`
	Grid      string `json:"grid"`
	// Source records how the table materialized: "disk" (loaded from the
	// -table-dir store) or "built" (computed at request time).
	Source     string `json:"source"`
	Candidates int64  `json:"candidates"`
	// Hits counts registry lookups served by this entry after it was
	// created.
	Hits int64 `json:"hits"`
	// AgeMS is milliseconds since the entry materialized.
	AgeMS int64 `json:"age_ms"`
}

// TablesResponse is GET /v1/tables: the admin view of the table registry.
type TablesResponse struct {
	Tables []TableInfo `json:"tables"`
}

// EvictTableResponse is DELETE /v1/tables/{shapeHash}.
type EvictTableResponse struct {
	ShapeHash string `json:"shape_hash"`
	Evicted   bool   `json:"evicted"`
}
