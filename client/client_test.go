package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fusecu/internal/core"
	"fusecu/internal/faultinject"
	"fusecu/internal/op"
	"fusecu/internal/search"
	"fusecu/internal/service"
)

func newServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	s := service.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func newClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// noSleep is the deterministic Sleep seam: it records every requested delay
// and returns immediately, optionally running a hook per call.
type noSleep struct {
	mu     sync.Mutex
	delays []time.Duration
	hook   func(call int)
}

func (n *noSleep) sleep(_ context.Context, d time.Duration) error {
	n.mu.Lock()
	call := len(n.delays)
	n.delays = append(n.delays, d)
	hook := n.hook
	n.mu.Unlock()
	if hook != nil {
		hook(call)
	}
	return nil
}

func (n *noSleep) recorded() []time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]time.Duration(nil), n.delays...)
}

// fakeClock drives the breaker's cooldown without real time passing.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

func TestRoundTripAllEndpoints(t *testing.T) {
	_, ts := newServer(t, service.Config{})
	c := newClient(t, Config{BaseURL: ts.URL})
	ctx := context.Background()

	opt, err := c.Optimize(ctx, OptimizeRequest{Op: OpSpec{M: 512, K: 64, L: 512}, Buffer: 65536})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	want, err := core.Optimize(op.MatMul{M: 512, K: 64, L: 512}, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Dataflow.MemoryAccess != want.Access.Total {
		t.Fatalf("Optimize MA %d != core %d", opt.Dataflow.MemoryAccess, want.Access.Total)
	}

	plan, err := c.Plan(ctx, PlanRequest{Name: "attn",
		Ops:    []OpSpec{{M: 512, K: 64, L: 512}, {M: 512, K: 512, L: 64}},
		Buffer: 65536})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if len(plan.Decisions) != 1 || plan.TotalMA <= 0 {
		t.Fatalf("unexpected plan shape: %+v", plan)
	}

	sr, err := c.Search(ctx, SearchRequest{Op: OpSpec{M: 48, K: 32, L: 40}, Buffer: 4096, Engine: "exhaustive"})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	ref, err := search.ReferenceExhaustive(op.MatMul{M: 48, K: 32, L: 40}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Degraded || sr.Dataflow.MemoryAccess != ref.Access.Total {
		t.Fatalf("Search diverged from reference: %+v", sr)
	}

	ev, err := c.Evaluate(ctx, EvaluateRequest{Model: "BERT", Platforms: []string{"FuseCU"}})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(ev.Results) != 1 || ev.Results[0].MemoryAccess <= 0 {
		t.Fatalf("unexpected evaluate shape: %+v", ev)
	}
	if got := c.Stats(); got.Attempts != 4 || got.Retries != 0 || got.BreakerOpen != 0 {
		t.Fatalf("clean round trips perturbed the stats: %+v", got)
	}
}

// TestRetriesThroughInjected5xxWave: the server fails the first two attempts
// with injected 500s; the client retries through the wave with full-jitter
// backoff and lands the third attempt.
func TestRetriesThroughInjected5xxWave(t *testing.T) {
	in := faultinject.New(1, faultinject.Plan{Site: "service.optimize", Mode: faultinject.ModeError, Times: 2})
	_, ts := newServer(t, service.Config{Injector: in})
	ns := &noSleep{}
	c := newClient(t, Config{BaseURL: ts.URL, Seed: 7,
		BaseBackoff: 100 * time.Millisecond, MaxBackoff: 2 * time.Second, Sleep: ns.sleep})

	opt, err := c.Optimize(context.Background(), OptimizeRequest{Op: OpSpec{M: 64, K: 64, L: 64}, Buffer: 4096})
	if err != nil {
		t.Fatalf("Optimize through 5xx wave: %v", err)
	}
	if opt.Dataflow.MemoryAccess <= 0 {
		t.Fatalf("degenerate response: %+v", opt)
	}
	if got := c.Stats(); got.Attempts != 3 || got.Retries != 2 {
		t.Fatalf("stats = %+v, want 3 attempts / 2 retries", got)
	}
	delays := ns.recorded()
	if len(delays) != 2 {
		t.Fatalf("recorded %d sleeps, want 2", len(delays))
	}
	// Full jitter: each delay is uniform in [0, BaseBackoff·2^(n-1)].
	for i, ceiling := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond} {
		if delays[i] < 0 || delays[i] > ceiling {
			t.Fatalf("retry %d delay %v outside [0, %v]", i+1, delays[i], ceiling)
		}
	}
	if in.Fires("service.optimize") != 2 {
		t.Fatalf("injector fired %d times, want 2", in.Fires("service.optimize"))
	}
}

// TestRetryAfterHonoredOn429 holds the single admission slot with a slow
// search, so the client's first attempt is shed with Retry-After: 3. The
// Sleep seam proves the client slept exactly the advertised 3s (no jitter),
// releases the slot, and the retry succeeds.
func TestRetryAfterHonoredOn429(t *testing.T) {
	s, ts := newServer(t, service.Config{MaxInFlight: 1, RetryAfter: 3, DefaultTimeout: 30 * time.Second})

	slowCtx, releaseSlot := context.WithCancel(context.Background())
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		req, err := http.NewRequestWithContext(slowCtx, http.MethodPost, ts.URL+"/v1/search",
			strings.NewReader(`{"op":{"m":224,"k":224,"l":224},"buffer":1048576,"engine":"exhaustive"}`))
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			if cerr := resp.Body.Close(); cerr != nil {
				t.Error(cerr)
			}
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Registry().Gauge("http_inflight").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot-holding search never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	ns := &noSleep{}
	ns.hook = func(int) {
		// The client is now between attempts: free the slot and wait until
		// the server has really released it, so the retry is admitted.
		releaseSlot()
		<-slowDone
		drainDeadline := time.Now().Add(10 * time.Second)
		for s.Registry().Gauge("http_inflight").Value() != 0 {
			if time.Now().After(drainDeadline) {
				t.Error("slot never released")
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	c := newClient(t, Config{BaseURL: ts.URL, Sleep: ns.sleep})
	if _, err := c.Optimize(context.Background(), OptimizeRequest{Op: OpSpec{M: 8, K: 8, L: 8}, Buffer: 64}); err != nil {
		t.Fatalf("Optimize through 429: %v", err)
	}
	delays := ns.recorded()
	if len(delays) != 1 || delays[0] != 3*time.Second {
		t.Fatalf("recorded sleeps %v, want exactly [3s] from Retry-After", delays)
	}
	if got := c.Stats(); got.Attempts != 2 || got.Retries != 1 {
		t.Fatalf("stats = %+v, want 2 attempts / 1 retry", got)
	}
}

// TestPerAttemptTimeoutSurvivesLatencySpike: an injected 300ms stall on the
// first request would eat a shared deadline; the per-attempt timeout cuts it
// off at 50ms and the retry (injection exhausted) succeeds immediately.
func TestPerAttemptTimeoutSurvivesLatencySpike(t *testing.T) {
	in := faultinject.New(1, faultinject.Plan{Site: "service.optimize", Mode: faultinject.ModeLatency,
		Delay: 300 * time.Millisecond, Times: 1})
	_, ts := newServer(t, service.Config{Injector: in})
	ns := &noSleep{}
	c := newClient(t, Config{BaseURL: ts.URL, AttemptTimeout: 50 * time.Millisecond, Sleep: ns.sleep})

	start := time.Now()
	opt, err := c.Optimize(context.Background(), OptimizeRequest{Op: OpSpec{M: 64, K: 64, L: 64}, Buffer: 4096})
	if err != nil {
		t.Fatalf("Optimize through latency spike: %v", err)
	}
	if opt.Dataflow.MemoryAccess <= 0 {
		t.Fatalf("degenerate response: %+v", opt)
	}
	if got := c.Stats(); got.Attempts != 2 || got.Retries != 1 {
		t.Fatalf("stats = %+v, want 2 attempts / 1 retry", got)
	}
	// The whole call must beat the injected stall: proof the first attempt
	// was abandoned at its own timeout rather than waiting out the spike.
	if elapsed := time.Since(start); elapsed >= 300*time.Millisecond {
		t.Fatalf("call took %v, not cut off by the 50ms attempt timeout", elapsed)
	}
}

func TestClientErrorsAreNotRetried(t *testing.T) {
	_, ts := newServer(t, service.Config{})
	ns := &noSleep{}
	c := newClient(t, Config{BaseURL: ts.URL, Sleep: ns.sleep})
	_, err := c.Optimize(context.Background(), OptimizeRequest{Op: OpSpec{M: 0, K: 8, L: 8}, Buffer: 64})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest || apiErr.Code != "invalid_request" {
		t.Fatalf("err = %v, want 400 invalid_request APIError", err)
	}
	if got := c.Stats(); got.Attempts != 1 || got.Retries != 0 {
		t.Fatalf("4xx was retried: %+v", got)
	}
}

// TestBreakerTripsAndRecovers walks the breaker's whole state machine on a
// fake clock: three consecutive injected 500s open it, an open call fails
// fast without touching the server, the first post-cooldown probe fails and
// re-opens it, and the second probe (injection exhausted) re-closes it.
func TestBreakerTripsAndRecovers(t *testing.T) {
	in := faultinject.New(1, faultinject.Plan{Site: "service.optimize", Mode: faultinject.ModeError,
		Every: 1, Times: 4})
	_, ts := newServer(t, service.Config{Injector: in})
	clock := &fakeClock{t: time.Unix(1000, 0)}
	ns := &noSleep{}
	c := newClient(t, Config{BaseURL: ts.URL, MaxAttempts: 1,
		BreakerThreshold: 3, BreakerCooldown: 5 * time.Second,
		Now: clock.now, Sleep: ns.sleep})
	ctx := context.Background()
	req := OptimizeRequest{Op: OpSpec{M: 64, K: 64, L: 64}, Buffer: 4096}

	// Three consecutive 500s trip the breaker.
	for i := 0; i < 3; i++ {
		var apiErr *APIError
		if _, err := c.Optimize(ctx, req); !errors.As(err, &apiErr) || apiErr.Status != 500 {
			t.Fatalf("call %d: err = %v, want injected 500", i+1, err)
		}
	}
	// Open: rejected without a network attempt.
	if _, err := c.Optimize(ctx, req); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker let the call through: %v", err)
	}
	if v := in.Visits("service.optimize"); v != 3 {
		t.Fatalf("open-breaker call reached the server: %d visits", v)
	}
	if got := c.Stats(); got.BreakerOpen != 1 {
		t.Fatalf("BreakerOpen = %d, want 1", got.BreakerOpen)
	}

	// Half-open probe after cooldown still hits the fault: re-opens.
	clock.advance(5 * time.Second)
	if _, err := c.Optimize(ctx, req); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe outcome: %v, want a served 500", err)
	}
	if v := in.Visits("service.optimize"); v != 4 {
		t.Fatalf("probe did not reach the server: %d visits", v)
	}
	if _, err := c.Optimize(ctx, req); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("breaker did not re-open after failed probe: %v", err)
	}

	// Injection exhausted: the next probe succeeds and closes the breaker.
	clock.advance(5 * time.Second)
	if _, err := c.Optimize(ctx, req); err != nil {
		t.Fatalf("recovery probe failed: %v", err)
	}
	if _, err := c.Optimize(ctx, req); err != nil {
		t.Fatalf("call after recovery failed: %v", err)
	}
	if got := c.Stats(); got.BreakerOpen != 2 {
		t.Fatalf("BreakerOpen = %d, want 2", got.BreakerOpen)
	}
}

// TestRetryBudgetCapsBackoff: a permanently shedding server advertises
// Retry-After: 2 every time; with a 3s budget the client affords exactly one
// such sleep and then gives up with the budget error instead of burning the
// caller's deadline.
func TestRetryBudgetCapsBackoff(t *testing.T) {
	var hits int64
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":{"code":"overloaded","message":"shed"}}`)
	}))
	t.Cleanup(ts.Close)
	ns := &noSleep{}
	c := newClient(t, Config{BaseURL: ts.URL, MaxAttempts: 10, RetryBudget: 3 * time.Second, Sleep: ns.sleep})

	_, err := c.Optimize(context.Background(), OptimizeRequest{Op: OpSpec{M: 8, K: 8, L: 8}, Buffer: 64})
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("err = %v, want retry-budget exhaustion", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("budget error does not wrap the last 429: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if hits != 2 {
		t.Fatalf("server saw %d attempts, want 2 (one sleep fits the 3s budget)", hits)
	}
	if delays := ns.recorded(); len(delays) != 1 || delays[0] != 2*time.Second {
		t.Fatalf("recorded sleeps %v, want [2s]", delays)
	}
}

// TestSearchSurfacesDegradedAnswers: the client reports (and counts) the
// server's principle-based fallback rather than treating it as a failure.
func TestSearchSurfacesDegradedAnswers(t *testing.T) {
	_, ts := newServer(t, service.Config{DefaultTimeout: 150 * time.Millisecond})
	c := newClient(t, Config{BaseURL: ts.URL})
	sr, err := c.Search(context.Background(),
		SearchRequest{Op: OpSpec{M: 224, K: 224, L: 224}, Buffer: 1 << 20, Engine: "exhaustive"})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if !sr.Degraded || sr.DegradedReason != "deadline" || sr.Method != "principle" {
		t.Fatalf("response not degraded: %+v", sr)
	}
	want, err := core.Optimize(op.MatMul{M: 224, K: 224, L: 224}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Dataflow.MemoryAccess != want.Access.Total {
		t.Fatalf("degraded MA %d != principle optimum %d", sr.Dataflow.MemoryAccess, want.Access.Total)
	}
	if got := c.Stats(); got.Degraded != 1 {
		t.Fatalf("Degraded counter = %d, want 1", got.Degraded)
	}
}

// TestStatsSplitTransportAndServerErrors: the failure counters distinguish
// attempts that never got a response from attempts answered with a 5xx, so
// the chaos harness can attribute client-observed errors.
func TestStatsSplitTransportAndServerErrors(t *testing.T) {
	in := faultinject.New(1, faultinject.Plan{Site: "service.optimize", Mode: faultinject.ModeError, Times: 2})
	_, ts := newServer(t, service.Config{Injector: in})
	ns := &noSleep{}
	c := newClient(t, Config{BaseURL: ts.URL, Sleep: ns.sleep})

	// Two injected 500s, then success: two server errors, no transport ones.
	if _, err := c.Optimize(context.Background(), OptimizeRequest{Op: OpSpec{M: 64, K: 64, L: 64}, Buffer: 4096}); err != nil {
		t.Fatalf("Optimize through 5xx wave: %v", err)
	}
	if got := c.Stats(); got.ServerErrors != 2 || got.TransportErrors != 0 {
		t.Fatalf("stats after 5xx wave = %+v, want ServerErrors=2 TransportErrors=0", got)
	}

	// A dead endpoint: every attempt is a transport error.
	dead := newClient(t, Config{BaseURL: "http://127.0.0.1:1", MaxAttempts: 2, Sleep: ns.sleep, BreakerThreshold: -1})
	if _, err := dead.Version(context.Background()); err == nil {
		t.Fatal("Version against a dead endpoint succeeded")
	}
	if got := dead.Stats(); got.TransportErrors != 2 || got.ServerErrors != 0 {
		t.Fatalf("stats against dead endpoint = %+v, want TransportErrors=2 ServerErrors=0", got)
	}
}
