// Package client is the Go client for the fusecu-serve HTTP/JSON API. It
// wraps all four endpoints (/v1/optimize, /v1/plan, /v1/search,
// /v1/evaluate) behind a resilient transport:
//
//   - transient failures (transport errors, 5xx) retry with exponential
//     backoff and full jitter, capped by MaxAttempts and RetryBudget;
//   - 429 responses honor the server's Retry-After header verbatim;
//   - every attempt runs under its own AttemptTimeout, so one stuck
//     connection cannot consume the caller's whole deadline;
//   - a consecutive-failure circuit breaker opens after BreakerThreshold
//     server failures, fails fast while open, and re-closes via a single
//     half-open probe after BreakerCooldown.
//
// Determinism seams (Sleep, Now, Seed) let tests drive the retry and
// breaker machinery with fake clocks and recorded backoffs instead of real
// sleeps; production callers leave them nil.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBreakerOpen is returned (wrapped) when the circuit breaker is open and
// the call was rejected without touching the network.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// Config tunes the resilient transport. The zero value plus a BaseURL is a
// working client; zero fields take the documented defaults.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080". Required.
	BaseURL string
	// HTTPClient issues the requests; defaults to a dedicated http.Client.
	HTTPClient *http.Client

	// MaxAttempts bounds tries per call including the first (default 4).
	MaxAttempts int
	// BaseBackoff is the first retry's jitter ceiling (default 100ms); the
	// ceiling doubles each retry up to MaxBackoff (default 2s). The actual
	// delay is uniform in [0, ceiling] — "full jitter".
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RetryBudget caps the total time spent sleeping between attempts of
	// one call; a retry whose delay would exceed it fails instead
	// (default 30s; negative disables the cap).
	RetryBudget time.Duration
	// AttemptTimeout bounds each individual attempt (default 30s; negative
	// disables, leaving only the caller's context deadline).
	AttemptTimeout time.Duration

	// BreakerThreshold opens the breaker after this many consecutive
	// server failures — transport errors and 5xx; 429 does not count
	// (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting
	// one half-open probe (default 5s).
	BreakerCooldown time.Duration

	// Seed makes the jitter sequence reproducible (default 1).
	Seed int64
	// Sleep and Now are determinism seams for tests. Sleep must respect
	// ctx cancellation; nil uses a timer. Now defaults to time.Now.
	Sleep func(ctx context.Context, d time.Duration) error
	Now   func() time.Time
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 30 * time.Second
	}
	if c.AttemptTimeout == 0 {
		c.AttemptTimeout = 30 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Stats are cumulative counters over the client's lifetime.
type Stats struct {
	// Attempts counts every HTTP request actually issued.
	Attempts int64
	// Retries counts attempts beyond the first of each call.
	Retries int64
	// BreakerOpen counts calls rejected by the open breaker.
	BreakerOpen int64
	// Degraded counts Search responses served by the principle fallback.
	Degraded int64
	// TransportErrors counts attempts that failed before a response arrived
	// (connection refused, reset, per-attempt timeout, truncated body).
	TransportErrors int64
	// ServerErrors counts attempts answered with a 5xx status.
	ServerErrors int64
}

// Client is a resilient fusecu-serve client; safe for concurrent use.
type Client struct {
	cfg     Config
	breaker breaker

	rngMu sync.Mutex
	rng   *rand.Rand

	attempts        atomic.Int64
	retries         atomic.Int64
	breakerOpen     atomic.Int64
	degraded        atomic.Int64
	transportErrors atomic.Int64
	serverErrors    atomic.Int64
}

// New builds a Client; see Config for defaults.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: Config.BaseURL is required")
	}
	cfg = cfg.withDefaults()
	return &Client{
		cfg:     cfg,
		breaker: breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown},
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Stats returns a snapshot of the cumulative counters.
func (c *Client) Stats() Stats {
	return Stats{
		Attempts:        c.attempts.Load(),
		Retries:         c.retries.Load(),
		BreakerOpen:     c.breakerOpen.Load(),
		Degraded:        c.degraded.Load(),
		TransportErrors: c.transportErrors.Load(),
		ServerErrors:    c.serverErrors.Load(),
	}
}

// Optimize calls /v1/optimize: the principle-based one-shot optimum.
func (c *Client) Optimize(ctx context.Context, req OptimizeRequest) (*OptimizeResponse, error) {
	var out OptimizeResponse
	if err := c.do(ctx, http.MethodPost, "/v1/optimize", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Plan calls /v1/plan: fusion planning over an operator chain.
func (c *Client) Plan(ctx context.Context, req PlanRequest) (*PlanResponse, error) {
	var out PlanResponse
	if err := c.do(ctx, http.MethodPost, "/v1/plan", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Search calls /v1/search: the DAT-style search baseline. A response with
// Degraded set is the server's principle fallback, not a scan result.
func (c *Client) Search(ctx context.Context, req SearchRequest) (*SearchResponse, error) {
	var out SearchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/search", req, &out); err != nil {
		return nil, err
	}
	if out.Degraded {
		c.degraded.Add(1)
	}
	return &out, nil
}

// Evaluate calls /v1/evaluate: cross-platform workload evaluation.
func (c *Client) Evaluate(ctx context.Context, req EvaluateRequest) (*EvaluateResponse, error) {
	var out EvaluateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/evaluate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Version calls /v1/version: the server's API, cost-model, and
// table-format versions — the triple that decides whether two processes
// may share candidate-table artifacts.
func (c *Client) Version(ctx context.Context) (*VersionResponse, error) {
	var out VersionResponse
	if err := c.do(ctx, http.MethodGet, "/v1/version", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Tables calls GET /v1/tables (admin-gated): the server's resident
// candidate tables with source, usage, and content address.
func (c *Client) Tables(ctx context.Context) (*TablesResponse, error) {
	var out TablesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/tables", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteTable calls DELETE /v1/tables/{shapeHash} (admin-gated), dropping
// the resident table so the next request re-resolves disk → build.
func (c *Client) DeleteTable(ctx context.Context, shapeHash string) (*EvictTableResponse, error) {
	var out EvictTableResponse
	if err := c.do(ctx, http.MethodDelete, "/v1/tables/"+shapeHash, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// attemptResult is one attempt's outcome: err == nil means done.
type attemptResult struct {
	err       error
	retryable bool
	// delayHint overrides the exponential backoff before the next attempt
	// (the server's Retry-After); zero means use the backoff schedule.
	delayHint time.Duration
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	var slept time.Duration
	var last attemptResult
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			delay := last.delayHint
			if delay <= 0 {
				delay = c.backoff(attempt)
			}
			if c.cfg.RetryBudget > 0 && slept+delay > c.cfg.RetryBudget {
				return fmt.Errorf("client: retry budget %v exhausted after %d attempts: %w",
					c.cfg.RetryBudget, attempt, last.err)
			}
			slept += delay
			c.retries.Add(1)
			if err := c.cfg.Sleep(ctx, delay); err != nil {
				return fmt.Errorf("client: canceled while backing off: %w", err)
			}
		}
		if err := c.breaker.allow(c.cfg.Now()); err != nil {
			c.breakerOpen.Add(1)
			if last.err != nil {
				return fmt.Errorf("%w (last failure: %v)", err, last.err)
			}
			return err
		}
		c.attempts.Add(1)
		last = c.attempt(ctx, method, path, payload, out)
		if last.err == nil {
			return nil
		}
		if !last.retryable {
			return last.err
		}
	}
	return fmt.Errorf("client: %d attempts exhausted: %w", c.cfg.MaxAttempts, last.err)
}

// backoff returns the full-jitter delay before the given retry (1-based):
// uniform in [0, min(MaxBackoff, BaseBackoff·2^(retry-1))].
func (c *Client) backoff(retry int) time.Duration {
	ceiling := c.cfg.BaseBackoff << uint(retry-1)
	if ceiling > c.cfg.MaxBackoff || ceiling <= 0 {
		ceiling = c.cfg.MaxBackoff
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return time.Duration(c.rng.Int63n(int64(ceiling) + 1))
}

func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, out any) attemptResult {
	actx := ctx
	if c.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		defer cancel()
	}
	var reqBody io.Reader
	if payload != nil {
		reqBody = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(actx, method, c.cfg.BaseURL+path, reqBody)
	if err != nil {
		return attemptResult{err: fmt.Errorf("client: build request: %w", err)}
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}

	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's own context died: not a server failure, no retry.
			return attemptResult{err: fmt.Errorf("client: %s: %w", path, err)}
		}
		// Transport failure or per-attempt timeout: the server is unwell.
		c.transportErrors.Add(1)
		c.breaker.failure(c.cfg.Now())
		return attemptResult{err: fmt.Errorf("client: %s: %w", path, err), retryable: true}
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		c.transportErrors.Add(1)
		c.breaker.failure(c.cfg.Now())
		return attemptResult{err: fmt.Errorf("client: %s: read response: %w", path, err), retryable: true}
	}

	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			return attemptResult{err: fmt.Errorf("client: %s: decode response: %w", path, err)}
		}
		c.breaker.success()
		return attemptResult{}
	}

	apiErr := &APIError{Status: resp.StatusCode, Code: "unknown", Message: string(body)}
	var env errorEnvelope
	if jerr := json.Unmarshal(body, &env); jerr == nil && env.Error.Code != "" {
		apiErr.Code, apiErr.Message = env.Error.Code, env.Error.Message
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		// Overload shedding is the admission gate doing its job, not a
		// server fault: retry when it says, and leave the breaker alone.
		var hint time.Duration
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			hint = time.Duration(s) * time.Second
		}
		return attemptResult{err: apiErr, retryable: true, delayHint: hint}
	case resp.StatusCode >= 500:
		c.serverErrors.Add(1)
		c.breaker.failure(c.cfg.Now())
		return attemptResult{err: apiErr, retryable: true}
	default:
		// A 4xx is a deliberate, healthy answer about this request.
		c.breaker.success()
		return attemptResult{err: apiErr}
	}
}

// breaker is a consecutive-failure circuit breaker. While open it rejects
// calls outright; after cooldown it admits exactly one half-open probe whose
// outcome decides between re-closing and re-opening.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	fails    int
	state    breakerState
	openedAt time.Time
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (b *breaker) allow(now time.Time) error {
	if b.threshold < 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen // this caller becomes the probe
			return nil
		}
		return ErrBreakerOpen
	case breakerHalfOpen:
		return ErrBreakerOpen // a probe is already in flight
	default:
		return nil
	}
}

func (b *breaker) success() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.state = breakerClosed
}

func (b *breaker) failure(now time.Time) {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
	}
}
