package client

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"fusecu/api"
	"fusecu/internal/cost"
	"fusecu/internal/search"
	"fusecu/internal/service"
)

// TestVersionMethod round-trips GET /v1/version through the client.
func TestVersionMethod(t *testing.T) {
	_, ts := newServer(t, service.Config{})
	c := newClient(t, Config{BaseURL: ts.URL})
	v, err := c.Version(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := VersionResponse{
		APIVersion:         api.Version,
		CostModelVersion:   cost.ModelVersion,
		TableFormatVersion: search.TableFormatVersion,
	}
	if *v != want {
		t.Fatalf("version = %+v, want %+v", *v, want)
	}
}

// TestTableAdminMethods drives the admin workflow end to end through the
// client: search populates a table, Tables lists it, DeleteTable evicts it,
// and a second Tables call shows it gone.
func TestTableAdminMethods(t *testing.T) {
	_, ts := newServer(t, service.Config{EnableAdmin: true})
	c := newClient(t, Config{BaseURL: ts.URL})
	ctx := context.Background()

	req := SearchRequest{Op: OpSpec{Name: "adm", M: 14, K: 12, L: 10}, Buffer: 1024, Engine: "exhaustive"}
	if _, err := c.Search(ctx, req); err != nil {
		t.Fatal(err)
	}
	tr, err := c.Tables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tables) != 1 || tr.Tables[0].Source != "built" {
		t.Fatalf("tables = %+v, want one built table", tr.Tables)
	}
	hash := tr.Tables[0].ShapeHash
	if want := api.ShapeHash(14, 12, 10, "full"); hash != want {
		t.Fatalf("shape hash %s, want %s", hash, want)
	}
	ev, err := c.DeleteTable(ctx, hash)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Evicted || ev.ShapeHash != hash {
		t.Fatalf("evict = %+v, want evicted %s", ev, hash)
	}
	tr, err = c.Tables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tables) != 0 {
		t.Fatalf("tables after evict = %+v, want none", tr.Tables)
	}
}

// TestAdminDisabledSurfacesAPIError: against a non-admin server the client
// returns the typed envelope error without retrying (403 is a deliberate
// answer, not a fault).
func TestAdminDisabledSurfacesAPIError(t *testing.T) {
	_, ts := newServer(t, service.Config{})
	c := newClient(t, Config{BaseURL: ts.URL})
	_, err := c.Tables(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("got %v, want *APIError", err)
	}
	if ae.Status != http.StatusForbidden || ae.Code != api.CodeAdminDisabled {
		t.Fatalf("error = %+v, want 403 %s", ae, api.CodeAdminDisabled)
	}
	if st := c.Stats(); st.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (4xx must not retry)", st.Attempts)
	}
}
