package client

import (
	"fmt"

	"fusecu/api"
)

// The wire schemas are defined once, in the public api package, and aliased
// here so existing client code keeps compiling against the same names. The
// server marshals the identical structs — there is no client-side copy to
// drift.
type (
	// OpSpec is the wire form of one matrix multiplication A(M×K) · B(K×L).
	OpSpec = api.OpSpec
	// Dataflow is the wire form of a tiling + scheduling decision returned
	// by the optimizer and search endpoints.
	Dataflow = api.Dataflow

	// OptimizeRequest asks /v1/optimize for the principle-based optimum.
	OptimizeRequest  = api.OptimizeRequest
	OptimizeResponse = api.OptimizeResponse

	// PlanRequest asks /v1/plan for a fusion plan over an operator chain.
	PlanRequest  = api.PlanRequest
	PlanGroup    = api.PlanGroup
	PlanDecision = api.PlanDecision
	PlanResponse = api.PlanResponse

	// SearchRequest asks /v1/search for a DAT-style search-baseline answer.
	SearchRequest  = api.SearchRequest
	SearchResponse = api.SearchResponse

	// EvaluateRequest asks /v1/evaluate to run a named workload across
	// platforms.
	EvaluateRequest  = api.EvaluateRequest
	PlatformResult   = api.PlatformResult
	EvaluateResponse = api.EvaluateResponse

	// VersionResponse is /v1/version's compatibility triple.
	VersionResponse = api.VersionResponse
	// TableInfo/TablesResponse describe the server's resident candidate
	// tables (GET /v1/tables, admin-gated).
	TableInfo      = api.TableInfo
	TablesResponse = api.TablesResponse
	// EvictTableResponse answers DELETE /v1/tables/{shapeHash}.
	EvictTableResponse = api.EvictTableResponse
)

// errorEnvelope mirrors the server's uniform error body.
type errorEnvelope = api.ErrorEnvelope

// APIError is a non-2xx response from the service, carrying the HTTP status
// and the machine-readable code from the uniform error envelope.
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fusecu api error: status %d code %q: %s", e.Status, e.Code, e.Message)
}
