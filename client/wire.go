package client

import "fmt"

// OpSpec is the wire form of one matrix multiplication A(M×K) · B(K×L).
type OpSpec struct {
	Name string `json:"name,omitempty"`
	M    int    `json:"m"`
	K    int    `json:"k"`
	L    int    `json:"l"`
}

// Dataflow is the wire form of a tiling + scheduling decision returned by
// the optimizer and search endpoints.
type Dataflow struct {
	Order        string   `json:"order"`
	TM           int      `json:"tm"`
	TK           int      `json:"tk"`
	TL           int      `json:"tl"`
	NRA          string   `json:"nra"`
	MemoryAccess int64    `json:"memory_access"`
	PerTensor    [3]int64 `json:"per_tensor"`
}

// OptimizeRequest asks /v1/optimize for the principle-based one-shot optimum.
type OptimizeRequest struct {
	Op        OpSpec `json:"op"`
	Buffer    int64  `json:"buffer"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

type OptimizeResponse struct {
	Regime     string   `json:"regime"`
	Principle  int      `json:"principle"`
	Note       string   `json:"note"`
	Dataflow   Dataflow `json:"dataflow"`
	Considered int      `json:"considered"`
}

// PlanRequest asks /v1/plan for a fusion plan over an operator chain.
type PlanRequest struct {
	Name      string   `json:"name"`
	Ops       []OpSpec `json:"ops"`
	Buffer    int64    `json:"buffer"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
}

type PlanGroup struct {
	Start        int    `json:"start"`
	Len          int    `json:"len"`
	Fused        bool   `json:"fused"`
	MemoryAccess int64  `json:"memory_access"`
	Pattern      string `json:"pattern,omitempty"`
}

type PlanDecision struct {
	Pair      int   `json:"pair"`
	SameNRA   bool  `json:"same_nra"`
	Fuse      bool  `json:"fuse"`
	UnfusedMA int64 `json:"unfused_ma"`
	FusedMA   int64 `json:"fused_ma"`
	Gain      int64 `json:"gain"`
}

type PlanResponse struct {
	Chain     string         `json:"chain"`
	Groups    []PlanGroup    `json:"groups"`
	Decisions []PlanDecision `json:"decisions"`
	TotalMA   int64          `json:"total_ma"`
	UnfusedMA int64          `json:"unfused_ma"`
	Saving    float64        `json:"saving"`
}

// SearchRequest asks /v1/search for a DAT-style search-baseline answer.
type SearchRequest struct {
	Op        OpSpec `json:"op"`
	Buffer    int64  `json:"buffer"`
	Seed      int64  `json:"seed,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	Engine    string `json:"engine,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

type SearchResponse struct {
	Method      string   `json:"method"`
	Dataflow    Dataflow `json:"dataflow"`
	Evaluations int64    `json:"evaluations"`
	CacheHits   int64    `json:"cache_hits"`
	// Degraded marks a principle-based fallback answer produced when the
	// scan could not finish inside its deadline budget (or failed
	// internally); it is still feasible and never worse than the principle
	// optimum, but carries no baseline-scan statistics.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// EvaluateRequest asks /v1/evaluate to run a named workload across platforms.
type EvaluateRequest struct {
	Model     string   `json:"model"`
	Seq       int      `json:"seq,omitempty"`
	Platforms []string `json:"platforms,omitempty"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
}

type PlatformResult struct {
	Platform     string  `json:"platform"`
	MemoryAccess int64   `json:"memory_access"`
	Cycles       int64   `json:"cycles"`
	MACs         int64   `json:"macs"`
	Utilization  float64 `json:"utilization"`
}

type EvaluateResponse struct {
	Workload string           `json:"workload"`
	Results  []PlatformResult `json:"results"`
}

// errorEnvelope mirrors the server's uniform error body.
type errorEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// APIError is a non-2xx response from the service, carrying the HTTP status
// and the machine-readable code from the uniform error envelope.
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fusecu api error: status %d code %q: %s", e.Status, e.Code, e.Message)
}
