// Fabric simulation: execute a fused attention-shaped computation on the
// cycle-stepped FuseCU fabric simulator with both fused mappings (Fig. 5)
// and verify each against the reference math — the role the paper's Chisel
// RTL plays.
package main

import (
	"fmt"
	"log"
	"math"

	"fusecu"
)

func main() {
	// A small attention head: Q(24×8) × Kᵀ(8×24) = S(24×24), then
	// softmax-like scaling, then S × V(24×8) = O(24×8), on 8×8 CUs.
	fabric, err := fusecu.NewFabric(8)
	if err != nil {
		log.Fatal(err)
	}
	q := fusecu.NewMatrix(24, 8).Seq(1)
	kT := fusecu.NewMatrix(8, 24).Seq(2)
	v := fusecu.NewMatrix(24, 8).Seq(3)
	scale := func(x float64) float64 { return x / 8 } // the in-array elementwise unit

	s, err := fusecu.MatMulReference(q, kT)
	if err != nil {
		log.Fatal(err)
	}
	for i := range s.Data {
		s.Data[i] = scale(s.Data[i])
	}
	want, err := fusecu.MatMulReference(s, v)
	if err != nil {
		log.Fatal(err)
	}

	tile, err := fabric.TileFused(q, kT, v, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tile fusion:   max |Δ| vs reference = %g, pipelined %d cycles\n",
		maxDiff(tile, want), fabric.Cycles())

	col, err := fabric.ColumnFused(q, kT, v, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("column fusion: max |Δ| vs reference = %g, pipelined %d cycles total\n",
		maxDiff(col, want), fabric.Cycles())
	fmt.Printf("CU busy time:  %d cycles (pipelining overlaps producer and consumer)\n",
		fabric.BusyCycles())

	fmt.Println("\nThe intermediate S never left the PE arrays: tile fusion consumed it")
	fmt.Println("straight out of the accumulators; column fusion streamed its columns")
	fmt.Println("from the producer CU into the consumer CU over the resize interconnect.")
}

func maxDiff(a, b *fusecu.Matrix) float64 {
	max := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}
