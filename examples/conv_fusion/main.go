// Convolution extension: the paper notes that Principles 1–4 "can be
// extended to other tensor operators". This example lowers a ResNet-style
// 3×3 convolution and a separable conv→pointwise block via im2col and runs
// the same principle machinery on them.
package main

import (
	"fmt"
	"log"

	"fusecu"
)

func main() {
	const buffer = 256 * 1024

	// A ResNet stage-3 convolution: 28×28×128 ⊛ 3×3×128×128.
	c := fusecu.Conv2D{Name: "res3x3", N: 1, H: 28, W: 28, C: 128,
		KH: 3, KW: 3, F: 128, PadH: 1, PadW: 1}
	r, err := fusecu.OptimizeConv(c, buffer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("convolution:  %v\n", c)
	fmt.Printf("lowered:      %v (replication ×%.2f)\n", r.Lowered, c.ReplicationFactor())
	fmt.Printf("dataflow:     %v (%v)\n", r.Intra.Dataflow, r.Intra.Access.NRA)
	fmt.Printf("lowered MA:   %d elements (lowered ideal %d)\n", r.LoweredMA, r.Lowered.IdealMA())
	fmt.Printf("direct bound: %d elements after removing im2col replication\n\n", r.DirectInputBound)

	// A separable block: 3×3 depthwise-ish conv followed by a 1×1
	// pointwise conv. The pointwise consumer's im2col is the producer's
	// output verbatim, so the pair lowers to a fusable chain and
	// Principle 4 applies unchanged.
	first := fusecu.Conv2D{Name: "conv3x3", N: 1, H: 28, W: 28, C: 64,
		KH: 3, KW: 3, F: 128, PadH: 1, PadW: 1}
	second := fusecu.Conv2D{Name: "pointwise", N: 1, H: 28, W: 28, C: 128,
		KH: 1, KW: 1, F: 256}
	chain, err := fusecu.LowerConvChain("separable-block", first, second)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := fusecu.PlanChain(chain, buffer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conv chain:   %v\n", chain)
	for _, d := range plan.Decisions {
		verdict := "keep unfused"
		if d.Fuse {
			verdict = fmt.Sprintf("fuse via %s (gain %d elements)", d.Fused.Dataflow.Pattern, d.Gain)
		}
		fmt.Printf("principle 4:  NRA %v ⨝ %v → %s\n", d.FirstNRA, d.SecondNRA, verdict)
	}
	fmt.Printf("chain MA:     %d (unfused %d, saving %.1f%%)\n",
		plan.TotalMA, plan.UnfusedMA, 100*plan.Saving())
}
