// Attention fusion: apply Principle 4 to the QKᵀ → softmax → SV chain of
// every Table II model and show which pairs fuse, with what pattern, and how
// much intermediate traffic disappears — the workload that motivates the
// paper's introduction (Fig. 1).
package main

import (
	"fmt"
	"log"

	"fusecu"
)

func main() {
	const buffer = 1024 * 1024 // 1 Mi elements, the evaluation default

	fmt.Printf("%-12s %-10s %-10s %-12s %12s %12s %8s\n",
		"model", "NRA(QKt)", "NRA(SV)", "pattern", "unfused MA", "fused MA", "saving")
	for _, cfg := range fusecu.Models() {
		dh := cfg.Hidden / cfg.Heads
		chain, err := fusecu.NewChain("attention",
			fusecu.MatMul{Name: "QKt", M: cfg.SeqLen, K: dh, L: cfg.SeqLen},
			fusecu.MatMul{Name: "SV", M: cfg.SeqLen, K: cfg.SeqLen, L: dh},
		)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := chain.WithElementwise(0, "softmax"); err != nil {
			log.Fatal(err)
		}

		plan, err := fusecu.PlanChain(chain, buffer)
		if err != nil {
			log.Fatal(err)
		}
		d := plan.Decisions[0]
		pattern := "—"
		if d.Fuse {
			pattern = d.Fused.Dataflow.Pattern.String()
		}
		fmt.Printf("%-12s %-10v %-10v %-12s %12d %12d %7.1f%%\n",
			cfg.Name, d.FirstNRA, d.SecondNRA, pattern,
			plan.UnfusedMA, plan.TotalMA, 100*plan.Saving())
	}

	fmt.Println("\nPrinciple 4: both operators share an NRA class, so fusing them")
	fmt.Println("preserves each one's optimal tiling while the seq×seq intermediate")
	fmt.Println("never touches memory.")
}
