// Memory hierarchy: the paper re-applies its buffer regimes at the register
// level (§IV-B); this example makes the recursion explicit for a two-level
// buffer system and shows the energy consequence of the communication lower
// bound — plus the register-level 2N untiled-dimension bound that sizes
// FuseCU's resize interconnect.
package main

import (
	"fmt"
	"log"

	"fusecu"
)

func main() {
	mm := fusecu.MatMul{Name: "bert-proj", M: 1024, K: 768, L: 768}
	lv := fusecu.MemoryLevels{Global: 512 * 1024, Local: 16 * 1024}

	greedy, err := fusecu.OptimizeHierarchy(mm, lv)
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := fusecu.OptimizeHierarchyEnergy(mm, lv)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("operator: %v, global %d / local %d elements\n\n", mm, lv.Global, lv.Local)
	show := func(name string, r fusecu.HierarchyResult) {
		e := fusecu.EstimateMovementEnergy(r)
		fmt.Printf("%s:\n", name)
		fmt.Printf("  outer (DRAM↔global):  %v\n", r.Outer.Dataflow)
		fmt.Printf("  inner (global↔local): %v\n", r.Inner.Dataflow)
		fmt.Printf("  DRAM traffic:   %12d elements → %8.1f µJ\n", r.DRAMTraffic, e.DRAMpJ/1e6)
		fmt.Printf("  global traffic: %12d elements (lower bound %d) → %8.1f µJ\n",
			r.GlobalComposed, r.GlobalLower, e.GlobalpJ/1e6)
		fmt.Printf("  total movement energy: %.1f µJ\n\n", e.TotalpJ/1e6)
	}
	show("DRAM-greedy outer dataflow", greedy)
	show("energy-tuned outer dataflow", tuned)

	// The §IV-B register-level bound.
	const n = 128
	fmt.Printf("register level (N=%d): untiled dimensions pay off only below 2N = %d\n",
		n, fusecu.UntiledDimBound(n))
	qkt := fusecu.MatMul{Name: "QKt", M: 4096, K: 64, L: 4096}
	fmt.Printf("  %v: untiling optimal at registers? %v (Dmin = %d)\n",
		qkt, fusecu.UntilingOptimalAtRegisters(qkt, n), qkt.MinDim())
	big := fusecu.MatMul{Name: "proj", M: 4096, K: 4096, L: 4096}
	fmt.Printf("  %v: untiling optimal at registers? %v (Dmin = %d)\n",
		big, fusecu.UntilingOptimalAtRegisters(big, n), big.MinDim())
}
