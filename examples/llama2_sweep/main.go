// LLaMA2 sequence sweep: evaluate the LLaMA2 layer on the TPUv4i baseline
// and on FuseCU across sequence lengths 256–16K (the Fig. 11 experiment),
// showing the fusion benefit growing with the quadratic attention
// intermediate.
package main

import (
	"fmt"
	"log"

	"fusecu"
)

func main() {
	tpu, err := fusecu.PlatformByName("TPUv4i")
	if err != nil {
		log.Fatal(err)
	}
	fcu, err := fusecu.PlatformByName("FuseCU")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %16s %16s %10s %10s %10s\n",
		"seq", "TPUv4i MA", "FuseCU MA", "MA ratio", "TPU util", "FuseCU util")
	for _, seq := range []int{256, 512, 1024, 2048, 4096, 8192, 16384} {
		w, err := fusecu.LLaMA2WithSeq(seq).Build()
		if err != nil {
			log.Fatal(err)
		}
		rt, err := tpu.EvaluateWorkload(w)
		if err != nil {
			log.Fatal(err)
		}
		rf, err := fcu.EvaluateWorkload(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %16d %16d %9.3f %9.3f %9.3f\n",
			seq, rt.MA, rf.MA, float64(rf.MA)/float64(rt.MA), rt.Utilization, rf.Utilization)
	}

	fmt.Println("\nThe eliminated attention intermediate is seq×seq, so FuseCU's")
	fmt.Println("relative memory traffic keeps falling as the sequence grows —")
	fmt.Println("the robustness Fig. 11 reports for long sequences.")
}
