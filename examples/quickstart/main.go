// Quickstart: one-shot, principle-based dataflow optimization for a single
// matrix multiplication — the paper's worked BERT example (§III-A4).
package main

import (
	"fmt"
	"log"

	"fusecu"
)

func main() {
	// A[1024,768] × B[768,768] = C[1024,768], the BERT QKV projection shape,
	// with a 512 Ki-element on-chip buffer.
	mm := fusecu.MatMul{Name: "bert-proj", M: 1024, K: 768, L: 768}
	const buffer = 512 * 1024

	res, err := fusecu.Optimize(mm, buffer)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("operator:     %v\n", mm)
	fmt.Printf("buffer:       %d elements → %s regime\n", buffer, res.Regime)
	fmt.Printf("dataflow:     %v\n", res.Dataflow)
	fmt.Printf("NRA class:    %v (constructed by Principle %d)\n", res.Access.NRA, res.Principle)
	fmt.Printf("memory:       %d elements (ideal lower bound %d)\n", res.Access.Total, mm.IdealMA())
	fmt.Printf("per tensor:   A=%d  B=%d  C=%d\n",
		res.Access.PerTensor[0], res.Access.PerTensor[1], res.Access.PerTensor[2])

	// Cross-check the one-shot result against the DAT-style searcher: the
	// principles match the searched optimum without exploring anything.
	sr, err := fusecu.SearchOptimize(mm, buffer, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsearch found: %d elements after %d cost evaluations (%s)\n",
		sr.Access.Total, sr.Evaluations, sr.Method)
	fmt.Printf("principles:   %d elements with a constant candidate set\n", res.Access.Total)
}
