// Package fusecu is the public API of the FuseCU reproduction: principle-
// based dataflow optimization for communication lower bounds in operator-
// fused tensor accelerators (Xu et al., DAC 2025).
//
// The package re-exports the library's primary entry points:
//
//   - Optimize applies Principles 1–3 to produce the memory-access-optimal
//     tiling and scheduling for one matrix multiplication, one-shot.
//   - PlanChain adds Principle 4: it decides which producer/consumer pairs
//     of a chain to fuse and returns the fused dataflow plan.
//   - Platforms and EvaluateWorkload reproduce the paper's cross-platform
//     evaluation (TPUv4i, Gemmini, Planaria, UnfCU, FuseCU).
//   - NewFabric exposes the cycle-stepped functional simulator of the
//     FuseCU compute fabric (XS PEs, tile fusion, column fusion).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package fusecu

import (
	"context"

	"fusecu/internal/arch"
	"fusecu/internal/core"
	"fusecu/internal/dataflow"
	"fusecu/internal/errs"
	"fusecu/internal/fusion"
	"fusecu/internal/model"
	"fusecu/internal/op"
	"fusecu/internal/search"
	"fusecu/internal/sim"
	"fusecu/internal/tensor"
)

// Error sentinels. Every error the library returns wraps exactly one of
// these, so callers classify failures with errors.Is regardless of which
// subsystem produced them.
var (
	// ErrInvalidOperator: an operator has non-positive dimensions.
	ErrInvalidOperator = errs.ErrInvalidOperator
	// ErrInvalidChain: a chain is empty or its shapes do not compose.
	ErrInvalidChain = errs.ErrInvalidChain
	// ErrInvalidDataflow: a tiling or loop order is malformed.
	ErrInvalidDataflow = errs.ErrInvalidDataflow
	// ErrBufferTooSmall: the buffer cannot hold even 1×1 tiles.
	ErrBufferTooSmall = errs.ErrBufferTooSmall
	// ErrInfeasible: no dataflow satisfies the constraints.
	ErrInfeasible = errs.ErrInfeasible
	// ErrUnknownPlatform: a platform name is not in Table III.
	ErrUnknownPlatform = errs.ErrUnknownPlatform
	// ErrUnknownModel: a model name is not in Table II.
	ErrUnknownModel = errs.ErrUnknownModel
)

// Operator and workload types.
type (
	// MatMul is one matrix multiplication A[M,K] × B[K,L] = C[M,L].
	MatMul = op.MatMul
	// Chain is a producer→consumer sequence of MatMuls.
	Chain = op.Chain
	// ModelConfig is a transformer's layer hyper-parameters (Table II).
	ModelConfig = model.Config
	// Workload is a built transformer layer's operator graph.
	Workload = model.Workload
)

// Dataflow types.
type (
	// Dataflow is an intra-operator tiling + scheduling decision.
	Dataflow = dataflow.Dataflow
	// Tiling holds per-dimension buffer tile sizes.
	Tiling = dataflow.Tiling
	// NRAClass is the Single-/Two-/Three-NRA taxonomy.
	NRAClass = dataflow.NRAClass
	// FusedPair is a producer/consumer pair sharing an intermediate.
	FusedPair = fusion.Pair
	// FusedDataflow is a fused tiling under one Fig. 4 pattern.
	FusedDataflow = fusion.FusedDataflow
)

// Optimization results.
type (
	// Result is the outcome of principle-based intra-operator optimization.
	Result = core.Result
	// ChainPlan is the outcome of chain-level (Principle 4) optimization.
	ChainPlan = core.ChainPlan
	// FusionDecision is one pair's Principle 4 analysis.
	FusionDecision = core.FusionDecision
	// Regime classifies buffer size against the operator (§III-A4).
	Regime = core.Regime
	// SearchResult is the DAT-style search baseline's outcome.
	SearchResult = search.Result
)

// Platform evaluation.
type (
	// Platform is one of the five evaluated architectures.
	Platform = arch.Platform
	// PlatformResult is a platform's evaluation on one workload.
	PlatformResult = arch.Result
)

// Simulation.
type (
	// Fabric is the cycle-stepped FuseCU compute fabric simulator.
	Fabric = sim.Fabric
	// Matrix is the dense matrix type the simulator operates on.
	Matrix = tensor.Matrix
)

// NRA classes.
const (
	SingleNRA = dataflow.SingleNRA
	TwoNRA    = dataflow.TwoNRA
	ThreeNRA  = dataflow.ThreeNRA
)

// Buffer regimes.
const (
	RegimeTiny   = core.RegimeTiny
	RegimeSmall  = core.RegimeSmall
	RegimeMedium = core.RegimeMedium
	RegimeLarge  = core.RegimeLarge
)

// Optimize applies Principles 1–3 to mm under a buffer of bufferSize
// elements and returns the communication-optimal dataflow, one-shot.
func Optimize(mm MatMul, bufferSize int64) (Result, error) {
	return core.Optimize(mm, bufferSize)
}

// Classify returns the buffer regime of bufferSize for mm.
func Classify(mm MatMul, bufferSize int64) Regime {
	return core.Classify(mm, bufferSize)
}

// NewChain builds and validates a producer→consumer chain.
func NewChain(name string, ops ...MatMul) (*Chain, error) {
	return op.NewChain(name, ops...)
}

// PlanChain applies Principles 1–4 to a chain: intra-operator optima plus
// profitable fusion pairing.
func PlanChain(c *Chain, bufferSize int64) (ChainPlan, error) {
	return core.PlanChain(c, bufferSize)
}

// DecideFusion applies Principle 4 to one producer/consumer pair.
func DecideFusion(pair FusedPair, bufferSize int64) (FusionDecision, error) {
	return core.DecideFusion(pair, bufferSize)
}

// NewFusedPair validates a producer/consumer pair.
func NewFusedPair(first, second MatMul) (FusedPair, error) {
	return fusion.NewPair(first, second)
}

// SearchOptimize runs the DAT-style search baseline over the same dataflow
// space (exhaustive on small lattices, genetic otherwise).
func SearchOptimize(mm MatMul, bufferSize int64, seed int64) (SearchResult, error) {
	return search.Optimize(mm, bufferSize, search.GeneticOptions{Seed: seed})
}

// SearchOptimizeCtx is SearchOptimize with a parallel worker pool and
// cooperative cancellation: the scan stops promptly when ctx is done and
// returns ctx's error. workers ≤ 0 selects GOMAXPROCS; the result is
// bit-identical to SearchOptimize for any worker count.
func SearchOptimizeCtx(ctx context.Context, mm MatMul, bufferSize int64, seed int64, workers int) (SearchResult, error) {
	return search.OptimizeParallelCtx(ctx, mm, bufferSize, search.GeneticOptions{Seed: seed}, workers, nil)
}

// Platforms returns the five evaluation platforms in the paper's order.
func Platforms() []Platform { return arch.All() }

// PlatformByName looks a platform up by its Table III name.
func PlatformByName(name string) (Platform, error) { return arch.ByName(name) }

// Models returns the seven Table II transformer configurations.
func Models() []ModelConfig { return model.TableII() }

// ModelByName looks a Table II model up by name.
func ModelByName(name string) (ModelConfig, error) { return model.ByName(name) }

// LLaMA2WithSeq returns the LLaMA2 configuration at a sequence length, the
// Fig. 11 sweep knob.
func LLaMA2WithSeq(seq int) ModelConfig { return model.LLaMA2WithSeq(seq) }

// NewFabric builds a four-CU FuseCU fabric simulator with N×N compute
// units.
func NewFabric(n int) (*Fabric, error) { return sim.NewFabric(n) }

// NewMatrix allocates a zeroed rows×cols matrix for the simulator.
func NewMatrix(rows, cols int) *Matrix { return tensor.New(rows, cols) }

// MatMulReference computes A×B with the naive reference used to validate
// every simulated mapping.
func MatMulReference(a, b *Matrix) (*Matrix, error) { return tensor.MatMul(a, b) }
