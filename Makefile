GO ?= go

.PHONY: build vet fusecu-vet test test-race test-checks bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## fusecu-vet runs the repo's own invariant analyzers (internal/analysis).
fusecu-vet:
	$(GO) run ./cmd/fusecu-vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

## test-checks builds with the fusecuchecks tag so internal/invariant
## assertions (checked multiplies, MA lower-bound checks) panic on violation.
test-checks:
	$(GO) test -tags=fusecuchecks ./...

bench:
	$(GO) test -bench=. -benchmem ./...

## check is the full CI gate.
check: build vet fusecu-vet test test-race test-checks
