GO ?= go

.PHONY: build fmt-check vet fusecu-vet vet-fix-list test test-race test-race-service serve-load-race test-checks fuzz-smoke bench bench-serve bench-full bench-compare bench-baseline check

build:
	$(GO) build ./...

## fmt-check fails (listing the offenders) when any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

## fusecu-vet runs the repo's own invariant analyzers (internal/analysis)
## over the default and the fusecuchecks-tagged file sets. Findings are
## captured in fusecu-vet.txt (uploaded as a CI artifact) and always echoed
## in full before a non-zero exit aborts the build.
fusecu-vet:
	@$(GO) run ./cmd/fusecu-vet ./... > fusecu-vet.txt 2>&1; s=$$?; \
	$(GO) run ./cmd/fusecu-vet -tags fusecuchecks ./... >> fusecu-vet.txt 2>&1 || s=$$?; \
	cat fusecu-vet.txt; \
	if [ $$s -eq 0 ]; then echo "fusecu-vet: clean"; fi; \
	exit $$s

## vet-fix-list renders current findings grouped by analyzer (largest bucket
## first) for triage sweeps. Reporting only: always exits 0.
vet-fix-list:
	$(GO) run ./cmd/fusecu-vet -group ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

## test-race-service is the focused race pass over the HTTP service stack
## (admission gate, shared EvalCache, metrics registry, graceful shutdown).
test-race-service:
	$(GO) test -race ./internal/service ./internal/metrics ./cmd/fusecu-serve

## serve-load-race runs the in-process serve-load smoke under the race
## detector: concurrent /v1/search waves against the shared EvalCache and
## admission gate, the configuration most likely to surface a data race.
serve-load-race:
	$(GO) run -race ./cmd/fusecu-bench -serve-load -serve-out BENCH_serve_race.json

## test-checks builds with the fusecuchecks tag so internal/invariant
## assertions (checked multiplies, MA lower-bound checks) panic on violation.
test-checks:
	$(GO) test -tags=fusecuchecks ./...

## fuzz-smoke runs each native fuzz target briefly: the request-decode
## strictness invariants and the tiling-constructor contracts. Failing
## inputs are minimized into testdata/fuzz corpora for regression.
fuzz-smoke:
	$(GO) test -fuzz='^FuzzDecodeOptimizeRequest$$' -fuzztime=20s -run='^$$' ./internal/service
	$(GO) test -fuzz='^FuzzDecodeSearchRequest$$' -fuzztime=20s -run='^$$' ./internal/service
	$(GO) test -fuzz='^FuzzNewTiling$$' -fuzztime=20s -run='^$$' ./internal/dataflow

## bench is the CI smoke pass: every benchmark runs once, then fusecu-bench
## times the Fig. 9 search engines against the frozen reference and writes
## BENCH_search.json (verifying all engines return identical results).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1x ./...
	$(GO) run ./cmd/fusecu-bench -out BENCH_search.json

## bench-serve load-tests an in-process fusecu-serve under concurrent
## /v1/search waves and writes BENCH_serve.json (throughput, latency
## quantiles, cache hit-rate, and bit-identity against the reference engine).
bench-serve:
	$(GO) run ./cmd/fusecu-bench -serve-load -serve-out BENCH_serve.json

## bench-compare reruns the search-layer microbenchmarks and diffs the
## medians against the committed baseline with the stdlib-only
## fusecu-benchstat (CI has no network for x/perf's benchstat). The target
## is blocking: it fails when any benchmark's median runs more than
## BENCH_GATE× the baseline, or when a baseline benchmark vanished. The
## tolerance absorbs shared-runner noise (per-benchmark spikes up to ~1.7×
## observed on loaded single-core runners) while still catching the class
## of regression this gate exists for — engines quietly sliding back to
## per-candidate dispatch, which measures 2× and up on these benchmarks.
## Set BENCH_GATE=0 for the old advisory behaviour.
BENCH_BASELINE ?= bench/baseline_search.txt
BENCH_GATE ?= 1.75
bench-compare:
	mkdir -p bench
	$(GO) test -run='^$$' -bench=. -benchmem -count=5 -benchtime=0.1s ./internal/search > bench/current_search.txt
	@$(GO) run ./cmd/fusecu-benchstat -gate $(BENCH_GATE) $(BENCH_BASELINE) bench/current_search.txt > bench/compare_search.txt 2>&1; s=$$?; \
	cat bench/compare_search.txt; \
	exit $$s

## bench-baseline refreshes the committed baseline bench-compare diffs
## against. Run it on a quiet machine and commit the result.
bench-baseline:
	mkdir -p bench
	$(GO) test -run='^$$' -bench=. -benchmem -count=5 -benchtime=0.1s ./internal/search > $(BENCH_BASELINE)

## bench-full is the measurement pass: statistically meaningful benchmark
## iterations plus the paper's full 32KiB-32MiB Fig. 9 sweep.
bench-full:
	$(GO) test -run='^$$' -bench=. -benchmem ./...
	$(GO) run ./cmd/fusecu-bench -full -out BENCH_search.json

## check is the full CI gate. Ordering matters: the cheap formatting and
## lint gates run first so their findings print before any long test phase,
## and fusecu-vet always echoes its full finding list before aborting.
check: fmt-check build vet fusecu-vet test test-race test-race-service test-checks fuzz-smoke bench bench-compare bench-serve
