GO ?= go

.PHONY: build vet fusecu-vet test test-race test-checks bench bench-full check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## fusecu-vet runs the repo's own invariant analyzers (internal/analysis).
fusecu-vet:
	$(GO) run ./cmd/fusecu-vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

## test-checks builds with the fusecuchecks tag so internal/invariant
## assertions (checked multiplies, MA lower-bound checks) panic on violation.
test-checks:
	$(GO) test -tags=fusecuchecks ./...

## bench is the CI smoke pass: every benchmark runs once, then fusecu-bench
## times the Fig. 9 search engines against the frozen reference and writes
## BENCH_search.json (verifying all engines return identical results).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1x ./...
	$(GO) run ./cmd/fusecu-bench -out BENCH_search.json

## bench-full is the measurement pass: statistically meaningful benchmark
## iterations plus the paper's full 32KiB-32MiB Fig. 9 sweep.
bench-full:
	$(GO) test -run='^$$' -bench=. -benchmem ./...
	$(GO) run ./cmd/fusecu-bench -full -out BENCH_search.json

## check is the full CI gate.
check: build vet fusecu-vet test test-race test-checks bench
