GO ?= go

.PHONY: build vet fusecu-vet test test-race test-race-service test-checks fuzz-smoke bench bench-serve bench-full bench-compare bench-baseline check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## fusecu-vet runs the repo's own invariant analyzers (internal/analysis).
fusecu-vet:
	$(GO) run ./cmd/fusecu-vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

## test-race-service is the focused race pass over the HTTP service stack
## (admission gate, shared EvalCache, metrics registry, graceful shutdown).
test-race-service:
	$(GO) test -race ./internal/service ./internal/metrics ./cmd/fusecu-serve

## test-checks builds with the fusecuchecks tag so internal/invariant
## assertions (checked multiplies, MA lower-bound checks) panic on violation.
test-checks:
	$(GO) test -tags=fusecuchecks ./...

## fuzz-smoke runs each native fuzz target briefly: the request-decode
## strictness invariants and the tiling-constructor contracts. Failing
## inputs are minimized into testdata/fuzz corpora for regression.
fuzz-smoke:
	$(GO) test -fuzz='^FuzzDecodeOptimizeRequest$$' -fuzztime=20s -run='^$$' ./internal/service
	$(GO) test -fuzz='^FuzzDecodeSearchRequest$$' -fuzztime=20s -run='^$$' ./internal/service
	$(GO) test -fuzz='^FuzzNewTiling$$' -fuzztime=20s -run='^$$' ./internal/dataflow

## bench is the CI smoke pass: every benchmark runs once, then fusecu-bench
## times the Fig. 9 search engines against the frozen reference and writes
## BENCH_search.json (verifying all engines return identical results).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1x ./...
	$(GO) run ./cmd/fusecu-bench -out BENCH_search.json

## bench-serve load-tests an in-process fusecu-serve under concurrent
## /v1/search waves and writes BENCH_serve.json (throughput, latency
## quantiles, cache hit-rate, and bit-identity against the reference engine).
bench-serve:
	$(GO) run ./cmd/fusecu-bench -serve-load -serve-out BENCH_serve.json

## bench-compare reruns the search-layer microbenchmarks and diffs the
## medians against the committed baseline with the stdlib-only
## fusecu-benchstat (CI has no network for x/perf's benchstat). The target
## never fails on a slowdown — the comparison is advisory and CI uploads it
## as an artifact for the reviewer.
BENCH_BASELINE ?= bench/baseline_search.txt
bench-compare:
	mkdir -p bench
	$(GO) test -run='^$$' -bench=. -benchmem -count=5 -benchtime=0.1s ./internal/search > bench/current_search.txt
	$(GO) run ./cmd/fusecu-benchstat $(BENCH_BASELINE) bench/current_search.txt | tee bench/compare_search.txt

## bench-baseline refreshes the committed baseline bench-compare diffs
## against. Run it on a quiet machine and commit the result.
bench-baseline:
	mkdir -p bench
	$(GO) test -run='^$$' -bench=. -benchmem -count=5 -benchtime=0.1s ./internal/search > $(BENCH_BASELINE)

## bench-full is the measurement pass: statistically meaningful benchmark
## iterations plus the paper's full 32KiB-32MiB Fig. 9 sweep.
bench-full:
	$(GO) test -run='^$$' -bench=. -benchmem ./...
	$(GO) run ./cmd/fusecu-bench -full -out BENCH_search.json

## check is the full CI gate.
check: build vet fusecu-vet test test-race test-race-service test-checks fuzz-smoke bench bench-serve
