package fusecu

// Extensions beyond the paper's headline scope, each grounded in a claim
// the paper makes in passing: convolution lowering ("Principle 1-4 can be
// extended to other tensor operators"), recursive multi-level application
// (§IV-B applies the regimes at the register level), decode-phase GEMV
// workloads (the Dmin = 1 extreme of the regime taxonomy), and chain-level
// search (the full DAT role, for validation).

import (
	"fusecu/internal/conv"
	"fusecu/internal/core"
	"fusecu/internal/hierarchy"
	"fusecu/internal/model"
	"fusecu/internal/op"
	"fusecu/internal/rtl"
	"fusecu/internal/sched"
	"fusecu/internal/search"
)

// Convolution.
type (
	// Conv2D is a 2-D convolution in NHWC layout.
	Conv2D = conv.Conv2D
	// ConvResult is a principle-optimized convolution dataflow.
	ConvResult = conv.Result
)

// OptimizeConv lowers c via im2col and applies Principles 1–3.
func OptimizeConv(c Conv2D, bufferSize int64) (ConvResult, error) {
	return conv.Optimize(c, bufferSize)
}

// LowerConvChain lowers a convolution followed by a pointwise convolution
// into a fusable chain (Principle 4 then applies unchanged).
func LowerConvChain(name string, first, second Conv2D) (*Chain, error) {
	return conv.LowerChain(name, first, second)
}

// Memory hierarchy.
type (
	// MemoryLevels is a two-level on-chip capacity description.
	MemoryLevels = hierarchy.Levels
	// HierarchyResult is a two-level dataflow decision.
	HierarchyResult = hierarchy.Result
	// MovementEnergy is a data-movement energy estimate.
	MovementEnergy = hierarchy.Energy
)

// OptimizeHierarchy applies the principles recursively across two memory
// levels, minimizing DRAM traffic.
func OptimizeHierarchy(mm MatMul, lv MemoryLevels) (HierarchyResult, error) {
	return hierarchy.Optimize(mm, lv)
}

// OptimizeHierarchyEnergy chooses the outer dataflow minimizing total
// movement energy instead.
func OptimizeHierarchyEnergy(mm MatMul, lv MemoryLevels) (HierarchyResult, error) {
	return hierarchy.OptimizeEnergy(mm, lv)
}

// EstimateMovementEnergy converts a two-level result into picojoules.
func EstimateMovementEnergy(r HierarchyResult) MovementEnergy {
	return hierarchy.EstimateEnergy(r)
}

// Register-level analysis (§IV-B).

// UntiledDimBound returns 2N, the widest untiled dimension an N×N array
// must support.
func UntiledDimBound(arrayDim int) int { return core.UntiledDimBound(arrayDim) }

// UntilingOptimalAtRegisters reports whether register-level untiling is
// optimal for mm on an N×N array (Dmin < 2N).
func UntilingOptimalAtRegisters(mm MatMul, arrayDim int) bool {
	return core.UntilingOptimalAtRegisters(mm, arrayDim)
}

// Decode phase.
type (
	// DecodeConfig is an autoregressive-generation workload description.
	DecodeConfig = model.DecodeConfig
)

// Chain-level search baseline.
type (
	// ChainSearchResult is the search-based inter-operator outcome.
	ChainSearchResult = search.ChainResult
)

// SearchChain runs the search-based inter-operator optimizer (the full DAT
// role) over a chain.
func SearchChain(c *Chain, bufferSize int64, seed int64) (ChainSearchResult, error) {
	return search.OptimizeChain(c, bufferSize, search.GeneticOptions{Seed: seed})
}

// Model serialization.

// MarshalModels serializes model configurations to JSON.
func MarshalModels(cfgs []ModelConfig) ([]byte, error) { return model.MarshalConfigs(cfgs) }

// UnmarshalModels parses and validates model configurations from JSON.
func UnmarshalModels(data []byte) ([]ModelConfig, error) { return model.UnmarshalConfigs(data) }

// NewMatMulChainFromOps builds a chain from raw operators (the facade's
// escape hatch for custom workloads).
func NewMatMulChainFromOps(name string, ops []MatMul) (*Chain, error) {
	return op.NewChain(name, ops...)
}

// RTL emission.
type (
	// RTLConfig parameterizes the emitted Verilog design.
	RTLConfig = rtl.Config
)

// EmitRTL returns the structural Verilog for the FuseCU datapath (XS PE,
// compute unit, four-CU fabric) — the stand-in for the paper's Chisel
// artifact.
func EmitRTL(c RTLConfig) (string, error) { return rtl.Emit(c) }

// Scheduling.
type (
	// Timeline is an instance-level schedule of a workload on a fabric.
	Timeline = sched.Timeline
)

// ScheduleWorkload list-schedules a workload's chain instances across a
// platform's compute units — the discrete-event counterpart to
// EvaluateWorkload's aggregate roofline.
func ScheduleWorkload(p Platform, w *Workload) (Timeline, error) {
	return p.ScheduleWorkload(w)
}
