// Package bound provides analytical communication lower bounds for matrix
// multiplication under a limited buffer — the yardstick behind the paper's
// title claim. Two bounds are exposed:
//
//   - Compulsory: every tensor element must cross the buffer boundary at
//     least once (the unbounded-buffer minimum, size(A)+size(B)+size(C)).
//   - HongKung: the red-blue pebble bound specialized to matmul. With a
//     buffer of S elements, any execution window that performs F multiply-
//     accumulates can touch at most O(√S) reuse per element, giving
//     traffic ≥ 2·MKL/√S − S (Hong & Kung 1981; constant per
//     Smith & van de Geijn 2017). The bound is only informative when the
//     buffer is small relative to the tensors.
//
// The tests show the principle-optimal dataflow always sits between
// LowerBound and a small constant multiple of it in the small-buffer
// regime — the sense in which the principles achieve the communication
// lower bound.
package bound

import (
	"math"

	"fusecu/internal/op"
)

// Compulsory is the unbounded-buffer minimum: each tensor moves once.
func Compulsory(mm op.MatMul) int64 {
	return mm.IdealMA()
}

// HongKung returns the red-blue pebble lower bound 2·MKL/√S − S for a
// buffer of bufferSize elements (0 when the expression goes negative, i.e.
// the buffer is large enough that the bound says nothing).
func HongKung(mm op.MatMul, bufferSize int64) int64 {
	if bufferSize <= 0 {
		return 0
	}
	v := 2*float64(mm.MACs())/math.Sqrt(float64(bufferSize)) - float64(bufferSize)
	if v <= 0 {
		return 0
	}
	return int64(v)
}

// LowerBound returns the tighter of the two bounds — the floor no dataflow
// can beat.
func LowerBound(mm op.MatMul, bufferSize int64) int64 {
	hk := HongKung(mm, bufferSize)
	if c := Compulsory(mm); c > hk {
		return c
	}
	return hk
}

// Ratio returns achieved / LowerBound, the optimality gap of a measured
// traffic figure (∞ is impossible since LowerBound ≥ Compulsory > 0).
func Ratio(mm op.MatMul, bufferSize, achieved int64) float64 {
	return float64(achieved) / float64(LowerBound(mm, bufferSize))
}
