package bound

import (
	"math/rand"
	"testing"

	"fusecu/internal/core"
	"fusecu/internal/op"
)

func TestCompulsory(t *testing.T) {
	mm := op.MatMul{M: 4, K: 5, L: 6}
	if Compulsory(mm) != 4*5+5*6+4*6 {
		t.Fatalf("Compulsory = %d", Compulsory(mm))
	}
}

func TestHongKungShrinksWithBuffer(t *testing.T) {
	mm := op.MatMul{M: 1024, K: 1024, L: 1024}
	prev := int64(1) << 62
	for bs := int64(64); bs <= 1<<20; bs *= 4 {
		hk := HongKung(mm, bs)
		if hk >= prev {
			t.Fatalf("BS=%d: bound %d did not shrink (prev %d)", bs, hk, prev)
		}
		prev = hk
	}
	if HongKung(mm, 0) != 0 {
		t.Fatal("degenerate buffer should give 0")
	}
}

func TestHongKungVanishesForHugeBuffers(t *testing.T) {
	mm := op.MatMul{M: 16, K: 16, L: 16}
	if HongKung(mm, 1<<20) != 0 {
		t.Fatal("bound should vanish when the buffer dwarfs the problem")
	}
}

func TestLowerBoundIsMax(t *testing.T) {
	mm := op.MatMul{M: 1024, K: 1024, L: 1024}
	small := int64(256)
	if LowerBound(mm, small) != HongKung(mm, small) {
		t.Fatal("Hong-Kung should dominate at tiny buffers")
	}
	huge := int64(1) << 30
	if LowerBound(mm, huge) != Compulsory(mm) {
		t.Fatal("compulsory should dominate at huge buffers")
	}
}

// The paper-title property: the principle-optimal dataflow is never below
// the lower bound and stays within a small constant of it in the
// communication-bound (tiny-buffer) regime.
func TestPrinciplesSitOnTheLowerBound(t *testing.T) {
	shapes := []op.MatMul{
		{M: 512, K: 512, L: 512},
		{M: 1024, K: 768, L: 768},
		{M: 2048, K: 256, L: 1024},
	}
	for _, mm := range shapes {
		dmin := int64(mm.MinDim())
		for _, bs := range []int64{64, 256, 1024, 4096, dmin * dmin / 8} {
			if bs < 3 {
				continue
			}
			res, err := core.Optimize(mm, bs)
			if err != nil {
				t.Fatal(err)
			}
			lb := LowerBound(mm, bs)
			if res.Access.Total < lb {
				t.Fatalf("%v BS=%d: principle MA %d below the lower bound %d — impossible", mm, bs, res.Access.Total, lb)
			}
			// In the tiny regime the principle MA ≈ 2·MKL/√BS (balanced
			// Single-NRA) versus the bound's 2·MKL/√BS − BS: ratio ≤ ~2
			// even with integer-tile effects.
			if r := Ratio(mm, bs, res.Access.Total); r > 2.5 {
				t.Errorf("%v BS=%d: optimality gap %.2f too large", mm, bs, r)
			}
		}
	}
}

func TestRatioRandomizedAboveOne(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 50; i++ {
		mm := op.MatMul{M: rng.Intn(256) + 32, K: rng.Intn(256) + 32, L: rng.Intn(256) + 32}
		bs := int64(rng.Intn(1<<14)) + 16
		res, err := core.Optimize(mm, bs)
		if err != nil {
			t.Fatal(err)
		}
		if Ratio(mm, bs, res.Access.Total) < 1 {
			t.Fatalf("%v BS=%d: achieved below the bound", mm, bs)
		}
	}
}
