package conv

import (
	"math"
	"math/rand"
	"testing"

	"fusecu/internal/core"
	"fusecu/internal/dataflow"
)

func TestValidate(t *testing.T) {
	good := Conv2D{N: 1, H: 8, W: 8, C: 3, KH: 3, KW: 3, F: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid conv rejected: %v", err)
	}
	bad := []Conv2D{
		{},
		{N: 1, H: 2, W: 2, C: 1, KH: 5, KW: 5, F: 1},           // kernel too big
		{N: 1, H: 8, W: 8, C: 3, KH: 3, KW: 3, F: 4, PadH: -1}, // negative pad
		{N: 0, H: 8, W: 8, C: 3, KH: 3, KW: 3, F: 4},           // zero batch
		{N: 1, H: 8, W: 8, C: 3, KH: 3, KW: 3, F: 0},           // zero filters
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid conv accepted: %+v", i, c)
		}
	}
}

func TestOutputShape(t *testing.T) {
	c := Conv2D{N: 2, H: 32, W: 32, C: 16, KH: 3, KW: 3, F: 32, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	if c.OutH() != 16 || c.OutW() != 16 {
		t.Fatalf("out = %d×%d, want 16×16", c.OutH(), c.OutW())
	}
	if c.MACs() != int64(2)*16*16*3*3*16*32 {
		t.Fatalf("MACs = %d", c.MACs())
	}
}

func TestLowerShapes(t *testing.T) {
	c := Conv2D{N: 2, H: 8, W: 8, C: 3, KH: 3, KW: 3, F: 4, PadH: 1, PadW: 1}
	mm := c.Lower()
	if mm.M != 2*8*8 || mm.K != 27 || mm.L != 4 {
		t.Fatalf("lowered = %v", mm)
	}
	if mm.MACs() != c.MACs() {
		t.Fatalf("lowering changed MACs: %d vs %d", mm.MACs(), c.MACs())
	}
}

func TestReplicationFactor(t *testing.T) {
	pointwise := Conv2D{N: 1, H: 8, W: 8, C: 16, KH: 1, KW: 1, F: 8}
	if rf := pointwise.ReplicationFactor(); math.Abs(rf-1) > 1e-12 {
		t.Fatalf("1×1 replication = %f", rf)
	}
	if !pointwise.Pointwise() {
		t.Fatal("1×1 conv not detected as pointwise")
	}
	k3 := Conv2D{N: 1, H: 32, W: 32, C: 16, KH: 3, KW: 3, F: 8, PadH: 1, PadW: 1}
	if rf := k3.ReplicationFactor(); rf < 8 || rf > 9 {
		t.Fatalf("3×3 same-pad replication = %f, want ≈ 9", rf)
	}
	if k3.Pointwise() {
		t.Fatal("3×3 conv detected as pointwise")
	}
}

// The central lowering property: im2col + reference matmul reproduces the
// direct seven-loop convolution exactly, across strides, padding and ragged
// shapes.
func TestLoweringMatchesDirectConvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 40; i++ {
		c := Conv2D{
			N:       rng.Intn(2) + 1,
			H:       rng.Intn(8) + 3,
			W:       rng.Intn(8) + 3,
			C:       rng.Intn(4) + 1,
			KH:      rng.Intn(3) + 1,
			KW:      rng.Intn(3) + 1,
			F:       rng.Intn(5) + 1,
			StrideH: rng.Intn(2) + 1,
			StrideW: rng.Intn(2) + 1,
			PadH:    rng.Intn(2),
			PadW:    rng.Intn(2),
		}
		if c.Validate() != nil {
			continue
		}
		x := NewTensor4(c.N, c.H, c.W, c.C).Seq(i)
		w := NewTensor4(c.KH, c.KW, c.C, c.F).Seq(i + 1)
		want, err := Reference(c, x, w)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := Execute(c, x, w)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		for j := range want.Data {
			if math.Abs(want.Data[j]-got.Data[j]) > 1e-9 {
				t.Fatalf("case %d (%v): lowering diverges at %d: %v vs %v", i, c, j, got.Data[j], want.Data[j])
			}
		}
	}
}

func TestIm2colShapeMismatch(t *testing.T) {
	c := Conv2D{N: 1, H: 4, W: 4, C: 2, KH: 2, KW: 2, F: 3}
	if _, err := Im2col(c, NewTensor4(1, 5, 4, 2)); err == nil {
		t.Fatal("mismatched input accepted")
	}
	if _, err := WeightsMatrix(c, NewTensor4(2, 2, 2, 4)); err == nil {
		t.Fatal("mismatched weights accepted")
	}
}

func TestOptimizeRegimes(t *testing.T) {
	// A ResNet-ish layer: 56×56×64 ⊛ 3×3×64×64.
	c := Conv2D{Name: "res3x3", N: 1, H: 56, W: 56, C: 64, KH: 3, KW: 3, F: 64, PadH: 1, PadW: 1}
	r, err := Optimize(c, 256*1024)
	if err != nil {
		t.Fatal(err)
	}
	if r.Lowered.M != 56*56 || r.Lowered.K != 576 || r.Lowered.L != 64 {
		t.Fatalf("lowered = %v", r.Lowered)
	}
	if r.LoweredMA < r.Lowered.IdealMA() {
		t.Fatal("lowered MA below the lowered ideal")
	}
	// The direct-conv input bound removes the im2col replication and must
	// sit strictly below the lowered traffic for a 3×3 kernel.
	if r.DirectInputBound >= r.LoweredMA {
		t.Fatalf("direct bound %d not below lowered MA %d", r.DirectInputBound, r.LoweredMA)
	}
	if r.Intra.Access.Footprint > 256*1024 {
		t.Fatal("footprint overflow")
	}
}

func TestOptimizeInvalid(t *testing.T) {
	if _, err := Optimize(Conv2D{}, 1024); err == nil {
		t.Fatal("invalid conv accepted")
	}
}

// Conv → pointwise-conv chains lower to fusable MatMul pairs; Principle 4
// then applies unchanged — the separable/bottleneck fusion case.
func TestLowerChainAndFuse(t *testing.T) {
	first := Conv2D{Name: "dw", N: 1, H: 28, W: 28, C: 32, KH: 3, KW: 3, F: 64, PadH: 1, PadW: 1}
	second := Conv2D{Name: "pw", N: 1, H: 28, W: 28, C: 64, KH: 1, KW: 1, F: 128}
	chain, err := LowerChain("sep-block", first, second)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Len() != 2 {
		t.Fatalf("chain len = %d", chain.Len())
	}
	plan, err := core.PlanChain(chain, 512*1024)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalMA > plan.UnfusedMA {
		t.Fatal("conv chain plan worse than unfused")
	}
	if len(plan.Groups) == 1 && plan.Groups[0].Fusedp() {
		// Fused: the intermediate activation never hits memory.
		if plan.Saving() <= 0 {
			t.Fatal("fused conv chain saved nothing")
		}
	}
}

func TestLowerChainRejectsNonPointwise(t *testing.T) {
	first := Conv2D{N: 1, H: 28, W: 28, C: 32, KH: 3, KW: 3, F: 64, PadH: 1, PadW: 1}
	second := Conv2D{N: 1, H: 28, W: 28, C: 64, KH: 3, KW: 3, F: 128, PadH: 1, PadW: 1}
	if _, err := LowerChain("bad", first, second); err == nil {
		t.Fatal("non-pointwise consumer accepted")
	}
}

func TestLowerChainRejectsChannelMismatch(t *testing.T) {
	first := Conv2D{N: 1, H: 28, W: 28, C: 32, KH: 3, KW: 3, F: 64, PadH: 1, PadW: 1}
	second := Conv2D{N: 1, H: 28, W: 28, C: 63, KH: 1, KW: 1, F: 128}
	if _, err := LowerChain("bad", first, second); err == nil {
		t.Fatal("channel mismatch accepted")
	}
	third := Conv2D{N: 1, H: 27, W: 28, C: 64, KH: 1, KW: 1, F: 128}
	if _, err := LowerChain("bad", first, third); err == nil {
		t.Fatal("spatial mismatch accepted")
	}
}

// The lowered conv obeys the same regime taxonomy as any matmul.
func TestConvRegimeClassification(t *testing.T) {
	c := Conv2D{N: 1, H: 56, W: 56, C: 64, KH: 3, KW: 3, F: 64, PadH: 1, PadW: 1}
	mm := c.Lower() // Dmin = L = 64
	if got := core.Classify(mm, 64*64/4); got != core.RegimeTiny {
		t.Fatalf("regime = %v", got)
	}
	if got := core.Classify(mm, 1<<22); got != core.RegimeLarge {
		t.Fatalf("regime = %v", got)
	}
	r, err := Optimize(c, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if r.Intra.Access.NRA != dataflow.ThreeNRA {
		t.Fatalf("large-buffer conv NRA = %v", r.Intra.Access.NRA)
	}
	if r.LoweredMA != r.Lowered.IdealMA() {
		t.Fatal("large-buffer conv should reach the lowered ideal")
	}
}

func TestTensor4PaddingReads(t *testing.T) {
	x := NewTensor4(1, 2, 2, 1)
	x.Set(0, 0, 0, 0, 5)
	if x.At(0, -1, 0, 0) != 0 || x.At(0, 0, 2, 0) != 0 {
		t.Fatal("out-of-range reads should be zero padding")
	}
	if x.At(0, 0, 0, 0) != 5 {
		t.Fatal("in-range read wrong")
	}
}

func TestNewTensor4Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid shape did not panic")
		}
	}()
	NewTensor4(0, 1, 1, 1)
}

func BenchmarkConvOptimize(b *testing.B) {
	c := Conv2D{N: 1, H: 56, W: 56, C: 64, KH: 3, KW: 3, F: 64, PadH: 1, PadW: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(c, 256*1024); err != nil {
			b.Fatal(err)
		}
	}
}
