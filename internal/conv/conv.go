// Package conv extends the principles to convolution, the other operator
// family the paper names (§III-B: "Principle 1-4 can be extended to other
// tensor operators, as all tensor operators can be represented as
// for-loops"). A 2-D convolution lowers exactly to a matrix multiplication
// via im2col — M = N·OH·OW output positions, K = KH·KW·C reduction, L = F
// filters — after which tiling, scheduling, fusion and mapping all reuse
// the MatMul machinery unchanged.
//
// The lowering is validated functionally: Im2col plus the reference matmul
// reproduces a direct seven-loop convolution bit for bit. The package also
// reports the im2col replication factor (each input element appears up to
// KH·KW/stride² times in the lowered A operand), which separates the
// lowered communication bound from the direct-convolution one.
package conv

import (
	"fmt"

	"fusecu/internal/core"
	"fusecu/internal/op"
	"fusecu/internal/tensor"
)

// Conv2D describes a 2-D convolution in NHWC layout with OIHW-free weights
// (KH, KW, C, F).
type Conv2D struct {
	Name string
	// Input: N batches of H×W×C.
	N, H, W, C int
	// Kernel KH×KW over C channels producing F filters.
	KH, KW, F int
	// Strides; 0 means 1.
	StrideH, StrideW int
	// Symmetric zero padding; negative is invalid.
	PadH, PadW int
}

func (c Conv2D) strideH() int {
	if c.StrideH <= 0 {
		return 1
	}
	return c.StrideH
}

func (c Conv2D) strideW() int {
	if c.StrideW <= 0 {
		return 1
	}
	return c.StrideW
}

// Validate reports shape errors, including an empty output.
func (c Conv2D) Validate() error {
	if c.N <= 0 || c.H <= 0 || c.W <= 0 || c.C <= 0 || c.KH <= 0 || c.KW <= 0 || c.F <= 0 {
		return fmt.Errorf("conv: %s has non-positive shape: %+v", c.label(), c)
	}
	if c.PadH < 0 || c.PadW < 0 {
		return fmt.Errorf("conv: %s has negative padding", c.label())
	}
	if c.OutH() <= 0 || c.OutW() <= 0 {
		return fmt.Errorf("conv: %s kernel %dx%d does not fit input %dx%d with padding %d/%d",
			c.label(), c.KH, c.KW, c.H, c.W, c.PadH, c.PadW)
	}
	return nil
}

func (c Conv2D) label() string {
	if c.Name == "" {
		return "conv"
	}
	return c.Name
}

// OutH returns the output height.
func (c Conv2D) OutH() int { return (c.H+2*c.PadH-c.KH)/c.strideH() + 1 }

// OutW returns the output width.
func (c Conv2D) OutW() int { return (c.W+2*c.PadW-c.KW)/c.strideW() + 1 }

// MACs returns the multiply-accumulate count.
func (c Conv2D) MACs() int64 {
	return int64(c.N) * int64(c.OutH()) * int64(c.OutW()) * int64(c.KH) * int64(c.KW) * int64(c.C) * int64(c.F)
}

// InputSize returns the element count of the input tensor.
func (c Conv2D) InputSize() int64 { return int64(c.N) * int64(c.H) * int64(c.W) * int64(c.C) }

// WeightSize returns the element count of the weights.
func (c Conv2D) WeightSize() int64 {
	return int64(c.KH) * int64(c.KW) * int64(c.C) * int64(c.F)
}

// OutputSize returns the element count of the output tensor.
func (c Conv2D) OutputSize() int64 {
	return int64(c.N) * int64(c.OutH()) * int64(c.OutW()) * int64(c.F)
}

// Im2colSize returns the element count of the lowered A operand
// (M×K = N·OH·OW × KH·KW·C).
func (c Conv2D) Im2colSize() int64 {
	return int64(c.N) * int64(c.OutH()) * int64(c.OutW()) * int64(c.KH) * int64(c.KW) * int64(c.C)
}

// ReplicationFactor is Im2colSize / InputSize: how many times each input
// element is duplicated by the lowering. 1.0 for 1×1 convolutions.
func (c Conv2D) ReplicationFactor() float64 {
	return float64(c.Im2colSize()) / float64(c.InputSize())
}

// Pointwise reports whether this is a 1×1 stride-1 unpadded convolution —
// the case whose lowering chains exactly with a producer convolution's
// output, enabling operator fusion across the pair.
func (c Conv2D) Pointwise() bool {
	return c.KH == 1 && c.KW == 1 && c.strideH() == 1 && c.strideW() == 1 && c.PadH == 0 && c.PadW == 0
}

// Lower returns the exactly equivalent matrix multiplication.
func (c Conv2D) Lower() op.MatMul {
	return op.MatMul{
		Name: c.label() + "-im2col",
		M:    c.N * c.OutH() * c.OutW(),
		K:    c.KH * c.KW * c.C,
		L:    c.F,
	}
}

func (c Conv2D) String() string {
	return fmt.Sprintf("%s[%dx%dx%dx%d ⊛ %dx%dx%dx%d s%d,%d p%d,%d]",
		c.label(), c.N, c.H, c.W, c.C, c.KH, c.KW, c.C, c.F, c.strideH(), c.strideW(), c.PadH, c.PadW)
}

// Result is a principle-optimized convolution dataflow.
type Result struct {
	Conv Conv2D
	// Lowered is the im2col matmul the principles ran on.
	Lowered op.MatMul
	// Intra is the lowered operator's principle-optimal dataflow.
	Intra core.Result
	// LoweredMA is the memory access of the lowered execution.
	LoweredMA int64
	// DirectInputBound adjusts the lowered A traffic by the replication
	// factor: a direct-convolution dataflow with perfect halo reuse would
	// touch at least this much input data.
	DirectInputBound int64
}

// Optimize applies Principles 1–3 to the lowered convolution.
func Optimize(c Conv2D, bufferSize int64) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	mm := c.Lower()
	intra, err := core.Optimize(mm, bufferSize)
	if err != nil {
		return Result{}, err
	}
	r := Result{
		Conv:      c,
		Lowered:   mm,
		Intra:     intra,
		LoweredMA: intra.Access.Total,
	}
	aTraffic := intra.Access.PerTensor[0]
	r.DirectInputBound = intra.Access.Total - aTraffic +
		int64(float64(aTraffic)/c.ReplicationFactor())
	return r, nil
}

// LowerChain lowers a producer convolution followed by a pointwise
// convolution into a fusable MatMul chain: the producer's output
// (N·OH·OW × F₁) is exactly the consumer's im2col operand when the consumer
// is 1×1/stride-1 — the standard conv→pointwise fusion of separable and
// bottleneck blocks. Non-pointwise consumers need halo exchange and are
// rejected.
func LowerChain(name string, first, second Conv2D) (*op.Chain, error) {
	if err := first.Validate(); err != nil {
		return nil, err
	}
	if err := second.Validate(); err != nil {
		return nil, err
	}
	if !second.Pointwise() {
		return nil, fmt.Errorf("conv: consumer %s is not pointwise; its im2col halo breaks the lowered chain", second.label())
	}
	if second.C != first.F {
		return nil, fmt.Errorf("conv: consumer expects %d channels, producer yields %d", second.C, first.F)
	}
	if second.N != first.N || second.H != first.OutH() || second.W != first.OutW() {
		return nil, fmt.Errorf("conv: consumer input %dx%dx%d does not match producer output %dx%dx%d",
			second.N, second.H, second.W, first.N, first.OutH(), first.OutW())
	}
	return op.NewChain(name, first.Lower(), second.Lower())
}

// --------------------------------------------------------------- tensors --

// Tensor4 is a minimal NHWC dense tensor for the functional oracle.
type Tensor4 struct {
	N, H, W, C int
	Data       []float64
}

// NewTensor4 allocates a zeroed NHWC tensor.
func NewTensor4(n, h, w, c int) *Tensor4 {
	if n <= 0 || h <= 0 || w <= 0 || c <= 0 {
		panic(fmt.Sprintf("conv: invalid tensor shape %d×%d×%d×%d", n, h, w, c))
	}
	return &Tensor4{N: n, H: h, W: w, C: c, Data: make([]float64, n*h*w*c)}
}

// At returns the element at (n, y, x, c); out-of-range spatial coordinates
// read as zero padding.
func (t *Tensor4) At(n, y, x, c int) float64 {
	if y < 0 || y >= t.H || x < 0 || x >= t.W {
		return 0
	}
	return t.Data[((n*t.H+y)*t.W+x)*t.C+c]
}

// Set stores v at (n, y, x, c).
func (t *Tensor4) Set(n, y, x, c int, v float64) {
	t.Data[((n*t.H+y)*t.W+x)*t.C+c] = v
}

// Seq fills the tensor with a deterministic position-dependent pattern.
func (t *Tensor4) Seq(seed int) *Tensor4 {
	for i := range t.Data {
		t.Data[i] = float64((i*19+seed*7)%17) - 8
	}
	return t
}

// Im2col lowers input x under convolution c into the A operand
// (N·OH·OW × KH·KW·C).
func Im2col(c Conv2D, x *Tensor4) (*tensor.Matrix, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if x.N != c.N || x.H != c.H || x.W != c.W || x.C != c.C {
		return nil, fmt.Errorf("conv: input %d×%d×%d×%d does not match %v", x.N, x.H, x.W, x.C, c)
	}
	oh, ow := c.OutH(), c.OutW()
	a := tensor.New(c.N*oh*ow, c.KH*c.KW*c.C)
	row := 0
	for n := 0; n < c.N; n++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				col := 0
				for ky := 0; ky < c.KH; ky++ {
					for kx := 0; kx < c.KW; kx++ {
						for ch := 0; ch < c.C; ch++ {
							y := oy*c.strideH() + ky - c.PadH
							xx := ox*c.strideW() + kx - c.PadW
							a.Set(row, col, x.At(n, y, xx, ch))
							col++
						}
					}
				}
				row++
			}
		}
	}
	return a, nil
}

// WeightsMatrix lays weights w (KH×KW×C×F stored as Tensor4 with N=KH,
// H=KW, W=C, C=F) out as the lowered B operand (KH·KW·C × F).
func WeightsMatrix(c Conv2D, w *Tensor4) (*tensor.Matrix, error) {
	if w.N != c.KH || w.H != c.KW || w.W != c.C || w.C != c.F {
		return nil, fmt.Errorf("conv: weights %d×%d×%d×%d do not match %v", w.N, w.H, w.W, w.C, c)
	}
	b := tensor.New(c.KH*c.KW*c.C, c.F)
	row := 0
	for ky := 0; ky < c.KH; ky++ {
		for kx := 0; kx < c.KW; kx++ {
			for ch := 0; ch < c.C; ch++ {
				for f := 0; f < c.F; f++ {
					b.Set(row, f, w.At(ky, kx, ch, f))
				}
				row++
			}
		}
	}
	return b, nil
}

// Reference computes the convolution directly with seven nested loops —
// the oracle the lowering is validated against.
func Reference(c Conv2D, x, w *Tensor4) (*Tensor4, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if x.N != c.N || x.H != c.H || x.W != c.W || x.C != c.C {
		return nil, fmt.Errorf("conv: input shape mismatch")
	}
	if w.N != c.KH || w.H != c.KW || w.W != c.C || w.C != c.F {
		return nil, fmt.Errorf("conv: weight shape mismatch")
	}
	out := NewTensor4(c.N, c.OutH(), c.OutW(), c.F)
	for n := 0; n < c.N; n++ {
		for oy := 0; oy < c.OutH(); oy++ {
			for ox := 0; ox < c.OutW(); ox++ {
				for f := 0; f < c.F; f++ {
					sum := 0.0
					for ky := 0; ky < c.KH; ky++ {
						for kx := 0; kx < c.KW; kx++ {
							for ch := 0; ch < c.C; ch++ {
								sum += x.At(n, oy*c.strideH()+ky-c.PadH, ox*c.strideW()+kx-c.PadW, ch) *
									w.At(ky, kx, ch, f)
							}
						}
					}
					out.Set(n, oy, ox, f, sum)
				}
			}
		}
	}
	return out, nil
}

// Execute runs the convolution through the lowering (im2col + matmul) and
// returns the output in NHWC form.
func Execute(c Conv2D, x, w *Tensor4) (*Tensor4, error) {
	a, err := Im2col(c, x)
	if err != nil {
		return nil, err
	}
	b, err := WeightsMatrix(c, w)
	if err != nil {
		return nil, err
	}
	y, err := tensor.MatMul(a, b)
	if err != nil {
		return nil, err
	}
	out := NewTensor4(c.N, c.OutH(), c.OutW(), c.F)
	row := 0
	for n := 0; n < c.N; n++ {
		for oy := 0; oy < c.OutH(); oy++ {
			for ox := 0; ox < c.OutW(); ox++ {
				for f := 0; f < c.F; f++ {
					out.Set(n, oy, ox, f, y.At(row, f))
				}
				row++
			}
		}
	}
	return out, nil
}
