package tablestore

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"fusecu/api"
	"fusecu/internal/cost"
	"fusecu/internal/op"
	"fusecu/internal/search"
)

func toOpSpec(mm op.MatMul) api.OpSpec {
	return api.OpSpec{Name: mm.Name, M: mm.M, K: mm.K, L: mm.L}
}

func buildTable(t *testing.T, mm op.MatMul, grid search.Grid) *search.CandTable {
	t.Helper()
	tab, err := search.NewCandTable(mm, grid, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestPutLoadRoundTrip publishes a table and loads it back: the loaded
// table must be structurally identical, and its artifact name must embed
// the shape hash and the running cost-model version.
func TestPutLoadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mm := op.MatMul{Name: "rt", M: 10, K: 8, L: 6}
	fresh := buildTable(t, mm, search.GridFull)
	name, err := st.Put(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(name, "-"+cost.ModelVersion+Ext) {
		t.Fatalf("artifact name %q does not embed cost-model version", name)
	}
	if name != FileName(mm, search.GridFull) {
		t.Fatalf("Put published %q, FileName says %q", name, FileName(mm, search.GridFull))
	}
	loaded, err := st.Load(mm, search.GridFull)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, loaded) {
		t.Fatal("loaded table differs from published table")
	}
	// No leftover temp files after publish.
	entries, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("store directory holds %d files after one publish, want 1", len(entries))
	}
}

// TestLoadMissing distinguishes "no artifact" (ErrNotFound, also
// fs.ErrNotExist) from every corruption error, so the registry can count
// misses and load failures separately.
func TestLoadMissing(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.Load(op.MatMul{Name: "miss", M: 4, K: 4, L: 4}, search.GridCoarse)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("got %v, want fs.ErrNotExist in the chain", err)
	}
}

// TestLoadRejectsTruncatedFile cuts a published artifact short; Load must
// fail with a format error, not ErrNotFound — the caller falls back to a
// fresh build and counts a load error.
func TestLoadRejectsTruncatedFile(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mm := op.MatMul{Name: "trunc", M: 6, K: 5, L: 4}
	if _, err := st.Put(buildTable(t, mm, search.GridFull)); err != nil {
		t.Fatal(err)
	}
	path := st.Path(mm, search.GridFull)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = st.Load(mm, search.GridFull)
	if !errors.Is(err, search.ErrTableFormat) {
		t.Fatalf("got %v, want ErrTableFormat", err)
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatal("truncation must not be reported as not-found")
	}
}

// TestLoadRejectsFlippedChecksumByte flips one byte inside a published
// artifact's trailing header CRC; the load must fail the checksum.
func TestLoadRejectsFlippedChecksumByte(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mm := op.MatMul{Name: "flip", M: 6, K: 5, L: 4}
	if _, err := st.Put(buildTable(t, mm, search.GridCoarse)); err != nil {
		t.Fatal(err)
	}
	path := st.Path(mm, search.GridCoarse)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerLen(t, data)] ^= 0x01 // first byte of the header CRC32
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = st.Load(mm, search.GridCoarse)
	if !errors.Is(err, search.ErrTableFormat) {
		t.Fatalf("got %v, want ErrTableFormat", err)
	}
}

// TestLoadRejectsWrongCostModelVersion rewrites the embedded cost-model
// version (repairing the checksum so only the version gate can object);
// Load must surface ErrTableCostModel so the caller logs the right reason.
func TestLoadRejectsWrongCostModelVersion(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mm := op.MatMul{Name: "cmver", M: 6, K: 5, L: 4}
	if _, err := st.Put(buildTable(t, mm, search.GridCoarse)); err != nil {
		t.Fatal(err)
	}
	path := st.Path(mm, search.GridCoarse)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.Repeat("x", len(cost.ModelVersion))
	copy(data[4+2+2:], stale) // magic(4) format(2) verLen(2), then the version bytes
	hl := headerLen(t, data)
	binary.LittleEndian.PutUint32(data[hl:], crc32.ChecksumIEEE(data[:hl]))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = st.Load(mm, search.GridCoarse)
	if !errors.Is(err, search.ErrTableCostModel) {
		t.Fatalf("got %v, want ErrTableCostModel", err)
	}
}

// TestLoadIgnoresStaleCostModelArtifacts: an artifact published under an
// older cost-model version has a different file name, so the store simply
// doesn't see it — a version bump orphans the file instead of loading it.
func TestLoadIgnoresStaleCostModelArtifacts(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mm := op.MatMul{Name: "stale", M: 5, K: 4, L: 3}
	name, err := st.Put(buildTable(t, mm, search.GridFull))
	if err != nil {
		t.Fatal(err)
	}
	staleName := strings.Replace(name, "-"+cost.ModelVersion+Ext, "-cm0"+Ext, 1)
	if err := os.Rename(filepath.Join(st.Dir(), name), filepath.Join(st.Dir(), staleName)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(mm, search.GridFull); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound for stale-version artifact", err)
	}
}

// TestLoadRejectsMislabeledArtifact copies a valid artifact of one shape
// to another shape's file name; the decoder's self-description check must
// catch it even though every checksum passes.
func TestLoadRejectsMislabeledArtifact(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mm := op.MatMul{Name: "real", M: 6, K: 5, L: 4}
	other := op.MatMul{Name: "other", M: 7, K: 5, L: 4}
	if _, err := st.Put(buildTable(t, mm, search.GridFull)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(st.Path(mm, search.GridFull))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.Path(other, search.GridFull), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(other, search.GridFull); err == nil {
		t.Fatal("mislabeled artifact loaded successfully")
	}
}

// TestConcurrentLoadWhilePublish hammers Load while Put repeatedly
// republishes the same artifact. Atomic rename means every load sees a
// complete artifact or a clean miss — never a torn read. Run under -race
// this also checks the store itself shares no unsynchronized state.
func TestConcurrentLoadWhilePublish(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mm := op.MatMul{Name: "race", M: 8, K: 6, L: 5}
	fresh := buildTable(t, mm, search.GridFull)

	const publishers, loaders, rounds = 2, 4, 50
	var wg sync.WaitGroup
	errc := make(chan error, publishers+loaders)
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := st.Put(fresh); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tab, err := st.Load(mm, search.GridFull)
				if errors.Is(err, ErrNotFound) {
					continue // raced ahead of the first publish
				}
				if err != nil {
					errc <- err
					return
				}
				if tab.Candidates() != fresh.Candidates() {
					errc <- errors.New("loaded table with wrong candidate count")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("load-while-publish: %v", err)
	}
}

// TestManifestRoundTrip writes and reads back a manifest, pinning the
// version stamps tooling relies on.
func TestManifestRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mm := op.MatMul{Name: "man", M: 5, K: 4, L: 3}
	tab := buildTable(t, mm, search.GridCoarse)
	name, err := st.Put(tab)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(st.Dir(), name))
	if err != nil {
		t.Fatal(err)
	}
	entries := []ManifestEntry{{
		File:       name,
		ShapeHash:  strings.TrimSuffix(name, "-"+cost.ModelVersion+Ext),
		Op:         toOpSpec(mm),
		Grid:       search.GridCoarse.String(),
		Candidates: tab.Candidates(),
		Bytes:      fi.Size(),
	}}
	if err := st.WriteManifest(entries); err != nil {
		t.Fatal(err)
	}
	m, err := st.ReadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.CostModelVersion != cost.ModelVersion || m.TableFormatVersion != search.TableFormatVersion {
		t.Fatalf("manifest versions %q/%d, want %q/%d",
			m.CostModelVersion, m.TableFormatVersion, cost.ModelVersion, search.TableFormatVersion)
	}
	if !reflect.DeepEqual(m.Tables, entries) {
		t.Fatalf("manifest tables %+v, want %+v", m.Tables, entries)
	}
}

// headerLen returns the offset of the header section's trailing CRC32 in a
// serialized table, mirroring the layout pinned by internal/search:
// magic(4) format(2) cmVer(str) name(str) dims(3×8) grid(1) counters(3×8).
func headerLen(t *testing.T, data []byte) int {
	t.Helper()
	off := 4 + 2
	verLen := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2 + verLen
	nameLen := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2 + nameLen
	return off + 24 + 1 + 24
}
