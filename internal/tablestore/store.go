// Package tablestore persists candidate tables as content-addressed
// artifacts on disk. Each file is one serialized CandTable named by the
// shape hash of its operator and grid plus the cost-model version it was
// built under:
//
//	<shapehash>-<costmodel>.fct
//
// so that a cost-model bump orphans stale artifacts instead of serving
// them, and the server falls back to a fresh build. Publication is atomic
// (write to a temp file in the same directory, then rename), so a reader
// racing a publish sees either the complete old artifact, the complete new
// one, or nothing — never a torn file. Every load re-validates the artifact
// through search.DecodeTable's checksums and live cost-model cross-check; a
// corrupt file is reported as such, never returned as a table.
package tablestore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"fusecu/api"
	"fusecu/internal/cost"
	"fusecu/internal/op"
	"fusecu/internal/search"
)

// Ext is the artifact file extension ("fusecu candidate table").
const Ext = ".fct"

// ManifestName is the per-directory index fusecu-tablegen writes alongside
// the artifacts. The store itself never reads it — the artifacts are
// self-describing — but tooling and CI use it to see what a directory holds
// without decoding every file.
const ManifestName = "manifest.json"

// ErrNotFound reports that a store holds no artifact for the requested
// shape, grid, and running cost-model version.
var ErrNotFound = errors.New("tablestore: no artifact for shape")

// Store is a directory of candidate-table artifacts.
type Store struct {
	dir string
}

// Open returns a store over dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("tablestore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tablestore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// FileName returns the content-addressed artifact name for a shape and
// grid under the running cost-model version.
func FileName(mm op.MatMul, grid search.Grid) string {
	return api.ShapeHash(mm.M, mm.K, mm.L, grid.String()) + "-" + cost.ModelVersion + Ext
}

// Path returns the absolute artifact path for a shape and grid.
func (s *Store) Path(mm op.MatMul, grid search.Grid) string {
	return filepath.Join(s.dir, FileName(mm, grid))
}

// Load reads, decodes, and fully validates the artifact for (mm, grid).
// A missing artifact returns ErrNotFound (also satisfying
// errors.Is(err, fs.ErrNotExist)); a present-but-invalid one returns the
// decoder's error so the caller can log why it fell back to building.
func (s *Store) Load(mm op.MatMul, grid search.Grid) (*search.CandTable, error) {
	path := s.Path(mm, grid)
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %w", ErrNotFound, err)
		}
		return nil, fmt.Errorf("tablestore: read %s: %w", path, err)
	}
	t, err := search.DecodeTable(data)
	if err != nil {
		return nil, fmt.Errorf("tablestore: %s: %w", filepath.Base(path), err)
	}
	// The artifact is self-describing and its name is derived from its
	// contents; a mismatch means the file was renamed or mislabeled.
	if got := t.Op(); got.M != mm.M || got.K != mm.K || got.L != mm.L || t.Grid() != grid {
		return nil, fmt.Errorf("tablestore: %s holds %v over %s grid, want %v over %s",
			filepath.Base(path), got, t.Grid(), mm, grid)
	}
	return t, nil
}

// Put publishes a table atomically: the encoded artifact is written to a
// temp file in the store directory and renamed into place, so concurrent
// loaders never observe a partial write. Returns the artifact file name.
func (s *Store) Put(t *search.CandTable) (string, error) {
	name := FileName(t.Op(), t.Grid())
	tmp, err := os.CreateTemp(s.dir, name+".tmp*")
	if err != nil {
		return "", fmt.Errorf("tablestore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(search.EncodeTable(t)); err != nil {
		tmp.Close()
		return "", fmt.Errorf("tablestore: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("tablestore: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		return "", fmt.Errorf("tablestore: publish %s: %w", name, err)
	}
	return name, nil
}

// ManifestEntry describes one published artifact.
type ManifestEntry struct {
	File       string     `json:"file"`
	ShapeHash  string     `json:"shape_hash"`
	Op         api.OpSpec `json:"op"`
	Grid       string     `json:"grid"`
	Candidates int64      `json:"candidates"`
	Bytes      int64      `json:"bytes"`
}

// Manifest indexes a store directory for tooling and CI.
type Manifest struct {
	CostModelVersion   string          `json:"cost_model_version"`
	TableFormatVersion int             `json:"table_format_version"`
	Tables             []ManifestEntry `json:"tables"`
}

// WriteManifest publishes a manifest (sorted by file name for determinism)
// with the same atomic temp-then-rename discipline as artifacts.
func (s *Store) WriteManifest(entries []ManifestEntry) error {
	sort.Slice(entries, func(i, j int) bool { return entries[i].File < entries[j].File })
	m := Manifest{
		CostModelVersion:   cost.ModelVersion,
		TableFormatVersion: search.TableFormatVersion,
		Tables:             entries,
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("tablestore: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(s.dir, ManifestName+".tmp*")
	if err != nil {
		return fmt.Errorf("tablestore: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("tablestore: write manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("tablestore: close manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, ManifestName)); err != nil {
		return fmt.Errorf("tablestore: publish manifest: %w", err)
	}
	return nil
}

// ReadManifest loads the directory's manifest.
func (s *Store) ReadManifest() (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("tablestore: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("tablestore: manifest: %w", err)
	}
	return &m, nil
}
