package invariant

import (
	"errors"
	"strings"
	"testing"
)

type fakeValidator struct{ err error }

func (f fakeValidator) Validate() error { return f.err }

func TestValidateAllEmpty(t *testing.T) {
	if err := ValidateAll[fakeValidator](); err != nil {
		t.Fatalf("ValidateAll() = %v, want nil", err)
	}
}

func TestValidateAllAllValid(t *testing.T) {
	if err := ValidateAll(fakeValidator{}, fakeValidator{}); err != nil {
		t.Fatalf("ValidateAll(valid, valid) = %v, want nil", err)
	}
}

func TestValidateAllFirstViolation(t *testing.T) {
	bad1 := errors.New("bad one")
	bad2 := errors.New("bad two")
	err := ValidateAll(fakeValidator{}, fakeValidator{err: bad1}, fakeValidator{err: bad2})
	if err == nil {
		t.Fatal("ValidateAll(valid, bad, bad) = nil, want error")
	}
	if !errors.Is(err, bad1) {
		t.Errorf("error %v does not wrap the first violation", err)
	}
	if errors.Is(err, bad2) {
		t.Errorf("error %v reports a later violation instead of the first", err)
	}
	if !strings.Contains(err.Error(), "element 1") {
		t.Errorf("error %q does not name the violating index", err)
	}
}
