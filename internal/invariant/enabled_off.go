//go:build !fusecuchecks

package invariant

// Enabled reports whether runtime invariant checking was compiled in. It is
// a constant so the disabled checks are dead code the compiler removes.
const Enabled = false
