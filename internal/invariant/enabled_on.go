//go:build fusecuchecks

package invariant

// Enabled reports whether runtime invariant checking was compiled in.
const Enabled = true
