// Package invariant provides build-tag-gated runtime assertions and checked
// integer arithmetic for the dataflow optimizer's correctness invariants:
// tile footprints stay non-negative and inside the buffer, memory-access
// totals never dip below the communication lower bound, and dimension
// products (M·K·L, footprint terms) never overflow int64 on large LLM
// shapes.
//
// Under the default build the checks compile to nothing: Assert is an empty
// inlineable call and CheckedMul is a plain multiply. Building with
// -tags=fusecuchecks turns every violated invariant into a panic, which the
// test suite and CI run exercise. The fusecu-vet analyzers (internal/analysis)
// enforce that dimension products go through this package rather than raw
// `*` expressions.
package invariant

import (
	"fmt"
	"math"
)

// Assert panics with the formatted message when cond is false and the
// fusecuchecks build tag is set; otherwise it is a no-op the compiler can
// eliminate.
func Assert(cond bool, format string, args ...any) {
	if Enabled && !cond {
		panic("invariant: " + fmt.Sprintf(format, args...))
	}
}

// CheckedMul returns a·b. Under -tags=fusecuchecks it panics when the
// product overflows int64; under the default build it is a plain multiply.
func CheckedMul(a, b int64) int64 {
	if Enabled && mulOverflows(a, b) {
		panic(fmt.Sprintf("invariant: %d * %d overflows int64", a, b))
	}
	return a * b
}

// CheckedMul3 returns a·b·c with the same overflow policy as CheckedMul,
// checking both partial products.
func CheckedMul3(a, b, c int64) int64 {
	return CheckedMul(CheckedMul(a, b), c)
}

// MulOverflows reports whether a·b overflows int64. It is exported for
// callers that want to reject oversized shapes gracefully instead of
// asserting.
func MulOverflows(a, b int64) bool { return mulOverflows(a, b) }

func mulOverflows(a, b int64) bool {
	if a == 0 || b == 0 {
		return false
	}
	if a == -1 {
		return b == math.MinInt64
	}
	r := a * b
	return r/a != b
}
