package invariant

import (
	"math"
	"testing"
)

func TestCheckedMul(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 5, 0},
		{3, 7, 21},
		{-4, 6, -24},
		{1 << 31, 1 << 31, 1 << 62},
	}
	for _, c := range cases {
		if got := CheckedMul(c.a, c.b); got != c.want {
			t.Errorf("CheckedMul(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCheckedMul3(t *testing.T) {
	if got := CheckedMul3(2, 3, 5); got != 30 {
		t.Errorf("CheckedMul3(2,3,5) = %d, want 30", got)
	}
}

func TestMulOverflows(t *testing.T) {
	cases := []struct {
		a, b int64
		want bool
	}{
		{0, math.MaxInt64, false},
		{math.MaxInt64, 1, false},
		{math.MaxInt64, 2, true},
		{1 << 32, 1 << 32, true},
		{-1, math.MinInt64, true},
		{math.MinInt64, -1, true},
		{-1, math.MaxInt64, false},
		{1 << 31, 1 << 31, false},
	}
	for _, c := range cases {
		if got := MulOverflows(c.a, c.b); got != c.want {
			t.Errorf("MulOverflows(%d, %d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAssertDisabledIsNoop(t *testing.T) {
	if Enabled {
		t.Skip("fusecuchecks build: Assert panics on violation (see checks_on_test.go)")
	}
	Assert(false, "must not panic when checks are compiled out")
	var wrapped int64 = math.MaxInt64
	wrapped *= 2
	if got := CheckedMul(math.MaxInt64, 2); got != wrapped {
		t.Errorf("disabled CheckedMul should wrap like a plain multiply, got %d", got)
	}
}
