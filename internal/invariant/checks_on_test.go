//go:build fusecuchecks

package invariant

import (
	"math"
	"testing"
)

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic under fusecuchecks", name)
		}
	}()
	fn()
}

func TestAssertPanicsWhenEnabled(t *testing.T) {
	mustPanic(t, "Assert(false)", func() { Assert(false, "tile %d exceeds buffer", 9) })
	Assert(true, "must not panic")
}

func TestCheckedMulPanicsOnOverflow(t *testing.T) {
	mustPanic(t, "CheckedMul overflow", func() { CheckedMul(math.MaxInt64, 2) })
	mustPanic(t, "CheckedMul3 overflow", func() { CheckedMul3(1<<31, 1<<31, 2) })
	if got := CheckedMul(6, 7); got != 42 {
		t.Errorf("CheckedMul(6,7) = %d, want 42", got)
	}
}
