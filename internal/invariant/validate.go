package invariant

import "fmt"

// Validator is the module's validation surface: op.MatMul, op.Chain,
// dataflow.Tiling, dataflow.Dataflow and the fusion descriptors all report
// constraint violations through a Validate error.
type Validator interface {
	Validate() error
}

// ValidateAll validates every value in order and returns the first
// violation, annotated with its index. It exists so sweep harnesses can
// gate a whole operator batch in one call instead of hand-rolling the loop
// (and so the droppederror analyzer has a generic module API to police:
// discarding its error hides exactly the malformed-shape failures the cost
// model cannot tolerate).
func ValidateAll[T Validator](vs ...T) error {
	for i, v := range vs {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("invariant: element %d: %w", i, err)
		}
	}
	return nil
}
