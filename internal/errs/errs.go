// Package errs defines the library's unified error taxonomy: the exported
// sentinels every fusecu package wraps its failures in, so callers — the
// public facade, the CLIs, and above all the fusecu-serve HTTP service —
// can classify failures with errors.Is instead of string-matching messages.
//
// Each sentinel names a *category* of failure, not a site: packages keep
// their descriptive, site-specific messages and attach the sentinel with
// fmt.Errorf("...: %w", ..., errs.ErrX). The service maps each category to
// one stable HTTP status code (see internal/service), which is the whole
// point: adding a new failure site never changes the wire contract.
//
// Taxonomy:
//
//   - ErrInvalidOperator — a malformed operator shape (non-positive dims).
//   - ErrInvalidChain    — a chain whose operators do not connect, whose
//     elementwise slots mismatch, or that is empty; also covers
//     producer/consumer pairs that cannot fuse structurally.
//   - ErrInvalidDataflow — a tiling, loop order, or fused pattern violating
//     the §III validity constraints.
//   - ErrBufferTooSmall  — the buffer cannot hold even 1×1 tiles, so no
//     engine can produce any dataflow.
//   - ErrInfeasible      — the inputs are well-formed but no feasible
//     dataflow exists in the searched/constructed space for this buffer.
//   - ErrUnknownPlatform — a platform name outside Table III.
//   - ErrUnknownModel    — a model name outside Table II.
//   - ErrInternal        — an engine failed in a way valid inputs never
//     should: a panic contained at a worker-pool or generation-loop boundary
//     (organic or fault-injected). The inputs may be fine; retrying or
//     falling back to the principle optimizer is legitimate.
package errs

import "errors"

// Sentinel errors. See the package comment for the taxonomy.
var (
	ErrInvalidOperator = errors.New("invalid operator")
	ErrInvalidChain    = errors.New("invalid chain")
	ErrInvalidDataflow = errors.New("invalid dataflow")
	ErrBufferTooSmall  = errors.New("buffer too small")
	ErrInfeasible      = errors.New("no feasible dataflow")
	ErrUnknownPlatform = errors.New("unknown platform")
	ErrUnknownModel    = errors.New("unknown model")
	ErrInternal        = errors.New("internal engine failure")
)
