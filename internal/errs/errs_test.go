package errs_test

import (
	"errors"
	"testing"

	"fusecu/internal/arch"
	"fusecu/internal/core"
	"fusecu/internal/errs"
	"fusecu/internal/fusion"
	"fusecu/internal/model"
	"fusecu/internal/op"
	"fusecu/internal/search"
)

// TestClassification pins the error taxonomy contract: every failure class
// the service maps to an HTTP status must be classifiable with errors.Is
// regardless of which package produced it.
func TestClassification(t *testing.T) {
	bad := op.MatMul{Name: "bad", M: 0, K: 4, L: 4}
	good := op.MatMul{Name: "ok", M: 8, K: 8, L: 8}

	cases := []struct {
		name string
		err  error
		want error
	}{
		{"op validate", bad.Validate(), errs.ErrInvalidOperator},
		{"empty chain", op.ErrEmptyChain, errs.ErrInvalidChain},
		{"chain link mismatch", chainErr(t), errs.ErrInvalidChain},
		{"fusion pair mismatch", pairErr(t), errs.ErrInvalidChain},
		{"core buffer too small", optErr(t, good, 2), errs.ErrBufferTooSmall},
		{"core sentinel wraps shared", core.ErrBufferTooSmall, errs.ErrBufferTooSmall},
		{"search buffer too small", searchErr(t, good, 2), errs.ErrBufferTooSmall},
		{"search invalid op", searchValidate(t, bad), errs.ErrInvalidOperator},
		{"unknown platform", byNameErr(t), errs.ErrUnknownPlatform},
		{"unknown model", modelErr(t), errs.ErrUnknownModel},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected an error", c.name)
			continue
		}
		if !errors.Is(c.err, c.want) {
			t.Errorf("%s: %v is not %v", c.name, c.err, c.want)
		}
	}
}

func chainErr(t *testing.T) error {
	t.Helper()
	_, err := op.NewChain("c", op.MatMul{Name: "a", M: 8, K: 8, L: 8}, op.MatMul{Name: "b", M: 8, K: 9, L: 8})
	return err
}

func pairErr(t *testing.T) error {
	t.Helper()
	_, err := fusion.NewPair(op.MatMul{Name: "a", M: 8, K: 8, L: 8}, op.MatMul{Name: "b", M: 8, K: 9, L: 8})
	return err
}

func optErr(t *testing.T, mm op.MatMul, bs int64) error {
	t.Helper()
	_, err := core.Optimize(mm, bs)
	return err
}

func searchErr(t *testing.T, mm op.MatMul, bs int64) error {
	t.Helper()
	_, err := search.Genetic(mm, bs, search.GeneticOptions{})
	return err
}

func searchValidate(t *testing.T, mm op.MatMul) error {
	t.Helper()
	_, err := search.Exhaustive(mm, 1024)
	return err
}

func byNameErr(t *testing.T) error {
	t.Helper()
	_, err := arch.ByName("nope")
	return err
}

func modelErr(t *testing.T) error {
	t.Helper()
	_, err := model.ByName("nope")
	return err
}

// TestInvalidDataflow covers the fusion-side dataflow validity class.
func TestInvalidDataflow(t *testing.T) {
	p, err := fusion.NewPair(
		op.MatMul{Name: "a", M: 8, K: 8, L: 8},
		op.MatMul{Name: "b", M: 8, K: 8, L: 8})
	if err != nil {
		t.Fatal(err)
	}
	var fd fusion.FusedDataflow // zero tiles are out of [1, dim]
	if err := fd.Validate(p); !errors.Is(err, errs.ErrInvalidDataflow) {
		t.Fatalf("Validate: %v is not ErrInvalidDataflow", err)
	}
}
