package sim

import (
	"testing"

	"fusecu/internal/dataflow"
	"fusecu/internal/tensor"
)

func TestColumnFusedGangedWideReduction(t *testing.T) {
	f, _ := NewFabric(4)
	// K = 7 > N = 4 but ≤ 2N = 8: needs the wide producer ganging.
	a := tensor.New(10, 7).Seq(1)
	b := tensor.New(7, 9).Seq(2)
	d := tensor.New(9, 6).Seq(3)
	got, err := f.ColumnFusedGanged(a, b, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := fusedReference(a, b, d, nil)
	if !tensor.Equal(got, want, 1e-6) {
		t.Fatalf("ganged column fusion diverges by %v", tensor.MaxAbsDiff(got, want))
	}
	if f.Cycles() <= 0 || f.BusyCycles() <= f.Cycles() {
		t.Fatalf("cycle accounting wrong: pipeline %d busy %d", f.Cycles(), f.BusyCycles())
	}
}

func TestColumnFusedGangedFallsBackForNarrowK(t *testing.T) {
	f, _ := NewFabric(8)
	a := tensor.New(10, 5).Seq(1) // K = 5 ≤ N = 8
	b := tensor.New(5, 9).Seq(2)
	d := tensor.New(9, 6).Seq(3)
	got, err := f.ColumnFusedGanged(a, b, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, fusedReference(a, b, d, nil), 1e-6) {
		t.Fatal("fallback path diverges")
	}
}

func TestColumnFusedGangedRejectsBeyond2N(t *testing.T) {
	f, _ := NewFabric(4)
	a := tensor.New(4, 9).Seq(1) // K = 9 > 2N = 8
	b := tensor.New(9, 4).Seq(2)
	d := tensor.New(4, 4).Seq(3)
	if _, err := f.ColumnFusedGanged(a, b, d, nil); err == nil {
		t.Fatal("K beyond the 2N bound accepted")
	}
}

func TestColumnFusedGangedWithElementwise(t *testing.T) {
	f, _ := NewFabric(4)
	a := tensor.New(6, 6).Seq(4)
	b := tensor.New(6, 8).Seq(5)
	d := tensor.New(8, 5).Seq(6)
	halve := func(v float64) float64 { return v / 2 }
	got, err := f.ColumnFusedGanged(a, b, d, halve)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, fusedReference(a, b, d, halve), 1e-6) {
		t.Fatal("ganged fusion with elementwise diverges")
	}
}

func TestParallelMatMulMatchesReference(t *testing.T) {
	f, _ := NewFabric(4)
	a := tensor.New(18, 6).Seq(1) // rows split unevenly across 4 CUs
	b := tensor.New(6, 7).Seq(2)
	want, _ := tensor.MatMul(a, b)
	for _, st := range []dataflow.StationaryKind{dataflow.WS, dataflow.IS, dataflow.OS} {
		got, err := f.ParallelMatMul(a, b, st)
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if !tensor.Equal(got, want, 1e-6) {
			t.Fatalf("%v parallel diverges by %v", st, tensor.MaxAbsDiff(got, want))
		}
	}
}

func TestParallelMatMulOverlapsCUs(t *testing.T) {
	f, _ := NewFabric(4)
	a := tensor.New(32, 8).Seq(1)
	b := tensor.New(8, 8).Seq(2)
	if _, err := f.ParallelMatMul(a, b, dataflow.OS); err != nil {
		t.Fatal(err)
	}
	// Four partitions run concurrently: pipelined time must be well below
	// the summed busy time.
	if f.Cycles()*2 > f.BusyCycles() {
		t.Fatalf("no parallel speedup: pipeline %d busy %d", f.Cycles(), f.BusyCycles())
	}
}

func TestParallelMatMulFewRows(t *testing.T) {
	f, _ := NewFabric(4)
	a := tensor.New(2, 3).Seq(1) // fewer rows than CUs
	b := tensor.New(3, 5).Seq(2)
	got, err := f.ParallelMatMul(a, b, dataflow.WS)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tensor.MatMul(a, b)
	if !tensor.Equal(got, want, 1e-6) {
		t.Fatal("few-row parallel diverges")
	}
}

func TestParallelMatMulErrors(t *testing.T) {
	f, _ := NewFabric(4)
	if _, err := f.ParallelMatMul(tensor.New(2, 3), tensor.New(4, 2), dataflow.WS); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

// Cross-layer accounting: the simulator's OS cycle count decomposes exactly
// into passes × (K + fill/drain) plus accumulator drains, tying the
// RTL-level model to the mapping layer's pass arithmetic.
func TestSimCyclesMatchPassArithmetic(t *testing.T) {
	const n = 4
	f, _ := NewFabric(n)
	a := tensor.New(10, 6).Seq(1) // M=10, K=6
	b := tensor.New(6, 9).Seq(2)  // L=9
	cu := f.CU(0)
	before := cu.Cycles()
	if _, err := f.MatMul(a, b, dataflow.OS); err != nil {
		t.Fatal(err)
	}
	got := cu.Cycles() - before
	mPasses := (10 + n - 1) / n // 3
	lPasses := (9 + n - 1) / n  // 3
	passes := int64(mPasses * lPasses)
	perPass := int64(6 + n + n + 2) // K + rows + cols + 2 wavefront slack
	drains := int64(10 * lPasses)   // Σ tile rows per L column
	want := passes*perPass + drains
	if got != want {
		t.Fatalf("sim cycles = %d, pass arithmetic predicts %d", got, want)
	}
}
