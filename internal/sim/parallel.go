package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// SweepJob is one unit of a parallel simulation sweep: a named function run
// against a private Fabric. Jobs must confine all mutable state to that
// fabric (and their own locals); shared aggregation happens in the sweep.
type SweepJob struct {
	Name string
	Run  func(*Fabric) error
}

// SweepResult is the aggregate of a parallel sweep.
type SweepResult struct {
	// Jobs counts successfully completed jobs.
	Jobs int
	// Traffic sums element movement across every job's fabric.
	Traffic Traffic
	// Cycles sums per-job pipelined cycles (sweep jobs are independent, so
	// total work is the sum, not the max).
	Cycles int64
	// BusyCycles sums per-CU busy cycles across jobs.
	BusyCycles int64
}

// sweepError pairs a failed job's name with its error so joined failures
// can be reported in a deterministic (name-sorted) order rather than in
// nondeterministic completion order.
type sweepError struct {
	name string
	err  error
}

// sweepState is the mutex-guarded shared state of one sweep. The
// lockedsimstate analyzer (cmd/fusecu-vet) enforces that worker goroutines
// only touch the fields beside mu while holding it; the -race CI run
// backstops what the lexical analysis cannot see.
type sweepState struct {
	mu   sync.Mutex
	res  SweepResult
	errs []sweepError
}

// ParallelSweep executes jobs across min(workers, len(jobs)) goroutines,
// each owning a private Fabric of CU dimension n, and aggregates traffic
// and cycle counts. workers ≤ 0 selects GOMAXPROCS. Jobs that fail are
// reported (joined, sorted by job name so failures reproduce run to run)
// without stopping the sweep; the result aggregates the jobs that
// succeeded.
func ParallelSweep(n, workers int, jobs []SweepJob) (SweepResult, error) {
	return ParallelSweepCtx(context.Background(), n, workers, jobs)
}

// ParallelSweepCtx is ParallelSweep with cooperative cancellation: when ctx
// is canceled, dispatch stops and idle workers skip every remaining job, so
// the sweep winds down after at most one in-flight simulation per worker
// (jobs themselves are not interruptible — they own a private fabric and no
// context). A canceled sweep returns the aggregate of the jobs that did
// complete plus an error wrapping ctx.Err() (joined after any job errors),
// classifiable with errors.Is(err, context.Canceled).
func ParallelSweepCtx(ctx context.Context, n, workers int, jobs []SweepJob) (SweepResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return SweepResult{}, nil
	}
	// Fail fast on an invalid CU dimension before spawning anything.
	if _, err := NewFabric(n); err != nil {
		return SweepResult{}, err
	}

	state := &sweepState{}
	ch := make(chan SweepJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fab, err := NewFabric(n)
			if err != nil {
				state.mu.Lock()
				state.errs = append(state.errs, sweepError{name: "", err: err})
				state.mu.Unlock()
				return
			}
			for job := range ch {
				select {
				case <-ctx.Done():
					// Drain without simulating so a blocked dispatcher (if
					// it raced past its own Done check) can always finish.
					continue
				default:
				}
				fab.ResetTraffic()
				fab.ResetCycles()
				before := fab.BusyCycles()
				err := job.Run(fab)
				tr, cyc, busy := fab.Traffic(), fab.Cycles(), fab.BusyCycles()-before

				state.mu.Lock()
				if err != nil {
					state.errs = append(state.errs, sweepError{
						name: job.Name,
						err:  fmt.Errorf("sim: job %q: %w", job.Name, err),
					})
				} else {
					state.res.Jobs++
					state.res.Traffic.A += tr.A
					state.res.Traffic.B += tr.B
					state.res.Traffic.D += tr.D
					state.res.Traffic.Out += tr.Out
					state.res.Cycles += cyc
					state.res.BusyCycles += busy
				}
				state.mu.Unlock()
			}
		}()
	}
	done := ctx.Done()
dispatch:
	for _, job := range jobs {
		select {
		case ch <- job:
		case <-done:
			break dispatch
		}
	}
	close(ch)
	wg.Wait()

	// Workers are done: no lock needed, but the state is still behind the
	// mutex for the analyzer's benefit elsewhere.
	state.mu.Lock()
	defer state.mu.Unlock()
	sort.Slice(state.errs, func(i, j int) bool {
		// Tie-break same-named jobs on message so even degenerate workloads
		// report deterministically.
		if state.errs[i].name != state.errs[j].name {
			return state.errs[i].name < state.errs[j].name
		}
		return state.errs[i].err.Error() < state.errs[j].err.Error()
	})
	joined := make([]error, 0, len(state.errs)+1)
	for _, e := range state.errs {
		joined = append(joined, e.err)
	}
	if err := ctx.Err(); err != nil {
		joined = append(joined, fmt.Errorf("sim: sweep canceled: %w", err))
	}
	return state.res, errors.Join(joined...)
}
