package sim

import (
	"fmt"

	"fusecu/internal/dataflow"
	"fusecu/internal/tensor"
)

// Fabric is the four-CU FuseCU compute fabric of Fig. 7, with the resize
// interconnect that gangs CUs into square, narrow (2N×N) and wide (N×2N)
// logical arrays and the inter-CU connections used by the fused executions.
type Fabric struct {
	// N is the CU dimension (128 in the TPUv4i configuration; tests use
	// small values).
	N int
	// cus are the four physical compute units.
	cus [4]*CU
	// pipelineCycles tracks fabric-level pipelined execution time, which is
	// less than the sum of per-CU busy cycles when producer and consumer
	// CUs overlap (column fusion).
	pipelineCycles int64
	// traffic counts element movement across the fabric's memory boundary.
	traffic Traffic
}

// Traffic counts the elements the fabric moved across its memory boundary —
// the simulator's observed equivalent of the analytical models' MA, tested
// to agree exactly with internal/cost and internal/fusion for the
// corresponding dataflow.
type Traffic struct {
	// A, B are the producer operand loads; D the consumer weight loads
	// (fused executions only).
	A, B, D int64
	// Out counts output element write-backs (per visit, matching the
	// paper's accounting).
	Out int64
}

// Total sums all movement.
func (t Traffic) Total() int64 { return t.A + t.B + t.D + t.Out }

// Traffic returns the cumulative element movement.
func (f *Fabric) Traffic() Traffic { return f.traffic }

// ResetTraffic zeroes the movement counters.
func (f *Fabric) ResetTraffic() { f.traffic = Traffic{} }

// NewFabric builds a fabric of four N×N compute units.
func NewFabric(n int) (*Fabric, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sim: invalid CU dimension %d", n)
	}
	f := &Fabric{N: n}
	for i := range f.cus {
		cu, err := NewCU(n, n)
		if err != nil {
			return nil, err
		}
		f.cus[i] = cu
	}
	return f, nil
}

// CU returns physical compute unit i (0–3).
func (f *Fabric) CU(i int) *CU { return f.cus[i] }

// Cycles returns the fabric's pipelined execution cycle count.
func (f *Fabric) Cycles() int64 { return f.pipelineCycles }

// ResetCycles zeroes the fabric-level pipelined cycle counter so a fabric
// can be reused across independent runs (paired with ResetTraffic). Per-CU
// busy-cycle counters are monotone and unaffected; reusers measure those by
// delta, as ParallelSweep does.
func (f *Fabric) ResetCycles() { f.pipelineCycles = 0 }

// BusyCycles returns the sum of per-CU busy cycles (≥ Cycles when fused
// executions overlap CUs).
func (f *Fabric) BusyCycles() int64 {
	var t int64
	for _, cu := range f.cus {
		t += cu.Cycles()
	}
	return t
}

// MatMul executes C = A×B on a single CU with the requested stationary,
// tiling as needed. It exercises the XS PE's three datapaths.
func (f *Fabric) MatMul(a, b *tensor.Matrix, st dataflow.StationaryKind) (*tensor.Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("sim: matmul shape mismatch %d×%d by %d×%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	cu := f.cus[0]
	before := cu.Cycles()
	var (
		out *tensor.Matrix
		err error
	)
	switch st {
	case dataflow.WS:
		out, err = f.matMulWS(cu, a, b)
	case dataflow.IS:
		out, err = f.matMulIS(cu, a, b)
	case dataflow.OS:
		out, err = f.matMulOS(cu, a, b)
	default:
		return nil, fmt.Errorf("sim: unknown stationary %v", st)
	}
	if err != nil {
		return nil, err
	}
	f.pipelineCycles += cu.Cycles() - before
	return out, nil
}

// matMulWS keeps B blocks stationary and streams A.
func (f *Fabric) matMulWS(cu *CU, a, b *tensor.Matrix) (*tensor.Matrix, error) {
	out := tensor.New(a.Rows, b.Cols)
	for k0 := 0; k0 < b.Rows; k0 += cu.Rows {
		k1 := minInt(k0+cu.Rows, b.Rows)
		for l0 := 0; l0 < b.Cols; l0 += cu.Cols {
			l1 := minInt(l0+cu.Cols, b.Cols)
			if err := cu.LoadStationary(b.Sub(k0, k1, l0, l1)); err != nil {
				return nil, err
			}
			f.traffic.B += int64(k1-k0) * int64(l1-l0)
			part, err := cu.PassDown(a.Sub(0, a.Rows, k0, k1))
			if err != nil {
				return nil, err
			}
			f.traffic.A += int64(a.Rows) * int64(k1-k0)
			f.traffic.Out += int64(part.Rows) * int64(l1-l0)
			for i := 0; i < part.Rows; i++ {
				for j := 0; j < l1-l0; j++ {
					out.Add(i, l0+j, part.At(i, j))
				}
			}
		}
	}
	return out, nil
}

// matMulIS keeps A blocks stationary and streams B.
func (f *Fabric) matMulIS(cu *CU, a, b *tensor.Matrix) (*tensor.Matrix, error) {
	out := tensor.New(a.Rows, b.Cols)
	for m0 := 0; m0 < a.Rows; m0 += cu.Rows {
		m1 := minInt(m0+cu.Rows, a.Rows)
		for k0 := 0; k0 < a.Cols; k0 += cu.Cols {
			k1 := minInt(k0+cu.Cols, a.Cols)
			if err := cu.LoadStationary(a.Sub(m0, m1, k0, k1)); err != nil {
				return nil, err
			}
			f.traffic.A += int64(m1-m0) * int64(k1-k0)
			part, err := cu.PassRight(b.Sub(k0, k1, 0, b.Cols), false)
			if err != nil {
				return nil, err
			}
			f.traffic.B += int64(k1-k0) * int64(b.Cols)
			f.traffic.Out += int64(m1-m0) * int64(b.Cols)
			for i := 0; i < m1-m0; i++ {
				for j := 0; j < b.Cols; j++ {
					out.Add(m0+i, j, part.At(i, j))
				}
			}
		}
	}
	return out, nil
}

// matMulOS accumulates C tiles in the PE accumulators.
func (f *Fabric) matMulOS(cu *CU, a, b *tensor.Matrix) (*tensor.Matrix, error) {
	out := tensor.New(a.Rows, b.Cols)
	for m0 := 0; m0 < a.Rows; m0 += cu.Rows {
		m1 := minInt(m0+cu.Rows, a.Rows)
		// The A row-block is fetched once per m iteration and re-streamed
		// from the stream buffer across the inner l loop.
		f.traffic.A += int64(m1-m0) * int64(a.Cols)
		for l0 := 0; l0 < b.Cols; l0 += cu.Cols {
			l1 := minInt(l0+cu.Cols, b.Cols)
			cu.ResetAccumulators()
			if err := cu.PassAccumulate(a.Sub(m0, m1, 0, a.Cols), b.Sub(0, b.Rows, l0, l1)); err != nil {
				return nil, err
			}
			f.traffic.B += int64(b.Rows) * int64(l1-l0)
			tile, err := cu.Accumulators(m1-m0, l1-l0)
			if err != nil {
				return nil, err
			}
			f.traffic.Out += int64(m1-m0) * int64(l1-l0)
			out.SetSub(m0, l0, tile)
		}
	}
	return out, nil
}

// TileFused executes E = (A×B)×D with tile fusion (Fig. 5a): each C tile is
// produced output-stationary in the accumulators and immediately consumed
// input-stationary through the PassRight MUX path — C never leaves the
// array. An optional elementwise function applies to each C element in the
// array's activation path (the softmax/quantize unit) before consumption.
func (f *Fabric) TileFused(a, b, d *tensor.Matrix, elem func(float64) float64) (*tensor.Matrix, error) {
	if a.Cols != b.Rows || b.Cols != d.Rows {
		return nil, fmt.Errorf("sim: fused shape mismatch (%d×%d)(%d×%d)(%d×%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, d.Rows, d.Cols)
	}
	cu := f.cus[0]
	before := cu.Cycles()
	out := tensor.New(a.Rows, d.Cols)
	for m0 := 0; m0 < a.Rows; m0 += cu.Rows {
		m1 := minInt(m0+cu.Rows, a.Rows)
		// A row-block fetched once per m iteration (stream-buffer reuse).
		f.traffic.A += int64(m1-m0) * int64(a.Cols)
		for l0 := 0; l0 < b.Cols; l0 += cu.Cols {
			l1 := minInt(l0+cu.Cols, b.Cols)
			cu.ResetAccumulators()
			if err := cu.PassAccumulate(a.Sub(m0, m1, 0, a.Cols), b.Sub(0, b.Rows, l0, l1)); err != nil {
				return nil, err
			}
			f.traffic.B += int64(b.Rows) * int64(l1-l0)
			if elem != nil {
				cu.applyElement(elem)
			}
			part, err := cu.PassRight(d.Sub(l0, l1, 0, d.Cols), true)
			if err != nil {
				return nil, err
			}
			f.traffic.D += int64(l1-l0) * int64(d.Cols)
			f.traffic.Out += int64(m1-m0) * int64(d.Cols)
			for i := 0; i < m1-m0; i++ {
				for j := 0; j < d.Cols; j++ {
					out.Add(m0+i, j, part.At(i, j))
				}
			}
		}
	}
	f.pipelineCycles += cu.Cycles() - before
	return out, nil
}

// applyElement applies fn to every accumulator — the in-array elementwise
// unit sitting between the produce and consume phases.
func (cu *CU) applyElement(fn func(float64) float64) {
	for i := range cu.acc {
		for j := range cu.acc[i] {
			cu.acc[i][j] = fn(cu.acc[i][j])
		}
	}
	cu.cycles++
}

// ColumnFused executes E = (A×B)×D with column fusion (Fig. 5b): an IS
// producer CU holds an A row-block and streams C columns over the Fig. 7
// interconnect into an OS consumer CU holding the E row-block, one column
// of C per step. Producer and consumer overlap in time; the fabric counts
// the pipelined cycles (max of the two passes plus the interconnect
// offset), while each CU's own counter records its busy time.
//
// Shape requirements mirror the column-fusion dataflow: K = A.Cols must fit
// one CU's width (untiled reduction, up to N; use narrow ganging for 2N)
// and N = D.Cols must fit the consumer's width per pass.
func (f *Fabric) ColumnFused(a, b, d *tensor.Matrix, elem func(float64) float64) (*tensor.Matrix, error) {
	if a.Cols != b.Rows || b.Cols != d.Rows {
		return nil, fmt.Errorf("sim: fused shape mismatch (%d×%d)(%d×%d)(%d×%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, d.Rows, d.Cols)
	}
	prod, cons := f.cus[0], f.cus[2]
	if a.Cols > prod.Cols {
		return nil, fmt.Errorf("sim: column fusion needs K=%d ≤ CU width %d (gang CUs for up to 2N)", a.Cols, prod.Cols)
	}
	out := tensor.New(a.Rows, d.Cols)
	for m0 := 0; m0 < a.Rows; m0 += prod.Rows {
		m1 := minInt(m0+prod.Rows, a.Rows)
		pBefore, cBefore := prod.Cycles(), cons.Cycles()
		if err := prod.LoadStationary(a.Sub(m0, m1, 0, a.Cols)); err != nil {
			return nil, err
		}
		f.traffic.A += int64(m1-m0) * int64(a.Cols)
		// Producer: C row-block = A_block × B, streamed column by column.
		cBlock, err := prod.PassRight(b, false)
		if err != nil {
			return nil, err
		}
		f.traffic.B += int64(b.Rows) * int64(b.Cols)
		cBlock = cBlock.Sub(0, m1-m0, 0, b.Cols)
		if elem != nil {
			for i := range cBlock.Data {
				cBlock.Data[i] = elem(cBlock.Data[i])
			}
		}
		for n0 := 0; n0 < d.Cols; n0 += cons.Cols {
			n1 := minInt(n0+cons.Cols, d.Cols)
			cons.ResetAccumulators()
			if err := cons.PassAccumulate(cBlock, d.Sub(0, d.Rows, n0, n1)); err != nil {
				return nil, err
			}
			f.traffic.D += int64(d.Rows) * int64(n1-n0)
			tile, err := cons.Accumulators(m1-m0, n1-n0)
			if err != nil {
				return nil, err
			}
			f.traffic.Out += int64(m1-m0) * int64(n1-n0)
			out.SetSub(m0, n0, tile)
		}
		// Pipelined time: the halves overlap column by column; the slower
		// side plus the one-register interconnect hop bounds the block.
		pd, cd := prod.Cycles()-pBefore, cons.Cycles()-cBefore
		f.pipelineCycles += maxInt64(pd, cd) + 1
	}
	return out, nil
}

// GangedCU returns a logical CU of the requested shape built from whole
// physical CUs via the resize interconnect (Fig. 7c–e): N×N, 2N×N (narrow),
// N×2N (wide) or 2N×2N. The logical CU has its own registers; its cycles
// are added to the fabric's pipeline count by the caller's passes.
func (f *Fabric) GangedCU(rows, cols int) (*CU, error) {
	n := f.N
	ok := (rows == n && cols == n) || (rows == 2*n && cols == n) ||
		(rows == n && cols == 2*n) || (rows == 2*n && cols == 2*n)
	if !ok {
		return nil, fmt.Errorf("sim: %d×%d is not a square/narrow/wide ganging of %d×%d CUs", rows, cols, n, n)
	}
	return NewCU(rows, cols)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
