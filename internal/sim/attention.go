package sim

import (
	"fmt"
	"math"

	"fusecu/internal/tensor"
)

// ScaleAccumulatorRows multiplies each accumulator row by the given factor —
// the per-row rescale the softmax unit applies to the consumer CU's
// accumulators when a new running maximum arrives in streamed attention.
func (cu *CU) ScaleAccumulatorRows(factors []float64) error {
	if len(factors) > cu.Rows {
		return fmt.Errorf("sim: %d row factors for %d rows", len(factors), cu.Rows)
	}
	for i, f := range factors {
		for j := range cu.acc[i] {
			cu.acc[i][j] *= f
		}
	}
	cu.cycles++
	return nil
}

// FusedAttention executes O = softmax(Q·Kᵀ·scale)·V with exact online
// (streaming) softmax renormalization — the FlashAttention-style recurrence
// running on the column-fusion datapath: the producer CU holds a Q row-block
// and emits score columns; the softmax unit exponentiates them against a
// running row maximum, rescaling the consumer CU's accumulators whenever the
// maximum grows; the consumer accumulates the weighted V rows. The S matrix
// never exists in memory, yet the result matches the full softmax exactly.
//
// Shapes: q is M×dh, kT is dh×L, v is L×dh; dh must fit one CU (≤ N).
func (f *Fabric) FusedAttention(q, kT, v *tensor.Matrix, scale float64) (*tensor.Matrix, error) {
	if q.Cols != kT.Rows || kT.Cols != v.Rows || q.Cols != v.Cols {
		return nil, fmt.Errorf("sim: attention shape mismatch Q %d×%d, Kᵀ %d×%d, V %d×%d",
			q.Rows, q.Cols, kT.Rows, kT.Cols, v.Rows, v.Cols)
	}
	prod, cons := f.cus[0], f.cus[2]
	if q.Cols > prod.Cols {
		return nil, fmt.Errorf("sim: head dim %d exceeds CU width %d", q.Cols, prod.Cols)
	}
	M, L, dh := q.Rows, kT.Cols, q.Cols
	out := tensor.New(M, dh)

	for m0 := 0; m0 < M; m0 += prod.Rows {
		m1 := minInt(m0+prod.Rows, M)
		rows := m1 - m0
		pBefore, cBefore := prod.Cycles(), cons.Cycles()
		if err := prod.LoadStationary(q.Sub(m0, m1, 0, dh)); err != nil {
			return nil, err
		}
		f.traffic.A += int64(rows) * int64(dh)
		cons.ResetAccumulators()

		runMax := make([]float64, rows)
		denom := make([]float64, rows)
		for i := range runMax {
			runMax[i] = math.Inf(-1)
		}

		// Stream K columns through the producer, one at a time, exactly as
		// column fusion moves the intermediate.
		for l := 0; l < L; l++ {
			sCol, err := prod.PassRight(kT.Sub(0, dh, l, l+1), false)
			if err != nil {
				return nil, err
			}
			f.traffic.B += int64(dh)

			// Softmax unit: exponentiate against the running maximum and
			// rescale consumer accumulators where the maximum moved.
			factors := make([]float64, rows)
			weights := tensor.New(rows, 1)
			for i := 0; i < rows; i++ {
				s := sCol.At(i, 0) * scale
				if s > runMax[i] {
					alpha := math.Exp(runMax[i] - s)
					if math.IsInf(runMax[i], -1) {
						alpha = 0
					}
					factors[i] = alpha
					denom[i] *= alpha
					runMax[i] = s
				} else {
					factors[i] = 1
				}
				w := math.Exp(s - runMax[i])
				weights.Set(i, 0, w)
				denom[i] += w
			}
			if err := cons.ScaleAccumulatorRows(factors); err != nil {
				return nil, err
			}
			// Consumer: acc[i,:] += w_i · V[l,:].
			if err := cons.PassAccumulate(weights, v.Sub(l, l+1, 0, dh)); err != nil {
				return nil, err
			}
			f.traffic.D += int64(dh)
		}

		tile, err := cons.Accumulators(rows, dh)
		if err != nil {
			return nil, err
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < dh; j++ {
				out.Set(m0+i, j, tile.At(i, j)/denom[i])
			}
		}
		f.traffic.Out += int64(rows) * int64(dh)

		pd, cd := prod.Cycles()-pBefore, cons.Cycles()-cBefore
		f.pipelineCycles += maxInt64(pd, cd) + 1
	}
	return out, nil
}
