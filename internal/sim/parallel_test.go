package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"fusecu/internal/dataflow"
	"fusecu/internal/tensor"
)

// sweepJobs builds a deterministic mixed workload of matmul jobs.
func sweepJobs(count int) []SweepJob {
	shapes := []struct{ m, k, l int }{
		{7, 4, 5}, {9, 7, 10}, {3, 9, 4}, {6, 5, 7},
	}
	kinds := []dataflow.StationaryKind{dataflow.WS, dataflow.IS, dataflow.OS}
	jobs := make([]SweepJob, count)
	for i := range jobs {
		sh := shapes[i%len(shapes)]
		st := kinds[i%len(kinds)]
		a := tensor.New(sh.m, sh.k).Seq(i + 1)
		b := tensor.New(sh.k, sh.l).Seq(i + 2)
		jobs[i] = SweepJob{
			Name: fmt.Sprintf("mm-%d-%v", i, st),
			Run: func(f *Fabric) error {
				_, err := f.MatMul(a, b, st)
				return err
			},
		}
	}
	return jobs
}

// sequentialSweep runs the jobs one at a time on fresh fabrics and sums the
// same aggregates ParallelSweep reports.
func sequentialSweep(t *testing.T, n int, jobs []SweepJob) SweepResult {
	t.Helper()
	var res SweepResult
	for _, job := range jobs {
		fab, err := NewFabric(n)
		if err != nil {
			t.Fatalf("NewFabric(%d): %v", n, err)
		}
		if err := job.Run(fab); err != nil {
			t.Fatalf("job %q: %v", job.Name, err)
		}
		tr := fab.Traffic()
		res.Jobs++
		res.Traffic.A += tr.A
		res.Traffic.B += tr.B
		res.Traffic.D += tr.D
		res.Traffic.Out += tr.Out
		res.Cycles += fab.Cycles()
		res.BusyCycles += fab.BusyCycles()
	}
	return res
}

func TestParallelSweepMatchesSequential(t *testing.T) {
	const n, count = 4, 24
	jobs := sweepJobs(count)
	want := sequentialSweep(t, n, jobs)

	for _, workers := range []int{0, 1, 3, 8, 100} {
		got, err := ParallelSweep(n, workers, jobs)
		if err != nil {
			t.Fatalf("ParallelSweep(workers=%d): %v", workers, err)
		}
		if got != want {
			t.Errorf("ParallelSweep(workers=%d) = %+v, want %+v", workers, got, want)
		}
	}
}

func TestParallelSweepEmpty(t *testing.T) {
	res, err := ParallelSweep(4, 2, nil)
	if err != nil {
		t.Fatalf("ParallelSweep(empty): %v", err)
	}
	if res != (SweepResult{}) {
		t.Errorf("ParallelSweep(empty) = %+v, want zero", res)
	}
}

func TestParallelSweepInvalidDimension(t *testing.T) {
	if _, err := ParallelSweep(0, 2, sweepJobs(3)); err == nil {
		t.Fatal("ParallelSweep(n=0) succeeded, want error")
	}
}

func TestParallelSweepPropagatesJobErrors(t *testing.T) {
	jobs := sweepJobs(6)
	boom := errors.New("boom")
	jobs[2].Name = "bad-shape"
	jobs[2].Run = func(f *Fabric) error {
		// Mismatched inner dimensions: the fabric must reject this.
		_, err := f.MatMul(tensor.New(2, 3), tensor.New(4, 2), dataflow.WS)
		return err
	}
	jobs[4].Name = "explicit-failure"
	jobs[4].Run = func(*Fabric) error { return boom }

	res, err := ParallelSweep(4, 3, jobs)
	if err == nil {
		t.Fatal("ParallelSweep with failing jobs returned nil error")
	}
	if !errors.Is(err, boom) {
		t.Errorf("error %v does not wrap the job error", err)
	}
	if !strings.Contains(err.Error(), "bad-shape") || !strings.Contains(err.Error(), "explicit-failure") {
		t.Errorf("error %v does not name both failing jobs", err)
	}
	if res.Jobs != 4 {
		t.Errorf("Jobs = %d, want 4 (the successful jobs)", res.Jobs)
	}
	if res.Traffic.Total() <= 0 || res.Cycles <= 0 {
		t.Errorf("successful jobs not aggregated: %+v", res)
	}
}

func TestParallelSweepErrorOrderDeterministic(t *testing.T) {
	// Many failing jobs with names that sort differently from their
	// submission order: the joined error must come back name-sorted and
	// byte-identical across runs regardless of worker scheduling.
	var jobs []SweepJob
	for i := 9; i >= 0; i-- {
		name := fmt.Sprintf("fail-%c", 'a'+i)
		jobs = append(jobs, SweepJob{
			Name: name,
			Run:  func(*Fabric) error { return fmt.Errorf("synthetic failure in %s", name) },
		})
	}
	jobs = append(jobs, sweepJobs(4)...)

	var first string
	for run := 0; run < 8; run++ {
		_, err := ParallelSweep(4, 5, jobs)
		if err == nil {
			t.Fatal("sweep with failing jobs returned nil error")
		}
		msg := err.Error()
		if run == 0 {
			first = msg
			// Sorted order: fail-a must be reported before fail-j even though
			// fail-j was submitted first.
			if strings.Index(msg, "fail-a") > strings.Index(msg, "fail-j") {
				t.Fatalf("errors not name-sorted:\n%s", msg)
			}
			continue
		}
		if msg != first {
			t.Fatalf("run %d error differs from run 0:\n%s\nvs\n%s", run, msg, first)
		}
	}
}

func TestFabricResetCycles(t *testing.T) {
	fab, err := NewFabric(4)
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.New(6, 5).Seq(1)
	b := tensor.New(5, 7).Seq(2)
	if _, err := fab.MatMul(a, b, dataflow.WS); err != nil {
		t.Fatal(err)
	}
	if fab.Cycles() == 0 {
		t.Fatal("run recorded no pipelined cycles")
	}
	busy := fab.BusyCycles()
	fab.ResetCycles()
	if fab.Cycles() != 0 {
		t.Errorf("Cycles() = %d after ResetCycles", fab.Cycles())
	}
	if fab.BusyCycles() != busy {
		t.Errorf("ResetCycles touched monotone busy counters: %d vs %d", fab.BusyCycles(), busy)
	}
	// A reused fabric now reports only the second run's cycles.
	if _, err := fab.MatMul(a, b, dataflow.WS); err != nil {
		t.Fatal(err)
	}
	if fab.Cycles() == 0 {
		t.Error("reused fabric recorded no cycles")
	}
}

func BenchmarkParallelSweep(b *testing.B) {
	jobs := make([]SweepJob, 32)
	a := tensor.New(24, 24).Seq(1)
	bm := tensor.New(24, 24).Seq(2)
	for i := range jobs {
		jobs[i] = SweepJob{
			Name: fmt.Sprintf("mm-%d", i),
			Run: func(f *Fabric) error {
				_, err := f.MatMul(a, bm, dataflow.OS)
				return err
			},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParallelSweep(8, 0, jobs); err != nil {
			b.Fatal(err)
		}
	}
}
