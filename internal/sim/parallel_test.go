package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"fusecu/internal/dataflow"
	"fusecu/internal/tensor"
)

// sweepJobs builds a deterministic mixed workload of matmul jobs.
func sweepJobs(count int) []SweepJob {
	shapes := []struct{ m, k, l int }{
		{7, 4, 5}, {9, 7, 10}, {3, 9, 4}, {6, 5, 7},
	}
	kinds := []dataflow.StationaryKind{dataflow.WS, dataflow.IS, dataflow.OS}
	jobs := make([]SweepJob, count)
	for i := range jobs {
		sh := shapes[i%len(shapes)]
		st := kinds[i%len(kinds)]
		a := tensor.New(sh.m, sh.k).Seq(i + 1)
		b := tensor.New(sh.k, sh.l).Seq(i + 2)
		jobs[i] = SweepJob{
			Name: fmt.Sprintf("mm-%d-%v", i, st),
			Run: func(f *Fabric) error {
				_, err := f.MatMul(a, b, st)
				return err
			},
		}
	}
	return jobs
}

// sequentialSweep runs the jobs one at a time on fresh fabrics and sums the
// same aggregates ParallelSweep reports.
func sequentialSweep(t *testing.T, n int, jobs []SweepJob) SweepResult {
	t.Helper()
	var res SweepResult
	for _, job := range jobs {
		fab, err := NewFabric(n)
		if err != nil {
			t.Fatalf("NewFabric(%d): %v", n, err)
		}
		if err := job.Run(fab); err != nil {
			t.Fatalf("job %q: %v", job.Name, err)
		}
		tr := fab.Traffic()
		res.Jobs++
		res.Traffic.A += tr.A
		res.Traffic.B += tr.B
		res.Traffic.D += tr.D
		res.Traffic.Out += tr.Out
		res.Cycles += fab.Cycles()
		res.BusyCycles += fab.BusyCycles()
	}
	return res
}

func TestParallelSweepMatchesSequential(t *testing.T) {
	const n, count = 4, 24
	jobs := sweepJobs(count)
	want := sequentialSweep(t, n, jobs)

	for _, workers := range []int{0, 1, 3, 8, 100} {
		got, err := ParallelSweep(n, workers, jobs)
		if err != nil {
			t.Fatalf("ParallelSweep(workers=%d): %v", workers, err)
		}
		if got != want {
			t.Errorf("ParallelSweep(workers=%d) = %+v, want %+v", workers, got, want)
		}
	}
}

func TestParallelSweepEmpty(t *testing.T) {
	res, err := ParallelSweep(4, 2, nil)
	if err != nil {
		t.Fatalf("ParallelSweep(empty): %v", err)
	}
	if res != (SweepResult{}) {
		t.Errorf("ParallelSweep(empty) = %+v, want zero", res)
	}
}

func TestParallelSweepInvalidDimension(t *testing.T) {
	if _, err := ParallelSweep(0, 2, sweepJobs(3)); err == nil {
		t.Fatal("ParallelSweep(n=0) succeeded, want error")
	}
}

func TestParallelSweepPropagatesJobErrors(t *testing.T) {
	jobs := sweepJobs(6)
	boom := errors.New("boom")
	jobs[2].Name = "bad-shape"
	jobs[2].Run = func(f *Fabric) error {
		// Mismatched inner dimensions: the fabric must reject this.
		_, err := f.MatMul(tensor.New(2, 3), tensor.New(4, 2), dataflow.WS)
		return err
	}
	jobs[4].Name = "explicit-failure"
	jobs[4].Run = func(*Fabric) error { return boom }

	res, err := ParallelSweep(4, 3, jobs)
	if err == nil {
		t.Fatal("ParallelSweep with failing jobs returned nil error")
	}
	if !errors.Is(err, boom) {
		t.Errorf("error %v does not wrap the job error", err)
	}
	if !strings.Contains(err.Error(), "bad-shape") || !strings.Contains(err.Error(), "explicit-failure") {
		t.Errorf("error %v does not name both failing jobs", err)
	}
	if res.Jobs != 4 {
		t.Errorf("Jobs = %d, want 4 (the successful jobs)", res.Jobs)
	}
	if res.Traffic.Total() <= 0 || res.Cycles <= 0 {
		t.Errorf("successful jobs not aggregated: %+v", res)
	}
}

func BenchmarkParallelSweep(b *testing.B) {
	jobs := make([]SweepJob, 32)
	a := tensor.New(24, 24).Seq(1)
	bm := tensor.New(24, 24).Seq(2)
	for i := range jobs {
		jobs[i] = SweepJob{
			Name: fmt.Sprintf("mm-%d", i),
			Run: func(f *Fabric) error {
				_, err := f.MatMul(a, bm, dataflow.OS)
				return err
			},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParallelSweep(8, 0, jobs); err != nil {
			b.Fatal(err)
		}
	}
}
