package sim

import (
	"context"
	"errors"
	"testing"

	"fusecu/internal/dataflow"
	"fusecu/internal/tensor"
)

func ctxSweepJobs(t *testing.T, n, count int) []SweepJob {
	t.Helper()
	jobs := make([]SweepJob, count)
	for i := range jobs {
		jobs[i] = SweepJob{
			Name: "job",
			Run: func(f *Fabric) error {
				a := tensor.New(2*n, n).Seq(1)
				b := tensor.New(n, 2*n).Seq(2)
				_, err := f.MatMul(a, b, dataflow.WS)
				return err
			},
		}
	}
	return jobs
}

func TestParallelSweepCtxUncancelled(t *testing.T) {
	jobs := ctxSweepJobs(t, 4, 6)
	res, err := ParallelSweepCtx(context.Background(), 4, 2, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != len(jobs) {
		t.Fatalf("Jobs = %d, want %d", res.Jobs, len(jobs))
	}
}

func TestParallelSweepCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ParallelSweepCtx(ctx, 4, 2, ctxSweepJobs(t, 4, 64))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A pre-canceled sweep may still complete at most the jobs that were
	// claimed before the workers observed cancellation — with a canceled
	// dispatcher that is zero.
	if res.Jobs != 0 {
		t.Fatalf("Jobs = %d, want 0 for a pre-canceled sweep", res.Jobs)
	}
}
