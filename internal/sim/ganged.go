package sim

import (
	"fmt"

	"fusecu/internal/dataflow"
	"fusecu/internal/tensor"
)

// ColumnFusedGanged executes E = (A×B)×D with column fusion, ganging two
// CUs into a wide (N×2N) producer when the untiled reduction K exceeds one
// CU's width — the Fig. 7(e) wide column fusion that realizes the §IV-B
// bound: untiled dimensions up to 2N. For K ≤ N it falls back to the plain
// two-CU column fusion.
func (f *Fabric) ColumnFusedGanged(a, b, d *tensor.Matrix, elem func(float64) float64) (*tensor.Matrix, error) {
	if a.Cols != b.Rows || b.Cols != d.Rows {
		return nil, fmt.Errorf("sim: fused shape mismatch (%d×%d)(%d×%d)(%d×%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, d.Rows, d.Cols)
	}
	if a.Cols <= f.N {
		return f.ColumnFused(a, b, d, elem)
	}
	if a.Cols > 2*f.N {
		return nil, fmt.Errorf("sim: K=%d exceeds the 2N=%d untiled bound (§IV-B)", a.Cols, 2*f.N)
	}
	// Wide producer from CUs 0+1, consumer from CUs 2+3 ganged square.
	prod, err := f.GangedCU(f.N, 2*f.N)
	if err != nil {
		return nil, err
	}
	cons, err := f.GangedCU(f.N, f.N)
	if err != nil {
		return nil, err
	}
	out := tensor.New(a.Rows, d.Cols)
	for m0 := 0; m0 < a.Rows; m0 += prod.Rows {
		m1 := minInt(m0+prod.Rows, a.Rows)
		pBefore, cBefore := prod.Cycles(), cons.Cycles()
		if err := prod.LoadStationary(a.Sub(m0, m1, 0, a.Cols)); err != nil {
			return nil, err
		}
		cBlock, err := prod.PassRight(b, false)
		if err != nil {
			return nil, err
		}
		cBlock = cBlock.Sub(0, m1-m0, 0, b.Cols)
		if elem != nil {
			for i := range cBlock.Data {
				cBlock.Data[i] = elem(cBlock.Data[i])
			}
		}
		for n0 := 0; n0 < d.Cols; n0 += cons.Cols {
			n1 := minInt(n0+cons.Cols, d.Cols)
			cons.ResetAccumulators()
			if err := cons.PassAccumulate(cBlock, d.Sub(0, d.Rows, n0, n1)); err != nil {
				return nil, err
			}
			tile, err := cons.Accumulators(m1-m0, n1-n0)
			if err != nil {
				return nil, err
			}
			out.SetSub(m0, n0, tile)
		}
		pd, cd := prod.Cycles()-pBefore, cons.Cycles()-cBefore
		f.pipelineCycles += maxInt64(pd, cd) + 1
	}
	// The ganged producer occupied two physical CUs; account its busy time
	// on them so BusyCycles stays meaningful.
	f.cus[0].cycles += prod.Cycles()
	f.cus[1].cycles += prod.Cycles()
	f.cus[2].cycles += cons.Cycles()
	f.cus[3].cycles += cons.Cycles()
	return out, nil
}

// ParallelMatMul executes C = A×B with the requested stationary, splitting
// A's rows across all four CUs — the unfused multi-CU dispatch every
// platform uses for large operators. The fabric's pipelined cycle count
// grows by the slowest partition only.
func (f *Fabric) ParallelMatMul(a, b *tensor.Matrix, st dataflow.StationaryKind) (*tensor.Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("sim: matmul shape mismatch %d×%d by %d×%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := tensor.New(a.Rows, b.Cols)
	// Partition rows as evenly as possible.
	per := (a.Rows + len(f.cus) - 1) / len(f.cus)
	var slowest int64
	for i, cu := range f.cus {
		r0 := i * per
		if r0 >= a.Rows {
			break
		}
		r1 := minInt(r0+per, a.Rows)
		before := cu.Cycles()
		part, err := f.matMulOn(cu, a.Sub(r0, r1, 0, a.Cols), b, st)
		if err != nil {
			return nil, err
		}
		out.SetSub(r0, 0, part)
		if d := cu.Cycles() - before; d > slowest {
			slowest = d
		}
	}
	f.pipelineCycles += slowest
	return out, nil
}

// matMulOn runs a single-CU matmul with the chosen stationary on cu.
func (f *Fabric) matMulOn(cu *CU, a, b *tensor.Matrix, st dataflow.StationaryKind) (*tensor.Matrix, error) {
	switch st {
	case dataflow.WS:
		return f.matMulWS(cu, a, b)
	case dataflow.IS:
		return f.matMulIS(cu, a, b)
	case dataflow.OS:
		return f.matMulOS(cu, a, b)
	}
	return nil, fmt.Errorf("sim: unknown stationary %v", st)
}
