package sim

import (
	"math"
	"math/rand"
	"testing"

	"fusecu/internal/tensor"
)

// attentionReference computes softmax(Q·Kᵀ·scale)·V with the full
// (non-streamed) softmax.
func attentionReference(t *testing.T, q, kT, v *tensor.Matrix, scale float64) *tensor.Matrix {
	t.Helper()
	s, err := tensor.MatMul(q, kT)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Data {
		s.Data[i] *= scale
	}
	p := tensor.Softmax(s)
	o, err := tensor.MatMul(p, v)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestFusedAttentionMatchesFullSoftmax(t *testing.T) {
	f, _ := NewFabric(4)
	q := tensor.New(10, 4).Seq(1)
	kT := tensor.New(4, 12).Seq(2)
	v := tensor.New(12, 4).Seq(3)
	got, err := f.FusedAttention(q, kT, v, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := attentionReference(t, q, kT, v, 0.5)
	if !tensor.Equal(got, want, 1e-9) {
		t.Fatalf("online softmax diverges by %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestFusedAttentionRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f, _ := NewFabric(5)
	for i := 0; i < 20; i++ {
		m := rng.Intn(12) + 1
		dh := rng.Intn(5) + 1
		l := rng.Intn(14) + 1
		q := tensor.New(m, dh).Seq(i)
		kT := tensor.New(dh, l).Seq(i + 1)
		v := tensor.New(l, dh).Seq(i + 2)
		scale := 1 / math.Sqrt(float64(dh))
		got, err := f.FusedAttention(q, kT, v, scale)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		want := attentionReference(t, q, kT, v, scale)
		if !tensor.Equal(got, want, 1e-9) {
			t.Fatalf("case %d (m=%d dh=%d l=%d): diverges by %v", i, m, dh, l, tensor.MaxAbsDiff(got, want))
		}
	}
}

// The S matrix never crosses the memory boundary: attention traffic is just
// Q, Kᵀ, V and O — per row-block for the streams.
func TestFusedAttentionTraffic(t *testing.T) {
	const n = 4
	f, _ := NewFabric(n)
	M, dh, L := 10, 4, 12
	q := tensor.New(M, dh).Seq(1)
	kT := tensor.New(dh, L).Seq(2)
	v := tensor.New(L, dh).Seq(3)
	if _, err := f.FusedAttention(q, kT, v, 1); err != nil {
		t.Fatal(err)
	}
	nM := int64((M + n - 1) / n)
	got := f.Traffic()
	if got.A != int64(M*dh) {
		t.Fatalf("Q traffic = %d, want %d", got.A, M*dh)
	}
	if got.B != int64(dh*L)*nM {
		t.Fatalf("Kᵀ traffic = %d, want %d", got.B, int64(dh*L)*nM)
	}
	if got.D != int64(L*dh)*nM {
		t.Fatalf("V traffic = %d, want %d", got.D, int64(L*dh)*nM)
	}
	if got.Out != int64(M*dh) {
		t.Fatalf("O traffic = %d, want %d", got.Out, M*dh)
	}
}

func TestFusedAttentionErrors(t *testing.T) {
	f, _ := NewFabric(4)
	if _, err := f.FusedAttention(tensor.New(4, 3), tensor.New(4, 4), tensor.New(4, 3), 1); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	// Head dim wider than the CU.
	if _, err := f.FusedAttention(tensor.New(4, 6), tensor.New(6, 4), tensor.New(4, 6), 1); err == nil {
		t.Fatal("oversized head dim accepted")
	}
}

func TestScaleAccumulatorRows(t *testing.T) {
	cu, _ := NewCU(2, 2)
	cu.acc[0][0], cu.acc[0][1] = 2, 4
	cu.acc[1][0], cu.acc[1][1] = 6, 8
	if err := cu.ScaleAccumulatorRows([]float64{0.5, 2}); err != nil {
		t.Fatal(err)
	}
	if cu.acc[0][0] != 1 || cu.acc[0][1] != 2 || cu.acc[1][0] != 12 || cu.acc[1][1] != 16 {
		t.Fatalf("acc = %v", cu.acc)
	}
	if err := cu.ScaleAccumulatorRows(make([]float64, 5)); err == nil {
		t.Fatal("oversized factor vector accepted")
	}
}

func TestFusedAttentionPipelineOverlap(t *testing.T) {
	f, _ := NewFabric(4)
	q := tensor.New(8, 4).Seq(1)
	kT := tensor.New(4, 16).Seq(2)
	v := tensor.New(16, 4).Seq(3)
	if _, err := f.FusedAttention(q, kT, v, 1); err != nil {
		t.Fatal(err)
	}
	if f.Cycles() >= f.BusyCycles() {
		t.Fatalf("no producer/consumer overlap: pipeline %d busy %d", f.Cycles(), f.BusyCycles())
	}
}
