package sim

import (
	"math/rand"
	"testing"

	"fusecu/internal/dataflow"
	"fusecu/internal/tensor"
)

const tol = 1e-9

func TestNewCUValidation(t *testing.T) {
	if _, err := NewCU(0, 4); err == nil {
		t.Fatal("invalid CU accepted")
	}
	cu, err := NewCU(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if cu.Rows != 4 || cu.Cols != 6 || cu.Cycles() != 0 {
		t.Fatalf("CU = %+v", cu)
	}
}

func TestLoadStationaryPadsAndCounts(t *testing.T) {
	cu, _ := NewCU(4, 4)
	m := tensor.New(2, 3).Seq(1)
	if err := cu.LoadStationary(m); err != nil {
		t.Fatal(err)
	}
	if cu.stat[0][0] != m.At(0, 0) || cu.stat[1][2] != m.At(1, 2) {
		t.Fatal("stationary contents wrong")
	}
	if cu.stat[3][3] != 0 || cu.stat[2][0] != 0 {
		t.Fatal("padding not zeroed")
	}
	if cu.Cycles() != 4 {
		t.Fatalf("cycles = %d, want 4 (one per row)", cu.Cycles())
	}
	if err := cu.LoadStationary(tensor.New(5, 2)); err == nil {
		t.Fatal("oversized stationary accepted")
	}
}

func TestPassDownMatchesReference(t *testing.T) {
	// out = stream × stationary with the stationary loaded as B.
	a := tensor.New(7, 4).Seq(1) // M×K
	b := tensor.New(4, 5).Seq(2) // K×L
	cu, _ := NewCU(4, 5)
	if err := cu.LoadStationary(b); err != nil {
		t.Fatal(err)
	}
	got, err := cu.PassDown(a)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tensor.MatMul(a, b)
	if !tensor.Equal(got, want, tol) {
		t.Fatalf("PassDown diverges from reference by %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestPassDownRejectsWideStream(t *testing.T) {
	cu, _ := NewCU(2, 2)
	if _, err := cu.PassDown(tensor.New(3, 3)); err == nil {
		t.Fatal("stream wider than array accepted")
	}
}

func TestPassRightMatchesReference(t *testing.T) {
	// out = stationary × stream with the stationary loaded as A.
	a := tensor.New(3, 4).Seq(3) // M×K
	b := tensor.New(4, 6).Seq(4) // K×N
	cu, _ := NewCU(3, 4)
	if err := cu.LoadStationary(a); err != nil {
		t.Fatal(err)
	}
	got, err := cu.PassRight(b, false)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tensor.MatMul(a, b)
	if !tensor.Equal(got, want, tol) {
		t.Fatalf("PassRight diverges from reference by %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestPassAccumulateMatchesReference(t *testing.T) {
	a := tensor.New(3, 9).Seq(5) // M×K, K streams temporally
	b := tensor.New(9, 4).Seq(6)
	cu, _ := NewCU(3, 4)
	if err := cu.PassAccumulate(a, b); err != nil {
		t.Fatal(err)
	}
	got, err := cu.Accumulators(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tensor.MatMul(a, b)
	if !tensor.Equal(got, want, tol) {
		t.Fatalf("PassAccumulate diverges by %v", tensor.MaxAbsDiff(got, want))
	}
	// A second pass accumulates on top.
	if err := cu.PassAccumulate(a, b); err != nil {
		t.Fatal(err)
	}
	got2, _ := cu.Accumulators(3, 4)
	for i := range got2.Data {
		if diff := got2.Data[i] - 2*want.Data[i]; diff > tol || diff < -tol {
			t.Fatal("second accumulate pass did not add")
		}
	}
}

func TestPassAccumulateErrors(t *testing.T) {
	cu, _ := NewCU(2, 2)
	if err := cu.PassAccumulate(tensor.New(3, 2), tensor.New(2, 2)); err == nil {
		t.Fatal("oversized A accepted")
	}
	if err := cu.PassAccumulate(tensor.New(2, 3), tensor.New(2, 2)); err == nil {
		t.Fatal("reduction mismatch accepted")
	}
}

func TestAccumulatorDrainBounds(t *testing.T) {
	cu, _ := NewCU(2, 2)
	if _, err := cu.Accumulators(3, 1); err == nil {
		t.Fatal("oversized drain accepted")
	}
	if _, err := cu.Accumulators(0, 1); err == nil {
		t.Fatal("empty drain accepted")
	}
}

func TestFabricMatMulAllStationaries(t *testing.T) {
	f, err := NewFabric(4)
	if err != nil {
		t.Fatal(err)
	}
	// Bigger than one CU in every dimension, with ragged edges.
	a := tensor.New(9, 7).Seq(1)
	b := tensor.New(7, 10).Seq(2)
	want, _ := tensor.MatMul(a, b)
	for _, st := range []dataflow.StationaryKind{dataflow.WS, dataflow.IS, dataflow.OS} {
		got, err := f.MatMul(a, b, st)
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if !tensor.Equal(got, want, tol) {
			t.Fatalf("%v diverges from reference by %v", st, tensor.MaxAbsDiff(got, want))
		}
	}
	if f.Cycles() <= 0 {
		t.Fatal("no cycles recorded")
	}
}

func TestFabricMatMulShapeMismatch(t *testing.T) {
	f, _ := NewFabric(4)
	if _, err := f.MatMul(tensor.New(2, 3), tensor.New(4, 2), dataflow.WS); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestFabricMatMulRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f, _ := NewFabric(5)
	for i := 0; i < 25; i++ {
		m, k, l := rng.Intn(12)+1, rng.Intn(12)+1, rng.Intn(12)+1
		a := tensor.New(m, k).Seq(i)
		b := tensor.New(k, l).Seq(i + 1)
		want, _ := tensor.MatMul(a, b)
		st := []dataflow.StationaryKind{dataflow.WS, dataflow.IS, dataflow.OS}[rng.Intn(3)]
		got, err := f.MatMul(a, b, st)
		if err != nil {
			t.Fatalf("%d×%d×%d %v: %v", m, k, l, st, err)
		}
		if !tensor.Equal(got, want, 1e-6) {
			t.Fatalf("%d×%d×%d %v diverges by %v", m, k, l, st, tensor.MaxAbsDiff(got, want))
		}
	}
}

func fusedReference(a, b, d *tensor.Matrix, elem func(float64) float64) *tensor.Matrix {
	c, _ := tensor.MatMul(a, b)
	if elem != nil {
		for i := range c.Data {
			c.Data[i] = elem(c.Data[i])
		}
	}
	e, _ := tensor.MatMul(c, d)
	return e
}

func TestTileFusedMatchesReference(t *testing.T) {
	f, _ := NewFabric(4)
	a := tensor.New(6, 5).Seq(1)
	b := tensor.New(5, 7).Seq(2)
	d := tensor.New(7, 6).Seq(3)
	got, err := f.TileFused(a, b, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := fusedReference(a, b, d, nil)
	if !tensor.Equal(got, want, 1e-6) {
		t.Fatalf("tile fusion diverges by %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestTileFusedWithElementwise(t *testing.T) {
	f, _ := NewFabric(8)
	a := tensor.New(8, 3).Seq(4)
	b := tensor.New(3, 8).Seq(5)
	d := tensor.New(8, 4).Seq(6)
	relu := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		return v
	}
	got, err := f.TileFused(a, b, d, relu)
	if err != nil {
		t.Fatal(err)
	}
	// The in-array elementwise unit applies per C tile; with L ≤ one CU the
	// tile covers the whole row and matches the global reference.
	want := fusedReference(a, b, d, relu)
	if !tensor.Equal(got, want, 1e-6) {
		t.Fatalf("tile fusion with relu diverges by %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestColumnFusedMatchesReference(t *testing.T) {
	f, _ := NewFabric(4)
	a := tensor.New(10, 3).Seq(1) // K = 3 ≤ CU width (untiled reduction)
	b := tensor.New(3, 9).Seq(2)
	d := tensor.New(9, 7).Seq(3)
	got, err := f.ColumnFused(a, b, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := fusedReference(a, b, d, nil)
	if !tensor.Equal(got, want, 1e-6) {
		t.Fatalf("column fusion diverges by %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestColumnFusedRejectsWideK(t *testing.T) {
	f, _ := NewFabric(4)
	a := tensor.New(4, 9).Seq(1) // K = 9 > CU width
	b := tensor.New(9, 4).Seq(2)
	d := tensor.New(4, 4).Seq(3)
	if _, err := f.ColumnFused(a, b, d, nil); err == nil {
		t.Fatal("K wider than CU accepted")
	}
}

func TestColumnFusedPipelineOverlap(t *testing.T) {
	f, _ := NewFabric(4)
	a := tensor.New(8, 4).Seq(1)
	b := tensor.New(4, 16).Seq(2)
	d := tensor.New(16, 4).Seq(3)
	if _, err := f.ColumnFused(a, b, d, nil); err != nil {
		t.Fatal(err)
	}
	// Producer and consumer overlap: pipelined time must undercut the sum
	// of both CUs' busy time.
	if f.Cycles() >= f.BusyCycles() {
		t.Fatalf("pipeline %d not overlapped vs busy %d", f.Cycles(), f.BusyCycles())
	}
}

func TestFusedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f, _ := NewFabric(5)
	for i := 0; i < 15; i++ {
		m := rng.Intn(10) + 1
		k := rng.Intn(5) + 1 // column fusion needs K ≤ 5
		l := rng.Intn(10) + 1
		n := rng.Intn(10) + 1
		a := tensor.New(m, k).Seq(i)
		b := tensor.New(k, l).Seq(i + 1)
		d := tensor.New(l, n).Seq(i + 2)
		want := fusedReference(a, b, d, nil)
		tf, err := f.TileFused(a, b, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(tf, want, 1e-6) {
			t.Fatalf("case %d: tile fusion diverges by %v", i, tensor.MaxAbsDiff(tf, want))
		}
		cf, err := f.ColumnFused(a, b, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(cf, want, 1e-6) {
			t.Fatalf("case %d: column fusion diverges by %v", i, tensor.MaxAbsDiff(cf, want))
		}
	}
}

func TestGangedCUShapes(t *testing.T) {
	f, _ := NewFabric(8)
	for _, s := range [][2]int{{8, 8}, {16, 8}, {8, 16}, {16, 16}} {
		cu, err := f.GangedCU(s[0], s[1])
		if err != nil {
			t.Errorf("ganging %v rejected: %v", s, err)
			continue
		}
		if cu.Rows != s[0] || cu.Cols != s[1] {
			t.Errorf("ganged CU = %d×%d", cu.Rows, cu.Cols)
		}
	}
	if _, err := f.GangedCU(12, 8); err == nil {
		t.Fatal("non-ganging shape accepted")
	}
}

// Ganged narrow CU supports an untiled reduction up to 2N in column fusion
// style (the paper's 2N untiled-dimension bound).
func TestNarrowGangingDoublesReduction(t *testing.T) {
	f, _ := NewFabric(4)
	wide, err := f.GangedCU(4, 8) // wide: K up to 8
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.New(4, 8).Seq(1)
	b := tensor.New(8, 5).Seq(2)
	if err := wide.LoadStationary(a); err != nil {
		t.Fatal(err)
	}
	got, err := wide.PassRight(b, false)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tensor.MatMul(a, b)
	if !tensor.Equal(got.Sub(0, 4, 0, 5), want, tol) {
		t.Fatal("ganged wide CU wrong result")
	}
}

func TestCycleCountersMonotone(t *testing.T) {
	f, _ := NewFabric(4)
	a := tensor.New(4, 4).Seq(1)
	b := tensor.New(4, 4).Seq(2)
	c0 := f.Cycles()
	if _, err := f.MatMul(a, b, dataflow.OS); err != nil {
		t.Fatal(err)
	}
	c1 := f.Cycles()
	if c1 <= c0 {
		t.Fatal("cycles did not advance")
	}
	if _, err := f.MatMul(a, b, dataflow.WS); err != nil {
		t.Fatal(err)
	}
	if f.Cycles() <= c1 {
		t.Fatal("cycles did not advance on second op")
	}
}

func BenchmarkFabricTileFused(b *testing.B) {
	f, _ := NewFabric(16)
	a := tensor.New(32, 16).Seq(1)
	bb := tensor.New(16, 32).Seq(2)
	d := tensor.New(32, 16).Seq(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.TileFused(a, bb, d, nil); err != nil {
			b.Fatal(err)
		}
	}
}
