// Package sim is a functional, cycle-stepped simulator of the FuseCU
// compute fabric — the stand-in for the paper's Chisel RTL. It models a
// compute unit (CU) as a systolic PE array executing skewed wavefronts with
// explicit per-cycle neighbour-to-neighbour propagation, supports the XS
// (flexible-stationary) passes of Fig. 6, the two fused executions of
// Fig. 5 (tile fusion: an OS produce phase followed by an IS consume phase
// reusing the accumulators as the stationary operand; column fusion: an IS
// producer CU streaming intermediate columns straight into an OS consumer
// CU over the Fig. 7 interconnect), and the square/narrow/wide CU gangings.
//
// Every moving value carries its (stream, reduction) indices, and each PE
// asserts that the operands meeting in it belong together — a misaligned
// skew or a mis-wired mapping trips the assertion instead of silently
// producing wrong data. Results are validated bit-for-bit against
// internal/tensor's reference matmul in the tests.
package sim

import (
	"fmt"

	"fusecu/internal/tensor"
)

// token is a value on a systolic wire with its provenance tags. s is the
// stream index (the output row/column being produced), r the reduction
// index. A token with valid == false is a bubble.
type token struct {
	val   float64
	s, r  int
	valid bool
}

// CU is one compute unit: a Rows×Cols PE array with per-PE stationary and
// accumulator registers, as in Fig. 6's XS PE.
type CU struct {
	Rows, Cols int
	// stat is the stationary register plane (weight for WS passes, input
	// for IS passes).
	stat [][]float64
	// acc is the accumulator plane (output-stationary passes and the
	// consumer side of the fused executions).
	acc [][]float64
	// cycles counts every simulated array cycle across passes.
	cycles int64
}

// NewCU builds a zeroed compute unit.
func NewCU(rows, cols int) (*CU, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sim: invalid CU shape %d×%d", rows, cols)
	}
	cu := &CU{Rows: rows, Cols: cols}
	cu.stat = plane(rows, cols)
	cu.acc = plane(rows, cols)
	return cu, nil
}

func plane(r, c int) [][]float64 {
	p := make([][]float64, r)
	backing := make([]float64, r*c)
	for i := range p {
		p[i], backing = backing[:c:c], backing[c:]
	}
	return p
}

// Cycles returns the cumulative simulated cycle count.
func (cu *CU) Cycles() int64 { return cu.cycles }

// ResetAccumulators zeroes the accumulator plane (the start of a new
// output-stationary tile).
func (cu *CU) ResetAccumulators() {
	for i := range cu.acc {
		for j := range cu.acc[i] {
			cu.acc[i][j] = 0
		}
	}
}

// LoadStationary writes m into the stationary plane, zero-padding the rest.
// It costs Rows cycles (one row shifted in per cycle), as in a systolic
// weight load.
func (cu *CU) LoadStationary(m *tensor.Matrix) error {
	if m.Rows > cu.Rows || m.Cols > cu.Cols {
		return fmt.Errorf("sim: stationary %d×%d exceeds CU %d×%d", m.Rows, m.Cols, cu.Rows, cu.Cols)
	}
	for i := 0; i < cu.Rows; i++ {
		for j := 0; j < cu.Cols; j++ {
			if i < m.Rows && j < m.Cols {
				cu.stat[i][j] = m.At(i, j)
			} else {
				cu.stat[i][j] = 0
			}
		}
	}
	cu.cycles += int64(cu.Rows)
	return nil
}

// Accumulators returns the top-left rows×cols corner of the accumulator
// plane. Draining costs rows cycles (one row per cycle through the column
// datapath).
func (cu *CU) Accumulators(rows, cols int) (*tensor.Matrix, error) {
	if rows > cu.Rows || cols > cu.Cols || rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sim: drain %d×%d exceeds CU %d×%d", rows, cols, cu.Rows, cu.Cols)
	}
	out := tensor.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			out.Set(i, j, cu.acc[i][j])
		}
	}
	cu.cycles += int64(rows)
	return out, nil
}

// PassDown performs a weight-stationary pass: out = stream × stationary,
// with stream M×R entering the west edge (skewed) and partial sums flowing
// north→south. stream's column count must not exceed the CU rows holding
// the stationary operand.
//
// Wavefront timing: stream value (m, r) enters row r at cycle m+r and moves
// east; the partial sum for output (m, c) enters column c at cycle m+c and
// moves south, meeting stream row r at cycle m+r+c. Output (m, c) emerges
// from the south edge at cycle m+Rows+c.
func (cu *CU) PassDown(stream *tensor.Matrix) (*tensor.Matrix, error) {
	if stream.Cols > cu.Rows {
		return nil, fmt.Errorf("sim: stream has %d columns but CU has %d rows", stream.Cols, cu.Rows)
	}
	M := stream.Rows
	out := tensor.New(M, cu.Cols)

	h := tokenPlane(cu.Rows, cu.Cols) // eastward stream values
	v := tokenPlane(cu.Rows, cu.Cols) // southward partial sums

	total := M + cu.Rows + cu.Cols + 2
	for t := 0; t < total; t++ {
		// Collect south-edge outputs produced last cycle.
		for c := 0; c < cu.Cols; c++ {
			if p := v[cu.Rows-1][c]; p.valid {
				out.Set(p.s, c, p.val)
			}
		}
		nh := tokenPlane(cu.Rows, cu.Cols)
		nv := tokenPlane(cu.Rows, cu.Cols)
		for r := cu.Rows - 1; r >= 0; r-- {
			for c := cu.Cols - 1; c >= 0; c-- {
				var a token
				if c == 0 {
					m := t - r
					if m >= 0 && m < M {
						a = token{val: at(stream, m, r), s: m, r: r, valid: true}
					}
				} else {
					a = h[r][c-1]
				}
				var p token
				if r == 0 {
					m := t - c
					if m >= 0 && m < M {
						p = token{val: 0, s: m, valid: true}
					}
				} else {
					p = v[r-1][c]
				}
				if a.valid && p.valid && a.s != p.s {
					return nil, fmt.Errorf("sim: PassDown skew broken at PE(%d,%d) cycle %d: stream m=%d psum m=%d", r, c, t, a.s, p.s)
				}
				if p.valid {
					if a.valid {
						p.val += a.val * cu.stat[r][c]
					}
					nv[r][c] = p
				}
				nh[r][c] = a
			}
		}
		h, v = nh, nv
	}
	cu.cycles += int64(total)
	return out, nil
}

// PassRight performs a left-stationary pass: out = S × stream, where S is
// either the stationary plane (an input-stationary operator pass) or the
// accumulator plane (the consume phase of tile fusion, via the Fig. 6 MUX
// path that feeds the accumulated result back as an input operand). stream
// is Cols×N, entering the north edge; partial sums flow west→east.
//
// Wavefront timing: stream value (l, n) enters column l at cycle n+l and
// moves south; the partial sum for output (r, n) enters row r at cycle n+r
// and moves east, meeting column l at cycle n+r+l. Output (r, n) emerges
// from the east edge at cycle n+r+Cols.
func (cu *CU) PassRight(stream *tensor.Matrix, fromAccumulators bool) (*tensor.Matrix, error) {
	plane := cu.stat
	if fromAccumulators {
		plane = cu.acc
	}
	if stream.Rows > cu.Cols {
		return nil, fmt.Errorf("sim: stream has %d rows but CU has %d columns", stream.Rows, cu.Cols)
	}
	N := stream.Cols
	out := tensor.New(cu.Rows, N)

	v := tokenPlane(cu.Rows, cu.Cols) // southward stream values
	h := tokenPlane(cu.Rows, cu.Cols) // eastward partial sums

	total := N + cu.Rows + cu.Cols + 2
	for t := 0; t < total; t++ {
		for r := 0; r < cu.Rows; r++ {
			if p := h[r][cu.Cols-1]; p.valid {
				out.Set(r, p.s, p.val)
			}
		}
		nv := tokenPlane(cu.Rows, cu.Cols)
		nh := tokenPlane(cu.Rows, cu.Cols)
		for r := cu.Rows - 1; r >= 0; r-- {
			for c := cu.Cols - 1; c >= 0; c-- {
				var d token
				if r == 0 {
					n := t - c
					if n >= 0 && n < N {
						d = token{val: at(stream, c, n), s: n, r: c, valid: true}
					}
				} else {
					d = v[r-1][c]
				}
				var p token
				if c == 0 {
					n := t - r
					if n >= 0 && n < N {
						p = token{val: 0, s: n, valid: true}
					}
				} else {
					p = h[r][c-1]
				}
				if d.valid && p.valid && d.s != p.s {
					return nil, fmt.Errorf("sim: PassRight skew broken at PE(%d,%d) cycle %d: stream n=%d psum n=%d", r, c, t, d.s, p.s)
				}
				if p.valid {
					if d.valid {
						p.val += d.val * plane[r][c]
					}
					nh[r][c] = p
				}
				nv[r][c] = d
			}
		}
		v, h = nv, nh
	}
	cu.cycles += int64(total)
	return out, nil
}

// PassAccumulate performs an output-stationary pass: acc[i][j] +=
// Σ_k a[i][k]·b[k][j], with a's columns streaming from the west and b's
// rows from the north. a is M×K (M ≤ Rows), b is K×N (N ≤ Cols).
//
// Wavefront timing: a(i,k) enters row i at cycle k+i, b(k,j) enters column
// j at cycle k+j; they meet at PE(i,j) at cycle k+i+j.
func (cu *CU) PassAccumulate(a, b *tensor.Matrix) error {
	if a.Rows > cu.Rows || b.Cols > cu.Cols {
		return fmt.Errorf("sim: OS operands %d×%d · %d×%d exceed CU %d×%d", a.Rows, a.Cols, b.Rows, b.Cols, cu.Rows, cu.Cols)
	}
	if a.Cols != b.Rows {
		return fmt.Errorf("sim: OS reduction mismatch %d vs %d", a.Cols, b.Rows)
	}
	K := a.Cols

	h := tokenPlane(cu.Rows, cu.Cols)
	v := tokenPlane(cu.Rows, cu.Cols)

	total := K + cu.Rows + cu.Cols + 2
	for t := 0; t < total; t++ {
		nh := tokenPlane(cu.Rows, cu.Cols)
		nv := tokenPlane(cu.Rows, cu.Cols)
		for r := cu.Rows - 1; r >= 0; r-- {
			for c := cu.Cols - 1; c >= 0; c-- {
				var av token
				if c == 0 {
					k := t - r
					if k >= 0 && k < K && r < a.Rows {
						av = token{val: at(a, r, k), s: r, r: k, valid: true}
					}
				} else {
					av = h[r][c-1]
				}
				var bv token
				if r == 0 {
					k := t - c
					if k >= 0 && k < K && c < b.Cols {
						bv = token{val: at(b, k, c), s: c, r: k, valid: true}
					}
				} else {
					bv = v[r-1][c]
				}
				if av.valid && bv.valid {
					if av.r != bv.r {
						return fmt.Errorf("sim: OS skew broken at PE(%d,%d) cycle %d: a k=%d b k=%d", r, c, t, av.r, bv.r)
					}
					cu.acc[r][c] += av.val * bv.val
				}
				nh[r][c] = av
				nv[r][c] = bv
			}
		}
		h, v = nh, nv
	}
	cu.cycles += int64(total)
	return nil
}

func tokenPlane(r, c int) [][]token {
	p := make([][]token, r)
	backing := make([]token, r*c)
	for i := range p {
		p[i], backing = backing[:c:c], backing[c:]
	}
	return p
}

// at reads (i, j) clamping out-of-range stationary padding to zero.
func at(m *tensor.Matrix, i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		return 0
	}
	return m.At(i, j)
}
