package sim

import (
	"testing"

	"fusecu/internal/cost"
	"fusecu/internal/dataflow"
	"fusecu/internal/fusion"
	"fusecu/internal/op"
	"fusecu/internal/tensor"
)

// The deepest cross-layer check in the repository: the fabric's *observed*
// memory traffic (counted at the DMA boundary while executing real element
// data) must equal the analytical cost model's prediction for the
// register-level dataflow the driver implements.

// matMulOS streams A row-blocks and B column-blocks per C tile and drains
// each tile once: that is the OS dataflow with T_M = T_L = N, T_K = K.
func TestTrafficOSMatchesCostModel(t *testing.T) {
	const n = 4
	f, _ := NewFabric(n)
	a := tensor.New(10, 6).Seq(1)
	b := tensor.New(6, 9).Seq(2)
	if _, err := f.MatMul(a, b, dataflow.OS); err != nil {
		t.Fatal(err)
	}
	mm := op.MatMul{M: 10, K: 6, L: 9}
	df := dataflow.Dataflow{
		Order:  dataflow.OrderOS,
		Tiling: dataflow.Tiling{TM: n, TK: mm.K, TL: n},
	}
	want, err := cost.Evaluate(mm, df)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Traffic()
	if got.A != want.PerTensor[dataflow.TensorA] ||
		got.B != want.PerTensor[dataflow.TensorB] ||
		got.Out != want.PerTensor[dataflow.TensorC] {
		t.Fatalf("OS traffic %+v, cost model %v", got, want.PerTensor)
	}
}

// matMulWS holds B tiles stationary, re-streams all of A per L block and
// spills C partials per K block: WS order with T_M = M streamed row-wise
// (no M residency ⇒ the equivalent buffer tiling uses T_M = 1).
func TestTrafficWSMatchesCostModel(t *testing.T) {
	const n = 4
	f, _ := NewFabric(n)
	a := tensor.New(10, 6).Seq(1)
	b := tensor.New(6, 9).Seq(2)
	if _, err := f.MatMul(a, b, dataflow.WS); err != nil {
		t.Fatal(err)
	}
	mm := op.MatMul{M: 10, K: 6, L: 9}
	df := dataflow.Dataflow{
		Order:  dataflow.Order{dataflow.DimK, dataflow.DimL, dataflow.DimM},
		Tiling: dataflow.Tiling{TM: 1, TK: n, TL: n},
	}
	want, err := cost.Evaluate(mm, df)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Traffic()
	if got.A != want.PerTensor[dataflow.TensorA] ||
		got.B != want.PerTensor[dataflow.TensorB] ||
		got.Out != want.PerTensor[dataflow.TensorC] {
		t.Fatalf("WS traffic %+v, cost model %v", got, want.PerTensor)
	}
}

// matMulIS holds A tiles stationary and re-streams B rows per M block: IS
// order with T_L = 1 streaming.
func TestTrafficISMatchesCostModel(t *testing.T) {
	const n = 4
	f, _ := NewFabric(n)
	a := tensor.New(10, 6).Seq(1)
	b := tensor.New(6, 9).Seq(2)
	if _, err := f.MatMul(a, b, dataflow.IS); err != nil {
		t.Fatal(err)
	}
	mm := op.MatMul{M: 10, K: 6, L: 9}
	df := dataflow.Dataflow{
		Order:  dataflow.OrderIS,
		Tiling: dataflow.Tiling{TM: n, TK: n, TL: 1},
	}
	want, err := cost.Evaluate(mm, df)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Traffic()
	if got.A != want.PerTensor[dataflow.TensorA] ||
		got.B != want.PerTensor[dataflow.TensorB] ||
		got.Out != want.PerTensor[dataflow.TensorC] {
		t.Fatalf("IS traffic %+v, cost model %v", got, want.PerTensor)
	}
}

// Tile fusion's observed traffic follows the exact per-loop formulas of the
// driver: the A row-block streams once per m iteration (stream buffer), B
// and D re-stream per m iteration, and E partials spill once per l tile.
func TestTrafficTileFusedExactFormulas(t *testing.T) {
	const n = 4
	f, _ := NewFabric(n)
	M, K, L, N := 10, 3, 9, 7
	a := tensor.New(M, K).Seq(1)
	b := tensor.New(K, L).Seq(2)
	d := tensor.New(L, N).Seq(3)
	if _, err := f.TileFused(a, b, d, nil); err != nil {
		t.Fatal(err)
	}
	nM := int64((M + n - 1) / n)
	nL := int64((L + n - 1) / n)
	got := f.Traffic()
	if got.A != int64(M*K) {
		t.Fatalf("A = %d, want %d", got.A, M*K)
	}
	if got.B != int64(K*L)*nM {
		t.Fatalf("B = %d, want %d", got.B, int64(K*L)*nM)
	}
	if got.D != int64(L*N)*nM {
		t.Fatalf("D = %d, want %d", got.D, int64(L*N)*nM)
	}
	if got.Out != int64(M*N)*nL {
		t.Fatalf("Out = %d, want %d", got.Out, int64(M*N)*nL)
	}
}

// Column fusion's observed traffic equals the analytical column pattern.
func TestTrafficColumnFusedMatchesFusionModel(t *testing.T) {
	const n = 4
	f, _ := NewFabric(n)
	a := tensor.New(10, 3).Seq(1)
	b := tensor.New(3, 9).Seq(2)
	d := tensor.New(9, 7).Seq(3)
	if _, err := f.ColumnFused(a, b, d, nil); err != nil {
		t.Fatal(err)
	}
	pair, err := fusion.NewPair(
		op.MatMul{M: 10, K: 3, L: 9},
		op.MatMul{M: 10, K: 9, L: 7},
	)
	if err != nil {
		t.Fatal(err)
	}
	fd := fusion.FusedDataflow{Pattern: fusion.PatternColumn, TM: n, TK: 3, TL: 1, TN: 7}
	want, err := fusion.Evaluate(pair, fd)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Traffic()
	if got.A != want.A || got.B != want.B || got.D != want.D || got.Out != want.E {
		t.Fatalf("column-fused traffic %+v, fusion model %+v", got, want)
	}
}

// Fusion's raison d'être, observed on real execution: the fused run moves
// strictly less data than the producer and consumer run separately, and the
// intermediate contributes nothing.
func TestTrafficFusionSavesIntermediate(t *testing.T) {
	const n = 4
	a := tensor.New(12, 4).Seq(1)
	b := tensor.New(4, 12).Seq(2)
	d := tensor.New(12, 4).Seq(3)

	unfused, _ := NewFabric(n)
	c, err := unfused.MatMul(a, b, dataflow.OS)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := unfused.MatMul(c, d, dataflow.OS); err != nil {
		t.Fatal(err)
	}

	fused, _ := NewFabric(n)
	if _, err := fused.TileFused(a, b, d, nil); err != nil {
		t.Fatal(err)
	}
	if fused.Traffic().Total() >= unfused.Traffic().Total() {
		t.Fatalf("fused %d did not beat unfused %d", fused.Traffic().Total(), unfused.Traffic().Total())
	}
}

func TestResetTraffic(t *testing.T) {
	f, _ := NewFabric(4)
	a := tensor.New(4, 4).Seq(1)
	b := tensor.New(4, 4).Seq(2)
	if _, err := f.MatMul(a, b, dataflow.OS); err != nil {
		t.Fatal(err)
	}
	if f.Traffic().Total() == 0 {
		t.Fatal("no traffic counted")
	}
	f.ResetTraffic()
	if f.Traffic().Total() != 0 {
		t.Fatal("reset did not clear traffic")
	}
}
