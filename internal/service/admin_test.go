package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"fusecu/api"
	"fusecu/internal/cost"
	"fusecu/internal/op"
	"fusecu/internal/search"
	"fusecu/internal/tablestore"
)

// do sends a bodyless request (GET/DELETE) and decodes a 200 response into
// out (which may be nil). It returns the status code and raw body.
func do(t *testing.T, ts *httptest.Server, method, path string, out any) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("close body: %v", err)
		}
	}()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s response %q: %v", path, raw, err)
		}
	}
	return resp.StatusCode, raw
}

// TestVersionEndpoint pins /v1/version: always on (no admin flag), GET
// only, and reporting exactly the triple that governs artifact and fleet
// compatibility.
func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var v api.VersionResponse
	if code, raw := do(t, ts, http.MethodGet, "/v1/version", &v); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	want := api.VersionResponse{
		APIVersion:         api.Version,
		CostModelVersion:   cost.ModelVersion,
		TableFormatVersion: search.TableFormatVersion,
	}
	if v != want {
		t.Fatalf("version = %+v, want %+v", v, want)
	}
	if code, raw := do(t, ts, http.MethodPost, "/v1/version", nil); code != http.StatusMethodNotAllowed ||
		errCode(t, raw) != api.CodeMethodNotAllowed {
		t.Fatalf("POST /v1/version: status %d body %s", code, raw)
	}
}

// TestAdminEndpointsGated: without EnableAdmin both table-admin endpoints
// answer 403 admin_disabled; /v1/version stays open.
func TestAdminEndpointsGated(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct{ method, path string }{
		{http.MethodGet, "/v1/tables"},
		{http.MethodDelete, "/v1/tables/0011223344556677"},
	} {
		code, raw := do(t, ts, tc.method, tc.path, nil)
		if code != http.StatusForbidden || errCode(t, raw) != api.CodeAdminDisabled {
			t.Fatalf("%s %s without -admin: status %d body %s", tc.method, tc.path, code, raw)
		}
	}
}

// TestTablesIntrospection drives two searches through an admin-enabled
// server and reads back GET /v1/tables: per-table content address, source,
// candidate count, hit count, and age must reflect the traffic.
func TestTablesIntrospection(t *testing.T) {
	_, ts := newTestServer(t, Config{EnableAdmin: true})
	mm := op.MatMul{Name: "intro", M: 16, K: 12, L: 10}
	for i := 0; i < 3; i++ { // 1 build + 2 registry hits
		if code, raw := post(t, ts, "/v1/search", searchBody(mm, 1024, "exhaustive"), nil); code != http.StatusOK {
			t.Fatalf("search: status %d: %s", code, raw)
		}
	}
	var tr api.TablesResponse
	if code, raw := do(t, ts, http.MethodGet, "/v1/tables", &tr); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if len(tr.Tables) != 1 {
		t.Fatalf("tables = %+v, want exactly one", tr.Tables)
	}
	ti := tr.Tables[0]
	wantHash := api.ShapeHash(mm.M, mm.K, mm.L, search.GridFull.String())
	if ti.ShapeHash != wantHash {
		t.Fatalf("shape hash %s, want %s", ti.ShapeHash, wantHash)
	}
	if ti.Op.M != mm.M || ti.Op.K != mm.K || ti.Op.L != mm.L || ti.Grid != "full" {
		t.Fatalf("table identity %+v, want %v over full", ti, mm)
	}
	if ti.Source != "built" {
		t.Fatalf("source %q, want built (no table store configured)", ti.Source)
	}
	if want := search.TableCandidates(op.MatMul{M: mm.M, K: mm.K, L: mm.L}, search.GridFull); ti.Candidates != want {
		t.Fatalf("candidates %d, want %d", ti.Candidates, want)
	}
	if ti.Hits != 2 {
		t.Fatalf("hits %d, want 2", ti.Hits)
	}
	if ti.AgeMS < 0 {
		t.Fatalf("age %dms is negative", ti.AgeMS)
	}
	if code, raw := do(t, ts, http.MethodPost, "/v1/tables", nil); code != http.StatusMethodNotAllowed ||
		errCode(t, raw) != api.CodeMethodNotAllowed {
		t.Fatalf("POST /v1/tables: status %d body %s", code, raw)
	}
}

// TestTableEvictEndpoint: DELETE /v1/tables/{shapeHash} drops the resident
// table (idempotently), validates the hash shape, and the next request for
// the shape resolves afresh.
func TestTableEvictEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{EnableAdmin: true})
	mm := op.MatMul{Name: "evict", M: 14, K: 12, L: 10}
	if code, raw := post(t, ts, "/v1/search", searchBody(mm, 1024, "exhaustive"), nil); code != http.StatusOK {
		t.Fatalf("search: status %d: %s", code, raw)
	}
	hash := api.ShapeHash(mm.M, mm.K, mm.L, search.GridFull.String())

	var ev api.EvictTableResponse
	if code, raw := do(t, ts, http.MethodDelete, "/v1/tables/"+hash, &ev); code != http.StatusOK {
		t.Fatalf("delete: status %d: %s", code, raw)
	}
	if !ev.Evicted || ev.ShapeHash != hash {
		t.Fatalf("evict response %+v, want evicted %s", ev, hash)
	}
	if s.tables.len() != 0 {
		t.Fatalf("%d tables resident after evict", s.tables.len())
	}
	// Idempotent: a second delete reports evicted=false.
	if code, _ := do(t, ts, http.MethodDelete, "/v1/tables/"+hash, &ev); code != http.StatusOK || ev.Evicted {
		t.Fatalf("second delete: status %d, evicted %v", code, ev.Evicted)
	}
	// Malformed hashes are rejected before touching the registry.
	if code, raw := do(t, ts, http.MethodDelete, "/v1/tables/not-a-hash", nil); code != http.StatusBadRequest ||
		errCode(t, raw) != api.CodeInvalidRequest {
		t.Fatalf("bad hash: status %d body %s", code, raw)
	}
	// GET on the item path is not allowed.
	if code, raw := do(t, ts, http.MethodGet, "/v1/tables/"+hash, nil); code != http.StatusMethodNotAllowed ||
		errCode(t, raw) != api.CodeMethodNotAllowed {
		t.Fatalf("GET item: status %d body %s", code, raw)
	}
	// The shape still answers: it rebuilds on next use.
	if code, raw := post(t, ts, "/v1/search", searchBody(mm, 1024, "exhaustive"), nil); code != http.StatusOK {
		t.Fatalf("post-evict search: status %d: %s", code, raw)
	}
	if tb := s.Registry().Counter("table_builds").Value(); tb != 2 {
		t.Fatalf("table_builds = %d, want 2 (build, evict, rebuild)", tb)
	}
}

// newStoreServer builds a server fronted by a tablestore over dir.
func newStoreServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	st, err := tablestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TableStore = st
	return newTestServer(t, cfg)
}

// TestSearchServedFromDiskArtifact is the service half of the persistence
// acceptance: with a pre-generated artifact on disk, a search request is
// answered bit-identically to the reference with zero runtime builds, and
// the introspection reports the table as disk-sourced.
func TestSearchServedFromDiskArtifact(t *testing.T) {
	dir := t.TempDir()
	mm := op.MatMul{Name: "disk", M: 36, K: 28, L: 30}
	st, err := tablestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := search.NewCandTable(op.MatMul{M: mm.M, K: mm.K, L: mm.L}, search.GridFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(tab); err != nil {
		t.Fatal(err)
	}

	s, ts := newStoreServer(t, dir, Config{EnableAdmin: true})
	want, err := search.ReferenceExhaustive(mm, 2048)
	if err != nil {
		t.Fatal(err)
	}
	var resp searchResponse
	if code, raw := post(t, ts, "/v1/search", searchBody(mm, 2048, "exhaustive"), &resp); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if resp.Dataflow.MemoryAccess != want.Access.Total ||
		resp.Dataflow.TM != want.Dataflow.Tiling.TM ||
		resp.Dataflow.TK != want.Dataflow.Tiling.TK ||
		resp.Dataflow.TL != want.Dataflow.Tiling.TL {
		t.Fatalf("disk-served answer %+v != reference %+v", resp.Dataflow, want.Dataflow)
	}
	if loads, builds := s.Registry().Counter("table_loads").Value(),
		s.Registry().Counter("table_builds").Value(); loads != 1 || builds != 0 {
		t.Fatalf("table_loads/table_builds = %d/%d, want 1/0", loads, builds)
	}
	var tr api.TablesResponse
	if code, raw := do(t, ts, http.MethodGet, "/v1/tables", &tr); code != http.StatusOK {
		t.Fatalf("tables: status %d: %s", code, raw)
	}
	if len(tr.Tables) != 1 || tr.Tables[0].Source != "disk" {
		t.Fatalf("introspection %+v, want one disk-sourced table", tr.Tables)
	}
}

// TestCorruptArtifactFallsBackToBuild is the service half of the corruption
// contract: a truncated artifact is rejected on load (table_load_errors,
// reason logged), the shape is rebuilt fresh, and the answer matches the
// reference — a corrupt file can degrade startup cost, never correctness.
func TestCorruptArtifactFallsBackToBuild(t *testing.T) {
	dir := t.TempDir()
	mm := op.MatMul{Name: "corrupt", M: 16, K: 12, L: 10}
	st, err := tablestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	bare := op.MatMul{M: mm.M, K: mm.K, L: mm.L}
	tab, err := search.NewCandTable(bare, search.GridFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(tab); err != nil {
		t.Fatal(err)
	}
	path := st.Path(bare, search.GridFull)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	var logs []string
	s, ts := newStoreServer(t, dir, Config{EnableAdmin: true, Logf: func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}})
	want, err := search.ReferenceExhaustive(mm, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var resp searchResponse
	if code, raw := post(t, ts, "/v1/search", searchBody(mm, 1024, "exhaustive"), &resp); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if resp.Degraded || resp.Dataflow.MemoryAccess != want.Access.Total {
		t.Fatalf("fallback answer %+v != reference %+v", resp.Dataflow, want.Dataflow)
	}
	if le, tb := s.Registry().Counter("table_load_errors").Value(),
		s.Registry().Counter("table_builds").Value(); le != 1 || tb != 1 {
		t.Fatalf("table_load_errors/table_builds = %d/%d, want 1/1", le, tb)
	}
	if len(logs) != 1 || !strings.Contains(logs[0], "rejecting disk artifact") {
		t.Fatalf("load failure not logged with a reason: %q", logs)
	}
	var tr api.TablesResponse
	if code, raw := do(t, ts, http.MethodGet, "/v1/tables", &tr); code != http.StatusOK {
		t.Fatalf("tables: status %d: %s", code, raw)
	}
	if len(tr.Tables) != 1 || tr.Tables[0].Source != "built" {
		t.Fatalf("introspection %+v, want one built table", tr.Tables)
	}
}

// TestEvictThenReloadFromDisk: DELETE on a disk-backed shape drops the
// resident copy, and the next request loads the artifact again instead of
// rebuilding — the admin workflow for picking up a republished artifact.
func TestEvictThenReloadFromDisk(t *testing.T) {
	dir := t.TempDir()
	mm := op.MatMul{Name: "reload", M: 14, K: 10, L: 8}
	st, err := tablestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	bare := op.MatMul{M: mm.M, K: mm.K, L: mm.L}
	tab, err := search.NewCandTable(bare, search.GridFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(tab); err != nil {
		t.Fatal(err)
	}
	s, ts := newStoreServer(t, dir, Config{EnableAdmin: true})
	body := searchBody(mm, 1024, "exhaustive")
	if code, raw := post(t, ts, "/v1/search", body, nil); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	hash := api.ShapeHash(mm.M, mm.K, mm.L, search.GridFull.String())
	if code, raw := do(t, ts, http.MethodDelete, "/v1/tables/"+hash, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d: %s", code, raw)
	}
	if code, raw := post(t, ts, "/v1/search", body, nil); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if loads, builds := s.Registry().Counter("table_loads").Value(),
		s.Registry().Counter("table_builds").Value(); loads != 2 || builds != 0 {
		t.Fatalf("table_loads/table_builds = %d/%d, want 2/0", loads, builds)
	}
}
