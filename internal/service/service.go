// Package service is the HTTP/JSON façade of the FuseCU library: the
// fusecu-serve daemon. It exposes the paper's four capabilities as REST
// endpoints —
//
//   - POST /v1/optimize  — Principles 1–3, one-shot intra-operator optimum
//   - POST /v1/plan      — Principle 4, chain-level fusion planning
//   - POST /v1/search    — the DAT-style search baseline (parallel, memoized)
//   - POST /v1/evaluate  — cross-platform workload evaluation (Fig. 10/11)
//   - GET  /metrics      — Prometheus-style text exposition
//   - GET  /healthz      — liveness probe (200 while the process lives)
//   - GET  /readyz       — readiness probe (503 before SetReady and during
//     graceful drain, so load balancers stop routing to a dying instance)
//
// plus the operational substrate an accelerator-compiler service needs:
// strict request validation mapped onto the library's unified error
// sentinels, per-request deadlines whose cancellation is threaded into the
// search worker pools, a bounded-concurrency admission gate (429 +
// Retry-After on saturation), and a process-wide shared evaluation cache so
// repeated operators across requests hit memoized cost evaluations.
//
// The resilience layer on top:
//
//   - Every registered handler runs inside the recovered panic-isolation
//     middleware: a panic maps to a 500 internal_error envelope and a
//     panics_recovered counter, and the process keeps serving.
//   - /v1/search degrades gracefully: when the scan has consumed the
//     configured fraction of its deadline budget — or the engine itself
//     failed with errs.ErrInternal — the handler answers with the
//     principle-based one-shot optimum and "degraded": true instead of a
//     504, turning the paper's closed-form result into the service's
//     always-available fallback.
//   - Config.Injector arms deterministic fault-injection sites
//     ("service.<endpoint>") in the request path for chaos testing.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"fusecu/api"
	"fusecu/internal/errs"
	"fusecu/internal/faultinject"
	"fusecu/internal/metrics"
	"fusecu/internal/search"
	"fusecu/internal/tablestore"
)

// Config tunes a Server. The zero value selects production defaults.
type Config struct {
	// MaxInFlight caps concurrently admitted /v1/* requests; excess
	// requests are rejected with 429 + Retry-After. Default 64.
	MaxInFlight int
	// DefaultTimeout bounds each request when the client does not pass a
	// tighter timeout_ms. Default 30s.
	DefaultTimeout time.Duration
	// SearchWorkers sizes the per-request search worker pool; 0 means
	// GOMAXPROCS (the search package's default).
	SearchWorkers int
	// Polish selects the auto-engine polish stage: the closed-form analytic
	// optimizer by default (the zero value), or the genetic algorithm behind
	// fusecu-serve's -polish=ga escape hatch. Successful auto searches under
	// the default mode are counted in the analytic_polish metric.
	Polish search.PolishMode
	// RetryAfter is the Retry-After hint (seconds) on 429. Default 1.
	RetryAfter int
	// DegradeFraction is the fraction of a /v1/search request's deadline
	// budget the scan may consume before the handler abandons it and answers
	// with the principle-based one-shot optimum ("degraded": true). Default
	// 0.9; must stay in (0, 1). DisableDegrade turns the fallback off.
	DegradeFraction float64
	// DisableDegrade forces deadline-pressured searches to 504 instead of
	// falling back to the principle optimizer.
	DisableDegrade bool
	// Injector arms this server's fault-injection sites ("service.optimize",
	// "service.search", …), fired once per admitted request before the
	// handler body. nil (the default) leaves every site disarmed.
	Injector *faultinject.Injector
	// TableCapacity bounds the number of per-shape candidate tables kept
	// resident for /v1/search (LRU-evicted beyond it). Default 64.
	TableCapacity int
	// TableMaxCandidates caps the lattice size a request may materialize as
	// a footprint-indexed candidate table; shapes above it use the scan
	// engines (and, under deadline pressure, the degraded fallback) as
	// before. Default 2^21 candidates (~16 MB resident per table bound).
	TableMaxCandidates int64
	// DisableTables turns the candidate-table fast path off entirely,
	// restoring the per-request scan behaviour for every shape.
	DisableTables bool
	// TableStore, when non-nil, fronts the table registry with a disk store
	// of precomputed artifacts (fusecu-tablegen output): resolution becomes
	// disk → LRU → build. Artifacts are fully re-validated on load; a
	// corrupt or stale file is logged, counted in table_load_errors, and
	// the shape falls back to a fresh build — never a wrong answer.
	TableStore *tablestore.Store
	// EnableAdmin exposes the table-administration endpoints
	// (GET /v1/tables, DELETE /v1/tables/{shapeHash}); without it they
	// answer 403 admin_disabled. /v1/version is always on.
	EnableAdmin bool
	// Logf receives operational log lines (table-load fallbacks and the
	// like). nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 1
	}
	if c.DegradeFraction <= 0 || c.DegradeFraction >= 1 {
		c.DegradeFraction = 0.9
	}
	if c.TableCapacity <= 0 {
		c.TableCapacity = 64
	}
	if c.TableMaxCandidates <= 0 {
		c.TableMaxCandidates = 1 << 21
	}
	return c
}

// Server holds the shared state of the service: the evaluation cache every
// search request feeds, the metrics registry, the admission gate, and the
// readiness/drain state machine.
type Server struct {
	cfg   Config
	cache *search.EvalCache
	reg   *metrics.Registry
	// tables shares footprint-indexed candidate tables across requests for
	// identically shaped operators (metrics: table_builds/hits/evictions).
	tables *tableRegistry
	gate   chan struct{}
	// ready gates /readyz only: the daemon flips it true once the listener
	// is up and false when draining, so load balancers steer traffic away
	// without affecting requests already routed here.
	ready atomic.Bool
	// draining makes every /v1/* request fail fast with 503 + Connection:
	// close; probes and /metrics keep answering so operators can watch the
	// drain.
	draining atomic.Bool
}

// New builds a Server with cfg (zero value → defaults). The server starts
// not-ready; call SetReady(true) once the listener is accepting.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: search.NewEvalCache(),
		reg:   metrics.NewRegistry(),
		gate:  make(chan struct{}, cfg.MaxInFlight),
	}
	s.tables = newTableRegistry(cfg.TableCapacity, s.cache, s.reg, cfg.TableStore, s.logf)
	return s
}

// logf forwards to Config.Logf, discarding when none is configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// SetReady flips the readiness probe. Liveness (/healthz) is unaffected.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// BeginDrain moves the server into drain mode: /readyz turns 503, and every
// subsequently arriving /v1/* request is rejected fast with 503 +
// Connection: close instead of being accepted into a process that is about
// to stop. Requests already in flight are unaffected.
func (s *Server) BeginDrain() {
	s.ready.Store(false)
	s.draining.Store(true)
}

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Cache exposes the process-wide evaluation cache (tests assert hit rates).
func (s *Server) Cache() *search.EvalCache { return s.cache }

// Registry exposes the metrics registry (tests assert counters and the
// in-flight high-water mark).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Handler returns the service's routing table. Every registration is
// wrapped in the recovered panic-isolation middleware — enforced by the
// fusecu-vet unrecoveredhandler analyzer.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/optimize", s.recovered("optimize", s.endpoint("optimize", s.handleOptimize)))
	mux.HandleFunc("/v1/plan", s.recovered("plan", s.endpoint("plan", s.handlePlan)))
	mux.HandleFunc("/v1/search", s.recovered("search", s.endpoint("search", s.handleSearch)))
	mux.HandleFunc("/v1/evaluate", s.recovered("evaluate", s.endpoint("evaluate", s.handleEvaluate)))
	mux.HandleFunc("/v1/version", s.recovered("version", s.handleVersion))
	mux.HandleFunc("/v1/tables", s.recovered("tables", s.handleTables))
	mux.HandleFunc("/v1/tables/{shapeHash}", s.recovered("table_evict", s.handleTableEvict))
	mux.HandleFunc("/metrics", s.recovered("metrics", s.handleMetrics))
	mux.HandleFunc("/healthz", s.recovered("healthz", s.handleHealthz))
	mux.HandleFunc("/readyz", s.recovered("readyz", s.handleReadyz))
	return mux
}

// recovered is the panic-isolation middleware: a panic anywhere below it —
// an injected fault, a handler bug, a library invariant violation — is
// mapped to a 500 internal_error envelope and counted in panics_recovered,
// and the process keeps serving. (net/http's own recover would also keep the
// process alive for request-goroutine panics, but it kills the connection
// without a response; this boundary keeps the wire contract.)
func (s *Server) recovered(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec) // deliberate connection abort; not a fault
				}
				s.reg.Counter("panics_recovered").Inc()
				s.writeError(w, name, &apiError{
					status: http.StatusInternalServerError,
					code:   api.CodeInternalError,
					err:    fmt.Errorf("service: panic in %s handler: %v", name, rec),
				})
			}
		}()
		h(w, r)
	}
}

// apiError is a handler failure bound to a transport status. Handlers
// normally return bare library errors; toAPIError classifies them.
type apiError struct {
	status int
	code   string
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }
func (e *apiError) Unwrap() error { return e.err }

// badRequest wraps a request-shape error (malformed JSON, missing field)
// that no library sentinel covers.
func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: api.CodeInvalidRequest, err: fmt.Errorf(format, args...)}
}

// statusClientClosedRequest is the de-facto (nginx) status for a request
// aborted by the client; net/http has no named constant for it.
const statusClientClosedRequest = 499

// toAPIError maps any handler error onto the unified error model: library
// sentinels decide the status; context errors map to timeout/cancellation
// statuses; everything else is a 500.
func toAPIError(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	switch {
	case errors.Is(err, errs.ErrInvalidOperator),
		errors.Is(err, errs.ErrInvalidChain),
		errors.Is(err, errs.ErrInvalidDataflow):
		return &apiError{status: http.StatusBadRequest, code: api.CodeInvalidRequest, err: err}
	case errors.Is(err, errs.ErrBufferTooSmall):
		return &apiError{status: http.StatusUnprocessableEntity, code: api.CodeBufferTooSmall, err: err}
	case errors.Is(err, errs.ErrInfeasible):
		return &apiError{status: http.StatusUnprocessableEntity, code: api.CodeInfeasible, err: err}
	case errors.Is(err, errs.ErrUnknownPlatform),
		errors.Is(err, errs.ErrUnknownModel):
		return &apiError{status: http.StatusNotFound, code: api.CodeNotFound, err: err}
	case errors.Is(err, errs.ErrInternal):
		return &apiError{status: http.StatusInternalServerError, code: api.CodeInternalError, err: err}
	case errors.Is(err, context.DeadlineExceeded):
		return &apiError{status: http.StatusGatewayTimeout, code: api.CodeDeadlineExceeded, err: err}
	case errors.Is(err, context.Canceled):
		return &apiError{status: statusClientClosedRequest, code: api.CodeClientClosedRequest, err: err}
	}
	return &apiError{status: http.StatusInternalServerError, code: api.CodeInternal, err: err}
}

// errorEnvelope is the uniform JSON error body — the api package's
// ErrorEnvelope, aliased so in-package tests read naturally.
type (
	errorEnvelope = api.ErrorEnvelope
	errorBody     = api.ErrorBody
)

// handlerFunc is a typed endpoint body: decode already done, context
// already deadline-bound; return a JSON-marshalable response or an error.
type handlerFunc func(ctx context.Context, body []byte) (any, error)

// endpoint wraps h with the service middleware: method check, admission
// gate, per-request deadline, metrics, and the error envelope.
func (s *Server) endpoint(name string, h handlerFunc) http.HandlerFunc {
	latency := s.reg.Histogram("http_latency_ms:"+name, nil)
	inflight := s.reg.Gauge("http_inflight")
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			// A request that raced the drain gets a fast, explicit 503 with
			// Connection: close so the client re-resolves to a live instance
			// instead of queueing behind a server that is about to stop.
			w.Header().Set("Connection", "close")
			s.writeError(w, name, &apiError{
				status: http.StatusServiceUnavailable,
				code:   api.CodeDraining,
				err:    fmt.Errorf("service: draining, not accepting new requests"),
			})
			return
		}
		if r.Method != http.MethodPost {
			s.writeError(w, name, &apiError{
				status: http.StatusMethodNotAllowed,
				code:   api.CodeMethodNotAllowed,
				err:    fmt.Errorf("service: %s requires POST", r.URL.Path),
			})
			return
		}
		select {
		case s.gate <- struct{}{}:
		default:
			w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfter))
			s.reg.Counter("http_rejected_total").Inc()
			s.writeError(w, name, &apiError{
				status: http.StatusTooManyRequests,
				code:   api.CodeOverloaded,
				err:    fmt.Errorf("service: %d requests already in flight", s.cfg.MaxInFlight),
			})
			return
		}
		defer func() { <-s.gate }()
		inflight.Add(1)
		defer inflight.Add(-1)

		// The per-endpoint fault-injection site: chaos tests arm it to
		// return errors (mapped through the envelope), panic (recovered by
		// the middleware above), or stall (exercising deadlines and client
		// retries). Disarmed it is a nil-receiver no-op.
		if err := s.cfg.Injector.Fire("service." + name); err != nil {
			s.writeError(w, name, fmt.Errorf("service: %s: %w: %w", name, err, errs.ErrInternal))
			return
		}

		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			s.writeError(w, name, badRequest("service: reading body: %v", err))
			return
		}
		timeout := s.cfg.DefaultTimeout
		if ms := requestTimeoutMS(body); ms > 0 && time.Duration(ms)*time.Millisecond < timeout {
			timeout = time.Duration(ms) * time.Millisecond
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		start := time.Now()
		resp, herr := h(ctx, body)
		latency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		if herr != nil {
			s.writeError(w, name, herr)
			return
		}
		s.reg.Counter(fmt.Sprintf("http_requests_total:%s:%d", name, http.StatusOK)).Inc()
		s.reg.Counter(fmt.Sprintf("http_responses_total:%d", http.StatusOK)).Inc()
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			// Headers are gone; nothing useful to send. Count it.
			s.reg.Counter("http_encode_errors_total").Inc()
		}
	}
}

// writeError renders the error envelope and bumps the per-endpoint and
// per-code counters (the latter aggregate 400/422/429/499/500/503/504 across
// endpoints for the /metrics dashboard).
func (s *Server) writeError(w http.ResponseWriter, name string, err error) {
	ae := toAPIError(err)
	s.reg.Counter(fmt.Sprintf("http_requests_total:%s:%d", name, ae.status)).Inc()
	s.reg.Counter(fmt.Sprintf("http_responses_total:%d", ae.status)).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ae.status)
	if encErr := json.NewEncoder(w).Encode(errorEnvelope{Error: errorBody{Code: ae.code, Message: ae.err.Error()}}); encErr != nil {
		s.reg.Counter("http_encode_errors_total").Inc()
	}
}

// requestTimeoutMS peeks the optional timeout_ms field shared by every
// request schema, before strict decoding runs.
func requestTimeoutMS(body []byte) int64 {
	var peek struct {
		TimeoutMS int64 `json:"timeout_ms"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		return 0
	}
	return peek.TimeoutMS
}

// decodeStrict unmarshals body into v rejecting unknown fields and
// trailing garbage — the validation layer of the error model.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("service: bad request body: %v", err)
	}
	if dec.More() {
		return badRequest("service: trailing data after JSON body")
	}
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Fold the shared cache's counters in at scrape time so operators see
	// hit rate without a background updater.
	st := s.cache.Stats()
	setCounter(s.reg.Counter("search_cache_hits_total"), st.Hits)
	setCounter(s.reg.Counter("search_cache_misses_total"), st.Misses)
	setCounter(s.reg.Counter("search_cache_entries"), st.Entries)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WriteText(w); err != nil {
		s.reg.Counter("http_encode_errors_total").Inc()
	}
}

// setCounter forces a counter to an absolute externally-tracked value.
func setCounter(c *metrics.Counter, v int64) {
	if d := v - c.Value(); d > 0 {
		c.Add(d)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if _, err := io.WriteString(w, `{"status":"ok"}`+"\n"); err != nil {
		s.reg.Counter("http_encode_errors_total").Inc()
	}
}

// handleReadyz is the readiness probe: 200 only between SetReady(true) and
// BeginDrain. Unlike /healthz it is a routing signal, not a liveness one.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	status, body := http.StatusOK, `{"status":"ready"}`
	switch {
	case s.draining.Load():
		status, body = http.StatusServiceUnavailable, `{"status":"draining"}`
	case !s.ready.Load():
		status, body = http.StatusServiceUnavailable, `{"status":"not_ready"}`
	}
	w.WriteHeader(status)
	if _, err := io.WriteString(w, body+"\n"); err != nil {
		s.reg.Counter("http_encode_errors_total").Inc()
	}
}
