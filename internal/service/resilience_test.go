package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"fusecu/internal/core"
	"fusecu/internal/faultinject"
	"fusecu/internal/op"
	"fusecu/internal/search"
)

// --- panic isolation --------------------------------------------------------

func TestPanicIsolationMapsToInternalError(t *testing.T) {
	in := faultinject.New(1, faultinject.Plan{Site: "service.optimize", Mode: faultinject.ModePanic, Times: 1})
	s, ts := newTestServer(t, Config{Injector: in})

	body := `{"op":{"m":64,"k":64,"l":64},"buffer":4096}`
	code, raw := post(t, ts, "/v1/optimize", body, nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (%s)", code, raw)
	}
	if got := errCode(t, raw); got != "internal_error" {
		t.Fatalf("error code = %q, want internal_error", got)
	}
	if got := s.Registry().Counter("panics_recovered").Value(); got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}
	// The process kept serving: the very next request succeeds.
	if code, raw := post(t, ts, "/v1/optimize", body, nil); code != http.StatusOK {
		t.Fatalf("post-panic request: status %d (%s)", code, raw)
	}
}

func TestInjectedErrorMapsToInternalError(t *testing.T) {
	in := faultinject.New(1, faultinject.Plan{Site: "service.plan", Mode: faultinject.ModeError, Times: 1})
	s, ts := newTestServer(t, Config{Injector: in})
	code, raw := post(t, ts, "/v1/plan",
		`{"name":"p","ops":[{"m":8,"k":8,"l":8}],"buffer":64}`, nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (%s)", code, raw)
	}
	if got := errCode(t, raw); got != "internal_error" {
		t.Fatalf("error code = %q, want internal_error", got)
	}
	if got := s.Registry().Counter("panics_recovered").Value(); got != 0 {
		t.Fatalf("error injection recorded a panic: %d", got)
	}
}

// TestChaosPanicWaveKeepsServing is the headline chaos test: 1 of every 8
// requests in a 96-client wave panics inside the service, and the server
// must (a) never die, (b) answer exactly the injected number of 500
// internal_error envelopes, and (c) answer every clean request with the
// reference engine's bit-identical optimum. Counter-based injection makes
// the split exact regardless of goroutine interleaving; runs under -race via
// make test-race-service.
func TestChaosPanicWaveKeepsServing(t *testing.T) {
	const clients, every = 96, 8
	in := faultinject.New(1, faultinject.Plan{Site: "service.search", Mode: faultinject.ModePanic, Every: every})
	s, ts := newTestServer(t, Config{MaxInFlight: clients, Injector: in})

	want, err := search.ReferenceExhaustive(loadOp, 4096)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"op":{"name":"load","m":%d,"k":%d,"l":%d},"buffer":4096,"engine":"exhaustive","workers":1}`,
		loadOp.M, loadOp.K, loadOp.L)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var ok200, fail500, other int
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/search", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("client %d: transport error (connection dropped?): %v", i, err)
				return
			}
			raw := mustReadAll(t, resp)
			if cerr := resp.Body.Close(); cerr != nil {
				t.Errorf("client %d close: %v", i, cerr)
			}
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				ok200++
				var sr searchResponse
				if err := json.Unmarshal(raw, &sr); err != nil {
					t.Errorf("client %d decode: %v", i, err)
					return
				}
				if sr.Degraded || sr.Dataflow.MemoryAccess != want.Access.Total ||
					sr.Dataflow.TM != want.Dataflow.Tiling.TM ||
					sr.Dataflow.TK != want.Dataflow.Tiling.TK ||
					sr.Dataflow.TL != want.Dataflow.Tiling.TL {
					t.Errorf("client %d: clean request diverged from reference: %+v", i, sr)
				}
			case http.StatusInternalServerError:
				fail500++
				var env errorEnvelope
				if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != "internal_error" {
					t.Errorf("client %d: 500 with wrong envelope: %s", i, raw)
				}
			default:
				other++
				t.Errorf("client %d: unexpected status %d: %s", i, resp.StatusCode, raw)
			}
		}(i)
	}
	wg.Wait()

	wantPanics := clients / every
	if fail500 != wantPanics || ok200 != clients-wantPanics || other != 0 {
		t.Fatalf("wave outcome: %d ok, %d failed, %d other; want %d/%d/0",
			ok200, fail500, other, clients-wantPanics, wantPanics)
	}
	if got := s.Registry().Counter("panics_recovered").Value(); got != int64(wantPanics) {
		t.Fatalf("panics_recovered = %d, want %d", got, wantPanics)
	}
	if got := in.Fires("service.search"); got != int64(wantPanics) {
		t.Fatalf("injector fired %d times, want %d", got, wantPanics)
	}
}

// --- graceful degradation ---------------------------------------------------

// degradeOp cannot be exhaustively scanned within the test deadlines (67M
// candidate evaluations), so every request over it is deadline-pressured.
var degradeOp = op.MatMul{Name: "big", M: 224, K: 224, L: 224}

func TestDeadlinePressureDegradesToPrinciple(t *testing.T) {
	s, ts := newTestServer(t, Config{DefaultTimeout: 150 * time.Millisecond})
	const buffer = 1 << 20
	want, err := core.Optimize(degradeOp, buffer)
	if err != nil {
		t.Fatal(err)
	}
	var resp searchResponse
	code, raw := post(t, ts, "/v1/search",
		fmt.Sprintf(`{"op":{"name":"big","m":224,"k":224,"l":224},"buffer":%d,"engine":"exhaustive"}`, buffer), &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200 degraded (%s)", code, raw)
	}
	if !resp.Degraded || resp.DegradedReason != "deadline" || resp.Method != "principle" {
		t.Fatalf("response not marked degraded-by-deadline: %+v", resp)
	}
	if resp.Dataflow.MemoryAccess != want.Access.Total {
		t.Fatalf("degraded MA %d != principle optimum %d", resp.Dataflow.MemoryAccess, want.Access.Total)
	}
	if got := s.Registry().Counter("degraded_responses").Value(); got != 1 {
		t.Fatalf("degraded_responses = %d, want 1", got)
	}
}

// TestDegradedConformance sweeps operators and buffers and asserts the
// degraded answer's contract: always feasible (footprint within the buffer)
// and exactly the principle optimum — never worse.
func TestDegradedConformance(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultTimeout: 80 * time.Millisecond})
	cases := []struct {
		mm     op.MatMul
		buffer int64
	}{
		{op.MatMul{Name: "cube160", M: 160, K: 160, L: 160}, 16 << 10},
		{op.MatMul{Name: "cube192", M: 192, K: 192, L: 192}, 64 << 10},
		{op.MatMul{Name: "wide", M: 256, K: 64, L: 256}, 8 << 10},
		{op.MatMul{Name: "tall", M: 512, K: 96, L: 128}, 128 << 10},
	}
	for _, tc := range cases {
		t.Run(tc.mm.Name, func(t *testing.T) {
			want, err := core.Optimize(tc.mm, tc.buffer)
			if err != nil {
				t.Fatal(err)
			}
			var resp searchResponse
			body := fmt.Sprintf(`{"op":{"name":%q,"m":%d,"k":%d,"l":%d},"buffer":%d,"engine":"exhaustive"}`,
				tc.mm.Name, tc.mm.M, tc.mm.K, tc.mm.L, tc.buffer)
			code, raw := post(t, ts, "/v1/search", body, &resp)
			if code != http.StatusOK {
				t.Fatalf("status = %d (%s)", code, raw)
			}
			if !resp.Degraded {
				t.Fatalf("scan unexpectedly finished; response not degraded: %+v", resp)
			}
			tm, tk, tl := int64(resp.Dataflow.TM), int64(resp.Dataflow.TK), int64(resp.Dataflow.TL)
			if fp := tm*tk + tk*tl + tm*tl; fp > tc.buffer {
				t.Fatalf("degraded tiling infeasible: footprint %d > buffer %d", fp, tc.buffer)
			}
			if resp.Dataflow.MemoryAccess != want.Access.Total {
				t.Fatalf("degraded MA %d != principle optimum %d", resp.Dataflow.MemoryAccess, want.Access.Total)
			}
		})
	}
}

// TestEngineFailureDegrades: a contained engine panic (injected at the
// search-eval site) also triggers the principle fallback, so an internal
// search bug costs accuracy of the baseline comparison, not availability.
func TestEngineFailureDegrades(t *testing.T) {
	faultinject.Activate(faultinject.New(1,
		faultinject.Plan{Site: search.SiteEval, Mode: faultinject.ModePanic, Times: 1}))
	t.Cleanup(faultinject.Deactivate)

	s, ts := newTestServer(t, Config{})
	want, err := core.Optimize(refOp, 4096)
	if err != nil {
		t.Fatal(err)
	}
	var resp searchResponse
	code, raw := post(t, ts, "/v1/search",
		`{"op":{"name":"ref","m":48,"k":32,"l":40},"buffer":4096,"engine":"exhaustive","workers":1}`, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200 degraded (%s)", code, raw)
	}
	if !resp.Degraded || resp.DegradedReason != "engine_failure" {
		t.Fatalf("response not marked degraded-by-engine-failure: %+v", resp)
	}
	if resp.Dataflow.MemoryAccess != want.Access.Total {
		t.Fatalf("degraded MA %d != principle optimum %d", resp.Dataflow.MemoryAccess, want.Access.Total)
	}
	if got := s.Registry().Counter("panics_recovered").Value(); got != 0 {
		t.Fatalf("engine panic leaked to the middleware: panics_recovered = %d", got)
	}
}

func TestDisableDegradeRestores504(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultTimeout: 60 * time.Millisecond, DisableDegrade: true})
	code, raw := post(t, ts, "/v1/search",
		`{"op":{"m":224,"k":224,"l":224},"buffer":1048576,"engine":"exhaustive"}`, nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 with degradation disabled (%s)", code, raw)
	}
}

// --- readiness and drain ----------------------------------------------------

func getStatus(t *testing.T, ts string, path string) (int, http.Header) {
	t.Helper()
	resp, err := http.Get(ts + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Errorf("close: %v", cerr)
		}
	}()
	return resp.StatusCode, resp.Header
}

func TestReadyzLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if code, _ := getStatus(t, ts.URL, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("fresh server readyz = %d, want 503", code)
	}
	s.SetReady(true)
	if code, _ := getStatus(t, ts.URL, "/readyz"); code != http.StatusOK {
		t.Fatalf("ready server readyz = %d, want 200", code)
	}
	s.BeginDrain()
	if code, _ := getStatus(t, ts.URL, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining server readyz = %d, want 503", code)
	}
	// Liveness is independent of readiness throughout.
	if code, _ := getStatus(t, ts.URL, "/healthz"); code != http.StatusOK {
		t.Fatal("healthz went down during drain")
	}
}

func TestDrainRejectsNewRequestsFast(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.SetReady(true)
	s.BeginDrain()
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
		strings.NewReader(`{"op":{"m":8,"k":8,"l":8},"buffer":64}`))
	if err != nil {
		t.Fatal(err)
	}
	raw := mustReadAll(t, resp)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (%s)", resp.StatusCode, raw)
	}
	if got := errCode(t, raw); got != "draining" {
		t.Fatalf("error code = %q, want draining", got)
	}
	if resp.Close != true && !strings.EqualFold(resp.Header.Get("Connection"), "close") {
		t.Fatalf("drain rejection did not ask to close the connection (headers %v)", resp.Header)
	}
	// Probes and metrics still answer so operators can watch the drain.
	if code, _ := getStatus(t, ts.URL, "/metrics"); code != http.StatusOK {
		t.Fatal("metrics went down during drain")
	}
}

// --- per-code counters ------------------------------------------------------

func TestPerCodeResponseCounters(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	post(t, ts, "/v1/optimize", `{"op":{"m":64,"k":64,"l":64},"buffer":4096}`, nil) // 200
	post(t, ts, "/v1/optimize", `{"op":`, nil)                                      // 400
	post(t, ts, "/v1/optimize", `{"op":{"m":8,"k":8,"l":8},"buffer":1}`, nil)       // 422
	s.BeginDrain()
	post(t, ts, "/v1/optimize", `{"op":{"m":8,"k":8,"l":8},"buffer":64}`, nil) // 503

	for code, want := range map[int]int64{200: 1, 400: 1, 422: 1, 503: 1} {
		if got := s.Registry().Counter(fmt.Sprintf("http_responses_total:%d", code)).Value(); got != want {
			t.Errorf("http_responses_total:%d = %d, want %d", code, got, want)
		}
	}
	// The aggregate counters render on /metrics alongside the per-endpoint ones.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw := mustReadAll(t, resp)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	for _, want := range []string{"http_responses_total:200 1", "http_responses_total:503 1"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
