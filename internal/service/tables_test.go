package service

import (
	"fmt"
	"net/http"
	"testing"

	"fusecu/internal/faultinject"
	"fusecu/internal/op"
	"fusecu/internal/search"
)

// searchBody builds a /v1/search request body for mm.
func searchBody(mm op.MatMul, buffer int64, engine string) string {
	return fmt.Sprintf(`{"op":{"name":%q,"m":%d,"k":%d,"l":%d},"buffer":%d,"engine":%q}`,
		mm.Name, mm.M, mm.K, mm.L, buffer, engine)
}

// TestSearchTableBitIdentityAcrossEngines drives every table-served engine
// through the endpoint and checks the answers against the frozen reference
// engines — the end-to-end version of the candtable property tests.
func TestSearchTableBitIdentityAcrossEngines(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	mm := op.MatMul{Name: "tbl", M: 36, K: 28, L: 30}
	const buffer = 2048
	wantFull, err := search.ReferenceExhaustive(mm, buffer)
	if err != nil {
		t.Fatal(err)
	}
	wantCoarse, err := search.ReferenceCoarse(mm, buffer)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		engine string
		want   search.Result
	}{
		{"exhaustive", wantFull},
		{"coarse", wantCoarse},
	} {
		var resp searchResponse
		code, raw := post(t, ts, "/v1/search", searchBody(mm, buffer, tc.engine), &resp)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.engine, code, raw)
		}
		if resp.Dataflow.MemoryAccess != tc.want.Access.Total ||
			resp.Dataflow.TM != tc.want.Dataflow.Tiling.TM ||
			resp.Dataflow.TK != tc.want.Dataflow.Tiling.TK ||
			resp.Dataflow.TL != tc.want.Dataflow.Tiling.TL {
			t.Fatalf("%s: table-served answer %+v != reference %+v", tc.engine, resp.Dataflow, tc.want.Dataflow)
		}
		if resp.Evaluations+resp.CacheHits == 0 {
			t.Fatalf("%s: no candidate visits reported", tc.engine)
		}
	}
	// auto on a small lattice goes through OptimizeTableCtx (table + genetic
	// polish); it must match the scan-backed auto engine bit for bit.
	wantAuto, err := search.OptimizeParallel(mm, buffer, search.GeneticOptions{}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var resp searchResponse
	code, raw := post(t, ts, "/v1/search", searchBody(mm, buffer, "auto"), &resp)
	if code != http.StatusOK {
		t.Fatalf("auto: status %d: %s", code, raw)
	}
	if resp.Dataflow.MemoryAccess != wantAuto.Access.Total ||
		resp.Dataflow.TM != wantAuto.Dataflow.Tiling.TM ||
		resp.Dataflow.TK != wantAuto.Dataflow.Tiling.TK ||
		resp.Dataflow.TL != wantAuto.Dataflow.Tiling.TL {
		t.Fatalf("auto: table-served answer %+v != scan-backed %+v", resp.Dataflow, wantAuto.Dataflow)
	}

	// Three engines over two grids → exactly two tables resident (full and
	// coarse share the registry, auto reused the coarse one).
	if got := s.tables.len(); got != 2 {
		t.Fatalf("tables resident = %d, want 2 (full + coarse)", got)
	}
	if tb, th := s.Registry().Counter("table_builds").Value(), s.Registry().Counter("table_hits").Value(); tb != 2 || th != 1 {
		t.Fatalf("builds/hits = %d/%d, want 2/1 (auto reuses the coarse table)", tb, th)
	}
}

// TestTableRegistryEvictsLRU pins the bounded-registry contract: capacity
// 2, three shapes, oldest evicted, re-request rebuilds.
func TestTableRegistryEvictsLRU(t *testing.T) {
	s, ts := newTestServer(t, Config{TableCapacity: 2})
	shapes := []op.MatMul{
		{Name: "a", M: 10, K: 10, L: 10},
		{Name: "b", M: 12, K: 10, L: 10},
		{Name: "c", M: 14, K: 10, L: 10},
	}
	for _, mm := range shapes {
		if code, raw := post(t, ts, "/v1/search", searchBody(mm, 1024, "exhaustive"), nil); code != http.StatusOK {
			t.Fatalf("%v: status %d: %s", mm, code, raw)
		}
	}
	if got := s.tables.len(); got != 2 {
		t.Fatalf("resident = %d, want 2 after eviction", got)
	}
	if ev := s.Registry().Counter("table_evictions").Value(); ev != 1 {
		t.Fatalf("table_evictions = %d, want 1", ev)
	}
	if g := s.Registry().Gauge("tables_resident"); g.Value() != 2 || g.High() != 2 {
		t.Fatalf("tables_resident gauge = %d (high %d), want 2/2", g.Value(), g.High())
	}
	// Shape "a" was least recently used and is gone; requesting it again
	// rebuilds (4 builds total) and answers identically.
	want, err := search.ReferenceExhaustive(shapes[0], 1024)
	if err != nil {
		t.Fatal(err)
	}
	var resp searchResponse
	if code, raw := post(t, ts, "/v1/search", searchBody(shapes[0], 1024, "exhaustive"), &resp); code != http.StatusOK {
		t.Fatalf("rebuild: status %d: %s", code, raw)
	}
	if resp.Dataflow.MemoryAccess != want.Access.Total {
		t.Fatalf("rebuilt table MA %d != reference %d", resp.Dataflow.MemoryAccess, want.Access.Total)
	}
	if tb := s.Registry().Counter("table_builds").Value(); tb != 4 {
		t.Fatalf("table_builds = %d, want 4 (3 shapes + 1 rebuild after eviction)", tb)
	}
}

// TestTableBuildErrorRetries: an injected cost-model panic fails the first
// build (degraded answer, error counted), but the slot is discarded, so the
// next request rebuilds cleanly instead of pinning the transient fault.
func TestTableBuildErrorRetries(t *testing.T) {
	faultinject.Activate(faultinject.New(1,
		faultinject.Plan{Site: search.SiteEval, Mode: faultinject.ModePanic, Times: 1}))
	t.Cleanup(faultinject.Deactivate)

	s, ts := newTestServer(t, Config{})
	body := searchBody(refOp, 4096, "exhaustive")
	var first searchResponse
	if code, raw := post(t, ts, "/v1/search", body, &first); code != http.StatusOK {
		t.Fatalf("first: status %d: %s", code, raw)
	}
	if !first.Degraded || first.DegradedReason != "engine_failure" {
		t.Fatalf("first response not degraded by the build failure: %+v", first)
	}
	if be := s.Registry().Counter("table_build_errors").Value(); be != 1 {
		t.Fatalf("table_build_errors = %d, want 1", be)
	}
	if got := s.tables.len(); got != 0 {
		t.Fatalf("failed build left %d tables resident", got)
	}

	want, err := search.ReferenceExhaustive(refOp, 4096)
	if err != nil {
		t.Fatal(err)
	}
	var second searchResponse
	if code, raw := post(t, ts, "/v1/search", body, &second); code != http.StatusOK {
		t.Fatalf("second: status %d: %s", code, raw)
	}
	if second.Degraded || second.Dataflow.MemoryAccess != want.Access.Total {
		t.Fatalf("retry after transient fault not clean: %+v", second)
	}
	if got := s.tables.len(); got != 1 {
		t.Fatalf("clean rebuild left %d tables resident, want 1", got)
	}
}

// TestDisableTablesRestoresScan: with the fast path off, repeated identical
// requests exercise the per-request scans and the shared eval cache, as
// before this feature existed.
func TestDisableTablesRestoresScan(t *testing.T) {
	s, ts := newTestServer(t, Config{DisableTables: true})
	body := searchBody(op.MatMul{Name: "scan", M: 24, K: 20, L: 22}, 1024, "exhaustive")
	for i := 0; i < 2; i++ {
		if code, raw := post(t, ts, "/v1/search", body, nil); code != http.StatusOK {
			t.Fatalf("status %d: %s", code, raw)
		}
	}
	if tb := s.Registry().Counter("table_builds").Value(); tb != 0 {
		t.Fatalf("table_builds = %d with tables disabled", tb)
	}
	if st := s.Cache().Stats(); st.Hits == 0 {
		t.Fatalf("scan path did not use the shared cache: %+v", st)
	}
}

// TestTableCapRoutesLargeShapesToScan: a shape above TableMaxCandidates
// never materializes a table and is answered by the scan engines.
func TestTableCapRoutesLargeShapesToScan(t *testing.T) {
	s, ts := newTestServer(t, Config{TableMaxCandidates: 1000})
	mm := op.MatMul{Name: "big", M: 24, K: 20, L: 22} // 63,360 full-grid candidates
	want, err := search.ReferenceExhaustive(mm, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var resp searchResponse
	if code, raw := post(t, ts, "/v1/search", searchBody(mm, 1024, "exhaustive"), &resp); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if resp.Dataflow.MemoryAccess != want.Access.Total {
		t.Fatalf("scan fallback MA %d != reference %d", resp.Dataflow.MemoryAccess, want.Access.Total)
	}
	if tb := s.Registry().Counter("table_builds").Value(); tb != 0 {
		t.Fatalf("table_builds = %d, want 0 above the candidate cap", tb)
	}
}
