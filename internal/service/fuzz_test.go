package service

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
)

// The decode fuzz targets pin the validation layer of the error model: for
// ANY body, decodeStrict must not panic, a rejection must classify as 400
// invalid_request (never a 5xx), and an accepted body must survive a
// marshal/decode round trip unchanged — i.e. strictness is self-consistent.
// Seeds come straight from the TestErrorModel table.

func fuzzDecode[T any](t *testing.T, data []byte) {
	var req T
	err := decodeStrict(data, &req)
	if err != nil {
		ae := toAPIError(err)
		if ae.status != http.StatusBadRequest || ae.code != "invalid_request" {
			t.Fatalf("decode rejection classified as %d %q, want 400 invalid_request (body %q)",
				ae.status, ae.code, data)
		}
		return
	}
	out, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("accepted request does not re-marshal: %v (body %q)", err, data)
	}
	var again T
	if err := decodeStrict(out, &again); err != nil {
		t.Fatalf("re-marshaled request rejected: %v (body %q -> %q)", err, data, out)
	}
	if !reflect.DeepEqual(req, again) {
		t.Fatalf("round trip changed the request: %+v vs %+v (body %q)", req, again, data)
	}
	// The pre-decode deadline peek must agree with the strict decode on any
	// body the strict decoder accepts.
	_ = requestTimeoutMS(data)
}

func FuzzDecodeOptimizeRequest(f *testing.F) {
	for _, seed := range []string{
		`{"op":{"name":"qk","m":512,"k":64,"l":512},"buffer":65536}`,
		`{"op":`,
		`{"op":{"m":8,"k":8,"l":8},"buffer":64,"bogus":1}`,
		`{"op":{"m":8,"k":8,"l":8},"buffer":64} {}`,
		`{"op":{"m":0,"k":8,"l":8},"buffer":64}`,
		`{"op":{"m":8,"k":8,"l":8},"buffer":1}`,
		`{"op":{"m":-1,"k":8,"l":8},"buffer":-64,"timeout_ms":-5}`,
		`{"op":{"m":9007199254740993,"k":1,"l":1},"buffer":9223372036854775807}`,
		`null`,
		``,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzDecode[optimizeRequest](t, data)
	})
}

func FuzzDecodeSearchRequest(f *testing.F) {
	for _, seed := range []string{
		`{"op":{"name":"ref","m":48,"k":32,"l":40},"buffer":4096,"engine":"exhaustive","workers":4}`,
		`{"op":{"m":8,"k":8,"l":8},"buffer":64,"engine":"oracle"}`,
		`{"op":{"m":8,"k":8,"l":8},"buffer":1}`,
		`{"op":{"m":8,"k":8,"l":8},"buffer":64,"seed":-1,"workers":-3}`,
		`{"op":{"m":8,"k":8,"l":8},"buffer":64,"engine":"genetic","timeout_ms":1}`,
		`{"op":{"m":8,"k":8,"l":8},"buffer":64}{"op":{}}`,
		`{"engine":1e309}`,
		`[]`,
		``,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzDecode[searchRequest](t, data)
	})
}
