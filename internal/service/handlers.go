package service

import (
	"context"
	"errors"
	"runtime"
	"time"

	"fusecu/api"
	"fusecu/internal/arch"
	"fusecu/internal/core"
	"fusecu/internal/dataflow"
	"fusecu/internal/errs"
	"fusecu/internal/model"
	"fusecu/internal/op"
	"fusecu/internal/search"
)

// The wire schemas live in the public api package — the single source of
// truth the client package aliases too. The local names below keep the
// handlers readable and pin that this server speaks exactly those structs.
type (
	opSpec           = api.OpSpec
	dataflowJSON     = api.Dataflow
	optimizeRequest  = api.OptimizeRequest
	optimizeResponse = api.OptimizeResponse
	planRequest      = api.PlanRequest
	planGroup        = api.PlanGroup
	planDecision     = api.PlanDecision
	planResponse     = api.PlanResponse
	searchRequest    = api.SearchRequest
	searchResponse   = api.SearchResponse
	evaluateRequest  = api.EvaluateRequest
	platformResult   = api.PlatformResult
	evaluateResponse = api.EvaluateResponse
)

func matmulOf(o opSpec) op.MatMul {
	return op.MatMul{Name: o.Name, M: o.M, K: o.K, L: o.L}
}

func dataflowOf(df dataflow.Dataflow, nra dataflow.NRAClass, total int64, per [3]int64) dataflowJSON {
	return dataflowJSON{
		Order:        df.Order.String(),
		TM:           df.Tiling.TM,
		TK:           df.Tiling.TK,
		TL:           df.Tiling.TL,
		NRA:          nra.String(),
		MemoryAccess: total,
		PerTensor:    per,
	}
}

// --- /v1/optimize -----------------------------------------------------------

func (s *Server) handleOptimize(ctx context.Context, body []byte) (any, error) {
	var req optimizeRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	res, err := core.Optimize(matmulOf(req.Op), req.Buffer)
	if err != nil {
		return nil, err
	}
	return optimizeResponse{
		Regime:     res.Regime.String(),
		Principle:  res.Principle,
		Note:       res.Note,
		Dataflow:   dataflowOf(res.Dataflow, res.Access.NRA, res.Access.Total, res.Access.PerTensor),
		Considered: len(res.Considered),
	}, nil
}

// --- /v1/plan ---------------------------------------------------------------

func (s *Server) handlePlan(ctx context.Context, body []byte) (any, error) {
	var req planRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	ops := make([]op.MatMul, len(req.Ops))
	for i, o := range req.Ops {
		ops[i] = matmulOf(o)
	}
	chain, err := op.NewChain(req.Name, ops...)
	if err != nil {
		return nil, err
	}
	plan, err := core.PlanChain(chain, req.Buffer)
	if err != nil {
		return nil, err
	}
	resp := planResponse{
		Chain:     chain.Name,
		TotalMA:   plan.TotalMA,
		UnfusedMA: plan.UnfusedMA,
		Saving:    plan.Saving(),
	}
	for _, g := range plan.Groups {
		pg := planGroup{Start: g.Start, Len: g.Len, Fused: g.Fusedp(), MemoryAccess: g.MA}
		if g.Fusedp() {
			pg.Pattern = g.Fused.Dataflow.Pattern.String()
		}
		resp.Groups = append(resp.Groups, pg)
	}
	for i, d := range plan.Decisions {
		resp.Decisions = append(resp.Decisions, planDecision{
			Pair: i, SameNRA: d.SameNRA, Fuse: d.Fuse,
			UnfusedMA: d.UnfusedMA, FusedMA: d.FusedMA, Gain: d.Gain,
		})
	}
	return resp, nil
}

// --- /v1/search -------------------------------------------------------------

func (s *Server) handleSearch(ctx context.Context, body []byte) (any, error) {
	var req searchRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.SearchWorkers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	mm := matmulOf(req.Op)

	// The scan gets only DegradeFraction of the remaining deadline budget:
	// if it cannot finish inside that, the leftover slack is spent producing
	// the principle-based one-shot answer instead of a 504. The paper's
	// closed-form optimizer runs in microseconds, so the fallback always
	// fits the reserve.
	scanCtx := ctx
	degradable := !s.cfg.DisableDegrade
	if deadline, ok := ctx.Deadline(); ok && degradable {
		budget := time.Until(deadline)
		var cancel context.CancelFunc
		scanCtx, cancel = context.WithTimeout(ctx, time.Duration(float64(budget)*s.cfg.DegradeFraction))
		defer cancel()
	}

	// Exact engines first try the shared candidate table for the shape: the
	// per-point scan collapses to an O(log n) footprint lookup, bit-identical
	// to the scan's answer. Shapes above the table cap — and every request
	// when DisableTables is set — keep the scan path. A failed build (e.g. an
	// injected fault in the cost model) flows into the normal error handling
	// below, so the degraded fallback and error mapping are unchanged.
	var res search.Result
	var err error
	switch req.Engine {
	case "", "auto":
		opts := search.GeneticOptions{Seed: req.Seed, Polish: s.cfg.Polish}
		if tab, used, terr := s.searchTable(mm, search.GridCoarse, search.CoarseLattice(mm) <= search.CoarseLatticeLimit); terr != nil {
			err = terr
		} else if used {
			res, err = search.OptimizeTableCtx(scanCtx, mm, req.Buffer, opts, tab, s.cache)
		} else {
			res, err = search.OptimizeParallelCtx(scanCtx, mm, req.Buffer, opts, workers, s.cache)
		}
		if err == nil && s.cfg.Polish == search.PolishAnalytic {
			// Observability for the polish migration: how many auto answers
			// were produced with the analytic polish in the loop.
			s.reg.Counter("analytic_polish").Inc()
		}
	case "exhaustive":
		if tab, used, terr := s.searchTable(mm, search.GridFull, true); terr != nil {
			err = terr
		} else if used {
			res, err = tab.Best(req.Buffer)
		} else {
			res, err = search.ParallelExhaustiveCtx(scanCtx, mm, req.Buffer, workers, s.cache)
		}
	case "coarse":
		if tab, used, terr := s.searchTable(mm, search.GridCoarse, true); terr != nil {
			err = terr
		} else if used {
			res, err = tab.Best(req.Buffer)
		} else {
			res, err = search.ParallelCoarseCtx(scanCtx, mm, req.Buffer, workers, s.cache)
		}
	case "genetic":
		res, err = search.GeneticCtx(scanCtx, mm, req.Buffer, search.GeneticOptions{Seed: req.Seed}, s.cache)
	default:
		return nil, badRequest("service: unknown engine %q (want auto, exhaustive, coarse or genetic)", req.Engine)
	}
	if err != nil {
		if reason, ok := s.degradeReason(ctx, err, degradable); ok {
			if resp, derr := s.degradedAnswer(mm, req.Buffer, reason); derr == nil {
				return resp, nil
			}
			// The fallback itself failed (e.g. infeasible buffer): report
			// the scan's original error, which carries the better story.
		}
		return nil, err
	}
	return searchResponse{
		Method:      res.Method,
		Dataflow:    dataflowOf(res.Dataflow, res.Access.NRA, res.Access.Total, res.Access.PerTensor),
		Evaluations: res.Evaluations,
		CacheHits:   res.CacheHits,
	}, nil
}

// searchTable resolves the shared candidate table for mm over grid.
// used=false means the fast path does not apply (disabled, the extra
// eligible condition is false, or the lattice exceeds the configured cap)
// and the caller should scan; used=true with a non-nil error means the
// table path was selected but the build failed — the error carries the
// build failure (typically errs.ErrInternal from a contained panic) into
// the handler's normal degradation/error mapping.
func (s *Server) searchTable(mm op.MatMul, grid search.Grid, eligible bool) (*search.CandTable, bool, error) {
	if !eligible || s.cfg.DisableTables {
		return nil, false, nil
	}
	if n := search.TableCandidates(mm, grid); n <= 0 || n > s.cfg.TableMaxCandidates {
		return nil, false, nil
	}
	tab, err := s.tables.get(mm, grid)
	if err != nil {
		return nil, true, err
	}
	return tab, true, nil
}

// degradeReason decides whether a failed scan should fall back to the
// principle optimizer: yes when the scan ran out of its deadline budget or
// failed internally (a contained panic). Only a client disconnect refuses
// the fallback — even if pool teardown overran the reserve and the request
// deadline itself has lapsed, a slightly late degraded answer still beats a
// 504, and the connection is alive to carry it.
func (s *Server) degradeReason(ctx context.Context, err error, degradable bool) (string, bool) {
	if !degradable || errors.Is(ctx.Err(), context.Canceled) {
		return "", false
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline", true
	case errors.Is(err, errs.ErrInternal):
		return "engine_failure", true
	}
	return "", false
}

// degradedAnswer produces the principle-based fallback response — the
// paper's Principle 1–3 optimum, always feasible and never worse than any
// search result the abandoned scan could have returned.
func (s *Server) degradedAnswer(mm op.MatMul, buffer int64, reason string) (searchResponse, error) {
	pr, err := core.Optimize(mm, buffer)
	if err != nil {
		return searchResponse{}, err
	}
	s.reg.Counter("degraded_responses").Inc()
	return searchResponse{
		Method:         "principle",
		Dataflow:       dataflowOf(pr.Dataflow, pr.Access.NRA, pr.Access.Total, pr.Access.PerTensor),
		Degraded:       true,
		DegradedReason: reason,
	}, nil
}

// --- /v1/evaluate -----------------------------------------------------------

func (s *Server) handleEvaluate(ctx context.Context, body []byte) (any, error) {
	var req evaluateRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	cfg, err := model.ByName(req.Model)
	if err != nil {
		return nil, err
	}
	if req.Seq > 0 {
		cfg.SeqLen = req.Seq
	}
	w, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	platforms := arch.All()
	if len(req.Platforms) > 0 {
		platforms = platforms[:0:0]
		for _, name := range req.Platforms {
			p, err := arch.ByName(name)
			if err != nil {
				return nil, err
			}
			platforms = append(platforms, p)
		}
	}
	resp := evaluateResponse{Workload: w.Name}
	for _, p := range platforms {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := p.EvaluateWorkload(w)
		if err != nil {
			return nil, err
		}
		resp.Results = append(resp.Results, platformResult{
			Platform:     r.Platform,
			MemoryAccess: r.MA,
			Cycles:       r.Cycles,
			MACs:         r.MACs,
			Utilization:  r.Utilization,
		})
	}
	return resp, nil
}
