package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"

	"fusecu/api"
	"fusecu/internal/cost"
	"fusecu/internal/search"
)

// This file holds the introspection surface added alongside the persistent
// table store:
//
//   - GET  /v1/version — the version triple (API, cost model, table format)
//     that decides artifact compatibility; always on, because fusecu-route
//     uses it to refuse mixed-cost-model fleets.
//   - GET  /v1/tables — the resident candidate tables with their content
//     address, source (disk|built), and usage; admin-gated.
//   - DELETE /v1/tables/{shapeHash} — drop a resident table so the next
//     request re-resolves disk → build; admin-gated.
//
// The admin endpoints bypass the POST middleware (no body, no deadline) but
// keep the admission gate out of the picture deliberately: they are cheap,
// and an operator debugging an overloaded server must not be locked out by
// the very saturation being debugged.

// handleVersion answers GET /v1/version.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	const name = "version"
	if r.Method != http.MethodGet {
		s.writeError(w, name, &apiError{
			status: http.StatusMethodNotAllowed,
			code:   api.CodeMethodNotAllowed,
			err:    fmt.Errorf("service: %s requires GET", r.URL.Path),
		})
		return
	}
	s.writeJSON(w, name, api.VersionResponse{
		APIVersion:         api.Version,
		CostModelVersion:   cost.ModelVersion,
		TableFormatVersion: search.TableFormatVersion,
	})
}

// handleTables answers GET /v1/tables with the registry snapshot.
func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	const name = "tables"
	if r.Method != http.MethodGet {
		s.writeError(w, name, &apiError{
			status: http.StatusMethodNotAllowed,
			code:   api.CodeMethodNotAllowed,
			err:    fmt.Errorf("service: %s requires GET", r.URL.Path),
		})
		return
	}
	if err := s.requireAdmin(name); err != nil {
		s.writeError(w, name, err)
		return
	}
	s.writeJSON(w, name, api.TablesResponse{Tables: s.tables.snapshot()})
}

// shapeHashPattern is the content address's wire shape: 16 lowercase hex
// digits (api.ShapeHash's output).
var shapeHashPattern = regexp.MustCompile(`^[0-9a-f]{16}$`)

// handleTableEvict answers DELETE /v1/tables/{shapeHash}.
func (s *Server) handleTableEvict(w http.ResponseWriter, r *http.Request) {
	const name = "table_evict"
	if r.Method != http.MethodDelete {
		s.writeError(w, name, &apiError{
			status: http.StatusMethodNotAllowed,
			code:   api.CodeMethodNotAllowed,
			err:    fmt.Errorf("service: %s requires DELETE", r.URL.Path),
		})
		return
	}
	if err := s.requireAdmin(name); err != nil {
		s.writeError(w, name, err)
		return
	}
	hash := r.PathValue("shapeHash")
	if !shapeHashPattern.MatchString(hash) {
		s.writeError(w, name, badRequest("service: %q is not a shape hash (want 16 lowercase hex digits)", hash))
		return
	}
	s.writeJSON(w, name, api.EvictTableResponse{ShapeHash: hash, Evicted: s.tables.evict(hash)})
}

// requireAdmin gates the table-admin endpoints behind Config.EnableAdmin.
func (s *Server) requireAdmin(name string) error {
	if s.cfg.EnableAdmin {
		return nil
	}
	return &apiError{
		status: http.StatusForbidden,
		code:   api.CodeAdminDisabled,
		err:    fmt.Errorf("service: %s requires the server to run with admin endpoints enabled (-admin)", name),
	}
}

// writeJSON renders a 200 response with the standard counters, shared by
// the GET endpoints that skip the POST middleware.
func (s *Server) writeJSON(w http.ResponseWriter, name string, v any) {
	s.reg.Counter(fmt.Sprintf("http_requests_total:%s:%d", name, http.StatusOK)).Inc()
	s.reg.Counter(fmt.Sprintf("http_responses_total:%d", http.StatusOK)).Inc()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.reg.Counter("http_encode_errors_total").Inc()
	}
}
