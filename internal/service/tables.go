package service

import (
	"container/list"
	"sync"

	"fusecu/internal/metrics"
	"fusecu/internal/op"
	"fusecu/internal/search"
)

// tableRegistry is the server's bounded per-shape candidate-table store:
// concurrent /v1/search traffic for identically shaped operators shares one
// footprint-indexed table, built exactly once (duplicate concurrent
// requests block on the build instead of racing it) and evicted LRU when
// the capacity bound is hit. Operator names are not part of the key — cost
// depends only on the dimensions and the lattice.
//
// Eviction only unlinks the registry's reference; requests already holding
// a table keep using it (tables are immutable), and the next request for an
// evicted shape rebuilds through the shared EvalCache, which typically
// still holds the candidates' evaluations.
type tableRegistry struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // of tableKey; front = most recently used
	entries map[tableKey]*tableEntry
	cache   *search.EvalCache

	builds, hits, errors, evictions *metrics.Counter
	resident                        *metrics.Gauge
}

// tableKey identifies one table by operator shape and lattice.
type tableKey struct {
	m, k, l int
	grid    search.Grid
}

// tableEntry is one registry slot. The once gate makes the build
// single-flight: every request for the shape observes the same build
// outcome.
type tableEntry struct {
	once  sync.Once
	table *search.CandTable
	err   error
	elem  *list.Element
}

func newTableRegistry(capacity int, cache *search.EvalCache, reg *metrics.Registry) *tableRegistry {
	return &tableRegistry{
		cap:       capacity,
		lru:       list.New(),
		entries:   map[tableKey]*tableEntry{},
		cache:     cache,
		builds:    reg.Counter("table_builds"),
		hits:      reg.Counter("table_hits"),
		errors:    reg.Counter("table_build_errors"),
		evictions: reg.Counter("table_evictions"),
		resident:  reg.Gauge("tables_resident"),
	}
}

// get returns the shared table for mm's shape over grid, building it on
// first use. A build failure (e.g. an injected fault reaching the cost
// model) is returned to every request that waited on it, then the slot is
// discarded so the next request retries instead of pinning a transient
// error forever.
func (r *tableRegistry) get(mm op.MatMul, grid search.Grid) (*search.CandTable, error) {
	key := tableKey{m: mm.M, k: mm.K, l: mm.L, grid: grid}
	r.mu.Lock()
	e, ok := r.entries[key]
	if ok {
		r.lru.MoveToFront(e.elem)
		r.hits.Inc()
	} else {
		e = &tableEntry{}
		e.elem = r.lru.PushFront(key)
		r.entries[key] = e
		r.builds.Inc()
		for r.lru.Len() > r.cap {
			back := r.lru.Back()
			delete(r.entries, back.Value.(tableKey))
			r.lru.Remove(back)
			r.evictions.Inc()
		}
		r.resident.Set(int64(r.lru.Len()))
	}
	r.mu.Unlock()

	e.once.Do(func() {
		e.table, e.err = search.NewCandTable(mm, grid, r.cache)
	})
	if e.err != nil {
		r.errors.Inc()
		r.mu.Lock()
		if cur, ok := r.entries[key]; ok && cur == e {
			delete(r.entries, key)
			r.lru.Remove(e.elem)
			r.resident.Set(int64(r.lru.Len()))
		}
		r.mu.Unlock()
		return nil, e.err
	}
	return e.table, nil
}

// len reports the resident table count (tests).
func (r *tableRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}
