package service

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"fusecu/api"
	"fusecu/internal/metrics"
	"fusecu/internal/op"
	"fusecu/internal/search"
	"fusecu/internal/tablestore"
)

// tableRegistry is the server's bounded per-shape candidate-table store:
// concurrent /v1/search traffic for identically shaped operators shares one
// footprint-indexed table, resolved disk → LRU → build. With a tablestore
// configured, the single-flight slot first tries the precomputed artifact
// (table_loads); a missing artifact builds fresh (table_builds), and a
// present-but-invalid one is logged, counted (table_load_errors), and also
// builds fresh — the decoder's validation guarantees a loaded table is
// bit-identical to that build, so either source answers alike. Duplicate
// concurrent requests block on the resolution instead of racing it, and
// entries are evicted LRU beyond the capacity bound. Operator names are not
// part of the key — cost depends only on the dimensions and the lattice.
//
// Eviction only unlinks the registry's reference; requests already holding
// a table keep using it (tables are immutable), and the next request for an
// evicted shape resolves again through the disk store or the shared
// EvalCache, which typically still holds the candidates' evaluations.
type tableRegistry struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // of tableKey; front = most recently used
	entries map[tableKey]*tableEntry
	cache   *search.EvalCache
	store   *tablestore.Store
	logf    func(format string, args ...any)

	builds, hits, errors, evictions *metrics.Counter
	loads, loadErrors               *metrics.Counter
	resident                        *metrics.Gauge
}

// tableKey identifies one table by operator shape and lattice.
type tableKey struct {
	m, k, l int
	grid    search.Grid
}

// shapeHash is the key's content address — the artifact/introspection
// identity shared with the api package and the disk store.
func (k tableKey) shapeHash() string {
	return api.ShapeHash(k.m, k.k, k.l, k.grid.String())
}

// tableEntry is one registry slot. The once gate makes resolution
// single-flight: every request for the shape observes the same outcome.
// done flips true (with release semantics) only after table/err/source are
// written, so the introspection snapshot can read them without blocking
// behind an in-flight build.
type tableEntry struct {
	once    sync.Once
	table   *search.CandTable
	err     error
	source  string // "disk" or "built", set before done
	done    atomic.Bool
	hits    atomic.Int64
	created time.Time
	elem    *list.Element
}

func newTableRegistry(capacity int, cache *search.EvalCache, reg *metrics.Registry,
	store *tablestore.Store, logf func(format string, args ...any)) *tableRegistry {
	return &tableRegistry{
		cap:        capacity,
		lru:        list.New(),
		entries:    map[tableKey]*tableEntry{},
		cache:      cache,
		store:      store,
		logf:       logf,
		builds:     reg.Counter("table_builds"),
		hits:       reg.Counter("table_hits"),
		errors:     reg.Counter("table_build_errors"),
		evictions:  reg.Counter("table_evictions"),
		loads:      reg.Counter("table_loads"),
		loadErrors: reg.Counter("table_load_errors"),
		resident:   reg.Gauge("tables_resident"),
	}
}

// get returns the shared table for mm's shape over grid, resolving it on
// first use: precomputed disk artifact if the store holds a valid one,
// fresh build otherwise. A build failure (e.g. an injected fault reaching
// the cost model) is returned to every request that waited on it, then the
// slot is discarded so the next request retries instead of pinning a
// transient error forever.
func (r *tableRegistry) get(mm op.MatMul, grid search.Grid) (*search.CandTable, error) {
	key := tableKey{m: mm.M, k: mm.K, l: mm.L, grid: grid}
	r.mu.Lock()
	e, ok := r.entries[key]
	if ok {
		r.lru.MoveToFront(e.elem)
		r.hits.Inc()
		e.hits.Add(1)
	} else {
		e = &tableEntry{created: time.Now()}
		e.elem = r.lru.PushFront(key)
		r.entries[key] = e
		for r.lru.Len() > r.cap {
			back := r.lru.Back()
			delete(r.entries, back.Value.(tableKey))
			r.lru.Remove(back)
			r.evictions.Inc()
		}
		r.resident.Set(int64(r.lru.Len()))
	}
	r.mu.Unlock()

	e.once.Do(func() {
		defer e.done.Store(true)
		if r.store != nil {
			tab, lerr := r.store.Load(mm, grid)
			switch {
			case lerr == nil:
				r.loads.Inc()
				e.table, e.source = tab, "disk"
				return
			case errors.Is(lerr, tablestore.ErrNotFound):
				// No artifact for this shape — the normal build path.
			default:
				// A file exists but failed validation (truncation, checksum,
				// cost-model drift, mislabeling). Never serve it: log why and
				// rebuild from scratch.
				r.loadErrors.Inc()
				if r.logf != nil {
					r.logf("table %s: rejecting disk artifact, rebuilding: %v", key.shapeHash(), lerr)
				}
			}
		}
		r.builds.Inc()
		e.table, e.err = search.NewCandTable(mm, grid, r.cache)
		e.source = "built"
	})
	if e.err != nil {
		r.errors.Inc()
		r.mu.Lock()
		if cur, ok := r.entries[key]; ok && cur == e {
			delete(r.entries, key)
			r.lru.Remove(e.elem)
			r.resident.Set(int64(r.lru.Len()))
		}
		r.mu.Unlock()
		return nil, e.err
	}
	return e.table, nil
}

// snapshot lists the resolved resident tables, most recently used first,
// for GET /v1/tables. Entries still resolving (or failed) are skipped.
func (r *tableRegistry) snapshot() []api.TableInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]api.TableInfo, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		key := el.Value.(tableKey)
		e := r.entries[key]
		if e == nil || !e.done.Load() || e.err != nil {
			continue
		}
		mm := e.table.Op()
		out = append(out, api.TableInfo{
			ShapeHash:  key.shapeHash(),
			Op:         api.OpSpec{Name: mm.Name, M: mm.M, K: mm.K, L: mm.L},
			Grid:       key.grid.String(),
			Source:     e.source,
			Candidates: e.table.Candidates(),
			Hits:       e.hits.Load(),
			AgeMS:      time.Since(e.created).Milliseconds(),
		})
	}
	return out
}

// evict removes the resident tables whose content address matches
// shapeHash (both grids of a shape have distinct hashes, so this is one
// entry in practice). Requests already holding the table keep it; the next
// request re-resolves disk → build.
func (r *tableRegistry) evict(shapeHash string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	evicted := false
	for el := r.lru.Front(); el != nil; {
		next := el.Next()
		key := el.Value.(tableKey)
		if key.shapeHash() == shapeHash {
			delete(r.entries, key)
			r.lru.Remove(el)
			r.evictions.Inc()
			evicted = true
		}
		el = next
	}
	if evicted {
		r.resident.Set(int64(r.lru.Len()))
	}
	return evicted
}

// len reports the resident table count (tests).
func (r *tableRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}
