package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fusecu/internal/op"
	"fusecu/internal/search"
)

// post sends a JSON body and decodes the response into out (which may be
// nil). It returns the status code and raw body.
func post(t *testing.T, ts *httptest.Server, path, body string, out any) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("close body: %v", err)
		}
	}()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s response %q: %v", path, raw, err)
		}
	}
	return resp.StatusCode, raw
}

// errCode extracts the error envelope code from a non-200 body.
func errCode(t *testing.T, raw []byte) string {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("decode error envelope %q: %v", raw, err)
	}
	return env.Error.Code
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestOptimizeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp optimizeResponse
	code, raw := post(t, ts, "/v1/optimize",
		`{"op":{"name":"qk","m":512,"k":64,"l":512},"buffer":65536}`, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if resp.Dataflow.MemoryAccess <= 0 || resp.Dataflow.TM <= 0 {
		t.Fatalf("degenerate response: %+v", resp)
	}
	if resp.Regime == "" || resp.Dataflow.NRA == "" {
		t.Fatalf("missing classification: %+v", resp)
	}
}

func TestPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp planResponse
	code, raw := post(t, ts, "/v1/plan",
		`{"name":"attn","ops":[{"m":512,"k":64,"l":512},{"m":512,"k":512,"l":64}],"buffer":65536}`, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if len(resp.Groups) == 0 || len(resp.Decisions) != 1 {
		t.Fatalf("unexpected plan shape: %+v", resp)
	}
	if resp.TotalMA <= 0 || resp.TotalMA > resp.UnfusedMA {
		t.Fatalf("fusion should not increase traffic: %+v", resp)
	}
}

// refOp is the operator shared by the reference-comparison tests; small
// enough for a fast full exhaustive scan even under the race detector on a
// single-core runner.
var refOp = op.MatMul{Name: "ref", M: 48, K: 32, L: 40}

// loadOp is the per-client operator of the concurrent-load test: big enough
// that 96 clients overlap, small enough that the whole wave finishes within
// every request's deadline on one core.
var loadOp = op.MatMul{Name: "load", M: 32, K: 24, L: 28}

func TestSearchEndpointMatchesReference(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	want, err := search.ReferenceExhaustive(refOp, 4096)
	if err != nil {
		t.Fatal(err)
	}
	var resp searchResponse
	code, raw := post(t, ts, "/v1/search",
		`{"op":{"name":"ref","m":48,"k":32,"l":40},"buffer":4096,"engine":"exhaustive","workers":4}`, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if resp.Dataflow.MemoryAccess != want.Access.Total {
		t.Fatalf("served search MA %d != reference %d", resp.Dataflow.MemoryAccess, want.Access.Total)
	}
	if got := fmt.Sprintf("%d/%d/%d", resp.Dataflow.TM, resp.Dataflow.TK, resp.Dataflow.TL); got !=
		fmt.Sprintf("%d/%d/%d", want.Dataflow.Tiling.TM, want.Dataflow.Tiling.TK, want.Dataflow.Tiling.TL) {
		t.Fatalf("served tiling %s != reference %v", got, want.Dataflow.Tiling)
	}
	if resp.Evaluations+resp.CacheHits == 0 {
		t.Fatal("search reported no candidate visits")
	}
	if st := s.Cache().Stats(); st.Misses == 0 {
		t.Fatal("shared cache saw no evaluations")
	}
}

func TestSearchEndpointCacheHitsOnRepeat(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := `{"op":{"name":"rep","m":48,"k":32,"l":40},"buffer":4096,"engine":"exhaustive"}`
	var first, second searchResponse
	if code, raw := post(t, ts, "/v1/search", body, &first); code != http.StatusOK {
		t.Fatalf("first: status %d: %s", code, raw)
	}
	if code, raw := post(t, ts, "/v1/search", body, &second); code != http.StatusOK {
		t.Fatalf("second: status %d: %s", code, raw)
	}
	if second.CacheHits == 0 {
		t.Fatalf("repeat request hit the cache 0 times (evals %d)", second.Evaluations)
	}
	if first.Dataflow != second.Dataflow {
		t.Fatalf("cache changed the result: %+v vs %+v", first.Dataflow, second.Dataflow)
	}
	// Identical shapes are now served by the shared candidate table: the
	// repeat request must have hit the table registry (the cache fills once
	// during the build and is not touched per query).
	if th := s.Registry().Counter("table_hits").Value(); th == 0 {
		t.Fatalf("repeat request did not hit the table registry (cache %+v)", s.Cache().Stats())
	}
	if tb := s.Registry().Counter("table_builds").Value(); tb != 1 {
		t.Fatalf("table_builds = %d, want 1 (one shape, one build)", tb)
	}
}

func TestEvaluateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp evaluateResponse
	code, raw := post(t, ts, "/v1/evaluate",
		`{"model":"BERT","platforms":["FuseCU","TPUv4i"]}`, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("want 2 platform results, got %+v", resp)
	}
	var fuse, tpu int64
	for _, r := range resp.Results {
		if r.MemoryAccess <= 0 || r.Cycles <= 0 {
			t.Fatalf("degenerate platform result: %+v", r)
		}
		switch r.Platform {
		case "FuseCU":
			fuse = r.MemoryAccess
		case "TPUv4i":
			tpu = r.MemoryAccess
		}
	}
	if fuse == 0 || tpu == 0 || fuse >= tpu {
		t.Fatalf("FuseCU should beat TPUv4i on traffic: FuseCU=%d TPUv4i=%d", fuse, tpu)
	}
}

func TestErrorModel(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"malformed json", "/v1/optimize", `{"op":`, http.StatusBadRequest, "invalid_request"},
		{"unknown field", "/v1/optimize", `{"op":{"m":8,"k":8,"l":8},"buffer":64,"bogus":1}`, http.StatusBadRequest, "invalid_request"},
		{"trailing garbage", "/v1/optimize", `{"op":{"m":8,"k":8,"l":8},"buffer":64} {}`, http.StatusBadRequest, "invalid_request"},
		{"invalid operator", "/v1/optimize", `{"op":{"m":0,"k":8,"l":8},"buffer":64}`, http.StatusBadRequest, "invalid_request"},
		{"buffer too small", "/v1/optimize", `{"op":{"m":8,"k":8,"l":8},"buffer":1}`, http.StatusUnprocessableEntity, "buffer_too_small"},
		{"broken chain", "/v1/plan", `{"name":"x","ops":[{"m":8,"k":8,"l":8},{"m":9,"k":9,"l":9}],"buffer":64}`, http.StatusBadRequest, "invalid_request"},
		{"unknown engine", "/v1/search", `{"op":{"m":8,"k":8,"l":8},"buffer":64,"engine":"oracle"}`, http.StatusBadRequest, "invalid_request"},
		{"search buffer too small", "/v1/search", `{"op":{"m":8,"k":8,"l":8},"buffer":1}`, http.StatusUnprocessableEntity, "buffer_too_small"},
		{"unknown model", "/v1/evaluate", `{"model":"GPT-9"}`, http.StatusNotFound, "not_found"},
		{"unknown platform", "/v1/evaluate", `{"model":"BERT","platforms":["Cerebras"]}`, http.StatusNotFound, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, raw := post(t, ts, tc.path, tc.body, nil)
			if code != tc.status {
				t.Fatalf("status = %d, want %d (%s)", code, tc.status, raw)
			}
			if got := errCode(t, raw); got != tc.code {
				t.Fatalf("error code = %q, want %q", got, tc.code)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
}

func TestDeadlineMapsToGatewayTimeout(t *testing.T) {
	// DisableDegrade pins the raw 504 mapping; with degradation on (the
	// default) a deadline-pressured search answers 200 degraded instead —
	// see resilience_test.go.
	_, ts := newTestServer(t, Config{DefaultTimeout: 20 * time.Millisecond, DisableDegrade: true})
	// 192³ exhaustive takes far longer than 20ms.
	code, raw := post(t, ts, "/v1/search",
		`{"op":{"m":192,"k":192,"l":192},"buffer":1048576,"engine":"exhaustive"}`, nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", code, raw)
	}
	if got := errCode(t, raw); got != "deadline_exceeded" {
		t.Fatalf("error code = %q, want deadline_exceeded", got)
	}
}

func TestAdmissionGate(t *testing.T) {
	// The slot-holding search is big enough to outlive the second request
	// and is reaped by the server deadline so the test stays fast.
	s, ts := newTestServer(t, Config{MaxInFlight: 1, RetryAfter: 7, DefaultTimeout: 500 * time.Millisecond})
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		post(t, ts, "/v1/search",
			`{"op":{"m":192,"k":192,"l":192},"buffer":1048576,"engine":"exhaustive"}`, nil)
	}()
	// Wait until the slot is actually taken.
	deadline := time.Now().Add(5 * time.Second)
	for s.Registry().Gauge("http_inflight").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
		strings.NewReader(`{"op":{"m":8,"k":8,"l":8},"buffer":64}`))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want 7", ra)
	}
	if got := errCode(t, mustReadAll(t, resp)); got != "overloaded" {
		t.Fatalf("error code = %q, want overloaded", got)
	}
	<-blocked
}

func mustReadAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, raw := post(t, ts, "/v1/optimize", `{"op":{"m":64,"k":64,"l":64},"buffer":4096}`, nil); code != http.StatusOK {
		t.Fatalf("optimize: %d %s", code, raw)
	}
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); cerr != nil {
			t.Errorf("close: %v", cerr)
		}
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		if path == "/metrics" {
			for _, want := range []string{"http_requests_total:optimize:200 1", "http_latency_ms:optimize_count"} {
				if !strings.Contains(string(raw), want) {
					t.Errorf("metrics missing %q:\n%s", want, raw)
				}
			}
		}
	}
}

// TestSearchCancellationStopsWorkers disconnects a client mid-search and
// verifies the worker pool actually stops: the shared cache's miss counter
// (one miss per cost-model invocation) must settle shortly after the
// disconnect instead of running the full scan.
func TestSearchCancellationStopsWorkers(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	body := `{"op":{"m":224,"k":224,"l":224},"buffer":1048576,"engine":"exhaustive"}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/search",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			if cerr := resp.Body.Close(); cerr != nil {
				err = cerr
			}
		}
		done <- err
	}()
	// Let the scan get going, then disconnect.
	deadline := time.Now().Add(5 * time.Second)
	for s.Cache().Stats().Misses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("search never started evaluating")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err == nil {
		t.Fatal("expected client-side error after cancel")
	}
	// The handler returning within seconds is itself the proof the pool
	// stopped: an uncancelled 224³ exhaustive scan runs far longer.
	drainDeadline := time.Now().Add(5 * time.Second)
	for s.Registry().Gauge("http_inflight").Value() != 0 {
		if time.Now().After(drainDeadline) {
			t.Fatal("in-flight gauge never drained after cancellation")
		}
		time.Sleep(time.Millisecond)
	}
	// And the evaluation counter must settle — no orphaned workers still
	// burning the cost model after the request is gone.
	before := s.Cache().Stats().Misses
	time.Sleep(300 * time.Millisecond)
	if after := s.Cache().Stats().Misses; after != before {
		t.Fatalf("evaluations still climbing after drain: %d → %d", before, after)
	}
}

// TestConcurrentSearchLoad drives 96 concurrent /v1/search requests through
// a 64-slot gate and checks: every admitted request returns the
// reference-identical optimum, the in-flight high-water mark actually
// reached the configured ceiling, and the shared cache served repeats.
func TestConcurrentSearchLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 64})
	want, err := search.ReferenceExhaustive(loadOp, 4096)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 96
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ok200, ok429, bad int
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"op":{"name":"load","m":%d,"k":%d,"l":%d},"buffer":4096,"engine":"exhaustive","workers":1}`, loadOp.M, loadOp.K, loadOp.L)
			resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer func() {
				if err := resp.Body.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("client %d read: %v", i, err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				ok200++
				var sr searchResponse
				if err := json.Unmarshal(raw, &sr); err != nil {
					t.Errorf("client %d decode: %v", i, err)
					return
				}
				if sr.Dataflow.MemoryAccess != want.Access.Total ||
					sr.Dataflow.TM != want.Dataflow.Tiling.TM ||
					sr.Dataflow.TK != want.Dataflow.Tiling.TK ||
					sr.Dataflow.TL != want.Dataflow.Tiling.TL {
					t.Errorf("client %d diverged from reference: %+v", i, sr.Dataflow)
				}
			case http.StatusTooManyRequests:
				ok429++
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("client %d: 429 without Retry-After", i)
				}
			default:
				bad++
				t.Errorf("client %d: unexpected status %d: %s", i, resp.StatusCode, raw)
			}
		}(i)
	}
	wg.Wait()

	if ok200 == 0 || bad != 0 || ok200+ok429 != clients {
		t.Fatalf("load outcome: %d ok, %d rejected, %d bad", ok200, ok429, bad)
	}
	// Repeated identical operators share one candidate table: exactly one
	// build, every other admitted request a registry hit.
	if tb, th := s.Registry().Counter("table_builds").Value(), s.Registry().Counter("table_hits").Value(); tb != 1 || th != int64(ok200-1) {
		t.Fatalf("table sharing broke: %d builds, %d hits for %d accepted requests (cache %+v)",
			tb, th, ok200, s.Cache().Stats())
	}
	// A 429 is only issued while all 64 slots are occupied, so any shed
	// request proves the server sustained its full admission ceiling.
	high := s.Registry().Gauge("http_inflight").High()
	if ok429 > 0 && high < 64 {
		t.Fatalf("saw %d rejections but in-flight high-water is only %d", ok429, high)
	}
	t.Logf("load: %d ok, %d shed, in-flight high-water %d, cache %+v",
		ok200, ok429, high, s.Cache().Stats())
}
