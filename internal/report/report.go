// Package report renders experiment results as aligned ASCII tables and CSV
// series, the textual equivalents of the paper's tables and figures.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with padded columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Series is a named (x, y) sequence — one line or bar group of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the point count.
func (s *Series) Len() int { return len(s.X) }

// Figure is a set of series sharing an x axis.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends and returns a new named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// String renders the figure as a table: one x column and one column per
// series, the textual form of a line/bar chart.
func (f *Figure) String() string {
	t := NewTable(fmt.Sprintf("%s  (y: %s)", f.Title, f.YLabel), append([]string{f.XLabel}, names(f.Series)...)...)
	for i := 0; i < f.maxLen(); i++ {
		row := make([]interface{}, 0, len(f.Series)+1)
		row = append(row, f.xAt(i))
		for _, s := range f.Series {
			if i < s.Len() {
				row = append(row, s.Y[i])
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

func (f *Figure) maxLen() int {
	m := 0
	for _, s := range f.Series {
		if s.Len() > m {
			m = s.Len()
		}
	}
	return m
}

func (f *Figure) xAt(i int) interface{} {
	for _, s := range f.Series {
		if i < s.Len() {
			return s.X[i]
		}
	}
	return ""
}

func names(ss []*Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}
