package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Table", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta-longer", 42)
	s := tb.String()
	for _, want := range []string{"My Table", "name", "value", "alpha", "1.500", "beta-longer", "42"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("xxxxxxx", "y")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// header, separator, one row
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), lines)
	}
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Fatalf("unaligned rows: %q", lines)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("with,comma", `with"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, "a,b\n") {
		t.Fatalf("missing header: %q", csv)
	}
	if !strings.Contains(csv, `"with,comma"`) {
		t.Fatalf("comma cell not quoted: %q", csv)
	}
	if !strings.Contains(csv, `"with""quote"`) {
		t.Fatalf("quote cell not escaped: %q", csv)
	}
}

func TestFigureSeries(t *testing.T) {
	f := NewFigure("fig", "x", "y")
	s1 := f.AddSeries("one")
	s2 := f.AddSeries("two")
	s1.Add(1, 10)
	s1.Add(2, 20)
	s2.Add(1, 0.5)
	if s1.Len() != 2 || s2.Len() != 1 {
		t.Fatal("series lengths wrong")
	}
	out := f.String()
	for _, want := range []string{"fig", "one", "two", "10.000", "0.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRaggedSeries(t *testing.T) {
	f := NewFigure("fig", "x", "y")
	a := f.AddSeries("a")
	b := f.AddSeries("b")
	a.Add(1, 1)
	a.Add(2, 2)
	b.Add(1, 3)
	// Must not panic and must render both rows.
	out := f.String()
	if !strings.Contains(out, "2.000") || !strings.Contains(out, "3.000") {
		t.Fatalf("ragged figure mis-rendered:\n%s", out)
	}
}

func TestEmptyFigure(t *testing.T) {
	f := NewFigure("empty", "x", "y")
	if out := f.String(); !strings.Contains(out, "empty") {
		t.Fatalf("empty figure: %q", out)
	}
}
