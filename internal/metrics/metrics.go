// Package metrics is the process-wide observability substrate of the
// fusecu-serve service: lock-cheap counters, gauges with high-water marks,
// and fixed-bucket latency histograms, collected in a Registry that renders
// a Prometheus-style text exposition for the /metrics endpoint and the
// BENCH harness.
//
// The package is deliberately dependency-free (stdlib only) and minimal:
// instruments are created once per name by get-or-create lookups and then
// updated without touching the registry, so the hot request path costs an
// atomic add per counter and a short mutex hold per histogram observation.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0; negative deltas belong on a Gauge).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level metric (e.g. in-flight requests) that
// additionally records its high-water mark, which the load harness uses to
// prove a concurrency level was actually sustained.
type Gauge struct {
	mu   sync.Mutex
	v    int64
	high int64
}

// Add moves the gauge by delta and returns the new level.
func (g *Gauge) Add(delta int64) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v += delta
	if g.v > g.high {
		g.high = g.v
	}
	return g.v
}

// Set pins the gauge to an absolute level (e.g. resident-entry counts
// maintained by a cache), updating the high-water mark like Add.
func (g *Gauge) Set(v int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
	if g.v > g.high {
		g.high = g.v
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// High returns the highest level the gauge ever reached.
func (g *Gauge) High() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.high
}

// DefaultLatencyBuckets are the histogram bounds (milliseconds) used for
// per-endpoint latency: sub-millisecond cache hits through multi-second
// exhaustive searches.
func DefaultLatencyBuckets() []float64 {
	return []float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
}

// LinearBuckets returns n evenly spaced histogram bounds starting at start
// (start, start+width, ...). Useful for small discrete distributions such
// as per-request upstream attempt counts.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Histogram is a fixed-bucket distribution metric. Bounds are inclusive
// upper bounds in ascending order; an implicit +Inf bucket catches the tail.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; the last entry is the +Inf bucket
	sum    float64
	count  int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket containing it, the standard fixed-bucket estimate. The
// +Inf bucket is reported as the largest finite bound. Returns 0 when the
// histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var seen float64
	for i, c := range h.counts {
		if float64(c)+seen < rank {
			seen += float64(c)
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		if c == 0 {
			return h.bounds[i]
		}
		return lo + (h.bounds[i]-lo)*(rank-seen)/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot returns bounds and counts for rendering.
func (h *Histogram) snapshot() (bounds []float64, counts []int64, sum float64, count int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...), append([]int64(nil), h.counts...), h.sum, h.count
}

// Registry is a named collection of instruments. All lookups are
// get-or-create: the first caller defines the instrument, later callers
// share it. Names should be snake_case with optional ":"-separated label
// suffixes (e.g. "http_requests_total:optimize:200").
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (nil bounds select DefaultLatencyBuckets). Later callers get
// the existing instrument regardless of the bounds they pass.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultLatencyBuckets()
		}
		h = &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]int64, len(bounds)+1)}
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns every scalar value (counters, gauge levels and highs,
// histogram counts/sums/p50/p95/p99) keyed by name — the machine-readable
// twin of WriteText used by tests and the bench harness.
func (r *Registry) Snapshot() map[string]float64 {
	out := map[string]float64{}
	for name, c := range r.countersCopy() {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gaugesCopy() {
		out[name] = float64(g.Value())
		out[name+"_high"] = float64(g.High())
	}
	for name, h := range r.histogramsCopy() {
		_, _, sum, count := h.snapshot()
		out[name+"_count"] = float64(count)
		out[name+"_sum"] = sum
		out[name+"_p50"] = h.Quantile(0.50)
		out[name+"_p95"] = h.Quantile(0.95)
		out[name+"_p99"] = h.Quantile(0.99)
	}
	return out
}

func (r *Registry) countersCopy() map[string]*Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

func (r *Registry) gaugesCopy() map[string]*Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		out[k] = v
	}
	return out
}

func (r *Registry) histogramsCopy() map[string]*Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		out[k] = v
	}
	return out
}

// WriteText renders a deterministic (name-sorted) Prometheus-style text
// exposition: counters and gauges as "name value" lines, histograms as
// cumulative "name_bucket{le=...}" lines plus _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	// Histograms render their buckets from live instruments; scalar keys
	// derived above (p50 etc.) are rendered as plain samples too, which is
	// convenient for scrapers that do not reconstruct quantiles.
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %g\n", name, snap[name]); err != nil {
			return err
		}
	}
	hs := r.histogramsCopy()
	hnames := make([]string, 0, len(hs))
	for n := range hs {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		bounds, counts, _, _ := hs[name].snapshot()
		var cum int64
		for i, b := range bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", b), cum); err != nil {
				return err
			}
		}
		cum += counts[len(bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
			return err
		}
	}
	return nil
}
