package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := r.Counter("reqs").Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 16000 {
		t.Fatalf("Value = %d, want 16000", got)
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight")
	g.Add(3)
	g.Add(4)
	g.Add(-5)
	if got := g.Value(); got != 2 {
		t.Fatalf("Value = %d, want 2", got)
	}
	if got := g.High(); got != 7 {
		t.Fatalf("High = %d, want 7", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(50) // third bucket
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 1 {
		t.Fatalf("p50 = %v, want within first bucket (0,1]", q)
	}
	if q := h.Quantile(0.99); q <= 10 || q > 100 {
		t.Fatalf("p99 = %v, want within third bucket (10,100]", q)
	}
	if h.Quantile(0.0) < 0 {
		t.Fatal("q=0 negative")
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	h.Observe(math.Inf(1) - 1) // lands in +Inf bucket
	h.Observe(5)
	if q := h.Quantile(0.99); q != 2 {
		t.Fatalf("overflow quantile = %v, want clamped to last bound 2", q)
	}
}

func TestSnapshotAndWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Gauge("b_level").Add(3)
	r.Histogram("c_ms", []float64{1, 10}).Observe(4)

	snap := r.Snapshot()
	for _, key := range []string{"a_total", "b_level", "b_level_high", "c_ms_count", "c_ms_sum", "c_ms_p50", "c_ms_p95", "c_ms_p99"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("Snapshot missing %q", key)
		}
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"a_total 2", "b_level 3", "c_ms_count 1", `c_ms_bucket{le="10"} 1`, `c_ms_bucket{le="+Inf"} 1`} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q in:\n%s", want, out)
		}
	}

	// Determinism: two renders must be byte-identical.
	var sb2 strings.Builder
	if err := r.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatal("WriteText is not deterministic")
	}
}

func TestDefaultBuckets(t *testing.T) {
	b := DefaultLatencyBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not ascending at %d: %v", i, b)
		}
	}
	h := NewRegistry().Histogram("x", nil)
	h.Observe(3.3)
	if h.Count() != 1 {
		t.Fatal("default-bucket histogram dropped a sample")
	}
}
