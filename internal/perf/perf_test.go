package perf

import (
	"math"
	"testing"
)

var spec = Spec{TotalPEs: 65536, BandwidthPerCycle: 1024}

func TestSpecValidate(t *testing.T) {
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Spec{TotalPEs: 0, BandwidthPerCycle: 1}).Validate(); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestEstimateComputeBound(t *testing.T) {
	// 65536e3 MACs at full utilization = 1000 cycles; tiny traffic.
	r, err := Estimate(65536_000, 1024, 1.0, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ComputeBound || r.Cycles != 1000 {
		t.Fatalf("roofline = %+v", r)
	}
	if math.Abs(r.Utilization-1.0) > 1e-9 {
		t.Fatalf("utilization = %f", r.Utilization)
	}
}

func TestEstimateMemoryBound(t *testing.T) {
	// Little compute, lots of traffic.
	r, err := Estimate(65536, 1024*5000, 1.0, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.ComputeBound {
		t.Fatal("should be memory bound")
	}
	if r.Cycles != 5000 {
		t.Fatalf("cycles = %d", r.Cycles)
	}
	if r.Utilization >= 0.01 {
		t.Fatalf("utilization = %f, should be tiny", r.Utilization)
	}
}

func TestEstimateLowSpatialUtilHurts(t *testing.T) {
	full, _ := Estimate(65536_000, 0, 1.0, spec)
	half, _ := Estimate(65536_000, 0, 0.5, spec)
	if half.Cycles != 2*full.Cycles {
		t.Fatalf("half utilization cycles = %d, want %d", half.Cycles, 2*full.Cycles)
	}
	if math.Abs(half.Utilization-0.5) > 1e-6 {
		t.Fatalf("achieved utilization = %f", half.Utilization)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(1, 1, 0, spec); err == nil {
		t.Error("zero utilization accepted")
	}
	if _, err := Estimate(1, 1, 1.5, spec); err == nil {
		t.Error("utilization > 1 accepted")
	}
	if _, err := Estimate(-1, 1, 1, spec); err == nil {
		t.Error("negative MACs accepted")
	}
	if _, err := Estimate(1, 1, 1, Spec{}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestEstimateRoundsUp(t *testing.T) {
	r, err := Estimate(1, 1, 1.0, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.ComputeCycles != 1 || r.MemoryCycles != 1 || r.Cycles != 1 {
		t.Fatalf("roofline = %+v", r)
	}
}

func TestCombine(t *testing.T) {
	a, _ := Estimate(65536_000, 0, 1.0, spec)     // 1000 cycles, util 1.0
	b, _ := Estimate(65536, 1024*1000, 1.0, spec) // 1000 cycles, util ~0.000001
	c := Combine(a, b)
	if c.Cycles != a.Cycles+b.Cycles {
		t.Fatalf("combined cycles = %d", c.Cycles)
	}
	if c.Utilization <= 0.4 || c.Utilization >= 0.6 {
		t.Fatalf("combined utilization = %f, want ≈ 0.5", c.Utilization)
	}
}

func TestCombineEmpty(t *testing.T) {
	c := Combine()
	if c.Cycles != 0 || c.Utilization != 0 {
		t.Fatalf("empty combine = %+v", c)
	}
}
