// Package perf provides the roofline performance model used for Fig. 10/11:
// execution time is the maximum of compute time (MACs over utilized PEs) and
// memory time (traffic over on-chip bandwidth), assuming perfect overlap of
// compute and data movement — the standard assumption for double-buffered
// spatial accelerators.
package perf

import "fmt"

// Spec is the compute/bandwidth envelope of a platform.
type Spec struct {
	// TotalPEs is the whole-chip MAC count per cycle at full utilization
	// (128×128×4 = 65536 for the TPUv4i configuration).
	TotalPEs int
	// BandwidthPerCycle is the memory↔buffer bandwidth in elements per
	// cycle (1 TB/s at ~1 GHz with 1-byte elements ≈ 1024).
	BandwidthPerCycle int
}

// Validate rejects non-positive envelopes.
func (s Spec) Validate() error {
	if s.TotalPEs <= 0 || s.BandwidthPerCycle <= 0 {
		return fmt.Errorf("perf: invalid spec %+v", s)
	}
	return nil
}

// Roofline is the outcome of the model for one unit of work.
type Roofline struct {
	// ComputeCycles is MACs / (TotalPEs × spatial utilization).
	ComputeCycles int64
	// MemoryCycles is traffic / bandwidth.
	MemoryCycles int64
	// Cycles is the bound: max of the two.
	Cycles int64
	// ComputeBound reports which side binds.
	ComputeBound bool
	// Utilization is achieved MACs / (Cycles × TotalPEs) — the "performance
	// normalized to peak FLOPs" metric of Fig. 10's line chart.
	Utilization float64
}

// Estimate applies the roofline to a unit of work with the given spatial
// mapping utilization (0 < spatialUtil ≤ 1).
func Estimate(macs, traffic int64, spatialUtil float64, s Spec) (Roofline, error) {
	if err := s.Validate(); err != nil {
		return Roofline{}, err
	}
	if macs < 0 || traffic < 0 {
		return Roofline{}, fmt.Errorf("perf: negative work (macs=%d, traffic=%d)", macs, traffic)
	}
	if spatialUtil <= 0 || spatialUtil > 1 {
		return Roofline{}, fmt.Errorf("perf: spatial utilization %f outside (0,1]", spatialUtil)
	}
	r := Roofline{}
	effective := float64(s.TotalPEs) * spatialUtil
	r.ComputeCycles = ceilDiv(macs, int64(effective))
	r.MemoryCycles = ceilDiv(traffic, int64(s.BandwidthPerCycle))
	if r.ComputeCycles >= r.MemoryCycles {
		r.Cycles = r.ComputeCycles
		r.ComputeBound = true
	} else {
		r.Cycles = r.MemoryCycles
	}
	if r.Cycles > 0 {
		r.Utilization = float64(macs) / (float64(r.Cycles) * float64(s.TotalPEs))
	}
	return r, nil
}

// Combine sums rooflines of sequential work units.
func Combine(parts ...Roofline) Roofline {
	var out Roofline
	var macsWeighted float64
	for _, p := range parts {
		out.ComputeCycles += p.ComputeCycles
		out.MemoryCycles += p.MemoryCycles
		out.Cycles += p.Cycles
		macsWeighted += p.Utilization * float64(p.Cycles)
	}
	if out.Cycles > 0 {
		out.Utilization = macsWeighted / float64(out.Cycles)
	}
	out.ComputeBound = out.ComputeCycles >= out.MemoryCycles
	return out
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
