// Package fusion implements inter-operator dataflow (paper §III-B): the
// fusable dataflow patterns of Fig. 4, the exact memory-access model of a
// fused producer/consumer pair of matrix multiplications, and the
// construction of principle-optimal fused dataflow for each NRA class.
//
// A fused pair executes A[M,K]×B[K,L] = C[M,L] and C[M,L]×D[L,N] = E[M,N]
// with the intermediate C never touching memory. The paper's fusability rule
// requires C to be accessed non-redundantly inside both operators, which
// admits three pattern families:
//
//   - PatternTileOSIS (Fig. 4a/b): the producer runs output-stationary and
//     the consumer input-stationary on the same tile-like C tile.
//   - PatternColumn (Fig. 4b/c): the K dimension is untiled; an A row-block
//     and an E row-block stay resident while column-like C tiles stream from
//     the producer half into the consumer half (the mapping FuseCU pipelines
//     across CUs).
//   - PatternResident (Fig. 4d/e): C (and E) are fully resident; every
//     remaining tensor moves exactly once — the fused communication lower
//     bound MK + KL + LN + MN.
//
// Each pattern's closed-form traffic is validated against a tile-trace
// oracle in this package's tests.
package fusion

import (
	"fmt"

	"fusecu/internal/dataflow"
	"fusecu/internal/errs"
	"fusecu/internal/op"
)

// Pair is a producer/consumer pair of matrix multiplications sharing the
// intermediate tensor C. Dimension names follow the paper's Fig. 4:
// A[M,K] × B[K,L] = C[M,L], then C[M,L] × D[L,N] = E[M,N].
type Pair struct {
	First, Second op.MatMul
}

// NewPair validates producer/consumer shape compatibility.
func NewPair(first, second op.MatMul) (Pair, error) {
	if err := first.Validate(); err != nil {
		return Pair{}, err
	}
	if err := second.Validate(); err != nil {
		return Pair{}, err
	}
	if first.M != second.M || first.L != second.K {
		return Pair{}, fmt.Errorf("fusion: producer C is %d×%d but consumer A is %d×%d: %w",
			first.M, first.L, second.M, second.K, errs.ErrInvalidChain)
	}
	return Pair{First: first, Second: second}, nil
}

// M, K, L, N accessors for the four fused loop dimensions.
func (p Pair) M() int { return p.First.M }

// K is the producer's reduction dimension.
func (p Pair) K() int { return p.First.K }

// L is the intermediate dimension: producer output columns, consumer
// reduction.
func (p Pair) L() int { return p.First.L }

// N is the consumer's output column dimension.
func (p Pair) N() int { return p.Second.L }

// IntermediateSize is the element count of C — the traffic fusion removes
// twice over (producer write + consumer read).
func (p Pair) IntermediateSize() int64 { return p.First.SizeC() }

// FusedIdealMA is the fused communication lower bound: every non-intermediate
// tensor moves exactly once.
func (p Pair) FusedIdealMA() int64 {
	return p.First.SizeA() + p.First.SizeB() + p.Second.SizeB() + p.Second.SizeC()
}

func (p Pair) String() string {
	return fmt.Sprintf("fused(%v ⨝ %v)", p.First, p.Second)
}

// Pattern identifies a fused dataflow family from Fig. 4.
type Pattern uint8

// The three implementable pattern families.
const (
	// PatternTileOSIS: OS producer feeding an IS consumer on a tile-like
	// intermediate (Fig. 4a and the OS–IS arm of 4b). Maps to tile fusion.
	PatternTileOSIS Pattern = iota
	// PatternColumn: K untiled, column-like intermediate streamed from
	// producer to consumer (Fig. 4b/c). Maps to column fusion.
	PatternColumn
	// PatternResident: intermediate (and consumer output) fully resident
	// (Fig. 4d/e); achieves the fused ideal.
	PatternResident
)

func (f Pattern) String() string {
	switch f {
	case PatternTileOSIS:
		return "tile-OS/IS"
	case PatternColumn:
		return "column"
	case PatternResident:
		return "resident"
	}
	return fmt.Sprintf("Pattern(%d)", uint8(f))
}

// Patterns lists the three families.
func Patterns() [3]Pattern {
	return [3]Pattern{PatternTileOSIS, PatternColumn, PatternResident}
}

// NRAClass returns the NRA class of the intra-operator dataflow each pattern
// fuses, per Fig. 4.
func (f Pattern) NRAClass() dataflow.NRAClass {
	switch f {
	case PatternTileOSIS:
		return dataflow.SingleNRA
	case PatternColumn:
		return dataflow.TwoNRA
	case PatternResident:
		return dataflow.ThreeNRA
	}
	panic("fusion: invalid Pattern")
}

// PatternForNRA maps an intra-operator NRA class to the fused pattern that
// preserves its tiling principles (Principle 4's "same NRA" requirement).
func PatternForNRA(n dataflow.NRAClass) (Pattern, bool) {
	switch n {
	case dataflow.SingleNRA:
		return PatternTileOSIS, true
	case dataflow.TwoNRA:
		return PatternColumn, true
	case dataflow.ThreeNRA:
		return PatternResident, true
	}
	return 0, false
}

// FusedDataflow is a concrete fused tiling under one pattern. Tile sizes
// cover the four loop dimensions; patterns ignore the tiles their structure
// pins (see Evaluate).
type FusedDataflow struct {
	Pattern        Pattern
	TM, TK, TL, TN int
}

func (fd FusedDataflow) String() string {
	return fmt.Sprintf("%s T_M=%d T_K=%d T_L=%d T_N=%d", fd.Pattern, fd.TM, fd.TK, fd.TL, fd.TN)
}

// Validate checks tile bounds against the pair and pattern-pinned dims.
func (fd FusedDataflow) Validate(p Pair) error {
	check := func(name string, v, hi int) error {
		if v < 1 || v > hi {
			return fmt.Errorf("fusion: tile %s=%d outside [1,%d]: %w", name, v, hi, errs.ErrInvalidDataflow)
		}
		return nil
	}
	if err := check("M", fd.TM, p.M()); err != nil {
		return err
	}
	if err := check("K", fd.TK, p.K()); err != nil {
		return err
	}
	if err := check("L", fd.TL, p.L()); err != nil {
		return err
	}
	if err := check("N", fd.TN, p.N()); err != nil {
		return err
	}
	switch fd.Pattern {
	case PatternColumn:
		if fd.TK != p.K() {
			return fmt.Errorf("fusion: column pattern requires K untiled (T_K=%d, K=%d): %w", fd.TK, p.K(), errs.ErrInvalidDataflow)
		}
		if fd.TN != p.N() {
			return fmt.Errorf("fusion: column pattern keeps the E row-block resident (T_N=%d, N=%d): %w", fd.TN, p.N(), errs.ErrInvalidDataflow)
		}
	case PatternResident:
		if fd.TM != p.M() || fd.TL != p.L() {
			return fmt.Errorf("fusion: resident pattern requires C fully resident (T_M=%d/%d, T_L=%d/%d): %w",
				fd.TM, p.M(), fd.TL, p.L(), errs.ErrInvalidDataflow)
		}
		if fd.TN != p.N() {
			return fmt.Errorf("fusion: resident pattern keeps E resident (T_N=%d, N=%d): %w", fd.TN, p.N(), errs.ErrInvalidDataflow)
		}
	}
	return nil
}

// Access reports the fused pair's traffic. The intermediate C contributes
// zero by construction.
type Access struct {
	// A, B are the producer inputs; D is the consumer's weight input; E the
	// consumer output (per-visit accounting, as in internal/cost).
	A, B, D, E int64
	// EReads is the physical partial-sum read-back of E, informational.
	EReads int64
	// Total = A + B + D + E.
	Total int64
	// Footprint is the peak buffer occupancy of the pattern.
	Footprint int64
}

// Evaluate computes the exact traffic of fd on pair p.
//
// Loop structures per pattern (all keep C entirely on-chip):
//
//	TileOSIS:  for m / for l { for k: C[m,l] += A[m,k]·B[k,l] ; for n: E[m,n] += C[m,l]·D[l,n] }
//	Column:    for m { A[m,:] resident; E[m,:] resident;
//	                   for l { for k: C[m,l] += A·B[k,l]; for n: E += C[m,l]·D[l,n] } }
//	Resident:  C, E resident; phase 1 streams A, B once; phase 2 streams D once.
func Evaluate(p Pair, fd FusedDataflow) (Access, error) {
	if err := fd.Validate(p); err != nil {
		return Access{}, err
	}
	M, K, L, N := int64(p.M()), int64(p.K()), int64(p.L()), int64(p.N())
	tm, tk, tl, tn := int64(fd.TM), int64(fd.TK), int64(fd.TL), int64(fd.TN)
	nM := ceilDiv(M, tm)
	nK := ceilDiv(K, tk)
	nL := ceilDiv(L, tl)
	nN := ceilDiv(N, tn)

	var a Access
	switch fd.Pattern {
	case PatternTileOSIS:
		// A tile (m,k) survives the l loop when the k loop never advances;
		// B and D survive a whole m iteration when everything inner is a
		// single tile; E survives the l loop when the n loop never advances.
		a.A = M * K * boolFactor(nL > 1 && nK > 1, nL)
		a.B = K * L * boolFactor(nM > 1 && (nK > 1 || nL > 1), nM)
		a.D = L * N * boolFactor(nM > 1 && (nL > 1 || nN > 1), nM)
		eF := boolFactor(nL > 1 && nN > 1, nL)
		a.E = M * N * eF
		a.EReads = M * N * (eF - 1)
		a.Footprint = tm*tk + tk*tl + tm*tl + tl*tn + tm*tn
	case PatternColumn:
		a.A = M * K
		a.B = K * L * boolFactor(nM > 1 && nL > 1, nM)
		a.D = L * N * boolFactor(nM > 1 && nL > 1, nM)
		a.E = M * N
		a.Footprint = tm*K + K*tl + tm*tl + tl*tn + tm*N
	case PatternResident:
		a.A = M * K
		a.B = K * L
		a.D = L * N
		a.E = M * N
		// Peak of the produce phase (C + B row-block + A tile) and the
		// consume phase (C + E + D tile).
		produce := M*L + tk*L + tm*tk
		consume := M*L + M*N + tl*tn
		a.Footprint = maxInt64(produce, consume)
	default:
		return Access{}, fmt.Errorf("fusion: unknown pattern %v: %w", fd.Pattern, errs.ErrInvalidDataflow)
	}
	a.Total = a.A + a.B + a.D + a.E
	return a, nil
}

// Candidate is a constructed fused dataflow with its cost.
type Candidate struct {
	Dataflow FusedDataflow
	Access   Access
	Note     string
}

// ConstructTileOSIS builds the principle-optimal tile-fusion dataflow:
// T_K = T_N = 1 and the C tile dimensions maximized, balancing the weighted
// redundancy n_L·(MK + MN) + n_M·(KL + LN) exactly under the footprint
// constraint.
func ConstructTileOSIS(p Pair, bufferSize int64) (Candidate, bool) {
	return ConstructTileOSISAligned(p, bufferSize, 1)
}

// ConstructTileOSISAligned is ConstructTileOSIS with the C tile dimensions
// restricted to multiples of align (a dimension's full extent is always
// allowed). The stationary C tile maps across the PE array, so an aligned
// tile keeps every pass fully occupied; FuseCU constructs its fused tiles
// aligned to the CU dimension for exactly this reason (§IV-A: "the
// stationary tile size has to match the array size").
func ConstructTileOSISAligned(p Pair, bufferSize int64, align int) (Candidate, bool) {
	if align < 1 {
		align = 1
	}
	M, L := int64(p.M()), int64(p.L())
	best, found := FusedDataflow{}, false
	var bestMA int64
	try := func(tm int64) {
		if tm < 1 || tm > M {
			return
		}
		// Footprint with T_K = T_N = 1: tm·tl + 2tm + 2tl ≤ BS
		//   ⇒ tl ≤ (BS − 2tm) / (tm + 2)
		tl := (bufferSize - 2*tm) / (tm + 2)
		if tl < 1 {
			return
		}
		if tl > L {
			tl = L
		}
		if tl < L && int64(align) > 1 {
			if snapped := (tl / int64(align)) * int64(align); snapped >= 1 {
				tl = snapped
			}
		}
		fd := FusedDataflow{Pattern: PatternTileOSIS, TM: int(tm), TK: 1, TL: int(tl), TN: 1}
		a, err := Evaluate(p, fd)
		if err != nil || a.Footprint > bufferSize {
			return
		}
		if !found || a.Total < bestMA {
			found, bestMA, best = true, a.Total, fd
		}
	}
	if align == 1 {
		for tm := int64(1); tm <= M; tm++ {
			try(tm)
		}
	} else {
		for tm := int64(align); tm < M; tm += int64(align) {
			try(tm)
		}
		try(M)
		if M < int64(align) {
			try(M)
		}
	}
	if !found {
		return Candidate{}, false
	}
	a, err := Evaluate(p, best)
	if err != nil {
		// best was admitted by a successful Evaluate inside try, so this is
		// unreachable; fail closed rather than report zero traffic.
		return Candidate{}, false
	}
	return Candidate{Dataflow: best, Access: a, Note: "tile fusion: OS producer → IS consumer"}, true
}

// ConstructColumn builds the principle-optimal column-fusion dataflow:
// K untiled, T_L = 1 column granularity, E row-block resident, T_M maximized
// under the footprint constraint.
func ConstructColumn(p Pair, bufferSize int64) (Candidate, bool) {
	return ConstructColumnAligned(p, bufferSize, 1)
}

// ConstructColumnAligned is ConstructColumn with the row-block height T_M
// restricted to multiples of align (or the full M extent). The column-like
// intermediate itself streams between array halves, so only T_M needs
// array alignment.
func ConstructColumnAligned(p Pair, bufferSize int64, align int) (Candidate, bool) {
	if align < 1 {
		align = 1
	}
	M, K, N := int64(p.M()), int64(p.K()), int64(p.N())
	// Footprint with T_L = 1, T_N = N: tm·K + K + tm + N + tm·N ≤ BS
	//   ⇒ tm ≤ (BS − K − N) / (K + N + 1)
	tm := (bufferSize - K - N) / (K + N + 1)
	if tm < 1 {
		return Candidate{}, false
	}
	if tm > M {
		tm = M
	}
	if tm < M && int64(align) > 1 {
		if snapped := (tm / int64(align)) * int64(align); snapped >= 1 {
			tm = snapped
		}
	}
	fd := FusedDataflow{Pattern: PatternColumn, TM: int(tm), TK: int(K), TL: 1, TN: int(N)}
	a, err := Evaluate(p, fd)
	if err != nil || a.Footprint > bufferSize {
		return Candidate{}, false
	}
	return Candidate{Dataflow: fd, Access: a, Note: "column fusion: IS producer → OS consumer, K untiled"}, true
}

// ConstructResident builds the Fig. 4(d/e) dataflow with C and E fully
// resident, reaching the fused ideal when the buffer allows it.
func ConstructResident(p Pair, bufferSize int64) (Candidate, bool) {
	fd := FusedDataflow{Pattern: PatternResident, TM: p.M(), TK: 1, TL: p.L(), TN: p.N()}
	a, err := Evaluate(p, fd)
	if err != nil || a.Footprint > bufferSize {
		return Candidate{}, false
	}
	return Candidate{Dataflow: fd, Access: a, Note: "resident fusion: C and E on-chip"}, true
}

// Construct builds the principle candidate for one pattern.
func Construct(p Pair, bufferSize int64, pattern Pattern) (Candidate, bool) {
	return ConstructAligned(p, bufferSize, pattern, 1)
}

// ConstructAligned builds the principle candidate for one pattern with
// array-aligned tiles.
func ConstructAligned(p Pair, bufferSize int64, pattern Pattern, align int) (Candidate, bool) {
	switch pattern {
	case PatternTileOSIS:
		return ConstructTileOSISAligned(p, bufferSize, align)
	case PatternColumn:
		return ConstructColumnAligned(p, bufferSize, align)
	case PatternResident:
		return ConstructResident(p, bufferSize)
	}
	return Candidate{}, false
}

// Best returns the cheapest feasible fused dataflow across all patterns.
func Best(p Pair, bufferSize int64) (Candidate, bool) {
	return BestAligned(p, bufferSize, 1)
}

// BestAligned is Best with array-aligned tiles.
func BestAligned(p Pair, bufferSize int64, align int) (Candidate, bool) {
	var best Candidate
	found := false
	for _, pat := range Patterns() {
		c, ok := ConstructAligned(p, bufferSize, pat, align)
		if !ok {
			continue
		}
		if !found || c.Access.Total < best.Access.Total {
			best, found = c, true
		}
	}
	return best, found
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

func boolFactor(cond bool, v int64) int64 {
	if cond {
		return v
	}
	return 1
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
