package fusion

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fusecu/internal/op"
)

// arbitraryPair generates random fusable pairs.
type arbitraryPair struct {
	P Pair
}

func (arbitraryPair) Generate(r *rand.Rand, _ int) reflect.Value {
	m, k, l, n := r.Intn(24)+1, r.Intn(24)+1, r.Intn(24)+1, r.Intn(24)+1
	p, err := NewPair(
		op.MatMul{M: m, K: k, L: l},
		op.MatMul{M: m, K: l, L: n},
	)
	if err != nil {
		panic(err)
	}
	return reflect.ValueOf(arbitraryPair{P: p})
}

var fusionQuick = &quick.Config{MaxCount: 300}

// Any fused dataflow moves at least the fused ideal (each non-intermediate
// tensor once) and never less than zero per tensor.
func TestPropertyFusedLowerBound(t *testing.T) {
	f := func(c arbitraryPair, tm, tk, tl, tn uint8) bool {
		p := c.P
		fd := FusedDataflow{
			Pattern: PatternTileOSIS,
			TM:      int(tm)%p.M() + 1,
			TK:      int(tk)%p.K() + 1,
			TL:      int(tl)%p.L() + 1,
			TN:      int(tn)%p.N() + 1,
		}
		a, err := Evaluate(p, fd)
		if err != nil {
			return false
		}
		return a.Total >= p.FusedIdealMA() && a.A > 0 && a.B > 0 && a.D > 0 && a.E > 0
	}
	if err := quick.Check(f, fusionQuick); err != nil {
		t.Error(err)
	}
}

// The fused ideal always beats the unfused ideal by exactly twice the
// intermediate size.
func TestPropertyFusedIdealGap(t *testing.T) {
	f := func(c arbitraryPair) bool {
		p := c.P
		unfused := p.First.IdealMA() + p.Second.IdealMA()
		return unfused-p.FusedIdealMA() == 2*p.IntermediateSize()
	}
	if err := quick.Check(f, fusionQuick); err != nil {
		t.Error(err)
	}
}

// Construct* candidates always respect the buffer they were built for, and
// a larger buffer never yields a worse candidate.
func TestPropertyConstructRespectsBufferAndMonotone(t *testing.T) {
	f := func(c arbitraryPair, bsRaw uint16, extra uint8) bool {
		p := c.P
		bs := int64(bsRaw%4096) + 5
		for _, pat := range Patterns() {
			c1, ok1 := Construct(p, bs, pat)
			c2, ok2 := Construct(p, bs+int64(extra), pat)
			if ok1 {
				if c1.Access.Footprint > bs {
					return false
				}
				if !ok2 {
					return false // more buffer lost feasibility
				}
				if c2.Access.Total > c1.Access.Total {
					return false // more buffer got worse
				}
			}
		}
		return true
	}
	if err := quick.Check(f, fusionQuick); err != nil {
		t.Error(err)
	}
}

// The aligned constructions stay feasible and within a modest factor of the
// unaligned optimum (alignment trades MA for mappability, not correctness).
func TestPropertyAlignedConstruction(t *testing.T) {
	f := func(c arbitraryPair, bsRaw uint16) bool {
		p := c.P
		bs := int64(bsRaw%8192) + 64
		plain, ok1 := Best(p, bs)
		aligned, ok2 := BestAligned(p, bs, 4)
		if !ok1 {
			return true
		}
		if !ok2 {
			return false
		}
		if aligned.Access.Footprint > bs {
			return false
		}
		return aligned.Access.Total >= plain.Access.Total
	}
	if err := quick.Check(f, fusionQuick); err != nil {
		t.Error(err)
	}
}

// Best never returns anything below the fused ideal and converges to it
// with an unbounded buffer.
func TestPropertyBestConverges(t *testing.T) {
	f := func(c arbitraryPair) bool {
		p := c.P
		huge := p.FusedIdealMA()*4 + int64(p.M())*int64(p.L())*4 + 1024
		best, ok := Best(p, huge)
		if !ok {
			return false
		}
		return best.Access.Total == p.FusedIdealMA()
	}
	if err := quick.Check(f, fusionQuick); err != nil {
		t.Error(err)
	}
}
