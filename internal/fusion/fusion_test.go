package fusion

import (
	"math/rand"
	"testing"

	"fusecu/internal/dataflow"
	"fusecu/internal/op"
)

func mustPair(t *testing.T, m, k, l, n int) Pair {
	t.Helper()
	p, err := NewPair(
		op.MatMul{Name: "mm1", M: m, K: k, L: l},
		op.MatMul{Name: "mm2", M: m, K: l, L: n},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPairValidation(t *testing.T) {
	if _, err := NewPair(op.MatMul{M: 4, K: 2, L: 6}, op.MatMul{M: 4, K: 6, L: 3}); err != nil {
		t.Fatalf("valid pair rejected: %v", err)
	}
	if _, err := NewPair(op.MatMul{M: 4, K: 2, L: 6}, op.MatMul{M: 4, K: 5, L: 3}); err == nil {
		t.Fatal("K mismatch accepted")
	}
	if _, err := NewPair(op.MatMul{M: 4, K: 2, L: 6}, op.MatMul{M: 5, K: 6, L: 3}); err == nil {
		t.Fatal("M mismatch accepted")
	}
	if _, err := NewPair(op.MatMul{M: 0, K: 2, L: 6}, op.MatMul{M: 0, K: 6, L: 3}); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestPairAccessors(t *testing.T) {
	p := mustPair(t, 8, 4, 6, 5)
	if p.M() != 8 || p.K() != 4 || p.L() != 6 || p.N() != 5 {
		t.Fatalf("dims = %d %d %d %d", p.M(), p.K(), p.L(), p.N())
	}
	if p.IntermediateSize() != 48 {
		t.Fatalf("IntermediateSize = %d", p.IntermediateSize())
	}
	if p.FusedIdealMA() != int64(8*4+4*6+6*5+8*5) {
		t.Fatalf("FusedIdealMA = %d", p.FusedIdealMA())
	}
}

func TestPatternNRAMapping(t *testing.T) {
	for _, pat := range Patterns() {
		back, ok := PatternForNRA(pat.NRAClass())
		if !ok || back != pat {
			t.Errorf("pattern %v NRA round-trip failed", pat)
		}
	}
	if _, ok := PatternForNRA(dataflow.NRAZero); ok {
		t.Error("Zero-NRA should have no fused pattern")
	}
}

func TestValidatePinnedDims(t *testing.T) {
	p := mustPair(t, 8, 4, 6, 5)
	bad := FusedDataflow{Pattern: PatternColumn, TM: 2, TK: 2, TL: 1, TN: 5}
	if err := bad.Validate(p); err == nil {
		t.Error("column with tiled K accepted")
	}
	bad = FusedDataflow{Pattern: PatternResident, TM: 4, TK: 1, TL: 6, TN: 5}
	if err := bad.Validate(p); err == nil {
		t.Error("resident with tiled M accepted")
	}
	bad = FusedDataflow{Pattern: PatternTileOSIS, TM: 0, TK: 1, TL: 1, TN: 1}
	if err := bad.Validate(p); err == nil {
		t.Error("zero tile accepted")
	}
}

func TestEvaluateTileOSISFormula(t *testing.T) {
	p := mustPair(t, 8, 4, 6, 4)
	fd := FusedDataflow{Pattern: PatternTileOSIS, TM: 2, TK: 1, TL: 3, TN: 1}
	a, err := Evaluate(p, fd)
	if err != nil {
		t.Fatal(err)
	}
	nM, nL := int64(4), int64(2)
	if a.A != int64(8*4)*nL || a.B != int64(4*6)*nM || a.D != int64(6*4)*nM || a.E != int64(8*4)*nL {
		t.Fatalf("traffic = %+v", a)
	}
	if a.EReads != int64(8*4)*(nL-1) {
		t.Fatalf("EReads = %d", a.EReads)
	}
	if a.Footprint != 2*1+1*3+2*3+3*1+2*1 {
		t.Fatalf("footprint = %d", a.Footprint)
	}
}

func TestEvaluateColumnFormula(t *testing.T) {
	p := mustPair(t, 8, 4, 6, 4)
	fd := FusedDataflow{Pattern: PatternColumn, TM: 2, TK: 4, TL: 1, TN: 4}
	a, err := Evaluate(p, fd)
	if err != nil {
		t.Fatal(err)
	}
	nM := int64(4)
	if a.A != 8*4 || a.E != 8*4 {
		t.Fatalf("A/E should be non-redundant: %+v", a)
	}
	if a.B != int64(4*6)*nM || a.D != int64(6*4)*nM {
		t.Fatalf("B/D redundancy wrong: %+v", a)
	}
}

func TestEvaluateResidentIsFusedIdeal(t *testing.T) {
	p := mustPair(t, 8, 4, 6, 4)
	fd := FusedDataflow{Pattern: PatternResident, TM: 8, TK: 1, TL: 6, TN: 4}
	a, err := Evaluate(p, fd)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != p.FusedIdealMA() {
		t.Fatalf("Total = %d, want %d", a.Total, p.FusedIdealMA())
	}
	if a.EReads != 0 {
		t.Fatalf("EReads = %d", a.EReads)
	}
}

// The closed-form fused model must agree exactly with the executed tile
// trace for every pattern, including ragged tilings.
func TestEvaluateMatchesOracleExhaustive(t *testing.T) {
	p := mustPair(t, 7, 3, 5, 4)
	for tm := 1; tm <= 7; tm++ {
		for tl := 1; tl <= 5; tl++ {
			for tk := 1; tk <= 3; tk++ {
				for tn := 1; tn <= 4; tn++ {
					fd := FusedDataflow{Pattern: PatternTileOSIS, TM: tm, TK: tk, TL: tl, TN: tn}
					compareOracle(t, p, fd)
				}
			}
			fd := FusedDataflow{Pattern: PatternColumn, TM: tm, TK: 3, TL: tl, TN: 4}
			compareOracle(t, p, fd)
		}
	}
	compareOracle(t, p, FusedDataflow{Pattern: PatternResident, TM: 7, TK: 2, TL: 5, TN: 4})
}

func TestEvaluateMatchesOracleRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		m, k, l, n := rng.Intn(12)+1, rng.Intn(12)+1, rng.Intn(12)+1, rng.Intn(12)+1
		p := mustPair(t, m, k, l, n)
		var fd FusedDataflow
		switch rng.Intn(3) {
		case 0:
			fd = FusedDataflow{Pattern: PatternTileOSIS,
				TM: rng.Intn(m) + 1, TK: rng.Intn(k) + 1, TL: rng.Intn(l) + 1, TN: rng.Intn(n) + 1}
		case 1:
			fd = FusedDataflow{Pattern: PatternColumn,
				TM: rng.Intn(m) + 1, TK: k, TL: rng.Intn(l) + 1, TN: n}
		default:
			fd = FusedDataflow{Pattern: PatternResident, TM: m, TK: rng.Intn(k) + 1, TL: l, TN: n}
		}
		compareOracle(t, p, fd)
	}
}

func compareOracle(t *testing.T, p Pair, fd FusedDataflow) {
	t.Helper()
	want, err := TraceEvaluate(p, fd)
	if err != nil {
		t.Fatalf("%v %v: %v", p, fd, err)
	}
	got, err := Evaluate(p, fd)
	if err != nil {
		t.Fatalf("%v %v: %v", p, fd, err)
	}
	if got.A != want.A || got.B != want.B || got.D != want.D || got.E != want.E || got.EReads != want.EReads {
		t.Fatalf("%v %v: analytical %+v, trace %+v", p, fd, got, want)
	}
}

func TestConstructTileOSISRespectsBuffer(t *testing.T) {
	p := mustPair(t, 64, 16, 64, 16)
	for _, bs := range []int64{8, 64, 512, 4096} {
		c, ok := ConstructTileOSIS(p, bs)
		if !ok {
			if bs >= 8 {
				t.Errorf("BS=%d: no tile-fusion candidate", bs)
			}
			continue
		}
		if c.Access.Footprint > bs {
			t.Errorf("BS=%d: footprint %d overflows", bs, c.Access.Footprint)
		}
		if c.Dataflow.TK != 1 || c.Dataflow.TN != 1 {
			t.Errorf("BS=%d: T_K/T_N not minimized: %v", bs, c.Dataflow)
		}
	}
}

func TestConstructColumnStructure(t *testing.T) {
	p := mustPair(t, 256, 32, 256, 32)
	c, ok := ConstructColumn(p, 16384)
	if !ok {
		t.Fatal("no column candidate")
	}
	fd := c.Dataflow
	if fd.TK != 32 || fd.TL != 1 || fd.TN != 32 {
		t.Fatalf("dataflow = %v", fd)
	}
	// T_M = (BS − K − N)/(K + N + 1) = (16384−64)/65 = 251
	if fd.TM != 251 {
		t.Fatalf("T_M = %d, want 251", fd.TM)
	}
	if c.Access.A != p.First.SizeA() || c.Access.E != p.Second.SizeC() {
		t.Fatal("A and E should be non-redundant in column fusion")
	}
}

func TestConstructColumnInfeasible(t *testing.T) {
	p := mustPair(t, 256, 32, 256, 32)
	if _, ok := ConstructColumn(p, 64); ok {
		t.Fatal("column fusion in 64 elements accepted")
	}
}

func TestConstructResidentNeedsRoom(t *testing.T) {
	p := mustPair(t, 16, 8, 16, 8)
	// Needs max(ML + K·... , ML + MN + ...) elements.
	if _, ok := ConstructResident(p, 128); ok {
		t.Fatal("resident fusion in 128 elements accepted")
	}
	c, ok := ConstructResident(p, 1024)
	if !ok {
		t.Fatal("resident fusion rejected with ample buffer")
	}
	if c.Access.Total != p.FusedIdealMA() {
		t.Fatalf("Total = %d, want fused ideal %d", c.Access.Total, p.FusedIdealMA())
	}
}

func TestBestPicksCheapestPattern(t *testing.T) {
	p := mustPair(t, 128, 32, 128, 32)
	// Huge buffer: the fused ideal is reachable (tile fusion with everything
	// resident ties with the resident pattern, so check the bound, not the
	// pattern label).
	c, ok := Best(p, 1<<22)
	if !ok {
		t.Fatal("no fused candidate")
	}
	if c.Access.Total != p.FusedIdealMA() {
		t.Fatalf("Total = %d, want %d", c.Access.Total, p.FusedIdealMA())
	}
	// Small buffer: resident infeasible, another pattern must serve.
	c, ok = Best(p, 2048)
	if !ok {
		t.Fatal("no fused candidate with small buffer")
	}
	if c.Dataflow.Pattern == PatternResident {
		t.Fatal("resident should not fit in 2048 elements")
	}
	if c.Access.Footprint > 2048 {
		t.Fatal("footprint overflow")
	}
}

// Fusion gain must grow with sequence length for attention-shaped pairs
// (Fig. 11's driving effect: the eliminated intermediate is seq×seq).
func TestFusionSavingGrowsWithSequenceLength(t *testing.T) {
	bs := int64(256 * 1024)
	prevSaving := int64(-1)
	for _, seq := range []int{256, 512, 1024, 2048} {
		p := mustPair(t, seq, 64, seq, 64)
		c, ok := Best(p, bs)
		if !ok {
			t.Fatalf("seq=%d: no fused candidate", seq)
		}
		// Savings relative to the unfused ideal (which still pays 2·ML for
		// the intermediate).
		unfusedIdeal := p.First.IdealMA() + p.Second.IdealMA()
		saving := unfusedIdeal - c.Access.Total
		if saving <= prevSaving {
			t.Fatalf("seq=%d: saving %d did not grow (prev %d)", seq, saving, prevSaving)
		}
		prevSaving = saving
	}
}

func TestStringers(t *testing.T) {
	p := mustPair(t, 4, 4, 4, 4)
	if p.String() == "" {
		t.Fatal("empty pair string")
	}
	fd := FusedDataflow{Pattern: PatternColumn, TM: 1, TK: 4, TL: 1, TN: 4}
	if fd.String() == "" {
		t.Fatal("empty dataflow string")
	}
	for _, pat := range Patterns() {
		if pat.String() == "" {
			t.Fatal("empty pattern string")
		}
	}
}

func BenchmarkEvaluateFused(b *testing.B) {
	p, err := NewPair(
		op.MatMul{M: 4096, K: 128, L: 4096},
		op.MatMul{M: 4096, K: 4096, L: 128},
	)
	if err != nil {
		b.Fatal(err)
	}
	fd := FusedDataflow{Pattern: PatternColumn, TM: 512, TK: 128, TL: 1, TN: 128}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(p, fd); err != nil {
			b.Fatal(err)
		}
	}
}
