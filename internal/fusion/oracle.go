package fusion

import (
	"fmt"

	"fusecu/internal/errs"
)

// TraceEvaluate executes fd's loop nest tile by tile, modelling the buffer
// exactly like internal/trace does for intra-operator dataflow, and returns
// the observed traffic. It is the oracle the closed-form Evaluate is tested
// against; production code should call Evaluate.
func TraceEvaluate(p Pair, fd FusedDataflow) (Access, error) {
	if err := fd.Validate(p); err != nil {
		return Access{}, err
	}
	switch fd.Pattern {
	case PatternTileOSIS:
		return traceTileOSIS(p, fd), nil
	case PatternColumn:
		return traceColumn(p, fd), nil
	case PatternResident:
		return traceResident(p), nil
	}
	return Access{}, fmt.Errorf("fusion: unknown pattern %v: %w", fd.Pattern, errs.ErrInvalidDataflow)
}

type coord struct{ a, b int }

// tracker counts element loads of one streamed tensor under
// one-resident-tile semantics.
type tracker struct {
	rows, cols int // full tensor shape
	tr, tc     int // tile shape
	resident   coord
	loads      int64
}

func newTracker(rows, cols, tr, tc int) *tracker {
	return &tracker{rows: rows, cols: cols, tr: tr, tc: tc, resident: coord{-1, -1}}
}

func (t *tracker) extent(idx, tile, full int) int64 {
	lo := idx * tile
	hi := lo + tile
	if hi > full {
		hi = full
	}
	return int64(hi - lo)
}

// touch records an access to tile (i, j), loading it when non-resident.
func (t *tracker) touch(i, j int) {
	c := coord{i, j}
	if t.resident != c {
		t.loads += t.extent(i, t.tr, t.rows) * t.extent(j, t.tc, t.cols)
		t.resident = c
	}
}

// outTracker counts visits of an accumulated output with spill semantics:
// eviction writes the tile; revisiting a previously evicted tile reads the
// partials back.
type outTracker struct {
	tracker
	visited map[coord]bool
	writes  int64
	reads   int64
}

func newOutTracker(rows, cols, tr, tc int) *outTracker {
	return &outTracker{
		tracker: tracker{rows: rows, cols: cols, tr: tr, tc: tc, resident: coord{-1, -1}},
		visited: make(map[coord]bool),
	}
}

func (t *outTracker) touch(i, j int) {
	c := coord{i, j}
	if t.resident == c {
		return
	}
	if t.resident.a >= 0 {
		t.writes += t.extent(t.resident.a, t.tr, t.rows) * t.extent(t.resident.b, t.tc, t.cols)
		t.visited[t.resident] = true
	}
	if t.visited[c] {
		t.reads += t.extent(c.a, t.tr, t.rows) * t.extent(c.b, t.tc, t.cols)
	}
	t.resident = c
}

func (t *outTracker) flush() {
	if t.resident.a >= 0 {
		t.writes += t.extent(t.resident.a, t.tr, t.rows) * t.extent(t.resident.b, t.tc, t.cols)
		t.resident = coord{-1, -1}
	}
}

func trips(full, tile int) int { return (full + tile - 1) / tile }

func traceTileOSIS(p Pair, fd FusedDataflow) Access {
	M, K, L, N := p.M(), p.K(), p.L(), p.N()
	a := newTracker(M, K, fd.TM, fd.TK)
	b := newTracker(K, L, fd.TK, fd.TL)
	d := newTracker(L, N, fd.TL, fd.TN)
	e := newOutTracker(M, N, fd.TM, fd.TN)

	for mi := 0; mi < trips(M, fd.TM); mi++ {
		for li := 0; li < trips(L, fd.TL); li++ {
			for ki := 0; ki < trips(K, fd.TK); ki++ {
				a.touch(mi, ki)
				b.touch(ki, li)
			}
			for ni := 0; ni < trips(N, fd.TN); ni++ {
				d.touch(li, ni)
				e.touch(mi, ni)
			}
		}
	}
	e.flush()
	return access(p, fd, a.loads, b.loads, d.loads, e.writes, e.reads)
}

func traceColumn(p Pair, fd FusedDataflow) Access {
	M, K, L, N := p.M(), p.K(), p.L(), p.N()
	// A row-blocks and E row-blocks are resident for a whole m iteration:
	// model them as 1-column-of-blocks tensors.
	a := newTracker(M, K, fd.TM, K)
	b := newTracker(K, L, K, fd.TL)
	d := newTracker(L, N, fd.TL, N)
	e := newOutTracker(M, N, fd.TM, N)

	for mi := 0; mi < trips(M, fd.TM); mi++ {
		a.touch(mi, 0)
		for li := 0; li < trips(L, fd.TL); li++ {
			b.touch(0, li)
			d.touch(li, 0)
			e.touch(mi, 0)
		}
	}
	e.flush()
	return access(p, fd, a.loads, b.loads, d.loads, e.writes, e.reads)
}

func traceResident(p Pair) Access {
	return Access{
		A:     p.First.SizeA(),
		B:     p.First.SizeB(),
		D:     p.Second.SizeB(),
		E:     p.Second.SizeC(),
		Total: p.FusedIdealMA(),
	}
}

func access(p Pair, fd FusedDataflow, a, b, d, writes, reads int64) Access {
	acc := Access{A: a, B: b, D: d, E: writes, EReads: reads}
	acc.Total = acc.A + acc.B + acc.D + acc.E
	if full, err := Evaluate(p, fd); err == nil {
		acc.Footprint = full.Footprint
	}
	return acc
}
