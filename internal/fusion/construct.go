package fusion

import "fmt"

// Constructors for FusedDataflow. The fusecu-vet unvalidatedconstruct
// analyzer flags composite literals of FusedDataflow outside this package,
// so every fused dataflow built elsewhere passes pattern and tile-bound
// validation (Validate) exactly once, at construction.

// NewFused builds a fused dataflow validated against pair p: tile sizes in
// range and pattern-pinned dimensions respected.
func NewFused(p Pair, pattern Pattern, tm, tk, tl, tn int) (FusedDataflow, error) {
	fd := FusedDataflow{Pattern: pattern, TM: tm, TK: tk, TL: tl, TN: tn}
	if err := fd.Validate(p); err != nil {
		return FusedDataflow{}, err
	}
	return fd, nil
}

// MustFused is NewFused for tile sizes the caller guarantees valid; it
// panics otherwise.
func MustFused(p Pair, pattern Pattern, tm, tk, tl, tn int) FusedDataflow {
	fd, err := NewFused(p, pattern, tm, tk, tl, tn)
	if err != nil {
		panic(fmt.Sprintf("fusion: %v", err))
	}
	return fd
}
