// Package area models silicon area at 28 nm for the evaluated platforms and
// regenerates Fig. 12: the FuseCU component breakdown, its overhead over the
// TPUv4i baseline, and the contrast with Planaria's interconnect cost.
//
// The paper obtains these numbers from Synopsys Design Compiler synthesis of
// the Chisel RTL; this reproduction replaces synthesis with an analytical
// gate-count model whose per-component unit areas are calibrated to typical
// 28 nm standard-cell figures. What the model reproduces is the *structure*
// of Fig. 12: which components are overhead, the ≈12 % total overhead of the
// XS PE datapath, and the < 0.1 % contribution of the FuseCU resize
// interconnect and fusion control — versus Planaria's ≈12.6 % interconnect
// overhead.
package area

import "fmt"

// Unit areas in µm² at 28 nm. MAC datapath values assume the paper's int8
// multiply / 32-bit accumulate PEs.
const (
	// Base PE datapath (identical across all platforms, not overhead).
	MultiplierUM2 = 220.0 // int8 multiplier
	AdderUM2      = 95.0  // 32-bit accumulator adder
	AccumRegUM2   = 160.0 // 32-bit accumulator register
	PERegsUM2     = 85.0  // operand pipeline registers
	PECtrlUM2     = 18.0  // per-PE control
	// Per-CU shared blocks (not overhead).
	SoftmaxUnitUM2 = 185000.0 // softmax/elementwise unit per CU
	CUCtrlUM2      = 42000.0  // base sequencing control per CU
	// FuseCU additions (overhead).
	XSMuxUM2        = 71.0   // Fig. 6 datapath MUXes per PE
	EdgeMuxUM2      = 12.0   // per edge-PE port MUX of the resize interconnect
	FusionCtrlUM2   = 2600.0 // per-CU XS/FU configuration control
	FabricWiringUM2 = 8000.0 // inter-CU wiring of the Fig. 7 fabric
	// Planaria's omni-directional fission interconnect per PE (overhead on
	// its own baseline).
	PlanariaLinkUM2 = 73.0
)

// Component is one line of the breakdown.
type Component struct {
	Name string
	// Count of instances and unit area.
	Count    int64
	UnitUM2  float64
	Overhead bool
}

// Area returns the component's total area in µm².
func (c Component) Area() float64 { return float64(c.Count) * c.UnitUM2 }

// Breakdown is a platform's area composition.
type Breakdown struct {
	Platform   string
	Components []Component
}

// Total returns the full area in µm².
func (b Breakdown) Total() float64 {
	var t float64
	for _, c := range b.Components {
		t += c.Area()
	}
	return t
}

// BaseTotal returns the non-overhead area.
func (b Breakdown) BaseTotal() float64 {
	var t float64
	for _, c := range b.Components {
		if !c.Overhead {
			t += c.Area()
		}
	}
	return t
}

// OverheadTotal returns the overhead area.
func (b Breakdown) OverheadTotal() float64 { return b.Total() - b.BaseTotal() }

// OverheadPct returns overhead as a percentage of the base area.
func (b Breakdown) OverheadPct() float64 {
	base := b.BaseTotal()
	if base == 0 {
		return 0
	}
	return 100 * b.OverheadTotal() / base
}

// Share returns a component's share of total area as a percentage.
func (b Breakdown) Share(name string) (float64, error) {
	total := b.Total()
	for _, c := range b.Components {
		if c.Name == name {
			return 100 * c.Area() / total, nil
		}
	}
	return 0, fmt.Errorf("area: no component %q in %s", name, b.Platform)
}

// Config describes the array being synthesized.
type Config struct {
	CUs   int
	CUDim int // PEs per CU side
}

// DefaultConfig is the TPUv4i compute configuration (128×128×4).
func DefaultConfig() Config { return Config{CUs: 4, CUDim: 128} }

// PEs returns the total PE count.
func (c Config) PEs() int64 { return int64(c.CUs) * int64(c.CUDim) * int64(c.CUDim) }

// EdgePEs returns the number of array-edge PEs whose ports carry resize
// MUXes (two edges per CU participate in the Fig. 7 connections).
func (c Config) EdgePEs() int64 { return int64(c.CUs) * 2 * int64(c.CUDim) }

func basePE(c Config) []Component {
	pes := c.PEs()
	return []Component{
		{Name: "multipliers", Count: pes, UnitUM2: MultiplierUM2},
		{Name: "adders", Count: pes, UnitUM2: AdderUM2},
		{Name: "accumulators", Count: pes, UnitUM2: AccumRegUM2},
		{Name: "base PE registers", Count: pes, UnitUM2: PERegsUM2},
		{Name: "PE control", Count: pes, UnitUM2: PECtrlUM2},
		{Name: "softmax unit", Count: int64(c.CUs), UnitUM2: SoftmaxUnitUM2},
		{Name: "CU control", Count: int64(c.CUs), UnitUM2: CUCtrlUM2},
	}
}

// TPUv4i returns the baseline breakdown: a plain systolic array with no
// overhead components.
func TPUv4i(c Config) Breakdown {
	return Breakdown{Platform: "TPUv4i", Components: basePE(c)}
}

// FuseCU returns the proposal's breakdown: the baseline plus the XS PE
// logic, resize interconnect and fusion control marked as overhead.
func FuseCU(c Config) Breakdown {
	comps := basePE(c)
	comps = append(comps,
		Component{Name: "XS PE logic", Count: c.PEs(), UnitUM2: XSMuxUM2, Overhead: true},
		Component{Name: "FuseCU interconnect", Count: c.EdgePEs(), UnitUM2: EdgeMuxUM2, Overhead: true},
		Component{Name: "fusion control", Count: int64(c.CUs), UnitUM2: FusionCtrlUM2, Overhead: true},
		Component{Name: "fabric wiring", Count: 1, UnitUM2: FabricWiringUM2, Overhead: true},
	)
	return Breakdown{Platform: "FuseCU", Components: comps}
}

// Planaria returns the fission design's breakdown, whose overhead is the
// omni-directional interconnect on every PE.
func Planaria(c Config) Breakdown {
	comps := basePE(c)
	comps = append(comps,
		Component{Name: "fission interconnect", Count: c.PEs(), UnitUM2: PlanariaLinkUM2, Overhead: true},
	)
	return Breakdown{Platform: "Planaria", Components: comps}
}

// InterconnectPct returns the percentage of FuseCU's base area contributed
// by the resize interconnect, control and wiring (the < 0.1 % claim).
func InterconnectPct(c Config) float64 {
	b := FuseCU(c)
	var icArea float64
	for _, comp := range b.Components {
		switch comp.Name {
		case "FuseCU interconnect", "fusion control", "fabric wiring":
			icArea += comp.Area()
		}
	}
	return 100 * icArea / b.BaseTotal()
}
