package area

import (
	"math"
	"testing"
)

func TestTPUv4iHasNoOverhead(t *testing.T) {
	b := TPUv4i(DefaultConfig())
	if b.OverheadTotal() != 0 {
		t.Fatalf("baseline overhead = %f", b.OverheadTotal())
	}
	if b.Total() <= 0 {
		t.Fatal("empty baseline")
	}
}

// The headline Fig. 12 claim: FuseCU's overhead over TPUv4i is ≈ 12.0 %.
func TestFuseCUOverheadNearPaper(t *testing.T) {
	b := FuseCU(DefaultConfig())
	pct := b.OverheadPct()
	if pct < 10.5 || pct > 13.5 {
		t.Fatalf("FuseCU overhead = %.2f%%, want ≈ 12.0%%", pct)
	}
}

// The interconnect/control portion of the overhead is < 0.1 % of base area.
func TestInterconnectBelowTenthOfPercent(t *testing.T) {
	pct := InterconnectPct(DefaultConfig())
	if pct <= 0 || pct >= 0.1 {
		t.Fatalf("interconnect share = %.4f%%, want (0, 0.1)", pct)
	}
}

// Planaria's fission interconnect costs ≈ 12.6 %, more than FuseCU's
// interconnect by orders of magnitude.
func TestPlanariaInterconnectNearPaper(t *testing.T) {
	b := Planaria(DefaultConfig())
	pct := b.OverheadPct()
	if pct < 11 || pct > 14 {
		t.Fatalf("Planaria overhead = %.2f%%, want ≈ 12.6%%", pct)
	}
	if pct <= InterconnectPct(DefaultConfig()) {
		t.Fatal("Planaria interconnect should dwarf FuseCU's")
	}
}

func TestXSLogicDominatesOverhead(t *testing.T) {
	b := FuseCU(DefaultConfig())
	var xs, rest float64
	for _, c := range b.Components {
		if !c.Overhead {
			continue
		}
		if c.Name == "XS PE logic" {
			xs = c.Area()
		} else {
			rest += c.Area()
		}
	}
	if xs <= rest*10 {
		t.Fatalf("XS logic %.0f should dominate other overheads %.0f", xs, rest)
	}
}

func TestBreakdownAccounting(t *testing.T) {
	b := FuseCU(DefaultConfig())
	if math.Abs(b.Total()-(b.BaseTotal()+b.OverheadTotal())) > 1e-6 {
		t.Fatal("total != base + overhead")
	}
	var sum float64
	for _, c := range b.Components {
		s, err := b.Share(c.Name)
		if err != nil {
			t.Fatal(err)
		}
		sum += s
	}
	if math.Abs(sum-100) > 1e-6 {
		t.Fatalf("shares sum to %f", sum)
	}
}

func TestShareUnknownComponent(t *testing.T) {
	b := TPUv4i(DefaultConfig())
	if _, err := b.Share("warp drive"); err == nil {
		t.Fatal("unknown component accepted")
	}
}

func TestConfigCounts(t *testing.T) {
	c := DefaultConfig()
	if c.PEs() != 65536 {
		t.Fatalf("PEs = %d", c.PEs())
	}
	if c.EdgePEs() != 4*2*128 {
		t.Fatalf("EdgePEs = %d", c.EdgePEs())
	}
}

func TestOverheadScalesWithPEs(t *testing.T) {
	small := FuseCU(Config{CUs: 4, CUDim: 64})
	big := FuseCU(Config{CUs: 4, CUDim: 128})
	// Overhead percentage is roughly scale-invariant (dominated by per-PE
	// MUXes), while absolute area grows.
	if big.Total() <= small.Total() {
		t.Fatal("area does not grow with PEs")
	}
	if math.Abs(big.OverheadPct()-small.OverheadPct()) > 2 {
		t.Fatalf("overhead pct changed too much: %f vs %f", big.OverheadPct(), small.OverheadPct())
	}
}
