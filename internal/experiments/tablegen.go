package experiments

import (
	"fmt"

	"fusecu/internal/model"
	"fusecu/internal/op"
)

// TableIIShapes returns the deduplicated operator shapes of the Table II
// evaluation models plus the Fig. 11 LLaMA2 sequence sweep — the shape set
// fusecu-tablegen precomputes so a serving fleet answers every evaluation
// request from disk-loaded candidate tables instead of building them at
// request time. Shapes are deduplicated by (M, K, L): the candidate table
// depends only on the dimensions, so one artifact serves every operator
// instance sharing them.
func TableIIShapes() ([]op.MatMul, error) {
	configs := model.TableII()
	for _, s := range model.Fig11SeqLengths() {
		configs = append(configs, model.LLaMA2WithSeq(s))
	}
	seen := map[[3]int]bool{}
	var out []op.MatMul
	for _, cfg := range configs {
		w, err := cfg.Build()
		if err != nil {
			return nil, fmt.Errorf("experiments: build %s: %w", cfg.Name, err)
		}
		for _, wc := range w.Chains {
			for _, mm := range wc.Chain.Ops {
				key := [3]int{mm.M, mm.K, mm.L}
				if seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, mm)
			}
		}
	}
	return out, nil
}

// ServeLoadOps returns the serve-load benchmark's operator shapes: small
// enough that a wave of ~100 requests finishes quickly on one core, large
// enough that requests overlap, and numerous enough that consistent hashing
// spreads them across a multi-replica fleet (the affinity key is the shape,
// so one shape alone would pin a single replica). fusecu-tablegen -set bench
// pregenerates the full-lattice table for each, letting the routed-fleet
// bench assert zero runtime table builds.
func ServeLoadOps() []op.MatMul {
	return []op.MatMul{
		{Name: "bench0", M: 32, K: 24, L: 28},
		{Name: "bench1", M: 28, K: 32, L: 24},
		{Name: "bench2", M: 36, K: 20, L: 24},
		{Name: "bench3", M: 24, K: 28, L: 32},
		{Name: "bench4", M: 40, K: 16, L: 24},
		{Name: "bench5", M: 20, K: 36, L: 28},
		{Name: "bench6", M: 24, K: 24, L: 36},
		{Name: "bench7", M: 36, K: 28, L: 20},
		{Name: "bench8", M: 28, K: 20, L: 36},
	}
}
