package experiments

import (
	"strings"
	"testing"

	"fusecu/internal/model"
	"fusecu/internal/op"
)

// smallModels keeps the cross-platform tests fast.
func smallModels() []model.Config {
	return []model.Config{
		{Name: "mini-bert", Heads: 8, SeqLen: 512, Hidden: 512, Batch: 4},
		{Name: "mini-gpt", Heads: 8, SeqLen: 1024, Hidden: 512, Batch: 4},
	}
}

func TestFig9PrincipleNeverWorseThanSearch(t *testing.T) {
	ops := []op.MatMul{
		{Name: "proj", M: 256, K: 192, L: 192},
		{Name: "QKt", M: 256, K: 32, L: 256},
	}
	buffers := []int64{4 << 10, 16 << 10, 64 << 10}
	results, err := Fig9(ops, buffers, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ops) {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if len(r.Points) != len(buffers) {
			t.Fatalf("%v: %d points", r.Op, len(r.Points))
		}
		prev := int64(1) << 62
		for _, p := range r.Points {
			// The principles give the lower bound: search can match but
			// never beat them (Fig. 9's "in some cases our dataflow
			// outperforms DAT").
			if p.SearchMA < p.PrincipleMA {
				t.Errorf("%v BS=%d: search %d beats principles %d", r.Op, p.BufferElems, p.SearchMA, p.PrincipleMA)
			}
			if p.PrincipleMA < p.Ideal {
				t.Errorf("%v BS=%d: principle MA below ideal", r.Op, p.BufferElems)
			}
			if p.PrincipleMA > prev {
				t.Errorf("%v BS=%d: MA not monotone in buffer size", r.Op, p.BufferElems)
			}
			prev = p.PrincipleMA
			// With the shared eval cache later buffer points may be served
			// entirely from cache: the honest invariant is that the total
			// candidate-visit count (fresh evaluations plus cache hits) is
			// always recorded.
			if p.SearchEvals+p.SearchCacheHits == 0 {
				t.Error("search candidate visits not recorded")
			}
		}
		// With the largest buffer the principle reaches the ideal.
		if last := r.Points[len(r.Points)-1]; last.PrincipleMA != last.Ideal {
			t.Errorf("%v: did not converge to ideal (%d vs %d)", r.Op, last.PrincipleMA, last.Ideal)
		}
	}
	figs := RenderFig9(results)
	if len(figs) != len(ops) {
		t.Fatal("render count mismatch")
	}
	if !strings.Contains(figs[0].String(), "principles") {
		t.Fatal("rendered figure missing series")
	}
}

func TestFig9ParallelMatchesSequential(t *testing.T) {
	ops := []op.MatMul{
		{Name: "proj", M: 256, K: 192, L: 192},
		{Name: "QKt", M: 256, K: 32, L: 256},
		{Name: "attnV", M: 256, K: 256, L: 32},
	}
	buffers := []int64{4 << 10, 16 << 10, 64 << 10}
	seq, err := Fig9(ops, buffers, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 16} {
		par, err := Fig9Parallel(ops, buffers, 1, workers)
		if err != nil {
			t.Fatalf("Fig9Parallel(workers=%d): %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].Op != seq[i].Op {
				t.Fatalf("workers=%d: op order changed: %v vs %v", workers, par[i].Op, seq[i].Op)
			}
			var seqVisits, parVisits int64
			for j := range seq[i].Points {
				sp, pp := seq[i].Points[j], par[i].Points[j]
				// Every paper-facing value must be bit-identical; only the
				// per-point split between fresh evaluations and cache hits is
				// scheduling-dependent, so compare that as a per-op sum.
				if pp.BufferElems != sp.BufferElems || pp.PrincipleMA != sp.PrincipleMA ||
					pp.SearchMA != sp.SearchMA || pp.Ideal != sp.Ideal {
					t.Errorf("workers=%d %v BS=%d: point diverged: %+v vs %+v",
						workers, seq[i].Op, sp.BufferElems, pp, sp)
				}
				seqVisits += sp.SearchEvals + sp.SearchCacheHits
				parVisits += pp.SearchEvals + pp.SearchCacheHits
			}
			if seqVisits != parVisits {
				t.Errorf("workers=%d %v: candidate visits %d != sequential %d",
					workers, seq[i].Op, parVisits, seqVisits)
			}
		}
	}
}

func TestFig9DefaultsArePaperSweep(t *testing.T) {
	bufs := Fig9Buffers()
	if bufs[0] != 32<<10 || bufs[len(bufs)-1] != 32<<20 {
		t.Fatalf("sweep = %v", bufs)
	}
	if len(Fig9Ops()) < 4 {
		t.Fatal("too few validation operators")
	}
}

func TestFig10OrderingAndHeadline(t *testing.T) {
	rows, err := Fig10(smallModels())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NormMA["TPUv4i"] != 1.0 {
			t.Errorf("%s: TPUv4i not normalized to 1", r.Model)
		}
		if !(r.NormMA["FuseCU"] < r.NormMA["TPUv4i"]) {
			t.Errorf("%s: FuseCU does not reduce MA", r.Model)
		}
		if !(r.NormMA["FuseCU"] <= r.NormMA["UnfCU"]) {
			t.Errorf("%s: fusion made MA worse", r.Model)
		}
		for _, p := range PlatformNames {
			if r.Util[p] <= 0 || r.Util[p] > 1 {
				t.Errorf("%s %s: utilization %f", r.Model, p, r.Util[p])
			}
			if r.Speedup[p] <= 0 {
				t.Errorf("%s %s: speedup %f", r.Model, p, r.Speedup[p])
			}
		}
		if r.Speedup["FuseCU"] < 1 {
			t.Errorf("%s: FuseCU slower than TPUv4i", r.Model)
		}
	}
	h := ComputeHeadline(rows)
	for _, b := range BaselineNames {
		if h.SavingPct[b] <= 0 || h.SavingPct[b] >= 100 {
			t.Errorf("saving vs %s = %f", b, h.SavingPct[b])
		}
		if h.Speedup[b] < 1 {
			t.Errorf("speedup vs %s = %f", b, h.Speedup[b])
		}
		if h.UnfCUSavingPct[b] > h.SavingPct[b] {
			t.Errorf("UnfCU saving exceeds FuseCU saving vs %s", b)
		}
	}
	ma, util := RenderFig10(rows)
	if ma.Rows() != 2 || util.Rows() != 2 {
		t.Fatal("rendered tables wrong size")
	}
	if RenderHeadline(h).Rows() != 3 {
		t.Fatal("headline table wrong size")
	}
}

func TestFig11SavingGrowsWithSeq(t *testing.T) {
	rows, err := Fig11([]int{256, 512, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	prev := 1.0
	for _, r := range rows {
		fc := r.NormMA["FuseCU"]
		if fc >= 1 {
			t.Errorf("seq %d: FuseCU normalized MA %f not below TPUv4i", r.SeqLen, fc)
		}
		// Fig. 11: greater memory-access reduction for longer sequences.
		if fc >= prev {
			t.Errorf("seq %d: normalized MA %f did not fall (prev %f)", r.SeqLen, fc, prev)
		}
		prev = fc
	}
	if !strings.Contains(RenderFig11(rows).String(), "FuseCU") {
		t.Fatal("render missing series")
	}
}

func TestFig12Claims(t *testing.T) {
	fuse, tpu, planaria := Fig12()
	if fuse.Total() <= tpu.Total() {
		t.Fatal("FuseCU not larger than baseline")
	}
	if pct := fuse.OverheadPct(); pct < 10 || pct > 14 {
		t.Fatalf("FuseCU overhead %f", pct)
	}
	if pct := planaria.OverheadPct(); pct < 10 || pct > 15 {
		t.Fatalf("Planaria overhead %f", pct)
	}
	bd, ov := RenderFig12()
	if bd.Rows() == 0 || ov.Rows() != 3 {
		t.Fatal("fig12 rendering wrong")
	}
	if !strings.Contains(bd.String(), "XS PE logic") {
		t.Fatal("breakdown missing XS PE logic")
	}
}

func TestTables(t *testing.T) {
	t1, t2, t3 := Table1(), Table2(), Table3()
	if t1.Rows() != 6 {
		t.Fatalf("Table I rows = %d", t1.Rows())
	}
	if t2.Rows() != 7 {
		t.Fatalf("Table II rows = %d", t2.Rows())
	}
	if t3.Rows() != 5 {
		t.Fatalf("Table III rows = %d", t3.Rows())
	}
	if !strings.Contains(t1.String(), "principle-based") {
		t.Fatal("Table I missing this work's row")
	}
	if !strings.Contains(t2.String(), "LLaMA2") {
		t.Fatal("Table II missing LLaMA2")
	}
	if !strings.Contains(t3.String(), "FuseCU") {
		t.Fatal("Table III missing FuseCU")
	}
}

// The full-scale headline run is the paper's abstract claim; keep it under
// -short because it evaluates all seven models on five platforms.
func TestHeadlineFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table II evaluation is slow")
	}
	rows, err := Fig10(model.TableII())
	if err != nil {
		t.Fatal(err)
	}
	h := ComputeHeadline(rows)
	// Shape checks against the paper's 63.6/62.4/38.7 and 1.33/1.25/1.14:
	// same ordering, same ballpark.
	if h.SavingPct["TPUv4i"] < 40 || h.SavingPct["TPUv4i"] > 80 {
		t.Errorf("saving vs TPUv4i = %.1f%%, paper 63.6%%", h.SavingPct["TPUv4i"])
	}
	if h.SavingPct["Gemmini"] < 40 || h.SavingPct["Gemmini"] > 80 {
		t.Errorf("saving vs Gemmini = %.1f%%, paper 62.4%%", h.SavingPct["Gemmini"])
	}
	if h.SavingPct["Planaria"] < 25 || h.SavingPct["Planaria"] > 60 {
		t.Errorf("saving vs Planaria = %.1f%%, paper 38.7%%", h.SavingPct["Planaria"])
	}
	if !(h.SavingPct["Planaria"] < h.SavingPct["Gemmini"] && h.SavingPct["Gemmini"] <= h.SavingPct["TPUv4i"]) {
		t.Errorf("saving ordering broken: %+v", h.SavingPct)
	}
	if !(h.Speedup["TPUv4i"] >= h.Speedup["Gemmini"] && h.Speedup["Gemmini"] >= h.Speedup["Planaria"]) {
		t.Errorf("speedup ordering broken: %+v", h.Speedup)
	}
	if h.Speedup["TPUv4i"] < 1.05 {
		t.Errorf("speedup vs TPUv4i = %.2f, paper 1.33", h.Speedup["TPUv4i"])
	}
}

func TestRenderersEmitCSV(t *testing.T) {
	rows, err := Fig10(smallModels())
	if err != nil {
		t.Fatal(err)
	}
	ma, util := RenderFig10(rows)
	for _, tb := range []interface{ CSV() string }{ma, util, Table1(), Table2(), Table3(), RenderHeadline(ComputeHeadline(rows))} {
		csv := tb.CSV()
		if len(csv) == 0 || !strings.Contains(csv, ",") {
			t.Fatalf("degenerate CSV: %q", csv)
		}
	}
}
