package experiments

import (
	"context"
	"fmt"

	"fusecu/internal/core"
	"fusecu/internal/model"
	"fusecu/internal/op"
	"fusecu/internal/search"
)

// This file holds the candidate-table fast paths of the evaluation sweeps.
// The plain Fig9/Fig9Parallel harnesses rescan each operator's coarse
// lattice at every buffer point (memoized through the EvalCache, but still
// O(lattice) visits per point); the fast paths build one footprint-indexed
// CandTable per operator shape and serve every sweep point with an O(log n)
// query plus the unchanged polish stage (analytic by default, GA behind
// PolishGA). Results are bit-identical —
// same MA values, same total candidate-visit counts — which the tests pin
// against the plain harness.

// Fig9Sweep computes the same validation sweep as Fig9 through the
// candidate-table engine: per operator, one coarse table build replaces the
// per-point lattice scans. Deterministic and point-for-point identical to
// Fig9 in every MA value and in SearchEvals + SearchCacheHits; the split
// between the two shifts toward cache hits because the table build performs
// the lattice's cost-model work once up front (reported as table-build
// evaluations inside the first point's accounting, exactly like the scan
// path's cold sweep point).
func Fig9Sweep(ops []op.MatMul, buffers []int64, seed int64) ([]Fig9Result, error) {
	return Fig9SweepCtx(context.Background(), ops, buffers, seed)
}

// Fig9SweepCtx is Fig9Sweep with cooperative cancellation threaded through
// the per-point table queries: when ctx is canceled the in-flight point
// stops at the engine's next poll and the sweep returns the error.
func Fig9SweepCtx(ctx context.Context, ops []op.MatMul, buffers []int64, seed int64) ([]Fig9Result, error) {
	var results []Fig9Result
	for _, mm := range ops {
		r := Fig9Result{Op: mm}
		cache := search.NewEvalCache()
		var tab *search.CandTable
		if search.CoarseLattice(mm) <= search.CoarseLatticeLimit {
			var err error
			tab, err = search.NewCandTable(mm, search.GridCoarse, cache)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig9 table %v: %w", mm, err)
			}
		}
		for _, bs := range buffers {
			pr, err := core.Optimize(mm, bs)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig9 %v BS=%d: %w", mm, bs, err)
			}
			sr, err := search.OptimizeTableCtx(ctx, mm, bs, search.GeneticOptions{Seed: seed}, tab, cache)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig9 search %v BS=%d: %w", mm, bs, err)
			}
			r.Points = append(r.Points, Fig9Point{
				BufferElems:     bs,
				PrincipleMA:     pr.Access.Total,
				SearchMA:        sr.Access.Total,
				Ideal:           mm.IdealMA(),
				SearchEvals:     sr.Evaluations,
				SearchCacheHits: sr.CacheHits,
			})
		}
		results = append(results, r)
	}
	return results, nil
}

// Fig11SearchRow is one (sequence length, operator shape, buffer) cell of
// the table-backed LLaMA2 sweep: the principle optimum against the
// DAT-style coarse-lattice search served from a candidate table.
type Fig11SearchRow struct {
	SeqLen int
	Op     op.MatMul
	// Count is how many instances of this shape the layer runs (e.g. the
	// four projections share one shape; attention runs batch × heads).
	Count       int64
	BufferElems int64
	// PrincipleMA is core.Optimize's analytical optimum; SearchMA the best
	// coarse-lattice candidate from the table.
	PrincipleMA, SearchMA int64
	// Visits is the candidate count a pruned scan would have walked for
	// this point, served by the table in O(log n).
	Visits int64
}

// Fig11SearchStats summarizes table reuse across one sweep.
type Fig11SearchStats struct {
	// ShapeRefs counts (sequence length, shape) references; TableBuilds the
	// distinct shapes actually built — the gap is the sharing the registry
	// exploits (LLaMA2's four projections collapse to one table per seq).
	ShapeRefs, TableBuilds int64
	// BuildEvals / BuildCacheHits aggregate the builds' cost-model
	// invocations and cache-served candidates.
	BuildEvals, BuildCacheHits int64
}

// fig11Shape keys tables by operator shape; names and multiplicity are
// irrelevant to cost.
type fig11Shape struct{ m, k, l int }

// Fig11Search runs the table-backed search validation over the LLaMA2
// sequence-length sweep: for every distinct operator shape of each layer it
// builds one coarse candidate table (shared across the shape's instances
// and across chains) and compares the principle optimum against the table's
// coarse-lattice best at each buffer size. Rows are emitted in workload
// order and the whole sweep is deterministic.
func Fig11Search(seqs []int, buffers []int64) ([]Fig11SearchRow, Fig11SearchStats, error) {
	var rows []Fig11SearchRow
	var stats Fig11SearchStats
	cache := search.NewEvalCache()
	tables := map[fig11Shape]*search.CandTable{}
	for _, s := range seqs {
		w, err := model.LLaMA2WithSeq(s).Build()
		if err != nil {
			return nil, stats, fmt.Errorf("experiments: fig11 search seq=%d: %w", s, err)
		}
		// Aggregate the layer's operators by shape, preserving first-seen
		// order for deterministic row emission.
		var order []fig11Shape
		counts := map[fig11Shape]int64{}
		names := map[fig11Shape]string{}
		for _, wc := range w.Chains {
			for _, mm := range wc.Chain.Ops {
				key := fig11Shape{mm.M, mm.K, mm.L}
				if counts[key] == 0 {
					order = append(order, key)
					names[key] = mm.Name
				}
				counts[key] += wc.Count
			}
		}
		for _, key := range order {
			mm := op.MatMul{Name: names[key], M: key.m, K: key.k, L: key.l}
			stats.ShapeRefs++
			tab, ok := tables[key]
			if !ok {
				tab, err = search.NewCandTable(mm, search.GridCoarse, cache)
				if err != nil {
					return nil, stats, fmt.Errorf("experiments: fig11 table %v: %w", mm, err)
				}
				tables[key] = tab
				stats.TableBuilds++
				stats.BuildEvals += tab.BuildEvals()
				stats.BuildCacheHits += tab.BuildCacheHits()
			}
			for _, bs := range buffers {
				pr, err := core.Optimize(mm, bs)
				if err != nil {
					return nil, stats, fmt.Errorf("experiments: fig11 principle %v BS=%d: %w", mm, bs, err)
				}
				sr, err := tab.Best(bs)
				if err != nil {
					return nil, stats, fmt.Errorf("experiments: fig11 search %v BS=%d: %w", mm, bs, err)
				}
				rows = append(rows, Fig11SearchRow{
					SeqLen:      s,
					Op:          mm,
					Count:       counts[key],
					BufferElems: bs,
					PrincipleMA: pr.Access.Total,
					SearchMA:    sr.Access.Total,
					Visits:      sr.CacheHits,
				})
			}
		}
	}
	return rows, stats, nil
}
