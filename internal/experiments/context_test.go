package experiments

import (
	"context"
	"errors"
	"testing"

	"fusecu/internal/op"
)

func TestFig9ParallelCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Fig9ParallelCtx(ctx, []op.MatMul{{Name: "p", M: 64, K: 48, L: 48}}, []int64{4096}, 1, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFig9ParallelCtxMatchesSequential(t *testing.T) {
	ops := []op.MatMul{{Name: "p", M: 96, K: 48, L: 64}}
	buffers := []int64{2048, 4096, 8192}
	seq, err := Fig9(ops, buffers, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig9ParallelCtx(context.Background(), ops, buffers, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		for j := range seq[i].Points {
			a, b := seq[i].Points[j], par[i].Points[j]
			if a.PrincipleMA != b.PrincipleMA || a.SearchMA != b.SearchMA ||
				a.SearchEvals+a.SearchCacheHits != b.SearchEvals+b.SearchCacheHits {
				t.Fatalf("point %d/%d diverged: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

func TestFig9CtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Fig9Ctx(ctx, []op.MatMul{{Name: "p", M: 64, K: 48, L: 48}}, []int64{4096}, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Fig9Ctx err = %v, want context.Canceled", err)
	}
}

func TestFig9SweepCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Fig9SweepCtx(ctx, []op.MatMul{{Name: "p", M: 64, K: 48, L: 48}}, []int64{4096}, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Fig9SweepCtx err = %v, want context.Canceled", err)
	}
}
