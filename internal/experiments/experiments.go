// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V) from this repository's models: the Fig. 9
// principle-vs-search validation, the Fig. 10 cross-platform memory-access
// and utilization comparison, the Fig. 11 LLaMA2 sequence-length sweep, the
// Fig. 12 area breakdown, the three tables, and the headline averages.
// Paper-vs-measured values are recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"fusecu/internal/arch"
	"fusecu/internal/area"
	"fusecu/internal/core"
	"fusecu/internal/model"
	"fusecu/internal/op"
	"fusecu/internal/report"
	"fusecu/internal/search"
)

// PlatformNames is the paper's comparison order.
var PlatformNames = []string{"TPUv4i", "Gemmini", "Planaria", "UnfCU", "FuseCU"}

// BaselineNames are the platforms the headline averages compare against.
var BaselineNames = []string{"TPUv4i", "Gemmini", "Planaria"}

// ---------------------------------------------------------------- Fig. 9 --

// Fig9Point is one buffer size of the validation sweep.
type Fig9Point struct {
	BufferElems int64
	// PrincipleMA is the one-shot analytical optimum; SearchMA is what the
	// DAT-style searcher found; Ideal is the unbounded-buffer lower bound.
	PrincipleMA, SearchMA, Ideal int64
	// SearchEvals counts the searcher's cost-model invocations (the
	// principles use a constant-size candidate set). Candidates served from
	// the sweep-level evaluation cache are counted in SearchCacheHits
	// instead, so SearchEvals stays comparable to the paper's search-cost
	// metric; SearchEvals + SearchCacheHits is the total candidate-visit
	// count and is invariant under caching.
	SearchEvals int64
	// SearchCacheHits counts candidate visits served from the shared
	// per-operator evaluation cache without invoking the cost model.
	SearchCacheHits int64
}

// Fig9Result is the sweep for one operator.
type Fig9Result struct {
	Op     op.MatMul
	Points []Fig9Point
}

// Fig9Ops returns the BERT-class matrix multiplications the validation runs
// on: a projection, an FFN layer, and the two attention operators.
func Fig9Ops() []op.MatMul {
	return []op.MatMul{
		{Name: "proj", M: 1024, K: 768, L: 768},
		{Name: "ffn", M: 1024, K: 768, L: 3072},
		{Name: "QKt", M: 1024, K: 64, L: 1024},
		{Name: "SV", M: 1024, K: 1024, L: 64},
	}
}

// Fig9Buffers returns the paper's 32 KiB – 32 MiB buffer sweep (elements).
func Fig9Buffers() []int64 {
	var out []int64
	for b := int64(32 << 10); b <= 32<<20; b *= 2 {
		out = append(out, b)
	}
	return out
}

// fig9Point computes one (operator, buffer) point of the validation sweep:
// the principle optimum, the DAT-style search result (memoized through the
// per-operator cache), and the ideal lower bound. The search stage honours
// ctx, so canceling it abandons the point mid-search.
func fig9Point(ctx context.Context, mm op.MatMul, bs, seed int64, cache *search.EvalCache) (Fig9Point, error) {
	pr, err := core.Optimize(mm, bs)
	if err != nil {
		return Fig9Point{}, fmt.Errorf("experiments: fig9 %v BS=%d: %w", mm, bs, err)
	}
	sr, err := search.OptimizeParallelCtx(ctx, mm, bs, search.GeneticOptions{Seed: seed}, 1, cache)
	if err != nil {
		return Fig9Point{}, fmt.Errorf("experiments: fig9 search %v BS=%d: %w", mm, bs, err)
	}
	return Fig9Point{
		BufferElems:     bs,
		PrincipleMA:     pr.Access.Total,
		SearchMA:        sr.Access.Total,
		Ideal:           mm.IdealMA(),
		SearchEvals:     sr.Evaluations,
		SearchCacheHits: sr.CacheHits,
	}, nil
}

// Fig9 validates the principles against the search baseline across the
// buffer sweep. seed feeds the polish engine when it is the GA (the
// default analytic polish is seedless). Each operator owns one
// evaluation cache spanning its buffer sweep, so a candidate dataflow is
// costed once and every later sweep point filters it by footprint only
// (the repeat visits land in Fig9Point.SearchCacheHits).
func Fig9(ops []op.MatMul, buffers []int64, seed int64) ([]Fig9Result, error) {
	return Fig9Ctx(context.Background(), ops, buffers, seed)
}

// Fig9Ctx is Fig9 with cooperative cancellation: when ctx is canceled the
// in-flight point abandons its search at the engine's next poll and the
// sweep returns the error instead of a partial result set.
func Fig9Ctx(ctx context.Context, ops []op.MatMul, buffers []int64, seed int64) ([]Fig9Result, error) {
	var results []Fig9Result
	for _, mm := range ops {
		r := Fig9Result{Op: mm}
		cache := search.NewEvalCache()
		for _, bs := range buffers {
			p, err := fig9Point(ctx, mm, bs, seed, cache)
			if err != nil {
				return nil, err
			}
			r.Points = append(r.Points, p)
		}
		results = append(results, r)
	}
	return results, nil
}

// Fig9Parallel computes the same sweep as Fig9 with the (operator, buffer)
// points fanned across a worker pool (workers ≤ 0 selects GOMAXPROCS).
// Every MA value and the per-point SearchEvals + SearchCacheHits sum are
// deterministic and identical to Fig9's — the polish stage is
// cache-independent — but the split between evaluations and
// cache hits at a given point depends on which point warmed the shared
// per-operator cache first. Failed points are reported joined, sorted by
// sweep position, so failures reproduce run to run.
func Fig9Parallel(ops []op.MatMul, buffers []int64, seed int64, workers int) ([]Fig9Result, error) {
	return Fig9ParallelCtx(context.Background(), ops, buffers, seed, workers)
}

// Fig9ParallelCtx is Fig9Parallel with cooperative cancellation: when ctx is
// canceled, no further sweep points are dispatched, in-flight points abandon
// their search at the engine's next cancellation poll, and the call returns
// an error wrapping ctx.Err() instead of a partial sweep.
func Fig9ParallelCtx(ctx context.Context, ops []op.MatMul, buffers []int64, seed int64, workers int) ([]Fig9Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	caches := make([]*search.EvalCache, len(ops))
	points := make([][]Fig9Point, len(ops))
	for i := range ops {
		caches[i] = search.NewEvalCache()
		points[i] = make([]Fig9Point, len(buffers))
	}

	type job struct{ oi, bi int }
	total := len(ops) * len(buffers)
	if workers > total {
		workers = total
	}
	state := &fig9State{}
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				// Each worker writes a distinct points[oi][bi] slot; only
				// the error list is shared.
				p, err := fig9Point(ctx, ops[j.oi], buffers[j.bi], seed, caches[j.oi])
				if err != nil {
					state.mu.Lock()
					state.errs = append(state.errs, fig9Error{oi: j.oi, bi: j.bi, err: err})
					state.mu.Unlock()
					continue
				}
				points[j.oi][j.bi] = p
			}
		}()
	}
	done := ctx.Done()
dispatch:
	for oi := range ops {
		for bi := range buffers {
			select {
			case ch <- job{oi, bi}:
			case <-done:
				break dispatch
			}
		}
	}
	close(ch)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("experiments: fig9 sweep canceled: %w", err)
	}

	state.mu.Lock()
	defer state.mu.Unlock()
	if len(state.errs) > 0 {
		sort.Slice(state.errs, func(i, j int) bool {
			if state.errs[i].oi != state.errs[j].oi {
				return state.errs[i].oi < state.errs[j].oi
			}
			return state.errs[i].bi < state.errs[j].bi
		})
		joined := make([]error, len(state.errs))
		for i, e := range state.errs {
			joined[i] = e.err
		}
		return nil, errors.Join(joined...)
	}
	results := make([]Fig9Result, len(ops))
	for i, mm := range ops {
		results[i] = Fig9Result{Op: mm, Points: points[i]}
	}
	return results, nil
}

// fig9Error locates one failed sweep point for deterministic reporting.
type fig9Error struct {
	oi, bi int
	err    error
}

// fig9State is the mutex-guarded shared state of one parallel sweep
// (lockedsimstate-enforced, -race-backstopped like sim.ParallelSweep).
type fig9State struct {
	mu   sync.Mutex
	errs []fig9Error
}

// RenderFig9 renders each operator's sweep as a figure with the principle
// line and the search points, both normalized to the unfused ideal.
func RenderFig9(results []Fig9Result) []*report.Figure {
	var figs []*report.Figure
	for _, r := range results {
		f := report.NewFigure(
			fmt.Sprintf("Fig. 9 — normalized memory access vs DAT-style search, %v", r.Op),
			"buffer KiB", "MA / ideal")
		pl := f.AddSeries("principles (line)")
		se := f.AddSeries("search (points)")
		for _, p := range r.Points {
			x := float64(p.BufferElems) / 1024
			pl.Add(x, float64(p.PrincipleMA)/float64(p.Ideal))
			se.Add(x, float64(p.SearchMA)/float64(p.Ideal))
		}
		figs = append(figs, f)
	}
	return figs
}

// --------------------------------------------------------------- Fig. 10 --

// Fig10Row is one model's cross-platform comparison.
type Fig10Row struct {
	Model string
	// NormMA is memory access normalized to TPUv4i (the bar chart).
	NormMA map[string]float64
	// Util is performance normalized to peak FLOPs (the line chart).
	Util map[string]float64
	// Speedup is TPUv4i cycles over the platform's cycles.
	Speedup map[string]float64
	// Raw results per platform.
	Raw map[string]arch.Result
}

// Fig10 evaluates the given models on all five platforms.
func Fig10(models []model.Config) ([]Fig10Row, error) {
	platforms := arch.All()
	var rows []Fig10Row
	for _, cfg := range models {
		w, err := cfg.Build()
		if err != nil {
			return nil, err
		}
		row := Fig10Row{
			Model:   cfg.Name,
			NormMA:  map[string]float64{},
			Util:    map[string]float64{},
			Speedup: map[string]float64{},
			Raw:     map[string]arch.Result{},
		}
		for _, p := range platforms {
			r, err := p.EvaluateWorkload(w)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig10 %s on %s: %w", cfg.Name, p.Name, err)
			}
			row.Raw[p.Name] = r
		}
		base := row.Raw["TPUv4i"]
		for name, r := range row.Raw {
			row.NormMA[name] = float64(r.MA) / float64(base.MA)
			row.Util[name] = r.Utilization
			row.Speedup[name] = float64(base.Cycles) / float64(r.Cycles)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig10 renders the MA bars and utilization lines.
func RenderFig10(rows []Fig10Row) (*report.Table, *report.Table) {
	ma := report.NewTable("Fig. 10 (bars) — memory access normalized to TPUv4i",
		append([]string{"model"}, PlatformNames...)...)
	util := report.NewTable("Fig. 10 (lines) — performance normalized to peak FLOPs",
		append([]string{"model"}, PlatformNames...)...)
	for _, r := range rows {
		maRow := []interface{}{r.Model}
		utRow := []interface{}{r.Model}
		for _, p := range PlatformNames {
			maRow = append(maRow, r.NormMA[p])
			utRow = append(utRow, r.Util[p])
		}
		ma.AddRow(maRow...)
		util.AddRow(utRow...)
	}
	return ma, util
}

// -------------------------------------------------------------- Headline --

// Headline aggregates the paper's abstract numbers: average MA saving and
// speedup of FuseCU over each baseline.
type Headline struct {
	// SavingPct[name] is the mean percentage of memory access FuseCU
	// eliminates versus the named platform.
	SavingPct map[string]float64
	// Speedup[name] is the mean cycle-count ratio versus FuseCU.
	Speedup map[string]float64
	// UnfCUSavingPct mirrors the paper's UnfCU ablation.
	UnfCUSavingPct map[string]float64
}

// ComputeHeadline averages Fig. 10 rows into the headline claims.
func ComputeHeadline(rows []Fig10Row) Headline {
	h := Headline{
		SavingPct:      map[string]float64{},
		Speedup:        map[string]float64{},
		UnfCUSavingPct: map[string]float64{},
	}
	n := float64(len(rows))
	for _, row := range rows {
		for _, b := range BaselineNames {
			h.SavingPct[b] += (1 - float64(row.Raw["FuseCU"].MA)/float64(row.Raw[b].MA)) * 100 / n
			h.Speedup[b] += float64(row.Raw[b].Cycles) / float64(row.Raw["FuseCU"].Cycles) / n
			h.UnfCUSavingPct[b] += (1 - float64(row.Raw["UnfCU"].MA)/float64(row.Raw[b].MA)) * 100 / n
		}
	}
	return h
}

// RenderHeadline renders the abstract's comparison with the paper values
// alongside.
func RenderHeadline(h Headline) *report.Table {
	t := report.NewTable("Headline — FuseCU vs baselines (paper: 63.6/62.4/38.7 % MA saving; 1.33/1.25/1.14× speedup)",
		"baseline", "MA saving %", "speedup ×", "UnfCU saving %")
	for _, b := range BaselineNames {
		t.AddRow(b, h.SavingPct[b], h.Speedup[b], h.UnfCUSavingPct[b])
	}
	return t
}

// --------------------------------------------------------------- Fig. 11 --

// Fig11Row is one sequence length of the LLaMA2 sweep.
type Fig11Row struct {
	SeqLen int
	NormMA map[string]float64
	Util   map[string]float64
}

// Fig11 sweeps LLaMA2 sequence lengths on all platforms.
func Fig11(seqs []int) ([]Fig11Row, error) {
	platforms := arch.All()
	var rows []Fig11Row
	for _, s := range seqs {
		w, err := model.LLaMA2WithSeq(s).Build()
		if err != nil {
			return nil, err
		}
		row := Fig11Row{SeqLen: s, NormMA: map[string]float64{}, Util: map[string]float64{}}
		raw := map[string]arch.Result{}
		for _, p := range platforms {
			r, err := p.EvaluateWorkload(w)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig11 seq=%d on %s: %w", s, p.Name, err)
			}
			raw[p.Name] = r
		}
		for name, r := range raw {
			row.NormMA[name] = float64(r.MA) / float64(raw["TPUv4i"].MA)
			row.Util[name] = r.Utilization
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig11 renders the sweep.
func RenderFig11(rows []Fig11Row) *report.Figure {
	f := report.NewFigure("Fig. 11 — LLaMA2 vs sequence length (MA normalized to TPUv4i)",
		"seq", "normalized MA")
	series := map[string]*report.Series{}
	for _, p := range PlatformNames {
		series[p] = f.AddSeries(p)
	}
	for _, r := range rows {
		for _, p := range PlatformNames {
			series[p].Add(float64(r.SeqLen), r.NormMA[p])
		}
	}
	return f
}

// --------------------------------------------------------------- Fig. 12 --

// Fig12 returns the area breakdowns.
func Fig12() (fuse, tpu, planaria area.Breakdown) {
	cfg := area.DefaultConfig()
	return area.FuseCU(cfg), area.TPUv4i(cfg), area.Planaria(cfg)
}

// RenderFig12 renders the FuseCU breakdown and the overhead summary.
func RenderFig12() (*report.Table, *report.Table) {
	fuse, _, planaria := Fig12()
	cfg := area.DefaultConfig()

	bd := report.NewTable("Fig. 12 — FuseCU area breakdown at 28 nm", "component", "area mm²", "share %", "overhead")
	for _, c := range fuse.Components {
		share, err := fuse.Share(c.Name)
		if err != nil {
			continue // component list and breakdown disagree; skip the row
		}
		bd.AddRow(c.Name, c.Area()/1e6, share, c.Overhead)
	}

	ov := report.NewTable("Fig. 12 — overheads (paper: FuseCU 12.0 %, interconnect+control < 0.1 %, Planaria 12.6 %)",
		"metric", "value %")
	ov.AddRow("FuseCU overhead vs TPUv4i", fuse.OverheadPct())
	ov.AddRow("FuseCU interconnect+control share", area.InterconnectPct(cfg))
	ov.AddRow("Planaria interconnect overhead", planaria.OverheadPct())
	return bd, ov
}

// ---------------------------------------------------------------- Tables --

// Table1 renders the optimizer-feature summary (Table I).
func Table1() *report.Table {
	t := report.NewTable("Table I — dataflow optimizer features",
		"optimizer", "full tiling+scheduling space", "optimization scheme", "mapping scheme", "fusion medium")
	t.AddRow("intra-op DSE (CoSA/GAMMA/…)", "no", "searching", "searching, fixed patterns", "none")
	t.AddRow("Chimera", "no", "searching", "replaceable micro kernels", "memory")
	t.AddRow("SET", "no", "searching", "not discussed", "memory")
	t.AddRow("FLAT", "no", "searching", "not discussed", "memory")
	t.AddRow("DAT", "yes", "searching", "not discussed", "memory")
	t.AddRow("this work", "yes", "principle-based", "principle-based", "compute unit")
	return t
}

// Table2 renders the evaluation model parameters (Table II).
func Table2() *report.Table {
	t := report.NewTable("Table II — transformer model parameters (batch 16)",
		"model", "heads", "seq length", "hidden size", "FFN dim")
	for _, c := range model.TableII() {
		t.AddRow(c.Name, c.Heads, c.SeqLen, c.Hidden, c.FFN())
	}
	return t
}

// Table3 renders the platform attributes (Table III).
func Table3() *report.Table {
	t := report.NewTable("Table III — spatial architecture attributes",
		"platform", "stationary flex.", "tiling flex.", "tensor fusion")
	for _, p := range arch.All() {
		stat := "×"
		if p.StationaryFlex {
			stat = "✓"
		}
		fus := "×"
		if p.SupportsFusion {
			fus = "✓"
		}
		t.AddRow(p.Name, stat, p.TilingFlex.String(), fus)
	}
	return t
}
