package experiments

import (
	"reflect"
	"testing"

	"fusecu/internal/op"
)

// TestFig9SweepMatchesFig9 pins the fast path's contract: every
// paper-facing value — and even the per-point candidate-visit total — is
// bit-identical to the plain per-point-scan harness.
func TestFig9SweepMatchesFig9(t *testing.T) {
	ops := []op.MatMul{
		{Name: "proj", M: 256, K: 192, L: 192},
		{Name: "QKt", M: 256, K: 32, L: 256},
		{Name: "attnV", M: 256, K: 256, L: 32},
	}
	buffers := []int64{4 << 10, 16 << 10, 64 << 10}
	want, err := Fig9(ops, buffers, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Fig9Sweep(ops, buffers, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op {
			t.Fatalf("op order changed: %v vs %v", got[i].Op, want[i].Op)
		}
		for j := range want[i].Points {
			gp, wp := got[i].Points[j], want[i].Points[j]
			if gp.BufferElems != wp.BufferElems || gp.PrincipleMA != wp.PrincipleMA ||
				gp.SearchMA != wp.SearchMA || gp.Ideal != wp.Ideal {
				t.Errorf("%v BS=%d: point diverged: %+v vs %+v", want[i].Op, wp.BufferElems, gp, wp)
			}
			// The table serves each point's lattice stage without invoking
			// the cost model, but the visit accounting must be conserved
			// point for point, not just in aggregate.
			if gp.SearchEvals+gp.SearchCacheHits != wp.SearchEvals+wp.SearchCacheHits {
				t.Errorf("%v BS=%d: visits %d+%d, scan path %d+%d", want[i].Op, wp.BufferElems,
					gp.SearchEvals, gp.SearchCacheHits, wp.SearchEvals, wp.SearchCacheHits)
			}
		}
	}
}

// TestFig9SweepDeterministic double-runs the fast path.
func TestFig9SweepDeterministic(t *testing.T) {
	ops := []op.MatMul{{Name: "QKt", M: 256, K: 32, L: 256}}
	buffers := []int64{4 << 10, 64 << 10}
	a, err := Fig9Sweep(ops, buffers, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig9Sweep(ops, buffers, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestFig11SearchSweep checks the table-backed LLaMA2 validation: the
// principle optimum never loses to the coarse-lattice search, tables are
// shared across a layer's identically shaped operators, and the sweep is
// deterministic.
func TestFig11SearchSweep(t *testing.T) {
	seqs := []int{256, 512}
	buffers := []int64{16 << 10, 256 << 10}
	rows, stats, err := Fig11Search(seqs, buffers)
	if err != nil {
		t.Fatal(err)
	}
	// Each LLaMA2 layer contributes five distinct shapes: the shared
	// projection shape (×4 chains), QKt, SV, and the two FFN halves.
	wantRows := len(seqs) * 5 * len(buffers)
	if len(rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(rows), wantRows)
	}
	if stats.ShapeRefs != int64(len(seqs)*5) {
		t.Errorf("ShapeRefs = %d, want %d", stats.ShapeRefs, len(seqs)*5)
	}
	// Shapes depend on the sequence length, so nothing collapses across
	// seqs here — but every reference must have been built exactly once.
	if stats.TableBuilds != stats.ShapeRefs {
		t.Errorf("TableBuilds = %d, want %d (no cross-seq sharing at these lengths)", stats.TableBuilds, stats.ShapeRefs)
	}
	if stats.BuildEvals == 0 {
		t.Error("no build evaluations recorded")
	}
	var projCount int64
	for _, r := range rows {
		if r.SearchMA < r.PrincipleMA {
			t.Errorf("seq=%d %v BS=%d: search %d beats principles %d", r.SeqLen, r.Op, r.BufferElems, r.SearchMA, r.PrincipleMA)
		}
		if r.Visits <= 0 {
			t.Errorf("seq=%d %v BS=%d: no candidate visits recorded", r.SeqLen, r.Op, r.BufferElems)
		}
		if r.SeqLen == seqs[0] && r.Op.Name == "proj-q" {
			projCount = r.Count
		}
	}
	if projCount != 4 {
		t.Errorf("projection shape count = %d, want 4 (q/k/v/out share one table)", projCount)
	}

	again, stats2, err := Fig11Search(seqs, buffers)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, again) || stats2 != stats {
		t.Fatal("two identical Fig11Search runs diverged")
	}
}
