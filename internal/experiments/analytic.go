package experiments

import (
	"context"
	"fmt"

	"fusecu/internal/core"
	"fusecu/internal/op"
	"fusecu/internal/search"
)

// Fig9Analytic computes the validation sweep through the closed-form
// analytic optimizer alone: one compiled engine per operator, and per
// buffer point only the integer boundary candidates around each regime's
// interior optimum — no lattice scan, no evaluation cache, no randomness.
// On shapes inside the engine's exact-extent regime the MA values match
// the lattice+polish engines point for point; the per-point SearchEvals
// are the analytic engine's own evaluation counts (tens, versus the GA
// polish's thousands), and SearchCacheHits is always zero, so the bench
// compares this column on MA only rather than on visit conservation.
func Fig9Analytic(ops []op.MatMul, buffers []int64) ([]Fig9Result, error) {
	return Fig9AnalyticCtx(context.Background(), ops, buffers)
}

// Fig9AnalyticCtx is Fig9Analytic with cooperative cancellation: when ctx
// is canceled the in-flight point stops at the engine's next poll and the
// sweep returns the error instead of a partial result set.
func Fig9AnalyticCtx(ctx context.Context, ops []op.MatMul, buffers []int64) ([]Fig9Result, error) {
	var results []Fig9Result
	for _, mm := range ops {
		r := Fig9Result{Op: mm}
		eng, err := search.NewAnalytic(mm)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig9 analytic %v: %w", mm, err)
		}
		for _, bs := range buffers {
			pr, err := core.Optimize(mm, bs)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig9 %v BS=%d: %w", mm, bs, err)
			}
			sr, err := eng.OptimizeCtx(ctx, bs)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig9 analytic %v BS=%d: %w", mm, bs, err)
			}
			r.Points = append(r.Points, Fig9Point{
				BufferElems: bs,
				PrincipleMA: pr.Access.Total,
				SearchMA:    sr.Access.Total,
				Ideal:       mm.IdealMA(),
				SearchEvals: sr.Evaluations,
			})
		}
		results = append(results, r)
	}
	return results, nil
}
