package sched

import (
	"math/rand"
	"testing"
)

func TestListScheduleSingleTask(t *testing.T) {
	tl, err := ListSchedule([]Task{{Name: "a", Cycles: 100, CUs: 1}}, 4, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Makespan != 100 || len(tl.Placements) != 1 || tl.Placements[0].Start != 0 {
		t.Fatalf("timeline = %+v", tl)
	}
}

func TestListSchedulePerfectPacking(t *testing.T) {
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{Name: "t", Cycles: 50, CUs: 1}
	}
	tl, err := ListSchedule(tasks, 4, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Makespan != 100 {
		t.Fatalf("makespan = %d, want 100", tl.Makespan)
	}
	if u := tl.Utilization(); u != 1.0 {
		t.Fatalf("utilization = %f", u)
	}
}

func TestListScheduleMultiCUTask(t *testing.T) {
	tasks := []Task{
		{Name: "wide", Cycles: 60, CUs: 4},
		{Name: "narrow", Cycles: 30, CUs: 1},
	}
	tl, err := ListSchedule(tasks, 4, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Makespan != 90 {
		t.Fatalf("makespan = %d, want 90 (wide then narrow)", tl.Makespan)
	}
	if len(tl.Placements[0].CUIDs) != 4 {
		t.Fatalf("wide task CUs = %v", tl.Placements[0].CUIDs)
	}
}

func TestNoOverlappingPlacements(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var tasks []Task
	for i := 0; i < 60; i++ {
		tasks = append(tasks, Task{
			Name:   "t",
			Cycles: int64(rng.Intn(200) + 1),
			CUs:    []int{1, 1, 1, 2, 4}[rng.Intn(5)],
		})
	}
	tl, err := ListSchedule(tasks, 4, LPT)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct per-CU intervals and check disjointness.
	type interval struct{ s, e int64 }
	perCU := map[int][]interval{}
	for _, p := range tl.Placements {
		for _, id := range p.CUIDs {
			perCU[id] = append(perCU[id], interval{p.Start, p.End()})
		}
	}
	for id, ivs := range perCU {
		for i := 0; i < len(ivs); i++ {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				if a.s < b.e && b.s < a.e {
					t.Fatalf("CU %d double-booked: [%d,%d) and [%d,%d)", id, a.s, a.e, b.s, b.e)
				}
			}
		}
	}
}

// Graham's bound: LPT list scheduling stays within 2× of the trivial lower
// bound (it is actually 4/3 for unit-width tasks; ganged tasks loosen it).
func TestLPTWithinGrahamBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var tasks []Task
		for i := 0; i < rng.Intn(50)+5; i++ {
			tasks = append(tasks, Task{
				Name:   "t",
				Cycles: int64(rng.Intn(500) + 1),
				CUs:    []int{1, 1, 2, 4}[rng.Intn(4)],
			})
		}
		tl, err := ListSchedule(tasks, 4, LPT)
		if err != nil {
			t.Fatal(err)
		}
		lb := LowerBound(tasks, 4)
		if tl.Makespan < lb {
			t.Fatalf("makespan %d below lower bound %d — impossible", tl.Makespan, lb)
		}
		if tl.Makespan > 2*lb {
			t.Fatalf("makespan %d exceeds 2× lower bound %d", tl.Makespan, lb)
		}
	}
}

func TestLPTNeverWorseThanFIFOOnSortedAdversary(t *testing.T) {
	// Ascending sizes: FIFO leaves the longest task for last.
	var tasks []Task
	for i := 1; i <= 16; i++ {
		tasks = append(tasks, Task{Name: "t", Cycles: int64(i * 10), CUs: 1})
	}
	fifo, _ := ListSchedule(tasks, 4, FIFO)
	lpt, _ := ListSchedule(tasks, 4, LPT)
	if lpt.Makespan > fifo.Makespan {
		t.Fatalf("LPT %d worse than FIFO %d", lpt.Makespan, fifo.Makespan)
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := ListSchedule([]Task{{Cycles: 1, CUs: 8}}, 4, FIFO); err == nil {
		t.Fatal("oversized CU demand accepted")
	}
	if _, err := ListSchedule([]Task{{Cycles: -1, CUs: 1}}, 4, FIFO); err == nil {
		t.Fatal("negative cycles accepted")
	}
	if _, err := ListSchedule([]Task{{Cycles: 1, CUs: 0}}, 4, FIFO); err == nil {
		t.Fatal("zero CUs accepted")
	}
	if _, err := ListSchedule(nil, 0, FIFO); err == nil {
		t.Fatal("zero fabric accepted")
	}
}

func TestLowerBound(t *testing.T) {
	tasks := []Task{
		{Cycles: 100, CUs: 1},
		{Cycles: 10, CUs: 4},
	}
	// work = 100 + 40 = 140 → ceil(140/4) = 35; longest = 100.
	if lb := LowerBound(tasks, 4); lb != 100 {
		t.Fatalf("LowerBound = %d, want 100", lb)
	}
}

func TestUtilizationEmpty(t *testing.T) {
	tl, err := ListSchedule(nil, 4, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Utilization() != 0 || tl.Makespan != 0 {
		t.Fatal("empty schedule should be zero")
	}
}
