// Package sched is a discrete-event list scheduler for the four-CU fabric:
// chain instances become tasks with a cycle cost and a CU-width demand
// (tile fusion occupies one CU, column fusion a producer/consumer pair,
// ganged executions two or four). It produces a placement timeline and a
// makespan, the instance-level counterpart to internal/perf's aggregate
// roofline — useful for checking that the roofline's perfect-packing
// assumption is not hiding scheduling cliffs.
package sched

import (
	"fmt"
	"sort"
)

// Task is one schedulable unit of work.
type Task struct {
	Name string
	// Cycles the task occupies its CUs.
	Cycles int64
	// CUs is the number of compute units the task needs simultaneously
	// (1, 2 or 4 on the FuseCU fabric).
	CUs int
}

// Validate rejects degenerate tasks.
func (t Task) Validate() error {
	if t.Cycles < 0 {
		return fmt.Errorf("sched: task %q has negative cycles", t.Name)
	}
	if t.CUs < 1 {
		return fmt.Errorf("sched: task %q needs %d CUs", t.Name, t.CUs)
	}
	return nil
}

// Placement records where one task ran.
type Placement struct {
	Task  Task
	Start int64
	// CUIDs lists the compute units the task occupied.
	CUIDs []int
}

// End returns the finish time.
func (p Placement) End() int64 { return p.Start + p.Task.Cycles }

// Timeline is the outcome of scheduling.
type Timeline struct {
	Makespan int64
	// PerCU is each compute unit's busy-cycle total.
	PerCU []int64
	// Placements in execution order.
	Placements []Placement
}

// Utilization returns busy cycles over makespan × CUs.
func (t Timeline) Utilization() float64 {
	if t.Makespan == 0 {
		return 0
	}
	var busy int64
	for _, b := range t.PerCU {
		busy += b
	}
	return float64(busy) / (float64(t.Makespan) * float64(len(t.PerCU)))
}

// Policy orders the task list before greedy placement.
type Policy uint8

// FIFO keeps submission order; LPT (longest processing time first) is the
// classic 4/3-approximation ordering.
const (
	FIFO Policy = iota
	LPT
)

// ListSchedule greedily places tasks onto cus compute units: each task
// takes the k CUs that become free earliest and starts when the latest of
// them frees up. Multi-CU tasks gang adjacent-by-availability units,
// mirroring the Fig. 7 interconnect (any pair of CUs can be connected).
func ListSchedule(tasks []Task, cus int, policy Policy) (Timeline, error) {
	if cus < 1 {
		return Timeline{}, fmt.Errorf("sched: %d compute units", cus)
	}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return Timeline{}, err
		}
		if t.CUs > cus {
			return Timeline{}, fmt.Errorf("sched: task %q needs %d CUs, fabric has %d", t.Name, t.CUs, cus)
		}
	}
	order := make([]Task, len(tasks))
	copy(order, tasks)
	if policy == LPT {
		sort.SliceStable(order, func(i, j int) bool {
			// Wider tasks first among equals: they are hardest to place.
			if order[i].Cycles != order[j].Cycles {
				return order[i].Cycles > order[j].Cycles
			}
			return order[i].CUs > order[j].CUs
		})
	}

	free := make([]int64, cus)
	tl := Timeline{PerCU: make([]int64, cus)}
	type cuState struct {
		id   int
		free int64
	}
	for _, t := range order {
		states := make([]cuState, cus)
		for i, fr := range free {
			states[i] = cuState{id: i, free: fr}
		}
		sort.Slice(states, func(i, j int) bool {
			if states[i].free != states[j].free {
				return states[i].free < states[j].free
			}
			return states[i].id < states[j].id
		})
		chosen := states[:t.CUs]
		start := int64(0)
		for _, c := range chosen {
			if c.free > start {
				start = c.free
			}
		}
		ids := make([]int, 0, t.CUs)
		for _, c := range chosen {
			ids = append(ids, c.id)
			free[c.id] = start + t.Cycles
			tl.PerCU[c.id] += t.Cycles
		}
		sort.Ints(ids)
		tl.Placements = append(tl.Placements, Placement{Task: t, Start: start, CUIDs: ids})
		if end := start + t.Cycles; end > tl.Makespan {
			tl.Makespan = end
		}
	}
	return tl, nil
}

// LowerBound returns the trivial makespan floor: max(total work / CUs,
// longest task).
func LowerBound(tasks []Task, cus int) int64 {
	var total, longest int64
	for _, t := range tasks {
		total += t.Cycles * int64(t.CUs)
		if t.Cycles > longest {
			longest = t.Cycles
		}
	}
	floor := (total + int64(cus) - 1) / int64(cus)
	if longest > floor {
		return longest
	}
	return floor
}
