package cost

import (
	"math/rand"
	"testing"

	"fusecu/internal/dataflow"
	"fusecu/internal/op"
)

// TestRegimeMatchesEvalOne pins the affine cell descriptor against the batch
// kernel itself: for every order and every tiling, classifying the tiling
// into its cell (which trips exceed one) and applying Regime's base +
// coef·trips form must reproduce the evaluated Total bit for bit. This is
// the contract the analytic optimizer's per-cell closed forms stand on.
func TestRegimeMatchesEvalOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []op.MatMul{
		{Name: "sq", M: 12, K: 10, L: 14},
		{Name: "gemv", M: 1, K: 48, L: 40},
		{Name: "moe-tinyk", M: 24, K: 2, L: 56},
		{Name: "gqa-smalll", M: 40, K: 36, L: 3},
	}
	for trial := 0; trial < 4; trial++ {
		shapes = append(shapes, op.MatMul{
			Name: "rand",
			M:    rng.Intn(30) + 1,
			K:    rng.Intn(30) + 1,
			L:    rng.Intn(30) + 1,
		})
	}
	orders := dataflow.AllOrders()
	for _, mm := range shapes {
		kern, err := NewBatchEval(mm, orders)
		if err != nil {
			t.Fatalf("%v: %v", mm, err)
		}
		for probe := 0; probe < 200; probe++ {
			ti := dataflow.MustTiling(mm, rng.Intn(mm.M)+1, rng.Intn(mm.K)+1, rng.Intn(mm.L)+1)
			trips := [3]int64{
				int64((mm.M + ti.TM - 1) / ti.TM),
				int64((mm.K + ti.TK - 1) / ti.TK),
				int64((mm.L + ti.TL - 1) / ti.TL),
			}
			multi := [3]bool{trips[0] > 1, trips[1] > 1, trips[2] > 1}
			for oi := range orders {
				base, coef := kern.Regime(uint8(oi), multi)
				affine := base + coef[0]*trips[0] + coef[1]*trips[1] + coef[2]*trips[2]
				got := kern.evalOne(uint8(oi), int32(ti.TM), int32(ti.TK), int32(ti.TL), ti.Footprint())
				if affine != got.Total {
					t.Fatalf("%v order %d tiling %v: affine %d (base %d coef %v trips %v) != evalOne %d",
						mm, oi, ti, affine, base, coef, trips, got.Total)
				}
			}
		}
	}
}

// TestRegimeInnermostCoefficientZero pins the structural property the
// analytic optimizer's two-variable reduction relies on: the innermost dim's
// coefficient is zero in every cell (its tensor's inner dim list is empty),
// so no cell ever has three free positive-coefficient trip counts.
func TestRegimeInnermostCoefficientZero(t *testing.T) {
	mm := op.MatMul{Name: "p", M: 8, K: 9, L: 10}
	orders := dataflow.AllOrders()
	kern, err := NewBatchEval(mm, orders)
	if err != nil {
		t.Fatal(err)
	}
	slot := map[dataflow.Dim]int{dataflow.DimM: 0, dataflow.DimK: 1, dataflow.DimL: 2}
	for oi, o := range orders {
		inner := slot[o[len(o)-1]]
		for mask := 0; mask < 8; mask++ {
			multi := [3]bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
			_, coef := kern.Regime(uint8(oi), multi)
			if coef[inner] != 0 {
				t.Fatalf("order %v mask %03b: innermost slot %d has coefficient %d", o, mask, inner, coef[inner])
			}
			free := 0
			for d := 0; d < 3; d++ {
				if multi[d] && coef[d] > 0 {
					free++
				}
			}
			if free > 2 {
				t.Fatalf("order %v mask %03b: %d free positive coefficients", o, mask, free)
			}
		}
	}
}
