package cost

import (
	"fmt"

	"fusecu/internal/dataflow"
	"fusecu/internal/invariant"
	"fusecu/internal/op"
)

// This file is the batch-evaluation core: the data-centric dual of Evaluate,
// in the spirit of MAESTRO's block-wise cost analysis. Evaluate prices one
// candidate per call and re-derives everything from scratch each time —
// operator validation, dataflow validation, loop-position scans over the
// Order — which is exact but wasteful when a search engine visits 10⁴–10⁶
// candidates of the *same* operator under the *same* handful of loop orders.
// BatchEval hoists all of that per-(operator, order) work into construction:
// it validates once, resolves each order's reuse structure into a flat plan
// (which inner loops can evict which resident tile), and then evaluates
// whole struct-of-arrays Blocks of candidates with nothing left per
// candidate but integer arithmetic on the three trip counts. The results are
// bit-identical to Evaluate — every Access field, including OutputReads and
// the NRA class — which TestBatchEvalMatchesEvaluate pins across randomized
// shapes, skewed decode-style shapes (M=1 GEMV, tiny-K, small-L), and every
// lattice candidate.

// Block is a struct-of-arrays batch of evaluation candidates over one
// operator: parallel slices of order indices, tile triples and precomputed
// footprints, with Out receiving the evaluated Access per candidate. Engines
// reuse one Block per scan, so the steady state allocates nothing per
// candidate (pinned by BenchmarkBatchKernel / TestEvalBlockZeroAllocs).
type Block struct {
	// OI indexes the candidate's loop order in the order list the kernel
	// was compiled with; TM, TK, TL are the tile triple.
	OI         []uint8
	TM, TK, TL []int32
	// Foot is the candidate's buffer footprint T_M·T_K + T_K·T_L + T_M·T_L,
	// precomputed by the generator (the enumeration engines already price it
	// for pruning) and copied into Out[i].Footprint verbatim.
	Foot []int64
	// Out receives the evaluated access per candidate; len(Out) == Len()
	// after an EvalBlock call. Entries for indices served from a cache are
	// written by the caller before an EvalIndexed pass fills the rest.
	Out []Access
}

// NewBlock returns an empty block with capacity for n candidates.
func NewBlock(n int) *Block {
	return &Block{
		OI: make([]uint8, 0, n), TM: make([]int32, 0, n),
		TK: make([]int32, 0, n), TL: make([]int32, 0, n),
		Foot: make([]int64, 0, n), Out: make([]Access, 0, n),
	}
}

// Len returns the number of candidates currently in the block.
func (b *Block) Len() int { return len(b.OI) }

// Cap returns the block's candidate capacity.
func (b *Block) Cap() int { return cap(b.OI) }

// Full reports whether the block has reached its capacity.
func (b *Block) Full() bool { return len(b.OI) == cap(b.OI) }

// Reset empties the block, retaining capacity.
func (b *Block) Reset() {
	b.OI, b.TM, b.TK, b.TL = b.OI[:0], b.TM[:0], b.TK[:0], b.TL[:0]
	b.Foot, b.Out = b.Foot[:0], b.Out[:0]
}

// Push appends one candidate. The caller guarantees the block is not full
// and the tiles are valid for the kernel's operator.
func (b *Block) Push(oi uint8, tm, tk, tl int32, foot int64) {
	b.OI = append(b.OI, oi)
	b.TM, b.TK, b.TL = append(b.TM, tm), append(b.TK, tk), append(b.TL, tl)
	b.Foot = append(b.Foot, foot)
	b.Out = append(b.Out, Access{})
}

// orderPlan is one loop order's reuse structure, resolved once at kernel
// construction so per-candidate evaluation never walks the Order again.
// Every "which loops sit inner to X and touch tensor T" question Evaluate
// answers with a positional scan is precompiled into a short dim list; at
// evaluation time each list collapses to at most two trip-count compares.
type orderPlan struct {
	// innerA / innerB list the dims placed inner to the input tensor's
	// irrelevant loop that index that tensor — the loops whose advance
	// evicts the resident tile (inputTraffic's scan). innerC lists the
	// non-K dims inner to the K loop — the loops whose advance spills the
	// accumulating C tile (outputTraffic's scan). Dims are trip-slot
	// indices (0=M, 1=K, 2=L); only the first n entries are live.
	innerA, innerB, innerC    [2]uint8
	nInnerA, nInnerB, nInnerC uint8
	// stationary is the rotation class of the order, re-exported so SoA
	// consumers (candidate tables) never reconstruct an Order to ask.
	stationary dataflow.StationaryKind
}

// BatchEval is a cost kernel compiled for one operator and one order list.
// It is immutable after construction and safe for concurrent use; parallel
// scan workers share one kernel.
type BatchEval struct {
	mm                  op.MatMul
	m, k, l             int64
	sizeA, sizeB, sizeC int64
	ideal               int64
	plans               []orderPlan
}

// NewBatchEval validates mm and every order once and compiles the per-order
// reuse plans. orders is typically dataflow.AllOrders(); candidates pushed
// into blocks refer to it by index.
func NewBatchEval(mm op.MatMul, orders []dataflow.Order) (*BatchEval, error) {
	if err := mm.Validate(); err != nil {
		return nil, err
	}
	if len(orders) == 0 || len(orders) > 256 {
		return nil, fmt.Errorf("cost: batch kernel needs 1-256 orders, got %d", len(orders))
	}
	k := &BatchEval{
		mm: mm,
		m:  int64(mm.M), k: int64(mm.K), l: int64(mm.L),
		sizeA: mm.SizeA(), sizeB: mm.SizeB(), sizeC: mm.SizeC(),
		ideal: mm.IdealMA(),
		plans: make([]orderPlan, len(orders)),
	}
	for i, o := range orders {
		if err := o.Validate(); err != nil {
			return nil, err
		}
		p := &k.plans[i]
		p.stationary = o.Stationary().Kind()
		fill := func(t dataflow.Tensor, after dataflow.Dim, dims *[2]uint8, n *uint8) {
			pos := o.Position(after)
			for q := pos + 1; q < len(o); q++ {
				d := o[q]
				if d != after && t.HasDim(d) {
					dims[*n] = uint8(d)
					*n++
				}
			}
		}
		// Inputs: the irrelevant loop is L for A and M for B; an inner loop
		// indexing the tensor evicts its resident tile. Output: any non-K
		// loop inside the reduction spills the accumulating C tile.
		fill(dataflow.TensorA, dataflow.DimL, &p.innerA, &p.nInnerA)
		fill(dataflow.TensorB, dataflow.DimM, &p.innerB, &p.nInnerB)
		fill(dataflow.TensorC, dataflow.DimK, &p.innerC, &p.nInnerC)
	}
	return k, nil
}

// Op returns the operator the kernel was compiled for.
func (k *BatchEval) Op() op.MatMul { return k.mm }

// Regime describes the cost model's exact affine form inside one activity
// cell of order index oi. A cell fixes which trip counts exceed one
// (multi[d] for trip slot d: 0=M, 1=K, 2=L); within it every streaming
// condition in evalOne resolves to a constant, so the total memory access of
// any tiling in the cell is exactly
//
//	Total = base + coef[0]·n_M + coef[1]·n_K + coef[2]·n_L.
//
// Each coefficient is the size of the tensor the trip count streams — sizeB
// for n_M, sizeC for n_K, sizeA for n_L — or zero when the cell keeps that
// tensor resident. The innermost dim's coefficient is structurally zero for
// every cell (its inner dim list is empty), which is what caps the analytic
// optimizer's per-cell problems at two free variables. Pinned bit-identical
// to evalOne by TestRegimeMatchesEvalOne.
func (k *BatchEval) Regime(oi uint8, multi [3]bool) (base int64, coef [3]int64) {
	p := &k.plans[oi]
	streams := func(inner []uint8, irr bool) bool {
		if !irr {
			return false
		}
		for _, d := range inner {
			if multi[d] {
				return true
			}
		}
		return false
	}
	if streams(p.innerA[:p.nInnerA], multi[2]) {
		coef[2] = k.sizeA
	} else {
		base += k.sizeA
	}
	if streams(p.innerB[:p.nInnerB], multi[0]) {
		coef[0] = k.sizeB
	} else {
		base += k.sizeB
	}
	if streams(p.innerC[:p.nInnerC], multi[1]) {
		coef[1] = k.sizeC
	} else {
		base += k.sizeC
	}
	return base, coef
}

// Stationary returns the rotation class of order index oi.
func (k *BatchEval) Stationary(oi uint8) dataflow.StationaryKind {
	return k.plans[oi].stationary
}

// EvalBlock evaluates every candidate in b, writing b.Out[i] for each. The
// results are bit-identical to Evaluate on the corresponding Dataflow.
func (k *BatchEval) EvalBlock(b *Block) {
	for i := range b.OI {
		b.Out[i] = k.evalOne(b.OI[i], b.TM[i], b.TK[i], b.TL[i], b.Foot[i])
	}
}

// EvalIndexed evaluates only the candidates at the given block indices —
// the cache-miss residue of a block whose hits were already filled in.
func (k *BatchEval) EvalIndexed(b *Block, idx []int32) {
	for _, i := range idx {
		b.Out[i] = k.evalOne(b.OI[i], b.TM[i], b.TK[i], b.TL[i], b.Foot[i])
	}
}

// evalOne prices a single candidate from the compiled plan: three trip-count
// divisions, at most six trip compares, and the checked traffic products.
func (k *BatchEval) evalOne(oi uint8, tm, tk, tl int32, foot int64) Access {
	invariant.Assert(int64(tm) >= 1 && int64(tm) <= k.m &&
		int64(tk) >= 1 && int64(tk) <= k.k &&
		int64(tl) >= 1 && int64(tl) <= k.l,
		"cost: batch candidate tiles (%d,%d,%d) outside %v", tm, tk, tl, k.mm)
	p := &k.plans[oi]
	var trips [3]int64
	trips[0] = (k.m + int64(tm) - 1) / int64(tm)
	trips[1] = (k.k + int64(tk) - 1) / int64(tk)
	trips[2] = (k.l + int64(tl) - 1) / int64(tl)

	var a Access
	a.Footprint = foot

	// Input A (irrelevant loop L): one load unless an inner A-indexing loop
	// advances, then the whole tensor streams once per L iteration.
	ta := k.sizeA
	if nIrr := trips[2]; nIrr > 1 {
		for _, d := range p.innerA[:p.nInnerA] {
			if trips[d] > 1 {
				ta = invariant.CheckedMul(k.sizeA, nIrr)
				break
			}
		}
	}
	// Input B (irrelevant loop M), symmetric.
	tb := k.sizeB
	if nIrr := trips[0]; nIrr > 1 {
		for _, d := range p.innerB[:p.nInnerB] {
			if trips[d] > 1 {
				tb = invariant.CheckedMul(k.sizeB, nIrr)
				break
			}
		}
	}
	// Output C: accumulate in place unless a non-K loop inside the reduction
	// advances; a spill writes every visit and reads back every revisit.
	writes, reads := k.sizeC, int64(0)
	if nK := trips[1]; nK > 1 {
		for _, d := range p.innerC[:p.nInnerC] {
			if trips[d] > 1 {
				writes = invariant.CheckedMul(k.sizeC, nK)
				reads = invariant.CheckedMul(k.sizeC, nK-1)
				break
			}
		}
	}

	a.PerTensor[dataflow.TensorA] = ta
	a.PerTensor[dataflow.TensorB] = tb
	a.PerTensor[dataflow.TensorC] = writes
	a.OutputWrites, a.OutputReads = writes, reads
	a.Total = ta + tb + writes

	n := 0
	if ta == k.sizeA {
		n++
	}
	if tb == k.sizeB {
		n++
	}
	if writes == k.sizeC {
		n++
	}
	a.NRA = dataflow.NRAClass(n)
	invariant.Assert(a.Total >= k.ideal,
		"MA total %d below communication lower bound %d for %v (batch)", a.Total, k.ideal, k.mm)
	return a
}
