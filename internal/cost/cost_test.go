package cost

import (
	"testing"

	"fusecu/internal/dataflow"
	"fusecu/internal/op"
)

// Eq. 1: output-stationary Single-NRA dataflow has
// MA = MKL(1/T_L + 1/T_M) + ML when the tiles divide the dims.
func TestEvaluateMatchesPaperEq1(t *testing.T) {
	mm := op.MatMul{M: 64, K: 32, L: 48}
	df := dataflow.Dataflow{
		Order:  dataflow.OrderOS,
		Tiling: dataflow.Tiling{TM: 8, TK: 1, TL: 6},
	}
	a, err := Evaluate(mm, df)
	if err != nil {
		t.Fatal(err)
	}
	mkl := mm.MACs()
	wantA := mkl / 6 // MK·L/T_L
	wantB := mkl / 8 // KL·M/T_M
	wantC := mm.SizeC()
	if a.PerTensor[dataflow.TensorA] != wantA {
		t.Errorf("MA(A) = %d, want %d", a.PerTensor[dataflow.TensorA], wantA)
	}
	if a.PerTensor[dataflow.TensorB] != wantB {
		t.Errorf("MA(B) = %d, want %d", a.PerTensor[dataflow.TensorB], wantB)
	}
	if a.PerTensor[dataflow.TensorC] != wantC {
		t.Errorf("MA(C) = %d, want %d", a.PerTensor[dataflow.TensorC], wantC)
	}
	if a.NRA != dataflow.SingleNRA {
		t.Errorf("NRA = %s, want Single-NRA", a.NRA)
	}
	if a.Total != wantA+wantB+wantC {
		t.Errorf("Total = %d", a.Total)
	}
}

// Eq. 3: Two-NRA with K untiled has MA = MKL/T_M + MK + ML.
func TestEvaluateMatchesPaperEq3(t *testing.T) {
	mm := op.MatMul{M: 64, K: 32, L: 48}
	df := dataflow.Dataflow{
		Order:  dataflow.OrderIS, // M outer, K, then L inner; A stationary
		Tiling: dataflow.Tiling{TM: 16, TK: 32, TL: 1},
	}
	a, err := Evaluate(mm, df)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := a.PerTensor[dataflow.TensorA], mm.SizeA(); got != want {
		t.Errorf("MA(A) = %d, want %d (non-redundant)", got, want)
	}
	if got, want := a.PerTensor[dataflow.TensorB], mm.MACs()/16; got != want {
		t.Errorf("MA(B) = %d, want MKL/T_M = %d", got, want)
	}
	if got, want := a.PerTensor[dataflow.TensorC], mm.SizeC(); got != want {
		t.Errorf("MA(C) = %d, want %d", got, want)
	}
	if a.NRA != dataflow.TwoNRA {
		t.Errorf("NRA = %s, want Two-NRA", a.NRA)
	}
}

// Three-NRA: untile K and L (tensor B fully resident) → every tensor moves
// exactly once, achieving the ideal minimum.
func TestEvaluateThreeNRAIdeal(t *testing.T) {
	mm := op.MatMul{M: 64, K: 32, L: 48}
	df := dataflow.Dataflow{
		Order:  dataflow.OrderOS,
		Tiling: dataflow.Tiling{TM: 4, TK: 32, TL: 48},
	}
	a, err := Evaluate(mm, df)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != mm.IdealMA() {
		t.Fatalf("Total = %d, want ideal %d", a.Total, mm.IdealMA())
	}
	if a.NRA != dataflow.ThreeNRA {
		t.Fatalf("NRA = %s, want Three-NRA", a.NRA)
	}
}

// The paper's BERT example (§III-A4): A[1024,768] × B[768,768] with
// BS = 512K elements. Two-NRA with K untiled, T_M = 512, T_L = 1 gives
// non-redundant A and C and MA(B) = 2KL.
func TestPaperBERTExample(t *testing.T) {
	mm := op.MatMul{M: 1024, K: 768, L: 768}
	df := dataflow.Dataflow{
		Order:  dataflow.OrderIS,
		Tiling: dataflow.Tiling{TM: 512, TK: 768, TL: 1},
	}
	a, err := Evaluate(mm, df)
	if err != nil {
		t.Fatal(err)
	}
	if !a.NonRedundant(dataflow.TensorA, mm) {
		t.Error("A should be non-redundant")
	}
	if !a.NonRedundant(dataflow.TensorC, mm) {
		t.Error("C should be non-redundant")
	}
	if got, want := a.PerTensor[dataflow.TensorB], 2*mm.SizeB(); got != want {
		t.Errorf("MA(B) = %d, want 2KL = %d", got, want)
	}
	// The footprint must respect Eq. 4: T_M·K + K·T_L + T_M·T_L ≤ BS.
	if a.Footprint > 512*1024 {
		t.Errorf("footprint %d exceeds 512K elements", a.Footprint)
	}
}

func TestPartialSumSpill(t *testing.T) {
	mm := op.MatMul{M: 8, K: 8, L: 8}
	// K outermost with C-indexing loops inside: every C tile is visited
	// n_K = 4 times.
	df := dataflow.Dataflow{
		Order:  dataflow.Order{dataflow.DimK, dataflow.DimM, dataflow.DimL},
		Tiling: dataflow.Tiling{TM: 2, TK: 2, TL: 2},
	}
	a, err := Evaluate(mm, df)
	if err != nil {
		t.Fatal(err)
	}
	if a.OutputWrites != mm.SizeC()*4 {
		t.Errorf("writes = %d, want %d", a.OutputWrites, mm.SizeC()*4)
	}
	if a.OutputReads != mm.SizeC()*3 {
		t.Errorf("reads = %d, want %d", a.OutputReads, mm.SizeC()*3)
	}
	// Paper accounting: MA(C) counts one access per visit.
	if a.PerTensor[dataflow.TensorC] != mm.SizeC()*4 {
		t.Errorf("MA(C) = %d, want %d", a.PerTensor[dataflow.TensorC], mm.SizeC()*4)
	}
	// A is reused across the innermost L loop, so it remains non-redundant
	// even while C spills: exactly one tensor is non-redundant here.
	if a.NRA != dataflow.SingleNRA {
		t.Errorf("NRA = %s, want Single-NRA", a.NRA)
	}
}

func TestRaggedTilesExact(t *testing.T) {
	// 7 is not divisible by 3: MA must still be exact (size-based, not
	// tile×trips) for the non-redundant tensors.
	mm := op.MatMul{M: 7, K: 5, L: 9}
	df := dataflow.Dataflow{
		Order:  dataflow.OrderOS,
		Tiling: dataflow.Tiling{TM: 3, TK: 2, TL: 4},
	}
	a, err := Evaluate(mm, df)
	if err != nil {
		t.Fatal(err)
	}
	nL := int64(3) // ceil(9/4)
	nM := int64(3) // ceil(7/3)
	if got, want := a.PerTensor[dataflow.TensorA], mm.SizeA()*nL; got != want {
		t.Errorf("MA(A) = %d, want %d", got, want)
	}
	if got, want := a.PerTensor[dataflow.TensorB], mm.SizeB()*nM; got != want {
		t.Errorf("MA(B) = %d, want %d", got, want)
	}
	if got, want := a.PerTensor[dataflow.TensorC], mm.SizeC(); got != want {
		t.Errorf("MA(C) = %d, want %d", got, want)
	}
}

func TestEvaluateRejectsInvalid(t *testing.T) {
	mm := op.MatMul{M: 4, K: 4, L: 4}
	if _, err := Evaluate(op.MatMul{M: 0, K: 1, L: 1}, dataflow.Dataflow{Order: dataflow.OrderOS, Tiling: dataflow.Tiling{TM: 1, TK: 1, TL: 1}}); err == nil {
		t.Error("invalid matmul accepted")
	}
	if _, err := Evaluate(mm, dataflow.Dataflow{Order: dataflow.OrderOS, Tiling: dataflow.Tiling{TM: 5, TK: 1, TL: 1}}); err == nil {
		t.Error("oversized tile accepted")
	}
}

func TestFeasible(t *testing.T) {
	df := dataflow.Dataflow{Order: dataflow.OrderOS, Tiling: dataflow.Tiling{TM: 2, TK: 2, TL: 2}}
	if !Feasible(df, 12) || Feasible(df, 11) {
		t.Fatal("Feasible boundary wrong")
	}
}

func TestMustEvaluatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustEvaluate did not panic on invalid input")
		}
	}()
	MustEvaluate(op.MatMul{}, dataflow.Dataflow{})
}

func TestUnfusedChain(t *testing.T) {
	c, err := op.NewChain("c",
		op.MatMul{M: 8, K: 4, L: 8},
		op.MatMul{M: 8, K: 8, L: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	dfs := []dataflow.Dataflow{
		{Order: dataflow.OrderOS, Tiling: dataflow.Tiling{TM: 8, TK: 4, TL: 8}},
		{Order: dataflow.OrderOS, Tiling: dataflow.Tiling{TM: 8, TK: 8, TL: 4}},
	}
	total, err := UnfusedChain(c, dfs)
	if err != nil {
		t.Fatal(err)
	}
	// Both ops fully resident → each contributes its ideal MA.
	want := c.Ops[0].IdealMA() + c.Ops[1].IdealMA()
	if total != want {
		t.Fatalf("UnfusedChain = %d, want %d", total, want)
	}
	if _, err := UnfusedChain(c, dfs[:1]); err == nil {
		t.Fatal("wrong dataflow count accepted")
	}
}

// Every canonical order with its stationary tensor fully tiled and the
// remaining dim minimal must be exactly Single-NRA (the stationary tensor is
// the only non-redundant one) when trips of the other dims exceed 1.
func TestSingleNRAForAllStationaries(t *testing.T) {
	mm := op.MatMul{M: 24, K: 24, L: 24}
	for _, o := range dataflow.AllOrders() {
		st := o.Stationary()
		dd := st.Dims()
		ti := dataflow.Tiling{TM: 1, TK: 1, TL: 1}
		ti = ti.WithTile(dd[0], 6).WithTile(dd[1], 6)
		a, err := Evaluate(mm, dataflow.Dataflow{Order: o, Tiling: ti})
		if err != nil {
			t.Fatal(err)
		}
		if a.NRA != dataflow.SingleNRA {
			t.Errorf("order %v: NRA = %s, want Single-NRA", o, a.NRA)
		}
		if !a.NonRedundant(st, mm) {
			t.Errorf("order %v: stationary %s is redundant", o, st)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	mm := op.MatMul{M: 1024, K: 768, L: 768}
	df := dataflow.Dataflow{Order: dataflow.OrderIS, Tiling: dataflow.Tiling{TM: 512, TK: 768, TL: 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(mm, df); err != nil {
			b.Fatal(err)
		}
	}
}
