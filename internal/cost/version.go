package cost

// ModelVersion identifies the semantics of this package's memory-access
// cost model: Evaluate's access counting, the NRA classification, and the
// footprint accounting that candidate tables bake in at build time.
//
// Any change that can alter an Access value for some (operator, dataflow)
// pair — a new traffic term, a fixed accounting bug, a different
// tie-relevant rounding — must bump this string. Persisted candidate-table
// artifacts are keyed by it (internal/tablestore refuses mismatches and
// rebuilds), and fusecu-route refuses to front a fleet whose replicas
// disagree on it, because "bit-identical to a fresh build" only holds
// within one cost-model generation.
const ModelVersion = "cm1"
