// Package cost implements the analytical memory-access model for tiled
// matrix-multiplication dataflow — the role MAESTRO plays in the paper's
// tool flow. Given a problem size and a (tiling, scheduling) pair it returns
// the exact element traffic between memory and the on-chip buffer for each
// operand, the buffer footprint, and the dataflow's NRA class.
//
// Model semantics (single buffer level, no double buffering, matching the
// paper's Eq. 1–4):
//
//   - The three tile loops run outer→inner in the scheduled order with trip
//     counts n_D = ceil(D/T_D).
//   - An input tensor's tile is reused across any loop whose dimension does
//     not index it, provided that loop is inner to every loop that does.
//     With three loops this reduces to: the input is loaded exactly once
//     (MA = size) when its irrelevant dimension is the innermost loop or has
//     a single trip; otherwise the whole tensor streams once per iteration
//     of the irrelevant loop (MA = size × n_irr).
//   - The output C accumulates in the buffer while the K loop is innermost
//     (or K needs a single trip): MA = size(C), counted as writes. Otherwise
//     every C tile is visited n_K times and partial sums spill. Following the
//     paper ("memory accesses are calculated as the product of tile sizes and
//     iteration counts"), each visit counts as one access:
//     MA(C) = size × n_K. The physical read-back of partials on revisits,
//     size × (n_K − 1), is reported separately in OutputReads but does not
//     enter MA totals — this is what keeps the paper's Eq. 1 symmetric
//     across stationary choices.
//
// The exactness of these formulas — including ragged tile edges — is
// property-tested against the internal/trace oracle, which executes the loop
// nest tile by tile.
package cost

import (
	"fmt"

	"fusecu/internal/dataflow"
	"fusecu/internal/invariant"
	"fusecu/internal/op"
)

// Access reports the traffic of one dataflow on one operator.
type Access struct {
	// PerTensor is indexed by dataflow.Tensor. For inputs it is element
	// loads; for the output it is one access per tile visit (the paper's
	// accounting).
	PerTensor [3]int64
	// OutputReads is the physical partial-sum read-back on revisits. It is
	// informational and excluded from PerTensor and Total.
	OutputReads int64
	// OutputWrites is the per-visit write traffic of C; equal to
	// PerTensor[TensorC].
	OutputWrites int64
	// Total is the sum over PerTensor.
	Total int64
	// Footprint is the buffer occupancy of the three tiles.
	Footprint int64
	// NRA is the non-redundant-access class of the dataflow.
	NRA dataflow.NRAClass
}

// NonRedundant reports whether tensor t moves exactly once (its traffic
// equals its size).
func (a Access) NonRedundant(t dataflow.Tensor, mm op.MatMul) bool {
	return a.PerTensor[t] == t.Size(mm)
}

// Evaluate computes the exact memory traffic of df on mm. It returns an
// error when the dataflow is malformed; buffer feasibility is the caller's
// concern (check Access.Footprint against the buffer size, or use Feasible).
func Evaluate(mm op.MatMul, df dataflow.Dataflow) (Access, error) {
	if err := mm.Validate(); err != nil {
		return Access{}, err
	}
	if err := df.Validate(mm); err != nil {
		return Access{}, err
	}
	var a Access
	a.Footprint = df.Tiling.Footprint()

	// Inputs A and B.
	for _, t := range [2]dataflow.Tensor{dataflow.TensorA, dataflow.TensorB} {
		a.PerTensor[t] = inputTraffic(mm, df, t)
	}

	// Output C: paper accounting counts one access per tile visit.
	writes, reads := outputTraffic(mm, df)
	a.OutputWrites, a.OutputReads = writes, reads
	a.PerTensor[dataflow.TensorC] = writes

	for _, t := range dataflow.Tensors() {
		a.Total += a.PerTensor[t]
	}
	a.NRA = classify(mm, a)
	// The paper's Eq. 1 accounting can never beat the unbounded-buffer bound:
	// every operand moves at least once.
	invariant.Assert(a.Total >= mm.IdealMA(),
		"MA total %d below communication lower bound %d for %v under %v", a.Total, mm.IdealMA(), mm, df)
	return a, nil
}

// inputTraffic returns the traffic of input tensor t (A or B) under df.
func inputTraffic(mm op.MatMul, df dataflow.Dataflow, t dataflow.Tensor) int64 {
	irr := irrelevantDim(t)
	nIrr := df.Tiling.Trips(irr, mm)
	if nIrr == 1 {
		return t.Size(mm) // dimension untiled: its loop vanishes
	}
	// The resident tile of t survives across the irrelevant loop unless some
	// loop *inner* to it actually advances t's tile. Loops with a single
	// trip (untiled dims) never advance anything, so they are transparent.
	irrPos := df.Order.Position(irr)
	for p := irrPos + 1; p < len(df.Order); p++ {
		d := df.Order[p]
		if t.HasDim(d) && df.Tiling.Trips(d, mm) > 1 {
			return invariant.CheckedMul(t.Size(mm), nIrr)
		}
	}
	return t.Size(mm)
}

// outputTraffic returns (writes, reads) for the output C under df.
func outputTraffic(mm op.MatMul, df dataflow.Dataflow) (writes, reads int64) {
	size := dataflow.TensorC.Size(mm)
	nK := df.Tiling.Trips(dataflow.DimK, mm)
	if nK == 1 {
		return size, 0 // reduction completes in one tile: single write-out
	}
	// Partial sums spill only when a C-indexing loop that actually advances
	// (trip count > 1) sits inside the K loop; otherwise the resident C tile
	// accumulates across the whole reduction.
	kPos := df.Order.Position(dataflow.DimK)
	spill := false
	for p := kPos + 1; p < len(df.Order); p++ {
		d := df.Order[p]
		if d != dataflow.DimK && df.Tiling.Trips(d, mm) > 1 {
			spill = true
			break
		}
	}
	if !spill {
		return size, 0
	}
	// Each C tile is visited nK times: written every visit, read back on
	// every revisit.
	return invariant.CheckedMul(size, nK), invariant.CheckedMul(size, nK-1)
}

// irrelevantDim returns the one loop dimension that does not index t.
func irrelevantDim(t dataflow.Tensor) dataflow.Dim {
	for _, d := range dataflow.Dims() {
		if !t.HasDim(d) {
			return d
		}
	}
	panic("cost: tensor indexes every dim")
}

// classify counts non-redundant tensors to produce the NRA class.
func classify(mm op.MatMul, a Access) dataflow.NRAClass {
	n := 0
	for _, t := range dataflow.Tensors() {
		if a.PerTensor[t] == t.Size(mm) {
			n++
		}
	}
	return dataflow.NRAClass(n)
}

// Feasible reports whether df's tiles fit in bufferSize elements.
func Feasible(df dataflow.Dataflow, bufferSize int64) bool {
	return df.Tiling.Footprint() <= bufferSize
}

// MustEvaluate is Evaluate for callers holding dataflow they already
// validated; it panics on error.
func MustEvaluate(mm op.MatMul, df dataflow.Dataflow) Access {
	a, err := Evaluate(mm, df)
	if err != nil {
		panic(fmt.Sprintf("cost: %v", err))
	}
	return a
}

// UnfusedChain sums the per-operator traffic of a chain executed operator by
// operator: each intermediate is written by its producer and read back by
// its consumer, exactly the Fig. 1(a) pattern the paper's fusion removes.
// dfs must hold one dataflow per chain operator.
func UnfusedChain(c *op.Chain, dfs []dataflow.Dataflow) (int64, error) {
	if len(dfs) != c.Len() {
		return 0, fmt.Errorf("cost: %d dataflow for chain of %d ops", len(dfs), c.Len())
	}
	var total int64
	for i, mm := range c.Ops {
		a, err := Evaluate(mm, dfs[i])
		if err != nil {
			return 0, fmt.Errorf("cost: chain op %d: %w", i, err)
		}
		total += a.Total
	}
	return total, nil
}
