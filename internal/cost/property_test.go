package cost

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fusecu/internal/dataflow"
	"fusecu/internal/op"
)

// arbitraryCase generates a random valid (matmul, dataflow) pair, including
// degenerate GEMV shapes (dims of 1) and untiled extremes.
type arbitraryCase struct {
	MM op.MatMul
	DF dataflow.Dataflow
}

func (arbitraryCase) Generate(r *rand.Rand, _ int) reflect.Value {
	mm := op.MatMul{M: r.Intn(24) + 1, K: r.Intn(24) + 1, L: r.Intn(24) + 1}
	orders := dataflow.AllOrders()
	tile := func(ext int) int {
		switch r.Intn(4) {
		case 0:
			return 1
		case 1:
			return ext // untiled
		default:
			return r.Intn(ext) + 1
		}
	}
	df := dataflow.Dataflow{
		Order:  orders[r.Intn(len(orders))],
		Tiling: dataflow.Tiling{TM: tile(mm.M), TK: tile(mm.K), TL: tile(mm.L)},
	}
	return reflect.ValueOf(arbitraryCase{MM: mm, DF: df})
}

var quickCfg = &quick.Config{MaxCount: 500}

// Every tensor moves at least once: MA(X) ≥ size(X).
func TestPropertyPerTensorLowerBound(t *testing.T) {
	f := func(c arbitraryCase) bool {
		a, err := Evaluate(c.MM, c.DF)
		if err != nil {
			return false
		}
		for _, x := range dataflow.Tensors() {
			if a.PerTensor[x] < x.Size(c.MM) {
				return false
			}
		}
		return a.Total >= c.MM.IdealMA()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Total traffic never exceeds the re-fetch-everything bound: each of the
// n_M·n_K·n_L iterations touches at most the three tiles.
func TestPropertyUpperBound(t *testing.T) {
	f := func(c arbitraryCase) bool {
		a, err := Evaluate(c.MM, c.DF)
		if err != nil {
			return false
		}
		ti := c.DF.Tiling
		iters := ti.Trips(dataflow.DimM, c.MM) * ti.Trips(dataflow.DimK, c.MM) * ti.Trips(dataflow.DimL, c.MM)
		return a.Total <= iters*ti.Footprint()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Growing any single tile dimension never increases total traffic (the
// monotonicity the principles exploit when they maximize tiles).
func TestPropertyMonotoneInTiles(t *testing.T) {
	f := func(c arbitraryCase, which uint8, grow uint8) bool {
		d := dataflow.Dims()[int(which)%3]
		ext := d.Extent(c.MM)
		cur := c.DF.Tiling.Tile(d)
		bigger := cur + int(grow)%8 + 1
		if bigger > ext {
			bigger = ext
		}
		if bigger <= cur {
			return true
		}
		a0, err := Evaluate(c.MM, c.DF)
		if err != nil {
			return false
		}
		df2 := c.DF
		df2.Tiling = df2.Tiling.WithTile(d, bigger)
		a1, err := Evaluate(c.MM, df2)
		if err != nil {
			return false
		}
		return a1.Total <= a0.Total
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Footprint is exactly the Eq. 2 sum and grows with any tile.
func TestPropertyFootprint(t *testing.T) {
	f := func(c arbitraryCase) bool {
		ti := c.DF.Tiling
		want := int64(ti.TM)*int64(ti.TK) + int64(ti.TK)*int64(ti.TL) + int64(ti.TM)*int64(ti.TL)
		a, err := Evaluate(c.MM, c.DF)
		if err != nil {
			return false
		}
		return a.Footprint == want
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// The NRA class counts exactly the tensors whose traffic equals their size.
func TestPropertyNRAConsistency(t *testing.T) {
	f := func(c arbitraryCase) bool {
		a, err := Evaluate(c.MM, c.DF)
		if err != nil {
			return false
		}
		n := 0
		for _, x := range dataflow.Tensors() {
			if a.NonRedundant(x, c.MM) {
				n++
			}
		}
		return int(a.NRA) == n
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Fully untiled dataflow is always the ideal, regardless of order.
func TestPropertyFullyResidentIsIdeal(t *testing.T) {
	f := func(m, k, l uint8, which uint8) bool {
		mm := op.MatMul{M: int(m%24) + 1, K: int(k%24) + 1, L: int(l%24) + 1}
		order := dataflow.AllOrders()[int(which)%6]
		df := dataflow.Dataflow{Order: order, Tiling: dataflow.Tiling{TM: mm.M, TK: mm.K, TL: mm.L}}
		a, err := Evaluate(mm, df)
		if err != nil {
			return false
		}
		return a.Total == mm.IdealMA() && a.NRA == dataflow.ThreeNRA
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
