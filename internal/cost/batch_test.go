package cost

import (
	"math/rand"
	"testing"

	"fusecu/internal/dataflow"
	"fusecu/internal/invariant"
	"fusecu/internal/op"
)

// batchShapes covers square-ish Table-II style operators plus the skewed
// decode-style shapes (M=1 GEMV, tiny-K, small-L) and full degenerates the
// block path must stay exact on.
var batchShapes = []op.MatMul{
	{Name: "proj", M: 256, K: 192, L: 192},
	{Name: "qkt", M: 256, K: 32, L: 256},
	{Name: "ragged", M: 7, K: 13, L: 31},
	{Name: "gemv", M: 1, K: 4096, L: 4096},
	{Name: "moe-tinyk", M: 64, K: 2, L: 512},
	{Name: "gqa-smalll", M: 512, K: 128, L: 3},
	{Name: "colvec", M: 4096, K: 4096, L: 1},
	{Name: "dot", M: 1, K: 4096, L: 1},
	{Name: "scalar", M: 1, K: 1, L: 1},
}

// tileLattice returns a small divisor-ish lattice over [1, ext] including
// both endpoints and ragged (non-dividing) tiles.
func tileLattice(ext int) []int {
	seen := map[int]bool{}
	var out []int
	add := func(v int) {
		if v >= 1 && v <= ext && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for v := 1; v <= ext; v *= 2 {
		add(v)
		add(v + 1)
	}
	add(ext)
	add(ext - 1)
	add(ext/3 + 1)
	return out
}

// TestBatchEvalMatchesEvaluate pins bit-identity of the batch kernel against
// the scalar Evaluate across every shape, order, and a ragged tile lattice —
// every Access field must match exactly.
func TestBatchEvalMatchesEvaluate(t *testing.T) {
	orders := dataflow.AllOrders()
	for _, mm := range batchShapes {
		kern, err := NewBatchEval(mm, orders)
		if err != nil {
			t.Fatalf("NewBatchEval(%v): %v", mm, err)
		}
		blk := NewBlock(64)
		var want []Access
		flush := func() {
			t.Helper()
			kern.EvalBlock(blk)
			for i := range want {
				if blk.Out[i] != want[i] {
					t.Fatalf("%v candidate %d (oi=%d tm=%d tk=%d tl=%d): batch %+v, Evaluate %+v",
						mm, i, blk.OI[i], blk.TM[i], blk.TK[i], blk.TL[i], blk.Out[i], want[i])
				}
			}
			blk.Reset()
			want = want[:0]
		}
		for oi, o := range orders {
			for _, tm := range tileLattice(mm.M) {
				for _, tk := range tileLattice(mm.K) {
					for _, tl := range tileLattice(mm.L) {
						df := dataflow.Must(mm, o, dataflow.MustTiling(mm, tm, tk, tl))
						if blk.Full() {
							flush()
						}
						blk.Push(uint8(oi), int32(tm), int32(tk), int32(tl), df.Tiling.Footprint())
						want = append(want, MustEvaluate(mm, df))
					}
				}
			}
		}
		flush()
	}
}

// TestBatchEvalIndexed checks that EvalIndexed fills exactly the requested
// indices and leaves the rest untouched — the cache-miss residue contract.
func TestBatchEvalIndexed(t *testing.T) {
	mm := op.MatMul{Name: "idx", M: 37, K: 53, L: 29}
	orders := dataflow.AllOrders()
	kern, err := NewBatchEval(mm, orders)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	blk := NewBlock(128)
	for i := 0; i < 128; i++ {
		oi := uint8(rng.Intn(len(orders)))
		tm, tk, tl := 1+rng.Intn(mm.M), 1+rng.Intn(mm.K), 1+rng.Intn(mm.L)
		df := dataflow.Must(mm, orders[oi], dataflow.MustTiling(mm, tm, tk, tl))
		blk.Push(oi, int32(tm), int32(tk), int32(tl), df.Tiling.Footprint())
	}
	var idx []int32
	for i := 0; i < blk.Len(); i += 3 {
		idx = append(idx, int32(i))
	}
	kern.EvalIndexed(blk, idx)
	picked := map[int32]bool{}
	for _, i := range idx {
		picked[i] = true
	}
	for i := 0; i < blk.Len(); i++ {
		df := dataflow.Must(mm, orders[blk.OI[i]], dataflow.MustTiling(mm, int(blk.TM[i]), int(blk.TK[i]), int(blk.TL[i])))
		if picked[int32(i)] {
			if want := MustEvaluate(mm, df); blk.Out[i] != want {
				t.Fatalf("indexed candidate %d: got %+v want %+v", i, blk.Out[i], want)
			}
		} else if (blk.Out[i] != Access{}) {
			t.Fatalf("unrequested candidate %d was written: %+v", i, blk.Out[i])
		}
	}
}

// TestBatchEvalStationary checks the kernel re-exports each order's rotation
// class correctly.
func TestBatchEvalStationary(t *testing.T) {
	orders := dataflow.AllOrders()
	kern, err := NewBatchEval(op.MatMul{Name: "s", M: 8, K: 8, L: 8}, orders)
	if err != nil {
		t.Fatal(err)
	}
	for oi, o := range orders {
		if got, want := kern.Stationary(uint8(oi)), o.Stationary().Kind(); got != want {
			t.Fatalf("order %v: Stationary=%v want %v", o, got, want)
		}
	}
}

// TestNewBatchEvalRejects checks construction-time validation: bad operator,
// empty order list, malformed order.
func TestNewBatchEvalRejects(t *testing.T) {
	if _, err := NewBatchEval(op.MatMul{Name: "bad", M: 0, K: 1, L: 1}, dataflow.AllOrders()); err == nil {
		t.Fatal("invalid operator accepted")
	}
	if _, err := NewBatchEval(op.MatMul{Name: "ok", M: 4, K: 4, L: 4}, nil); err == nil {
		t.Fatal("empty order list accepted")
	}
	bad := []dataflow.Order{{dataflow.DimM, dataflow.DimM, dataflow.DimK}}
	if _, err := NewBatchEval(op.MatMul{Name: "ok", M: 4, K: 4, L: 4}, bad); err == nil {
		t.Fatal("duplicate-dim order accepted")
	}
}

// TestEvalBlockZeroAllocs pins the per-block steady state at zero
// allocations: one EvalBlock call over a reused block must not allocate.
// Under -tags=fusecuchecks the per-candidate assertions format their
// arguments, so the zero budget only holds on the production build.
func TestEvalBlockZeroAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant checks compiled in: assertions allocate")
	}
	mm := op.MatMul{Name: "alloc", M: 256, K: 192, L: 192}
	kern, err := NewBatchEval(mm, dataflow.AllOrders())
	if err != nil {
		t.Fatal(err)
	}
	blk := NewBlock(256)
	for i := 0; i < 256; i++ {
		tm := 1 + i%mm.M
		blk.Push(uint8(i%6), int32(tm), 16, 16, int64(tm)*16+16*16+int64(tm)*16)
	}
	if n := testing.AllocsPerRun(100, func() { kern.EvalBlock(blk) }); n != 0 {
		t.Fatalf("EvalBlock allocated %v times per run, want 0", n)
	}
}

// BenchmarkBatchKernel measures the per-candidate cost of the batch path
// (ns/candidate ≈ ns/op ÷ 256) and pins its zero-allocation property.
func BenchmarkBatchKernel(b *testing.B) {
	mm := op.MatMul{Name: "bench", M: 256, K: 192, L: 256}
	kern, err := NewBatchEval(mm, dataflow.AllOrders())
	if err != nil {
		b.Fatal(err)
	}
	blk := NewBlock(256)
	for i := 0; i < 256; i++ {
		tm := 1 + (i*7)%mm.M
		tk := 1 + (i*5)%mm.K
		tl := 1 + (i*3)%mm.L
		foot := int64(tm)*int64(tk) + int64(tk)*int64(tl) + int64(tm)*int64(tl)
		blk.Push(uint8(i%6), int32(tm), int32(tk), int32(tl), foot)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kern.EvalBlock(blk)
	}
}
