package model

import (
	"encoding/json"
	"fmt"
)

// MarshalConfigs serializes model configurations to indented JSON, the
// interchange format the CLI tools accept.
func MarshalConfigs(cfgs []Config) ([]byte, error) {
	return json.MarshalIndent(cfgs, "", "  ")
}

// UnmarshalConfigs parses and validates model configurations.
func UnmarshalConfigs(data []byte) ([]Config, error) {
	var cfgs []Config
	if err := json.Unmarshal(data, &cfgs); err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	for i, c := range cfgs {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("model: config %d: %w", i, err)
		}
	}
	return cfgs, nil
}

// DecodePhase returns the autoregressive-generation variant of a model: a
// single new token per step (SeqLen 1 against a kvLen-long cache). The
// attention operators degenerate to vector-matrix products whose smallest
// dimension is 1 — the extreme of the paper's tiny-dimension analysis,
// where Dmin²/4 = 0 and every buffer is "large" relative to Dmin.
func (c Config) DecodePhase(kvLen int) DecodeConfig {
	return DecodeConfig{Base: c, KVLen: kvLen}
}

// DecodeConfig is a decode-phase (generation) workload description.
type DecodeConfig struct {
	Base  Config
	KVLen int
}

// Validate checks the base configuration and the cache length.
func (d DecodeConfig) Validate() error {
	if err := d.Base.Validate(); err != nil {
		return err
	}
	if d.KVLen <= 0 {
		return fmt.Errorf("model: decode phase needs a positive KV length, got %d", d.KVLen)
	}
	return nil
}

// Build constructs the one-token decode step: projections with M = batch,
// per-head attention QKᵀ (1 × dh × kv) → SV (1 × kv × dh), and the FFN
// pair with M = batch.
func (d DecodeConfig) Build() (*Workload, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	c := d.Base
	dh := c.HeadDim()
	w := &Workload{Name: c.Name + "-decode", Config: c}

	for _, name := range []string{"proj-q", "proj-k", "proj-v", "proj-out"} {
		ch, err := opChain(name, c.Batch, c.Hidden, c.Hidden)
		if err != nil {
			return nil, err
		}
		w.Chains = append(w.Chains, WeightedChain{Chain: ch, Count: 1})
	}

	attn, err := attnChain(1, dh, d.KVLen)
	if err != nil {
		return nil, err
	}
	w.Chains = append(w.Chains, WeightedChain{Chain: attn, Count: int64(c.Batch) * int64(c.Heads)})

	ffn, err := ffnChain(c.Batch, c.Hidden, c.FFN())
	if err != nil {
		return nil, err
	}
	w.Chains = append(w.Chains, WeightedChain{Chain: ffn, Count: 1})
	return w, nil
}
