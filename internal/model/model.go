// Package model builds the paper's evaluation workloads: the seven
// attention-based transformer models of Table II, expressed as weighted
// chains of matrix multiplications (projections, per-head attention pairs,
// and feed-forward pairs). Memory access and cycle counts depend only on
// tensor shapes, so the shape-accurate operator graph stands in for the
// pretrained checkpoints the paper runs.
package model

import (
	"fmt"

	"fusecu/internal/errs"
	"fusecu/internal/invariant"
	"fusecu/internal/op"
)

// Config holds a transformer's layer hyper-parameters (Table II) plus the
// evaluation batch size.
type Config struct {
	Name   string
	Heads  int
	SeqLen int
	Hidden int
	Batch  int
	// FFNDim is the feed-forward inner dimension; 0 means 4×Hidden.
	FFNDim int
}

// Validate reports configuration errors, including a hidden size not
// divisible by the head count.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("model: empty name")
	}
	if c.Heads <= 0 || c.SeqLen <= 0 || c.Hidden <= 0 || c.Batch <= 0 {
		return fmt.Errorf("model: %s has non-positive parameter: %+v", c.Name, c)
	}
	if c.Hidden%c.Heads != 0 {
		return fmt.Errorf("model: %s hidden %d not divisible by %d heads", c.Name, c.Hidden, c.Heads)
	}
	if c.FFNDim < 0 {
		return fmt.Errorf("model: %s negative FFN dim", c.Name)
	}
	return nil
}

// HeadDim returns Hidden / Heads.
func (c Config) HeadDim() int { return c.Hidden / c.Heads }

// FFN returns the effective feed-forward inner dimension.
func (c Config) FFN() int {
	if c.FFNDim > 0 {
		return c.FFNDim
	}
	return 4 * c.Hidden
}

// WeightedChain is a chain plus its instance count within one layer (e.g.
// the attention pair runs batch × heads times).
type WeightedChain struct {
	Chain *op.Chain
	Count int64
}

// MACs returns the chain's total multiply-accumulates across instances.
func (w WeightedChain) MACs() int64 { return invariant.CheckedMul(w.Chain.MACs(), w.Count) }

// Workload is one transformer layer's operator graph.
type Workload struct {
	Name   string
	Config Config
	Chains []WeightedChain
}

// TotalMACs sums multiply-accumulates over all chains and instances.
func (w *Workload) TotalMACs() int64 {
	var t int64
	for _, c := range w.Chains {
		t += c.MACs()
	}
	return t
}

// Build constructs the layer workload:
//
//   - four projection MMs (Q, K, V, output), each (B·S) × H × H;
//   - batch×heads attention pairs QKᵀ (S × dh × S) → softmax → SV
//     (S × S × dh), the chains operator fusion targets;
//   - one feed-forward pair (B·S) × H × F → activation → (B·S) × F × H.
func (c Config) Build() (*Workload, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	bs := c.Batch * c.SeqLen
	dh := c.HeadDim()
	w := &Workload{Name: c.Name, Config: c}

	for _, name := range []string{"proj-q", "proj-k", "proj-v", "proj-out"} {
		ch, err := opChain(name, bs, c.Hidden, c.Hidden)
		if err != nil {
			return nil, err
		}
		w.Chains = append(w.Chains, WeightedChain{Chain: ch, Count: 1})
	}

	attn, err := attnChain(c.SeqLen, dh, c.SeqLen)
	if err != nil {
		return nil, err
	}
	w.Chains = append(w.Chains, WeightedChain{Chain: attn, Count: int64(c.Batch) * int64(c.Heads)})

	ffn, err := ffnChain(bs, c.Hidden, c.FFN())
	if err != nil {
		return nil, err
	}
	w.Chains = append(w.Chains, WeightedChain{Chain: ffn, Count: 1})

	return w, nil
}

// opChain builds a single-operator chain for a projection.
func opChain(name string, m, k, l int) (*op.Chain, error) {
	return op.NewChain(name, op.MatMul{Name: name, M: m, K: k, L: l})
}

// attnChain builds the QKᵀ → softmax → SV pair for one head: q query rows
// against kv cached keys/values of width dh.
func attnChain(q, dh, kv int) (*op.Chain, error) {
	attn, err := op.NewChain("attention",
		op.MatMul{Name: "QKt", M: q, K: dh, L: kv},
		op.MatMul{Name: "SV", M: q, K: kv, L: dh},
	)
	if err != nil {
		return nil, err
	}
	if _, err := attn.WithElementwise(0, "softmax"); err != nil {
		return nil, err
	}
	return attn, nil
}

// ffnChain builds the fc1 → activation → fc2 pair.
func ffnChain(m, hidden, ffnDim int) (*op.Chain, error) {
	ffn, err := op.NewChain("ffn",
		op.MatMul{Name: "fc1", M: m, K: hidden, L: ffnDim},
		op.MatMul{Name: "fc2", M: m, K: ffnDim, L: hidden},
	)
	if err != nil {
		return nil, err
	}
	if _, err := ffn.WithElementwise(0, "activation"); err != nil {
		return nil, err
	}
	return ffn, nil
}

// evaluationBatch is the batch size used throughout the paper's evaluation.
const evaluationBatch = 16

// TableII returns the seven evaluation models with the paper's batch size
// of 16. LLaMA2 uses its published FFN dimension (11008) rather than the
// 4×Hidden default.
func TableII() []Config {
	return []Config{
		{Name: "BERT", Heads: 12, SeqLen: 1024, Hidden: 768, Batch: evaluationBatch},
		{Name: "GPT-2", Heads: 12, SeqLen: 2048, Hidden: 768, Batch: evaluationBatch},
		{Name: "Blenderbot", Heads: 16, SeqLen: 256, Hidden: 1024, Batch: evaluationBatch},
		{Name: "XLM", Heads: 16, SeqLen: 1024, Hidden: 2048, Batch: evaluationBatch},
		{Name: "DeBERTa-v2", Heads: 24, SeqLen: 1024, Hidden: 1536, Batch: evaluationBatch},
		{Name: "LLaMA2", Heads: 32, SeqLen: 4096, Hidden: 4096, Batch: evaluationBatch, FFNDim: 11008},
		{Name: "ALBERT", Heads: 64, SeqLen: 1024, Hidden: 4096, Batch: evaluationBatch},
	}
}

// ByName returns the Table II config with the given name.
func ByName(name string) (Config, error) {
	for _, c := range TableII() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("model: unknown model %q: %w", name, errs.ErrUnknownModel)
}

// LLaMA2WithSeq returns the LLaMA2 configuration at a specific sequence
// length, the knob Fig. 11 sweeps from 256 to 16K.
func LLaMA2WithSeq(seq int) Config {
	return Config{Name: fmt.Sprintf("LLaMA2-seq%d", seq), Heads: 32, SeqLen: seq,
		Hidden: 4096, Batch: evaluationBatch, FFNDim: 11008}
}

// Fig11SeqLengths returns the sequence lengths of the Fig. 11 sweep.
func Fig11SeqLengths() []int {
	return []int{256, 512, 1024, 2048, 4096, 8192, 16384}
}
