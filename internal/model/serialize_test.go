package model

import (
	"strings"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	data, err := MarshalConfigs(TableII())
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalConfigs(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 7 {
		t.Fatalf("round trip lost models: %d", len(back))
	}
	for i, c := range TableII() {
		if back[i] != c {
			t.Errorf("model %d changed: %+v vs %+v", i, back[i], c)
		}
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	if _, err := UnmarshalConfigs([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	bad := `[{"Name":"x","Heads":3,"SeqLen":8,"Hidden":16,"Batch":1}]` // 16 % 3 != 0
	if _, err := UnmarshalConfigs([]byte(bad)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := UnmarshalConfigs([]byte(bad)); err != nil && !strings.Contains(err.Error(), "config 0") {
		t.Fatal("error does not identify the bad config")
	}
}

func TestDecodePhaseBuild(t *testing.T) {
	cfg, err := ByName("LLaMA2")
	if err != nil {
		t.Fatal(err)
	}
	dec := cfg.DecodePhase(4096)
	if err := dec.Validate(); err != nil {
		t.Fatal(err)
	}
	w, err := dec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(w.Name, "-decode") {
		t.Fatalf("workload name %q", w.Name)
	}
	var sawAttn, sawProj bool
	for _, wc := range w.Chains {
		switch wc.Chain.Name {
		case "attention":
			sawAttn = true
			qkt := wc.Chain.Ops[0]
			// One query row against the 4096-long KV cache.
			if qkt.M != 1 || qkt.K != 128 || qkt.L != 4096 {
				t.Fatalf("decode QKt = %v", qkt)
			}
			if qkt.MinDim() != 1 {
				t.Fatal("decode attention should be GEMV-shaped")
			}
		case "proj-q":
			sawProj = true
			if wc.Chain.Ops[0].M != cfg.Batch {
				t.Fatalf("decode projection M = %d, want batch %d", wc.Chain.Ops[0].M, cfg.Batch)
			}
		}
	}
	if !sawAttn || !sawProj {
		t.Fatal("decode workload incomplete")
	}
}

func TestDecodePhaseValidate(t *testing.T) {
	cfg, _ := ByName("BERT")
	if err := cfg.DecodePhase(0).Validate(); err == nil {
		t.Fatal("zero KV length accepted")
	}
	if _, err := (DecodeConfig{Base: Config{}, KVLen: 128}).Build(); err == nil {
		t.Fatal("invalid base accepted")
	}
}

// GEMV-shaped decode attention has Dmin = 1: every buffer is "large"
// relative to Dmin²; the regime machinery must not misbehave.
func TestDecodeAttentionDegenerateRegime(t *testing.T) {
	cfg, _ := ByName("BERT")
	w, err := cfg.DecodePhase(1024).Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, wc := range w.Chains {
		if wc.Chain.Name != "attention" {
			continue
		}
		if wc.Chain.Ops[0].MinDim() != 1 || wc.Chain.Ops[1].MinDim() != 1 {
			t.Fatal("decode attention min dims should be 1")
		}
	}
}
