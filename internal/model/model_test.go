package model

import (
	"testing"
)

func TestTableIIMatchesPaper(t *testing.T) {
	want := map[string][3]int{ // heads, seq, hidden
		"BERT":       {12, 1024, 768},
		"GPT-2":      {12, 2048, 768},
		"Blenderbot": {16, 256, 1024},
		"XLM":        {16, 1024, 2048},
		"DeBERTa-v2": {24, 1024, 1536},
		"LLaMA2":     {32, 4096, 4096},
		"ALBERT":     {64, 1024, 4096},
	}
	models := TableII()
	if len(models) != 7 {
		t.Fatalf("TableII has %d models, want 7", len(models))
	}
	for _, c := range models {
		p, ok := want[c.Name]
		if !ok {
			t.Errorf("unexpected model %q", c.Name)
			continue
		}
		if c.Heads != p[0] || c.SeqLen != p[1] || c.Hidden != p[2] {
			t.Errorf("%s = %d/%d/%d, want %d/%d/%d", c.Name, c.Heads, c.SeqLen, c.Hidden, p[0], p[1], p[2])
		}
		if c.Batch != 16 {
			t.Errorf("%s batch = %d, want 16", c.Name, c.Batch)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Name: "x", Heads: 0, SeqLen: 1, Hidden: 1, Batch: 1},
		{Name: "x", Heads: 3, SeqLen: 8, Hidden: 16, Batch: 1}, // 16 % 3 != 0
		{Name: "x", Heads: 2, SeqLen: 8, Hidden: 16, Batch: 1, FFNDim: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestHeadDimAndFFN(t *testing.T) {
	c := Config{Name: "x", Heads: 12, SeqLen: 128, Hidden: 768, Batch: 1}
	if c.HeadDim() != 64 {
		t.Fatalf("HeadDim = %d", c.HeadDim())
	}
	if c.FFN() != 4*768 {
		t.Fatalf("FFN = %d", c.FFN())
	}
	c.FFNDim = 11008
	if c.FFN() != 11008 {
		t.Fatalf("FFN override = %d", c.FFN())
	}
}

func TestBuildStructure(t *testing.T) {
	c, err := ByName("BERT")
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 4 projections + attention + FFN.
	if len(w.Chains) != 6 {
		t.Fatalf("chains = %d, want 6", len(w.Chains))
	}
	var attn, ffn *WeightedChain
	projs := 0
	for i := range w.Chains {
		switch w.Chains[i].Chain.Name {
		case "attention":
			attn = &w.Chains[i]
		case "ffn":
			ffn = &w.Chains[i]
		default:
			projs++
			if w.Chains[i].Chain.Len() != 1 {
				t.Errorf("projection chain has %d ops", w.Chains[i].Chain.Len())
			}
			mm := w.Chains[i].Chain.Ops[0]
			if mm.M != 16*1024 || mm.K != 768 || mm.L != 768 {
				t.Errorf("projection dims = %v", mm)
			}
		}
	}
	if projs != 4 {
		t.Fatalf("projections = %d, want 4", projs)
	}
	if attn == nil || ffn == nil {
		t.Fatal("missing attention or ffn chain")
	}
	if attn.Count != 16*12 {
		t.Fatalf("attention count = %d, want 192", attn.Count)
	}
	qkt := attn.Chain.Ops[0]
	if qkt.M != 1024 || qkt.K != 64 || qkt.L != 1024 {
		t.Fatalf("QKt dims = %v", qkt)
	}
	sv := attn.Chain.Ops[1]
	if sv.M != 1024 || sv.K != 1024 || sv.L != 64 {
		t.Fatalf("SV dims = %v", sv)
	}
	if attn.Chain.Elementwise[0].Name != "softmax" {
		t.Fatal("missing softmax")
	}
	fc1 := ffn.Chain.Ops[0]
	if fc1.M != 16*1024 || fc1.K != 768 || fc1.L != 4*768 {
		t.Fatalf("fc1 dims = %v", fc1)
	}
}

func TestBuildValidatesChains(t *testing.T) {
	for _, c := range TableII() {
		w, err := c.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		for _, wc := range w.Chains {
			if err := wc.Chain.Validate(); err != nil {
				t.Errorf("%s chain %s: %v", c.Name, wc.Chain.Name, err)
			}
			if wc.Count < 1 {
				t.Errorf("%s chain %s count %d", c.Name, wc.Chain.Name, wc.Count)
			}
		}
		if w.TotalMACs() <= 0 {
			t.Errorf("%s: no MACs", c.Name)
		}
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	if _, err := (Config{}).Build(); err == nil {
		t.Fatal("invalid config built")
	}
}

func TestTotalMACsGrowsWithHidden(t *testing.T) {
	small, _ := Config{Name: "s", Heads: 8, SeqLen: 512, Hidden: 512, Batch: 16}.Build()
	big, _ := Config{Name: "b", Heads: 8, SeqLen: 512, Hidden: 1024, Batch: 16}.Build()
	if small.TotalMACs() >= big.TotalMACs() {
		t.Fatal("MACs do not grow with hidden size")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestLLaMA2WithSeq(t *testing.T) {
	c := LLaMA2WithSeq(8192)
	if c.SeqLen != 8192 || c.Hidden != 4096 || c.Heads != 32 || c.FFNDim != 11008 {
		t.Fatalf("config = %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	w, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalMACs() <= 0 {
		t.Fatal("no MACs")
	}
}

func TestFig11SeqLengthsSpan(t *testing.T) {
	seqs := Fig11SeqLengths()
	if seqs[0] != 256 || seqs[len(seqs)-1] != 16384 {
		t.Fatalf("sweep = %v", seqs)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != 2*seqs[i-1] {
			t.Fatalf("sweep not doubling: %v", seqs)
		}
	}
}

// Attention dominates FFN traffic growth as sequence length rises; verify
// the quadratic term is present in the workload (it drives Fig. 11).
func TestAttentionMACsQuadraticInSeq(t *testing.T) {
	w1, _ := LLaMA2WithSeq(1024).Build()
	w2, _ := LLaMA2WithSeq(2048).Build()
	attnMACs := func(w *Workload) int64 {
		for _, wc := range w.Chains {
			if wc.Chain.Name == "attention" {
				return wc.MACs()
			}
		}
		t.Fatal("no attention chain")
		return 0
	}
	r := float64(attnMACs(w2)) / float64(attnMACs(w1))
	if r < 3.9 || r > 4.1 {
		t.Fatalf("attention MACs ratio = %f, want ~4 (quadratic)", r)
	}
}
