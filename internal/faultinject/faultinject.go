// Package faultinject is the repository's deterministic fault injector:
// named injection points ("sites") scattered through the service and search
// hot paths fire configured faults — errors, panics, or latency — on a
// schedule the test armed in advance. Chaos tests use it to make every
// failure mode reproducible on demand: "panic on request 7 of the wave" or
// "add 5ms to every third cost evaluation" are plans, not races.
//
// Determinism comes from counting, not clocks: each site keeps a visit
// counter under the injector's mutex, and counter-based plans (Every /
// Offset / Times) fire on exact visit ordinals regardless of which goroutine
// arrives. Probabilistic plans draw from a seeded RNG, so a single-threaded
// replay is bit-reproducible and a concurrent run is statistically pinned.
//
// The disarmed hot path costs one atomic pointer load and a nil compare —
// no build tags, no branches on configuration structs. Production binaries
// simply never call Activate.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error, so tests and
// resilience code can tell a synthetic fault from an organic one.
var ErrInjected = errors.New("faultinject: injected fault")

// Panic is the payload of every injected panic; the panic-isolation
// boundaries recognize it (and anything else) but tests can assert the
// recovered value was synthetic.
type Panic struct {
	Site string
}

func (p Panic) String() string { return fmt.Sprintf("faultinject: injected panic at %s", p.Site) }

// Mode selects what a firing plan does to the caller.
type Mode uint8

const (
	// ModeError makes Fire return the plan's error (ErrInjected-wrapped).
	ModeError Mode = iota
	// ModePanic makes Fire panic with a Panic{Site} payload.
	ModePanic
	// ModeLatency makes Fire sleep for the plan's Delay before returning nil.
	ModeLatency
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeLatency:
		return "latency"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Plan arms one fault at one site. The zero schedule (Every 0, Offset 0,
// Times 0, Prob 0) fires on every visit forever; set the fields to narrow it.
type Plan struct {
	// Site names the injection point, e.g. "service.search" or "search.eval".
	Site string
	// Mode selects the fault kind.
	Mode Mode
	// Every fires on every Nth eligible visit (1 = every visit). Values < 1
	// are treated as 1.
	Every int
	// Offset skips the first Offset visits of the site before the schedule
	// starts counting.
	Offset int
	// Times caps the number of firings; 0 means unlimited.
	Times int
	// Prob, when non-zero, gates each scheduled firing on a draw from the
	// injector's seeded RNG: the plan fires with probability Prob. Combined
	// with Every/Offset/Times the counters only advance on actual firings.
	Prob float64
	// Err is the error returned by ModeError firings; nil selects a default
	// message. Either way the returned error wraps ErrInjected.
	Err error
	// Delay is the sleep applied by ModeLatency firings.
	Delay time.Duration
}

// armed is one plan plus its firing counter.
type armed struct {
	plan  Plan
	fired int
}

// Injector holds armed plans and per-site visit/fire accounting. The zero
// value is not usable; construct with New. A nil *Injector is fully disarmed
// and safe to Fire.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	sites  map[string][]*armed
	visits map[string]int64
	fires  map[string]int64
}

// New builds an injector with the given RNG seed and plans. The seed only
// matters for Prob-gated plans.
func New(seed int64, plans ...Plan) *Injector {
	in := &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		sites:  make(map[string][]*armed),
		visits: make(map[string]int64),
		fires:  make(map[string]int64),
	}
	for _, p := range plans {
		in.sites[p.Site] = append(in.sites[p.Site], &armed{plan: p})
	}
	return in
}

// Fire visits a site: it returns nil fast when the receiver is nil or the
// site is unarmed, and otherwise applies the first still-eligible plan —
// returning an injected error, panicking with a Panic payload, or sleeping
// for the plan's delay. Latency sleeps happen outside the injector's lock.
func (in *Injector) Fire(site string) error {
	if in == nil {
		return nil
	}
	mode, err, delay, fired := in.decide(site)
	if !fired {
		return nil
	}
	switch mode {
	case ModePanic:
		panic(Panic{Site: site})
	case ModeLatency:
		time.Sleep(delay)
		return nil
	default:
		return err
	}
}

// FireCtx is Fire with a context: latency firings wait on a timer or
// ctx.Done(), whichever comes first, returning ctx.Err() when the wait was
// cut short. Error and panic firings behave exactly like Fire. A canceled
// caller therefore observes its own cancellation instead of sleeping out an
// injected delay — matching how a real slow upstream behaves when its
// request is abandoned, which is what the router's hedging path needs.
func (in *Injector) FireCtx(ctx context.Context, site string) error {
	if in == nil {
		return nil
	}
	mode, err, delay, fired := in.decide(site)
	if !fired {
		return nil
	}
	switch mode {
	case ModePanic:
		panic(Panic{Site: site})
	case ModeLatency:
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	default:
		return err
	}
}

// decide advances the site's visit counter and resolves which plan (if any)
// fires on this visit, under the lock.
func (in *Injector) decide(site string) (mode Mode, err error, delay time.Duration, fired bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	plans, ok := in.sites[site]
	in.visits[site]++
	if !ok {
		return 0, nil, 0, false
	}
	visit := in.visits[site]
	for _, a := range plans {
		if !a.due(visit) {
			continue
		}
		if a.plan.Prob > 0 && in.rng.Float64() >= a.plan.Prob {
			continue
		}
		a.fired++
		in.fires[site]++
		switch a.plan.Mode {
		case ModeError:
			err = a.plan.Err
			if err == nil {
				err = fmt.Errorf("site %s visit %d: %w", site, visit, ErrInjected)
			} else if !errors.Is(err, ErrInjected) {
				err = fmt.Errorf("site %s visit %d: %v: %w", site, visit, a.plan.Err, ErrInjected)
			}
		case ModeLatency:
			delay = a.plan.Delay
		}
		return a.plan.Mode, err, delay, true
	}
	return 0, nil, 0, false
}

// due reports whether the plan's counter schedule selects this visit.
func (a *armed) due(visit int64) bool {
	if a.plan.Times > 0 && a.fired >= a.plan.Times {
		return false
	}
	eligible := visit - int64(a.plan.Offset)
	if eligible <= 0 {
		return false
	}
	every := int64(a.plan.Every)
	if every < 1 {
		every = 1
	}
	return eligible%every == 0
}

// Visits returns how many times the site was visited (armed or not).
func (in *Injector) Visits(site string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.visits[site]
}

// Fires returns how many faults the site actually injected.
func (in *Injector) Fires(site string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fires[site]
}

// active is the process-global injector consulted by Fire sites that have no
// natural way to receive a per-instance injector (the search engines'
// evaluation path). Tests arm it with Activate and must Deactivate when done.
var active atomic.Pointer[Injector]

// Activate installs in as the process-global injector (nil deactivates).
func Activate(in *Injector) { active.Store(in) }

// Deactivate removes the process-global injector.
func Deactivate() { active.Store(nil) }

// Active returns the process-global injector, or nil when disarmed. The
// returned value is safe to Fire either way.
func Active() *Injector { return active.Load() }
