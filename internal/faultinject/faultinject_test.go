package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsDisarmed(t *testing.T) {
	var in *Injector
	if err := in.Fire("anywhere"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if in.Visits("anywhere") != 0 || in.Fires("anywhere") != 0 {
		t.Fatal("nil injector reported accounting")
	}
}

func TestUnarmedSiteCountsVisitsOnly(t *testing.T) {
	in := New(1, Plan{Site: "armed", Mode: ModeError})
	for i := 0; i < 5; i++ {
		if err := in.Fire("other"); err != nil {
			t.Fatalf("unarmed site fired: %v", err)
		}
	}
	if got := in.Visits("other"); got != 5 {
		t.Fatalf("visits = %d, want 5", got)
	}
	if got := in.Fires("other"); got != 0 {
		t.Fatalf("fires = %d, want 0", got)
	}
}

func TestErrorEveryNthWithOffsetAndTimes(t *testing.T) {
	in := New(1, Plan{Site: "s", Mode: ModeError, Every: 3, Offset: 2, Times: 2})
	var firedAt []int
	for visit := 1; visit <= 14; visit++ {
		if err := in.Fire("s"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("visit %d: error does not wrap ErrInjected: %v", visit, err)
			}
			firedAt = append(firedAt, visit)
		}
	}
	// Eligible visits are 3,4,5,... (offset 2); every 3rd eligible → visits
	// 5, 8, 11, ...; Times 2 caps it at the first two.
	want := []int{5, 8}
	if len(firedAt) != len(want) || firedAt[0] != want[0] || firedAt[1] != want[1] {
		t.Fatalf("fired at %v, want %v", firedAt, want)
	}
	if got := in.Fires("s"); got != 2 {
		t.Fatalf("fires = %d, want 2", got)
	}
}

func TestCustomErrorWrapsSentinel(t *testing.T) {
	boom := errors.New("boom")
	in := New(1, Plan{Site: "s", Mode: ModeError, Err: boom})
	err := in.Fire("s")
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("custom error lost the sentinel: %v", err)
	}
}

func TestPanicModePanicsWithPayload(t *testing.T) {
	in := New(1, Plan{Site: "s", Mode: ModePanic})
	defer func() {
		r := recover()
		p, ok := r.(Panic)
		if !ok || p.Site != "s" {
			t.Fatalf("recovered %#v, want Panic{Site: s}", r)
		}
	}()
	_ = in.Fire("s") // only the panic path is reachable on this plan
	t.Fatal("Fire returned instead of panicking")
}

func TestLatencyModeSleeps(t *testing.T) {
	in := New(1, Plan{Site: "s", Mode: ModeLatency, Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := in.Fire("s"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("latency firing returned after %v, want ≥ 10ms", d)
	}
}

func TestProbIsSeededDeterministic(t *testing.T) {
	run := func() []int {
		in := New(42, Plan{Site: "s", Mode: ModeError, Prob: 0.5})
		var fired []int
		for visit := 1; visit <= 32; visit++ {
			if err := in.Fire("s"); err != nil {
				fired = append(fired, visit)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 32 {
		t.Fatalf("degenerate probabilistic schedule: %v", a)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed produced different schedules: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different schedules: %v vs %v", a, b)
		}
	}
}

func TestConcurrentFiringIsExactlyCounted(t *testing.T) {
	// 1-in-8 error injection over 400 concurrent visits must fire exactly
	// 400/8 times no matter how goroutines interleave.
	const visits, every = 400, 8
	in := New(1, Plan{Site: "s", Mode: ModeError, Every: every})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var injected int
	for i := 0; i < visits; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := in.Fire("s"); err != nil {
				mu.Lock()
				injected++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if injected != visits/every {
		t.Fatalf("injected %d faults, want exactly %d", injected, visits/every)
	}
	if in.Visits("s") != visits || in.Fires("s") != visits/every {
		t.Fatalf("accounting: visits=%d fires=%d", in.Visits("s"), in.Fires("s"))
	}
}

func TestActivateDeactivate(t *testing.T) {
	if Active() != nil {
		t.Fatal("global injector armed at test start")
	}
	in := New(1, Plan{Site: "s", Mode: ModeError})
	Activate(in)
	defer Deactivate()
	if err := Active().Fire("s"); err == nil {
		t.Fatal("activated injector did not fire")
	}
	Deactivate()
	if Active() != nil {
		t.Fatal("Deactivate left the injector armed")
	}
	if err := Active().Fire("s"); err != nil {
		t.Fatalf("deactivated global fired: %v", err)
	}
}

// TestFireCtxLatencyHonorsCancel: a latency firing under an already-canceled
// context returns the context error instead of sleeping out the delay — the
// behavior the router's hedging path needs from a "slow upstream".
func TestFireCtxLatencyHonorsCancel(t *testing.T) {
	in := New(1, Plan{Site: "s", Mode: ModeLatency, Delay: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := in.FireCtx(ctx, "s")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("FireCtx took %v despite the canceled context", d)
	}
	if in.Fires("s") != 1 {
		t.Fatalf("fires = %d, want 1 (the firing still counts)", in.Fires("s"))
	}
}

// TestFireCtxMatchesFireForErrors: error-mode firings are identical through
// both entry points, and an unarmed or nil receiver stays a no-op.
func TestFireCtxMatchesFireForErrors(t *testing.T) {
	ctx := context.Background()
	var nilIn *Injector
	if err := nilIn.FireCtx(ctx, "s"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	in := New(1, Plan{Site: "s", Mode: ModeError, Every: 2})
	var fired int
	for i := 0; i < 6; i++ {
		if err := in.FireCtx(ctx, "s"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("error does not wrap ErrInjected: %v", err)
			}
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times over 6 visits with Every:2, want 3", fired)
	}
	if err := in.FireCtx(ctx, "unarmed"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
}
