// Package search implements the search-based dataflow optimizer the
// principles are validated against, playing the role DAT plays in the paper
// (Fig. 9). Several engines are provided over the identical tiling/scheduling
// space used by internal/core:
//
//   - Exhaustive enumerates every loop order and every integer tiling —
//     the ground-truth optimum, tractable for small operators and used by the
//     test suite to prove the principle optimizer's optimality. It prunes by
//     footprint monotonicity; ReferenceExhaustive is the frozen unpruned
//     original it is proven equivalent to.
//   - ExhaustiveCoarse restricts the tilings to the TileGrid lattice — the
//     tractable projection search-based mappers explore for large operators.
//   - ParallelExhaustive / ParallelCoarse shard the same scans across a
//     worker pool and return bit-identical results.
//   - Genetic is a DAT-style genetic algorithm for spaces where exhaustive
//     enumeration is intractable. Like DAT's GA it does not guarantee the
//     global optimum, which is exactly the behaviour Fig. 9 exercises.
//   - OptimizeAnalytic derives per-regime closed-form optima of the
//     piecewise-affine cost model and prices only the integer boundary
//     candidates around them — tens-to-hundreds of exact evaluations where
//     the GA pays thousands. It is the default polish stage of Optimize/
//     OptimizeTable and the sole engine above CoarseLatticeLimit.
//
// Every engine has a *Cached variant accepting an EvalCache so buffer-size
// sweeps evaluate each candidate dataflow once (cost does not depend on the
// buffer size; only feasibility filtering does).
package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fusecu/internal/cost"
	"fusecu/internal/dataflow"
	"fusecu/internal/errs"
	"fusecu/internal/invariant"
	"fusecu/internal/op"
)

// Result is the outcome of a search.
type Result struct {
	Dataflow dataflow.Dataflow
	Access   cost.Access
	// Evaluations counts cost-model invocations, the search-cost metric the
	// paper contrasts with one-shot principle optimization. Candidates
	// served from an EvalCache are NOT counted here.
	Evaluations int64
	// CacheHits counts candidate visits served from an EvalCache without
	// invoking the cost model. Evaluations + CacheHits is the engine's
	// total candidate-visit count and is invariant under caching.
	CacheHits int64
	Method    string
}

// Exhaustive enumerates all 6 loop orders × all integer tilings and returns
// the global optimum. Cost grows with M·K·L; use only for operators whose
// dimension product is modest (tests, calibration). The scan prunes by
// footprint monotonicity and is proven bit-identical to
// ReferenceExhaustive.
func Exhaustive(mm op.MatMul, bufferSize int64) (Result, error) {
	return ExhaustiveCached(mm, bufferSize, nil)
}

// ExhaustiveCached is Exhaustive with candidate evaluations memoized in
// cache (which may be nil).
func ExhaustiveCached(mm op.MatMul, bufferSize int64, cache *EvalCache) (Result, error) {
	return ExhaustiveCachedCtx(context.Background(), mm, bufferSize, cache)
}

// ExhaustiveCachedCtx is ExhaustiveCached with cooperative cancellation:
// when ctx is canceled the scan abandons its sweep at the next poll and
// returns ctx.Err() instead of a partial optimum.
func ExhaustiveCachedCtx(ctx context.Context, mm op.MatMul, bufferSize int64, cache *EvalCache) (Result, error) {
	if err := mm.Validate(); err != nil {
		return Result{}, err
	}
	return enumerate(ctx, mm, bufferSize, fullRange(mm.M), fullRange(mm.K), fullRange(mm.L), cache, 1, "exhaustive")
}

// TileGrid returns the candidate tile values for one dimension extent used
// by the coarse engines: 1, the extent itself, all powers of two below it,
// and all divisors up to a density cap. This matches the pragmatic grids
// search-based mappers explore.
func TileGrid(extent int) []int {
	set := map[int]bool{1: true, extent: true}
	for p := 2; p < extent; p *= 2 {
		set[p] = true
	}
	for d := 2; d*d <= extent; d++ {
		if extent%d == 0 {
			set[d] = true
			set[extent/d] = true
		}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// ExhaustiveCoarse enumerates all loop orders over the TileGrid lattice —
// the tractable projection of the full space that DSE frameworks typically
// explore for large operators. Pruned like Exhaustive; proven bit-identical
// to ReferenceCoarse.
func ExhaustiveCoarse(mm op.MatMul, bufferSize int64) (Result, error) {
	return ExhaustiveCoarseCached(mm, bufferSize, nil)
}

// ExhaustiveCoarseCached is ExhaustiveCoarse with candidate evaluations
// memoized in cache (which may be nil).
func ExhaustiveCoarseCached(mm op.MatMul, bufferSize int64, cache *EvalCache) (Result, error) {
	return ExhaustiveCoarseCachedCtx(context.Background(), mm, bufferSize, cache)
}

// ExhaustiveCoarseCachedCtx is ExhaustiveCoarseCached with cooperative
// cancellation, under the same promptness contract as ExhaustiveCachedCtx.
func ExhaustiveCoarseCachedCtx(ctx context.Context, mm op.MatMul, bufferSize int64, cache *EvalCache) (Result, error) {
	if err := mm.Validate(); err != nil {
		return Result{}, err
	}
	return enumerate(ctx, mm, bufferSize, TileGrid(mm.M), TileGrid(mm.K), TileGrid(mm.L), cache, 1, "exhaustive-coarse")
}

// ParallelExhaustive is Exhaustive sharded across a worker pool (workers ≤ 0
// selects GOMAXPROCS). The result — dataflow, access, tie-break and
// evaluation count — is bit-identical to the sequential engine's; only the
// split between Evaluations and CacheHits can vary with scheduling when a
// cache is shared.
func ParallelExhaustive(mm op.MatMul, bufferSize int64, workers int, cache *EvalCache) (Result, error) {
	return ParallelExhaustiveCtx(context.Background(), mm, bufferSize, workers, cache)
}

// ParallelExhaustiveCtx is ParallelExhaustive with cooperative cancellation:
// when ctx is canceled the dispatcher stops sharding, every worker abandons
// its chunk at the next poll (at most ~1024 candidate visits away), and the
// call returns ctx.Err() instead of a partial optimum.
func ParallelExhaustiveCtx(ctx context.Context, mm op.MatMul, bufferSize int64, workers int, cache *EvalCache) (Result, error) {
	if err := mm.Validate(); err != nil {
		return Result{}, err
	}
	return enumerate(ctx, mm, bufferSize, fullRange(mm.M), fullRange(mm.K), fullRange(mm.L), cache, nonUnitWorkers(workers), "exhaustive-parallel")
}

// ParallelCoarse is ExhaustiveCoarse sharded across a worker pool, with the
// same bit-identical-result guarantee as ParallelExhaustive.
func ParallelCoarse(mm op.MatMul, bufferSize int64, workers int, cache *EvalCache) (Result, error) {
	return ParallelCoarseCtx(context.Background(), mm, bufferSize, workers, cache)
}

// ParallelCoarseCtx is ParallelCoarse with cooperative cancellation, under
// the same promptness contract as ParallelExhaustiveCtx.
func ParallelCoarseCtx(ctx context.Context, mm op.MatMul, bufferSize int64, workers int, cache *EvalCache) (Result, error) {
	if err := mm.Validate(); err != nil {
		return Result{}, err
	}
	return enumerate(ctx, mm, bufferSize, TileGrid(mm.M), TileGrid(mm.K), TileGrid(mm.L), cache, nonUnitWorkers(workers), "exhaustive-coarse-parallel")
}

// nonUnitWorkers keeps an explicit workers=1 request on the sequential
// in-line path while mapping auto-selection (≤ 0) through to the pool.
func nonUnitWorkers(workers int) int {
	if workers < 1 {
		return 0
	}
	return workers
}

// GeneticOptions tunes the genetic engine. The zero value selects the
// defaults used throughout the benchmarks.
type GeneticOptions struct {
	Population  int // default 64
	Generations int // default 60
	// Seed seeds the deterministic RNG. The zero value selects the default
	// seed 1 (so zero-valued options keep the benchmarks' historical
	// behaviour); every other value, including negatives, is used verbatim.
	// A literal seed of 0 is therefore not expressible — pass any other
	// value for an independent stream.
	Seed int64
	// Elitism keeps the best individuals unchanged each generation.
	// 0 selects the default of 4; a negative value requests no elitism
	// (the zero value cannot, since it must keep the default behaviour).
	Elitism int
	// Polish selects the engine Optimize/OptimizeTable polish with (and run
	// exclusively above CoarseLatticeLimit): the analytic closed-form
	// optimizer by default (the zero value), or the genetic algorithm behind
	// the -polish=ga escape hatch. The Genetic* entry points ignore it —
	// they are the GA, whatever the polish default.
	Polish PolishMode
}

func (o GeneticOptions) withDefaults() GeneticOptions {
	if o.Population <= 0 {
		o.Population = 64
	}
	if o.Generations <= 0 {
		o.Generations = 60
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	switch {
	case o.Elitism == 0:
		o.Elitism = 4
	case o.Elitism < 0:
		o.Elitism = 0
	}
	if o.Elitism > o.Population/2 {
		o.Elitism = o.Population / 2
	}
	return o
}

type genome struct {
	order      int // index into dataflow.AllOrders()
	tm, tk, tl int
}

// infeasibleFitness penalizes an infeasible genome proportionally to its
// buffer overflow, saturating at MaxInt64 instead of wrapping: on huge
// operators total + overflow·1024 exceeds int64, and the wrapped-negative
// penalty would make an infeasible genome beat every feasible one.
func infeasibleFitness(total, overflow int64) int64 {
	const weight = 1024
	if invariant.MulOverflows(overflow, weight) {
		return math.MaxInt64
	}
	p := overflow * weight
	if total > math.MaxInt64-p {
		return math.MaxInt64
	}
	return total + p
}

// Genetic runs a DAT-style genetic algorithm over loop orders and integer
// tilings. It is deterministic for a fixed seed. Like DAT it may return a
// locally rather than globally optimal dataflow.
func Genetic(mm op.MatMul, bufferSize int64, opts GeneticOptions) (Result, error) {
	return GeneticCached(mm, bufferSize, opts, nil)
}

// GeneticCached is Genetic with fitness evaluations memoized in cache
// (which may be nil). The cache never alters the GA's trajectory — the RNG
// stream is independent of it — only the Evaluations/CacheHits split.
func GeneticCached(mm op.MatMul, bufferSize int64, opts GeneticOptions, cache *EvalCache) (Result, error) {
	return geneticCtx(context.Background(), mm, bufferSize, opts, cache)
}

// GeneticCtx is GeneticCached under a cancelable context: the generation
// loop stops promptly when ctx is done, returning ctx's error.
func GeneticCtx(ctx context.Context, mm op.MatMul, bufferSize int64, opts GeneticOptions, cache *EvalCache) (Result, error) {
	return geneticCtx(ctx, mm, bufferSize, opts, cache)
}

// geneticCtx is the cancellation-aware GA core: the generation loop checks
// ctx between generations (one generation is a bounded Population-sized
// batch of closed-form evaluations, so the check cadence is milliseconds).
// Like the enumeration engines it is a panic-containment boundary: a panic
// escaping a fitness evaluation (injected or organic) is returned as an
// ErrInternal error instead of unwinding into the caller.
func geneticCtx(ctx context.Context, mm op.MatMul, bufferSize int64, opts GeneticOptions, cache *EvalCache) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = Result{}, panicError(r)
		}
	}()
	if err := mm.Validate(); err != nil {
		return Result{}, err
	}
	if bufferSize < 3 {
		return Result{}, fmt.Errorf("search: buffer %d cannot hold 1×1 tiles: %w", bufferSize, errs.ErrBufferTooSmall)
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	orders := dataflow.AllOrders()

	var evals, hits int64
	fitness := func(g genome) int64 {
		df := dataflow.Must(mm, orders[g.order], dataflow.ClampedTiling(mm, g.tm, g.tk, g.tl))
		a, hit := evalDataflow(mm, df, cache)
		if hit {
			hits++
		} else {
			evals++
		}
		if a.Footprint > bufferSize {
			// Penalize infeasible individuals proportionally to overflow so
			// repair pressure points back into the feasible region.
			return infeasibleFitness(a.Total, a.Footprint-bufferSize)
		}
		return a.Total
	}

	randTile := func(ext int) int { return rng.Intn(ext) + 1 }
	repair := func(g genome) genome {
		g.tm, g.tk, g.tl = clampT(g.tm, mm.M), clampT(g.tk, mm.K), clampT(g.tl, mm.L)
		for i := 0; i < 64; i++ {
			ti := dataflow.ClampedTiling(mm, g.tm, g.tk, g.tl)
			if ti.Footprint() <= bufferSize {
				break
			}
			// Shrink the largest tile.
			switch {
			case g.tm >= g.tk && g.tm >= g.tl && g.tm > 1:
				g.tm = g.tm/2 + g.tm%2
			case g.tk >= g.tl && g.tk > 1:
				g.tk = g.tk/2 + g.tk%2
			case g.tl > 1:
				g.tl = g.tl/2 + g.tl%2
			default:
				return g
			}
		}
		return g
	}

	pop := make([]genome, opts.Population)
	for i := range pop {
		pop[i] = repair(genome{
			order: rng.Intn(len(orders)),
			tm:    randTile(mm.M),
			tk:    randTile(mm.K),
			tl:    randTile(mm.L),
		})
	}

	type scored struct {
		g genome
		f int64
	}
	score := func() []scored {
		s := make([]scored, len(pop))
		for i, g := range pop {
			s[i] = scored{g, fitness(g)}
		}
		sort.Slice(s, func(i, j int) bool { return s[i].f < s[j].f })
		return s
	}

	mutate := func(g genome) genome {
		switch rng.Intn(5) {
		case 0:
			g.order = rng.Intn(len(orders))
		case 1:
			g.tm = mutateTile(rng, g.tm, mm.M)
		case 2:
			g.tk = mutateTile(rng, g.tk, mm.K)
		case 3:
			g.tl = mutateTile(rng, g.tl, mm.L)
		case 4:
			// Jump to an untiled extreme, the move that discovers the
			// Two-/Three-NRA basins.
			switch rng.Intn(3) {
			case 0:
				g.tm = mm.M
			case 1:
				g.tk = mm.K
			case 2:
				g.tl = mm.L
			}
		}
		return repair(g)
	}
	crossover := func(a, b genome) genome {
		c := a
		if rng.Intn(2) == 0 {
			c.order = b.order
		}
		if rng.Intn(2) == 0 {
			c.tm = b.tm
		}
		if rng.Intn(2) == 0 {
			c.tk = b.tk
		}
		if rng.Intn(2) == 0 {
			c.tl = b.tl
		}
		return repair(c)
	}
	tournament := func(s []scored) genome {
		best := s[rng.Intn(len(s))]
		for i := 0; i < 2; i++ {
			if c := s[rng.Intn(len(s))]; c.f < best.f {
				best = c
			}
		}
		return best.g
	}

	var bestG genome
	var bestF int64 = -1
	for gen := 0; gen < opts.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("search: genetic search canceled at generation %d: %w", gen, err)
		}
		s := score()
		if bestF < 0 || s[0].f < bestF {
			bestF, bestG = s[0].f, s[0].g
		}
		next := make([]genome, 0, opts.Population)
		for i := 0; i < opts.Elitism && i < len(s); i++ {
			next = append(next, s[i].g)
		}
		for len(next) < opts.Population {
			child := crossover(tournament(s), tournament(s))
			if rng.Intn(100) < 40 {
				child = mutate(child)
			}
			next = append(next, child)
		}
		pop = next
	}
	s := score()
	if s[0].f < bestF {
		bestF, bestG = s[0].f, s[0].g
	}

	df := dataflow.Must(mm, orders[bestG.order], dataflow.ClampedTiling(mm, bestG.tm, bestG.tk, bestG.tl))
	// Uncounted re-evaluation of the winner, preserving the historical
	// Evaluations semantics (fitness invocations only).
	a := cost.MustEvaluate(mm, df)
	if a.Footprint > bufferSize {
		return Result{}, fmt.Errorf("search: genetic search found no feasible dataflow for %v in buffer %d: %w", mm, bufferSize, errs.ErrInfeasible)
	}
	return Result{Dataflow: df, Access: a, Evaluations: evals, CacheHits: hits, Method: "genetic"}, nil
}

// polishCtx runs the configured polish engine. Both modes deliberately run
// uncached: their candidates are off-lattice tilings that almost never
// repeat, so probing and flooding the shared cache with them costs more
// than the evaluation it would save — the cacheable (lattice) work already
// lives in the scan or the table. Both modes are deterministic and
// cache-independent, so the hybrid entry points stay bit-identical across
// the scan-backed, parallel and table-backed paths, including the
// Evaluations+CacheHits conservation sum the equivalence tests pin.
func polishCtx(ctx context.Context, mm op.MatMul, bufferSize int64, opts GeneticOptions) (Result, error) {
	if opts.Polish == PolishGA {
		return geneticCtx(ctx, mm, bufferSize, opts, nil)
	}
	return OptimizeAnalyticCtx(ctx, mm, bufferSize)
}

// solePolish is the engine selection above CoarseLatticeLimit, where the
// polish is the only stage: the analytic engine by default (it needs no
// lattice and prices O(1) candidates), the cached GA behind PolishGA.
func solePolish(ctx context.Context, mm op.MatMul, bufferSize int64, opts GeneticOptions, cache *EvalCache) (Result, error) {
	if opts.Polish == PolishGA {
		return geneticCtx(ctx, mm, bufferSize, opts, cache)
	}
	return OptimizeAnalyticCtx(ctx, mm, bufferSize)
}

// Optimize picks the engine by space size: exact enumeration over the coarse
// lattice when it is small enough (plus the analytic polish), otherwise the
// polish engine alone. This is the entry point the Fig. 9 harness uses as
// "DAT".
func Optimize(mm op.MatMul, bufferSize int64, opts GeneticOptions) (Result, error) {
	return OptimizeCached(mm, bufferSize, opts, nil)
}

// OptimizeCached is Optimize with every candidate evaluation memoized in
// cache (which may be nil) — the buffer-sweep entry point: across sweep
// points the same candidates recur and are served as CacheHits.
func OptimizeCached(mm op.MatMul, bufferSize int64, opts GeneticOptions, cache *EvalCache) (Result, error) {
	return optimize(context.Background(), mm, bufferSize, opts, cache, 1)
}

// OptimizeParallel is Optimize with the lattice stage sharded across
// workers (workers ≤ 0 selects GOMAXPROCS); the polish stays sequential —
// it prices only a handful of closed-form candidates (or, under PolishGA,
// is a dependent chain by construction).
func OptimizeParallel(mm op.MatMul, bufferSize int64, opts GeneticOptions, workers int, cache *EvalCache) (Result, error) {
	return OptimizeParallelCtx(context.Background(), mm, bufferSize, opts, workers, cache)
}

// OptimizeParallelCtx is OptimizeParallel with cooperative cancellation
// threaded through both stages: the sharded lattice scan stops its worker
// pool promptly (see ParallelExhaustiveCtx) and the polish checks its own
// stride. When ctx is canceled the call returns an error
// wrapping ctx.Err(); an uncancelled ctx changes nothing — results stay
// bit-identical to OptimizeParallel.
func OptimizeParallelCtx(ctx context.Context, mm op.MatMul, bufferSize int64, opts GeneticOptions, workers int, cache *EvalCache) (Result, error) {
	return optimize(ctx, mm, bufferSize, opts, cache, workers)
}

// CoarseLatticeLimit is the coarse-lattice size up to which Optimize runs
// the exact enumeration stage (plus polish); above it only the polish
// engine runs — analytic by default, the GA behind PolishGA. Exported so
// table-backed callers can reproduce the engine selection exactly.
const CoarseLatticeLimit = 200_000

// CoarseLattice returns the size of mm's coarse candidate lattice — the
// quantity Optimize compares against CoarseLatticeLimit.
func CoarseLattice(mm op.MatMul) int64 {
	return int64(len(TileGrid(mm.M))) * int64(len(TileGrid(mm.K))) * int64(len(TileGrid(mm.L))) * 6
}

// OptimizeTable is OptimizeTableCtx without cancellation.
func OptimizeTable(mm op.MatMul, bufferSize int64, opts GeneticOptions, table *CandTable, cache *EvalCache) (Result, error) {
	return OptimizeTableCtx(context.Background(), mm, bufferSize, opts, table, cache)
}

// OptimizeTableCtx is Optimize with the coarse lattice stage served by a
// prebuilt candidate table instead of a per-call scan: an O(log n) step
// lookup replaces the O(lattice) enumeration, and the polish runs
// unchanged. Results are bit-identical to OptimizeParallelCtx for the same
// inputs (property-tested), including the Evaluations+CacheHits accounting.
//
// table must cover mm's shape over GridCoarse when mm's coarse lattice is
// within CoarseLatticeLimit; above the limit the lattice stage is skipped —
// exactly as in Optimize — and table may be nil.
func OptimizeTableCtx(ctx context.Context, mm op.MatMul, bufferSize int64, opts GeneticOptions, table *CandTable, cache *EvalCache) (Result, error) {
	if err := mm.Validate(); err != nil {
		return Result{}, err
	}
	if CoarseLattice(mm) > CoarseLatticeLimit {
		return solePolish(ctx, mm, bufferSize, opts, cache)
	}
	if table == nil {
		return Result{}, fmt.Errorf("search: OptimizeTable needs a coarse candidate table for %v: %w", mm, errs.ErrInternal)
	}
	if tm := table.Op(); tm.M != mm.M || tm.K != mm.K || tm.L != mm.L || table.Grid() != GridCoarse {
		return Result{}, fmt.Errorf("search: candidate table covers %v over %s grid, want %v coarse: %w", table.Op(), table.Grid(), mm, errs.ErrInternal)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("search: canceled: %w", err)
	}
	r, err := table.Best(bufferSize)
	if err != nil {
		return Result{}, err
	}
	// Same polish-and-keep-better rule as optimize(); the polish is
	// deterministic and uncached (see polishCtx), so the combined result —
	// including the conservation sum — matches the scan path bit for bit.
	g, gerr := polishCtx(ctx, mm, bufferSize, opts)
	if gerr == nil && g.Access.Total < r.Access.Total {
		g.Evaluations += r.Evaluations
		g.CacheHits += r.CacheHits
		g.Method = "table+" + opts.Polish.methodSuffix()
		return g, nil
	}
	r.Evaluations += g.Evaluations
	r.CacheHits += g.CacheHits
	return r, nil
}

func optimize(ctx context.Context, mm op.MatMul, bufferSize int64, opts GeneticOptions, cache *EvalCache, workers int) (Result, error) {
	lattice := CoarseLattice(mm)
	if lattice <= CoarseLatticeLimit {
		var (
			r   Result
			err error
		)
		if workers == 1 {
			r, err = enumerate(ctx, mm, bufferSize, TileGrid(mm.M), TileGrid(mm.K), TileGrid(mm.L), cache, 1, "exhaustive-coarse")
		} else {
			r, err = ParallelCoarseCtx(ctx, mm, bufferSize, workers, cache)
		}
		if err != nil {
			return Result{}, err
		}
		// The coarse lattice can miss boundary tile values such as
		// (BS−K)/(K+1); polish — the analytic engine's closed-form boundary
		// candidates by default, DAT's MIP+GA hybrid under PolishGA — and
		// keep the better of the two. The polish runs uncached (see
		// polishCtx); its deterministic evaluation count only moves the
		// Evaluations/CacheHits split, never the conserved sum.
		g, gerr := polishCtx(ctx, mm, bufferSize, opts)
		if gerr == nil && g.Access.Total < r.Access.Total {
			g.Evaluations += r.Evaluations
			g.CacheHits += r.CacheHits
			g.Method = "coarse+" + opts.Polish.methodSuffix()
			return g, nil
		}
		r.Evaluations += g.Evaluations
		r.CacheHits += g.CacheHits
		return r, nil
	}
	return solePolish(ctx, mm, bufferSize, opts, cache)
}

func clampT(v, hi int) int {
	if v < 1 {
		return 1
	}
	if v > hi {
		return hi
	}
	return v
}

func mutateTile(rng *rand.Rand, v, ext int) int {
	switch rng.Intn(4) {
	case 0:
		v *= 2
	case 1:
		v = v/2 + v%2
	case 2:
		v += rng.Intn(5) - 2
	default:
		v = rng.Intn(ext) + 1
	}
	return clampT(v, ext)
}
