package search

import (
	"sync"

	"fusecu/internal/cost"
	"fusecu/internal/dataflow"
	"fusecu/internal/op"
)

// EvalCache memoizes cost-model evaluations across searches, keyed by the
// complete cost input (operator shape, loop order, tile triple). Its point
// is buffer-size sweeps: cost.Evaluate does not depend on the buffer size —
// only feasibility filtering does — so a sweep like experiments.Fig9 can
// evaluate each (order, tiling) candidate once and serve every other sweep
// point from the cache, filtering by footprint per point.
//
// Hits and misses are counted separately: engines report served-from-cache
// visits in Result.CacheHits, never in Result.Evaluations, so the paper's
// search-cost metric (cost-model invocations) stays honest.
//
// The cache is sharded by key hash and safe for concurrent use by the
// parallel engines. Operator names are not part of the key — cost depends
// only on the dimensions — so a cache may be shared across identically
// shaped operators.
type EvalCache struct {
	shards [evalCacheShards]evalCacheShard
}

// evalCacheShards trades map contention against footprint; 64 keeps the
// worker pools (≤ GOMAXPROCS) mostly collision-free.
const evalCacheShards = 64

// evalCacheShard is one mutex-guarded slice of the cache.
type evalCacheShard struct {
	mu     sync.Mutex
	m      map[evalKey]cost.Access
	hits   int64
	misses int64
}

// evalKey is the complete input of one cost evaluation.
type evalKey struct {
	m, k, l    int
	order      dataflow.Order
	tm, tk, tl int
}

// shard hashes the key (FNV-1a over its coordinates) to a shard index.
func (k evalKey) shard() int {
	h := uint64(14695981039346656037)
	for _, v := range [...]int{k.m, k.k, k.l, int(k.order[0]), int(k.order[1]), int(k.order[2]), k.tm, k.tk, k.tl} {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return int(h % evalCacheShards)
}

// NewEvalCache returns an empty cache.
func NewEvalCache() *EvalCache {
	c := &EvalCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[evalKey]cost.Access)
	}
	return c
}

// Evaluate returns the exact cost of df on mm, computing it at most once
// per (shape, order, tiling) over the cache's lifetime. The boolean reports
// whether this call was served from the cache.
func (c *EvalCache) Evaluate(mm op.MatMul, df dataflow.Dataflow) (cost.Access, bool) {
	key := evalKey{
		m: mm.M, k: mm.K, l: mm.L,
		order: df.Order,
		tm:    df.Tiling.TM, tk: df.Tiling.TK, tl: df.Tiling.TL,
	}
	sh := &c.shards[key.shard()]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if a, ok := sh.m[key]; ok {
		sh.hits++
		return a, true
	}
	a := cost.MustEvaluate(mm, df)
	sh.m[key] = a
	sh.misses++
	return a, false
}

// CacheStats summarizes an EvalCache's traffic.
type CacheStats struct {
	// Hits counts evaluations served from the cache; Misses counts actual
	// cost-model invocations. Entries is the resident candidate count
	// (equal to Misses: each miss inserts exactly one entry).
	Hits, Misses, Entries int64
}

// Stats returns the cache's cumulative hit/miss counters.
func (c *EvalCache) Stats() CacheStats {
	var s CacheStats
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Hits += sh.hits
		s.Misses += sh.misses
		s.Entries += int64(len(sh.m))
		sh.mu.Unlock()
	}
	return s
}
