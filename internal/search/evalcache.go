package search

import (
	"sync"
	"sync/atomic"

	"fusecu/internal/cost"
	"fusecu/internal/dataflow"
	"fusecu/internal/op"
)

// EvalCache memoizes cost-model evaluations across searches, keyed by the
// complete cost input (operator shape, loop order, tile triple). Its point
// is buffer-size sweeps: cost.Evaluate does not depend on the buffer size —
// only feasibility filtering does — so a sweep like experiments.Fig9 can
// evaluate each (order, tiling) candidate once and serve every other sweep
// point from the cache, filtering by footprint per point.
//
// Hits and misses are counted separately: engines report served-from-cache
// visits in Result.CacheHits, never in Result.Evaluations, so the paper's
// search-cost metric (cost-model invocations) stays honest.
//
// The cache is two-level: a tiny read-mostly map from operator shape to a
// per-shape sub-cache, then 64 hash shards of compact per-candidate keys
// inside each sub-cache. Splitting the shape out of the per-candidate key is
// what makes the hot probe cheap enough to beat the batch kernel's ~10 ns
// evaluations: the resident key shrinks from a 56-byte struct (hashed in
// full on every probe) to 16 bytes of order index + int32 tile triple, and
// a block-batched caller resolves the sub-cache once per block instead of
// re-hashing the shape per candidate. Operator names are not part of either
// level — cost depends only on the dimensions — so a cache may be shared
// across identically shaped operators.
//
// Each shard is a read-mostly two-tier structure: an immutable snapshot map
// behind an atomic.Pointer serves hits without any lock (one pointer load,
// one map read, one striped atomic counter bump), while misses go through
// the shard mutex into a small dirty overlay that is merged into a fresh
// snapshot once it grows past a fraction of the published map (or once
// enough reads land on it, signalling the write burst has ended). Steady
// state — the 100:1 hit-dominated traffic of a warm sweep or a hot serving
// shape — therefore never contends on a mutex.
type EvalCache struct {
	// ops is the read-mostly shape directory. The map it points to is never
	// mutated after publication; registering a new shape builds a
	// replacement under mu and swaps the pointer.
	ops atomic.Pointer[map[opShape]*opEvalCache]
	mu  sync.Mutex
}

// opShape keys sub-caches by operator dimensions; names are irrelevant to
// cost.
type opShape struct{ m, k, l int }

// opEvalCache is one shape's shard set.
type opEvalCache struct {
	shards [evalCacheShards]evalCacheShard
}

// evalCacheShards trades publish granularity against footprint; 64 keeps the
// worker pools (≤ GOMAXPROCS) mostly collision-free on the miss path and
// bounds each snapshot republish to 1/64th of the shape's resident
// candidates.
const evalCacheShards = 64

// evalCacheShard is one two-tier slice of a sub-cache. The first cache line
// holds the read path (snapshot pointer + hit counter); the mutex-guarded
// write tier follows, padded so neighbouring shards' hit counters do not
// false-share.
type evalCacheShard struct {
	// snap is the immutable read tier. The map it points to is never
	// mutated after publication; misses build a replacement and swap the
	// pointer under mu.
	snap atomic.Pointer[map[evalKey]cost.Access]
	// hits counts served-from-cache evaluations. Written with a plain
	// atomic add on the lock-free path.
	hits atomic.Int64

	mu        sync.Mutex
	dirty     map[evalKey]cost.Access // entries not yet in snap; disjoint from it
	dirtyHits int64                   // hits served from dirty since the last publish
	misses    int64

	_ [24]byte // pad shards apart (struct ≈ 104B → 128B, two lines)
}

// publishPressure is the number of mutex-path hits on the dirty tier that
// force a snapshot republish even below the size threshold: reads landing on
// dirty mean the write burst is over and the residue should move to the
// lock-free tier.
const publishPressure = 64

// publishFloor is the minimum dirty size for a size-triggered republish.
// Below it a miss burst accumulates in the overlay at plain map-insert cost
// (exactly the old single-tier cache's price) and is promoted wholesale by
// read pressure once the burst ends; publishing on every small growth step
// instead measurably slowed miss-heavy sweeps (each republish copies the
// snapshot).
const publishFloor = 256

// evalKey is the compact per-shape candidate key: the canonical order index
// (AllOrders position, -1 for a malformed order — which the miss path's
// evaluation then rejects before anything is inserted) and the tile triple.
// Tiles are stored as int32: a dimension extent at or above 2³¹ would give
// tensors past 4·10¹⁸ elements, far beyond anything the cost model's int64
// products survive, so the narrowing never aliases in practice.
type evalKey struct {
	tm, tk, tl int32
	oi         int32
}

// orderIndexLUT maps an Order's radix-3 dim packing to its AllOrders index;
// non-permutation packings hold -1.
var orderIndexLUT = func() [27]int8 {
	var lut [27]int8
	for i := range lut {
		lut[i] = -1
	}
	for oi, o := range dataflow.AllOrders() {
		lut[int(o[0])*9+int(o[1])*3+int(o[2])] = int8(oi)
	}
	return lut
}()

// orderIndex returns o's canonical index in dataflow.AllOrders, or -1 when o
// is not a permutation of the three dims.
func orderIndex(o dataflow.Order) int32 {
	i := int(o[0])*9 + int(o[1])*3 + int(o[2])
	if i < 0 || i >= len(orderIndexLUT) {
		return -1
	}
	return int32(orderIndexLUT[i])
}

// shard hashes the key to a shard index. The fields are spread across the
// word so no pair cancels, then a splitmix64-style finalizer avalanches high
// bits into the low bits the index is taken from — power-of-two tile grids
// (every field sharing low zero bits) must still spread evenly, which
// TestEvalKeyShardDistribution pins with a chi-square bound.
func (k evalKey) shard() int {
	h := uint64(uint32(k.tm))<<32 ^ uint64(uint32(k.tk))
	h ^= uint64(uint32(k.tl))<<16 ^ uint64(uint32(k.oi))<<58
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h & (evalCacheShards - 1))
}

// NewEvalCache returns an empty cache.
func NewEvalCache() *EvalCache {
	return &EvalCache{}
}

// opCache returns shape's sub-cache, registering it on first use. The fast
// path is one atomic load plus one read of an immutable small map; the
// shape directory grows a handful of times per process lifetime, so the
// copy-on-write insert is negligible.
func (c *EvalCache) opCache(shape opShape) *opEvalCache {
	if ops := c.ops.Load(); ops != nil {
		if oc, ok := (*ops)[shape]; ok {
			return oc
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var old map[opShape]*opEvalCache
	if ops := c.ops.Load(); ops != nil {
		old = *ops
		if oc, ok := old[shape]; ok {
			return oc
		}
	}
	oc := &opEvalCache{}
	next := make(map[opShape]*opEvalCache, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[shape] = oc
	c.ops.Store(&next)
	return oc
}

// Evaluate returns the exact cost of df on mm, computing it at most once
// per (shape, order, tiling) over the cache's lifetime. The boolean reports
// whether this call was served from the cache.
//
// This is the genetic engine's hot loop (the enumeration scans batch
// through lookupBulk instead): a hit costs two atomic pointer loads, two
// immutable map reads and one atomic counter add — no mutex, no defer, zero
// allocations (pinned by TestEvalHotPathZeroAllocs).
func (c *EvalCache) Evaluate(mm op.MatMul, df dataflow.Dataflow) (cost.Access, bool) {
	oc := c.opCache(opShape{mm.M, mm.K, mm.L})
	key := evalKey{
		tm: int32(df.Tiling.TM), tk: int32(df.Tiling.TK), tl: int32(df.Tiling.TL),
		oi: orderIndex(df.Order),
	}
	sh := &oc.shards[key.shard()]
	if snap := sh.snap.Load(); snap != nil {
		if a, ok := (*snap)[key]; ok {
			sh.hits.Add(1)
			return a, true
		}
	}
	return sh.evaluateSlow(mm, df, key)
}

// evaluateSlow is the miss/publish path, taken when the immutable snapshot
// does not hold the key. It re-checks both tiers under the shard mutex (a
// concurrent miss may have inserted or republished since the lock-free
// read), evaluates on a true miss, and republishes the snapshot when the
// dirty overlay has grown past half the published size or absorbed enough
// reads.
func (sh *evalCacheShard) evaluateSlow(mm op.MatMul, df dataflow.Dataflow, key evalKey) (cost.Access, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	snapLen := 0
	if snap := sh.snap.Load(); snap != nil {
		snapLen = len(*snap)
		if a, ok := (*snap)[key]; ok {
			sh.hits.Add(1)
			return a, true
		}
	}
	if a, ok := sh.dirty[key]; ok {
		sh.hits.Add(1)
		sh.dirtyHits++
		if sh.dirtyHits >= publishPressure {
			sh.publishLocked()
		}
		return a, true
	}
	a := cost.MustEvaluate(mm, df)
	if sh.dirty == nil {
		sh.dirty = make(map[evalKey]cost.Access)
	}
	sh.dirty[key] = a
	sh.misses++
	// Growth-factor publication keeps the merge work amortized O(1) per
	// insert while guaranteeing the overlay never exceeds ~half the
	// snapshot beyond the floor, so at most a bounded residue is ever
	// served under the lock.
	if len(sh.dirty) >= publishFloor+snapLen/2 {
		sh.publishLocked()
	}
	return a, false
}

// bulkEntry is one evaluated candidate handed to insertBulk.
type bulkEntry struct {
	key    evalKey
	access cost.Access
}

// blockProbe is per-scanner scratch for lookupBulk: the shard-bucketed index
// lists of one block's unresolved probes. Each block scanner (and each table
// build) owns one, so the bucket slices are reused flush after flush and the
// shared cache carries no per-caller state.
type blockProbe struct {
	buckets [evalCacheShards][]int32
}

// lookupBulk is the read-only probe of the block-batched miss path: it
// probes keys[i] for every i, writing hits into out[i] and returning the
// indices that missed (appended to miss, which callers pass re-sliced to
// [:0]). Pass one probes the lock-free snapshots, batching hit-counter
// updates to one atomic add per touched shard; unresolved indices are
// bucketed by shard and resolved in pass two under one lock acquisition per
// touched shard (re-checking the snapshot for races, then the dirty overlay
// with the same read-pressure publish policy as Evaluate). Misses count
// nothing — the caller evaluates them and reports back through insertBulk,
// so a block's cache round-trip pays one lock and at most one republish per
// touched shard regardless of block size. Miss indices are returned in
// shard-grouped order, not input order; callers treat them as a set.
func (p *blockProbe) lookupBulk(oc *opEvalCache, keys []evalKey, out []cost.Access, miss []int32) []int32 {
	var snapHits [evalCacheShards]int64
	for i := range keys {
		s := keys[i].shard()
		sh := &oc.shards[s]
		if snap := sh.snap.Load(); snap != nil {
			if a, ok := (*snap)[keys[i]]; ok {
				out[i] = a
				snapHits[s]++
				continue
			}
		}
		p.buckets[s] = append(p.buckets[s], int32(i))
	}
	for s := range snapHits {
		if snapHits[s] > 0 {
			oc.shards[s].hits.Add(snapHits[s])
		}
	}
	for s := range p.buckets {
		idxs := p.buckets[s]
		if len(idxs) == 0 {
			continue
		}
		p.buckets[s] = idxs[:0]
		sh := &oc.shards[s]
		var hits int64
		sh.mu.Lock()
		snap := sh.snap.Load()
		for _, i := range idxs {
			k := keys[i]
			if snap != nil {
				if a, ok := (*snap)[k]; ok {
					out[i] = a
					hits++
					continue
				}
			}
			if a, ok := sh.dirty[k]; ok {
				out[i] = a
				hits++
				sh.dirtyHits++
				continue
			}
			miss = append(miss, i)
		}
		if sh.dirtyHits >= publishPressure {
			sh.publishLocked()
		}
		if hits > 0 {
			sh.hits.Add(hits)
		}
		sh.mu.Unlock()
	}
	return miss
}

// insertBulk merges externally evaluated entries into the sub-cache with one
// lock acquisition and at most one snapshot republish per touched shard.
// Entries land in the dirty overlay at plain map-insert cost and are
// promoted to the lock-free snapshot under the same growth policy as the
// single-miss path — publishing unconditionally here would copy the growing
// snapshot once per flushed block, turning a cold block-path scan into an
// O(n²/shards) merge storm. Keys that raced in through the normal miss path
// since the caller's lookup are skipped; every entry actually inserted
// counts as one miss, keeping Entries == Misses exact.
func (oc *opEvalCache) insertBulk(entries []bulkEntry) {
	if len(entries) == 0 {
		return
	}
	var buckets [evalCacheShards][]bulkEntry
	for _, e := range entries {
		s := e.key.shard()
		buckets[s] = append(buckets[s], e)
	}
	for s := range buckets {
		if len(buckets[s]) == 0 {
			continue
		}
		sh := &oc.shards[s]
		sh.mu.Lock()
		var old map[evalKey]cost.Access
		snapLen := 0
		if snap := sh.snap.Load(); snap != nil {
			old = *snap
			snapLen = len(old)
		}
		if sh.dirty == nil {
			sh.dirty = make(map[evalKey]cost.Access, len(buckets[s]))
		}
		for _, e := range buckets[s] {
			if _, ok := old[e.key]; ok {
				continue
			}
			if _, ok := sh.dirty[e.key]; ok {
				continue
			}
			sh.dirty[e.key] = e.access
			sh.misses++
		}
		if len(sh.dirty) >= publishFloor+snapLen/2 {
			sh.publishLocked()
		}
		sh.mu.Unlock()
	}
}

// publishLocked merges the dirty overlay into a fresh immutable snapshot and
// swaps it in. Callers hold sh.mu.
func (sh *evalCacheShard) publishLocked() {
	var old map[evalKey]cost.Access
	if snap := sh.snap.Load(); snap != nil {
		old = *snap
	}
	next := make(map[evalKey]cost.Access, len(old)+len(sh.dirty))
	for k, v := range old {
		next[k] = v
	}
	for k, v := range sh.dirty {
		next[k] = v
	}
	sh.snap.Store(&next)
	sh.dirty = nil
	sh.dirtyHits = 0
}

// CacheStats summarizes an EvalCache's traffic.
type CacheStats struct {
	// Hits counts evaluations served from the cache; Misses counts actual
	// cost-model invocations. Entries is the resident candidate count
	// (equal to Misses: each miss inserts exactly one entry, into exactly
	// one tier).
	Hits, Misses, Entries int64
}

// Stats returns the cache's cumulative hit/miss counters across every
// operator shape.
func (c *EvalCache) Stats() CacheStats {
	var s CacheStats
	ops := c.ops.Load()
	if ops == nil {
		return s
	}
	for _, oc := range *ops {
		for i := range oc.shards {
			sh := &oc.shards[i]
			sh.mu.Lock()
			s.Hits += sh.hits.Load()
			s.Misses += sh.misses
			if snap := sh.snap.Load(); snap != nil {
				s.Entries += int64(len(*snap))
			}
			s.Entries += int64(len(sh.dirty))
			sh.mu.Unlock()
		}
	}
	return s
}
