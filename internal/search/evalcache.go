package search

import (
	"sync"
	"sync/atomic"

	"fusecu/internal/cost"
	"fusecu/internal/dataflow"
	"fusecu/internal/op"
)

// EvalCache memoizes cost-model evaluations across searches, keyed by the
// complete cost input (operator shape, loop order, tile triple). Its point
// is buffer-size sweeps: cost.Evaluate does not depend on the buffer size —
// only feasibility filtering does — so a sweep like experiments.Fig9 can
// evaluate each (order, tiling) candidate once and serve every other sweep
// point from the cache, filtering by footprint per point.
//
// Hits and misses are counted separately: engines report served-from-cache
// visits in Result.CacheHits, never in Result.Evaluations, so the paper's
// search-cost metric (cost-model invocations) stays honest.
//
// The cache is sharded by key hash and safe for concurrent use by the
// parallel engines. Operator names are not part of the key — cost depends
// only on the dimensions — so a cache may be shared across identically
// shaped operators.
//
// Each shard is a read-mostly two-tier structure: an immutable snapshot map
// behind an atomic.Pointer serves hits without any lock (one pointer load,
// one map read, one striped atomic counter bump), while misses go through
// the shard mutex into a small dirty overlay that is merged into a fresh
// snapshot once it grows past a fraction of the published map (or once
// enough reads land on it, signalling the write burst has ended). Steady
// state — the 100:1 hit-dominated traffic of a warm sweep or a hot serving
// shape — therefore never contends on a mutex.
type EvalCache struct {
	shards [evalCacheShards]evalCacheShard
}

// evalCacheShards trades publish granularity against footprint; 64 keeps the
// worker pools (≤ GOMAXPROCS) mostly collision-free on the miss path and
// bounds each snapshot republish to 1/64th of the resident candidates.
const evalCacheShards = 64

// evalCacheShard is one two-tier slice of the cache. The first cache line
// holds the read path (snapshot pointer + hit counter); the mutex-guarded
// write tier follows, padded so neighbouring shards' hit counters do not
// false-share.
type evalCacheShard struct {
	// snap is the immutable read tier. The map it points to is never
	// mutated after publication; misses build a replacement and swap the
	// pointer under mu.
	snap atomic.Pointer[map[evalKey]cost.Access]
	// hits counts served-from-cache evaluations. Written with a plain
	// atomic add on the lock-free path.
	hits atomic.Int64

	mu        sync.Mutex
	dirty     map[evalKey]cost.Access // entries not yet in snap; disjoint from it
	dirtyHits int64                   // hits served from dirty since the last publish
	misses    int64

	_ [24]byte // pad shards apart (struct ≈ 104B → 128B, two lines)
}

// publishPressure is the number of mutex-path hits on the dirty tier that
// force a snapshot republish even below the size threshold: reads landing on
// dirty mean the write burst is over and the residue should move to the
// lock-free tier.
const publishPressure = 64

// publishFloor is the minimum dirty size for a size-triggered republish.
// Below it a miss burst accumulates in the overlay at plain map-insert cost
// (exactly the old single-tier cache's price) and is promoted wholesale by
// read pressure once the burst ends; publishing on every small growth step
// instead measurably slowed miss-heavy sweeps (each republish copies the
// snapshot).
const publishFloor = 256

// evalKey is the complete input of one cost evaluation.
type evalKey struct {
	m, k, l    int
	order      dataflow.Order
	tm, tk, tl int
}

// shard hashes the key to a shard index. Each field is folded together with
// its position (so transposed keys — (m=a,k=b) vs (m=b,k=a) with swapped
// tiles, common for square operators — hash independently), and a
// splitmix64-style finalizer avalanches high bits into the low bits the
// shard index is taken from. The previous word-wise FNV-1a had no field
// separation and, because multiplication mod 2^64 never carries information
// downward, its low 6 bits depended only on the low 6 bits of every field —
// power-of-two tile grids collapsed onto a handful of shards.
func (k evalKey) shard() int {
	h := uint64(14695981039346656037)
	for i, v := range [...]int{k.m, k.k, k.l, int(k.order[0]), int(k.order[1]), int(k.order[2]), k.tm, k.tk, k.tl} {
		h ^= uint64(i+1)<<56 ^ uint64(v)
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h & (evalCacheShards - 1))
}

// NewEvalCache returns an empty cache.
func NewEvalCache() *EvalCache {
	return &EvalCache{}
}

// Evaluate returns the exact cost of df on mm, computing it at most once
// per (shape, order, tiling) over the cache's lifetime. The boolean reports
// whether this call was served from the cache.
//
// This is the search engines' hot loop: a hit costs one atomic pointer
// load, one immutable map read and one atomic counter add — no mutex, no
// defer, zero allocations (pinned by TestEvalHotPathZeroAllocs).
func (c *EvalCache) Evaluate(mm op.MatMul, df dataflow.Dataflow) (cost.Access, bool) {
	key := evalKey{
		m: mm.M, k: mm.K, l: mm.L,
		order: df.Order,
		tm:    df.Tiling.TM, tk: df.Tiling.TK, tl: df.Tiling.TL,
	}
	sh := &c.shards[key.shard()]
	if snap := sh.snap.Load(); snap != nil {
		if a, ok := (*snap)[key]; ok {
			sh.hits.Add(1)
			return a, true
		}
	}
	return sh.evaluateSlow(mm, df, key)
}

// evaluateSlow is the miss/publish path, taken when the immutable snapshot
// does not hold the key. It re-checks both tiers under the shard mutex (a
// concurrent miss may have inserted or republished since the lock-free
// read), evaluates on a true miss, and republishes the snapshot when the
// dirty overlay has grown past half the published size or absorbed enough
// reads.
func (sh *evalCacheShard) evaluateSlow(mm op.MatMul, df dataflow.Dataflow, key evalKey) (cost.Access, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	snapLen := 0
	if snap := sh.snap.Load(); snap != nil {
		snapLen = len(*snap)
		if a, ok := (*snap)[key]; ok {
			sh.hits.Add(1)
			return a, true
		}
	}
	if a, ok := sh.dirty[key]; ok {
		sh.hits.Add(1)
		sh.dirtyHits++
		if sh.dirtyHits >= publishPressure {
			sh.publishLocked()
		}
		return a, true
	}
	a := cost.MustEvaluate(mm, df)
	if sh.dirty == nil {
		sh.dirty = make(map[evalKey]cost.Access)
	}
	sh.dirty[key] = a
	sh.misses++
	// Growth-factor publication keeps the merge work amortized O(1) per
	// insert while guaranteeing the overlay never exceeds ~half the
	// snapshot beyond the floor, so at most a bounded residue is ever
	// served under the lock.
	if len(sh.dirty) >= publishFloor+snapLen/2 {
		sh.publishLocked()
	}
	return a, false
}

// lookup is the read-only probe of the miss path: it checks both tiers but
// never evaluates. A hit counts exactly like an Evaluate hit; a miss counts
// nothing — the caller owns the evaluation and reports it back through
// insertBulk. Table builds use this pair so 10⁴–10⁶ consecutive misses pay
// one lock and one snapshot republish per shard instead of one each.
func (c *EvalCache) lookup(key evalKey) (cost.Access, bool) {
	sh := &c.shards[key.shard()]
	if snap := sh.snap.Load(); snap != nil {
		if a, ok := (*snap)[key]; ok {
			sh.hits.Add(1)
			return a, true
		}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if snap := sh.snap.Load(); snap != nil {
		if a, ok := (*snap)[key]; ok {
			sh.hits.Add(1)
			return a, true
		}
	}
	if a, ok := sh.dirty[key]; ok {
		sh.hits.Add(1)
		sh.dirtyHits++
		if sh.dirtyHits >= publishPressure {
			sh.publishLocked()
		}
		return a, true
	}
	return cost.Access{}, false
}

// bulkEntry is one evaluated candidate handed to insertBulk.
type bulkEntry struct {
	key    evalKey
	access cost.Access
}

// insertBulk merges externally evaluated entries into the cache with one
// lock acquisition and at most one snapshot republish per touched shard.
// Keys that raced in through the normal miss path since the caller's lookup
// are skipped; every entry actually inserted counts as one miss, keeping
// Entries == Misses exact.
func (c *EvalCache) insertBulk(entries []bulkEntry) {
	if len(entries) == 0 {
		return
	}
	var buckets [evalCacheShards][]bulkEntry
	for _, e := range entries {
		s := e.key.shard()
		buckets[s] = append(buckets[s], e)
	}
	for s := range buckets {
		if len(buckets[s]) == 0 {
			continue
		}
		sh := &c.shards[s]
		sh.mu.Lock()
		var old map[evalKey]cost.Access
		if snap := sh.snap.Load(); snap != nil {
			old = *snap
		}
		next := make(map[evalKey]cost.Access, len(old)+len(sh.dirty)+len(buckets[s]))
		for k, v := range old {
			next[k] = v
		}
		for k, v := range sh.dirty {
			next[k] = v
		}
		for _, e := range buckets[s] {
			if _, ok := next[e.key]; ok {
				continue
			}
			next[e.key] = e.access
			sh.misses++
		}
		sh.snap.Store(&next)
		sh.dirty = nil
		sh.dirtyHits = 0
		sh.mu.Unlock()
	}
}

// publishLocked merges the dirty overlay into a fresh immutable snapshot and
// swaps it in. Callers hold sh.mu.
func (sh *evalCacheShard) publishLocked() {
	var old map[evalKey]cost.Access
	if snap := sh.snap.Load(); snap != nil {
		old = *snap
	}
	next := make(map[evalKey]cost.Access, len(old)+len(sh.dirty))
	for k, v := range old {
		next[k] = v
	}
	for k, v := range sh.dirty {
		next[k] = v
	}
	sh.snap.Store(&next)
	sh.dirty = nil
	sh.dirtyHits = 0
}

// CacheStats summarizes an EvalCache's traffic.
type CacheStats struct {
	// Hits counts evaluations served from the cache; Misses counts actual
	// cost-model invocations. Entries is the resident candidate count
	// (equal to Misses: each miss inserts exactly one entry, into exactly
	// one tier).
	Hits, Misses, Entries int64
}

// Stats returns the cache's cumulative hit/miss counters.
func (c *EvalCache) Stats() CacheStats {
	var s CacheStats
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Hits += sh.hits.Load()
		s.Misses += sh.misses
		if snap := sh.snap.Load(); snap != nil {
			s.Entries += int64(len(*snap))
		}
		s.Entries += int64(len(sh.dirty))
		sh.mu.Unlock()
	}
	return s
}
