package search

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"fusecu/internal/dataflow"
	"fusecu/internal/errs"
	"fusecu/internal/op"
)

// TestCandTableMatchesReferenceRandomized is the tentpole property: over
// randomized shapes (degenerate dims included) and buffers from infeasible
// through unconstrained, a full-grid table query is bit-identical to
// ReferenceExhaustive — same dataflow (canonical tie-break), same access
// breakdown — and its visit accounting preserves the engine invariant
// Evaluations + CacheHits == reference Evaluations.
func TestCandTableMatchesReferenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cache := NewEvalCache()
	for trial := 0; trial < 25; trial++ {
		mm := op.MatMul{
			Name: "rand",
			M:    rng.Intn(9) + 1,
			K:    rng.Intn(9) + 1,
			L:    rng.Intn(9) + 1,
		}
		tab, err := NewCandTable(mm, GridFull, cache)
		if err != nil {
			t.Fatalf("%v: build: %v", mm, err)
		}
		maxFP := mm.SizeA() + mm.SizeB() + mm.SizeC()
		for _, bs := range []int64{1, 2, 3, 5, 7, maxFP / 2, maxFP, maxFP * 2} {
			ref, refErr := ReferenceExhaustive(mm, bs)
			got, err := tab.Best(bs)
			if (err == nil) != (refErr == nil) {
				t.Fatalf("%v BS=%d: err=%v, reference err=%v", mm, bs, err, refErr)
			}
			if refErr != nil {
				continue
			}
			if got.Evaluations != 0 {
				t.Errorf("%v BS=%d: table reported %d Evaluations, want 0 (tables never invoke the cost model per query)", mm, bs, got.Evaluations)
			}
			checkEquivalent(t, "table", ref, got)
		}
	}
}

// TestCandTableCoarseMatchesReferenceRandomized mirrors the full-grid
// property over the TileGrid lattice against ReferenceCoarse, at shapes big
// enough that the coarse grid is a strict subset of the integer lattice.
func TestCandTableCoarseMatchesReferenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	cache := NewEvalCache()
	for trial := 0; trial < 20; trial++ {
		mm := op.MatMul{
			Name: "rand",
			M:    rng.Intn(60) + 1,
			K:    rng.Intn(60) + 1,
			L:    rng.Intn(60) + 1,
		}
		tab, err := NewCandTable(mm, GridCoarse, cache)
		if err != nil {
			t.Fatalf("%v: build: %v", mm, err)
		}
		maxFP := mm.SizeA() + mm.SizeB() + mm.SizeC()
		for _, bs := range []int64{2, 5, 16, maxFP / 3, maxFP * 2} {
			ref, refErr := ReferenceCoarse(mm, bs)
			got, err := tab.Best(bs)
			if (err == nil) != (refErr == nil) {
				t.Fatalf("%v BS=%d: err=%v, reference err=%v", mm, bs, err, refErr)
			}
			if refErr != nil {
				continue
			}
			checkEquivalent(t, "table-coarse", ref, got)
		}
	}
}

// TestCandTableDegenerateDims sweeps prime and unit dimensions — where the
// tiling lattice collapses to a handful of points — across every distinct
// footprint threshold the table holds, so each plateau boundary is hit on
// both sides.
func TestCandTableDegenerateDims(t *testing.T) {
	shapes := []op.MatMul{
		{Name: "unit", M: 1, K: 1, L: 1},
		{Name: "row", M: 1, K: 13, L: 1},
		{Name: "primes", M: 7, K: 11, L: 13},
		{Name: "mixed", M: 1, K: 17, L: 4},
	}
	for _, mm := range shapes {
		tab, err := NewCandTable(mm, GridFull, nil)
		if err != nil {
			t.Fatalf("%v: build: %v", mm, err)
		}
		buffers := []int64{2}
		for _, st := range tab.steps {
			buffers = append(buffers, st.foot-1, st.foot, st.foot+1)
		}
		for _, bs := range buffers {
			ref, refErr := ReferenceExhaustive(mm, bs)
			got, err := tab.Best(bs)
			if (err == nil) != (refErr == nil) {
				t.Fatalf("%v BS=%d: err=%v, reference err=%v", mm, bs, err, refErr)
			}
			if refErr != nil {
				continue
			}
			checkEquivalent(t, "table-degenerate", ref, got)
		}
	}
}

// TestCandTableInfeasibleErrors pins the error classes: sub-minimal buffers
// report ErrBufferTooSmall (mirroring the scan engines), and feasibility
// starts exactly at footprint 3 (the 1×1×1 tiling).
func TestCandTableInfeasibleErrors(t *testing.T) {
	tab, err := NewCandTable(op.MatMul{Name: "t", M: 4, K: 4, L: 4}, GridFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Best(2); !errors.Is(err, errs.ErrBufferTooSmall) {
		t.Fatalf("Best(2) err = %v, want ErrBufferTooSmall", err)
	}
	if _, err := tab.BestStationary(dataflow.OS, 1); !errors.Is(err, errs.ErrBufferTooSmall) {
		t.Fatalf("BestStationary(OS, 1) err = %v, want ErrBufferTooSmall", err)
	}
	if _, err := tab.Best(3); err != nil {
		t.Fatalf("Best(3) err = %v, want feasible 1×1 tiles", err)
	}
}

// TestCandTableStationaryClasses checks the per-rotation-class step tables
// against the global one: the best class answer must equal the global
// optimum (with the same canonical tie-break), every class answer must
// actually keep its tensor stationary, and the class visit counts must
// partition the global visit count.
func TestCandTableStationaryClasses(t *testing.T) {
	mm := op.MatMul{Name: "cls", M: 8, K: 6, L: 10}
	tab, err := NewCandTable(mm, GridFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []dataflow.StationaryKind{dataflow.OS, dataflow.WS, dataflow.IS}
	maxFP := mm.SizeA() + mm.SizeB() + mm.SizeC()
	for _, bs := range []int64{3, 7, 20, maxFP / 2, maxFP * 2} {
		global, err := tab.Best(bs)
		if err != nil {
			t.Fatalf("BS=%d: %v", bs, err)
		}
		var classVisits int64
		best := Result{}
		found := false
		for _, k := range kinds {
			r, err := tab.BestStationary(k, bs)
			if err != nil {
				t.Fatalf("BS=%d %v: %v", bs, k, err)
			}
			if got := r.Dataflow.Order.Stationary().Kind(); got != k {
				t.Errorf("BS=%d: class %v returned a %v-stationary dataflow %v", bs, k, got, r.Dataflow)
			}
			classVisits += r.CacheHits
			if !found || r.Access.Total < best.Access.Total {
				best, found = r, true
			}
		}
		if classVisits != global.CacheHits {
			t.Errorf("BS=%d: class visits %d do not partition global visits %d", bs, classVisits, global.CacheHits)
		}
		if best.Access.Total != global.Access.Total {
			t.Errorf("BS=%d: best class total %d != global total %d", bs, best.Access.Total, global.Access.Total)
		}
		if k := global.Dataflow.Order.Stationary().Kind(); k >= 0 {
			r, err := tab.BestStationary(k, bs)
			if err != nil {
				t.Fatalf("BS=%d: %v", bs, err)
			}
			if r.Dataflow != global.Dataflow || r.Access != global.Access {
				t.Errorf("BS=%d: global optimum's class query %v != global %v", bs, r.Dataflow, global.Dataflow)
			}
		}
	}
	if _, err := tab.BestStationary(dataflow.StationaryKind(9), 64); !errors.Is(err, errs.ErrInvalidDataflow) {
		t.Fatalf("invalid kind err = %v, want ErrInvalidDataflow", err)
	}
}

// TestCandTableBuildSharesCache asserts a rebuild of the same shape — even
// under a different operator name — is served entirely from the shared
// cache: zero cost-model invocations.
func TestCandTableBuildSharesCache(t *testing.T) {
	cache := NewEvalCache()
	a, err := NewCandTable(op.MatMul{Name: "first", M: 10, K: 8, L: 6}, GridFull, cache)
	if err != nil {
		t.Fatal(err)
	}
	if a.BuildEvals() != a.Candidates() || a.BuildCacheHits() != 0 {
		t.Fatalf("cold build: evals %d hits %d, want %d evals 0 hits", a.BuildEvals(), a.BuildCacheHits(), a.Candidates())
	}
	b, err := NewCandTable(op.MatMul{Name: "second", M: 10, K: 8, L: 6}, GridFull, cache)
	if err != nil {
		t.Fatal(err)
	}
	if b.BuildEvals() != 0 || b.BuildCacheHits() != b.Candidates() {
		t.Fatalf("warm build: evals %d hits %d, want 0 evals %d hits", b.BuildEvals(), b.BuildCacheHits(), b.Candidates())
	}
	r1, err1 := a.Best(96)
	r2, err2 := b.Best(96)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Dataflow != r2.Dataflow || r1.Access != r2.Access {
		t.Fatalf("tables for identically shaped ops disagree: %v vs %v", r1, r2)
	}
}

// TestCandTableRefusesOversizedGrid pins the admission cap: shapes whose
// full lattice exceeds MaxTableCandidates are refused at construction so
// callers fall back to scans instead of allocating gigabytes.
func TestCandTableRefusesOversizedGrid(t *testing.T) {
	mm := op.MatMul{Name: "huge", M: 224, K: 224, L: 224}
	if n := TableCandidates(mm, GridFull); n <= MaxTableCandidates {
		t.Fatalf("test shape too small: %d candidates", n)
	}
	if _, err := NewCandTable(mm, GridFull, nil); err == nil {
		t.Fatal("oversized build succeeded, want refusal")
	}
	// The coarse lattice of the same shape is tiny and must still build.
	if _, err := NewCandTable(mm, GridCoarse, nil); err != nil {
		t.Fatalf("coarse build of large shape: %v", err)
	}
}

// TestCandTableInvalidOp checks constructor validation.
func TestCandTableInvalidOp(t *testing.T) {
	if _, err := NewCandTable(op.MatMul{Name: "bad", M: 0, K: 4, L: 4}, GridFull, nil); err == nil {
		t.Fatal("invalid operator accepted")
	}
	if TableCandidates(op.MatMul{M: -1, K: 2, L: 2}, GridFull) != 0 {
		t.Fatal("TableCandidates of invalid op should be 0")
	}
}

// TestCandTableBestZeroAllocs pins the query path's allocation budget at
// zero — the property that makes tables safe on the serving hot path.
func TestCandTableBestZeroAllocs(t *testing.T) {
	tab, err := NewCandTable(op.MatMul{Name: "alloc", M: 12, K: 10, L: 8}, GridFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := tab.Best(512); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Best allocates %v objects per query, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := tab.BestStationary(dataflow.WS, 512); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("BestStationary allocates %v objects per query, want 0", n)
	}
}

// TestOptimizeTableMatchesOptimize is the engine-level identity: the
// table-backed Optimize — table lookup for the lattice stage, unchanged
// genetic polish — must reproduce OptimizeCached bit for bit, including the
// combined Evaluations+CacheHits accounting and both selection branches
// (lattice stage kept vs. genetic polish winning).
func TestOptimizeTableMatchesOptimize(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		mm := op.MatMul{
			Name: "rand",
			M:    rng.Intn(40) + 1,
			K:    rng.Intn(40) + 1,
			L:    rng.Intn(40) + 1,
		}
		opts := GeneticOptions{Seed: int64(trial)}
		tab, err := NewCandTable(mm, GridCoarse, nil)
		if err != nil {
			t.Fatalf("%v: build: %v", mm, err)
		}
		maxFP := mm.SizeA() + mm.SizeB() + mm.SizeC()
		for _, bs := range []int64{2, 16, maxFP / 2, maxFP * 2} {
			want, wantErr := OptimizeCached(mm, bs, opts, NewEvalCache())
			got, err := OptimizeTableCtx(context.Background(), mm, bs, opts, tab, NewEvalCache())
			if (err == nil) != (wantErr == nil) {
				t.Fatalf("%v BS=%d: err=%v, optimize err=%v", mm, bs, err, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if got.Dataflow != want.Dataflow || got.Access != want.Access {
				t.Errorf("%v BS=%d: table-backed %v %+v, optimize %v %+v", mm, bs, got.Dataflow, got.Access, want.Dataflow, want.Access)
			}
			if got.Evaluations+got.CacheHits != want.Evaluations+want.CacheHits {
				t.Errorf("%v BS=%d: visits %d+%d, optimize %d+%d", mm, bs, got.Evaluations, got.CacheHits, want.Evaluations, want.CacheHits)
			}
		}
	}
}

// TestOptimizeTableLargeShapeSkipsLattice checks the above-limit branch: a
// shape whose coarse lattice exceeds CoarseLatticeLimit must run the
// genetic engine only — table optional — exactly like Optimize.
func TestOptimizeTableLargeShapeSkipsLattice(t *testing.T) {
	mm := op.MatMul{Name: "big", M: 1260, K: 1260, L: 1260}
	if CoarseLattice(mm) <= CoarseLatticeLimit {
		t.Skipf("shape no longer exceeds the lattice limit (%d)", CoarseLattice(mm))
	}
	opts := GeneticOptions{Seed: 5, Generations: 6, Population: 16}
	want, wantErr := OptimizeCached(mm, 1<<16, opts, nil)
	got, err := OptimizeTable(mm, 1<<16, opts, nil, nil)
	if (err == nil) != (wantErr == nil) {
		t.Fatalf("err=%v, optimize err=%v", err, wantErr)
	}
	if wantErr == nil && (got.Dataflow != want.Dataflow || got.Access != want.Access || got.Method != want.Method) {
		t.Fatalf("table-backed %+v, optimize %+v", got, want)
	}
}

// TestOptimizeTableRejectsMismatchedTable pins the guard rails: a missing
// or wrong-shape/wrong-grid table is an internal error, not a silent wrong
// answer.
func TestOptimizeTableRejectsMismatchedTable(t *testing.T) {
	mm := op.MatMul{Name: "t", M: 8, K: 8, L: 8}
	if _, err := OptimizeTable(mm, 64, GeneticOptions{Seed: 1}, nil, nil); !errors.Is(err, errs.ErrInternal) {
		t.Fatalf("nil table err = %v, want ErrInternal", err)
	}
	wrong, err := NewCandTable(op.MatMul{Name: "w", M: 9, K: 8, L: 8}, GridCoarse, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimizeTable(mm, 64, GeneticOptions{Seed: 1}, wrong, nil); !errors.Is(err, errs.ErrInternal) {
		t.Fatalf("wrong-shape table err = %v, want ErrInternal", err)
	}
	full, err := NewCandTable(mm, GridFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimizeTable(mm, 64, GeneticOptions{Seed: 1}, full, nil); !errors.Is(err, errs.ErrInternal) {
		t.Fatalf("wrong-grid table err = %v, want ErrInternal", err)
	}
}
