package search

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"fusecu/internal/cost"
	"fusecu/internal/dataflow"
	"fusecu/internal/op"
)

// This file makes CandTable a persistent artifact: a deterministic binary
// encoding (little-endian, fixed field order, no maps) so that encoding a
// freshly built table is bit-identical across processes and architectures,
// plus a strict decoder that would rather rebuild than serve a doubtful
// byte. The layout is
//
//	header  : magic "FCT1", u16 format version, cost-model version string,
//	          operator (name, M, K, L), grid, candidate/build counters
//	sections: per-rotation-class footprint index ×3, global step function,
//	          per-rotation-class step functions ×3
//
// with a CRC32 (IEEE) trailer after the header and after every section, so
// a flipped byte is localized to a section instead of merely failing a
// whole-file hash. Beyond checksums, the decoder re-derives everything it
// can: the candidate count must match TableCandidates for the declared
// shape and grid, footprint indexes must be sorted, step functions must be
// strictly increasing, and — the property that matters — every step's
// stored Access is recomputed through the live cost model and compared.
// Steps are few, so this costs microseconds and guarantees a loaded table
// can never answer Best with a cost the current model would not produce,
// even against a checksum-colliding corruption or a mislabeled file.

// TableFormatVersion is the on-disk format generation of serialized
// candidate tables. Bump it on any layout change; the decoder refuses other
// generations and the store treats that as not-found, forcing a rebuild.
const TableFormatVersion = 1

// tableMagic opens every serialized candidate table.
var tableMagic = [4]byte{'F', 'C', 'T', '1'}

// ErrTableFormat classifies every way a serialized table can fail decoding
// short of a cost-model mismatch: wrong magic, unknown format version,
// truncation, checksum failure, or internally inconsistent contents.
var ErrTableFormat = errors.New("search: invalid candidate-table artifact")

// ErrTableCostModel reports an artifact built under a different cost-model
// version: structurally sound, but its baked-in costs carry no bit-identity
// guarantee against the running model.
var ErrTableCostModel = errors.New("search: candidate-table cost-model version mismatch")

// EncodeTable serializes t. The encoding is deterministic: two tables with
// equal contents — in particular, a decoded table and the fresh build it
// came from — produce identical bytes.
func EncodeTable(t *CandTable) []byte {
	var e tableEncoder
	e.section(func() {
		e.raw(tableMagic[:])
		e.u16(TableFormatVersion)
		e.str(cost.ModelVersion)
		e.str(t.mm.Name)
		e.i64(int64(t.mm.M))
		e.i64(int64(t.mm.K))
		e.i64(int64(t.mm.L))
		e.u8(uint8(t.grid))
		e.i64(t.candidates)
		e.i64(t.buildEvals)
		e.i64(t.buildHits)
	})
	for ci := range t.classFoot {
		foot := t.classFoot[ci]
		e.section(func() {
			e.i64(int64(len(foot)))
			for _, f := range foot {
				e.i64(f)
			}
		})
	}
	e.stepSection(t.steps)
	for ci := range t.classSteps {
		e.stepSection(t.classSteps[ci])
	}
	return e.buf
}

type tableEncoder struct {
	buf []byte
}

func (e *tableEncoder) raw(b []byte) { e.buf = append(e.buf, b...) }
func (e *tableEncoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *tableEncoder) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *tableEncoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *tableEncoder) i64(v int64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v)) }

func (e *tableEncoder) str(s string) {
	e.u16(uint16(len(s)))
	e.raw([]byte(s))
}

// section runs fill, then appends the CRC32 of the bytes fill produced.
func (e *tableEncoder) section(fill func()) {
	start := len(e.buf)
	fill()
	e.u32(crc32.ChecksumIEEE(e.buf[start:]))
}

func (e *tableEncoder) stepSection(steps []tableStep) {
	e.section(func() {
		e.i64(int64(len(steps)))
		for _, st := range steps {
			e.i64(st.foot)
			e.u8(orderIndexOf(st.df.Order))
			e.i64(int64(st.df.Tiling.TM))
			e.i64(int64(st.df.Tiling.TK))
			e.i64(int64(st.df.Tiling.TL))
			for _, v := range st.access.PerTensor {
				e.i64(v)
			}
			e.i64(st.access.OutputReads)
			e.i64(st.access.OutputWrites)
			e.i64(st.access.Total)
			e.i64(st.access.Footprint)
			e.u8(uint8(st.access.NRA))
		}
	})
}

// orderIndexOf maps an order back to its AllOrders index.
func orderIndexOf(o dataflow.Order) uint8 {
	for i, c := range dataflow.AllOrders() {
		if c == o {
			return uint8(i)
		}
	}
	panic(fmt.Sprintf("search: order %v not in AllOrders", o))
}

// DecodeTable parses and fully validates a serialized candidate table. Any
// structural problem wraps ErrTableFormat; an artifact from another
// cost-model generation wraps ErrTableCostModel. A table returned without
// error is indistinguishable from a fresh NewCandTable build over the same
// shape and grid.
func DecodeTable(data []byte) (*CandTable, error) {
	d := tableDecoder{buf: data}
	t, err := d.decode()
	if err != nil {
		if errors.Is(err, ErrTableCostModel) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %w", ErrTableFormat, err)
	}
	return t, nil
}

type tableDecoder struct {
	buf []byte
	off int
	// secStart marks where the current checksummed section began.
	secStart int
}

func (d *tableDecoder) take(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.buf) {
		return nil, fmt.Errorf("truncated at byte %d (need %d more)", d.off, n)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *tableDecoder) u8() (uint8, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *tableDecoder) u16() (uint16, error) {
	b, err := d.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (d *tableDecoder) i64() (int64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}

func (d *tableDecoder) str() (string, error) {
	n, err := d.u16()
	if err != nil {
		return "", err
	}
	b, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// beginSection marks the start of a checksummed region; endSection consumes
// and verifies its trailing CRC32.
func (d *tableDecoder) beginSection() { d.secStart = d.off }

func (d *tableDecoder) endSection(name string) error {
	payload := d.buf[d.secStart:d.off]
	b, err := d.take(4)
	if err != nil {
		return fmt.Errorf("%s section: %w", name, err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(b); got != want {
		return fmt.Errorf("%s section checksum mismatch (got %08x, want %08x)", name, got, want)
	}
	return nil
}

func (d *tableDecoder) decode() (*CandTable, error) {
	d.beginSection()
	magic, err := d.take(4)
	if err != nil {
		return nil, err
	}
	if [4]byte(magic) != tableMagic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	format, err := d.u16()
	if err != nil {
		return nil, err
	}
	if format != TableFormatVersion {
		return nil, fmt.Errorf("format version %d (supported: %d)", format, TableFormatVersion)
	}
	cmVer, err := d.str()
	if err != nil {
		return nil, err
	}
	name, err := d.str()
	if err != nil {
		return nil, err
	}
	var dims [3]int64
	for i := range dims {
		if dims[i], err = d.i64(); err != nil {
			return nil, err
		}
	}
	gridByte, err := d.u8()
	if err != nil {
		return nil, err
	}
	candidates, err := d.i64()
	if err != nil {
		return nil, err
	}
	buildEvals, err := d.i64()
	if err != nil {
		return nil, err
	}
	buildHits, err := d.i64()
	if err != nil {
		return nil, err
	}
	if err := d.endSection("header"); err != nil {
		return nil, err
	}

	// The header is authenticated; now hold it to the live code's rules.
	if cmVer != cost.ModelVersion {
		return nil, fmt.Errorf("%w: artifact %q, running %q", ErrTableCostModel, cmVer, cost.ModelVersion)
	}
	const maxDim = 1 << 31
	for _, v := range dims {
		if v <= 0 || v >= maxDim {
			return nil, fmt.Errorf("dimension %d out of range", v)
		}
	}
	mm := op.MatMul{Name: name, M: int(dims[0]), K: int(dims[1]), L: int(dims[2])}
	if err := mm.Validate(); err != nil {
		return nil, err
	}
	grid := Grid(gridByte)
	if grid != GridFull && grid != GridCoarse {
		return nil, fmt.Errorf("unknown grid %d", gridByte)
	}
	if want := TableCandidates(mm, grid); candidates != want {
		return nil, fmt.Errorf("candidate count %d does not match %v over %s grid (want %d)", candidates, mm, grid, want)
	}
	if buildEvals < 0 || buildHits < 0 || buildEvals+buildHits != candidates {
		return nil, fmt.Errorf("build counters %d+%d do not partition %d candidates", buildEvals, buildHits, candidates)
	}

	t := &CandTable{mm: mm, grid: grid, candidates: candidates, buildEvals: buildEvals, buildHits: buildHits}
	var indexed int64
	for ci := range t.classFoot {
		d.beginSection()
		n, err := d.i64()
		if err != nil {
			return nil, err
		}
		if n < 0 || n > candidates {
			return nil, fmt.Errorf("class %d footprint index length %d out of range", ci, n)
		}
		foot := make([]int64, n)
		for i := range foot {
			if foot[i], err = d.i64(); err != nil {
				return nil, err
			}
			if foot[i] < 3 || (i > 0 && foot[i] < foot[i-1]) {
				return nil, fmt.Errorf("class %d footprint index not sorted at %d", ci, i)
			}
		}
		if err := d.endSection("footprint-index"); err != nil {
			return nil, err
		}
		t.classFoot[ci] = foot
		indexed += n
	}
	if indexed != candidates {
		return nil, fmt.Errorf("footprint indexes cover %d of %d candidates", indexed, candidates)
	}

	if t.steps, err = d.stepSection(mm, "global", -1); err != nil {
		return nil, err
	}
	for ci := range t.classSteps {
		if t.classSteps[ci], err = d.stepSection(mm, fmt.Sprintf("class-%d", ci), ci); err != nil {
			return nil, err
		}
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%d trailing bytes", len(d.buf)-d.off)
	}
	return t, nil
}

// stepSection decodes and verifies one step function. class < 0 means the
// global fold; otherwise every step's loop order must keep that rotation
// class stationary. Each step's stored cost is recomputed through the live
// cost model — a decoded table can answer Best only with costs the current
// model reproduces.
func (d *tableDecoder) stepSection(mm op.MatMul, label string, class int) ([]tableStep, error) {
	orders := dataflow.AllOrders()
	d.beginSection()
	n, err := d.i64()
	if err != nil {
		return nil, err
	}
	if n <= 0 || n > int64(len(d.buf)/8) {
		return nil, fmt.Errorf("%s steps: count %d out of range", label, n)
	}
	steps := make([]tableStep, n)
	for i := range steps {
		foot, err := d.i64()
		if err != nil {
			return nil, err
		}
		oi, err := d.u8()
		if err != nil {
			return nil, err
		}
		var tiles [3]int64
		for j := range tiles {
			if tiles[j], err = d.i64(); err != nil {
				return nil, err
			}
		}
		var acc cost.Access
		for j := range acc.PerTensor {
			if acc.PerTensor[j], err = d.i64(); err != nil {
				return nil, err
			}
		}
		if acc.OutputReads, err = d.i64(); err != nil {
			return nil, err
		}
		if acc.OutputWrites, err = d.i64(); err != nil {
			return nil, err
		}
		if acc.Total, err = d.i64(); err != nil {
			return nil, err
		}
		if acc.Footprint, err = d.i64(); err != nil {
			return nil, err
		}
		nra, err := d.u8()
		if err != nil {
			return nil, err
		}
		acc.NRA = dataflow.NRAClass(nra)

		if i > 0 && foot <= steps[i-1].foot {
			return nil, fmt.Errorf("%s steps: footprints not strictly increasing at %d", label, i)
		}
		if int(oi) >= len(orders) {
			return nil, fmt.Errorf("%s steps: order index %d out of range", label, oi)
		}
		order := orders[oi]
		if class >= 0 && int(order.Stationary().Kind()) != class {
			return nil, fmt.Errorf("%s steps: order %v is not %v-stationary", label, order, dataflow.StationaryKind(class))
		}
		tiling, err := dataflow.NewTiling(mm, int(tiles[0]), int(tiles[1]), int(tiles[2]))
		if err != nil {
			return nil, fmt.Errorf("%s steps: %w", label, err)
		}
		df, err := dataflow.New(mm, order, tiling)
		if err != nil {
			return nil, fmt.Errorf("%s steps: %w", label, err)
		}
		if fp := tiling.Footprint(); fp != foot {
			return nil, fmt.Errorf("%s steps: stored footprint %d != tiling footprint %d", label, foot, fp)
		}
		live, err := cost.Evaluate(mm, df)
		if err != nil {
			return nil, fmt.Errorf("%s steps: %w", label, err)
		}
		if live != acc {
			return nil, fmt.Errorf("%s steps: stored cost %+v disagrees with live cost model %+v", label, acc, live)
		}
		steps[i] = tableStep{foot: foot, df: df, access: acc}
	}
	if err := d.endSection(label + "-steps"); err != nil {
		return nil, err
	}
	return steps, nil
}
