package search

import (
	"fmt"
	"sort"

	"fusecu/internal/cost"
	"fusecu/internal/dataflow"
	"fusecu/internal/errs"
	"fusecu/internal/faultinject"
	"fusecu/internal/invariant"
	"fusecu/internal/op"
)

// This file implements the candidate-table engine: the sweep-side dual of
// the enumeration scans. A scan answers "best dataflow under buffer BS" by
// walking the candidate lattice per query; a CandTable walks the lattice
// exactly once per operator shape, evaluates every (order, tiling) candidate
// (cost is buffer-independent — only footprint feasibility depends on BS),
// and compresses the results into footprint-sorted prefix-minimum step
// functions. A buffer query then reduces to one binary search: O(log n)
// instead of O(lattice), while returning the bit-identical optimum —
// dataflow, access breakdown and canonical tie-break — the reference
// engines produce (property-tested in candtable_test.go).
//
// The compression leans on one observation: as the feasible footprint
// threshold grows, the set of admitted candidates only ever grows, so the
// optimum as a function of BS is a step function that changes at most once
// per admitted candidate and in practice a handful of times. Each step
// stores the footprint at which it becomes active plus the full evaluated
// optimum; the raw per-candidate entries are discarded after the fold, so a
// resident table costs ~8 bytes per candidate (the footprint array that
// prices visit counts) plus a few steps.
//
// Steps are kept per tensor-rotation class — the stationary tensor the loop
// order keeps resident (OS/WS/IS), i.e. which of A, B, C rotates into the
// innermost-reuse position — alongside the global fold, so "best
// output-stationary dataflow under BS" is the same O(log n) query as the
// unconstrained optimum.

// Grid selects the candidate lattice a table is built over.
type Grid uint8

const (
	// GridFull is the complete integer tiling space — ReferenceExhaustive's
	// lattice.
	GridFull Grid = iota
	// GridCoarse is the TileGrid lattice — ReferenceCoarse's space and the
	// lattice stage of Optimize.
	GridCoarse
)

func (g Grid) String() string {
	switch g {
	case GridFull:
		return "full"
	case GridCoarse:
		return "coarse"
	}
	return fmt.Sprintf("Grid(%d)", uint8(g))
}

// gridValues returns the per-dimension tile value lists of g for mm.
func gridValues(mm op.MatMul, g Grid) (gm, gk, gl []int) {
	if g == GridCoarse {
		return TileGrid(mm.M), TileGrid(mm.K), TileGrid(mm.L)
	}
	return fullRange(mm.M), fullRange(mm.K), fullRange(mm.L)
}

// TableCandidates returns the number of (order, tiling) candidates a table
// over grid g would hold for mm — the sizing input for admission caps.
func TableCandidates(mm op.MatMul, g Grid) int64 {
	if mm.Validate() != nil {
		return 0
	}
	gm, gk, gl := gridValues(mm, g)
	return invariant.CheckedMul3(int64(len(gm)), int64(len(gk)), int64(len(gl))) * int64(len(dataflow.AllOrders()))
}

// MaxTableCandidates is the hard admission cap of NewCandTable: above it the
// transient build arrays stop being "a few hundred MB" and the build stops
// being interactive, so the constructor refuses and callers fall back to a
// scan. Service-level caps (Config.TableMaxCandidates) sit far below this.
const MaxTableCandidates = 1 << 23

// tableStep is one plateau of the prefix-minimum step function: for every
// buffer size ≥ foot (up to the next step), df is the optimal feasible
// candidate and access its evaluated cost.
type tableStep struct {
	foot   int64
	df     dataflow.Dataflow
	access cost.Access
}

// candEntry is the transient per-candidate record of a table build.
type candEntry struct {
	foot, total    int64
	oi, tm, tk, tl int32
}

// CandTable is an immutable per-shape candidate table. Safe for concurrent
// readers; queries never allocate or lock.
type CandTable struct {
	mm   op.MatMul
	grid Grid
	// classFoot partitions every candidate's footprint by rotation class,
	// each slice ascending — the visit-count index.
	classFoot [3][]int64
	// steps is the global prefix-min step function; classSteps the
	// per-rotation-class ones. All strictly increasing in foot.
	steps      []tableStep
	classSteps [3][]tableStep
	candidates int64
	buildEvals int64
	buildHits  int64
}

// NewCandTable enumerates and evaluates every candidate of grid g for mm
// once and folds the footprint-sorted prefix minima. Evaluations route
// through cache when non-nil (sharing cost work with scan engines and other
// tables); cache hits are counted separately so BuildEvals stays the honest
// cost-model-invocation metric. Builds above MaxTableCandidates are refused
// with an error wrapping errs.ErrInfeasible-free sizing text; a panic
// escaping the cost model (organic or fault-injected) is contained and
// returned as errs.ErrInternal, like every engine boundary.
func NewCandTable(mm op.MatMul, g Grid, cache *EvalCache) (*CandTable, error) {
	if err := mm.Validate(); err != nil {
		return nil, err
	}
	n := TableCandidates(mm, g)
	if n > MaxTableCandidates {
		return nil, fmt.Errorf("search: candidate table for %v over %s grid needs %d entries (cap %d)", mm, g, n, MaxTableCandidates)
	}
	t := &CandTable{mm: mm, grid: g, candidates: n}
	kern, err := cost.NewBatchEval(mm, dataflow.AllOrders())
	if err != nil {
		return nil, err
	}
	if err := guardScan(func() { t.build(kern, cache) }); err != nil {
		return nil, err
	}
	return t, nil
}

// build evaluates the lattice through the shared batch kernel, sorts by
// (footprint, canonical key) and folds the prefix-minimum steps. Runs
// inside guardScan. Candidates stream through one reused struct-of-arrays
// block — the same layout the enumeration scans dispatch — so the lattice
// pass constructs and validates nothing per candidate; cache traffic is one
// lookupBulk per block plus a single end-of-build insertBulk (every
// candidate of a build is distinct, so later blocks never need to see
// earlier blocks' misses).
func (t *CandTable) build(kern *cost.BatchEval, cache *EvalCache) {
	gm, gk, gl := gridValues(t.mm, t.grid)
	orders := dataflow.AllOrders()
	entries := make([]candEntry, 0, t.candidates)
	var stash []bulkEntry
	blk := cost.NewBlock(scanBlockSize)
	var keys []evalKey
	var miss []int32
	var probe blockProbe
	var oc *opEvalCache
	if cache != nil {
		oc = cache.opCache(opShape{t.mm.M, t.mm.K, t.mm.L})
		keys = make([]evalKey, 0, scanBlockSize)
		miss = make([]int32, 0, scanBlockSize)
	}
	flush := func() {
		n := blk.Len()
		if n == 0 {
			return
		}
		if oc == nil {
			kern.EvalBlock(blk)
			t.buildEvals += int64(n)
		} else {
			keys = keys[:0]
			for i := 0; i < n; i++ {
				keys = append(keys, evalKey{
					tm: blk.TM[i], tk: blk.TK[i], tl: blk.TL[i],
					oi: int32(blk.OI[i]),
				})
			}
			miss = probe.lookupBulk(oc, keys, blk.Out, miss[:0])
			kern.EvalIndexed(blk, miss)
			for _, i := range miss {
				stash = append(stash, bulkEntry{key: keys[i], access: blk.Out[i]})
			}
			t.buildEvals += int64(len(miss))
			t.buildHits += int64(n - len(miss))
		}
		for i := 0; i < n; i++ {
			entries = append(entries, candEntry{
				foot: blk.Foot[i], total: blk.Out[i].Total,
				oi: int32(blk.OI[i]), tm: blk.TM[i], tk: blk.TK[i], tl: blk.TL[i],
			})
		}
		blk.Reset()
	}
	for _, tm := range gm {
		for _, tk := range gk {
			for _, tl := range gl {
				fp := tileFootprint(tm, tk, tl)
				for oi := range orders {
					if err := faultinject.Active().Fire(SiteEval); err != nil {
						// Same per-candidate site as the scan engines;
						// guardScan converts the panic into ErrInternal.
						panic(err)
					}
					if blk.Full() {
						flush()
					}
					blk.Push(uint8(oi), int32(tm), int32(tk), int32(tl), fp)
				}
			}
		}
	}
	flush()
	if oc != nil {
		oc.insertBulk(stash)
	}
	// Footprint-major sort with the canonical key as tie-break makes the
	// fold deterministic; the fold itself is a min over the total order
	// (total, key), so the optimum per prefix is independent of the order
	// candidates were enumerated in. The comparator spells out candKey.less
	// over the packed fields — this sort is a third of a cold build.
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.foot != b.foot {
			return a.foot < b.foot
		}
		if a.oi != b.oi {
			return a.oi < b.oi
		}
		if a.tm != b.tm {
			return a.tm < b.tm
		}
		if a.tk != b.tk {
			return a.tk < b.tk
		}
		return a.tl < b.tl
	})

	type fold struct {
		total int64
		key   candKey
		found bool
	}
	var global fold
	var class [3]fold
	takeStep := func(steps []tableStep, e candEntry) []tableStep {
		o := dataflow.AllOrders()[e.oi]
		df := dataflow.Must(t.mm, o, dataflow.MustTiling(t.mm, int(e.tm), int(e.tk), int(e.tl)))
		// Deterministic recomputation of an evaluation already counted
		// during the lattice pass; steps are few, so this is O(steps).
		st := tableStep{foot: e.foot, df: df, access: cost.MustEvaluate(t.mm, df)}
		if len(steps) > 0 && steps[len(steps)-1].foot == e.foot {
			steps[len(steps)-1] = st
			return steps
		}
		return append(steps, st)
	}
	for _, e := range entries {
		key := candKey{int(e.oi), int(e.tm), int(e.tk), int(e.tl)}
		ci := int(dataflow.AllOrders()[e.oi].Stationary().Kind())
		t.classFoot[ci] = append(t.classFoot[ci], e.foot)
		if !global.found || e.total < global.total || (e.total == global.total && key.less(global.key)) {
			global = fold{total: e.total, key: key, found: true}
			t.steps = takeStep(t.steps, e)
		}
		if c := &class[ci]; !c.found || e.total < c.total || (e.total == c.total && key.less(c.key)) {
			*c = fold{total: e.total, key: key, found: true}
			t.classSteps[ci] = takeStep(t.classSteps[ci], e)
		}
	}
}

// Op returns the operator shape the table was built for.
func (t *CandTable) Op() op.MatMul { return t.mm }

// Grid returns the lattice the table covers.
func (t *CandTable) Grid() Grid { return t.grid }

// Candidates returns the number of (order, tiling) candidates the table
// covers — the work one scan over the same lattice with an unbounded buffer
// would do.
func (t *CandTable) Candidates() int64 { return t.candidates }

// BuildEvals returns the cost-model invocations the build performed;
// BuildCacheHits the candidates served from the shared cache instead.
func (t *CandTable) BuildEvals() int64 { return t.buildEvals }

// BuildCacheHits returns the build's cache-served candidate count.
func (t *CandTable) BuildCacheHits() int64 { return t.buildHits }

// MemoryBytes estimates the table's resident size (footprint index plus
// steps) for registry accounting.
func (t *CandTable) MemoryBytes() int64 {
	const stepBytes = 96 // foot + Dataflow + Access, rounded up
	steps := int64(len(t.steps))
	for i := range t.classSteps {
		steps += int64(len(t.classSteps[i]))
	}
	return t.candidates*8 + steps*stepBytes
}

// method names the table engine in Result.Method.
func (t *CandTable) method() string {
	if t.grid == GridCoarse {
		return "table-coarse"
	}
	return "table"
}

// footLE returns the number of candidates in foot (ascending) with
// footprint ≤ bs.
func footLE(foot []int64, bs int64) int64 {
	return int64(sort.Search(len(foot), func(i int) bool { return foot[i] > bs }))
}

// stepAt returns the active step for bs, or false when no candidate fits.
func stepAt(steps []tableStep, bs int64) (tableStep, bool) {
	i := sort.Search(len(steps), func(i int) bool { return steps[i].foot > bs })
	if i == 0 {
		return tableStep{}, false
	}
	return steps[i-1], true
}

// Best returns the optimal feasible candidate for bufferSize — the exact
// Result a pruned cached scan over the same lattice would return, in
// O(log n). Evaluations is 0 and CacheHits the number of feasible
// candidates, so Evaluations + CacheHits stays invariant with every other
// engine over the lattice.
func (t *CandTable) Best(bufferSize int64) (Result, error) {
	if bufferSize < 3 {
		return Result{}, fmt.Errorf("search: buffer %d cannot hold 1×1 tiles: %w", bufferSize, errs.ErrBufferTooSmall)
	}
	st, ok := stepAt(t.steps, bufferSize)
	if !ok {
		return Result{}, fmt.Errorf("search: no feasible dataflow for %v in buffer %d: %w", t.mm, bufferSize, errs.ErrInfeasible)
	}
	var visits int64
	for i := range t.classFoot {
		visits += footLE(t.classFoot[i], bufferSize)
	}
	return Result{Dataflow: st.df, Access: st.access, CacheHits: visits, Method: t.method()}, nil
}

// BestStationary restricts Best to one tensor-rotation class: the optimum
// among dataflow keeping k.KindTensor() stationary. Visit counts cover that
// class only.
func (t *CandTable) BestStationary(k dataflow.StationaryKind, bufferSize int64) (Result, error) {
	ci := int(k)
	if ci < 0 || ci >= len(t.classSteps) {
		return Result{}, fmt.Errorf("search: invalid stationary kind %d: %w", k, errs.ErrInvalidDataflow)
	}
	if bufferSize < 3 {
		return Result{}, fmt.Errorf("search: buffer %d cannot hold 1×1 tiles: %w", bufferSize, errs.ErrBufferTooSmall)
	}
	st, ok := stepAt(t.classSteps[ci], bufferSize)
	if !ok {
		return Result{}, fmt.Errorf("search: no feasible %v-stationary dataflow for %v in buffer %d: %w", k, t.mm, bufferSize, errs.ErrInfeasible)
	}
	return Result{Dataflow: st.df, Access: st.access, CacheHits: footLE(t.classFoot[ci], bufferSize), Method: t.method()}, nil
}
