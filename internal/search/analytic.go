package search

import (
	"context"
	"fmt"
	"math"

	"fusecu/internal/cost"
	"fusecu/internal/dataflow"
	"fusecu/internal/errs"
	"fusecu/internal/faultinject"
	"fusecu/internal/invariant"
	"fusecu/internal/op"
)

// SiteAnalytic is the fault-injection point visited once per analytic
// boundary candidate, before the shared per-evaluation SiteEval fires. Chaos
// tests arm it to prove the analytic engine's panic-containment boundary;
// the disarmed cost is one atomic load per candidate.
const SiteAnalytic = "search.analytic"

// This file is the analytic tile optimizer: the closed-form replacement for
// the genetic polish (ROADMAP item 3, mirroring FADiff's observation that
// fusion-aware schedules optimize by smooth relaxation rather than
// stochastic search). The cost model is piecewise affine in the trip counts
// n_D = ceil(D/T_D): fixing which trips exceed one — an "activity cell",
// eight per loop order — freezes every streaming condition, and
// cost.BatchEval.Regime exposes the cell's exact form
//
//	Total = base + coef_M·n_M + coef_K·n_K + coef_L·n_L
//
// with each coefficient either zero or a full tensor size. The innermost
// dim's coefficient is structurally zero (its tensor has no inner evicting
// loop), so every cell has at most two free positive-coefficient tiles and
// the per-cell optimization collapses:
//
//   - A non-multi dim is pinned at T = extent (n = 1 requires T ≥ extent).
//   - A multi dim with zero coefficient takes T = 1: it cannot change the
//     cell's cost and T = 1 maximizes the buffer slack left to the others.
//   - One free tile x under footprint x·a + x·b + a·b ≤ BS is monotone:
//     cost falls as x grows, so the single candidate is the largest
//     feasible x (clamped to extent−1 to stay inside the cell).
//   - Two free tiles (x, y) with third tile c minimize α/x + β/y over the
//     constraint (x+c)(y+c) ≤ BS+c² in the continuous relaxation, with the
//     interior optimum x* = BS/(c + sqrt(β(BS+c²)/α)). On the integer
//     lattice the optimum lies on the constraint's Pareto frontier: for any
//     trip count n_x, sliding x down to its plateau's left endpoint
//     ceil(ext_x/n_x) keeps the cost term fixed while loosening the
//     constraint on y, so WLOG x ∈ {ceil(ext_x/n) : n} (≈2√ext_x values)
//     and y is the largest feasible partner. Enumerating those boundary
//     candidates over the smaller extent is therefore *exact*; when that
//     extent is huge (beyond analyticExactExtent) the engine enumerates
//     only a window of plateaus around the closed-form interior optimum
//     plus the two extremes, trading provable exactness for O(1) work —
//     the regime the property tests cover stays on the exact path.
//
// Every candidate is priced exactly through the same cost.BatchEval kernel
// the enumeration engines use, so the result is a true lattice point with a
// bit-exact Access — no rounding error survives into the answer. The whole
// engine prices tens-to-hundreds of candidates per request where the GA
// polish priced Population×(Generations+1) ≈ 3,900.

// analyticExactExtent bounds the enumerated extent up to which the
// two-variable cells run the full (provably exact) Pareto-frontier scan,
// ≈ 2√4096 = 128 candidates per distinct cell. Above it the windowed scan
// around the continuous interior optimum keeps the candidate count O(1).
const analyticExactExtent = 4096

// analyticWindow is the plateau half-window enumerated around the
// continuous interior optimum when an extent exceeds analyticExactExtent.
const analyticWindow = 24

// PolishMode selects the polish engine Optimize, OptimizeParallel and
// OptimizeTable run after the lattice stage — and the sole engine above
// CoarseLatticeLimit.
type PolishMode uint8

const (
	// PolishAnalytic — the zero value and the default — prices the analytic
	// engine's closed-form boundary candidates: deterministic, exact on its
	// cells, and two orders of magnitude fewer evaluations than the GA.
	PolishAnalytic PolishMode = iota
	// PolishGA is the pre-analytic behaviour — the DAT-style genetic
	// algorithm — kept as an escape hatch behind -polish=ga during the
	// transition.
	PolishGA
)

// String renders the mode in the -polish flag vocabulary.
func (m PolishMode) String() string {
	if m == PolishGA {
		return "ga"
	}
	return "analytic"
}

// methodSuffix is the Result.Method fragment the hybrid entry points append
// after "coarse+"/"table+" when the polish wins.
func (m PolishMode) methodSuffix() string {
	if m == PolishGA {
		return "genetic"
	}
	return "analytic"
}

// ParsePolishMode maps a -polish flag value to a PolishMode.
func ParsePolishMode(s string) (PolishMode, error) {
	switch s {
	case "analytic", "":
		return PolishAnalytic, nil
	case "ga", "genetic":
		return PolishGA, nil
	}
	return PolishAnalytic, fmt.Errorf("unknown polish mode %q (want analytic or ga)", s)
}

// Analytic is the analytic optimizer compiled for one operator: the batch
// kernel, the per-order regime descriptors, and reusable scan scratch. One
// Analytic serves any number of sequential OptimizeCtx calls (buffer sweeps,
// the serve polish path) without allocating per call; it is not safe for
// concurrent use.
type Analytic struct {
	mm     op.MatMul
	ext    [3]int64
	orders []dataflow.Order
	kern   *cost.BatchEval
	scan   *blockScanner
	acc    enumBest
	stop   cancelCheck
}

// NewAnalytic validates mm and compiles the analytic optimizer for it.
func NewAnalytic(mm op.MatMul) (*Analytic, error) {
	orders := dataflow.AllOrders()
	kern, err := cost.NewBatchEval(mm, orders)
	if err != nil {
		return nil, err
	}
	a := &Analytic{
		mm:     mm,
		ext:    [3]int64{int64(mm.M), int64(mm.K), int64(mm.L)},
		orders: orders,
		kern:   kern,
	}
	a.scan = newBlockScanner(mm, 0, orders, kern, nil, &a.stop, &a.acc)
	return a, nil
}

// OptimizeAnalytic derives the per-regime closed-form optima of the cost
// model under the footprint constraint, prices the integer boundary
// candidates around each through the batch kernel, and returns the best —
// no population, no generations, no randomness. See OptimizeAnalyticCtx.
func OptimizeAnalytic(mm op.MatMul, bufferSize int64) (Result, error) {
	return OptimizeAnalyticCtx(context.Background(), mm, bufferSize)
}

// OptimizeAnalyticCtx is OptimizeAnalytic under a cancelable context. The
// engine visits only tens-to-hundreds of candidates, so cancellation is
// checked once per candidate stride and once before the result is returned;
// Result.Evaluations counts the exact pricings (the engine is uncached —
// its boundary candidates are off-lattice points that almost never repeat),
// CacheHits is always zero, and Method is "analytic". Like every engine it
// is a panic-containment boundary: injected faults (SiteAnalytic, SiteEval)
// and organic cost-model panics return as ErrInternal.
func OptimizeAnalyticCtx(ctx context.Context, mm op.MatMul, bufferSize int64) (Result, error) {
	a, err := NewAnalytic(mm)
	if err != nil {
		return Result{}, err
	}
	return a.OptimizeCtx(ctx, bufferSize)
}

// OptimizeCtx runs the analytic optimization for one buffer size, reusing
// the compiled kernel and scratch (the steady state allocates nothing —
// pinned by BenchmarkAnalyticPolish).
func (a *Analytic) OptimizeCtx(ctx context.Context, bufferSize int64) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = Result{}, panicError(r)
		}
	}()
	if bufferSize < 3 {
		return Result{}, fmt.Errorf("search: buffer %d cannot hold 1×1 tiles: %w", bufferSize, errs.ErrBufferTooSmall)
	}
	a.acc = enumBest{}
	a.stop = cancelCheck{done: ctx.Done()}
	a.scan.bufferSize = bufferSize
	a.scan.blk.Reset() // drop any residue a contained panic left behind
	a.emitAll()
	a.scan.flush()
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("search: analytic scan canceled: %w", err)
	}
	if !a.acc.found {
		return Result{}, fmt.Errorf("search: no feasible dataflow for %v in buffer %d: %w", a.mm, bufferSize, errs.ErrInfeasible)
	}
	r := a.acc.best
	r.Method = "analytic"
	return r, nil
}

// push routes one boundary candidate into the block scanner, firing the
// analytic engine's own fault-injection site before the shared per-visit
// one. The caller guarantees foot ≤ bufferSize and 1 ≤ tile ≤ extent.
func (a *Analytic) push(oi int, tm, tk, tl int64, foot int64) {
	if err := faultinject.Active().Fire(SiteAnalytic); err != nil {
		panic(err)
	}
	a.scan.push(oi, int(tm), int(tk), int(tl), foot)
}

// emitCell pushes the candidate with the given per-slot tiles if it fits.
func (a *Analytic) emitCell(oi int, tiles [3]int64) {
	foot := invariant.CheckedMul(tiles[0], tiles[1]) +
		invariant.CheckedMul(tiles[1], tiles[2]) +
		invariant.CheckedMul(tiles[0], tiles[2])
	if foot <= a.scan.bufferSize {
		a.push(oi, tiles[0], tiles[1], tiles[2], foot)
	}
}

// emitAll generates every order's per-cell boundary candidates. The (1,1,1)
// seed keeps the feasibility contract identical to the enumeration engines:
// any buffer ≥ 3 admits it, so the engine returns ErrInfeasible exactly
// when they would.
func (a *Analytic) emitAll() {
	a.push(0, 1, 1, 1, 3)
	for oi := range a.orders {
		if a.stop.stopped() {
			return
		}
		a.emitOrder(oi)
	}
}

// emitOrder walks order oi's eight activity cells. For each cell the
// non-multi dims and zero-coefficient multi dims are pinned (extent and 1
// respectively) and the remaining one or two positive-coefficient tiles are
// optimized in closed form.
func (a *Analytic) emitOrder(oi int) {
	for mask := 0; mask < 8; mask++ {
		multi := [3]bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		empty := false
		for d := 0; d < 3; d++ {
			if multi[d] && a.ext[d] < 2 {
				empty = true // a unit extent cannot trip more than once
				break
			}
		}
		if empty {
			continue
		}
		base, coef := a.kern.Regime(uint8(oi), multi)
		var tiles [3]int64
		var free [2]int
		nFree := 0
		for d := 0; d < 3; d++ {
			switch {
			case !multi[d]:
				tiles[d] = a.ext[d]
			case coef[d] == 0:
				tiles[d] = 1
			default:
				invariant.Assert(nFree < 2,
					"search: analytic cell %03b of order %d has >2 free tiles", mask, oi)
				free[nFree] = d
				nFree++
			}
		}
		switch nFree {
		case 0:
			a.emitCell(oi, tiles)
		case 1:
			a.emitOne(oi, tiles, free[0])
		case 2:
			// Stationary-swap pairs share the innermost dim, so their
			// two-variable cells describe the same affine problem; emit it
			// once under the pair's lower order index (the canonical
			// tie-break winner).
			if oi%2 == 1 {
				pb, pc := a.kern.Regime(uint8(oi-1), multi)
				if pb == base && pc == coef {
					continue
				}
			}
			a.emitTwo(oi, tiles, free[0], free[1], coef)
		}
	}
}

// emitOne handles a cell with a single free positive-coefficient tile x:
// cost base + coef·ceil(ext/x) falls as x grows while the footprint rises,
// so the one candidate is the largest feasible x, clamped to extent−1 to
// keep the trip count above one (the cell's defining condition).
func (a *Analytic) emitOne(oi int, tiles [3]int64, d int) {
	o1, o2 := tiles[(d+1)%3], tiles[(d+2)%3]
	rest := invariant.CheckedMul(o1, o2)
	if rest >= a.scan.bufferSize {
		return // no room for even x = 1
	}
	x := (a.scan.bufferSize - rest) / (o1 + o2)
	if x > a.ext[d]-1 {
		x = a.ext[d] - 1
	}
	if x < 1 {
		return
	}
	tiles[d] = x
	a.emitCell(oi, tiles)
}

// emitTwo handles a cell with two free positive-coefficient tiles. It
// enumerates Pareto-frontier candidates over the smaller-extent dim e: each
// distinct trip count's plateau left endpoint x = ceil(ext_e/n), paired
// with the largest partner tile the footprint admits. Within
// analyticExactExtent every achievable trip count is visited (exact);
// beyond it only a window around the continuous interior optimum plus the
// two extremes.
func (a *Analytic) emitTwo(oi int, tiles [3]int64, d1, d2 int, coef [3]int64) {
	e, p := d1, d2
	if a.ext[d2] < a.ext[d1] {
		e, p = d2, d1
	}
	exE := a.ext[e]
	if exE <= analyticExactExtent {
		// Walk the distinct plateau left endpoints: from x, the next smaller
		// endpoint is ceil(exE/n) at the first n whose ceil drops below x,
		// i.e. n = ceil(exE/(x−1)). Unachievable trip counts are skipped.
		for n := int64(2); ; {
			x := ceilDiv(exE, n)
			a.emitPair(oi, tiles, e, x, p)
			if x == 1 {
				return
			}
			n = ceilDiv(exE, x-1)
		}
	}
	// Windowed scan: center on the continuous interior optimum of
	// α/x + β/y s.t. (x+c)(y+c) = BS+c², x* = BS/(c + sqrt(β(BS+c²)/α)).
	c := float64(tiles[3-e-p])
	bs := float64(a.scan.bufferSize)
	alpha := float64(coef[e]) * float64(exE)
	beta := float64(coef[p]) * float64(a.ext[p])
	xStar := bs / (c + math.Sqrt(beta*(bs+c*c)/alpha))
	nStar := int64(2)
	if xStar >= 1 {
		nStar = int64(math.Ceil(float64(exE) / xStar))
	}
	lo, hi := nStar-analyticWindow, nStar+analyticWindow
	if lo < 2 {
		lo = 2
	}
	if hi > exE {
		hi = exE
	}
	var lastX int64
	for n := lo; n <= hi; n++ {
		if x := ceilDiv(exE, n); x != lastX {
			lastX = x
			a.emitPair(oi, tiles, e, x, p)
		}
	}
	// The extremes bound the window: the largest in-cell tile and T = 1.
	if x := ceilDiv(exE, 2); x != 0 {
		a.emitPair(oi, tiles, e, x, p)
	}
	a.emitPair(oi, tiles, e, 1, p)
}

// emitPair fixes the enumerated tile x on dim e and pairs it with the
// largest partner tile on dim p the footprint admits, clamped into the
// cell's range [1, extent−1].
func (a *Analytic) emitPair(oi int, tiles [3]int64, e int, x int64, p int) {
	t3 := tiles[3-e-p]
	num := a.scan.bufferSize - invariant.CheckedMul(t3, x)
	den := x + t3
	if num < den {
		return // even y = 1 overflows
	}
	y := num / den
	if y > a.ext[p]-1 {
		y = a.ext[p] - 1
	}
	tiles[e], tiles[p] = x, y
	a.emitCell(oi, tiles)
}

// ceilDiv is ceil(a/b) for positive operands.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
