package search

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"

	"fusecu/internal/cost"
	"fusecu/internal/dataflow"
	"fusecu/internal/model"
	"fusecu/internal/op"
)

// TestTableEncodeDeterministic pins the serialization contract that content
// addressing relies on: two independent fresh builds of the same (shape,
// grid) encode to identical bytes, and a decode→re-encode round trip is a
// fixed point.
func TestTableEncodeDeterministic(t *testing.T) {
	mm := op.MatMul{Name: "det", M: 12, K: 10, L: 8}
	a, err := NewCandTable(mm, GridFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCandTable(mm, GridFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := EncodeTable(a), EncodeTable(b)
	if string(ea) != string(eb) {
		t.Fatal("two fresh builds of the same table encode differently")
	}
	dec, err := DecodeTable(ea)
	if err != nil {
		t.Fatal(err)
	}
	if string(EncodeTable(dec)) != string(ea) {
		t.Fatal("decode→encode is not a fixed point")
	}
	if !reflect.DeepEqual(a, dec) {
		t.Fatal("decoded table differs structurally from the fresh build")
	}
}

// TestTableRoundTripRandomized is the round-trip property over randomized
// shapes and both grids: the decoded table answers Best and BestStationary
// bit-identically to the fresh build it was encoded from, across feasible
// and infeasible buffers.
func TestTableRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		mm := op.MatMul{
			Name: "rt",
			M:    rng.Intn(14) + 1,
			K:    rng.Intn(14) + 1,
			L:    rng.Intn(14) + 1,
		}
		grid := GridFull
		if trial%2 == 1 {
			grid = GridCoarse
		}
		fresh, err := NewCandTable(mm, grid, nil)
		if err != nil {
			t.Fatalf("%v: build: %v", mm, err)
		}
		dec, err := DecodeTable(EncodeTable(fresh))
		if err != nil {
			t.Fatalf("%v: decode: %v", mm, err)
		}
		checkTablesAnswerAlike(t, mm, fresh, dec)
	}
}

// TestTableRoundTripTableII is the acceptance property for the offline
// store: for every distinct operator shape of the Table II models plus the
// LLaMA2 sequence sweep, a table decoded from its serialized form answers
// Best bit-identically to a freshly built CandTable.
func TestTableRoundTripTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("builds coarse tables for every Table II shape")
	}
	for _, mm := range tableIIShapes(t) {
		fresh, err := NewCandTable(mm, GridCoarse, nil)
		if err != nil {
			t.Fatalf("%v: build: %v", mm, err)
		}
		dec, err := DecodeTable(EncodeTable(fresh))
		if err != nil {
			t.Fatalf("%v: decode: %v", mm, err)
		}
		checkTablesAnswerAlike(t, mm, fresh, dec)
	}
}

// tableIIShapes returns the deduplicated operator shapes of the Table II
// evaluation models and the Fig. 11 LLaMA2 sequence sweep — the model
// families fusecu-tablegen precomputes.
func tableIIShapes(t *testing.T) []op.MatMul {
	t.Helper()
	configs := model.TableII()
	for _, s := range model.Fig11SeqLengths() {
		configs = append(configs, model.LLaMA2WithSeq(s))
	}
	seen := map[[3]int]bool{}
	var out []op.MatMul
	for _, cfg := range configs {
		w, err := cfg.Build()
		if err != nil {
			t.Fatal(err)
		}
		for _, wc := range w.Chains {
			for _, mm := range wc.Chain.Ops {
				key := [3]int{mm.M, mm.K, mm.L}
				if seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, mm)
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("no Table II shapes")
	}
	return out
}

// checkTablesAnswerAlike asserts two tables are indistinguishable through
// the query API across a buffer sweep spanning infeasible to unconstrained.
func checkTablesAnswerAlike(t *testing.T, mm op.MatMul, want, got *CandTable) {
	t.Helper()
	if want.Candidates() != got.Candidates() || want.BuildEvals() != got.BuildEvals() ||
		want.BuildCacheHits() != got.BuildCacheHits() {
		t.Fatalf("%v: table counters differ: fresh (%d,%d,%d) vs decoded (%d,%d,%d)", mm,
			want.Candidates(), want.BuildEvals(), want.BuildCacheHits(),
			got.Candidates(), got.BuildEvals(), got.BuildCacheHits())
	}
	maxFP := mm.SizeA() + mm.SizeB() + mm.SizeC()
	buffers := []int64{1, 3, 7, 64, maxFP / 3, maxFP / 2, maxFP, maxFP * 2}
	for _, bs := range buffers {
		wr, werr := want.Best(bs)
		gr, gerr := got.Best(bs)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%v BS=%d: fresh err=%v, decoded err=%v", mm, bs, werr, gerr)
		}
		if werr == nil && !reflect.DeepEqual(wr, gr) {
			t.Fatalf("%v BS=%d: decoded Best %+v != fresh %+v", mm, bs, gr, wr)
		}
		for k := 0; k < 3; k++ {
			wr, werr := want.BestStationary(dataflow.StationaryKind(k), bs)
			gr, gerr := got.BestStationary(dataflow.StationaryKind(k), bs)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%v BS=%d class %d: fresh err=%v, decoded err=%v", mm, bs, k, werr, gerr)
			}
			if werr == nil && !reflect.DeepEqual(wr, gr) {
				t.Fatalf("%v BS=%d class %d: decoded %+v != fresh %+v", mm, bs, k, gr, wr)
			}
		}
	}
}

// TestDecodeRejectsEveryByteFlip flips each byte of a valid artifact in
// turn: every mutation must fail decoding (each region is covered by a
// CRC32, and the step sections are additionally cross-checked against the
// live cost model) — and none may panic.
func TestDecodeRejectsEveryByteFlip(t *testing.T) {
	tab, err := NewCandTable(op.MatMul{Name: "flip", M: 6, K: 5, L: 4}, GridFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	blob := EncodeTable(tab)
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0xff
		if _, err := DecodeTable(mut); err == nil {
			t.Fatalf("byte flip at offset %d decoded successfully", i)
		} else if !errors.Is(err, ErrTableFormat) && !errors.Is(err, ErrTableCostModel) {
			t.Fatalf("byte flip at offset %d: error %v is not classified", i, err)
		}
	}
}

// TestDecodeRejectsTruncation decodes every proper prefix of a valid
// artifact; all must fail cleanly.
func TestDecodeRejectsTruncation(t *testing.T) {
	tab, err := NewCandTable(op.MatMul{Name: "trunc", M: 5, K: 4, L: 3}, GridFull, nil)
	if err != nil {
		t.Fatal(err)
	}
	blob := EncodeTable(tab)
	for n := 0; n < len(blob); n++ {
		if _, err := DecodeTable(blob[:n]); !errors.Is(err, ErrTableFormat) {
			t.Fatalf("prefix of %d bytes: got %v, want ErrTableFormat", n, err)
		}
	}
	// Trailing garbage is rejected too.
	if _, err := DecodeTable(append(append([]byte(nil), blob...), 0)); !errors.Is(err, ErrTableFormat) {
		t.Fatalf("trailing byte: got %v, want ErrTableFormat", err)
	}
}

// TestDecodeRejectsWrongCostModelVersion rewrites the header's cost-model
// version (fixing the header checksum, so only the version check can catch
// it) and expects the dedicated sentinel.
func TestDecodeRejectsWrongCostModelVersion(t *testing.T) {
	tab, err := NewCandTable(op.MatMul{Name: "cmver", M: 5, K: 4, L: 3}, GridCoarse, nil)
	if err != nil {
		t.Fatal(err)
	}
	blob := patchCostModelVersion(t, EncodeTable(tab), "cmX")
	if _, err := DecodeTable(blob); !errors.Is(err, ErrTableCostModel) {
		t.Fatalf("got %v, want ErrTableCostModel", err)
	}
	if _, err := DecodeTable(blob); errors.Is(err, ErrTableFormat) {
		t.Fatal("cost-model mismatch must not be classified as a format error")
	}
}

// patchCostModelVersion overwrites the header's cost-model version string
// in place (same length required) and recomputes the header CRC32.
func patchCostModelVersion(t *testing.T, blob []byte, version string) []byte {
	t.Helper()
	if len(version) != len(cost.ModelVersion) {
		t.Fatalf("patch version %q must have length %d", version, len(cost.ModelVersion))
	}
	out := append([]byte(nil), blob...)
	// Layout: magic(4) format(2) cmVerLen(2) cmVer nameLen(2) name dims(24)
	// grid(1) counters(24) crc(4).
	verOff := 4 + 2 + 2
	copy(out[verOff:], version)
	nameLen := int(binary.LittleEndian.Uint16(out[verOff+len(version):]))
	headerLen := verOff + len(version) + 2 + nameLen + 24 + 1 + 24
	binary.LittleEndian.PutUint32(out[headerLen:], crc32.ChecksumIEEE(out[:headerLen]))
	return out
}
