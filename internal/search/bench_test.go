package search

import (
	"testing"

	"fusecu/internal/op"
)

// benchOp is large enough that the coarse lattice dominates runtime but
// small enough for -benchtime=1x smoke runs in CI.
var benchOp = op.MatMul{Name: "bench", M: 256, K: 192, L: 256}

const benchBuffer = 32 << 10

func BenchmarkCoarseReference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ReferenceCoarse(benchOp, benchBuffer); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoarsePruned(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ExhaustiveCoarse(benchOp, benchBuffer); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoarseParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParallelCoarse(benchOp, benchBuffer, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoarseCachedSweep measures a warm-cache buffer sweep — the
// Fig. 9 access pattern where the same candidate lattice is revisited at
// every buffer size.
func BenchmarkCoarseCachedSweep(b *testing.B) {
	buffers := []int64{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := NewEvalCache()
		for _, bs := range buffers {
			if _, err := ExhaustiveCoarseCached(benchOp, bs, cache); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkExhaustiveReference(b *testing.B) {
	mm := op.MatMul{Name: "bench-small", M: 24, K: 20, L: 24}
	for i := 0; i < b.N; i++ {
		if _, err := ReferenceExhaustive(mm, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustivePruned(b *testing.B) {
	mm := op.MatMul{Name: "bench-small", M: 24, K: 20, L: 24}
	for i := 0; i < b.N; i++ {
		if _, err := Exhaustive(mm, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustiveParallel(b *testing.B) {
	mm := op.MatMul{Name: "bench-small", M: 24, K: 20, L: 24}
	for i := 0; i < b.N; i++ {
		if _, err := ParallelExhaustive(mm, 512, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}
