package search

import (
	"testing"

	"fusecu/internal/cost"
	"fusecu/internal/dataflow"
	"fusecu/internal/op"
)

// benchOp is large enough that the coarse lattice dominates runtime but
// small enough for -benchtime=1x smoke runs in CI.
var benchOp = op.MatMul{Name: "bench", M: 256, K: 192, L: 256}

const benchBuffer = 32 << 10

func BenchmarkCoarseReference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ReferenceCoarse(benchOp, benchBuffer); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoarsePruned(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ExhaustiveCoarse(benchOp, benchBuffer); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoarseParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParallelCoarse(benchOp, benchBuffer, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoarseCachedSweep measures a warm-cache buffer sweep — the
// Fig. 9 access pattern where the same candidate lattice is revisited at
// every buffer size.
func BenchmarkCoarseCachedSweep(b *testing.B) {
	buffers := []int64{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := NewEvalCache()
		for _, bs := range buffers {
			if _, err := ExhaustiveCoarseCached(benchOp, bs, cache); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkExhaustiveReference(b *testing.B) {
	mm := op.MatMul{Name: "bench-small", M: 24, K: 20, L: 24}
	for i := 0; i < b.N; i++ {
		if _, err := ReferenceExhaustive(mm, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustivePruned(b *testing.B) {
	mm := op.MatMul{Name: "bench-small", M: 24, K: 20, L: 24}
	for i := 0; i < b.N; i++ {
		if _, err := Exhaustive(mm, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustiveParallel(b *testing.B) {
	mm := op.MatMul{Name: "bench-small", M: 24, K: 20, L: 24}
	for i := 0; i < b.N; i++ {
		if _, err := ParallelExhaustive(mm, 512, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalHotPath is the cached-hit evaluation — the inner loop of
// every warm sweep and of serving traffic on a hot shape. The acceptance
// bar is 0 allocs/op: one atomic pointer load, one immutable map read, one
// counter bump, no mutex.
func BenchmarkEvalHotPath(b *testing.B) {
	mm := op.MatMul{Name: "hot", M: 48, K: 32, L: 40}
	cache := NewEvalCache()
	df := dataflow.Must(mm, dataflow.AllOrders()[2], dataflow.MustTiling(mm, 8, 4, 5))
	for i := 0; i < publishPressure+2; i++ {
		cache.Evaluate(mm, df) // warm through publication
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit := cache.Evaluate(mm, df); !hit {
			b.Fatal("warmed key missed")
		}
	}
}

// BenchmarkEvalHotPathParallel is the same hit under reader concurrency —
// the serving profile where the old single-tier design serialized on the
// shard mutex.
func BenchmarkEvalHotPathParallel(b *testing.B) {
	mm := op.MatMul{Name: "hot", M: 48, K: 32, L: 40}
	cache := NewEvalCache()
	dfs := cacheTestDataflows(b, mm)
	for _, df := range dfs {
		cache.Evaluate(mm, df)
		cache.Evaluate(mm, df)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			df := dfs[i%len(dfs)]
			i++
			if _, hit := cache.Evaluate(mm, df); !hit {
				b.Fatal("warmed key missed")
			}
		}
	})
}

// BenchmarkCostEvaluate is the uncached cost model itself; also 0 allocs/op
// — the scan path allocates only per-scan constants, nothing per candidate.
func BenchmarkCostEvaluate(b *testing.B) {
	mm := op.MatMul{Name: "raw", M: 48, K: 32, L: 40}
	df := dataflow.Must(mm, dataflow.AllOrders()[0], dataflow.MustTiling(mm, 8, 4, 5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cost.Evaluate(mm, df); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableBuild prices the one-time per-shape cost the candidate
// table amortizes away.
func BenchmarkTableBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewCandTable(benchOp, GridCoarse, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableBest is one sweep point served from a prebuilt table — the
// O(log n) query that replaces an O(lattice) scan. 0 allocs/op.
func BenchmarkTableBest(b *testing.B) {
	tab, err := NewCandTable(benchOp, GridCoarse, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.Best(benchBuffer); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableSweep is the Fig. 9 access pattern over the table API:
// build once, query every buffer point. Compare against
// BenchmarkCoarseCachedSweep, which rescans the lattice per point.
func BenchmarkTableSweep(b *testing.B) {
	buffers := []int64{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := NewCandTable(benchOp, GridCoarse, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, bs := range buffers {
			if _, err := tab.Best(bs); err != nil {
				b.Fatal(err)
			}
		}
	}
}
