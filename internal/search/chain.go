package search

import (
	"fmt"

	"fusecu/internal/fusion"
	"fusecu/internal/op"
)

// ChainResult is the outcome of search-based inter-operator optimization —
// the full DAT role: fusion grouping plus per-group dataflow, found by
// search rather than by the principles.
type ChainResult struct {
	// FusedPairs lists the starting indices of the fused pairs chosen.
	FusedPairs []int
	// TotalMA is the chain's searched memory access.
	TotalMA int64
	// Evaluations counts cost-model invocations across all searches.
	Evaluations int64
}

// OptimizeChain searches a chain's inter-operator space: every operator's
// intra dataflow via Optimize, every adjacent pair's fused dataflow via a
// lattice search over the three Fig. 4 patterns, and the fusion grouping
// via dynamic programming over the searched costs.
func OptimizeChain(c *op.Chain, bufferSize int64, opts GeneticOptions) (ChainResult, error) {
	if err := c.Validate(); err != nil {
		return ChainResult{}, err
	}
	n := c.Len()
	var res ChainResult

	intra := make([]int64, n)
	for i, mm := range c.Ops {
		r, err := Optimize(mm, bufferSize, opts)
		if err != nil {
			return ChainResult{}, fmt.Errorf("search: chain op %d: %w", i, err)
		}
		intra[i] = r.Access.Total
		res.Evaluations += r.Evaluations
	}

	fusedMA := make([]int64, max(0, n-1))
	fusedOK := make([]bool, max(0, n-1))
	for i := 0; i+1 < n; i++ {
		pair, err := fusion.NewPair(c.Ops[i], c.Ops[i+1])
		if err != nil {
			return ChainResult{}, fmt.Errorf("search: chain link %d: %w", i, err)
		}
		ma, evals, ok := SearchFused(pair, bufferSize)
		res.Evaluations += evals
		fusedMA[i], fusedOK[i] = ma, ok
	}

	// DP over prefixes, mirroring the principle planner but on searched
	// costs.
	const inf = int64(1) << 62
	best := make([]int64, n+1)
	choice := make([]int, n+1)
	for i := 1; i <= n; i++ {
		best[i] = inf
		if v := best[i-1] + intra[i-1]; v < best[i] {
			best[i], choice[i] = v, 1
		}
		if i >= 2 && fusedOK[i-2] {
			if v := best[i-2] + fusedMA[i-2]; v < best[i] {
				best[i], choice[i] = v, 2
			}
		}
	}
	res.TotalMA = best[n]
	for i := n; i > 0; {
		if choice[i] == 2 {
			res.FusedPairs = append(res.FusedPairs, i-2)
			i -= 2
			continue
		}
		i--
	}
	// Reverse into chain order.
	for l, r := 0, len(res.FusedPairs)-1; l < r; l, r = l+1, r-1 {
		res.FusedPairs[l], res.FusedPairs[r] = res.FusedPairs[r], res.FusedPairs[l]
	}
	return res, nil
}

// SearchFused searches the fused-dataflow space of one pair over the
// TileGrid lattice for every pattern, returning the best feasible MA, the
// evaluation count, and whether anything fit.
func SearchFused(p fusion.Pair, bufferSize int64) (int64, int64, bool) {
	var (
		best  int64
		found bool
		evals int64
	)
	consider := func(fd fusion.FusedDataflow) {
		a, err := fusion.Evaluate(p, fd)
		evals++
		if err != nil || a.Footprint > bufferSize {
			return
		}
		if !found || a.Total < best {
			found, best = true, a.Total
		}
	}
	for _, tm := range TileGrid(p.M()) {
		for _, tl := range TileGrid(p.L()) {
			consider(fusion.MustFused(p, fusion.PatternTileOSIS, tm, 1, tl, 1))
		}
		for _, tl := range TileGrid(p.L()) {
			consider(fusion.MustFused(p, fusion.PatternColumn, tm, p.K(), tl, p.N()))
		}
	}
	consider(fusion.MustFused(p, fusion.PatternResident, p.M(), 1, p.L(), p.N()))
	return best, evals, found
}

// UnfusedChainMA is the searched all-unfused baseline.
func UnfusedChainMA(c *op.Chain, bufferSize int64, opts GeneticOptions) (int64, error) {
	var total int64
	for i, mm := range c.Ops {
		r, err := Optimize(mm, bufferSize, opts)
		if err != nil {
			return 0, fmt.Errorf("search: chain op %d: %w", i, err)
		}
		total += r.Access.Total
	}
	return total, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
