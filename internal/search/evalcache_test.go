package search

import (
	"math/rand"
	"sync"
	"testing"

	"fusecu/internal/cost"
	"fusecu/internal/dataflow"
	"fusecu/internal/op"
)

// cacheTestDataflows builds every coarse-lattice dataflow of mm — a
// realistic key population: exactly what a sweep or serving burst inserts.
func cacheTestDataflows(t testing.TB, mm op.MatMul) []dataflow.Dataflow {
	t.Helper()
	var dfs []dataflow.Dataflow
	for _, tm := range TileGrid(mm.M) {
		for _, tk := range TileGrid(mm.K) {
			for _, tl := range TileGrid(mm.L) {
				ti := dataflow.MustTiling(mm, tm, tk, tl)
				for _, o := range dataflow.AllOrders() {
					dfs = append(dfs, dataflow.Must(mm, o, ti))
				}
			}
		}
	}
	return dfs
}

// TestEvalCacheSharedAcrossIdenticallyShapedOps pins the documented claim
// that operator names are not part of the cache key: a sweep warmed under
// one name serves an identically shaped operator under another name
// entirely from cache, with zero additional cost-model invocations.
func TestEvalCacheSharedAcrossIdenticallyShapedOps(t *testing.T) {
	cache := NewEvalCache()
	qkt := op.MatMul{Name: "QKt-head0", M: 48, K: 32, L: 48}
	head7 := op.MatMul{Name: "QKt-head7", M: 48, K: 32, L: 48}

	cold, err := ExhaustiveCoarseCached(qkt, 4096, cache)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Evaluations == 0 {
		t.Fatal("cold sweep reported no evaluations")
	}
	missesAfterCold := cache.Stats().Misses

	warm, err := ExhaustiveCoarseCached(head7, 4096, cache)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Evaluations != 0 {
		t.Errorf("identically shaped op under a different name re-evaluated %d candidates, want 0", warm.Evaluations)
	}
	if warm.CacheHits != cold.Evaluations+cold.CacheHits {
		t.Errorf("warm visits %d != cold visits %d", warm.CacheHits, cold.Evaluations+cold.CacheHits)
	}
	if got := cache.Stats().Misses; got != missesAfterCold {
		t.Errorf("misses grew %d → %d across the renamed rerun", missesAfterCold, got)
	}
	if warm.Dataflow != cold.Dataflow || warm.Access != cold.Access {
		t.Errorf("renamed op optimum %v %+v != original %v %+v", warm.Dataflow, warm.Access, cold.Dataflow, cold.Access)
	}

	// Direct single-key check, including both tiers (pre- and post-publish).
	mmA := op.MatMul{Name: "a", M: 5, K: 6, L: 7}
	mmB := op.MatMul{Name: "b", M: 5, K: 6, L: 7}
	df := dataflow.Must(mmA, dataflow.AllOrders()[0], dataflow.MustTiling(mmA, 2, 3, 4))
	if _, hit := cache.Evaluate(mmA, df); hit {
		t.Fatal("first evaluation reported a hit")
	}
	if a, hit := cache.Evaluate(mmB, df); !hit || a != cost.MustEvaluate(mmB, df) {
		t.Fatalf("renamed re-evaluation hit=%v access=%+v", hit, a)
	}
}

// TestOptimizeConservationWithAnalyticPolish pins the visit-conservation
// story for the hybrid entry points now that the uncached column is the
// analytic polish rather than the GA: an uncached Optimize equals the
// lattice scan's evaluations plus the analytic engine's small exact count;
// a cached rerun moves lattice visits into CacheHits but conserves the sum,
// with the polish contributing zero hits (it is deliberately uncached — its
// boundary candidates are off-lattice points that almost never repeat).
func TestOptimizeConservationWithAnalyticPolish(t *testing.T) {
	mm := op.MatMul{Name: "conserve", M: 96, K: 48, L: 64}
	const bs = 4096

	lattice, err := ExhaustiveCoarse(mm, bs)
	if err != nil {
		t.Fatal(err)
	}
	polish, err := OptimizeAnalytic(mm, bs)
	if err != nil {
		t.Fatal(err)
	}
	if polish.CacheHits != 0 {
		t.Fatalf("analytic polish reported %d cache hits, want 0", polish.CacheHits)
	}

	cold, err := OptimizeCached(mm, bs, GeneticOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 {
		t.Errorf("uncached optimize reported %d cache hits", cold.CacheHits)
	}
	if want := lattice.Evaluations + polish.Evaluations; cold.Evaluations != want {
		t.Errorf("uncached evaluations %d != lattice %d + analytic polish %d",
			cold.Evaluations, lattice.Evaluations, polish.Evaluations)
	}

	cache := NewEvalCache()
	if _, err := ExhaustiveCoarseCached(mm, bs, cache); err != nil {
		t.Fatal(err)
	}
	warm, err := OptimizeCached(mm, bs, GeneticOptions{}, cache)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Evaluations+warm.CacheHits != cold.Evaluations {
		t.Errorf("warm visits %d+%d break conservation with uncached %d",
			warm.Evaluations, warm.CacheHits, cold.Evaluations)
	}
	// Everything cacheable was prewarmed, so the only remaining cost-model
	// invocations are the polish's own — the small exact count that replaced
	// the GA's thousands.
	if warm.Evaluations != polish.Evaluations {
		t.Errorf("warm evaluations %d != analytic polish count %d",
			warm.Evaluations, polish.Evaluations)
	}
	if ga, err := Genetic(mm, bs, GeneticOptions{}); err != nil {
		t.Fatal(err)
	} else if polish.Evaluations*10 > ga.Evaluations {
		t.Errorf("analytic polish %d evals not 10x below the GA's %d",
			polish.Evaluations, ga.Evaluations)
	}
	if warm.Access.Total != cold.Access.Total || warm.Dataflow != cold.Dataflow {
		t.Errorf("cached optimum diverged: %+v vs %+v", warm, cold)
	}
}

// TestEvalCacheEntriesEqualMissesConcurrent drives mixed hit/miss traffic
// from racing goroutines (run under -race in CI) and asserts the accounting
// invariant the docs promise: every miss inserts exactly one entry into
// exactly one tier, so Entries == Misses regardless of publish timing, and
// Hits + Misses equals the total evaluation count.
func TestEvalCacheEntriesEqualMissesConcurrent(t *testing.T) {
	mm := op.MatMul{Name: "conc", M: 24, K: 18, L: 20}
	dfs := cacheTestDataflows(t, mm)
	cache := NewEvalCache()
	const goroutines = 8
	const opsEach = 4000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				df := dfs[rng.Intn(len(dfs))]
				if a, _ := cache.Evaluate(mm, df); a != cost.MustEvaluate(mm, df) {
					t.Errorf("cached access for %v diverged", df)
					return
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()

	st := cache.Stats()
	if st.Entries != st.Misses {
		t.Errorf("Entries %d != Misses %d after concurrent mixed load", st.Entries, st.Misses)
	}
	if st.Hits+st.Misses != goroutines*opsEach {
		t.Errorf("Hits %d + Misses %d != %d evaluations", st.Hits, st.Misses, goroutines*opsEach)
	}
	if st.Misses > int64(len(dfs)) {
		t.Errorf("Misses %d exceed the %d distinct candidates", st.Misses, len(dfs))
	}

	// Complete the population sequentially, then a full revisit must be all
	// hits, add no entries, and keep Entries == Misses == |population|.
	for _, df := range dfs {
		cache.Evaluate(mm, df)
	}
	filled := cache.Stats()
	if filled.Entries != filled.Misses || filled.Misses != int64(len(dfs)) {
		t.Errorf("after full fill: Entries %d, Misses %d, want both %d", filled.Entries, filled.Misses, len(dfs))
	}
	for _, df := range dfs {
		if _, hit := cache.Evaluate(mm, df); !hit {
			t.Fatalf("revisit of %v missed", df)
		}
	}
	if after := cache.Stats(); after.Entries != filled.Entries || after.Misses != filled.Misses {
		t.Errorf("revisit changed entries/misses: %+v → %+v", filled, after)
	}
}

// TestEvalKeyShardDistribution guards the shard hash against the failure
// mode that motivated its splitmix-style finalizer: `h & 63` reads only the
// low 6 bits, and a fold with no avalanche passes power-of-two tile grids
// (every field sharing low zero bits) straight through, collapsing real
// populations onto a handful of shards. Each per-shape key population —
// sub-caches shard independently, so distribution matters per shape — must
// spread evenly: a chi-square statistic over 64 bins with ~63 expected under
// uniformity must stay below a generous 200, and no shard may sit empty on
// populations much larger than the shard count.
func TestEvalKeyShardDistribution(t *testing.T) {
	populations := map[string][]evalKey{}

	add := func(name string, mm op.MatMul) {
		for _, df := range cacheTestDataflows(t, mm) {
			populations[name] = append(populations[name], evalKey{
				tm: int32(df.Tiling.TM), tk: int32(df.Tiling.TK), tl: int32(df.Tiling.TL),
				oi: orderIndex(df.Order),
			})
		}
	}
	// Square power-of-two op: every tile a power of two (or off-by-one) —
	// the population a carry-free fold collapses.
	add("square-pow2", op.MatMul{Name: "sq", M: 64, K: 64, L: 64})
	// Rectangular ops with skewed tile grids, the Fig. 9 sweep shapes
	// (reduced) and the serving benchmark's hot shape.
	add("rect", op.MatMul{Name: "ab", M: 128, K: 32, L: 64})
	add("fig9-proj", op.MatMul{Name: "proj", M: 256, K: 192, L: 192})
	add("fig9-qkt", op.MatMul{Name: "qkt", M: 256, K: 32, L: 256})
	add("serve", op.MatMul{Name: "bench", M: 32, K: 24, L: 28})

	for name, keys := range populations {
		var counts [evalCacheShards]int
		for _, k := range keys {
			counts[k.shard()]++
		}
		exp := float64(len(keys)) / evalCacheShards
		chi2 := 0.0
		empty := 0
		for _, c := range counts {
			d := float64(c) - exp
			chi2 += d * d / exp
			if c == 0 {
				empty++
			}
		}
		t.Logf("%s: %d keys, chi2 %.1f, %d empty shards", name, len(keys), chi2, empty)
		if chi2 > 200 {
			t.Errorf("%s: shard distribution chi2 %.1f over %d keys (expected ≈63 under uniformity, bound 200): %v", name, chi2, len(keys), counts)
		}
		if len(keys) >= 8*evalCacheShards && empty > 0 {
			t.Errorf("%s: %d of %d shards empty across %d keys", name, empty, evalCacheShards, len(keys))
		}
	}
}

// TestEvalHotPathZeroAllocs pins the lock-free hit path's allocation budget
// at zero: key construction, snapshot load, map read and counter bump must
// all stay on the stack.
func TestEvalHotPathZeroAllocs(t *testing.T) {
	mm := op.MatMul{Name: "alloc", M: 16, K: 12, L: 8}
	cache := NewEvalCache()
	dfs := cacheTestDataflows(t, mm)
	for _, df := range dfs {
		cache.Evaluate(mm, df) // warm: insert...
		cache.Evaluate(mm, df) // ...and pressure the overlay toward publish
	}
	df := dfs[len(dfs)/2]
	if _, hit := cache.Evaluate(mm, df); !hit {
		t.Fatal("warmed key missed")
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, hit := cache.Evaluate(mm, df); !hit {
			t.Fatal("warmed key missed")
		}
	}); n != 0 {
		t.Fatalf("cached-hit evaluation allocates %v objects, want 0", n)
	}
}

// TestEvalCachePublishMovesResidue checks the read-pressure publication
// rule: entries stranded in the mutex-guarded dirty overlay migrate to the
// lock-free snapshot once enough reads land on them, so steady-state
// traffic stops taking the mutex entirely.
func TestEvalCachePublishMovesResidue(t *testing.T) {
	mm := op.MatMul{Name: "pub", M: 3, K: 3, L: 3}
	cache := NewEvalCache()
	df := dataflow.Must(mm, dataflow.AllOrders()[0], dataflow.MustTiling(mm, 1, 1, 1))
	cache.Evaluate(mm, df)
	oc := cache.opCache(opShape{3, 3, 3})
	sh := &oc.shards[(evalKey{tm: 1, tk: 1, tl: 1, oi: orderIndex(dataflow.AllOrders()[0])}).shard()]
	for i := 0; i < publishPressure+1; i++ {
		if _, hit := cache.Evaluate(mm, df); !hit {
			t.Fatal("warmed key missed")
		}
	}
	snap := sh.snap.Load()
	if snap == nil || len(*snap) == 0 {
		t.Fatal("read pressure did not publish the dirty overlay into the snapshot")
	}
	sh.mu.Lock()
	residue := len(sh.dirty)
	sh.mu.Unlock()
	if residue != 0 {
		t.Fatalf("dirty overlay still holds %d entries after publish", residue)
	}
}
