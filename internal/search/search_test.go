package search

import (
	"testing"

	"fusecu/internal/dataflow"
	"fusecu/internal/op"
)

func TestExhaustiveFindsIdealWithHugeBuffer(t *testing.T) {
	mm := op.MatMul{M: 8, K: 6, L: 10}
	r, err := Exhaustive(mm, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Access.Total != mm.IdealMA() {
		t.Fatalf("Total = %d, want %d", r.Access.Total, mm.IdealMA())
	}
	if r.Method != "exhaustive" {
		t.Fatalf("method = %q", r.Method)
	}
	if r.Evaluations == 0 {
		t.Fatal("no evaluations recorded")
	}
}

func TestExhaustiveRespectsBuffer(t *testing.T) {
	mm := op.MatMul{M: 8, K: 6, L: 10}
	r, err := Exhaustive(mm, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Access.Footprint > 20 {
		t.Fatalf("footprint %d > 20", r.Access.Footprint)
	}
}

func TestExhaustiveInfeasible(t *testing.T) {
	if _, err := Exhaustive(op.MatMul{M: 4, K: 4, L: 4}, 2); err == nil {
		t.Fatal("buffer of 2 elements accepted")
	}
}

func TestExhaustiveRejectsInvalid(t *testing.T) {
	if _, err := Exhaustive(op.MatMul{M: -1, K: 1, L: 1}, 100); err == nil {
		t.Fatal("invalid matmul accepted")
	}
}

func TestTileGridContents(t *testing.T) {
	g := TileGrid(24)
	want := map[int]bool{1: true, 2: true, 3: true, 4: true, 6: true, 8: true, 12: true, 16: true, 24: true}
	if len(g) != len(want) {
		t.Fatalf("TileGrid(24) = %v", g)
	}
	for _, v := range g {
		if !want[v] {
			t.Fatalf("unexpected grid value %d in %v", v, g)
		}
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatal("grid not strictly sorted")
		}
	}
}

func TestTileGridExtentOne(t *testing.T) {
	g := TileGrid(1)
	if len(g) != 1 || g[0] != 1 {
		t.Fatalf("TileGrid(1) = %v", g)
	}
}

func TestCoarseMatchesExhaustiveOnDivisorFriendlyShapes(t *testing.T) {
	// Power-of-two shapes put the optimum on the coarse lattice.
	mm := op.MatMul{M: 16, K: 8, L: 16}
	for _, bs := range []int64{16, 64, 256, 1024} {
		full, err := Exhaustive(mm, bs)
		if err != nil {
			continue
		}
		coarse, err := ExhaustiveCoarse(mm, bs)
		if err != nil {
			t.Fatalf("BS=%d: %v", bs, err)
		}
		// The coarse lattice can miss boundary tile values — the very gap
		// Fig. 9 shows between DAT points and the principle line — but must
		// stay in the same ballpark.
		if coarse.Access.Total > full.Access.Total*3/2 {
			t.Errorf("BS=%d: coarse %d much worse than full %d", bs, coarse.Access.Total, full.Access.Total)
		}
		if coarse.Evaluations >= full.Evaluations {
			t.Errorf("BS=%d: coarse used %d evals, full %d", bs, coarse.Evaluations, full.Evaluations)
		}
	}
}

func TestGeneticDeterministicForSeed(t *testing.T) {
	mm := op.MatMul{M: 64, K: 48, L: 96}
	opts := GeneticOptions{Seed: 42, Population: 32, Generations: 20}
	a, err := Genetic(mm, 2048, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Genetic(mm, 2048, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dataflow != b.Dataflow || a.Access.Total != b.Access.Total {
		t.Fatalf("nondeterministic GA: %v vs %v", a.Dataflow, b.Dataflow)
	}
}

func TestGeneticFeasibleAndNearOptimal(t *testing.T) {
	mm := op.MatMul{M: 16, K: 12, L: 8}
	for _, bs := range []int64{24, 64, 144, 400} {
		want, err := Exhaustive(mm, bs)
		if err != nil {
			continue
		}
		got, err := Genetic(mm, bs, GeneticOptions{Seed: 3})
		if err != nil {
			t.Fatalf("BS=%d: %v", bs, err)
		}
		if got.Access.Footprint > bs {
			t.Fatalf("BS=%d: infeasible GA result", bs)
		}
		// GA must come within 25% of the optimum on these small spaces.
		if got.Access.Total > want.Access.Total*5/4 {
			t.Errorf("BS=%d: GA %d, optimum %d", bs, got.Access.Total, want.Access.Total)
		}
	}
}

func TestGeneticErrors(t *testing.T) {
	if _, err := Genetic(op.MatMul{M: 0, K: 1, L: 1}, 100, GeneticOptions{}); err == nil {
		t.Error("invalid matmul accepted")
	}
	if _, err := Genetic(op.MatMul{M: 4, K: 4, L: 4}, 2, GeneticOptions{}); err == nil {
		t.Error("impossible buffer accepted")
	}
}

func TestOptimizeEntryPoint(t *testing.T) {
	mm := op.MatMul{M: 128, K: 64, L: 128}
	r, err := Optimize(mm, 4096, GeneticOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Access.Footprint > 4096 {
		t.Fatal("infeasible result")
	}
	if r.Access.Total <= 0 {
		t.Fatal("nonsensical MA")
	}
}

func TestGeneticOptionsDefaults(t *testing.T) {
	o := GeneticOptions{}.withDefaults()
	if o.Population != 64 || o.Generations != 60 || o.Seed != 1 || o.Elitism != 4 {
		t.Fatalf("defaults = %+v", o)
	}
	small := GeneticOptions{Population: 4, Elitism: 10}.withDefaults()
	if small.Elitism > small.Population/2 {
		t.Fatalf("elitism %d exceeds half of population %d", small.Elitism, small.Population)
	}
}

func TestOrdersUntouchedByClamp(t *testing.T) {
	// Regression guard: Clamp must preserve untiled extremes the GA jumps to.
	mm := op.MatMul{M: 7, K: 9, L: 5}
	ti := dataflow.Tiling{TM: 100, TK: 9, TL: 1}.Clamp(mm)
	if ti.TM != 7 || ti.TK != 9 || ti.TL != 1 {
		t.Fatalf("Clamp = %v", ti)
	}
}

func BenchmarkGenetic(b *testing.B) {
	mm := op.MatMul{M: 1024, K: 768, L: 768}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Genetic(mm, 512*1024, GeneticOptions{Seed: int64(i + 1), Population: 32, Generations: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustiveCoarse(b *testing.B) {
	mm := op.MatMul{M: 256, K: 128, L: 256}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ExhaustiveCoarse(mm, 16*1024); err != nil {
			b.Fatal(err)
		}
	}
}
