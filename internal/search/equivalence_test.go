package search

import (
	"math"
	"math/rand"
	"testing"

	"fusecu/internal/op"
)

// engineCase runs one engine variant against a fixed (op, buffer) input.
type engineCase struct {
	name string
	run  func(op.MatMul, int64) (Result, error)
}

// prunedAndParallelEngines lists every optimized exhaustive variant that
// must reproduce ReferenceExhaustive bit for bit. cache is shared across
// calls when non-nil.
func exhaustiveVariants(cache *EvalCache) []engineCase {
	return []engineCase{
		{"pruned", Exhaustive},
		{"pruned-cached", func(mm op.MatMul, bs int64) (Result, error) { return ExhaustiveCached(mm, bs, cache) }},
		{"parallel-2", func(mm op.MatMul, bs int64) (Result, error) { return ParallelExhaustive(mm, bs, 2, nil) }},
		{"parallel-5-cached", func(mm op.MatMul, bs int64) (Result, error) { return ParallelExhaustive(mm, bs, 5, cache) }},
		{"parallel-auto", func(mm op.MatMul, bs int64) (Result, error) { return ParallelExhaustive(mm, bs, 0, nil) }},
	}
}

func coarseVariants(cache *EvalCache) []engineCase {
	return []engineCase{
		{"pruned", ExhaustiveCoarse},
		{"pruned-cached", func(mm op.MatMul, bs int64) (Result, error) { return ExhaustiveCoarseCached(mm, bs, cache) }},
		{"parallel-3", func(mm op.MatMul, bs int64) (Result, error) { return ParallelCoarse(mm, bs, 3, nil) }},
		{"parallel-3-cached", func(mm op.MatMul, bs int64) (Result, error) { return ParallelCoarse(mm, bs, 3, cache) }},
	}
}

// checkEquivalent asserts got reproduces the reference optimum exactly:
// same dataflow (including the deterministic tie-break), same access
// breakdown, and the same total candidate-visit count, with cache hits
// never hidden inside Evaluations.
func checkEquivalent(t *testing.T, label string, ref, got Result) {
	t.Helper()
	if got.Dataflow != ref.Dataflow {
		t.Errorf("%s: dataflow %v, reference %v", label, got.Dataflow, ref.Dataflow)
	}
	if got.Access != ref.Access {
		t.Errorf("%s: access %+v, reference %+v", label, got.Access, ref.Access)
	}
	if got.Evaluations+got.CacheHits != ref.Evaluations {
		t.Errorf("%s: evals %d + hits %d != reference evals %d",
			label, got.Evaluations, got.CacheHits, ref.Evaluations)
	}
}

func TestExhaustiveEnginesMatchReferenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cache := NewEvalCache()
	for trial := 0; trial < 25; trial++ {
		mm := op.MatMul{
			Name: "rand",
			M:    rng.Intn(9) + 1,
			K:    rng.Intn(9) + 1,
			L:    rng.Intn(9) + 1,
		}
		// Buffers from infeasible through unconstrained.
		maxFP := mm.SizeA() + mm.SizeB() + mm.SizeC()
		for _, bs := range []int64{2, 3, 7, maxFP / 2, maxFP, maxFP * 2} {
			ref, refErr := ReferenceExhaustive(mm, bs)
			for _, eng := range exhaustiveVariants(cache) {
				got, err := eng.run(mm, bs)
				if (err == nil) != (refErr == nil) {
					t.Fatalf("%v BS=%d %s: err=%v, reference err=%v", mm, bs, eng.name, err, refErr)
				}
				if refErr != nil {
					continue
				}
				checkEquivalent(t, eng.name, ref, got)
			}
		}
	}
}

func TestCoarseEnginesMatchReferenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cache := NewEvalCache()
	for trial := 0; trial < 20; trial++ {
		mm := op.MatMul{
			Name: "rand",
			M:    rng.Intn(60) + 1,
			K:    rng.Intn(60) + 1,
			L:    rng.Intn(60) + 1,
		}
		maxFP := mm.SizeA() + mm.SizeB() + mm.SizeC()
		for _, bs := range []int64{2, 5, 16, maxFP / 3, maxFP * 2} {
			ref, refErr := ReferenceCoarse(mm, bs)
			for _, eng := range coarseVariants(cache) {
				got, err := eng.run(mm, bs)
				if (err == nil) != (refErr == nil) {
					t.Fatalf("%v BS=%d %s: err=%v, reference err=%v", mm, bs, eng.name, err, refErr)
				}
				if refErr != nil {
					continue
				}
				checkEquivalent(t, eng.name, ref, got)
			}
		}
	}
}

// TestDecodeShapeEnginesMatchReference pins block-path bit-identity off the
// square-ish Table-II shapes: decode-style operators — M=1 GEMV, tiny-K MoE
// projection, small-L GQA score — degenerate one or two lattice dimensions
// to a handful of tiles, exercising block fills that end mid-span, orders
// whose inner loops never trip, and prune breaks on the first tile. Every
// optimized variant must still reproduce the frozen references exactly.
func TestDecodeShapeEnginesMatchReference(t *testing.T) {
	shapes := []op.MatMul{
		{Name: "gemv", M: 1, K: 48, L: 40},
		{Name: "moe-tinyk", M: 24, K: 2, L: 56},
		{Name: "gqa-smalll", M: 40, K: 36, L: 3},
	}
	for _, mm := range shapes {
		maxFP := mm.SizeA() + mm.SizeB() + mm.SizeC()
		buffers := []int64{3, 17, maxFP / 4, maxFP * 2}

		// Full lattice via the exhaustive variants on a shrunken copy (the
		// full grid over K=48 stays cheap because M or L is degenerate).
		exCache := NewEvalCache()
		exact := mm
		if exact.M > 8 {
			exact.M = 8
		}
		if exact.K > 8 {
			exact.K = 8
		}
		if exact.L > 8 {
			exact.L = 8
		}
		for _, bs := range buffers {
			ref, refErr := ReferenceExhaustive(exact, bs)
			for _, eng := range exhaustiveVariants(exCache) {
				got, err := eng.run(exact, bs)
				if (err == nil) != (refErr == nil) {
					t.Fatalf("%v BS=%d %s: err=%v, reference err=%v", exact, bs, eng.name, err, refErr)
				}
				if refErr != nil {
					continue
				}
				checkEquivalent(t, exact.Name+"/"+eng.name, ref, got)
			}
		}

		// Coarse lattice at the real decode dimensions.
		coCache := NewEvalCache()
		for _, bs := range buffers {
			ref, refErr := ReferenceCoarse(mm, bs)
			for _, eng := range coarseVariants(coCache) {
				got, err := eng.run(mm, bs)
				if (err == nil) != (refErr == nil) {
					t.Fatalf("%v BS=%d %s: err=%v, reference err=%v", mm, bs, eng.name, err, refErr)
				}
				if refErr != nil {
					continue
				}
				checkEquivalent(t, mm.Name+"/"+eng.name, ref, got)
			}
		}
	}
}

func TestEvalCacheServesRepeatSweepsEntirely(t *testing.T) {
	mm := op.MatMul{M: 12, K: 10, L: 8}
	cache := NewEvalCache()

	cold, err := ExhaustiveCached(mm, 1<<20, cache)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 {
		t.Errorf("cold run reported %d hits", cold.CacheHits)
	}
	if cold.Evaluations == 0 {
		t.Fatal("cold run reported no evaluations")
	}

	// A second identical run must be served entirely from the cache without
	// changing the optimum or the visit count.
	warm, err := ExhaustiveCached(mm, 1<<20, cache)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Evaluations != 0 {
		t.Errorf("warm run invoked the cost model %d times", warm.Evaluations)
	}
	if warm.CacheHits != cold.Evaluations {
		t.Errorf("warm hits %d != cold evals %d", warm.CacheHits, cold.Evaluations)
	}
	if warm.Dataflow != cold.Dataflow || warm.Access != cold.Access {
		t.Errorf("cache changed the optimum: %+v vs %+v", warm, cold)
	}

	// A smaller buffer revisits a subset of cached candidates: still zero
	// fresh evaluations, fewer visits, and footprint filtering intact.
	small, err := ExhaustiveCached(mm, 40, cache)
	if err != nil {
		t.Fatal(err)
	}
	if small.Evaluations != 0 {
		t.Errorf("subset run invoked the cost model %d times", small.Evaluations)
	}
	if small.CacheHits >= warm.CacheHits {
		t.Errorf("subset visits %d not below full-sweep visits %d", small.CacheHits, warm.CacheHits)
	}
	if small.Access.Footprint > 40 {
		t.Errorf("cached engine returned infeasible footprint %d", small.Access.Footprint)
	}

	s := cache.Stats()
	if s.Misses != cold.Evaluations || s.Entries != s.Misses {
		t.Errorf("stats %+v inconsistent with cold evals %d", s, cold.Evaluations)
	}
	if s.Hits != warm.CacheHits+small.CacheHits {
		t.Errorf("stats hits %d != %d + %d", s.Hits, warm.CacheHits, small.CacheHits)
	}
}

func TestGeneticCacheDoesNotAlterResult(t *testing.T) {
	mm := op.MatMul{M: 48, K: 36, L: 24}
	opts := GeneticOptions{Seed: 9, Population: 24, Generations: 12}
	plain, err := Genetic(mm, 1024, opts)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewEvalCache()
	for run := 0; run < 2; run++ {
		cached, err := GeneticCached(mm, 1024, opts, cache)
		if err != nil {
			t.Fatal(err)
		}
		if cached.Dataflow != plain.Dataflow || cached.Access != plain.Access {
			t.Fatalf("run %d: cache altered the GA result: %+v vs %+v", run, cached, plain)
		}
		if cached.Evaluations+cached.CacheHits != plain.Evaluations {
			t.Fatalf("run %d: evals %d + hits %d != uncached evals %d",
				run, cached.Evaluations, cached.CacheHits, plain.Evaluations)
		}
	}
	// The second run's fitness stream is warm: the GA trajectory repeats, so
	// nearly every visit must be a hit (the trajectory itself revisits
	// genomes, so even the first run records some).
	warm, err := GeneticCached(mm, 1024, opts, cache)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Evaluations != 0 {
		t.Errorf("fully warmed GA still invoked the cost model %d times", warm.Evaluations)
	}
}

func TestGeneticSeedDeterminismFullResult(t *testing.T) {
	mm := op.MatMul{M: 64, K: 48, L: 96}
	opts := GeneticOptions{Seed: 42, Population: 32, Generations: 20}
	a, err := Genetic(mm, 2048, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Genetic(mm, 2048, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed produced different Results: %+v vs %+v", a, b)
	}
	c, err := Genetic(mm, 2048, GeneticOptions{Seed: -42, Population: 32, Generations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if c.Evaluations == 0 {
		t.Fatal("negative seed run recorded no evaluations")
	}
}

func TestGeneticOptionsElitismSentinel(t *testing.T) {
	// Zero value keeps the historical defaults.
	o := GeneticOptions{}.withDefaults()
	if o.Population != 64 || o.Generations != 60 || o.Seed != 1 || o.Elitism != 4 {
		t.Fatalf("defaults = %+v", o)
	}
	// Negative Elitism is the explicit no-elitism request the zero value
	// could never express.
	if got := (GeneticOptions{Elitism: -1}).withDefaults().Elitism; got != 0 {
		t.Fatalf("Elitism -1 → %d, want 0", got)
	}
	// No-elitism runs must still work end to end.
	mm := op.MatMul{M: 16, K: 12, L: 8}
	r, err := Genetic(mm, 200, GeneticOptions{Seed: 5, Population: 16, Generations: 10, Elitism: -1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Access.Footprint > 200 {
		t.Fatalf("no-elitism run infeasible: %+v", r.Access)
	}
}

func TestInfeasibleFitnessSaturatesInsteadOfWrapping(t *testing.T) {
	// Regression for the penalty total + (footprint-buffer)·1024: with a
	// huge-operator footprint the product alone exceeds int64. The old
	// expression wrapped negative, ranking the infeasible genome above
	// every feasible one.
	hugeOverflow := int64(1) << 53 // ·1024 = 2^63 > MaxInt64
	if old := int64(123) + hugeOverflow*1024; old >= 0 {
		t.Fatalf("expected the unchecked expression to wrap, got %d", old)
	}
	if got := infeasibleFitness(123, hugeOverflow); got != math.MaxInt64 {
		t.Fatalf("product overflow: fitness = %d, want saturation", got)
	}
	// Addition overflow saturates too.
	if got := infeasibleFitness(math.MaxInt64-10, 1); got != math.MaxInt64 {
		t.Fatalf("sum overflow: fitness = %d, want saturation", got)
	}
	// Small overflows keep the original proportional-pressure semantics.
	if got := infeasibleFitness(1000, 3); got != 1000+3*1024 {
		t.Fatalf("small overflow: fitness = %d", got)
	}
	// Saturated fitness must rank below (worse than) any feasible total.
	if infeasibleFitness(1, hugeOverflow) <= (int64(1) << 62) {
		t.Fatal("saturated penalty does not dominate feasible totals")
	}
}

func TestGeneticHugeOperatorStaysFeasible(t *testing.T) {
	// Huge-op regression: M·K = 2^54, so an untiled genome's footprint
	// alone makes (footprint-buffer)·1024 overflow int64. The dimensions
	// are chosen so every representable traffic value still fits int64
	// (M·K·L = 2^60), keeping the run clean under -tags=fusecuchecks.
	mm := op.MatMul{Name: "huge", M: 1 << 27, K: 1 << 27, L: 1 << 6}
	if got := infeasibleFitness(0, mm.SizeA()-4); got != math.MaxInt64 {
		t.Fatalf("huge-op penalty did not saturate: %d", got)
	}
	r, err := Genetic(mm, 1<<20, GeneticOptions{Seed: 3, Population: 16, Generations: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Access.Footprint > 1<<20 {
		t.Fatalf("huge-op GA returned infeasible footprint %d", r.Access.Footprint)
	}
	if r.Access.Total < mm.IdealMA() {
		t.Fatalf("huge-op GA total %d below ideal %d", r.Access.Total, mm.IdealMA())
	}
}
