package search

import (
	"fmt"

	"fusecu/internal/cost"
	"fusecu/internal/dataflow"
	"fusecu/internal/errs"
	"fusecu/internal/op"
)

// This file freezes the original single-threaded engines exactly as first
// written: no footprint pruning, no evaluation cache, no workers. They are
// the ground truth the optimized engines (Exhaustive, ExhaustiveCoarse,
// ParallelExhaustive, ParallelCoarse) are property-tested bit-identical
// against, and the baseline the BENCH_search.json speedups are measured
// from. Do not optimize them.

// ReferenceExhaustive enumerates all 6 loop orders × all integer tilings
// with a per-candidate feasibility filter and no pruning — the unoptimized
// reference for Exhaustive.
func ReferenceExhaustive(mm op.MatMul, bufferSize int64) (Result, error) {
	if err := mm.Validate(); err != nil {
		return Result{}, err
	}
	var (
		best  Result
		found bool
	)
	for _, o := range dataflow.AllOrders() {
		for tm := 1; tm <= mm.M; tm++ {
			for tk := 1; tk <= mm.K; tk++ {
				for tl := 1; tl <= mm.L; tl++ {
					df := dataflow.Must(mm, o, dataflow.MustTiling(mm, tm, tk, tl))
					if df.Tiling.Footprint() > bufferSize {
						continue
					}
					a := cost.MustEvaluate(mm, df)
					best.Evaluations++
					if !found || a.Total < best.Access.Total {
						found = true
						best.Dataflow, best.Access = df, a
					}
				}
			}
		}
	}
	if !found {
		return Result{}, fmt.Errorf("search: no feasible dataflow for %v in buffer %d: %w", mm, bufferSize, errs.ErrInfeasible)
	}
	best.Method = "exhaustive"
	return best, nil
}

// ReferenceCoarse enumerates all loop orders over the TileGrid lattice with
// a per-candidate feasibility filter and no pruning — the unoptimized
// reference for ExhaustiveCoarse.
func ReferenceCoarse(mm op.MatMul, bufferSize int64) (Result, error) {
	if err := mm.Validate(); err != nil {
		return Result{}, err
	}
	gm, gk, gl := TileGrid(mm.M), TileGrid(mm.K), TileGrid(mm.L)
	var (
		best  Result
		found bool
	)
	for _, o := range dataflow.AllOrders() {
		for _, tm := range gm {
			for _, tk := range gk {
				for _, tl := range gl {
					df := dataflow.Must(mm, o, dataflow.MustTiling(mm, tm, tk, tl))
					if df.Tiling.Footprint() > bufferSize {
						continue
					}
					a := cost.MustEvaluate(mm, df)
					best.Evaluations++
					if !found || a.Total < best.Access.Total {
						found = true
						best.Dataflow, best.Access = df, a
					}
				}
			}
		}
	}
	if !found {
		return Result{}, fmt.Errorf("search: no feasible dataflow for %v in buffer %d: %w", mm, bufferSize, errs.ErrInfeasible)
	}
	best.Method = "exhaustive-coarse"
	return best, nil
}
