package search

import (
	"testing"

	"fusecu/internal/core"
	"fusecu/internal/fusion"
	"fusecu/internal/op"
)

func attnChain(t *testing.T, seq, dh int) *op.Chain {
	t.Helper()
	c, err := op.NewChain("attn",
		op.MatMul{Name: "QKt", M: seq, K: dh, L: seq},
		op.MatMul{Name: "SV", M: seq, K: seq, L: dh},
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOptimizeChainFusesAttention(t *testing.T) {
	c := attnChain(t, 256, 32)
	bs := int64(32 * 1024)
	r, err := OptimizeChain(c, bs, GeneticOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.FusedPairs) != 1 || r.FusedPairs[0] != 0 {
		t.Fatalf("fused pairs = %v", r.FusedPairs)
	}
	unfused, err := UnfusedChainMA(c, bs, GeneticOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalMA >= unfused {
		t.Fatalf("search fusion did not help: %d vs %d", r.TotalMA, unfused)
	}
	if r.Evaluations <= 0 {
		t.Fatal("no evaluations recorded")
	}
}

// The search-based chain optimizer can never beat the principle planner —
// the principles construct the optimum the search gropes toward — and must
// land close to it on attention chains.
func TestChainSearchNeverBeatsPrinciples(t *testing.T) {
	cases := []struct {
		seq, dh int
		bs      int64
	}{
		{256, 32, 16 * 1024},
		{256, 32, 64 * 1024},
		{512, 64, 64 * 1024},
		{512, 64, 512 * 1024},
	}
	for _, tc := range cases {
		c := attnChain(t, tc.seq, tc.dh)
		plan, err := core.PlanChain(c, tc.bs)
		if err != nil {
			t.Fatal(err)
		}
		r, err := OptimizeChain(c, tc.bs, GeneticOptions{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if r.TotalMA < plan.TotalMA {
			t.Errorf("seq=%d bs=%d: search %d beat principles %d", tc.seq, tc.bs, r.TotalMA, plan.TotalMA)
		}
		if r.TotalMA > plan.TotalMA*6/5 {
			t.Errorf("seq=%d bs=%d: search %d far from principles %d", tc.seq, tc.bs, r.TotalMA, plan.TotalMA)
		}
	}
}

func TestOptimizeChainSingleOp(t *testing.T) {
	c, _ := op.NewChain("one", op.MatMul{M: 64, K: 64, L: 64})
	r, err := OptimizeChain(c, 4096, GeneticOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.FusedPairs) != 0 {
		t.Fatal("single op cannot fuse")
	}
}

func TestOptimizeChainInvalid(t *testing.T) {
	bad := &op.Chain{Name: "bad", Ops: []op.MatMul{{M: 2, K: 2, L: 2}, {M: 3, K: 2, L: 2}}, Elementwise: make([]op.Elementwise, 1)}
	if _, err := OptimizeChain(bad, 1024, GeneticOptions{}); err == nil {
		t.Fatal("invalid chain accepted")
	}
}

func TestSearchFusedRespectsBuffer(t *testing.T) {
	pair, err := fusion.NewPair(
		op.MatMul{M: 128, K: 32, L: 128},
		op.MatMul{M: 128, K: 128, L: 32},
	)
	if err != nil {
		t.Fatal(err)
	}
	ma, evals, ok := SearchFused(pair, 8*1024)
	if !ok {
		t.Fatal("no fused dataflow found")
	}
	if ma < pair.FusedIdealMA() {
		t.Fatalf("searched MA %d below the fused ideal %d", ma, pair.FusedIdealMA())
	}
	if evals <= 0 {
		t.Fatal("no evaluations counted")
	}
	// The smallest fused footprint is five 1×1 tiles; below that nothing
	// fits.
	if _, _, ok := SearchFused(pair, 4); ok {
		t.Fatal("4-element buffer accepted a fused dataflow")
	}
	if _, _, ok := SearchFused(pair, 5); !ok {
		t.Fatal("5-element buffer should fit the minimal tile-fusion dataflow")
	}
}

// With a huge buffer the searched fused chain reaches the fused ideal, like
// the principles do.
func TestChainSearchReachesFusedIdealLargeBuffer(t *testing.T) {
	c := attnChain(t, 128, 32)
	r, err := OptimizeChain(c, 1<<20, GeneticOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pair, _ := fusion.NewPair(c.Ops[0], c.Ops[1])
	if r.TotalMA != pair.FusedIdealMA() {
		t.Fatalf("TotalMA = %d, want fused ideal %d", r.TotalMA, pair.FusedIdealMA())
	}
}

func BenchmarkOptimizeChain(b *testing.B) {
	c, err := op.NewChain("attn",
		op.MatMul{Name: "QKt", M: 1024, K: 64, L: 1024},
		op.MatMul{Name: "SV", M: 1024, K: 1024, L: 64},
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OptimizeChain(c, 512*1024, GeneticOptions{Seed: int64(i + 1), Population: 32, Generations: 20}); err != nil {
			b.Fatal(err)
		}
	}
}
