package search

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"fusecu/internal/cost"
	"fusecu/internal/dataflow"
	"fusecu/internal/errs"
	"fusecu/internal/faultinject"
	"fusecu/internal/invariant"
	"fusecu/internal/op"
)

// SiteEval is the fault-injection point visited once per candidate cost
// evaluation, across every engine (enumeration and genetic). Chaos tests arm
// it via faultinject.Activate to prove the panic-containment boundaries
// below; the disarmed cost is one atomic load per visit.
const SiteEval = "search.eval"

// This file is the shared enumeration core behind Exhaustive,
// ExhaustiveCoarse and their Parallel variants. All of them walk the same
// candidate lattice (tile triples × loop orders) and must return the exact
// result the unoptimized reference engines return, so the fast paths here
// lean on two properties the tests pin down:
//
//   - Footprint monotonicity: Tiling.Footprint() = T_M·T_K + T_K·T_L +
//     T_M·T_L is strictly increasing in each tile size for fixed others, so
//     once a candidate overflows the buffer every larger tile in the same
//     loop does too — the scan breaks instead of filtering per candidate.
//   - Canonical tie-break: among equal-MA optima the engines keep the
//     candidate with the smallest (order index, T_M, T_K, T_L) tuple, which
//     is exactly the first minimum the reference engines' order-major scan
//     encounters. This makes the optimum independent of enumeration order
//     and of how the parallel engines shard the lattice.
//
// Candidates flow through flat struct-of-arrays blocks (cost.Block) rather
// than one evaluation call per candidate: generation pushes (order, tile
// triple, footprint) rows into a reused block and a precompiled batch kernel
// (cost.BatchEval) prices the whole block per call. Nothing per candidate is
// validated, dispatched through an interface, or allocated — the reference
// engines' per-candidate construction overhead is exactly the regression
// this layout removes. Cache traffic is block-batched too: one lookupBulk
// and one insertBulk per flushed block, each paying one lock acquisition and
// at most one snapshot republish per touched shard.

// scanBlockSize is the candidate capacity of one struct-of-arrays scan
// block. 2048 rows keep the per-worker block under ~200 KiB (resident in
// L2) while amortizing the per-block cache round-trip to noise.
const scanBlockSize = 2048

// candKey identifies one enumeration candidate by its canonical
// coordinates, used to break MA ties deterministically.
type candKey struct {
	order, tm, tk, tl int
}

// less orders keys lexicographically by (order, tm, tk, tl).
func (k candKey) less(o candKey) bool {
	if k.order != o.order {
		return k.order < o.order
	}
	if k.tm != o.tm {
		return k.tm < o.tm
	}
	if k.tk != o.tk {
		return k.tk < o.tk
	}
	return k.tl < o.tl
}

// tileFootprint is Tiling.Footprint for a raw tile triple, evaluated before
// deciding whether the candidate is worth constructing at all.
func tileFootprint(tm, tk, tl int) int64 {
	return invariant.CheckedMul(int64(tm), int64(tk)) +
		invariant.CheckedMul(int64(tk), int64(tl)) +
		invariant.CheckedMul(int64(tm), int64(tl))
}

// fullRange returns the complete tile-size range [1, 2, …, n] of one
// dimension — the exhaustive engines' "grid".
func fullRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// evalDataflow routes one cost evaluation through the cache when present.
// The boolean reports a cache hit, which callers count separately from
// Evaluations so the paper's search-cost metric stays honest. This is the
// genetic engine's evaluation path; the enumeration scans batch through
// blockScanner instead — GA candidates are sparse, data-dependent points
// that gain nothing from blocking.
func evalDataflow(mm op.MatMul, df dataflow.Dataflow, cache *EvalCache) (cost.Access, bool) {
	if err := faultinject.Active().Fire(SiteEval); err != nil {
		// The evaluation path has no error return; the scan-level recover
		// boundary (guardScan / geneticCtx) converts this into ErrInternal.
		panic(err)
	}
	if cache != nil {
		return cache.Evaluate(mm, df)
	}
	return cost.MustEvaluate(mm, df), false
}

// panicError converts a recovered panic value into the taxonomy's
// ErrInternal class, preserving error payloads (so an injected fault stays
// classifiable as faultinject.ErrInjected).
func panicError(r any) error {
	if err, ok := r.(error); ok {
		return fmt.Errorf("search: panic during scan: %w: %w", err, errs.ErrInternal)
	}
	return fmt.Errorf("search: panic during scan: %v: %w", r, errs.ErrInternal)
}

// guardScan is the panic-containment boundary of the enumeration engines: a
// panic escaping fn — an injected fault or an organic bug in the cost model —
// becomes an ErrInternal error instead of killing the process (which, on the
// parallel path, a worker-goroutine panic otherwise would; net/http's own
// recover only shields the request goroutine).
func guardScan(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = panicError(r)
		}
	}()
	fn()
	return nil
}

// cancelCheck polls a context's Done channel at a coarse stride, so the hot
// enumeration loop pays one local counter increment per visit instead of a
// synchronized ctx.Err() call. Each goroutine owns its own cancelCheck (the
// counter is unsynchronized by design).
type cancelCheck struct {
	done <-chan struct{}
	n    uint32
}

func newCancelCheck(ctx context.Context) *cancelCheck {
	return &cancelCheck{done: ctx.Done()}
}

// stopped reports whether the scan's context was canceled, consulting the
// channel once every 1024 calls. A Background context has a nil Done channel
// and costs only the nil compare.
func (c *cancelCheck) stopped() bool {
	if c.done == nil {
		return false
	}
	c.n++
	if c.n&1023 != 0 {
		return false
	}
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// enumBest accumulates one scan's running optimum and cost counters.
type enumBest struct {
	best    Result
	bestKey candKey
	found   bool
}

// improves reports whether a candidate with the given MA total and canonical
// key would replace the running optimum — the allocation-free pre-check the
// block fold uses before constructing a Dataflow for the rare improvement.
func (e *enumBest) improves(total int64, key candKey) bool {
	return !e.found || total < e.best.Access.Total ||
		(total == e.best.Access.Total && key.less(e.bestKey))
}

// take replaces the running optimum when the candidate is strictly better,
// or ties on MA with a smaller canonical key.
func (e *enumBest) take(df dataflow.Dataflow, a cost.Access, key candKey) {
	if e.improves(a.Total, key) {
		e.found = true
		e.best.Dataflow, e.best.Access, e.bestKey = df, a, key
	}
}

// merge folds another scan's accumulator into e: counters add, optima
// compete under the canonical tie-break.
func (e *enumBest) merge(o enumBest) {
	e.best.Evaluations += o.best.Evaluations
	e.best.CacheHits += o.best.CacheHits
	if o.found {
		e.take(o.best.Dataflow, o.best.Access, o.bestKey)
	}
}

// blockScanner owns one goroutine's slice of a scan: a reused candidate
// block, the scratch for bulk cache traffic, and the chunk-local optimum.
// Generation pushes candidates; a full block flushes through the batch
// kernel (misses only, when a cache is present) and folds into acc. The
// steady state allocates nothing per candidate — every slice below is
// capacity-stable after the first flush.
type blockScanner struct {
	mm         op.MatMul
	bufferSize int64
	orders     []dataflow.Order
	kern       *cost.BatchEval
	oc         *opEvalCache // the operator's cache slice; nil for uncached scans
	oidx       []int32      // orders[i] → canonical order index for cache keys
	stop       *cancelCheck
	acc        *enumBest

	blk   *cost.Block
	keys  []evalKey
	miss  []int32
	stash []bulkEntry
	probe blockProbe
}

func newBlockScanner(mm op.MatMul, bufferSize int64, orders []dataflow.Order, kern *cost.BatchEval, cache *EvalCache, stop *cancelCheck, acc *enumBest) *blockScanner {
	s := &blockScanner{
		mm: mm, bufferSize: bufferSize, orders: orders,
		stop: stop, acc: acc,
		kern: kern,
		blk:  cost.NewBlock(scanBlockSize),
	}
	if cache != nil {
		// Resolve the shape's sub-cache once; flushes then probe shards
		// directly with compact per-candidate keys.
		s.oc = cache.opCache(opShape{mm.M, mm.K, mm.L})
		s.oidx = make([]int32, len(orders))
		for i, o := range orders {
			s.oidx[i] = orderIndex(o)
		}
		s.keys = make([]evalKey, 0, scanBlockSize)
		s.miss = make([]int32, 0, scanBlockSize)
		s.stash = make([]bulkEntry, 0, scanBlockSize)
	}
	return s
}

// push appends one candidate, firing the per-visit fault-injection site the
// chaos tests schedule by visit ordinal, and flushes when the block fills.
// Callers run inside guardScan, which converts injected panics (and organic
// cost-model bugs surfacing in the batched flush) into ErrInternal.
func (s *blockScanner) push(oi, tm, tk, tl int, foot int64) {
	if err := faultinject.Active().Fire(SiteEval); err != nil {
		panic(err)
	}
	s.blk.Push(uint8(oi), int32(tm), int32(tk), int32(tl), foot)
	if s.blk.Full() {
		s.flush()
	}
}

// flush prices the buffered candidates — whole-block through the kernel
// without a cache; bulk-probe then miss-only kernel passes with one — and
// folds them into the running optimum. A Dataflow is constructed only when a
// candidate actually improves the optimum, so the per-candidate path stays
// free of validation and allocation.
func (s *blockScanner) flush() {
	n := s.blk.Len()
	if n == 0 {
		return
	}
	if s.oc == nil {
		s.kern.EvalBlock(s.blk)
		s.acc.best.Evaluations += int64(n)
	} else {
		s.keys = s.keys[:0]
		for i := 0; i < n; i++ {
			s.keys = append(s.keys, evalKey{
				tm: s.blk.TM[i], tk: s.blk.TK[i], tl: s.blk.TL[i],
				oi: s.oidx[s.blk.OI[i]],
			})
		}
		s.miss = s.probe.lookupBulk(s.oc, s.keys, s.blk.Out, s.miss[:0])
		s.kern.EvalIndexed(s.blk, s.miss)
		s.stash = s.stash[:0]
		for _, i := range s.miss {
			s.stash = append(s.stash, bulkEntry{key: s.keys[i], access: s.blk.Out[i]})
		}
		s.oc.insertBulk(s.stash)
		s.acc.best.Evaluations += int64(len(s.miss))
		s.acc.best.CacheHits += int64(n - len(s.miss))
	}
	for i := 0; i < n; i++ {
		key := candKey{int(s.blk.OI[i]), int(s.blk.TM[i]), int(s.blk.TK[i]), int(s.blk.TL[i])}
		if s.acc.improves(s.blk.Out[i].Total, key) {
			df := dataflow.Must(s.mm, s.orders[s.blk.OI[i]],
				dataflow.MustTiling(s.mm, key.tm, key.tk, key.tl))
			s.acc.take(df, s.blk.Out[i], key)
		}
	}
	s.blk.Reset()
}

// scanSpan enumerates the tilings gm[lo:hi] × gk × gl (each grid sorted
// ascending) against every loop order, pruning by footprint monotonicity:
// the innermost tl loop breaks on buffer overflow, and the tk and tm loops
// break once even the smallest remaining partner tiles overflow. When stop
// reports cancellation the scan abandons the chunk mid-lattice; the caller
// is responsible for discarding the partial accumulator via ctx.Err().
// Buffered candidates remain in the block across spans — the owner flushes
// once after its last span.
func (s *blockScanner) scanSpan(gm, gk, gl []int, lo, hi int) {
	minK, minL := gk[0], gl[0]
	for _, tm := range gm[lo:hi] {
		if tileFootprint(tm, minK, minL) > s.bufferSize {
			break
		}
		for _, tk := range gk {
			if tileFootprint(tm, tk, minL) > s.bufferSize {
				break
			}
			for _, tl := range gl {
				foot := tileFootprint(tm, tk, tl)
				if foot > s.bufferSize {
					break
				}
				if s.stop.stopped() {
					return
				}
				for oi := range s.orders {
					s.push(oi, tm, tk, tl, foot)
				}
			}
		}
	}
}

// enumState is the mutex-guarded shared state of one parallel scan; worker
// goroutines merge their chunk-local accumulators under mu (enforced by the
// lockedsimstate analyzer, backstopped by the -race CI run). err records the
// first contained worker panic; when set the scan's accumulator is invalid.
type enumState struct {
	mu  sync.Mutex
	acc enumBest
	err error
}

// scanParallel shards the tm grid across a worker pool and merges the
// chunk-local optima under the canonical tie-break, so the combined result
// is identical to a sequential scan regardless of scheduling. Each worker
// owns one blockScanner and dispatches whole blocks — the kernel, being
// immutable, is shared. On ctx cancellation dispatch stops, workers abandon
// their current chunk at the next poll, and the (partial) accumulator is
// returned for the caller to discard.
func scanParallel(ctx context.Context, mm op.MatMul, bufferSize int64, orders []dataflow.Order, kern *cost.BatchEval, gm, gk, gl []int, cache *EvalCache, workers int) (enumBest, error) {
	type span struct{ lo, hi int }
	// Several chunks per worker load-balance the ragged pruning: small-tm
	// chunks admit far more feasible (tk, tl) partners than large-tm ones.
	chunk := len(gm) / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	state := &enumState{}
	ch := make(chan span)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local enumBest
			scanner := newBlockScanner(mm, bufferSize, orders, kern, cache, newCancelCheck(ctx), &local)
			var failed error
			for s := range ch {
				if failed != nil {
					continue // keep draining so the dispatcher never blocks
				}
				s := s
				failed = guardScan(func() {
					scanner.scanSpan(gm, gk, gl, s.lo, s.hi)
				})
			}
			if failed == nil {
				// Flush the residue block once after the last span; a panic
				// here (batched cost-model work) is contained like any other.
				failed = guardScan(scanner.flush)
			}
			state.mu.Lock()
			if failed != nil {
				// A panic aborted this worker mid-chunk; its local counters
				// and optimum are partial, so record the failure and drop them.
				if state.err == nil {
					state.err = failed
				}
			} else {
				state.acc.merge(local)
			}
			state.mu.Unlock()
		}()
	}
	done := ctx.Done()
dispatch:
	for lo := 0; lo < len(gm); lo += chunk {
		hi := lo + chunk
		if hi > len(gm) {
			hi = len(gm)
		}
		select {
		case ch <- span{lo, hi}:
		case <-done:
			break dispatch
		}
	}
	close(ch)
	wg.Wait()

	state.mu.Lock()
	defer state.mu.Unlock()
	return state.acc, state.err
}

// enumerate runs the pruned block scan over the given grids, sequentially
// for workers == 1 and on a worker pool otherwise (workers ≤ 0 selects
// GOMAXPROCS), and packages the optimum as a Result. Cancelling ctx stops
// the scan promptly and surfaces ctx.Err(); a Background context restores
// the historical non-cancellable behaviour at negligible cost.
func enumerate(ctx context.Context, mm op.MatMul, bufferSize int64, gm, gk, gl []int, cache *EvalCache, workers int, method string) (Result, error) {
	if err := mm.Validate(); err != nil {
		return Result{}, err
	}
	if bufferSize < 3 {
		return Result{}, fmt.Errorf("search: buffer %d cannot hold 1×1 tiles: %w", bufferSize, errs.ErrBufferTooSmall)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	orders := dataflow.AllOrders()
	kern, err := cost.NewBatchEval(mm, orders)
	if err != nil {
		return Result{}, err
	}
	var acc enumBest
	if workers == 1 {
		scanner := newBlockScanner(mm, bufferSize, orders, kern, cache, newCancelCheck(ctx), &acc)
		if err := guardScan(func() {
			scanner.scanSpan(gm, gk, gl, 0, len(gm))
			scanner.flush()
		}); err != nil {
			return Result{}, err
		}
	} else {
		acc, err = scanParallel(ctx, mm, bufferSize, orders, kern, gm, gk, gl, cache, workers)
		if err != nil {
			return Result{}, err
		}
	}
	// A canceled scan's accumulator is partial; discard it rather than
	// return a non-optimal "optimum".
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("search: %s scan canceled: %w", method, err)
	}
	if !acc.found {
		return Result{}, fmt.Errorf("search: no feasible dataflow for %v in buffer %d: %w", mm, bufferSize, errs.ErrInfeasible)
	}
	acc.best.Method = method
	return acc.best, nil
}
