package search

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"fusecu/internal/errs"
	"fusecu/internal/faultinject"
	"fusecu/internal/invariant"
	"fusecu/internal/op"
)

// analyticShapes are the exact-property workloads: small squares the frozen
// full-space reference can sweep, plus the decode degenerates from
// equivalence_test.go — the M=1 GEMV, the tiny-K MoE expert and the small-L
// GQA head that exercise the unit-extent cell skipping.
var analyticShapes = []op.MatMul{
	{Name: "sq", M: 12, K: 10, L: 14},
	{Name: "wide", M: 8, K: 30, L: 22},
	{Name: "gemv", M: 1, K: 48, L: 40},
	{Name: "moe-tinyk", M: 24, K: 2, L: 56},
	{Name: "gqa-smalll", M: 40, K: 36, L: 3},
}

// analyticBuffers spans the regimes for one shape: the 1×1 floor, a cramped
// prime, a quarter of the full-residency footprint, and a slack buffer where
// the untiled optimum is feasible.
func analyticBuffers(mm op.MatMul) []int64 {
	maxFP := int64(mm.M)*int64(mm.K) + int64(mm.K)*int64(mm.L) + int64(mm.M)*int64(mm.L)
	return []int64{3, 17, maxFP / 4, maxFP * 2}
}

// TestAnalyticExactOnSmallShapes is the tentpole's exact property: on every
// shape the full-space reference can enumerate, the analytic engine's Total
// must equal ReferenceExhaustive's global optimum bit for bit (every
// boundary candidate is a true lattice point priced by the same kernel), and
// in particular never lose to the GA polish it replaces.
func TestAnalyticExactOnSmallShapes(t *testing.T) {
	for _, mm := range analyticShapes {
		for _, bs := range analyticBuffers(mm) {
			if bs < 3 {
				continue
			}
			want, err := ReferenceExhaustive(mm, bs)
			if err != nil {
				t.Fatalf("%v BS=%d: reference: %v", mm, bs, err)
			}
			got, err := OptimizeAnalytic(mm, bs)
			if err != nil {
				t.Fatalf("%v BS=%d: analytic: %v", mm, bs, err)
			}
			if got.Access.Total != want.Access.Total {
				t.Errorf("%v BS=%d: analytic %d != reference optimum %d",
					mm, bs, got.Access.Total, want.Access.Total)
			}
			if got.Method != "analytic" || got.CacheHits != 0 {
				t.Errorf("%v BS=%d: method %q, cache hits %d", mm, bs, got.Method, got.CacheHits)
			}
			if got.Access.Footprint > bs {
				t.Errorf("%v BS=%d: infeasible answer, footprint %d", mm, bs, got.Access.Footprint)
			}
			ga, err := Genetic(mm, bs, GeneticOptions{})
			if err != nil {
				t.Fatalf("%v BS=%d: genetic: %v", mm, bs, err)
			}
			if got.Access.Total > ga.Access.Total {
				t.Errorf("%v BS=%d: analytic %d worse than GA %d",
					mm, bs, got.Access.Total, ga.Access.Total)
			}
			if got.Evaluations*10 > ga.Evaluations {
				t.Errorf("%v BS=%d: analytic evals %d not 10x below GA's %d",
					mm, bs, got.Evaluations, ga.Evaluations)
			}
		}
	}
}

// TestAnalyticExactOnRandomShapes is the bounded property run at ε=0: across
// randomized shapes and buffers inside the exact-extent regime, the analytic
// Total matches the full-space reference optimum exactly.
func TestAnalyticExactOnRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		mm := op.MatMul{
			Name: "rand",
			M:    rng.Intn(28) + 1,
			K:    rng.Intn(28) + 1,
			L:    rng.Intn(28) + 1,
		}
		maxFP := int64(mm.M)*int64(mm.K) + int64(mm.K)*int64(mm.L) + int64(mm.M)*int64(mm.L)
		bs := 3 + rng.Int63n(maxFP+32)
		want, err := ReferenceExhaustive(mm, bs)
		if err != nil {
			t.Fatalf("%v BS=%d: reference: %v", mm, bs, err)
		}
		got, err := OptimizeAnalytic(mm, bs)
		if err != nil {
			t.Fatalf("%v BS=%d: analytic: %v", mm, bs, err)
		}
		if got.Access.Total != want.Access.Total {
			t.Errorf("%v BS=%d: analytic %d != reference optimum %d",
				mm, bs, got.Access.Total, want.Access.Total)
		}
	}
}

// TestAnalyticDeterministic pins the no-randomness claim: repeated runs from
// one compiled engine and from fresh engines return identical results —
// dataflow, access, and evaluation count.
func TestAnalyticDeterministic(t *testing.T) {
	mm := op.MatMul{Name: "det", M: 96, K: 48, L: 64}
	eng, err := NewAnalytic(mm)
	if err != nil {
		t.Fatal(err)
	}
	first, err := eng.OptimizeCtx(context.Background(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := eng.OptimizeCtx(context.Background(), 2048)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("rerun %d diverged: %+v vs %+v", i, again, first)
		}
	}
	fresh, err := OptimizeAnalytic(mm, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if fresh != first {
		t.Fatalf("fresh engine diverged: %+v vs %+v", fresh, first)
	}
}

// TestAnalyticErrorContract pins error parity with the enumeration engines:
// invalid operators are rejected at construction, a sub-3 buffer is
// ErrBufferTooSmall, and any buffer ≥ 3 is feasible (the 1×1×1 seed).
func TestAnalyticErrorContract(t *testing.T) {
	if _, err := OptimizeAnalytic(op.MatMul{Name: "bad", M: 0, K: 4, L: 4}, 64); err == nil {
		t.Error("invalid operator accepted")
	}
	mm := op.MatMul{Name: "tiny", M: 5, K: 6, L: 7}
	if _, err := OptimizeAnalytic(mm, 2); !errors.Is(err, errs.ErrBufferTooSmall) {
		t.Errorf("BS=2: %v, want ErrBufferTooSmall", err)
	}
	r, err := OptimizeAnalytic(mm, 3)
	if err != nil {
		t.Fatalf("BS=3 must admit the 1×1 tiling: %v", err)
	}
	if r.Access.Footprint != 3 {
		t.Errorf("BS=3 footprint = %d, want 3", r.Access.Footprint)
	}
	ref, err := ReferenceExhaustive(mm, 3)
	if err != nil {
		t.Fatalf("reference at BS=3: %v", err)
	}
	if r.Access.Total != ref.Access.Total {
		t.Errorf("BS=3: analytic %d != reference %d", r.Access.Total, ref.Access.Total)
	}
}

// TestAnalyticCancellation: a pre-canceled context must surface ctx.Err()
// instead of a result.
func TestAnalyticCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := OptimizeAnalyticCtx(ctx, op.MatMul{Name: "c", M: 512, K: 512, L: 512}, 1<<20)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}
}

// TestAnalyticSolePolishAboveLimit pins the engine selection: above
// CoarseLatticeLimit the default polish mode answers with the analytic
// engine alone, and the PolishGA escape hatch restores the GA.
func TestAnalyticSolePolishAboveLimit(t *testing.T) {
	mm := op.MatMul{Name: "huge", M: 1260, K: 1260, L: 1260}
	if CoarseLattice(mm) <= CoarseLatticeLimit {
		t.Fatalf("shape %v unexpectedly inside the lattice limit", mm)
	}
	r, err := Optimize(mm, 1<<20, GeneticOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Method != "analytic" {
		t.Errorf("default polish method = %q, want analytic", r.Method)
	}
	g, err := Optimize(mm, 1<<20, GeneticOptions{Polish: PolishGA})
	if err != nil {
		t.Fatal(err)
	}
	if g.Method != "genetic" {
		t.Errorf("escape-hatch method = %q, want genetic", g.Method)
	}
	if r.Access.Total > g.Access.Total {
		t.Errorf("analytic %d worse than GA %d above the lattice limit",
			r.Access.Total, g.Access.Total)
	}
}

// TestParsePolishMode pins the -polish flag vocabulary.
func TestParsePolishMode(t *testing.T) {
	for s, want := range map[string]PolishMode{
		"": PolishAnalytic, "analytic": PolishAnalytic,
		"ga": PolishGA, "genetic": PolishGA,
	} {
		got, err := ParsePolishMode(s)
		if err != nil || got != want {
			t.Errorf("ParsePolishMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolishMode("simulated-annealing"); err == nil {
		t.Error("unknown mode accepted")
	}
	if PolishAnalytic.String() != "analytic" || PolishGA.String() != "ga" {
		t.Errorf("String() vocabulary drifted: %q/%q", PolishAnalytic, PolishGA)
	}
}

// TestInjectedPanicContainedAnalytic proves the analytic engine's
// panic-containment boundary at its own site, and that results are
// unchanged once the fault window closes (mirroring
// TestResultsUnchangedAfterFaultWindow for the scan engines).
func TestInjectedPanicContainedAnalytic(t *testing.T) {
	want, err := OptimizeAnalytic(faultOp, 2048)
	if err != nil {
		t.Fatal(err)
	}
	in := armEval(t, faultinject.Plan{Site: SiteAnalytic, Mode: faultinject.ModeError, Offset: 10, Times: 1})
	_, err = OptimizeAnalytic(faultOp, 2048)
	if err == nil {
		t.Fatal("analytic engine swallowed the injected fault")
	}
	if !errors.Is(err, errs.ErrInternal) || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("contained fault lost a sentinel: %v", err)
	}
	if in.Fires(SiteAnalytic) != 1 {
		t.Fatalf("fires = %d, want 1", in.Fires(SiteAnalytic))
	}
	// The Times-capped plan is spent; the still-armed injector must not
	// perturb the rerun.
	got, err := OptimizeAnalytic(faultOp, 2048)
	if err != nil {
		t.Fatalf("post-window run failed: %v", err)
	}
	if got != want {
		t.Fatalf("post-window result diverged: %+v vs %+v", got, want)
	}
}

// FuzzAnalyticOptimum fuzzes the exact property: for any small shape and
// buffer, the analytic engine must agree with the full-space reference on
// both the error class and the optimum Total — never beating it (it prices
// true lattice points) and never infeasible when the reference is feasible.
func FuzzAnalyticOptimum(f *testing.F) {
	f.Add(uint8(12), uint8(10), uint8(14), uint16(256))
	f.Add(uint8(1), uint8(48), uint8(40), uint16(17))
	f.Add(uint8(24), uint8(2), uint8(56), uint16(3))
	f.Add(uint8(5), uint8(6), uint8(7), uint16(2))
	f.Fuzz(func(t *testing.T, m, k, l uint8, buf uint16) {
		mm := op.MatMul{
			Name: "fuzz",
			M:    int(m%12) + 1,
			K:    int(k%12) + 1,
			L:    int(l%12) + 1,
		}
		bs := int64(buf)
		want, werr := ReferenceExhaustive(mm, bs)
		got, gerr := OptimizeAnalytic(mm, bs)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%v BS=%d: error mismatch: reference %v, analytic %v", mm, bs, werr, gerr)
		}
		if werr != nil {
			if !errors.Is(gerr, errs.ErrBufferTooSmall) {
				t.Fatalf("%v BS=%d: %v, want ErrBufferTooSmall", mm, bs, gerr)
			}
			return
		}
		if got.Access.Total != want.Access.Total {
			t.Fatalf("%v BS=%d: analytic %d != reference optimum %d",
				mm, bs, got.Access.Total, want.Access.Total)
		}
		if got.Access.Footprint > bs {
			t.Fatalf("%v BS=%d: infeasible answer, footprint %d", mm, bs, got.Access.Footprint)
		}
	})
}

// TestAnalyticSteadyStateZeroAlloc pins the hot path: after construction,
// OptimizeCtx allocates nothing per call (the scratch Block, accumulator and
// cancel check are all reused in place).
func TestAnalyticSteadyStateZeroAlloc(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant checks compiled in: assertions allocate")
	}
	eng, err := NewAnalytic(op.MatMul{Name: "alloc", M: 1024, K: 768, L: 768})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := eng.OptimizeCtx(ctx, 32<<10); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := eng.OptimizeCtx(ctx, 32<<10); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state OptimizeCtx allocates %.1f objects/run, want 0", allocs)
	}
}

// BenchmarkAnalyticPolish times the steady-state polish path on the Fig. 9
// projection shape — the request the serve path pays above the table-hit
// floor.
func BenchmarkAnalyticPolish(b *testing.B) {
	eng, err := NewAnalytic(op.MatMul{Name: "proj", M: 1024, K: 768, L: 768})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.OptimizeCtx(ctx, 32<<10); err != nil {
			b.Fatal(err)
		}
	}
}
