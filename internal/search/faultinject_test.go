package search

import (
	"errors"
	"testing"

	"fusecu/internal/errs"
	"fusecu/internal/faultinject"
	"fusecu/internal/op"
)

// The tests in this file arm the process-global injector, so they must not
// run in parallel with anything that evaluates dataflows. They never call
// t.Parallel and always disarm via t.Cleanup.

func armEval(t *testing.T, plans ...faultinject.Plan) *faultinject.Injector {
	t.Helper()
	in := faultinject.New(1, plans...)
	faultinject.Activate(in)
	t.Cleanup(faultinject.Deactivate)
	return in
}

var faultOp = op.MatMul{Name: "fault", M: 24, K: 16, L: 20}

// TestInjectedPanicContainedSequential proves the sequential enumeration
// boundary: a panic at candidate visit 100 surfaces as an ErrInternal error,
// still classifiable as an injected fault, and the process survives.
func TestInjectedPanicContainedSequential(t *testing.T) {
	in := armEval(t, faultinject.Plan{Site: SiteEval, Mode: faultinject.ModePanic, Offset: 99, Times: 1})
	_, err := Exhaustive(faultOp, 2048)
	if err == nil {
		t.Fatal("scan swallowed the injected panic")
	}
	if !errors.Is(err, errs.ErrInternal) {
		t.Fatalf("contained panic is not ErrInternal: %v", err)
	}
	if in.Fires(SiteEval) != 1 {
		t.Fatalf("fires = %d, want 1", in.Fires(SiteEval))
	}
	// A clean rerun after disarming returns the true optimum.
	faultinject.Deactivate()
	if _, err := Exhaustive(faultOp, 2048); err != nil {
		t.Fatalf("clean rerun failed: %v", err)
	}
}

// TestInjectedPanicContainedParallel proves the worker-pool boundary: a
// panicking worker neither kills the process nor deadlocks the dispatcher,
// and the scan reports ErrInternal instead of a partial optimum.
func TestInjectedPanicContainedParallel(t *testing.T) {
	armEval(t, faultinject.Plan{Site: SiteEval, Mode: faultinject.ModePanic, Offset: 500, Times: 1})
	_, err := ParallelExhaustive(faultOp, 2048, 4, nil)
	if err == nil {
		t.Fatal("parallel scan swallowed the injected panic")
	}
	if !errors.Is(err, errs.ErrInternal) {
		t.Fatalf("contained panic is not ErrInternal: %v", err)
	}
}

// TestInjectedErrorPanicsIntoErrInternal: error-mode injection at the eval
// site is delivered by panicking with the injected error; the boundary must
// preserve both sentinels.
func TestInjectedErrorPanicsIntoErrInternal(t *testing.T) {
	armEval(t, faultinject.Plan{Site: SiteEval, Mode: faultinject.ModeError, Times: 1})
	_, err := ExhaustiveCoarse(faultOp, 2048)
	if err == nil {
		t.Fatal("scan swallowed the injected error")
	}
	if !errors.Is(err, errs.ErrInternal) || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("error lost a sentinel: %v", err)
	}
}

// TestInjectedPanicContainedGenetic proves the GA's generation-loop boundary.
func TestInjectedPanicContainedGenetic(t *testing.T) {
	armEval(t, faultinject.Plan{Site: SiteEval, Mode: faultinject.ModePanic, Offset: 200, Times: 1})
	_, err := Genetic(faultOp, 2048, GeneticOptions{})
	if err == nil {
		t.Fatal("genetic engine swallowed the injected panic")
	}
	if !errors.Is(err, errs.ErrInternal) {
		t.Fatalf("contained panic is not ErrInternal: %v", err)
	}
}

// TestResultsUnchangedAfterFaultWindow: once a Times-capped fault plan is
// exhausted, the same injector still armed must not perturb results — the
// resilience layer's guarantee that clean requests stay bit-identical.
func TestResultsUnchangedAfterFaultWindow(t *testing.T) {
	want, err := ReferenceExhaustive(faultOp, 2048)
	if err != nil {
		t.Fatal(err)
	}
	armEval(t, faultinject.Plan{Site: SiteEval, Mode: faultinject.ModePanic, Times: 1})
	if _, err := Exhaustive(faultOp, 2048); !errors.Is(err, errs.ErrInternal) {
		t.Fatalf("first scan should hit the fault: %v", err)
	}
	got, err := Exhaustive(faultOp, 2048)
	if err != nil {
		t.Fatalf("post-window scan failed: %v", err)
	}
	if got.Dataflow != want.Dataflow || got.Access.Total != want.Access.Total {
		t.Fatalf("post-window result diverged: %+v vs %+v", got, want)
	}
}
