package search

import (
	"context"
	"errors"
	"testing"
	"time"

	"fusecu/internal/op"
)

// cancelOp is large enough that a full-range exhaustive scan takes far
// longer than the cancellation latency under test.
var cancelOp = op.MatMul{Name: "cancel", M: 256, K: 256, L: 256}

func TestParallelExhaustiveCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := ParallelExhaustiveCtx(ctx, cancelOp, 1<<20, 0, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Promptness: the full scan takes many seconds; a canceled one must
	// return orders of magnitude sooner. The bound is generous for CI noise.
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("cancellation took %v", el)
	}
}

func TestOptimizeParallelCtxCancelledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OptimizeParallelCtx(ctx, cancelOp, 1<<20, GeneticOptions{}, 0, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestOptimizeParallelCtxMatchesUncancelled(t *testing.T) {
	mm := op.MatMul{Name: "small", M: 96, K: 64, L: 80}
	want, err := Optimize(mm, 4096, GeneticOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptimizeParallelCtx(context.Background(), mm, 4096, GeneticOptions{Seed: 1}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Access.Total != want.Access.Total || got.Dataflow != want.Dataflow {
		t.Fatalf("ctx variant diverged: got %v/%d want %v/%d",
			got.Dataflow, got.Access.Total, want.Dataflow, want.Access.Total)
	}
	if got.Evaluations+got.CacheHits != want.Evaluations+want.CacheHits {
		t.Fatalf("candidate visits diverged: %d+%d vs %d+%d",
			got.Evaluations, got.CacheHits, want.Evaluations, want.CacheHits)
	}
}

func TestGeneticCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := geneticCtx(ctx, cancelOp, 1<<20, GeneticOptions{}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSequentialEnginesIgnoreBackgroundCtx(t *testing.T) {
	// The legacy wrappers route through context.Background(); they must stay
	// bit-identical to their historical behaviour.
	mm := op.MatMul{Name: "tiny", M: 24, K: 16, L: 20}
	a, err := Exhaustive(mm, 512)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParallelExhaustiveCtx(context.Background(), mm, 512, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Access.Total != b.Access.Total || a.Dataflow != b.Dataflow || a.Evaluations != b.Evaluations {
		t.Fatalf("background-ctx parallel scan diverged from sequential: %+v vs %+v", a, b)
	}
}

func TestExhaustiveCachedCtxCancelledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExhaustiveCachedCtx(ctx, cancelOp, 1<<20, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExhaustiveCachedCtx err = %v, want context.Canceled", err)
	}
	if _, err := ExhaustiveCoarseCachedCtx(ctx, cancelOp, 1<<20, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExhaustiveCoarseCachedCtx err = %v, want context.Canceled", err)
	}
}

func TestExhaustiveCachedCtxMatchesUncancelled(t *testing.T) {
	mm := op.MatMul{Name: "small", M: 24, K: 16, L: 20}
	want, err := ExhaustiveCached(mm, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExhaustiveCachedCtx(context.Background(), mm, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want.Access != got.Access || want.Dataflow != got.Dataflow {
		t.Fatalf("ExhaustiveCachedCtx diverged: %+v vs %+v", got, want)
	}
}
