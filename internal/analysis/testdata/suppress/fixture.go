// Package fixture exercises the framework's //fusecu:allow suppression
// contract (internal/analysis/suppress.go): a well-formed allow comment
// silences exactly the named analyzer on the annotated line, and malformed
// comments are findings in their own right. The test drives two synthetic
// analyzers (alpha, beta) that both flag every call to flagme.
package fixture

func flagme() {}

func unsuppressed() {
	flagme() // both alpha and beta report here
}

func suppressedAlphaOnly() {
	flagme() //fusecu:allow alpha: beta must still see this line
}

func suppressedOwnLineAbove() {
	//fusecu:allow beta: alpha must still see the next line
	flagme()
}

func suppressionDoesNotReachFurtherLines() {
	//fusecu:allow alpha: only covers the line below, not this whole block
	flagme()
	flagme() // alpha applies only one line down; this one still reports
}

func malformedMissingJustification() {
	flagme() //fusecu:allow alpha
}

func malformedMissingName() {
	flagme() //fusecu:allow : no analyzer named
}
