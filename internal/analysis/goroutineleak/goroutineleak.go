// Package goroutineleak defines an analyzer requiring a provable
// termination path for every goroutine. A `go` statement passes if any of
// these witnesses holds, all checkable within the spawning function:
//
//   - bounded body: the goroutine is a function literal whose control-flow
//     graph reaches its exit and whose body contains no potentially-forever
//     blocking operation (channel send/receive outside a select with
//     default, select without default, range over a channel,
//     sync.WaitGroup.Wait);
//   - WaitGroup join: the body calls Done on a sync.WaitGroup and the
//     spawning function waits on one — the repository's worker-pool shape;
//   - cancellation: the body receives from a context's Done channel
//     (directly or as a select case), so canceling the context unblocks it;
//   - channel close: the body ranges over (or receives from) a channel that
//     the spawning function closes;
//   - single communication: the body is exactly one channel send or
//     receive — the `go func() { errc <- srv.Serve(ln) }()` idiom, bounded
//     by the lifetime of the peer endpoint;
//   - lifecycle defer: the spawning function defers a Close, Shutdown or
//     Stop call, tying the goroutine to an object whose teardown unblocks
//     it (the embedded-server shape).
//
// For `go f(…)` where f is not a literal the body is invisible, so only the
// WaitGroup-join and lifecycle-defer witnesses (judged from the spawning
// side alone) apply.
//
// The witness list is a closed, documented set on purpose: a goroutine
// whose termination argument cannot be expressed in one of these local
// shapes needs either restructuring or a justified //fusecu:allow.
package goroutineleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"fusecu/internal/analysis"
	"fusecu/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "goroutineleak",
	Doc:  "every go statement needs a provable termination path: ctx.Done select, channel close, WaitGroup join, bounded body, single send, or lifecycle defer",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.ForEachFuncBody(file, func(owner ast.Node, body *ast.BlockStmt) {
			checkBody(pass, body)
		})
	}
	return nil
}

// enclosing captures the spawning-side termination evidence of one function
// body: channels it closes, whether it joins a WaitGroup, and whether it
// defers a lifecycle teardown.
type enclosing struct {
	closed         map[string]bool
	waits          bool
	lifecycleDefer bool
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var spawns []*ast.GoStmt
	analysis.InspectShallow(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			spawns = append(spawns, g)
		}
		return true
	})
	if len(spawns) == 0 {
		return
	}
	env := collectEnclosing(pass, body)
	for _, g := range spawns {
		checkGo(pass, g, env)
	}
}

// collectEnclosing gathers the spawning function's own evidence. The scan is
// shallow except that deferred function literals count: a `defer func() {
// close(ch) }()` closes ch on every exit path just as a direct defer does.
func collectEnclosing(pass *analysis.Pass, body *ast.BlockStmt) enclosing {
	env := enclosing{closed: map[string]bool{}}
	note := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				env.closed[types.ExprString(n.Args[0])] = true
			}
			if fn, _ := analysis.SyncMethod(pass.TypesInfo, n); fn != nil && fn.Name() == "Wait" &&
				analysis.IsNamed(fn.Type().(*types.Signature).Recv().Type(), "sync", "WaitGroup") {
				env.waits = true
			}
		case *ast.DeferStmt:
			if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Close", "Shutdown", "Stop":
					env.lifecycleDefer = true
				}
			}
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
							env.closed[types.ExprString(call.Args[0])] = true
						}
						if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
							switch sel.Sel.Name {
							case "Close", "Shutdown", "Stop":
								env.lifecycleDefer = true
							}
						}
					}
					return true
				})
			}
		}
		return true
	}
	analysis.InspectShallow(body, note)
	return env
}

func checkGo(pass *analysis.Pass, g *ast.GoStmt, env enclosing) {
	lit, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !isLit {
		if env.waits || env.lifecycleDefer {
			return
		}
		pass.Reportf(g.Pos(),
			"goroutine body is not a function literal and the spawning function shows no termination evidence (WaitGroup join or lifecycle defer); inline the body or restructure")
		return
	}

	if singleComm(lit.Body) {
		return
	}
	w := bodyWitness(pass, lit.Body)
	if w.doneSelect {
		return
	}
	if w.callsDone && env.waits {
		return
	}
	for ch := range w.consumed {
		if env.closed[ch] {
			return
		}
	}
	if !w.blocking && cfg.New(lit.Body).ExitReachable(false) {
		return
	}
	if env.lifecycleDefer {
		return
	}
	pass.Reportf(g.Pos(),
		"goroutine has no provable termination path: no ctx.Done receive, no close of a consumed channel, no WaitGroup join visible here, and the body can block forever")
}

// witness is the goroutine-body-side evidence.
type witness struct {
	doneSelect bool            // receives from a context's Done channel
	callsDone  bool            // calls sync.WaitGroup.Done
	consumed   map[string]bool // channels ranged over or received from
	blocking   bool            // contains a potentially-forever blocking op
}

// bodyWitness scans the goroutine body. Witness detection descends into
// nested literals (a helper closure invoked synchronously still unblocks
// the goroutine); the blocking-op scan stays shallow so a nested goroutine's
// blocking does not disqualify this one's bounded body.
func bodyWitness(pass *analysis.Pass, body *ast.BlockStmt) witness {
	w := witness{consumed: map[string]bool{}}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if fn := analysis.Callee(pass.TypesInfo, call); fn != nil &&
					fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
					w.doneSelect = true
				}
			} else {
				w.consumed[types.ExprString(n.X)] = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					w.consumed[types.ExprString(n.X)] = true
				}
			}
		case *ast.CallExpr:
			if fn, _ := analysis.SyncMethod(pass.TypesInfo, n); fn != nil && fn.Name() == "Done" &&
				analysis.IsNamed(fn.Type().(*types.Signature).Recv().Type(), "sync", "WaitGroup") {
				w.callsDone = true
			}
		}
		return true
	})

	nonBlocking := map[ast.Node]bool{}
	analysis.InspectShallow(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || !hasDefault(sel) {
			return true
		}
		nonBlocking[sel] = true
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					switch m.(type) {
					case *ast.SendStmt, *ast.UnaryExpr:
						nonBlocking[m] = true
					}
					return true
				})
			}
		}
		return true
	})
	analysis.InspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !nonBlocking[n] {
				w.blocking = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !nonBlocking[n] {
				w.blocking = true
			}
		case *ast.SelectStmt:
			if !nonBlocking[n] {
				w.blocking = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					w.blocking = true
				}
			}
		case *ast.CallExpr:
			if fn, _ := analysis.SyncMethod(pass.TypesInfo, n); fn != nil && fn.Name() == "Wait" {
				w.blocking = true
			}
		}
		return true
	})
	return w
}

// singleComm reports whether body is exactly one channel communication —
// the bounded `go func() { errc <- srv.Serve(ln) }()` idiom.
func singleComm(body *ast.BlockStmt) bool {
	if len(body.List) != 1 {
		return false
	}
	switch s := body.List[0].(type) {
	case *ast.SendStmt:
		return true
	case *ast.ExprStmt:
		u, ok := ast.Unparen(s.X).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr)
			return ok && u.Op == token.ARROW
		}
	}
	return false
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
