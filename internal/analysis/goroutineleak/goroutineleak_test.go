package goroutineleak_test

import (
	"testing"

	"fusecu/internal/analysis/analysistest"
	"fusecu/internal/analysis/goroutineleak"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", goroutineleak.Analyzer)
}
