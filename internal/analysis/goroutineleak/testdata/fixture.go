// Package fixture exercises the goroutineleak analyzer: every go statement
// must exhibit one of the documented termination witnesses.
package fixture

import (
	"context"
	"sync"
)

type server struct{}

func (s *server) Serve() error { return nil }
func (s *server) Close() error { return nil }

func helper() {}

// --- true positives -----------------------------------------------------

func leakForever(ch chan int) {
	go func() { // want "goroutine has no provable termination path"
		for {
			select {}
		}
	}()
	close(ch)
}

func leakBlockedReceive(ch chan int, other chan int) {
	// The goroutine consumes `other`, but the function closes `ch`.
	go func() { // want "goroutine has no provable termination path"
		for v := range other {
			_ = v
		}
	}()
	close(ch)
}

func leakDoneWithoutWait(wg *sync.WaitGroup, ch chan int) {
	// Done without a visible Wait proves nothing: nobody joins.
	go func() { // want "goroutine has no provable termination path"
		defer wg.Done()
		<-ch
	}()
}

func leakNonLiteral() {
	go helper() // want "goroutine body is not a function literal and the spawning function shows no termination evidence"
}

func leakInfiniteSendLoop(ch chan int) {
	go func() { // want "goroutine has no provable termination path"
		for i := 0; ; i++ {
			ch <- i
		}
	}()
}

// --- true negatives -----------------------------------------------------

func boundedBody(results []int) {
	done := make(chan struct{})
	go func() {
		s := 0
		for _, r := range results {
			s += r
		}
		close(done)
	}()
	<-done
}

func waitGroupJoin(jobs []int) {
	var wg sync.WaitGroup
	out := make([]int, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = j * 2
		}()
	}
	wg.Wait()
}

func ctxCancellation(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

func channelCloseDrain(jobs []int) {
	ch := make(chan int)
	go func() {
		for v := range ch {
			_ = v
		}
	}()
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
}

func singleSend(srv *server) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()
	return <-errc
}

func lifecycleDefer(srv *server) {
	defer srv.Close()
	go func() {
		_ = srv.Serve()
	}()
}

func nonLiteralWithJoin(wg *sync.WaitGroup) {
	wg.Add(1)
	go helper() // the join is assumed to cover it: Wait is visible here
	wg.Wait()
}

// --- suppression --------------------------------------------------------

func suppressedLeak(ch chan int) {
	go func() { //fusecu:allow goroutineleak: fixture — intentional leak proving suppression works
		<-ch
	}()
}
