// Package unvalidatedconstruct defines an analyzer that flags composite
// literals of the dataflow IR types outside their owning packages.
//
// The paper's optimality argument (and the cost model's formulas) hold only
// for dataflow that satisfies the §III buffer and bounds constraints:
// 1 ≤ T_D ≤ D per dimension, a loop order that is a permutation of {M,K,L},
// and pattern-pinned tiles for fused dataflow. The owning packages expose
// constructors (dataflow.NewTiling, dataflow.ClampedTiling, dataflow.New,
// fusion.NewFused, …) that establish those invariants at the point of
// construction; a composite literal elsewhere can smuggle an unvalidated
// tiling straight into cost.Evaluate or the simulator. Empty literals
// (zero values) are allowed — they are inert sentinels that fail validation
// loudly if ever evaluated.
package unvalidatedconstruct

import (
	"go/ast"

	"fusecu/internal/analysis"
)

// owned maps an owning package path to the type names whose construction it
// controls.
var owned = map[string]map[string]bool{
	"fusecu/internal/dataflow": {"Tiling": true, "Dataflow": true},
	"fusecu/internal/fusion":   {"FusedDataflow": true},
}

// Analyzer flags composite literals of validated dataflow types outside
// their owning package.
var Analyzer = &analysis.Analyzer{
	Name: "unvalidatedconstruct",
	Doc: "flag composite literals of dataflow.Tiling, dataflow.Dataflow and fusion.FusedDataflow " +
		"outside their owning packages, so every dataflow reaching the cost model went through " +
		"constructor validation (empty zero-value literals are allowed)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if _, isOwner := owned[pass.Pkg.Path()]; isOwner {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || len(lit.Elts) == 0 {
				return true
			}
			named := analysis.NamedOf(pass.TypeOf(lit))
			if named == nil {
				return true
			}
			obj := named.Obj()
			if obj.Pkg() == nil {
				return true
			}
			if names, ok := owned[obj.Pkg().Path()]; ok && names[obj.Name()] {
				pass.Reportf(lit.Pos(),
					"composite literal of %s.%s bypasses constructor validation; use the %s package constructors (New/Must/Clamped/Unit)",
					obj.Pkg().Name(), obj.Name(), obj.Pkg().Name())
			}
			return true
		})
	}
	return nil
}
