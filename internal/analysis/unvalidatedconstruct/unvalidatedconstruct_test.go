package unvalidatedconstruct_test

import (
	"testing"

	"fusecu/internal/analysis/analysistest"
	"fusecu/internal/analysis/unvalidatedconstruct"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", unvalidatedconstruct.Analyzer)
}
