// Package fixture exercises the unvalidatedconstruct analyzer: composite
// literals of the dataflow IR types must be flagged outside their owning
// packages, while constructors, zero-value literals and unrelated structs
// stay clean.
package fixture

import (
	"fusecu/internal/dataflow"
	"fusecu/internal/fusion"
	"fusecu/internal/op"
)

var mm = op.MatMul{Name: "fixture", M: 8, K: 8, L: 8} // unowned type: fine

func flagged() {
	ti := dataflow.Tiling{TM: 2, TK: 2, TL: 2}                   // want "composite literal of dataflow.Tiling"
	df := dataflow.Dataflow{Order: dataflow.OrderOS, Tiling: ti} // want "composite literal of dataflow.Dataflow"
	_ = df
}

func flaggedFusion(p fusion.Pair) fusion.FusedDataflow {
	return fusion.FusedDataflow{Pattern: fusion.PatternTileOSIS, TM: 2, TK: 1, TL: 2, TN: 1} // want "composite literal of fusion.FusedDataflow"
}

func flaggedNested() []dataflow.Tiling {
	return []dataflow.Tiling{
		{TM: 1, TK: 1, TL: 1}, // want "composite literal of dataflow.Tiling"
	}
}

func clean() {
	var zero dataflow.Tiling
	_ = zero
	sentinel := dataflow.Tiling{} // empty literal: inert zero value
	_ = sentinel
	ti := dataflow.ClampedTiling(mm, 4, 4, 4)
	df := dataflow.Must(mm, dataflow.OrderOS, ti)
	_ = df
	unit := dataflow.UnitTiling().WithTile(dataflow.DimM, 4)
	_ = unit
}

func cleanFusion() {
	p, err := fusion.NewPair(mm, op.MatMul{Name: "second", M: 8, K: 8, L: 8})
	if err != nil {
		return
	}
	fd := fusion.MustFused(p, fusion.PatternTileOSIS, 2, 1, 2, 1)
	_ = fd
}
