// Package analyzers registers the fusecu-vet analyzer suite: the five
// invariant linters that keep the optimizer's validity and resilience
// assumptions machine-enforced as the codebase grows.
package analyzers

import (
	"fusecu/internal/analysis"
	"fusecu/internal/analysis/droppederror"
	"fusecu/internal/analysis/lockedsimstate"
	"fusecu/internal/analysis/uncheckedmul"
	"fusecu/internal/analysis/unrecoveredhandler"
	"fusecu/internal/analysis/unvalidatedconstruct"
)

// All returns the full fusecu-vet suite in deterministic order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		droppederror.Analyzer,
		lockedsimstate.Analyzer,
		uncheckedmul.Analyzer,
		unrecoveredhandler.Analyzer,
		unvalidatedconstruct.Analyzer,
	}
}
