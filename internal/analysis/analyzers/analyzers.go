// Package analyzers registers the fusecu-vet analyzer suite: the nine
// invariant linters that keep the optimizer's validity, concurrency and
// resilience assumptions machine-enforced as the codebase grows. The first
// five are syntactic/type-based; the four added with the control-flow-graph
// engine (see internal/analysis/cfg) are path-sensitive.
package analyzers

import (
	"fusecu/internal/analysis"
	"fusecu/internal/analysis/atomicpublish"
	"fusecu/internal/analysis/ctxflow"
	"fusecu/internal/analysis/droppederror"
	"fusecu/internal/analysis/goroutineleak"
	"fusecu/internal/analysis/lockbalance"
	"fusecu/internal/analysis/lockedsimstate"
	"fusecu/internal/analysis/uncheckedmul"
	"fusecu/internal/analysis/unrecoveredhandler"
	"fusecu/internal/analysis/unvalidatedconstruct"
)

// All returns the full fusecu-vet suite in deterministic order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicpublish.Analyzer,
		ctxflow.Analyzer,
		droppederror.Analyzer,
		goroutineleak.Analyzer,
		lockbalance.Analyzer,
		lockedsimstate.Analyzer,
		uncheckedmul.Analyzer,
		unrecoveredhandler.Analyzer,
		unvalidatedconstruct.Analyzer,
	}
}
