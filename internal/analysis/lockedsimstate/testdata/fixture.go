// Package fixture exercises the lockedsimstate analyzer: fields of a
// mutex-owning struct may only be touched from goroutines while the mutex is
// lexically held.
package fixture

import "sync"

// aggregate mimics the simulator's shared sweep state: a mutex owning the
// counters next to it.
type aggregate struct {
	mu     sync.Mutex
	cycles int64
	moves  int64
}

// plain has no mutex: its fields are not guarded.
type plain struct {
	n int
}

func flaggedUnlocked(agg *aggregate, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		agg.cycles++ // want "shared state agg.cycles is accessed in a goroutine without holding agg.mu"
	}()
}

func flaggedAfterUnlock(agg *aggregate) {
	go func() {
		agg.mu.Lock()
		agg.cycles++
		agg.mu.Unlock()
		agg.moves++ // want "shared state agg.moves is accessed in a goroutine without holding agg.mu"
	}()
}

func cleanLocked(agg *aggregate) {
	go func() {
		agg.mu.Lock()
		agg.cycles++
		agg.moves += 2
		agg.mu.Unlock()
	}()
}

func cleanDeferred(agg *aggregate) {
	go func() {
		agg.mu.Lock()
		defer agg.mu.Unlock()
		agg.cycles++
	}()
}

func cleanOutsideGoroutine(agg *aggregate) {
	// Single-threaded setup before workers start needs no lock.
	agg.cycles = 0
}

func cleanUnguarded(p *plain) {
	go func() {
		p.n++ // no mutex on the struct: not this analyzer's concern
	}()
}
