// Package lockedsimstate defines an analyzer that flags accesses to shared
// simulator state from goroutines that do not hold the owning mutex.
//
// The fabric/CU simulator aggregates traffic and cycle counters across
// parallel sweeps (internal/sim). Any struct that declares a named
// sync.Mutex or sync.RWMutex field is treated as lock-guarded: every one of
// its other fields must only be touched inside a `go func(){…}` body while
// that mutex is lexically held (between x.mu.Lock() and x.mu.Unlock(), or
// after x.mu.Lock() with a deferred unlock). The check is a lexical
// approximation — state escaping through method calls or aliasing is out of
// scope (the -race CI run backstops those) — but it catches the common
// regression: a new counter bumped straight from a worker goroutine.
package lockedsimstate

import (
	"go/ast"
	"go/types"

	"fusecu/internal/analysis"
)

// Analyzer flags unlocked goroutine access to mutex-guarded struct fields.
var Analyzer = &analysis.Analyzer{
	Name: "lockedsimstate",
	Doc: "flag accesses to fields of mutex-owning structs (shared fabric/CU simulator state) " +
		"from go statements without lexically holding the owning mutex",
	Run: run,
}

func run(pass *analysis.Pass) error {
	guarded := guardedTypes(pass.Pkg)
	if len(guarded) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				c := &checker{pass: pass, guarded: guarded, locked: map[string]bool{}}
				c.walk(lit.Body)
			}
			return true
		})
	}
	return nil
}

// guardedTypes maps every package-level struct type owning a named mutex
// field to that field's name.
func guardedTypes(pkg *types.Package) map[*types.Named]string {
	out := make(map[*types.Named]string)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if analysis.IsNamed(f.Type(), "sync", "Mutex") || analysis.IsNamed(f.Type(), "sync", "RWMutex") {
				out[named] = f.Name()
				break
			}
		}
	}
	return out
}

// checker walks one goroutine body tracking lexically held locks.
type checker struct {
	pass    *analysis.Pass
	guarded map[*types.Named]string
	// locked is keyed by the rendered receiver expression, e.g. "agg".
	locked map[string]bool
}

func (c *checker) walk(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Nested goroutines get their own fresh lock state via run.
			return false
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held to the end of the body;
			// don't let it clear the state here.
			if op, _ := c.lockOp(n.Call); op == opUnlock {
				return false
			}
		case *ast.CallExpr:
			switch op, key := c.lockOp(n); op {
			case opLock:
				c.locked[key] = true
				return false
			case opUnlock:
				delete(c.locked, key)
				return false
			}
		case *ast.SelectorExpr:
			c.checkAccess(n)
		}
		return true
	})
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies call as x.mu.Lock/RLock/Unlock/RUnlock on a guarded
// struct's mutex field, returning the rendered key of x.
func (c *checker) lockOp(call *ast.CallExpr) (lockOpKind, string) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, ""
	}
	var kind lockOpKind
	switch fun.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return opNone, ""
	}
	mutexSel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
	if !ok {
		return opNone, ""
	}
	sel, ok := c.pass.TypesInfo.Selections[mutexSel]
	if !ok || sel.Kind() != types.FieldVal {
		return opNone, ""
	}
	owner := analysis.NamedOf(sel.Recv())
	if owner == nil || c.guarded[owner] != sel.Obj().Name() {
		return opNone, ""
	}
	return kind, types.ExprString(mutexSel.X)
}

// checkAccess reports sel when it reads or writes a guarded field without
// the owning lock held.
func (c *checker) checkAccess(selExpr *ast.SelectorExpr) {
	sel, ok := c.pass.TypesInfo.Selections[selExpr]
	if !ok || sel.Kind() != types.FieldVal {
		return
	}
	owner := analysis.NamedOf(sel.Recv())
	if owner == nil {
		return
	}
	mutexField, ok := c.guarded[owner]
	if !ok || sel.Obj().Name() == mutexField {
		return
	}
	key := types.ExprString(selExpr.X)
	if c.locked[key] {
		return
	}
	c.pass.Reportf(selExpr.Pos(),
		"shared state %s.%s is accessed in a goroutine without holding %s.%s",
		key, sel.Obj().Name(), key, mutexField)
}
