package lockedsimstate_test

import (
	"testing"

	"fusecu/internal/analysis/analysistest"
	"fusecu/internal/analysis/lockedsimstate"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", lockedsimstate.Analyzer)
}
