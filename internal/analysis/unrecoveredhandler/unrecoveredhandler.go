// Package unrecoveredhandler defines an analyzer that flags HTTP handler
// registrations which bypass the service's panic-isolation middleware.
//
// The resilience layer's contract is that every route answers the uniform
// error envelope even when the handler panics: internal/service wraps each
// registration in recovered(...), which converts a panic into a 500
// internal_error response and a panics_recovered metric instead of a torn
// connection. A new route registered directly — mux.HandleFunc(pattern,
// rawHandler) — silently opts out of that contract; nothing fails until the
// first panic in production. This analyzer makes the wrapper mandatory at
// lint time: the handler argument of ServeMux.Handle/HandleFunc (and the
// default-mux http.Handle/http.HandleFunc) must be a call to a function or
// method named recovered or Recovered.
package unrecoveredhandler

import (
	"go/ast"
	"go/types"

	"fusecu/internal/analysis"
)

// Analyzer flags handler registrations not wrapped by the panic-isolation
// middleware.
var Analyzer = &analysis.Analyzer{
	Name: "unrecoveredhandler",
	Doc: "flag ServeMux.Handle/HandleFunc registrations whose handler is not wrapped in the " +
		"recovered(...) panic-isolation middleware, so every route keeps the 500-envelope contract",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 || !isRegistration(pass, call) {
				return true
			}
			if wrapsRecovered(pass, call.Args[1]) {
				return true
			}
			pattern := "handler"
			if lit, ok := call.Args[0].(*ast.BasicLit); ok {
				pattern = lit.Value
			}
			pass.Reportf(call.Args[1].Pos(),
				"%s is registered without panic-isolation middleware; wrap the handler in recovered(...)",
				pattern)
			return true
		})
	}
	return nil
}

// isRegistration reports whether call is (*net/http.ServeMux).Handle or
// .HandleFunc, or the default-mux package functions http.Handle/HandleFunc.
func isRegistration(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
		return false
	}
	if fn.Name() != "Handle" && fn.Name() != "HandleFunc" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	return recv == nil || isServeMuxPtr(recv.Type())
}

func isServeMuxPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ServeMux"
}

// wrapsRecovered reports whether the handler expression is (possibly via a
// type conversion like http.HandlerFunc(...)) a call to a function or method
// named recovered or Recovered.
func wrapsRecovered(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	// Look through conversions: http.HandlerFunc(recovered(...)).
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return wrapsRecovered(pass, call.Args[0])
	}
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	return name == "recovered" || name == "Recovered"
}
