package unrecoveredhandler_test

import (
	"testing"

	"fusecu/internal/analysis/analysistest"
	"fusecu/internal/analysis/unrecoveredhandler"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", unrecoveredhandler.Analyzer)
}
