// Package fixture exercises the unrecoveredhandler analyzer: every
// ServeMux.Handle/HandleFunc registration (and the default-mux package
// forms) must wrap its handler in recovered(...); direct registrations are
// findings. Registration-shaped methods on non-mux types are out of scope.
package fixture

import "net/http"

func raw(w http.ResponseWriter, r *http.Request) {}

// recovered mimics the service middleware: the analyzer matches by name.
func recovered(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() { _ = recover() }()
		h(w, r)
	}
}

type server struct{}

func (server) recovered(name string, h http.HandlerFunc) http.HandlerFunc {
	return recovered(name, h)
}

func flaggedDirect(mux *http.ServeMux) {
	mux.HandleFunc("/bad", raw) // want "\"/bad\" is registered without panic-isolation middleware"
}

func flaggedHandle(mux *http.ServeMux) {
	mux.Handle("/bad2", http.HandlerFunc(raw)) // want "\"/bad2\" is registered without panic-isolation middleware"
}

func flaggedDefaultMux() {
	http.HandleFunc("/bad3", raw) // want "\"/bad3\" is registered without panic-isolation middleware"
}

func flaggedLambda(mux *http.ServeMux) {
	mux.HandleFunc("/bad4", func(w http.ResponseWriter, r *http.Request) {}) // want "\"/bad4\" is registered without panic-isolation middleware"
}

func cleanWrapped(mux *http.ServeMux) {
	mux.HandleFunc("/good", recovered("good", raw))
}

func cleanMethodWrapped(mux *http.ServeMux, s server) {
	mux.HandleFunc("/good2", s.recovered("good2", raw))
}

func cleanConvertedWrap(mux *http.ServeMux) {
	mux.Handle("/good3", http.HandlerFunc(recovered("good3", raw)))
}

// notAMux has registration-shaped methods but is not an http.ServeMux: the
// analyzer must leave it alone.
type notAMux struct{}

func (notAMux) HandleFunc(pattern string, h func(http.ResponseWriter, *http.Request)) {}

func cleanOtherType(m notAMux) {
	m.HandleFunc("/elsewhere", raw)
}
