// Package atomicpublish defines an analyzer enforcing the repository's
// read-copy-update discipline: a value handed to atomic.Pointer.Store is
// published — lock-free readers may hold it the instant Store returns — so
// the publishing function must never write to it afterwards.
//
// Publication comes in two modes:
//
//   - Store(&x) publishes x's storage. Any later write to x (assignment,
//     x.f = …, x[i] = …, x++) on any path after the Store mutates memory a
//     reader may be traversing and is reported. Redeclaring x with := opens
//     fresh storage and clears the taint — this is exactly the EvalCache
//     loop shape, `next := make(…); fill next; snap.Store(&next)` once per
//     iteration.
//
//   - Store(p) for pointer-typed p publishes p's referent. Later writes
//     through p (p.f = …, *p = …) are reported; rebinding p itself
//     (p = &T{…}) retargets the variable away from the published object and
//     clears the taint. Copying p (q := p) taints the copy too.
//
// The analysis is a forward may-analysis over the function's control-flow
// graph: a write is reported if any path publishes the variable first, so
// a Store inside one branch poisons the join. It is intra-procedural;
// passing a published pointer to a mutating callee is not seen.
package atomicpublish

import (
	"go/ast"
	"go/token"
	"go/types"

	"fusecu/internal/analysis"
	"fusecu/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicpublish",
	Doc:  "values stored through atomic.Pointer must not be written after publication; redeclare fresh storage per update instead",
	Run:  run,
}

// Taint bits per variable.
const (
	pubAddr uint8 = 1 << iota // its address was published: the storage is shared
	pubRef                    // its referent was published: writes through it are shared
)

// fact maps a variable to its publication taint. Join is per-key bit union
// (may-analysis: published on any path counts).
type fact map[types.Object]uint8

func (f fact) clone() fact {
	g := make(fact, len(f))
	for k, v := range f {
		g[k] = v
	}
	return g
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.ForEachFuncBody(file, func(owner ast.Node, body *ast.BlockStmt) {
			checkFunc(pass, body)
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	if !mentionsStore(body) {
		return
	}
	g := cfg.New(body)
	c := &checker{pass: pass}
	in := cfg.Forward(g, cfg.Analysis[fact]{
		Entry: fact{},
		Join: func(a, b fact) fact {
			out := a.clone()
			for k, v := range b {
				out[k] |= v
			}
			return out
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if b[k] != v {
					return false
				}
			}
			return true
		},
		Transfer: func(b *cfg.Block, f fact) fact {
			out := f.clone()
			for _, n := range b.Nodes {
				c.apply(n, out, false)
			}
			return out
		},
	})

	// Replay each reachable block with reporting on.
	for b, f := range in {
		cur := f.clone()
		for _, n := range b.Nodes {
			c.apply(n, cur, true)
		}
	}
}

// mentionsStore pre-screens the body for a .Store( selector call so the CFG
// machinery only runs on functions that can publish.
func mentionsStore(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Store" {
			found = true
		}
		return !found
	})
	return found
}

type checker struct {
	pass *analysis.Pass
}

// apply interprets one CFG node, mutating f in place. With report set it
// also emits diagnostics for writes to published variables.
func (c *checker) apply(n ast.Node, f fact, report bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		c.applyAssign(n, f, report)
	case *ast.IncDecStmt:
		c.applyWrite(n.X, n.Pos(), f, report, false)
	case *ast.DeferStmt:
		// A deferred Store publishes at every return; treat it as publishing
		// immediately (conservative for the writes that follow textually).
		c.applyCalls(n.Call, f)
	case *ast.RangeStmt:
		// The CFG puts the whole RangeStmt at the loop head; its body
		// statements live in their own blocks, so interpret only the range
		// clause here. A := clause redeclares fresh key/value storage.
		c.applyCalls(n.X, f)
		if n.Tok == token.DEFINE {
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
						delete(f, obj)
					}
				}
			}
		}
	case *ast.DeclStmt:
		// `var x = …` in a loop reuses x's object across iterations: the
		// declaration opens fresh storage, clearing back-edge taint.
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					c.applyCalls(v, f)
				}
				for _, name := range vs.Names {
					if obj := c.pass.TypesInfo.ObjectOf(name); obj != nil {
						delete(f, obj)
					}
				}
			}
		}
	default:
		if e, ok := n.(ast.Expr); ok {
			c.applyCalls(e, f)
		} else if s, ok := n.(ast.Stmt); ok {
			c.applyCallsInStmt(s, f)
		}
	}
}

// applyAssign handles kills (:=), writes and alias propagation, then any
// Store calls in the right-hand sides.
func (c *checker) applyAssign(a *ast.AssignStmt, f fact, report bool) {
	for _, rhs := range a.Rhs {
		c.applyCalls(rhs, f)
	}
	for i, lhs := range a.Lhs {
		lhs = ast.Unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			if a.Tok == token.DEFINE {
				if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
					// Fresh storage: clear any taint carried around a loop
					// back edge, then inherit referent taint from an alias.
					delete(f, obj)
					c.propagateAlias(a, i, obj, f)
					continue
				}
				// `x, y := …` redeclaring x re-uses x's object: fall through
				// to the plain-assignment logic.
			}
			obj := c.pass.TypesInfo.ObjectOf(id)
			if obj == nil {
				continue
			}
			if f[obj]&pubAddr != 0 && report {
				c.pass.Reportf(a.Pos(),
					"write to %s after its address was published via atomic Store; build a fresh value and re-publish instead", id.Name)
			}
			// Rebinding points the variable at new storage: referent taint
			// no longer applies to it.
			f[obj] &^= pubRef
			c.propagateAlias(a, i, obj, f)
			continue
		}
		c.applyWrite(lhs, a.Pos(), f, report, true)
	}
}

// propagateAlias copies referent taint across `lhsObj = rhsIdent` /
// `lhsObj := rhsIdent`: both now reach the published object.
func (c *checker) propagateAlias(a *ast.AssignStmt, i int, lhsObj types.Object, f fact) {
	if len(a.Rhs) != len(a.Lhs) {
		return
	}
	rhs, ok := ast.Unparen(a.Rhs[i]).(*ast.Ident)
	if !ok {
		return
	}
	robj := c.pass.TypesInfo.ObjectOf(rhs)
	if robj == nil {
		return
	}
	if f[robj]&pubRef != 0 {
		f[lhsObj] |= pubRef
	}
}

// applyWrite reports a write through a compound lvalue (x.f, x[i], *x)
// whose base variable is tainted in any mode.
func (c *checker) applyWrite(lhs ast.Expr, pos token.Pos, f fact, report, compound bool) {
	base := baseIdent(lhs)
	if base == nil {
		return
	}
	obj := c.pass.TypesInfo.ObjectOf(base)
	if obj == nil || f[obj] == 0 {
		return
	}
	if !report {
		return
	}
	switch {
	case f[obj]&pubAddr != 0:
		c.pass.Reportf(pos,
			"write to %s after its address was published via atomic Store; build a fresh value and re-publish instead", base.Name)
	case f[obj]&pubRef != 0:
		c.pass.Reportf(pos,
			"write through %s after its referent was published via atomic Store; build a fresh value and re-publish instead", base.Name)
	}
}

// applyCalls finds atomic Pointer.Store calls anywhere in e (not descending
// into function literals) and records their publications.
func (c *checker) applyCalls(e ast.Expr, f fact) {
	analysis.InspectShallow(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c.applyStore(call, f)
		return true
	})
}

func (c *checker) applyCallsInStmt(s ast.Stmt, f fact) {
	analysis.InspectShallow(s, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			c.applyStore(call, f)
		}
		return true
	})
}

// applyStore records the publication effected by call if it is a Store on
// an atomic.Pointer (or atomic.Value, whose boxed value obeys the same
// rule).
func (c *checker) applyStore(call *ast.CallExpr, f fact) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Store" || len(call.Args) != 1 {
		return
	}
	recv := c.pass.TypeOf(sel.X)
	if recv == nil {
		return
	}
	if !analysis.IsNamed(recv, "sync/atomic", "Pointer") && !analysis.IsNamed(recv, "sync/atomic", "Value") {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		if id, ok := ast.Unparen(u.X).(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
				f[obj] |= pubAddr
			}
		}
		return
	}
	if id, ok := arg.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
			if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
				f[obj] |= pubRef
			}
		}
	}
}

// baseIdent returns the root identifier of an lvalue chain (x in x.f[i].g),
// or nil when the base is not a plain variable.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
