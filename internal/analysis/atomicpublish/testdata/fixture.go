// Package fixture exercises the atomicpublish analyzer: values handed to
// atomic.Pointer.Store are visible to lock-free readers and must not be
// written afterwards.
package fixture

import "sync/atomic"

type config struct {
	Limit int
	Tags  []string
}

type cache struct {
	snap atomic.Pointer[map[string]int]
	cfg  atomic.Pointer[config]
}

// --- true positives -----------------------------------------------------

func writeAfterAddrPublish(c *cache) {
	m := map[string]int{"a": 1}
	c.snap.Store(&m)
	m["b"] = 2 // want "write through m after its address was published|write to m after its address was published"
}

func rebindAfterAddrPublish(c *cache) {
	m := map[string]int{"a": 1}
	c.snap.Store(&m)
	m = map[string]int{"b": 2} // want "write to m after its address was published"
	_ = m
}

func writeAfterRefPublish(c *cache) {
	cfg := &config{Limit: 1}
	c.cfg.Store(cfg)
	cfg.Limit = 2 // want "write through cfg after its referent was published"
}

func writeThroughAlias(c *cache) {
	cfg := &config{Limit: 1}
	c.cfg.Store(cfg)
	alias := cfg
	alias.Limit = 2 // want "write through alias after its referent was published"
}

func publishOnOneBranchOnly(c *cache, fast bool) {
	m := map[string]int{}
	if fast {
		c.snap.Store(&m)
	}
	m["k"] = 1 // want "write to m after its address was published|write through m after its address was published"
}

func incAfterPublish(c *cache) {
	cfg := &config{}
	c.cfg.Store(cfg)
	cfg.Limit++ // want "write through cfg after its referent was published"
}

// --- true negatives -----------------------------------------------------

func publishLast(c *cache) {
	m := map[string]int{"a": 1}
	m["b"] = 2
	c.snap.Store(&m)
}

// The EvalCache republish loop: := opens fresh storage each iteration, so
// the back edge's taint dies at the redeclaration.
func freshPerIteration(c *cache, updates []string) {
	for _, k := range updates {
		old := c.snap.Load()
		next := make(map[string]int, len(*old)+1)
		for kk, vv := range *old {
			next[kk] = vv
		}
		next[k] = 1
		c.snap.Store(&next)
	}
}

func rebindAfterRefPublish(c *cache) {
	cfg := &config{Limit: 1}
	c.cfg.Store(cfg)
	// Retargeting the pointer variable leaves the published object alone.
	cfg = &config{Limit: 2}
	cfg.Limit = 3
	c.cfg.Store(cfg)
}

func readAfterPublish(c *cache) int {
	m := map[string]int{"a": 1}
	c.snap.Store(&m)
	return m["a"]
}

func unrelatedVariable(c *cache) {
	m := map[string]int{}
	other := map[string]int{}
	c.snap.Store(&m)
	other["k"] = 1
	_ = other
}

// --- suppression --------------------------------------------------------

func suppressedWrite(c *cache) {
	m := map[string]int{}
	c.snap.Store(&m)
	m["k"] = 1 //fusecu:allow atomicpublish: fixture — intentional post-publication write proving suppression works
}
