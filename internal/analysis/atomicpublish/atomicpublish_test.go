package atomicpublish_test

import (
	"testing"

	"fusecu/internal/analysis/analysistest"
	"fusecu/internal/analysis/atomicpublish"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", atomicpublish.Analyzer)
}
