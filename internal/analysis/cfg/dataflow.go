package cfg

// This file is the worklist dataflow engine the path-sensitive analyzers
// share. It computes, for every reachable block, the fact holding at block
// entry under a forward analysis: facts flow along CFG edges, merge at joins
// through the analysis's Join (union for may-facts, intersection for
// must-facts), and iterate to a fixpoint. Analyzers then replay Transfer
// node-by-node inside each block to check per-statement conditions (a send
// while a lock may be held, a write after a pointer may be published).

// Analysis describes one forward dataflow problem over facts of type F.
// Facts must form a finite lattice under Join for the fixpoint to exist; the
// engine additionally bounds its iteration count defensively.
type Analysis[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Join merges the facts of two incoming edges. It must be commutative,
	// associative and monotone, and must not mutate its arguments.
	Join func(F, F) F
	// Equal reports fact equality; the fixpoint stops re-queuing a block
	// when its entry fact is unchanged.
	Equal func(F, F) bool
	// Transfer computes the fact at block exit from the fact at block entry,
	// applying the block's nodes in order. It must not mutate its input.
	Transfer func(*Block, F) F
}

// maxVisitsPerBlock bounds fixpoint iteration per block; the analyzers' fact
// lattices are tiny (per-variable bitmasks), so hitting the bound means a
// non-monotone Transfer — the engine stops rather than hangs, leaving the
// facts computed so far (a missed finding, never a spurious one, since every
// recorded fact is reachable).
const maxVisitsPerBlock = 256

// Forward runs the analysis to fixpoint and returns the entry fact of every
// reachable block. Unreachable blocks (dead code) have no entry in the map.
func Forward[F any](g *Graph, a Analysis[F]) map[*Block]F {
	in := map[*Block]F{g.Entry: a.Entry}
	visits := map[*Block]int{}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if visits[b]++; visits[b] > maxVisitsPerBlock {
			continue
		}
		out := a.Transfer(b, in[b])
		for _, s := range b.Succs {
			cur, seen := in[s]
			var next F
			if seen {
				next = a.Join(cur, out)
				if a.Equal(next, cur) {
					continue
				}
			} else {
				next = out
			}
			in[s] = next
			work = append(work, s)
		}
	}
	return in
}
