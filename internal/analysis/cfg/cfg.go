// Package cfg builds intra-procedural control-flow graphs from go/ast
// function bodies and runs forward dataflow analyses over them. It is the
// path-sensitive backbone of the fusecu-vet concurrency analyzers
// (lockbalance, ctxflow, goroutineleak, atomicpublish): where the PR-1
// analyzers were flat AST walks, these need to reason about what must or may
// hold on every path — a lock released on one branch but not the other, a
// goroutine whose only loop has no way out, a snapshot written after its
// atomic publication on a back edge.
//
// The graph is deliberately small: basic blocks of statements (plus the
// condition expressions that decide branches), explicit edges for if/else,
// for/range loops (including back edges), switch/type-switch (with
// fallthrough), select, labeled break/continue/goto, and a single synthetic
// Exit block that every return reaches. Calls to panic, os.Exit, log.Fatal*
// and runtime.Goexit terminate their block with an edge to Exit flagged as a
// panic edge, so analyses can distinguish orderly returns from unwinding.
// Defer and go statements are ordinary nodes in their block — their
// registration point is path-sensitive, which is exactly what the analyzers
// need (a defer mu.Unlock() only covers paths that executed it).
//
// Like the rest of internal/analysis, the package is stdlib-only; it mirrors
// a small slice of golang.org/x/tools/go/cfg in spirit, not in API.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// Block is one basic block: a maximal straight-line sequence of nodes with
// all control transfers at the end. Nodes holds statements in execution
// order; branch conditions appear as bare ast.Expr nodes at the position
// where they are evaluated.
type Block struct {
	// Index is the block's position in Graph.Blocks (construction order;
	// Entry is 0).
	Index int
	// Nodes are the statements and condition expressions executed in this
	// block, in order.
	Nodes []ast.Node
	// Succs are the possible successors. A block with no successors and no
	// path to Exit hangs forever (e.g. select{}).
	Succs []*Block
	// Preds are the predecessors (maintained for dataflow joins).
	Preds []*Block
	// Panic marks a block terminated by panic/os.Exit/log.Fatal/Goexit;
	// its edge to Exit is an unwinding edge, not an orderly return.
	Panic bool
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit is the single synthetic exit block; every return statement and
	// the implicit fall-off-the-end path has an edge to it.
	Exit *Block
	// Blocks lists every block, including unreachable ones (dead code after
	// a return still gets a block, with no predecessors).
	Blocks []*Block
}

// New builds the CFG of a function body. A nil body (declaration without
// body) yields a graph whose Entry connects straight to Exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.link(b.cur, b.g.Exit)
	return b.g
}

// Reachable returns the set of blocks reachable from Entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// ExitReachable reports whether any path from Entry reaches Exit — i.e.
// whether the function can terminate at all. When panicOK is false, panic
// edges do not count as termination.
func (g *Graph) ExitReachable(panicOK bool) bool {
	seen := map[*Block]bool{}
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == nil || seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if s == g.Exit {
				if panicOK || !b.Panic {
					return true
				}
				continue
			}
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(g.Entry)
}

// String renders the graph for debugging and tests.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d:", b.Index)
		if b == g.Entry {
			sb.WriteString(" (entry)")
		}
		if b == g.Exit {
			sb.WriteString(" (exit)")
		}
		if b.Panic {
			sb.WriteString(" (panic)")
		}
		fmt.Fprintf(&sb, " nodes=%d ->", len(b.Nodes))
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// builder incrementally grows the graph. cur is the block under
// construction; nil means the current point is unreachable (just after a
// terminator), in which case the next statement starts a fresh dangling
// block so dead code is still represented.
type builder struct {
	g   *Graph
	cur *Block

	// breaks and continues are the enclosing break/continue target stacks;
	// entries carry the statement label (empty for unlabeled).
	breaks    []branchTarget
	continues []branchTarget
	// labels maps label names to their blocks, created on demand so forward
	// gotos resolve.
	labels map[string]*Block
	// pendingLabel is the label naming the next loop/switch/select, consumed
	// by the statement that follows a LabeledStmt.
	pendingLabel string
	// fallthroughTarget is the next case-clause body while building a switch
	// clause.
	fallthroughTarget *Block
}

type branchTarget struct {
	label string
	block *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// link adds an edge from from to to; a nil from (unreachable point) is a
// no-op.
func (b *builder) link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, starting a dangling block for
// dead code when the current point is unreachable.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// labelBlock returns (creating on demand) the block a label names, shared by
// the LabeledStmt itself and any gotos targeting it.
func (b *builder) labelBlock(name string) *Block {
	if b.labels == nil {
		b.labels = map[string]*Block{}
	}
	blk, ok := b.labels[name]
	if !ok {
		blk = b.newBlock()
		b.labels[name] = blk
	}
	return blk
}

// takeLabel consumes the pending statement label.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findTarget resolves a break/continue target by label ("" = innermost).
func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.link(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		thenB := b.newBlock()
		b.link(cond, thenB)
		b.cur = thenB
		b.stmt(s.Body)
		thenEnd := b.cur
		var elseEnd *Block
		if s.Else != nil {
			elseB := b.newBlock()
			b.link(cond, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			elseEnd = b.cur
		} else {
			elseEnd = cond
		}
		if thenEnd == nil && elseEnd == nil {
			b.cur = nil
			return
		}
		join := b.newBlock()
		b.link(thenEnd, join)
		b.link(elseEnd, join)
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.link(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		exit := b.newBlock()
		if s.Cond != nil {
			b.link(head, exit) // `for {}` has no exit edge from the head
		}
		contTarget := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.link(post, head)
			contTarget = post
		}
		body := b.newBlock()
		b.link(head, body)
		b.breaks = append(b.breaks, branchTarget{label, exit})
		b.continues = append(b.continues, branchTarget{label, contTarget})
		b.cur = body
		b.stmt(s.Body)
		b.link(b.cur, contTarget)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.link(b.cur, head)
		head.Nodes = append(head.Nodes, s) // the range clause itself
		exit := b.newBlock()
		b.link(head, exit)
		body := b.newBlock()
		b.link(head, body)
		b.breaks = append(b.breaks, branchTarget{label, exit})
		b.continues = append(b.continues, branchTarget{label, head})
		b.cur = body
		b.stmt(s.Body)
		b.link(b.cur, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = exit

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(label, s.Body.List)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(label, s.Body.List)

	case *ast.SelectStmt:
		label := b.takeLabel()
		tag := b.cur
		exit := b.newBlock()
		b.breaks = append(b.breaks, branchTarget{label, exit})
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			body := b.newBlock()
			b.link(tag, body)
			if comm.Comm != nil {
				body.Nodes = append(body.Nodes, comm.Comm)
			}
			b.cur = body
			b.stmtList(comm.Body)
			b.link(b.cur, exit)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		// A select with no cases (select{}) blocks forever: exit has no
		// predecessors and everything after it is dead.
		b.cur = exit

	case *ast.BranchStmt:
		b.add(s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok.String() {
		case "break":
			b.link(b.cur, findTarget(b.breaks, label))
		case "continue":
			b.link(b.cur, findTarget(b.continues, label))
		case "goto":
			b.link(b.cur, b.labelBlock(label))
		case "fallthrough":
			b.link(b.cur, b.fallthroughTarget)
		}
		b.cur = nil

	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.g.Exit)
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isTerminatingCall(call) {
			b.cur.Panic = true
			b.link(b.cur, b.g.Exit)
			b.cur = nil
		}

	default:
		// Assignments, declarations, defer, go, send, incdec, empty: plain
		// nodes with fall-through control flow.
		b.add(s)
	}
}

// switchClauses builds the clause bodies of a (type) switch. The dispatch
// block fans out to every clause body; absent a default clause it also flows
// straight to the exit.
func (b *builder) switchClauses(label string, clauses []ast.Stmt) {
	tag := b.cur
	exit := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label, exit})

	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		bodies[i] = b.newBlock()
		b.link(tag, bodies[i])
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.link(tag, exit)
	}
	for i, cl := range clauses {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			bodies[i].Nodes = append(bodies[i].Nodes, e)
		}
		prevFT := b.fallthroughTarget
		b.fallthroughTarget = nil
		if i+1 < len(bodies) {
			b.fallthroughTarget = bodies[i+1]
		}
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		b.link(b.cur, exit)
		b.fallthroughTarget = prevFT
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = exit
}

// isTerminatingCall reports whether call never returns: the panic builtin,
// os.Exit, runtime.Goexit, or log.Fatal*. The check is name-based (the
// builder has no type information by design); shadowing these names defeats
// it, which the repo does not do.
func isTerminatingCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"):
			return true
		}
	}
	return false
}
