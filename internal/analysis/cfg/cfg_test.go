package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as the body of a function declaration and returns its
// block statement.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file, err := parser.ParseFile(token.NewFileSet(), "x.go", "package x\nfunc f() {\n"+src+"\n}", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

func TestStraightLineReachesExit(t *testing.T) {
	g := New(parseBody(t, `x := 1; y := x + 1; _ = y`))
	if !g.ExitReachable(false) {
		t.Fatalf("straight-line body should reach exit:\n%s", g)
	}
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry block should hold all three statements, got %d:\n%s", len(g.Entry.Nodes), g)
	}
}

func TestIfElseBothBranchesJoin(t *testing.T) {
	g := New(parseBody(t, `
		if cond() {
			a()
		} else {
			b()
		}
		c()`))
	if !g.ExitReachable(false) {
		t.Fatalf("if/else should reach exit:\n%s", g)
	}
	// cond block must have two successors (then, else).
	reach := g.Reachable()
	two := false
	for b := range reach {
		if len(b.Succs) == 2 {
			two = true
		}
	}
	if !two {
		t.Fatalf("expected a two-way branch block:\n%s", g)
	}
}

func TestInfiniteLoopDoesNotReachExit(t *testing.T) {
	g := New(parseBody(t, `for { work() }`))
	if g.ExitReachable(false) {
		t.Fatalf("for{} with no break should not reach exit:\n%s", g)
	}
}

func TestInfiniteLoopWithBreakReachesExit(t *testing.T) {
	g := New(parseBody(t, `
		for {
			if done() {
				break
			}
		}`))
	if !g.ExitReachable(false) {
		t.Fatalf("for{} with conditional break should reach exit:\n%s", g)
	}
}

func TestInfiniteLoopWithReturnReachesExit(t *testing.T) {
	g := New(parseBody(t, `
		for {
			select {
			case <-done:
				return
			case v := <-ch:
				use(v)
			}
		}`))
	if !g.ExitReachable(false) {
		t.Fatalf("loop with select-return should reach exit:\n%s", g)
	}
}

func TestSelectWithoutReturnLoopsForever(t *testing.T) {
	g := New(parseBody(t, `
		for {
			select {
			case <-done:
				cleanup()
			case v := <-ch:
				use(v)
			}
		}`))
	if g.ExitReachable(false) {
		t.Fatalf("loop whose select never exits should not reach exit:\n%s", g)
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	g := New(parseBody(t, `select {}`))
	if g.ExitReachable(false) {
		t.Fatalf("select{} should not reach exit:\n%s", g)
	}
}

func TestRangeLoopReachesExit(t *testing.T) {
	g := New(parseBody(t, `for v := range ch { use(v) }`))
	if !g.ExitReachable(false) {
		t.Fatalf("range loop should reach exit (channel close):\n%s", g)
	}
}

func TestPanicIsNotOrderlyExit(t *testing.T) {
	g := New(parseBody(t, `panic("boom")`))
	if g.ExitReachable(false) {
		t.Fatalf("panic-only body should not reach exit orderly:\n%s", g)
	}
	if !g.ExitReachable(true) {
		t.Fatalf("panic-only body should reach exit when panics count:\n%s", g)
	}
}

func TestLabeledBreakEscapesOuterLoop(t *testing.T) {
	g := New(parseBody(t, `
	outer:
		for {
			for {
				break outer
			}
		}`))
	if !g.ExitReachable(false) {
		t.Fatalf("labeled break should escape both loops:\n%s", g)
	}
}

func TestLabeledContinueStaysInLoop(t *testing.T) {
	g := New(parseBody(t, `
	outer:
		for {
			for {
				continue outer
			}
		}`))
	if g.ExitReachable(false) {
		t.Fatalf("labeled continue should not create an exit path:\n%s", g)
	}
}

func TestGotoForward(t *testing.T) {
	g := New(parseBody(t, `
		goto done
	done:
		cleanup()`))
	if !g.ExitReachable(false) {
		t.Fatalf("forward goto should reach exit:\n%s", g)
	}
}

func TestGotoBackwardLoopsForever(t *testing.T) {
	g := New(parseBody(t, `
	again:
		work()
		goto again`))
	if g.ExitReachable(false) {
		t.Fatalf("unconditional backward goto should not reach exit:\n%s", g)
	}
}

func TestSwitchWithoutDefaultFallsThrough(t *testing.T) {
	g := New(parseBody(t, `
		switch x {
		case 1:
			a()
		case 2:
			return
		}
		b()`))
	if !g.ExitReachable(false) {
		t.Fatalf("switch without default should flow past:\n%s", g)
	}
}

func TestSwitchAllReturnWithDefaultSkipsTail(t *testing.T) {
	g := New(parseBody(t, `
		switch x {
		case 1:
			return
		default:
			return
		}`))
	if !g.ExitReachable(false) {
		t.Fatalf("returning switch should reach exit:\n%s", g)
	}
	// The implicit fall-off block after the switch is unreachable.
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if len(b.Preds) == 0 && b != g.Entry && reach[b] {
			t.Fatalf("block %d reachable without predecessors:\n%s", b.Index, g)
		}
	}
}

func TestFallthroughLinksNextClause(t *testing.T) {
	g := New(parseBody(t, `
		switch x {
		case 1:
			fallthrough
		case 2:
			return
		default:
		}`))
	if !g.ExitReachable(false) {
		t.Fatalf("fallthrough switch should reach exit:\n%s", g)
	}
}

func TestDeadCodeGetsDanglingBlock(t *testing.T) {
	g := New(parseBody(t, `
		return
		dead()`)) //nolint — intentionally unreachable
	reach := g.Reachable()
	var deadBlocks int
	for _, b := range g.Blocks {
		if !reach[b] && len(b.Nodes) > 0 {
			deadBlocks++
		}
	}
	if deadBlocks == 0 {
		t.Fatalf("dead code should land in an unreachable block:\n%s", g)
	}
}

// TestForwardMayAnalysis runs a may-analysis counting which "mark" calls can
// have executed: fact = bitset of marks seen on some path.
func TestForwardMayAnalysis(t *testing.T) {
	body := parseBody(t, `
		mark1()
		if cond() {
			mark2()
		}
		mark3()`)
	g := New(body)
	markOf := func(n ast.Node) int {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return 0
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return 0
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return 0
		}
		switch id.Name {
		case "mark1":
			return 1
		case "mark2":
			return 2
		case "mark3":
			return 4
		}
		return 0
	}
	in := Forward(g, Analysis[uint]{
		Entry: 0,
		Join:  func(a, b uint) uint { return a | b },
		Equal: func(a, b uint) bool { return a == b },
		Transfer: func(b *Block, f uint) uint {
			for _, n := range b.Nodes {
				f |= uint(markOf(n))
			}
			return f
		},
	})
	got, ok := in[g.Exit]
	if !ok {
		t.Fatalf("exit has no fact:\n%s", g)
	}
	if got != 1|2|4 {
		t.Fatalf("exit fact = %b, want 111:\n%s", got, g)
	}
}

// TestForwardMustAnalysis checks intersection joins: mark2 only executes on
// one path, so at exit only mark1 and mark3 must have run.
func TestForwardMustAnalysis(t *testing.T) {
	body := parseBody(t, `
		mark1()
		if cond() {
			mark2()
		}
		mark3()`)
	g := New(body)
	markOf := func(n ast.Node) uint {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return 0
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return 0
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return 0
		}
		switch id.Name {
		case "mark1":
			return 1
		case "mark2":
			return 2
		case "mark3":
			return 4
		}
		return 0
	}
	in := Forward(g, Analysis[uint]{
		Entry: 0,
		Join:  func(a, b uint) uint { return a & b },
		Equal: func(a, b uint) bool { return a == b },
		Transfer: func(b *Block, f uint) uint {
			for _, n := range b.Nodes {
				f |= markOf(n)
			}
			return f
		},
	})
	if got := in[g.Exit]; got != 1|4 {
		t.Fatalf("exit must-fact = %b, want 101:\n%s", got, g)
	}
}

// TestLoopFixpoint exercises the back edge: a fact set in the loop body must
// propagate to the loop head on the second iteration.
func TestLoopFixpoint(t *testing.T) {
	body := parseBody(t, `
		for i := 0; i < n; i++ {
			mark1()
		}
		tail()`)
	g := New(body)
	in := Forward(g, Analysis[uint]{
		Entry: 0,
		Join:  func(a, b uint) uint { return a | b },
		Equal: func(a, b uint) bool { return a == b },
		Transfer: func(b *Block, f uint) uint {
			for _, n := range b.Nodes {
				if es, ok := n.(*ast.ExprStmt); ok {
					if call, ok := es.X.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark1" {
							f |= 1
						}
					}
				}
			}
			return f
		},
	})
	if got := in[g.Exit]; got != 1 {
		t.Fatalf("loop body fact should reach exit via back edge, got %b:\n%s", got, g)
	}
}
