package analysis

import (
	"go/token"
	"strconv"
	"strings"
)

// This file implements the framework-level suppression contract:
//
//	//fusecu:allow <analyzer>: <justification>
//
// A suppression comment silences findings of exactly the named analyzer on
// the comment's own line and on the line immediately below it (so it can sit
// at the end of the offending line or on its own line above it). The
// justification is mandatory — a suppression is a reviewed, documented
// exception, not an off switch — and a malformed comment (missing analyzer
// name or empty justification) is itself reported as a finding attributed to
// the pseudo-analyzer "suppression", which cannot be suppressed.

// SuppressionAnalyzerName attributes malformed-suppression findings.
const SuppressionAnalyzerName = "suppression"

// suppressionPrefix introduces an allow comment. The directive-style spelling
// (no space after //) follows go:build / go:generate convention.
const suppressionPrefix = "//fusecu:allow"

// suppression is one parsed //fusecu:allow comment.
type suppression struct {
	analyzer      string
	justification string
	file          string
	line          int
}

// collectSuppressions parses every allow comment in the package, returning
// the well-formed suppressions and a finding for each malformed one.
func collectSuppressions(pkg *Package) ([]suppression, []Finding) {
	var sups []suppression
	var malformed []Finding
	report := func(pos token.Pos, msg string) {
		malformed = append(malformed, Finding{
			Analyzer: SuppressionAnalyzerName,
			Position: pkg.Fset.Position(pos),
			Message:  msg,
		})
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, suppressionPrefix)
				if !ok {
					continue
				}
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //fusecu:allowlist — a different directive
				}
				rest = strings.TrimSpace(rest)
				name, just, found := strings.Cut(rest, ":")
				name = strings.TrimSpace(name)
				just = strings.TrimSpace(just)
				switch {
				case name == "":
					report(c.Pos(), "malformed fusecu:allow: missing analyzer name (want //fusecu:allow <analyzer>: <justification>)")
				case strings.ContainsAny(name, " \t"):
					report(c.Pos(), "malformed fusecu:allow: analyzer name "+strconv.Quote(name)+" contains spaces (want //fusecu:allow <analyzer>: <justification>)")
				case !found || just == "":
					report(c.Pos(), "fusecu:allow "+name+" has no justification; every suppression must say why the invariant does not apply")
				default:
					pos := pkg.Fset.Position(c.Pos())
					sups = append(sups, suppression{
						analyzer:      name,
						justification: just,
						file:          pos.Filename,
						line:          pos.Line,
					})
				}
			}
		}
	}
	return sups, malformed
}

// suppressed reports whether f is covered by one of the suppressions: same
// file, same analyzer, and the finding sits on the comment's line or the
// line directly below it.
func suppressed(f Finding, sups []suppression) bool {
	for _, s := range sups {
		if s.analyzer != f.Analyzer || s.file != f.Position.Filename {
			continue
		}
		if f.Position.Line == s.line || f.Position.Line == s.line+1 {
			return true
		}
	}
	return false
}
