// Package fixture exercises the ctxflow analyzer. The test registers this
// package's path as scoped, so rule 1 (exported blocking functions need a
// context) and rule 2 (no context.Background outside shims) both apply.
package fixture

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// --- rule 1 true positives ----------------------------------------------

func SpawnsWithoutCtx(ch chan int) { // want "exported function SpawnsWithoutCtx spawns a goroutine but has no context.Context parameter"
	go func() { ch <- 1 }()
}

func BlocksOnReceive(ch chan int) int { // want "exported function BlocksOnReceive receives from a channel but has no context.Context parameter"
	return <-ch
}

func WaitsWithoutCtx(wg *sync.WaitGroup) { // want "exported function WaitsWithoutCtx waits on a sync.WaitGroup but has no context.Context parameter"
	wg.Wait()
}

func SleepsWithoutCtx() { // want "exported function SleepsWithoutCtx sleeps but has no context.Context parameter"
	time.Sleep(time.Millisecond)
}

// --- rule 1 true negatives ----------------------------------------------

func SpawnsWithCtx(ctx context.Context, ch chan int) {
	go func() { ch <- 1 }()
	<-ctx.Done()
}

func HandlerGetsCtxFromRequest(w http.ResponseWriter, r *http.Request, ch chan int) {
	<-ch
}

// unexported functions may block without a context parameter; their callers
// own the discipline.
func spawnHelper(ch chan int) {
	go func() { ch <- 1 }()
}

// Pure computation needs no context.
func PureComputation(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// A select with a default clause is non-blocking.
func PollOnly(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

// --- rule 2 true positives ----------------------------------------------

func backgroundInRealLogic(ch chan int) error {
	ctx := context.Background() // want "context.Background\\(\\) outside cmd/ and facade shims"
	_ = ctx
	spawnHelper(ch)
	return nil
}

func todoInRealLogic() context.Context {
	c := context.TODO() // want "context.TODO\\(\\) outside cmd/ and facade shims"
	return c
}

func hasCtxButIgnoresIt(ctx context.Context, ch chan int) {
	run(context.Background(), ch) // want "context.Background\\(\\) inside a function that already receives a context.Context; thread the parameter"
}

// A two-statement body is not a shim: validation must move into the *Ctx
// variant so the entry point collapses to one line.
func notAShimTwoStatements(ch chan int) error {
	if ch == nil {
		return nil
	}
	return runErr(context.Background(), ch) // want "context.Background\\(\\) outside cmd/ and facade shims"
}

// --- rule 2 true negatives ----------------------------------------------

// Run is a facade shim: one statement, Background passed directly.
func Run(ch chan int) {
	run(context.Background(), ch)
}

// RunErr is the returning-shim shape.
func RunErr(ch chan int) error {
	return runErr(context.Background(), ch)
}

// OptimizeStyleShim is the search-engine facade-pair shape (OptimizeAnalytic
// → OptimizeAnalyticCtx): one statement, several passthrough arguments, a
// (value, error) return. It must pass with zero suppressions.
func OptimizeStyleShim(ch chan int, n int) (int, error) {
	return optimizeStyleCtx(context.Background(), ch, n)
}

func optimizeStyleCtx(ctx context.Context, ch chan int, n int) (int, error) {
	select {
	case <-ctx.Done():
		return 0, ctx.Err()
	case v := <-ch:
		return v + n, nil
	}
}

func run(ctx context.Context, ch chan int) {
	select {
	case <-ctx.Done():
	case <-ch:
	}
}

func runErr(ctx context.Context, ch chan int) error {
	run(ctx, ch)
	return nil
}

// --- suppression --------------------------------------------------------

func suppressedBackground() context.Context {
	return context.Background() //fusecu:allow ctxflow: fixture — proves suppression silences rule 2 here
}
