// Package fixture is loaded by the ctxflow test with the package path
// registered as exempt (the cmd/ role): context.Background() here is the
// process root context and must produce no findings.
package fixture

import "context"

func mainLike() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	work(ctx)
}

func work(ctx context.Context) { <-ctx.Done() }
