package ctxflow_test

import (
	"testing"

	"fusecu/internal/analysis/analysistest"
	"fusecu/internal/analysis/ctxflow"
)

// The fixture package loads under the path "fixture/ctxflow"; register it
// as scoped so rule 1 applies, exactly as the real internal/search tree is.
func TestAnalyzer(t *testing.T) {
	defer restore()()
	ctxflow.ScopePrefixes = append(ctxflow.ScopePrefixes, "fixture/ctxflow")
	analysistest.Run(t, "testdata", ctxflow.Analyzer)
}

// The exempt fixture uses context.Background freely; with the fixture path
// registered as exempt (the role cmd/ plays in the real tree) the analyzer
// must stay silent — the fixture has no want comments.
func TestExemptTree(t *testing.T) {
	defer restore()()
	ctxflow.ExemptPrefixes = append(ctxflow.ExemptPrefixes, "fixture/ctxflow")
	analysistest.Run(t, "testdata/exempt", ctxflow.Analyzer)
}

func restore() func() {
	scope := ctxflow.ScopePrefixes
	exempt := ctxflow.ExemptPrefixes
	return func() {
		ctxflow.ScopePrefixes = scope
		ctxflow.ExemptPrefixes = exempt
	}
}
