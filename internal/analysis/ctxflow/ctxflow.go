// Package ctxflow defines an analyzer enforcing the repository's context
// discipline: long-running work must be cancelable from the outside.
//
// Two rules, both intra-procedural:
//
//  1. Exported functions in the scoped package trees (see ScopePrefixes —
//     the search engines, the simulator, the experiment harnesses and the
//     serving layer) that block or spawn work — a go statement, a blocking
//     channel operation, a select without default, sync.WaitGroup.Wait or
//     time.Sleep — must accept a context.Context (an *http.Request
//     parameter also qualifies: handlers get their context from the
//     request).
//
//  2. context.Background() and context.TODO() are banned everywhere except
//     the exempt trees (ExemptPrefixes — binaries under cmd/ own their
//     root context) and facade entry shims. A facade shim is the one shape
//     the repository's Foo/FooCtx API-pair convention needs: a function
//     declaration whose body is exactly one statement calling a callee
//     with context.Background() passed directly. Anything larger must
//     thread a caller-supplied context instead.
//
// The rules are deliberately syntactic and local so a finding is always
// actionable at the reported line: add a ctx parameter, extract a *Ctx
// variant, or collapse the caller into a true one-line shim.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fusecu/internal/analysis"
)

// ScopePrefixes lists the package-path prefixes whose exported functions
// fall under rule 1. Rule 2 applies everywhere outside ExemptPrefixes.
var ScopePrefixes = []string{
	"fusecu/internal/search",
	"fusecu/internal/service",
	"fusecu/internal/sim",
	"fusecu/internal/experiments",
}

// ExemptPrefixes lists package-path prefixes where context.Background() is
// legitimate: binaries own their root context.
var ExemptPrefixes = []string{
	"fusecu/cmd/",
}

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "exported blocking/spawning functions in scoped packages must accept context.Context; context.Background() is banned outside cmd/ and one-line facade shims",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	scoped := hasPrefix(path, ScopePrefixes)
	exempt := hasPrefix(path, ExemptPrefixes)

	for _, file := range pass.Files {
		if scoped {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !fd.Name.IsExported() {
					continue
				}
				checkExported(pass, fd)
			}
		}
		if !exempt {
			analysis.ForEachFuncBody(file, func(owner ast.Node, body *ast.BlockStmt) {
				checkBackground(pass, owner, body)
			})
		}
	}
	return nil
}

func hasPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// checkExported applies rule 1 to one exported function declaration.
func checkExported(pass *analysis.Pass, fd *ast.FuncDecl) {
	if carriesContext(pass, fd) {
		return
	}
	if why := blockingOp(pass, fd.Body); why != "" {
		pass.Reportf(fd.Name.Pos(),
			"exported function %s %s but has no context.Context parameter; add one or provide a %sCtx variant",
			fd.Name.Name, why, fd.Name.Name)
	}
}

// carriesContext reports whether the declaration receives a cancelation
// signal: a context.Context parameter or an *http.Request (whose Context
// method serves the same role for handlers).
func carriesContext(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	return signatureCarriesContext(sig)
}

func signatureCarriesContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if analysis.IsNamed(t, "context", "Context") || analysis.IsNamed(t, "net/http", "Request") {
			return true
		}
	}
	return false
}

// blockingOp returns a short description of the first operation in body
// (not descending into nested function literals) that blocks or spawns
// work, or "" when there is none. Select statements with a default clause
// are non-blocking, and so are the channel operations in their
// communication clauses.
func blockingOp(pass *analysis.Pass, body *ast.BlockStmt) string {
	nonBlocking := map[ast.Node]bool{}
	analysis.InspectShallow(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || !hasDefault(sel) {
			return true
		}
		nonBlocking[sel] = true
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch m.(type) {
				case *ast.SendStmt, *ast.UnaryExpr:
					nonBlocking[m] = true
				}
				return true
			})
		}
		return true
	})

	why := ""
	analysis.InspectShallow(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			why = "spawns a goroutine"
		case *ast.SendStmt:
			if !nonBlocking[n] {
				why = "sends on a channel"
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !nonBlocking[n] {
				why = "receives from a channel"
			}
		case *ast.SelectStmt:
			if !nonBlocking[n] {
				why = "blocks in a select"
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					why = "ranges over a channel"
				}
			}
		case *ast.CallExpr:
			if fn, _ := analysis.SyncMethod(pass.TypesInfo, n); fn != nil && fn.Name() == "Wait" {
				recv := "sync primitive"
				if named := analysis.NamedOf(fn.Type().(*types.Signature).Recv().Type()); named != nil {
					recv = "sync." + named.Obj().Name()
				}
				why = "waits on a " + recv
			}
			if fn := analysis.Callee(pass.TypesInfo, n); fn != nil &&
				fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
				why = "sleeps"
			}
		}
		return true
	})
	return why
}

// checkBackground applies rule 2 to one function body.
func checkBackground(pass *analysis.Pass, owner ast.Node, body *ast.BlockStmt) {
	analysis.InspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := backgroundName(pass, call)
		if name == "" {
			return true
		}
		if ownerCarriesContext(pass, owner) {
			// A function that already receives a context is never a
			// legitimate shim — it has the value it should be passing.
			pass.Reportf(call.Pos(),
				"context.%s() inside a function that already receives a context.Context; thread the parameter instead", name)
		} else if _, ok := owner.(*ast.FuncDecl); ok && isFacadeShim(body, call) {
			// One-statement Foo → FooCtx(context.Background(), …) facade.
		} else {
			pass.Reportf(call.Pos(),
				"context.%s() outside cmd/ and facade shims; accept a context.Context or extract a one-line *Ctx shim", name)
		}
		return true
	})
}

// backgroundName returns "Background" or "TODO" when call is
// context.Background() / context.TODO(), else "".
func backgroundName(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// isFacadeShim reports whether body is exactly one statement — a return of,
// or expression consisting of, a single call — with bg passed directly as
// one of that call's arguments. This is the Foo → FooCtx(context.Background(),
// …) API-pair shape; anything more is real logic that must thread a caller's
// context.
func isFacadeShim(body *ast.BlockStmt, bg *ast.CallExpr) bool {
	if len(body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch s := body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(s.Results) == 1 {
			call, _ = ast.Unparen(s.Results[0]).(*ast.CallExpr)
		}
	case *ast.ExprStmt:
		call, _ = ast.Unparen(s.X).(*ast.CallExpr)
	}
	if call == nil {
		return false
	}
	for _, arg := range call.Args {
		if ast.Unparen(arg) == ast.Expr(bg) {
			return true
		}
	}
	return false
}

// ownerCarriesContext reports whether the function owning a body has a
// context-carrying parameter (see carriesContext). For function literals
// the literal's own signature is consulted — a goroutine body that wants
// the enclosing context should close over it explicitly.
func ownerCarriesContext(pass *analysis.Pass, owner ast.Node) bool {
	switch o := owner.(type) {
	case *ast.FuncDecl:
		fn, _ := pass.TypesInfo.Defs[o.Name].(*types.Func)
		if fn == nil {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		return ok && signatureCarriesContext(sig)
	case *ast.FuncLit:
		if t := pass.TypeOf(o); t != nil {
			if sig, ok := t.(*types.Signature); ok {
				return signatureCarriesContext(sig)
			}
		}
	}
	return false
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
