// Package uncheckedmul defines an analyzer that flags raw integer
// multiplications whose operands are dimension or tile-size quantities.
//
// The analytical model multiplies full problem dimensions (M·K·L reaches
// ~10^12 for LLM shapes at batch scale, and footprint/traffic expressions
// multiply several such factors), so a raw `*` on int/int64 silently wraps
// exactly where the paper's communication lower bound is being computed.
// Products of dimension quantities must go through invariant.CheckedMul /
// CheckedMul3, which panic on overflow under -tags=fusecuchecks and cost
// nothing otherwise.
//
// An operand counts as dimension-derived when, after stripping parentheses
// and integer conversions, it is a direct selection of a known dimension
// field (op.MatMul.{M,K,L}, dataflow.Tiling.{TM,TK,TL}, …) or a call of a
// known dimension accessor (Tiling.Tile, Dim.Extent, Tensor.Size,
// MatMul.SizeA, fusion.Pair.M, …). Tracking flows through local variables is
// out of scope; the analyzer polices the direct products where the model's
// formulas live. internal/invariant itself is exempt — it hosts the one
// sanctioned multiply.
package uncheckedmul

import (
	"go/ast"
	"go/token"
	"go/types"

	"fusecu/internal/analysis"
)

// typeKey identifies a named type by package path and name.
type typeKey struct{ pkg, name string }

// dimFields lists struct fields holding loop-dimension extents or tile
// sizes.
var dimFields = map[typeKey]map[string]bool{
	{"fusecu/internal/op", "MatMul"}:            {"M": true, "K": true, "L": true},
	{"fusecu/internal/op", "Elementwise"}:       {"Rows": true, "Cols": true},
	{"fusecu/internal/dataflow", "Tiling"}:      {"TM": true, "TK": true, "TL": true},
	{"fusecu/internal/fusion", "FusedDataflow"}: {"TM": true, "TK": true, "TL": true, "TN": true},
}

// dimMethods lists accessors returning dimension extents, tile sizes, trip
// counts or element counts.
var dimMethods = map[typeKey]map[string]bool{
	{"fusecu/internal/dataflow", "Tiling"}: {"Tile": true, "Trips": true, "TensorTile": true, "Footprint": true},
	{"fusecu/internal/dataflow", "Dim"}:    {"Extent": true},
	{"fusecu/internal/dataflow", "Tensor"}: {"Size": true},
	{"fusecu/internal/op", "MatMul"}: {
		"SizeA": true, "SizeB": true, "SizeC": true, "MACs": true,
		"MinDim": true, "MinTensor": true, "IdealMA": true,
	},
	{"fusecu/internal/op", "Elementwise"}: {"Size": true},
	{"fusecu/internal/op", "Chain"}:       {"IntermediateSize": true, "MACs": true, "UnfusedIdealMA": true},
	{"fusecu/internal/fusion", "Pair"}:    {"M": true, "K": true, "L": true, "N": true},
}

// Analyzer flags unchecked dimension/tile-size products.
var Analyzer = &analysis.Analyzer{
	Name: "uncheckedmul",
	Doc: "flag raw int multiplications whose operands are dimension or tile-size quantities " +
		"(M·K·L, footprint products); such products must use invariant.CheckedMul, which " +
		"panics on int64 overflow under -tags=fusecuchecks",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == "fusecu/internal/invariant" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || bin.Op != token.MUL {
				return true
			}
			if !isInteger(pass.TypeOf(bin)) {
				return true
			}
			lx := dimOperand(pass, bin.X)
			ly := dimOperand(pass, bin.Y)
			if lx == "" && ly == "" {
				return true
			}
			operand := lx
			if operand == "" {
				operand = ly
			}
			pass.Reportf(bin.OpPos,
				"unchecked multiplication of dimension quantity %s may overflow int64 on large shapes; use invariant.CheckedMul",
				operand)
			return true
		})
	}
	return nil
}

// isInteger reports whether t is a basic integer type.
func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// dimOperand reports the description of e when it is dimension-derived, or
// "".
func dimOperand(pass *analysis.Pass, e ast.Expr) string {
	e = analysis.Unconvert(pass.TypesInfo, e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		sel, ok := pass.TypesInfo.Selections[x]
		if !ok || sel.Kind() != types.FieldVal {
			return ""
		}
		owner := analysis.NamedOf(sel.Recv())
		if owner == nil || owner.Obj().Pkg() == nil {
			return ""
		}
		key := typeKey{owner.Obj().Pkg().Path(), owner.Obj().Name()}
		if dimFields[key][sel.Obj().Name()] {
			return owner.Obj().Name() + "." + sel.Obj().Name()
		}
	case *ast.CallExpr:
		fun, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		sel, ok := pass.TypesInfo.Selections[fun]
		if !ok || sel.Kind() != types.MethodVal {
			return ""
		}
		owner := analysis.NamedOf(sel.Recv())
		if owner == nil || owner.Obj().Pkg() == nil {
			return ""
		}
		key := typeKey{owner.Obj().Pkg().Path(), owner.Obj().Name()}
		if dimMethods[key][sel.Obj().Name()] {
			return owner.Obj().Name() + "." + sel.Obj().Name() + "()"
		}
	}
	return ""
}
