// Package fixture exercises the uncheckedmul analyzer: raw products of
// dimension/tile-size quantities are flagged; checked products, plain local
// arithmetic and float math are not.
package fixture

import (
	"fusecu/internal/dataflow"
	"fusecu/internal/invariant"
	"fusecu/internal/op"
)

func flaggedFields(m op.MatMul) int64 {
	return int64(m.M) * int64(m.K) // want "unchecked multiplication of dimension quantity MatMul.M"
}

func flaggedTiles(t dataflow.Tiling) int {
	return t.TM * t.TK // want "unchecked multiplication of dimension quantity Tiling.TM"
}

func flaggedAccessor(t dataflow.Tiling, m op.MatMul) int64 {
	return dataflow.TensorA.Size(m) * t.Trips(dataflow.DimL, m) // want "unchecked multiplication of dimension quantity Tensor.Size"
}

func flaggedOneSide(m op.MatMul, reps int64) int64 {
	return m.SizeA() * reps // want "unchecked multiplication of dimension quantity MatMul.SizeA"
}

func cleanChecked(m op.MatMul) int64 {
	return invariant.CheckedMul(int64(m.M), int64(m.K))
}

func cleanLocals(m op.MatMul) int64 {
	a, b := int64(m.M), int64(m.K)
	return a * b // flows through locals: out of analyzer scope (CheckedMul by convention)
}

func cleanFloat(m op.MatMul) float64 {
	return float64(m.M) * 1.5 // float math cannot wrap
}

func cleanUnrelated(x, y int) int {
	return x * y
}
