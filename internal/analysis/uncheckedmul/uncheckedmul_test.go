package uncheckedmul_test

import (
	"testing"

	"fusecu/internal/analysis/analysistest"
	"fusecu/internal/analysis/uncheckedmul"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", uncheckedmul.Analyzer)
}
