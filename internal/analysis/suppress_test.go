package analysis

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// moduleRootForTest walks up from the package directory to go.mod.
func moduleRootForTest(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for d := dir; ; {
		if fi, err := os.Stat(filepath.Join(d, "go.mod")); err == nil && !fi.IsDir() {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// readFixture returns the fixture file's contents.
func readFixture(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// flagmeAnalyzer reports every call to flagme() under the given name, so two
// instances produce same-line findings from distinct analyzers.
func flagmeAnalyzer(name string) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "test analyzer flagging calls to flagme",
		Run: func(pass *Pass) error {
			for _, file := range pass.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagme" {
						pass.Reportf(call.Pos(), "%s flags this call", pass.Analyzer.Name)
					}
					return true
				})
			}
			return nil
		},
	}
}

// TestSuppressionScope proves the //fusecu:allow contract: a suppression
// silences only the named analyzer, only on the annotated line (the
// comment's line or the one directly below), and malformed comments are
// findings of the unsuppressable "suppression" pseudo-analyzer.
func TestSuppressionScope(t *testing.T) {
	loader, err := NewLoader(moduleRootForTest(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("fixture/suppress", filepath.Join("testdata", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunPackage(pkg, []*Analyzer{flagmeAnalyzer("alpha"), flagmeAnalyzer("beta")})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		analyzer string
		line     int
	}
	got := map[key]int{}
	for _, f := range findings {
		got[key{f.Analyzer, f.Position.Line}]++
	}

	lineOf := func(substr string) int {
		t.Helper()
		src := readFixture(t, filepath.Join("testdata", "suppress", "fixture.go"))
		for i, l := range strings.Split(src, "\n") {
			if strings.Contains(l, substr) {
				return i + 1
			}
		}
		t.Fatalf("fixture line containing %q not found", substr)
		return 0
	}

	unsup := lineOf("both alpha and beta report here")
	alphaOnly := lineOf("beta must still see this line")
	ownLineComment := lineOf("alpha must still see the next line")
	secondFlag := lineOf("this one still reports")

	checks := []struct {
		name string
		k    key
		want int
	}{
		{"alpha reports unsuppressed line", key{"alpha", unsup}, 1},
		{"beta reports unsuppressed line", key{"beta", unsup}, 1},
		{"alpha silenced by same-line allow", key{"alpha", alphaOnly}, 0},
		{"beta unaffected by alpha allow", key{"beta", alphaOnly}, 1},
		{"beta silenced by own-line allow above", key{"beta", ownLineComment + 1}, 0},
		{"alpha unaffected by beta allow", key{"alpha", ownLineComment + 1}, 1},
		{"allow does not reach two lines down (alpha)", key{"alpha", secondFlag}, 1},
		{"allow does not reach two lines down (beta)", key{"beta", secondFlag}, 1},
	}
	for _, c := range checks {
		if got[c.k] != c.want {
			t.Errorf("%s: analyzer %s line %d: got %d findings, want %d\nall findings:\n%s",
				c.name, c.k.analyzer, c.k.line, got[c.k], c.want, renderFindings(findings))
		}
	}

	// Malformed suppressions are reported by the pseudo-analyzer and the
	// would-be-suppressed findings survive.
	var malformed []Finding
	for _, f := range findings {
		if f.Analyzer == SuppressionAnalyzerName {
			malformed = append(malformed, f)
		}
	}
	if len(malformed) != 2 {
		t.Errorf("want 2 malformed-suppression findings, got %d:\n%s", len(malformed), renderFindings(findings))
	}
	for _, f := range malformed {
		// A malformed allow must not silence anything on its line.
		if got[key{"alpha", f.Position.Line}] != 1 || got[key{"beta", f.Position.Line}] != 1 {
			t.Errorf("malformed suppression at line %d silenced findings:\n%s", f.Position.Line, renderFindings(findings))
		}
	}
}

func renderFindings(fs []Finding) string {
	var lines []string
	for _, f := range fs {
		lines = append(lines, fmt.Sprintf("  %s:%d %s (%s)", filepath.Base(f.Position.Filename), f.Position.Line, f.Message, f.Analyzer))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
