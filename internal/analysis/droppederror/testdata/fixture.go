// Package fixture exercises the droppederror analyzer: error results of
// fusecu APIs must not be discarded, whether by dropping the whole result or
// assigning the error to the blank identifier. Errors from other modules
// (the standard library) are out of scope.
package fixture

import (
	"errors"
	"fmt"

	"fusecu/internal/cost"
	"fusecu/internal/dataflow"
	"fusecu/internal/invariant"
	"fusecu/internal/op"
)

var mm = op.MatMul{Name: "fixture", M: 8, K: 8, L: 8}

func flaggedDiscardedCall(c *op.Chain) {
	c.Validate() // want "error result of .*Validate.* is discarded"
}

func flaggedBlankSecond(df dataflow.Dataflow) int64 {
	a, _ := cost.Evaluate(mm, df) // want "error result of fusecu/internal/cost.Evaluate is assigned to _"
	return a.Total
}

func flaggedBlankSingle(df dataflow.Dataflow) {
	_ = mm.Validate() // want "error result of .*Validate.* is assigned to _"
	_ = df
}

func cleanHandled(df dataflow.Dataflow) (int64, error) {
	a, err := cost.Evaluate(mm, df)
	if err != nil {
		return 0, err
	}
	return a.Total, nil
}

func cleanNonInternal() {
	fmt.Println("stdlib errors are go vet's concern") // not flagged
}

func cleanNoError(t dataflow.Tiling) {
	t.Footprint() // no error result: plain discard is fine
}

// --- regression: explicit generic instantiation --------------------------

func flaggedGenericInstantiation(ms []op.MatMul) {
	invariant.ValidateAll[op.MatMul](ms...) // want "error result of .*ValidateAll.* is discarded"
}

func flaggedGenericBlank(ms []op.MatMul) {
	_ = invariant.ValidateAll[op.MatMul](ms...) // want "error result of .*ValidateAll.* is assigned to _"
}

func flaggedGenericInferred(ms []op.MatMul) {
	invariant.ValidateAll(ms...) // want "error result of .*ValidateAll.* is discarded"
}

func cleanGenericHandled(ms []op.MatMul) error {
	return invariant.ValidateAll(ms...)
}

// --- regression: method expressions and method values --------------------

func flaggedMethodExpression(c *op.Chain) {
	(*op.Chain).Validate(c) // want "error result of .*Validate.* is discarded"
}

// A method value erases the static callee: the call is through a function
// variable, which this analyzer (like go vet) deliberately does not chase.
func cleanMethodValue(c *op.Chain) {
	f := c.Validate
	f()
}

// --- regression: aggregated error handling is not a discard ---------------

func cleanErrorsJoin(c *op.Chain, df dataflow.Dataflow) error {
	_, err := cost.Evaluate(mm, df)
	return errors.Join(err, c.Validate())
}

func cleanMultiWrap(c *op.Chain, df dataflow.Dataflow) error {
	_, err := cost.Evaluate(mm, df)
	if err2 := c.Validate(); err != nil || err2 != nil {
		return fmt.Errorf("fixture: %w; %w", err, err2)
	}
	return nil
}
