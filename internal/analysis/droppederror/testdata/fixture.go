// Package fixture exercises the droppederror analyzer: error results of
// fusecu APIs must not be discarded, whether by dropping the whole result or
// assigning the error to the blank identifier. Errors from other modules
// (the standard library) are out of scope.
package fixture

import (
	"fmt"

	"fusecu/internal/cost"
	"fusecu/internal/dataflow"
	"fusecu/internal/op"
)

var mm = op.MatMul{Name: "fixture", M: 8, K: 8, L: 8}

func flaggedDiscardedCall(c *op.Chain) {
	c.Validate() // want "error result of .*Validate.* is discarded"
}

func flaggedBlankSecond(df dataflow.Dataflow) int64 {
	a, _ := cost.Evaluate(mm, df) // want "error result of fusecu/internal/cost.Evaluate is assigned to _"
	return a.Total
}

func flaggedBlankSingle(df dataflow.Dataflow) {
	_ = mm.Validate() // want "error result of .*Validate.* is assigned to _"
	_ = df
}

func cleanHandled(df dataflow.Dataflow) (int64, error) {
	a, err := cost.Evaluate(mm, df)
	if err != nil {
		return 0, err
	}
	return a.Total, nil
}

func cleanNonInternal() {
	fmt.Println("stdlib errors are go vet's concern") // not flagged
}

func cleanNoError(t dataflow.Tiling) {
	t.Footprint() // no error result: plain discard is fine
}
