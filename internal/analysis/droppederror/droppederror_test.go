package droppederror_test

import (
	"testing"

	"fusecu/internal/analysis/analysistest"
	"fusecu/internal/analysis/droppederror"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", droppederror.Analyzer)
}
