// Package droppederror defines an analyzer that flags discarded error
// results from this module's own APIs — stricter than go vet: assigning an
// internal validation error to the blank identifier is also a finding.
//
// The repository's validation surface (op.MatMul.Validate, dataflow
// constructors, cost.Evaluate, fusion.Evaluate, …) reports constraint
// violations through error returns. Discarding one turns a malformed shape
// or an infeasible tiling into a silently wrong memory-access number — the
// exact failure mode the paper's lower-bound claim cannot tolerate. Errors
// from the standard library and other modules are left to go vet and code
// review; this analyzer only polices fusecu's packages, so it can afford
// zero tolerance.
package droppederror

import (
	"go/ast"
	"go/types"
	"strings"

	"fusecu/internal/analysis"
)

// modulePath scopes the analyzer to this module's APIs.
const modulePath = "fusecu"

// Analyzer flags discarded error results of module-internal calls.
var Analyzer = &analysis.Analyzer{
	Name: "droppederror",
	Doc: "flag error results of fusecu APIs that are discarded, either by ignoring the call's " +
		"results entirely or by assigning the error to _ (stricter than go vet)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call)
				}
			case *ast.AssignStmt:
				checkBlankAssign(pass, stmt)
			}
			return true
		})
	}
	return nil
}

// checkDiscardedCall reports a statement-level call whose results (including
// an error) are ignored entirely.
func checkDiscardedCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := internalCallee(pass, call)
	if fn == nil {
		return
	}
	if idx := errorResult(fn); idx >= 0 {
		pass.Reportf(call.Pos(), "error result of %s is discarded; handle or return it", fn.FullName())
	}
}

// checkBlankAssign reports error results assigned to the blank identifier.
func checkBlankAssign(pass *analysis.Pass, stmt *ast.AssignStmt) {
	// Form 1: x, _ := f() — one multi-result call on the right.
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn := internalCallee(pass, call)
		if fn == nil {
			return
		}
		results := fn.Type().(*types.Signature).Results()
		for i, lhs := range stmt.Lhs {
			if i >= results.Len() || !isBlank(lhs) {
				continue
			}
			if isErrorType(results.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result of %s is assigned to _; handle or return it", fn.FullName())
			}
		}
		return
	}
	// Form 2: _ = f() — pairwise assignment.
	for i, lhs := range stmt.Lhs {
		if !isBlank(lhs) || i >= len(stmt.Rhs) {
			continue
		}
		call, ok := ast.Unparen(stmt.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := internalCallee(pass, call)
		if fn == nil {
			continue
		}
		results := fn.Type().(*types.Signature).Results()
		if results.Len() == 1 && isErrorType(results.At(0).Type()) {
			pass.Reportf(lhs.Pos(), "error result of %s is assigned to _; handle or return it", fn.FullName())
		}
	}
}

// internalCallee returns the statically known callee when it belongs to this
// module.
func internalCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	if path != modulePath && !strings.HasPrefix(path, modulePath+"/") {
		return nil
	}
	return fn
}

// errorResult returns the index of the first error-typed result, or -1.
func errorResult(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return i
		}
	}
	return -1
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
