// Package analysistest runs an analyzer over a testdata fixture directory
// and checks its diagnostics against `// want "regexp"` comments, following
// the convention of golang.org/x/tools/go/analysis/analysistest. Fixtures
// live under testdata/ (which the go tool ignores), are compiled for real by
// the internal/analysis loader, and may import the module's own packages so
// positive and negative cases exercise the analyzers on the genuine types.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"fusecu/internal/analysis"
)

// wantRe matches one expectation comment: // want "regexp" ["regexp" ...]
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	file    string // base name
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package rooted at dir (relative to the calling
// test's package directory), applies the analyzer, and reports mismatches
// between its diagnostics and the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	_, callerFile, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("analysistest: cannot locate caller")
	}
	callerDir := filepath.Dir(callerFile)
	fixtureDir := filepath.Join(callerDir, dir)
	moduleRoot := findModuleRoot(t, callerDir)

	loader, err := analysis.NewLoader(moduleRoot)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkgPath := "fixture/" + a.Name
	pkg, err := loader.LoadDir(pkgPath, fixtureDir)
	if err != nil {
		t.Fatalf("analysistest: loading fixture %s: %v", fixtureDir, err)
	}

	wants := collectWants(t, pkg)
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	for _, f := range findings {
		base := filepath.Base(f.Position.Filename)
		found := false
		for _, w := range wants {
			if w.matched || w.file != base || w.line != f.Position.Line {
				continue
			}
			if w.pattern.MatchString(f.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", base, f.Position.Line, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// collectWants scans the fixture's comments for want expectations.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range parsePatterns(t, pos.String(), m[1]) {
					wants = append(wants, &expectation{
						file:    filepath.Base(pos.Filename),
						line:    pos.Line,
						pattern: pat,
					})
				}
			}
		}
	}
	return wants
}

// parsePatterns splits `"re1" "re2"` into compiled regexps.
func parsePatterns(t *testing.T, pos, s string) []*regexp.Regexp {
	t.Helper()
	var out []*regexp.Regexp
	rest := strings.TrimSpace(s)
	for rest != "" {
		if rest[0] != '"' {
			t.Fatalf("%s: malformed want comment near %q (expected quoted regexp)", pos, rest)
		}
		// Find the closing quote of this Go-quoted string.
		end := 1
		for end < len(rest) {
			if rest[end] == '\\' {
				end += 2
				continue
			}
			if rest[end] == '"' {
				break
			}
			end++
		}
		if end >= len(rest) {
			t.Fatalf("%s: unterminated quoted regexp in want comment", pos)
		}
		quoted := rest[:end+1]
		unq, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: bad quoted regexp %s: %v", pos, quoted, err)
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			t.Fatalf("%s: bad regexp %q: %v", pos, unq, err)
		}
		out = append(out, re)
		rest = strings.TrimSpace(rest[end+1:])
	}
	return out
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(t *testing.T, dir string) string {
	t.Helper()
	for d := dir; ; {
		if fi, err := os.Stat(filepath.Join(d, "go.mod")); err == nil && !fi.IsDir() {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("analysistest: no go.mod above %s", dir)
		}
		d = parent
	}
}
