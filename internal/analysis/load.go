package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully loaded and type-checked compile unit (non-test files
// only, mirroring what `go build` compiles).
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader loads and type-checks packages of the enclosing module without any
// dependency on golang.org/x/tools. Module membership is decided by the
// module path in go.mod; imports outside the module (the standard library)
// are resolved by the compiler's source importer. A Loader is not safe for
// concurrent use.
type Loader struct {
	ModuleRoot string
	ModulePath string
	// Tags are extra build tags (as in `go build -tags`) applied when
	// enumerating package files, so tag-gated invariants (e.g. the
	// fusecuchecks runtime assertions) can be analyzed in their enabled
	// configuration. Standard-library imports are unaffected.
	Tags []string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader rooted at the module directory containing
// go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	return NewLoaderTags(moduleRoot, nil)
}

// NewLoaderTags builds a loader that enumerates package files under the
// given build tags.
func NewLoaderTags(moduleRoot string, tags []string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		Tags:       tags,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
}

// list shells out to `go list -json` with the given arguments.
func (l *Loader) list(args ...string) ([]listEntry, error) {
	full := []string{"list", "-json"}
	if len(l.Tags) > 0 {
		full = append(full, "-tags="+strings.Join(l.Tags, ","))
	}
	cmd := exec.Command("go", append(full, args...)...)
	cmd.Dir = l.ModuleRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v: %s", strings.Join(args, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// LoadPatterns loads the packages matched by the go package patterns (and,
// transitively, every module-internal dependency) and returns the matched
// packages in deterministic order.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// -deps output is dependency-ordered, so each package's module-internal
	// imports are loaded before the package itself.
	deps, err := l.list(append([]string{"-deps", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	roots, err := l.list(append([]string{"--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	for _, e := range deps {
		if e.Standard || !l.inModule(e.ImportPath) || len(e.GoFiles) == 0 {
			continue
		}
		if _, err := l.load(e); err != nil {
			return nil, err
		}
	}
	var out []*Package
	for _, r := range roots {
		if p, ok := l.pkgs[r.ImportPath]; ok {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// inModule reports whether path names a package of the enclosing module.
func (l *Loader) inModule(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// Import implements types.Importer. Module-internal packages are loaded (and
// cached) on demand; everything else is delegated to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if !l.inModule(path) {
		return l.std.Import(path)
	}
	entries, err := l.list(path)
	if err != nil {
		return nil, err
	}
	if len(entries) != 1 {
		return nil, fmt.Errorf("analysis: go list %s returned %d packages", path, len(entries))
	}
	p, err := l.load(entries[0])
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// load parses and type-checks one listed package.
func (l *Loader) load(e listEntry) (*Package, error) {
	if p, ok := l.pkgs[e.ImportPath]; ok {
		return p, nil
	}
	if l.loading[e.ImportPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", e.ImportPath)
	}
	l.loading[e.ImportPath] = true
	defer delete(l.loading, e.ImportPath)

	var names []string
	for _, f := range e.GoFiles {
		names = append(names, filepath.Join(e.Dir, f))
	}
	return l.check(e.ImportPath, e.Dir, names)
}

// LoadDir loads a directory of Go files as a standalone package under the
// given import path — the entry point for analyzer test fixtures, which live
// in testdata directories the go tool refuses to list. Fixture imports of
// module packages resolve against the real module.
func (l *Loader) LoadDir(pkgPath, dir string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	var names []string
	for _, m := range matches {
		if strings.HasSuffix(m, "_test.go") {
			continue
		}
		names = append(names, m)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return l.check(pkgPath, dir, names)
}

// check parses the named files and type-checks them as one package.
func (l *Loader) check(pkgPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	p := &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.pkgs[pkgPath] = p
	return p, nil
}
