package analysis

import (
	"fmt"
	"io"
	"path/filepath"
)

// Vet loads the packages matched by patterns (default ./...) under
// moduleRoot, runs every analyzer over each, prints the findings to w in
// `file:line:col: message (analyzer)` form with paths relative to the module
// root, and returns the findings.
func Vet(moduleRoot string, patterns []string, analyzers []*Analyzer, w io.Writer) ([]Finding, error) {
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, pkg := range pkgs {
		findings, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, findings...)
	}
	for _, f := range all {
		pos := f.Position
		if rel, err := filepath.Rel(moduleRoot, pos.Filename); err == nil {
			pos.Filename = rel
		}
		fmt.Fprintf(w, "%s: %s (%s)\n", pos, f.Message, f.Analyzer)
	}
	return all, nil
}
