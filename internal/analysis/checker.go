package analysis

import (
	"fmt"
	"io"
	"path/filepath"
)

// Vet loads the packages matched by patterns (default ./...) under
// moduleRoot, runs every analyzer over each, prints the findings to w in
// `file:line:col: message (analyzer)` form with paths relative to the module
// root, and returns the findings.
func Vet(moduleRoot string, patterns []string, analyzers []*Analyzer, w io.Writer) ([]Finding, error) {
	return VetTags(moduleRoot, patterns, nil, analyzers, w)
}

// VetTags is Vet with extra build tags applied when enumerating package
// files, so tag-gated code (-tags=fusecuchecks) is analyzed in its enabled
// configuration.
func VetTags(moduleRoot string, patterns, tags []string, analyzers []*Analyzer, w io.Writer) ([]Finding, error) {
	loader, err := NewLoaderTags(moduleRoot, tags)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, pkg := range pkgs {
		findings, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, findings...)
	}
	for _, f := range all {
		pos := f.Position
		if rel, err := filepath.Rel(moduleRoot, pos.Filename); err == nil {
			pos.Filename = rel
		}
		fmt.Fprintf(w, "%s: %s (%s)\n", pos, f.Message, f.Analyzer)
	}
	return all, nil
}
