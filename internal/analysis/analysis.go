// Package analysis is a self-contained, stdlib-only re-implementation of the
// golang.org/x/tools/go/analysis vocabulary, sized for this repository's
// fusecu-vet invariant linters. It exists because the build environment is
// hermetic (no module proxy), so the x/tools framework cannot be vendored;
// the subset here — Analyzer, Pass, Diagnostic, a go/types-backed package
// loader and a multichecker driver — is API-compatible in spirit, and the
// analyzers under internal/analysis/* could be ported to the real framework
// by changing imports.
//
// The loader enumerates packages with `go list -json -deps`, parses their
// compile-unit sources with go/parser and type-checks them with go/types,
// resolving out-of-module imports (the standard library) through the
// compiler's source importer. Test files are deliberately not loaded: the
// invariants fusecu-vet enforces are about values that can reach the cost
// model and simulator in production code, and tests legitimately construct
// adversarial (invalid) values to exercise Validate paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant check. Run is invoked once per loaded
// package with a fully type-checked Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is the one-paragraph description shown by `fusecu-vet help`.
	Doc string
	// Run reports diagnostics through the Pass. A non-nil error aborts the
	// whole run (reserved for analyzer bugs, not findings).
	Run func(*Pass) error
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.diags = append(p.diags, d) }

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Finding is a positioned, analyzer-attributed diagnostic produced by a run.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// RunPackage applies each analyzer to one loaded package and returns the
// findings sorted by source position. Findings covered by a well-formed
// `//fusecu:allow <analyzer>: <justification>` comment on the same or the
// preceding line are filtered out; malformed suppression comments are
// reported as findings of the pseudo-analyzer "suppression" (which cannot
// itself be suppressed).
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	sups, out := collectSuppressions(pkg)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
		for _, d := range pass.diags {
			f := Finding{
				Analyzer: a.Name,
				Position: pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			}
			if suppressed(f, sups) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}
